package trilliong

import "repro/internal/graphalgo"

// BFSResult reports one breadth-first search over a CSR graph.
type BFSResult = graphalgo.BFSResult

// BFS runs a level-synchronous breadth-first search (the Graph500
// kernel) from root over g's out-edges.
func BFS(g *CSRGraph, root int64) (*BFSResult, error) { return graphalgo.BFS(g, root) }

// MaxDegreeVertex returns the vertex with the largest out-degree — the
// canonical BFS root on scale-free graphs.
func MaxDegreeVertex(g *CSRGraph) int64 { return graphalgo.MaxDegreeVertex(g) }

// ConnectedComponents labels weakly connected components and returns
// the per-vertex labels and the component count.
func ConnectedComponents(g *CSRGraph) ([]int64, int64) {
	return graphalgo.ConnectedComponents(g)
}

// LargestComponentFraction returns the share of vertices in the giant
// component.
func LargestComponentFraction(g *CSRGraph) float64 {
	return graphalgo.LargestComponentFraction(g)
}

// PageRank runs damped power iteration until the L1 delta falls below
// eps (or maxIter), returning the rank vector and iteration count.
func PageRank(g *CSRGraph, damping, eps float64, maxIter int) ([]float64, int) {
	return graphalgo.PageRank(g, damping, eps, maxIter)
}

// Reverse returns the transposed CSR image (edge (u,v) becomes (v,u)).
func Reverse(g *CSRGraph) *CSRGraph { return graphalgo.Reverse(g) }

// BFSUndirected runs BFS treating edges as undirected, as Graph500
// specifies; pass rev = Reverse(g), reusable across roots.
func BFSUndirected(g, rev *CSRGraph, root int64) (*BFSResult, error) {
	return graphalgo.BFSUndirected(g, rev, root)
}
