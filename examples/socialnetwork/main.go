// Social-network workload: generate a realistic social graph with the
// NSKG noisy model (the oscillation-free degree plot of the paper's
// Figure 9c), stream it without touching disk, and print its degree
// distribution — the property that makes synthetic benchmarks
// "realistic" for evaluating graph processing systems.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	trilliong "repro"
)

func main() {
	cfg := trilliong.New(19) // ~524k users, ~8.4M follows
	cfg.NoiseParam = 0.1     // NSKG: smooth, realistic power law
	cfg.MasterSeed = 7

	// Stream scopes straight into an in-memory degree census: no files,
	// O(d_max) generator memory.
	outDeg := make(map[int64]int64)  // vertex → out-degree
	inCount := make(map[int64]int64) // vertex → in-degree
	stats, err := cfg.GenerateFunc(func(src int64, dsts []int64) error {
		if len(dsts) > 0 {
			outDeg[src] += int64(len(dsts))
		}
		for _, d := range dsts {
			inCount[d]++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d follows among %d users (%v)\n",
		stats.Edges, cfg.NumVertices(), stats.Elapsed)

	// Degree histogram (log-binned) — the paper's log-log plot in text.
	hist := make(map[int]int64) // floor(log2(degree)) → vertices
	var maxDeg int64
	for _, d := range outDeg {
		hist[int(math.Log2(float64(d)))]++
		if d > maxDeg {
			maxDeg = d
		}
	}
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Println("\nout-degree distribution (vertices per degree octave):")
	for _, k := range keys {
		bar := hist[k]
		fmt.Printf("  %7d–%-7d %8d %s\n", 1<<k, 1<<(k+1)-1, bar, hashes(bar))
	}

	// Who are the influencers? (top in-degree)
	type user struct {
		id  int64
		in  int64
		out int64
	}
	top := make([]user, 0, len(inCount))
	for v, in := range inCount {
		top = append(top, user{id: v, in: in, out: outDeg[v]})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].in > top[j].in })
	fmt.Println("\ntop 5 most-followed users:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  user %-8d followers %-6d follows %d\n", top[i].id, top[i].in, top[i].out)
	}
	fmt.Printf("\nmax out-degree %d — power-law tails emerge from the 2x2 seed alone\n", maxDeg)
}

func hashes(n int64) string {
	stars := int(math.Log2(float64(n + 1)))
	out := make([]byte, stars)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
