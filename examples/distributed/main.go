// Distributed generation: a master and three workers cooperate over
// TCP to generate one graph, each worker writing its share to its own
// directory — the paper's 10-PC deployment in miniature (the workers
// here are goroutines in one process, but the protocol is the same one
// cmd/trilliong-dist speaks across machines).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gformat"
)

func main() {
	cfg := core.DefaultConfig(18) // 262k vertices, 4.2M edges
	cfg.MasterSeed = 5

	master, err := dist.NewMaster(dist.MasterConfig{
		Addr:    "127.0.0.1:0", // ephemeral port
		Workers: 3,
		Config:  cfg,
		Format:  gformat.ADJ6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master on %s\n", master.Addr())

	base, err := os.MkdirTemp("", "trilliong-dist-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		dir := filepath.Join(base, fmt.Sprintf("machine-%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			if err := dist.RunWorker(dist.WorkerConfig{
				MasterAddr: master.Addr(),
				Threads:    2,
				OutDir:     dir,
			}); err != nil {
				log.Printf("worker %d: %v", i, err)
			}
		}(i, dir)
	}

	sum, err := master.Run()
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generated %d edges on %d workers (%d threads) in %v\n",
		sum.Edges, sum.Workers, sum.TotalThreads, sum.Elapsed)
	fmt.Printf("planning took %v and shipped only range boundaries — no edge ever crossed the network\n",
		sum.PlanDuration)

	// Show the global part layout.
	parts, err := filepath.Glob(filepath.Join(base, "machine-*", "part-*.adj6"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("part files across machines:")
	for _, p := range parts {
		info, err := os.Stat(p)
		if err != nil {
			log.Fatal(err)
		}
		rel, _ := filepath.Rel(base, p)
		fmt.Printf("  %-28s %9d bytes\n", rel, info.Size())
	}
}
