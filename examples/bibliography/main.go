// Rich-graph benchmark database: generate the paper's bibliographical
// example (Figure 7) — researchers authoring papers published in
// conferences, with Zipfian authorship and Gaussian paper-author counts
// — using the extended recursive vector model, then verify the schema's
// degree contracts.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	trilliong "repro"
)

func main() {
	schema := trilliong.BibliographySchema(200_000, 1_600_000)

	// Schemas are plain JSON; print it so users can copy and edit.
	spec, err := json.MarshalIndent(schema, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph configuration:")
	fmt.Println(string(spec))

	// Node-type ID ranges (the vertical slices of Figure 7b).
	fmt.Println("\nvertex ranges:")
	for _, r := range schema.Ranges() {
		fmt.Printf("  %-12s [%d, %d)\n", r.Type, r.Lo, r.Hi)
	}

	// Generate, writing labeled edges as TSV-with-predicate to stdout
	// would be huge; instead collect per-predicate statistics.
	type predStat struct {
		edges     int64
		scopes    int64
		maxOut    int
		inDegrees map[int64]int64
	}
	statsByPred := make(map[string]*predStat)
	counts, err := schema.Generate(2026, func(pred string, src int64, dsts []int64) error {
		ps := statsByPred[pred]
		if ps == nil {
			ps = &predStat{inDegrees: make(map[int64]int64)}
			statsByPred[pred] = ps
		}
		ps.edges += int64(len(dsts))
		ps.scopes++
		if len(dsts) > ps.maxOut {
			ps.maxOut = len(dsts)
		}
		for _, d := range dsts {
			ps.inDegrees[d]++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ngenerated edges per predicate:")
	for pred, n := range counts {
		ps := statsByPred[pred]
		var maxIn int64
		var sumIn int64
		for _, d := range ps.inDegrees {
			sumIn += d
			if d > maxIn {
				maxIn = d
			}
		}
		meanIn := float64(sumIn) / float64(len(ps.inDegrees))
		fmt.Printf("  %-12s %8d edges  sources %6d  max out %5d  mean in %.1f  max in %d\n",
			pred, n, ps.scopes, ps.maxOut, meanIn, maxIn)
	}

	fmt.Println("\ncontract checks:")
	author := statsByPred["author"]
	fmt.Printf("  authorship is Zipfian: one researcher wrote %d papers while the median wrote ~2\n",
		author.maxOut)
	pub := statsByPred["publishedIn"]
	fmt.Printf("  every paper is published exactly once: %d papers → %d publishedIn edges\n",
		pub.scopes, pub.edges)
	if pub.scopes != pub.edges {
		fmt.Fprintln(os.Stderr, "BUG: publication contract violated")
		os.Exit(1)
	}
}
