// Benchmark-dataset workflow (the paper's first motivation): generate a
// graph in the CSR6 format, load it, and run a breadth-first search
// over it — the Graph500 kernel — timing both phases. This is the
// end-to-end loop a graph-processing evaluation would run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	trilliong "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "trilliong-bench-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := trilliong.New(17) // 131k vertices, 2.1M edges
	cfg.MasterSeed = 99
	cfg.Workers = 1 // one part file → one CSR image

	start := time.Now()
	stats, err := cfg.GenerateToDir(dir, trilliong.CSR6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generate: %d edges to CSR6 in %v (%d bytes)\n",
		stats.Edges, time.Since(start), stats.BytesWritten)

	parts, _ := filepath.Glob(filepath.Join(dir, "part-*.csr6"))
	f, err := os.Open(parts[0])
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	g, err := trilliong.ReadCSR6(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load:     %d vertices, %d edges in %v\n",
		g.NumVertices, g.NumEdges(), time.Since(start))

	// BFS from the highest-degree vertex (Graph500 kernel 2 style).
	root := trilliong.MaxDegreeVertex(g)
	start = time.Now()
	bfs, err := trilliong.BFS(g, root)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	teps := float64(bfs.TraversedEdges) / elapsed.Seconds()

	fmt.Printf("bfs:      root %d (degree %d) reached %d/%d vertices in %v\n",
		root, g.Degree(root), bfs.Visited, g.NumVertices, elapsed)
	fmt.Printf("          %.2f MTEPS (traversed edges per second, Graph500 metric)\n", teps/1e6)
	fmt.Println("          frontier sizes per level:")
	for lvl, n := range bfs.LevelSizes {
		fmt.Printf("            level %d: %d\n", lvl, n)
	}

	// Connectivity and PageRank round out the evaluation loop.
	start = time.Now()
	frac := trilliong.LargestComponentFraction(g)
	fmt.Printf("wcc:      giant component holds %.1f%% of vertices (%v)\n",
		100*frac, time.Since(start))
	start = time.Now()
	rank, iters := trilliong.PageRank(g, 0.85, 1e-9, 100)
	var maxRank float64
	var hub int64
	for v, r := range rank {
		if r > maxRank {
			maxRank, hub = r, int64(v)
		}
	}
	fmt.Printf("pagerank: converged in %d iterations (%v); hub %d holds %.4f%% of rank\n",
		iters, time.Since(start), hub, 100*maxRank)
}
