// Quickstart: generate a Scale-18 Graph500-style graph (262k vertices,
// 4.2M edges) into ./out as binary adjacency lists, then read one part
// file back and print the first few adjacency records.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	trilliong "repro"
)

func main() {
	const dir = "out"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Configure: Scale 18 with the standard Graph500 seed and edge
	// factor 16. The graph is a pure function of (config, MasterSeed).
	cfg := trilliong.New(18)
	cfg.MasterSeed = 42
	cfg.Workers = 4

	stats, err := cfg.GenerateToDir(dir, trilliong.ADJ6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d edges (target %d) in %v\n",
		stats.Edges, cfg.NumEdges(), stats.Elapsed)
	fmt.Printf("max out-degree %d, peak worker memory %d bytes, %d output bytes\n",
		stats.MaxDegree, stats.PeakWorkerBytes, stats.BytesWritten)

	// Read the first part file back.
	parts, err := filepath.Glob(filepath.Join(dir, "part-*.adj6"))
	if err != nil || len(parts) == 0 {
		log.Fatalf("no part files: %v", err)
	}
	f, err := os.Open(parts[0])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	r := trilliong.NewADJ6Reader(f)
	for i := 0; i < 5; i++ {
		src, dsts, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		show := dsts
		if len(show) > 8 {
			show = show[:8]
		}
		fmt.Printf("vertex %d → %v (degree %d)\n", src, show, len(dsts))
	}
}
