package trilliong

// Cross-module integration tests: the same configuration must produce
// the identical edge set through every output format, worker count and
// API entry point.

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

type edgeSet map[Edge]struct{}

func (s edgeSet) add(e Edge) { s[e] = struct{}{} }

func readAllTSV(t *testing.T, dir string) edgeSet {
	t.Helper()
	out := make(edgeSet)
	files, err := filepath.Glob(filepath.Join(dir, "part-*.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		r := NewTSVReader(f)
		for {
			e, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out.add(e)
		}
		f.Close()
	}
	return out
}

func readAllADJ6(t *testing.T, dir string) edgeSet {
	t.Helper()
	out := make(edgeSet)
	files, err := filepath.Glob(filepath.Join(dir, "part-*.adj6"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		r := NewADJ6Reader(f)
		for {
			src, dsts, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range dsts {
				out.add(Edge{Src: src, Dst: d})
			}
		}
		f.Close()
	}
	return out
}

func readAllCSR6(t *testing.T, dir string) edgeSet {
	t.Helper()
	out := make(edgeSet)
	files, err := filepath.Glob(filepath.Join(dir, "part-*.csr6"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ReadCSR6(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		for v := int64(0); v < g.NumVertices; v++ {
			for _, d := range g.Adj(v) {
				out.add(Edge{Src: v, Dst: d})
			}
		}
	}
	return out
}

// TestAllFormatsSerializeTheSameGraph: one configuration, three
// formats, three worker counts — identical edge sets throughout.
func TestAllFormatsSerializeTheSameGraph(t *testing.T) {
	cfg := New(10)
	cfg.MasterSeed = 77

	var reference edgeSet
	check := func(name string, got edgeSet) {
		t.Helper()
		if reference == nil {
			reference = got
			if len(reference) == 0 {
				t.Fatal("reference edge set empty")
			}
			return
		}
		if len(got) != len(reference) {
			t.Fatalf("%s: %d edges, reference has %d", name, len(got), len(reference))
		}
		for e := range reference {
			if _, ok := got[e]; !ok {
				t.Fatalf("%s: missing edge %v", name, e)
			}
		}
	}

	for _, workers := range []int{1, 3} {
		cfg.Workers = workers
		for _, fc := range []struct {
			format Format
			read   func(*testing.T, string) edgeSet
		}{
			{TSV, readAllTSV},
			{ADJ6, readAllADJ6},
			{CSR6, readAllCSR6},
		} {
			dir := t.TempDir()
			if _, err := cfg.GenerateToDir(dir, fc.format); err != nil {
				t.Fatalf("workers=%d format=%v: %v", workers, fc.format, err)
			}
			check(fc.format.String(), fc.read(t, dir))
		}
	}

	// The streaming API yields the same set too.
	streamed := make(edgeSet)
	if _, err := cfg.GenerateFunc(func(src int64, dsts []int64) error {
		for _, d := range dsts {
			streamed.add(Edge{Src: src, Dst: d})
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	check("GenerateFunc", streamed)
}

// TestCSRPartsAreGloballyConsistent: per-part CSR images never overlap
// in sources and cover every generated scope in order.
func TestCSRPartsAreGloballyConsistent(t *testing.T) {
	cfg := New(9)
	cfg.Workers = 4
	dir := t.TempDir()
	if _, err := cfg.GenerateToDir(dir, CSR6); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "part-*.csr6"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	owned := make(map[int64]int)
	for pi, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ReadCSR6(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices != cfg.NumVertices() {
			t.Fatalf("part %d declares %d vertices, want %d", pi, g.NumVertices, cfg.NumVertices())
		}
		for v := int64(0); v < g.NumVertices; v++ {
			if g.Degree(v) > 0 {
				if prev, dup := owned[v]; dup {
					t.Fatalf("vertex %d appears in parts %d and %d", v, prev, pi)
				}
				owned[v] = pi
			}
		}
	}
	if len(owned) == 0 {
		t.Fatal("no vertices owned by any part")
	}
}

// TestNoiseChangesGraphButStaysDeterministic: different noise values
// give different graphs; the same value replays identically.
func TestNoiseChangesGraphButStaysDeterministic(t *testing.T) {
	collect := func(noise float64) edgeSet {
		cfg := New(9)
		cfg.NoiseParam = noise
		out := make(edgeSet)
		if _, err := cfg.GenerateFunc(func(src int64, dsts []int64) error {
			for _, d := range dsts {
				out.add(Edge{Src: src, Dst: d})
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a1, a2 := collect(0.1), collect(0.1)
	if len(a1) != len(a2) {
		t.Fatal("same noise not deterministic")
	}
	same := true
	for e := range a1 {
		if _, ok := a2[e]; !ok {
			same = false
		}
	}
	if !same {
		t.Fatal("same noise produced different edges")
	}
	b := collect(0)
	diff := 0
	for e := range a1 {
		if _, ok := b[e]; !ok {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("noise had no effect on the graph")
	}
}
