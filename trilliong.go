// Package trilliong is a Go implementation of TrillionG (Park & Kim,
// SIGMOD 2017), a scalable synthetic graph generator based on the
// recursive vector model.
//
// TrillionG generates RMAT/Kronecker-style scale-free graphs one source
// vertex (one "scope") at a time: the vertex's out-degree is drawn from
// Theorem 1's normal approximation, and each destination is recovered
// from a single uniform random value using a precomputed O(log|V|)
// recursive vector. Working memory is O(d_max) per worker — not O(|E|)
// as in RMAT — so scale is bounded by disk, not RAM.
//
// Quick start:
//
//	cfg := trilliong.New(20)            // Scale 20: 2^20 vertices, 16·2^20 edges
//	stats, err := cfg.GenerateToDir("out", trilliong.ADJ6)
//
// The generated graph is a pure function of (Config, MasterSeed): any
// worker count yields bit-identical output.
//
// Rich, schema-driven graphs (multiple node types, edge predicates,
// independent in-/out-degree distributions) are generated through the
// extended recursive vector model; see Schema and BibliographySchema.
package trilliong

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/pressure"
	"repro/internal/recvec"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/skg"
	"repro/internal/store"
	"repro/internal/store/s3"
	"repro/internal/swarm"
	"repro/internal/telemetry"
)

// Seed is the 2x2 stochastic seed matrix [A B; C D] (α, β, γ, δ in the
// paper). Entries must be non-negative and sum to 1.
type Seed = skg.Seed

// Graph500Seed is the standard benchmark seed [0.57, 0.19; 0.19, 0.05].
var Graph500Seed = skg.Graph500Seed

// UniformSeed is the Erdős–Rényi seed [0.25, 0.25; 0.25, 0.25].
var UniformSeed = skg.UniformSeed

// Format selects an output file format.
type Format = gformat.Format

// Output formats supported by the generator (Section 5): the text edge
// list, the 6-byte binary adjacency list, and the 6-byte CSR image.
const (
	TSV  = gformat.TSV
	ADJ6 = gformat.ADJ6
	CSR6 = gformat.CSR6
)

// Options exposes the recursive-vector ablation switches (Section 4.3).
// Production() is what you want unless you are reproducing Figure 13.
type Options = recvec.Options

// Production returns the options with all three performance ideas
// enabled.
func Production() Options { return recvec.Production() }

// Config configures one generation run. The zero value is not usable;
// start from New.
type Config struct {
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is |E| / |V| (16 in Graph500 and the paper).
	EdgeFactor int64
	// Seed is the stochastic seed matrix.
	Seed Seed
	// NoiseParam > 0 enables the NSKG noisy model, which removes the
	// oscillation of plain SKG degree plots. 0.1 is the standard value;
	// the admissible maximum is min((A+D)/2, B).
	NoiseParam float64
	// MasterSeed selects the pseudo-random universe. Same seed, same
	// graph — regardless of Workers.
	MasterSeed uint64
	// Workers is the number of generation goroutines (0 = GOMAXPROCS).
	Workers int
	// Opts are the recursive-vector options (New sets Production).
	Opts Options
	// HighPrecision switches the recursive vector to 128-bit floats,
	// the paper's BigDecimal mode for trillion-scale accuracy.
	HighPrecision bool
	// Orientation selects out-edge scopes (AVSO, default: scopes are
	// source vertices with out-adjacency) or in-edge scopes (AVSI:
	// scopes are destination vertices with in-adjacency, so part files
	// hold in-adjacency lists). Section 3.3 of the paper.
	Orientation Orientation
	// AllowDuplicates skips duplicate elimination, emitting raw
	// stochastic trials (Graph500-edge-list semantics — faster but
	// unrealistic; the paper's realism claim rests on deduping).
	AllowDuplicates bool
}

// Orientation selects the scope axis (Section 3.3).
type Orientation = core.Orientation

// Scope orientations.
const (
	AVSO = core.AVSO
	AVSI = core.AVSI
)

// New returns the standard configuration at the given scale:
// Graph500 seed, edge factor 16, production options, master seed 1.
func New(scale int) Config {
	c := core.DefaultConfig(scale)
	return Config{
		Scale:      c.Scale,
		EdgeFactor: c.EdgeFactor,
		Seed:       c.Seed,
		MasterSeed: c.MasterSeed,
		Opts:       c.Opts,
	}
}

func (c Config) toCore() core.Config {
	return core.Config{
		Scale:           c.Scale,
		EdgeFactor:      c.EdgeFactor,
		Seed:            c.Seed,
		NoiseParam:      c.NoiseParam,
		MasterSeed:      c.MasterSeed,
		Workers:         c.Workers,
		Opts:            c.Opts,
		HighPrecision:   c.HighPrecision,
		Orientation:     c.Orientation,
		AllowDuplicates: c.AllowDuplicates,
	}
}

// Validate reports configuration problems.
func (c Config) Validate() error { return c.toCore().Validate() }

// NumVertices returns |V| = 2^Scale.
func (c Config) NumVertices() int64 { return c.toCore().NumVertices() }

// NumEdges returns the target edge count |E| = EdgeFactor · |V|.
func (c Config) NumEdges() int64 { return c.toCore().NumEdges() }

// Stats reports a completed run; see the field docs in internal/core.
type Stats = core.Stats

// GenerateToDir writes the graph into dir as one part file per worker
// (part-00000.<ext>, ...) in the given format and returns run
// statistics. The directory must exist.
func (c Config) GenerateToDir(dir string, format Format) (Stats, error) {
	cc := c.toCore()
	if err := cc.Validate(); err != nil {
		return Stats{}, err
	}
	return core.Generate(cc, core.FileSinks(dir, format, cc.NumVertices()))
}

// ResumeToDir is GenerateToDir with crash safety: part files are
// written atomically (temp + rename) and parts that already exist are
// skipped, so an interrupted run can be re-invoked with the same
// configuration and directory to finish exactly where it stopped.
func (c Config) ResumeToDir(dir string, format Format) (Stats, error) {
	return core.ResumeToDir(c.toCore(), dir, format)
}

// Store is a crash-safe content-addressed artifact store caching
// generated parts; see docs/STORE.md. Because the graph is a pure
// function of (Config, MasterSeed), any run — batch, distributed or
// server — can satisfy its parts from a store another run populated.
type Store = store.Store

// StoreOptions configures OpenStore; see internal/store.Options.
type StoreOptions = store.Options

// OpenStore opens (creating if needed) the artifact store rooted at
// dir.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	return store.Open(dir, opts)
}

// StoreBackend is a pluggable cold tier behind a Store: evicted
// entries demote into it instead of being deleted, and local misses
// fall through to it. See internal/store.Backend and docs/STORE.md.
type StoreBackend = store.Backend

// OpenStoreBackend resolves a -remote-store spec into a cold-tier
// backend:
//
//	s3://bucket[/prefix]?endpoint=URL[&region=R][&access-key=K&secret-key=S]
//
// dials an S3-compatible object store (credentials fall back to
// AWS_ACCESS_KEY_ID / AWS_SECRET_ACCESS_KEY; absent means anonymous
// requests). Any other non-empty spec is taken as a directory path —
// an NFS export or shared scratch disk. tel receives the backend's
// store.remote.* transport metrics and may be nil; spec "" returns
// (nil, nil), keeping the store single-tier.
func OpenStoreBackend(spec string, tel *telemetry.Registry) (StoreBackend, error) {
	if spec == "" {
		return nil, nil
	}
	if strings.HasPrefix(spec, "s3://") {
		return s3.Open(spec, tel)
	}
	return store.NewDirBackend(spec)
}

// ResumeToDirCached is ResumeToDir backed by an artifact store: parts
// whose keys are cached are materialized from the store
// (checksum-verified) instead of regenerated, and generated parts are
// ingested for the next run. Stats.PartsFromCache reports the hits.
func (c Config) ResumeToDirCached(dir string, format Format, st *Store) (Stats, error) {
	return core.ResumeToDirStore(c.toCore(), dir, format, st)
}

// GenerateFunc streams every generated scope (source vertex and its
// distinct destinations) to fn instead of writing files. fn is called
// from multiple workers under a mutex; the dsts slice is only valid for
// the duration of the call.
func (c Config) GenerateFunc(fn func(src int64, dsts []int64) error) (Stats, error) {
	return core.Generate(c.toCore(), core.CallbackSinks(fn))
}

// Count generates the graph without materializing it anywhere, charging
// only the byte cost of the given format. Useful for capacity planning
// and benchmarks.
func (c Config) Count(format Format) (Stats, error) {
	return core.Generate(c.toCore(), core.DiscardSinks(format))
}

// SizeEstimate predicts output volume analytically (no generation);
// see internal/core.EstimateSize.
type SizeEstimate = core.SizeEstimate

// EstimateSize predicts the file volume of this configuration in the
// given format in O(Scale²) arithmetic — e.g. the paper's Scale-38
// numbers (≈90 TB TSV, ≈25 TB ADJ6) take microseconds to compute.
func (c Config) EstimateSize(format Format) (SizeEstimate, error) {
	return core.EstimateSize(c.toCore(), format)
}

// StreamStats reports one completed stream; see the field docs in
// internal/server.
type StreamStats = server.StreamStats

// StreamOptions tunes StreamRange; see internal/server.
type StreamOptions = server.StreamOptions

// StreamRange streams the vertex range [lo, hi) of the graph into w in
// the given format (TSV or ADJ6; CSR6 needs a seekable sink and cannot
// stream). The bytes are identical to the corresponding slice of the
// part files GenerateToDir writes for the same (Config, MasterSeed):
// scopes appear in vertex order, encoded exactly as the batch writers
// encode them. Generation runs through a bounded channel pipeline, so
// a slow w throttles the producers and memory stays O(Workers · d_max)
// regardless of range size; cancelling ctx aborts the stream.
func (c Config) StreamRange(ctx context.Context, w io.Writer, format Format, lo, hi int64) (StreamStats, error) {
	return c.StreamRangeOpts(ctx, w, format, lo, hi, StreamOptions{})
}

// StreamRangeOpts is StreamRange with explicit pipeline options.
func (c Config) StreamRangeOpts(ctx context.Context, w io.Writer, format Format, lo, hi int64, opt StreamOptions) (StreamStats, error) {
	return server.StreamRange(ctx, c.toCore(), format, lo, hi, w, opt)
}

// Server is the embeddable generation service: an HTTP API (job
// registry, streaming endpoints, live expvar metrics) over the
// generator. See docs/SERVER.md for the API reference.
type Server = server.Server

// ServerOptions configures NewServer; see internal/server.Options.
type ServerOptions = server.Options

// JobSpec is the generation request accepted by the service's
// POST /v1/jobs endpoint.
type JobSpec = server.JobSpec

// TenantLimits bounds one tenant's share of the service's scheduler:
// fair-share weight, token-bucket rate limit, concurrency quota and
// queue bounds. See internal/sched.Limits and docs/SCHED.md.
type TenantLimits = sched.Limits

// ParseTenantSpec parses a "name[,key=value...]" tenant limit spec —
// the trilliong-serve -tenant flag syntax, e.g.
// "alice,weight=3,rate=1e6,max-active=2". See internal/sched.
func ParseTenantSpec(spec string) (string, TenantLimits, error) {
	return sched.ParseTenantSpec(spec)
}

// ParseTenantLimits parses a bare "key=value,..." limit list (the
// -tenant-defaults flag syntax; "" yields scheduler defaults).
func ParseTenantLimits(s string) (TenantLimits, error) {
	return sched.ParseLimits(s)
}

// NewServer builds a generation service. Mount its Handler on an
// http.Server; call Shutdown to drain gracefully.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// SwarmOptions configures one masterless swarm worker: the pinned
// part count, worker identity, claim concurrency, scan pacing and the
// optional store/pressure/telemetry hookups. See internal/swarm.
type SwarmOptions = swarm.Options

// SwarmSummary reports one swarm worker's share of a masterless run
// (parts claimed/lost/skipped/cached, claim epochs, edges generated).
type SwarmSummary = swarm.Summary

// SwarmRun executes one masterless swarm worker against the shared
// directory dir: no master, no leases, no messages. The worker derives
// the plan and a per-epoch claim schedule purely from (Config, its
// identity, the epoch number), publishes parts via atomic rename —
// racing duplicates are bit-identical, first writer wins — and
// repeatedly scans dir until no part is missing. Any number of
// SwarmRun invocations (processes or goroutines, started together or
// hours apart, freely killable) pointed at the same dir cooperate on
// one job and converge on exactly the file set GenerateToDir produces.
// opts.Parts must be pinned (> 0) and identical across the fleet; see
// docs/DIST.md for the failure model.
func (c Config) SwarmRun(dir string, format Format, opts SwarmOptions) (SwarmSummary, error) {
	return swarm.Run(c.toCore(), dir, format, opts)
}

// PressureConfig tunes the host-pressure controller: sampling
// interval, memory budget, watched disk path, and the classification
// thresholds. The zero value is serviceable (auto-detected budget,
// default thresholds). See internal/pressure and docs/PRESSURE.md.
type PressureConfig = pressure.Config

// PressureController samples host signals (load, RSS, disk, goroutine
// and FD counts) and classifies them into ok/elevated/critical with
// hysteresis. ServerOptions.EnablePressure builds one into a server;
// a dist worker advertises one's level through its heartbeats.
type PressureController = pressure.Controller

// NewPressureController builds a controller; call Start to begin
// background sampling (it returns the stop function).
func NewPressureController(cfg PressureConfig) *PressureController { return pressure.New(cfg) }

// MaxNoise returns the largest admissible NoiseParam for a seed.
func MaxNoise(s Seed) float64 { return skg.MaxNoise(s) }

// ParseFormat converts "tsv", "adj6" or "csr6" to a Format.
func ParseFormat(name string) (Format, error) {
	f, err := gformat.ParseFormat(name)
	if err != nil {
		return 0, fmt.Errorf("trilliong: %w", err)
	}
	return f, nil
}
