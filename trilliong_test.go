package trilliong

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/gformat"
)

func TestNewDefaults(t *testing.T) {
	cfg := New(12)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != Graph500Seed || cfg.EdgeFactor != 16 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.NumVertices() != 4096 || cfg.NumEdges() != 65536 {
		t.Fatalf("sizes wrong: %d/%d", cfg.NumVertices(), cfg.NumEdges())
	}
	if !cfg.Opts.ReuseVector || !cfg.Opts.SparseRecursion || !cfg.Opts.SingleRandom {
		t.Fatal("production options not set")
	}
}

func TestGenerateToDirADJ6(t *testing.T) {
	dir := t.TempDir()
	cfg := New(10)
	cfg.Workers = 2
	st, err := cfg.GenerateToDir(dir, ADJ6)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "part-*.adj6"))
	if len(files) != 2 {
		t.Fatalf("part files %d", len(files))
	}
	var edges int64
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		r := gformat.NewADJ6Reader(f)
		for {
			_, dsts, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			edges += int64(len(dsts))
		}
		f.Close()
	}
	if edges != st.Edges {
		t.Fatalf("files hold %d, stats %d", edges, st.Edges)
	}
}

func TestGenerateFuncMatchesCount(t *testing.T) {
	cfg := New(10)
	var streamed int64
	st, err := cfg.GenerateFunc(func(src int64, dsts []int64) error {
		streamed += int64(len(dsts))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != st.Edges {
		t.Fatalf("streamed %d, stats %d", streamed, st.Edges)
	}
	want := float64(cfg.NumEdges())
	if math.Abs(float64(st.Edges)-want) > 0.05*want {
		t.Fatalf("edges %d, want ≈ %d", st.Edges, cfg.NumEdges())
	}
}

func TestCountChargesFormatBytes(t *testing.T) {
	cfg := New(10)
	adj, err := cfg.Count(ADJ6)
	if err != nil {
		t.Fatal(err)
	}
	tsv, err := cfg.Count(TSV)
	if err != nil {
		t.Fatal(err)
	}
	if adj.BytesWritten == 0 || tsv.BytesWritten == 0 {
		t.Fatal("no bytes charged")
	}
	if tsv.BytesWritten <= adj.BytesWritten {
		t.Fatalf("TSV %d should exceed ADJ6 %d at this ID width... (IDs are short at scale 10, but 2 IDs+2 separators beat 10+6n only for tiny degrees)", tsv.BytesWritten, adj.BytesWritten)
	}
}

func TestParseFormat(t *testing.T) {
	for name, want := range map[string]Format{"tsv": TSV, "adj6": ADJ6, "csr6": CSR6} {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseFormat("parquet"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMaxNoise(t *testing.T) {
	if got := MaxNoise(Graph500Seed); math.Abs(got-0.19) > 1e-12 {
		t.Fatalf("MaxNoise = %v", got)
	}
}

// TestDeterminismProperty: for random master seeds, two runs agree on
// the edge count exactly.
func TestDeterminismProperty(t *testing.T) {
	f := func(seed uint16) bool {
		cfg := New(8)
		cfg.MasterSeed = uint64(seed)
		a, err := cfg.Count(ADJ6)
		if err != nil {
			return false
		}
		b, err := cfg.Count(ADJ6)
		if err != nil {
			return false
		}
		return a.Edges == b.Edges && a.Attempts == b.Attempts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRichSchemaFacade(t *testing.T) {
	s := BibliographySchema(4096, 1<<14)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	counts, err := s.Generate(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts["author"] == 0 {
		t.Fatal("no author edges")
	}
	if math.Abs(SeedForOutSlope(-1.5).OutZipfSlope()-(-1.5)) > 1e-12 {
		t.Fatal("SeedForOutSlope wrong")
	}
	if math.Abs(SeedForInSlope(-1.5).InZipfSlope()-(-1.5)) > 1e-12 {
		t.Fatal("SeedForInSlope wrong")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := New(0)
	if _, err := cfg.Count(ADJ6); err == nil {
		t.Fatal("expected validation error via Count")
	}
	cfg = New(10)
	cfg.NoiseParam = 1
	if _, err := cfg.GenerateFunc(nil); err == nil {
		t.Fatal("expected noise validation error")
	}
	if _, err := cfg.GenerateToDir(t.TempDir(), ADJ6); err == nil {
		t.Fatal("expected noise validation error via GenerateToDir")
	}
}
