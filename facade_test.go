package trilliong

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestResumeFacade: the public resume flow completes an interrupted
// directory.
func TestResumeFacade(t *testing.T) {
	cfg := New(9)
	cfg.Workers = 2
	dir := t.TempDir()
	if _, err := cfg.ResumeToDir(dir, ADJ6); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "part-00001.adj6")); err != nil {
		t.Fatal(err)
	}
	st, err := cfg.ResumeToDir(dir, ADJ6)
	if err != nil {
		t.Fatal(err)
	}
	if st.Edges == 0 {
		t.Fatal("resume regenerated nothing")
	}
	parts, _ := filepath.Glob(filepath.Join(dir, "part-*.adj6"))
	if len(parts) != 2 {
		t.Fatalf("parts %v", parts)
	}
}

// TestEstimateFacade: the public estimator returns the paper-consistent
// Scale-38 TSV/ADJ6 ratio.
func TestEstimateFacade(t *testing.T) {
	cfg := New(38)
	tsv, err := cfg.EstimateSize(TSV)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := cfg.EstimateSize(ADJ6)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(tsv.Bytes) / float64(adj.Bytes)
	if ratio < 3 || ratio > 4.5 {
		t.Fatalf("TSV/ADJ6 ratio %v", ratio)
	}
}

// TestKernelFacades: generate a CSR graph and run every public kernel.
func TestKernelFacades(t *testing.T) {
	dir := t.TempDir()
	cfg := New(11)
	cfg.Workers = 1
	if _, err := cfg.GenerateToDir(dir, CSR6); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "part-00000.csr6"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ReadCSR6(f)
	if err != nil {
		t.Fatal(err)
	}
	root := MaxDegreeVertex(g)
	bfs, err := BFS(g, root)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Visited < g.NumVertices/2 {
		t.Fatalf("BFS visited %d of %d", bfs.Visited, g.NumVertices)
	}
	if frac := LargestComponentFraction(g); frac < 0.5 {
		t.Fatalf("giant component %v", frac)
	}
	labels, n := ConnectedComponents(g)
	if int64(len(labels)) != g.NumVertices || n < 1 {
		t.Fatalf("components %d over %d labels", n, len(labels))
	}
	rank, iters := PageRank(g, 0.85, 1e-8, 100)
	if iters == 0 || len(rank) != int(g.NumVertices) {
		t.Fatalf("pagerank iters %d len %d", iters, len(rank))
	}
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("rank mass %v", sum)
	}
}

// TestAVSIThroughPublicConfig: the in-edge orientation is reachable via
// the facade and changes which axis the part files describe.
func TestAVSIThroughPublicConfig(t *testing.T) {
	cfg := New(9)
	cfg.Orientation = AVSI
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	var scopes int64
	st, err := cfg.GenerateFunc(func(v int64, srcs []int64) error {
		scopes++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Edges == 0 || scopes == 0 {
		t.Fatal("AVS-I generated nothing")
	}
}

// TestProductionOptions.
func TestProductionOptions(t *testing.T) {
	o := Production()
	if !o.ReuseVector || !o.SparseRecursion || !o.SingleRandom || o.LinearSearch {
		t.Fatalf("production options %+v", o)
	}
}

// TestSocialNetworkFacade.
func TestSocialNetworkFacade(t *testing.T) {
	s := SocialNetworkSchema(4096, 1<<14)
	counts, err := s.Generate(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts["follows"] == 0 {
		t.Fatal("no follows edges")
	}
}

// TestShippedSchemasParse: the JSON schemas in schemas/ stay in sync
// with the parser.
func TestShippedSchemasParse(t *testing.T) {
	for _, name := range []string{"schemas/bibliography.json", "schemas/socialnetwork.json"} {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ParseSchema(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.EdgeTypes) == 0 {
			t.Fatalf("%s: empty schema", name)
		}
	}
}

// TestStreamRangeFacade: the public streaming entry point reproduces
// GenerateToDir's bytes (single part, so the file IS the range).
func TestStreamRangeFacade(t *testing.T) {
	cfg := New(10)
	cfg.Workers = 1
	dir := t.TempDir()
	if _, err := cfg.GenerateToDir(dir, TSV); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "part-00000.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, err := cfg.StreamRange(context.Background(), &buf, TSV, 0, cfg.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("streamed %d bytes differ from the %d-byte part file", buf.Len(), len(want))
	}
	if st.Edges == 0 || st.BytesWritten != int64(buf.Len()) {
		t.Fatalf("stats %+v", st)
	}
}

// TestNewServerFacade: the embeddable service answers the job API.
func TestNewServerFacade(t *testing.T) {
	srv := NewServer(ServerOptions{MaxActiveStreams: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"scale":10,"format":"tsv"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	var created struct {
		StreamURL string `json:"stream_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	sresp, err := http.Get(ts.URL + created.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	body, err := io.ReadAll(sresp.Body)
	if err != nil || len(body) == 0 {
		t.Fatalf("stream: %v, %d bytes", err, len(body))
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestUndirectedBFSFacade: the undirected traversal reaches more than
// the directed one on a generated graph.
func TestUndirectedBFSFacade(t *testing.T) {
	dir := t.TempDir()
	cfg := New(10)
	cfg.Workers = 1
	if _, err := cfg.GenerateToDir(dir, CSR6); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "part-00000.csr6"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ReadCSR6(f)
	if err != nil {
		t.Fatal(err)
	}
	rev := Reverse(g)
	root := MaxDegreeVertex(g)
	directed, err := BFS(g, root)
	if err != nil {
		t.Fatal(err)
	}
	und, err := BFSUndirected(g, rev, root)
	if err != nil {
		t.Fatal(err)
	}
	if und.Visited < directed.Visited {
		t.Fatalf("undirected reached %d < directed %d", und.Visited, directed.Visited)
	}
}

// TestSwarmRunFacade: two masterless workers cooperating through one
// shared directory converge on exactly the batch file set.
func TestSwarmRunFacade(t *testing.T) {
	cfg := New(9)
	const parts = 4

	ref := t.TempDir()
	refCfg := cfg
	refCfg.Workers = parts // one part per worker: same layout as the swarm
	if _, err := refCfg.GenerateToDir(ref, ADJ6); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sums := make([]SwarmSummary, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = cfg.SwarmRun(dir, ADJ6, SwarmOptions{Parts: parts, WorkerID: uint64(i + 1)})
		}(i)
	}
	wg.Wait()
	claimed := 0
	for i := range sums {
		if errs[i] != nil {
			t.Fatalf("swarm worker %d: %v", i, errs[i])
		}
		claimed += sums[i].Claimed
	}
	if claimed < parts {
		t.Fatalf("swarm claimed %d parts in total, want >= %d", claimed, parts)
	}
	for i := 0; i < parts; i++ {
		name := filepath.Join(dir, fmt.Sprintf("part-%05d.adj6", i))
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(ref, filepath.Base(name)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("swarm part %d differs from batch output", i)
		}
	}
}
