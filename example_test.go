package trilliong_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	trilliong "repro"
)

// ExampleConfig_GenerateFunc streams a small graph and counts its
// edges without writing anything to disk.
func ExampleConfig_GenerateFunc() {
	cfg := trilliong.New(10) // 1024 vertices, 16384 target edges
	cfg.MasterSeed = 1

	var edges int64
	_, err := cfg.GenerateFunc(func(src int64, dsts []int64) error {
		edges += int64(len(dsts))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(edges > 15000 && edges < 18000)
	// Output: true
}

// ExampleConfig_determinism shows that the graph is a pure function of
// the master seed, independent of worker count.
func ExampleConfig_determinism() {
	count := func(workers int) int64 {
		cfg := trilliong.New(9)
		cfg.MasterSeed = 99
		cfg.Workers = workers
		var n int64
		if _, err := cfg.GenerateFunc(func(src int64, dsts []int64) error {
			n += int64(len(dsts))
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		return n
	}
	fmt.Println(count(1) == count(4))
	// Output: true
}

// ExampleSeedForOutSlope derives a seed matrix with an exact Zipfian
// out-degree slope, the Table 3 control knob.
func ExampleSeedForOutSlope() {
	s := trilliong.SeedForOutSlope(-1.662)
	fmt.Printf("%.3f\n", s.OutZipfSlope())
	// Output: -1.662
}

// ExampleBibliographySchema generates the paper's rich-graph example
// and reports which predicates exist.
func ExampleBibliographySchema() {
	schema := trilliong.BibliographySchema(10000, 100000)
	counts, err := schema.Generate(3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(counts) == 3, counts["author"] > 0)
	// Output: true true
}

// ExampleConfig_SwarmRun runs two masterless swarm workers against one
// shared directory: no master, no messages — they rendezvous through
// the filesystem alone and together publish every part exactly once.
func ExampleConfig_SwarmRun() {
	cfg := trilliong.New(9)
	dir, err := os.MkdirTemp("", "swarm")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const parts = 4
	var wg sync.WaitGroup
	sums := make([]trilliong.SwarmSummary, 2)
	for i := range sums {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum, err := cfg.SwarmRun(dir, trilliong.ADJ6, trilliong.SwarmOptions{
				Parts:    parts,
				WorkerID: uint64(i + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			sums[i] = sum
		}(i)
	}
	wg.Wait()

	files, err := filepath.Glob(filepath.Join(dir, "part-*.adj6"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(files), sums[0].Claimed+sums[1].Claimed >= parts)
	// Output: 4 true
}
