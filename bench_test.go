package trilliong

// One benchmark per table and figure of the paper's evaluation. Each
// bench runs the corresponding experiment from internal/experiments at
// a laptop scale and reports the domain metric (edges/sec, ns/edge,
// simulated seconds) alongside Go's timing. `go test -bench=.` at the
// repository root regenerates every row the paper reports; the
// experiment CLI (cmd/experiments) prints the full tables.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gformat"
)

// BenchmarkTable1_ComplexitySweep reproduces Table 1's empirical
// time/space comparison of WES, AES, FastKronecker and AVS.
func BenchmarkTable1_ComplexitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1([]int{12, 14})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MemGrowth("WES (RMAT-mem)"), "wes-mem-x/scale")
		b.ReportMetric(res.MemGrowth("AVS (TrillionG)"), "avs-mem-x/scale")
	}
}

// BenchmarkTable2_CDFvsRecVec reproduces Table 2's search comparison.
func BenchmarkTable2_CDFvsRecVec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2([]int{16}, 100000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cell("CDF vector", "linear", 16), "cdf-linear-ns/edge")
		b.ReportMetric(res.Cell("CDF vector", "binary", 16), "cdf-binary-ns/edge")
		b.ReportMetric(res.Cell("RecVec", "binary", 16), "recvec-binary-ns/edge")
		b.ReportMetric(res.Cell("RecVec", "linear", 16), "recvec-linear-ns/edge")
	}
}

// BenchmarkTable3_SeedToDistribution reproduces Table 3's seed→slope map.
func BenchmarkTable3_SeedToDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(12)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].MeasuredSlope, "zipf-1.662-measured")
	}
}

// BenchmarkFig8_DegreeDistributions reproduces the four-generator
// degree-plot comparison.
func BenchmarkFig8_DegreeDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(14, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.KSToRMAT["TrillionG"], "ks-trilliong-vs-rmat")
		b.ReportMetric(res.KSToRMAT["TeG"], "ks-teg-vs-rmat")
	}
}

// BenchmarkFig9_NoiseSweep reproduces the NSKG de-oscillation sweep.
func BenchmarkFig9_NoiseSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(15, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Oscillation[0], "oscillation-N0")
		b.ReportMetric(res.Oscillation[2], "oscillation-N0.1")
	}
}

// BenchmarkFig10_RichGraph reproduces the bibliographical rich-graph
// degree plots.
func BenchmarkFig10_RichGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(1<<13, 1<<17)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OutSkewness, "author-out-skewness")
		b.ReportMetric(res.InKSNormal, "author-in-ks-normal")
	}
}

// BenchmarkFig11a_SingleThread reproduces the single-threaded method
// comparison (with the O.O.M. cap).
func BenchmarkFig11a_SingleThread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11a([]int{11, 12, 13}, 0, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		top := 13
		tg := res.Time("TrillionG/seq", top)
		rd := res.Time("RMAT-disk", top)
		if tg > 0 && rd > 0 {
			b.ReportMetric(float64(rd)/float64(tg), "speedup-vs-rmat-disk")
		}
	}
}

// BenchmarkFig11b_Distributed reproduces the distributed comparison on
// the simulated 10x6 cluster.
func BenchmarkFig11b_Distributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11b([]int{12, 13}, cluster.Config{
			Machines: 4, ThreadsPerMachine: 2,
			BandwidthBytesPerSec: cluster.OneGbE, LatencySec: 0.001,
		}, 0, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		adj := res.Time("TrillionG (ADJ6)", 13)
		disk := res.Time("RMAT/p-disk", 13)
		if adj > 0 && disk > 0 {
			b.ReportMetric(float64(disk)/float64(adj), "speedup-vs-rmatp-disk")
		}
	}
}

// BenchmarkFig12_Scalability reproduces TrillionG's time/memory
// scalability sweep.
func BenchmarkFig12_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12([]int{13, 14, 15}, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.TimeX, "time-x-per-scale")
		b.ReportMetric(last.MemX, "mem-x-per-scale")
	}
}

// BenchmarkFig13_Ablation reproduces the three-key-ideas breakdown.
func BenchmarkFig13_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(15)
		if err != nil {
			b.Fatal(err)
		}
		allOff := res.Time(false, false, false)
		allOn := res.Time(true, true, true)
		if allOn > 0 {
			b.ReportMetric(float64(allOff)/float64(allOn), "all-ideas-speedup")
		}
	}
}

// BenchmarkFig14_VsGraph500 reproduces the Graph500 comparison across
// network speeds.
func BenchmarkFig14_VsGraph500(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14([]int{12}, 1<<40)
		if err != nil {
			b.Fatal(err)
		}
		g1 := res.Time("Graph500", "1G", 12)
		t1 := res.Time("TrillionG", "1G", 12)
		if t1 > 0 {
			b.ReportMetric(float64(g1)/float64(t1), "speedup-vs-graph500-1G")
		}
		b.ReportMetric(res.Ratio("Graph500", "1G", 12), "g500-construction-ratio")
	}
}

// BenchmarkGenerate_EdgesPerSec is the headline generator throughput:
// edges per second of the production path at Scale 18 (ADJ6 discard).
func BenchmarkGenerate_EdgesPerSec(b *testing.B) {
	cfg := core.DefaultConfig(18)
	cfg.Workers = 1
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		st, err := core.Generate(cfg, core.DiscardSinks(gformat.ADJ6))
		if err != nil {
			b.Fatal(err)
		}
		edges += st.Edges
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkDedupCost quantifies what duplicate elimination costs the
// generator — the gap between TrillionG's realistic output and a raw
// Graph500-style edge list (DESIGN.md §7 ablation).
func BenchmarkDedupCost(b *testing.B) {
	for _, dedup := range []bool{true, false} {
		name := "dedup"
		if !dedup {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig(16)
			cfg.Workers = 1
			cfg.AllowDuplicates = !dedup
			var edges int64
			for i := 0; i < b.N; i++ {
				st, err := core.Generate(cfg, core.DiscardSinks(gformat.ADJ6))
				if err != nil {
					b.Fatal(err)
				}
				edges += st.Edges
			}
			b.ReportMetric(float64(edges)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}
