// Command trilliong-serve runs the TrillionG generation service: an
// HTTP API that streams synthetic graphs on demand. Because a graph is
// a pure function of (spec, master seed), the service is stateless —
// any replica streams bit-identical bytes for the same job spec.
//
// Usage:
//
//	trilliong-serve -addr :8080
//	trilliong-serve -addr :8080 -max-streams 8 -max-scale 30
//	trilliong-serve -tenant 'alice,weight=3,rate=1e6' -tenant 'bob' \
//	    -tenant-defaults 'max-queued=16,ttl=10s'
//
// Then:
//
//	curl -d '{"scale":20,"format":"tsv"}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j00000001/stream > graph.tsv
//	curl localhost:8080/v1/jobs/j00000001        # status / progress
//	curl localhost:8080/debug/vars               # live counters (JSON)
//	curl localhost:8080/metrics                  # same data, Prometheus text
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
//
// SIGINT/SIGTERM drains gracefully: new jobs get 503 while in-flight
// streams finish (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	trilliong "repro"
	"repro/internal/faultpoint"
)

// options collects the flag values so tests can exercise the plumbing
// without a listener.
type options struct {
	addr           string
	maxStreams     int
	maxJobs        int
	maxWorkers     int
	maxScale       int
	depth          int
	drainTimeout   time.Duration
	pprof          bool
	storeDir       string
	storeMax       int64
	spoolDir       string
	remoteStore    string
	presignTTL     time.Duration
	tenantSpecs    multiFlag
	tenantDefaults string
	pressure       bool
	pressureEvery  time.Duration
	memBudget      int64
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func defineFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.maxStreams, "max-streams", 4, "concurrently streaming jobs (scheduler slots)")
	fs.IntVar(&o.maxJobs, "max-jobs", 1024, "job registry capacity")
	fs.IntVar(&o.maxWorkers, "max-workers", 0, "producer goroutines per job (0 = GOMAXPROCS)")
	fs.IntVar(&o.maxScale, "max-scale", 34, "largest accepted scale")
	fs.IntVar(&o.depth, "depth", 32, "per-producer pipeline depth (scopes)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", time.Minute, "graceful shutdown bound")
	fs.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.StringVar(&o.storeDir, "store-dir", "", "artifact store directory: cache streamed artifacts, enable /download")
	fs.Int64Var(&o.storeMax, "store-max-bytes", 0, "store size budget in bytes (0 = unbounded)")
	fs.StringVar(&o.spoolDir, "spool-dir", "", "staging directory for in-flight artifact copies (default: inside the store)")
	fs.StringVar(&o.remoteStore, "remote-store", "", "cold tier behind the store: s3://bucket[/prefix]?endpoint=URL or a directory path (requires -store-dir)")
	fs.DurationVar(&o.presignTTL, "presign-ttl", 15*time.Minute, "with an S3 -remote-store: /download answers 302 to a presigned URL valid this long for remote-only artifacts (0 = always stream locally)")
	fs.Var(&o.tenantSpecs, "tenant", "per-tenant scheduling limits, repeatable: name[,weight=N,rate=F,burst=F,max-active=N,max-queued=N|none,ttl=D]")
	fs.StringVar(&o.tenantDefaults, "tenant-defaults", "", "limits for tenants without a -tenant entry (same key=value list)")
	fs.BoolVar(&o.pressure, "pressure", false, "sample host pressure and degrade under load: shrink streams, pause background jobs, flip /readyz")
	fs.DurationVar(&o.pressureEvery, "pressure-interval", 0, "with -pressure: sampling interval (0 = 1s)")
	fs.Int64Var(&o.memBudget, "mem-budget-bytes", 0, "with -pressure: memory budget for the pressure signal (0 = detect from /proc/meminfo, <0 = disable)")
	return o
}

func (o *options) validate() error {
	if o.addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if o.maxStreams < 1 || o.maxJobs < 1 || o.maxScale < 1 {
		return fmt.Errorf("-max-streams, -max-jobs and -max-scale must be positive")
	}
	if o.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive")
	}
	if o.pressureEvery < 0 {
		return fmt.Errorf("-pressure-interval must not be negative")
	}
	if (o.pressureEvery != 0 || o.memBudget != 0) && !o.pressure {
		return fmt.Errorf("-pressure-interval and -mem-budget-bytes require -pressure")
	}
	if o.remoteStore != "" && o.storeDir == "" {
		return fmt.Errorf("-remote-store requires -store-dir (the local hot tier)")
	}
	if o.presignTTL < 0 {
		return fmt.Errorf("-presign-ttl must not be negative")
	}
	if _, err := o.tenants(); err != nil {
		return err
	}
	return nil
}

// tenants resolves the -tenant flag values to the scheduler's limit map
// (nil when no flag was given).
func (o *options) tenants() (map[string]trilliong.TenantLimits, error) {
	if len(o.tenantSpecs) == 0 {
		return nil, nil
	}
	out := make(map[string]trilliong.TenantLimits, len(o.tenantSpecs))
	for _, spec := range o.tenantSpecs {
		name, lim, err := trilliong.ParseTenantSpec(spec)
		if err != nil {
			return nil, err
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("-tenant %q given twice", name)
		}
		out[name] = lim
	}
	return out, nil
}

// newService builds the service from the flag values, attaching the
// artifact store (opened on the service's own telemetry registry, so
// the store.* metrics appear on /metrics) when -store-dir is set.
func (o *options) newService() (*trilliong.Server, error) {
	tenants, err := o.tenants()
	if err != nil {
		return nil, err
	}
	defaults, err := trilliong.ParseTenantLimits(o.tenantDefaults)
	if err != nil {
		return nil, fmt.Errorf("-tenant-defaults: %w", err)
	}
	svc := trilliong.NewServer(trilliong.ServerOptions{
		MaxActiveStreams: o.maxStreams,
		MaxJobs:          o.maxJobs,
		MaxWorkersPerJob: o.maxWorkers,
		MaxScale:         o.maxScale,
		PipelineDepth:    o.depth,
		EnablePprof:      o.pprof,
		Tenants:          tenants,
		TenantDefaults:   defaults,
		EnablePressure:   o.pressure,
		PressureConfig: trilliong.PressureConfig{
			Interval:       o.pressureEvery,
			MemBudgetBytes: o.memBudget,
			// Watch the disk that fills when streams are cached; without
			// a store there is nothing we write to locally.
			DiskPath: o.storeDir,
		},
	})
	if o.storeDir != "" {
		remote, err := trilliong.OpenStoreBackend(o.remoteStore, svc.Telemetry())
		if err != nil {
			return nil, fmt.Errorf("-remote-store: %w", err)
		}
		st, err := trilliong.OpenStore(o.storeDir, trilliong.StoreOptions{
			MaxBytes:  o.storeMax,
			Telemetry: svc.Telemetry(),
			Remote:    remote,
		})
		if err != nil {
			return nil, err
		}
		if err := svc.SetStore(st, o.spoolDir); err != nil {
			return nil, err
		}
		if remote != nil {
			svc.SetPresignTTL(o.presignTTL)
		}
	}
	return svc, nil
}

func main() {
	o := defineFlags(flag.CommandLine)
	flag.Parse()
	if err := o.validate(); err != nil {
		fatal(err)
	}
	// Same env-armed injection as trilliong-dist; in this binary its
	// practical use is synthetic pressure (pressure.signals) drills.
	if err := faultpoint.ArmFromEnv(); err != nil {
		fatal(err)
	}
	svc, err := o.newService()
	if err != nil {
		fatal(err)
	}
	if p := svc.Pressure(); p != nil {
		stopSampling := p.Start()
		defer stopSampling()
	}
	httpSrv := &http.Server{Addr: o.addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "trilliong-serve: listening on %s\n", o.addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "trilliong-serve: draining...")
	svc.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	// http.Server.Shutdown waits for in-flight requests (the streams);
	// svc.Shutdown then confirms the job bookkeeping is settled.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "trilliong-serve: forced shutdown:", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "trilliong-serve: drain incomplete:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "trilliong-serve: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trilliong-serve:", err)
	os.Exit(1)
}
