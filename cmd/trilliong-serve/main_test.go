package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	trilliong "repro"
)

func TestFlagDefaultsAndValidation(t *testing.T) {
	fs := flag.NewFlagSet("trilliong-serve", flag.ContinueOnError)
	o := defineFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.maxStreams != 4 || o.maxScale != 34 {
		t.Fatalf("defaults %+v", o)
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-addr", ""},
		{"-max-streams", "0"},
		{"-max-jobs", "-1"},
		{"-max-scale", "0"},
		{"-drain-timeout", "0s"},
		{"-tenant", "bad name!"},
		{"-tenant", "a,weight=0"},
		{"-tenant", "a,bogus=1"},
		{"-tenant", "a,weight=2", "-tenant", "a,weight=3"},
	} {
		fs := flag.NewFlagSet("trilliong-serve", flag.ContinueOnError)
		o := defineFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if err := o.validate(); err == nil {
			t.Fatalf("flags %v accepted", args)
		}
	}
}

// TestTenantFlags: repeatable -tenant specs and -tenant-defaults
// resolve to the scheduler's limit map.
func TestTenantFlags(t *testing.T) {
	fs := flag.NewFlagSet("trilliong-serve", flag.ContinueOnError)
	o := defineFlags(fs)
	err := fs.Parse([]string{
		"-tenant", "alice,weight=3,rate=1e6,max-active=2",
		"-tenant", "bob,max-queued=none",
		"-tenant-defaults", "max-queued=16,ttl=10s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	tenants, err := o.tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 {
		t.Fatalf("tenants %+v", tenants)
	}
	alice := tenants["alice"]
	if alice.Weight != 3 || alice.Rate != 1e6 || alice.MaxInFlight != 2 {
		t.Fatalf("alice %+v", alice)
	}
	if tenants["bob"].MaxQueued >= 0 {
		t.Fatalf("bob %+v, want max-queued none", tenants["bob"])
	}
	defaults, err := trilliong.ParseTenantLimits(o.tenantDefaults)
	if err != nil {
		t.Fatal(err)
	}
	if defaults.MaxQueued != 16 || defaults.QueueTTL != 10*time.Second {
		t.Fatalf("defaults %+v", defaults)
	}
	if _, err := o.newService(); err != nil {
		t.Fatal(err)
	}
}

// TestServeScale20EndToEnd drives the built service exactly as the
// binary wires it: a scale-20 job is streamed over HTTP and must hash
// identically to the part files GenerateToDir writes for the same
// configuration, while a second concurrent job streams correctly and
// a killed client cancels its job (visible in status and expvar).
func TestServeScale20EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-20 end-to-end in -short mode")
	}

	// Batch reference: GenerateToDir, parts concatenated in order.
	cfg := trilliong.New(20)
	cfg.MasterSeed = 3
	cfg.Workers = 4
	dir := t.TempDir()
	if _, err := cfg.GenerateToDir(dir, trilliong.ADJ6); err != nil {
		t.Fatal(err)
	}
	wantHash := sha256.New()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var wantBytes int64
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		n, err := io.Copy(wantHash, f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		wantBytes += n
	}

	// The service, built through the same plumbing main uses.
	fs := flag.NewFlagSet("trilliong-serve", flag.ContinueOnError)
	o := defineFlags(fs)
	if err := fs.Parse([]string{"-max-streams", "3"}); err != nil {
		t.Fatal(err)
	}
	svc, err := o.newService()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(spec string) string {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST: %d %s", resp.StatusCode, body)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out.ID
	}
	state := func(id string) string {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.State
	}

	mainID := post(`{"scale":20,"master_seed":3,"format":"adj6"}`)
	sideID := post(`{"scale":12,"master_seed":3,"format":"tsv"}`)
	doomedID := post(`{"scale":20,"format":"tsv","workers":2}`)

	// Concurrent second job, verified against the library.
	sideDone := make(chan error, 1)
	go func() {
		var sideWant bytes.Buffer
		sideCfg := trilliong.New(12)
		sideCfg.MasterSeed = 3
		if _, err := sideCfg.StreamRange(context.Background(), &sideWant, trilliong.TSV, 0, sideCfg.NumVertices()); err != nil {
			sideDone <- err
			return
		}
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sideID + "/stream")
		if err != nil {
			sideDone <- err
			return
		}
		defer resp.Body.Close()
		got, err := io.ReadAll(resp.Body)
		if err == nil && !bytes.Equal(got, sideWant.Bytes()) {
			t.Error("concurrent side job bytes differ")
		}
		sideDone <- err
	}()

	// Doomed job: read a sliver, hang up, expect cancellation.
	dresp, err := http.Get(ts.URL + "/v1/jobs/" + doomedID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(dresp.Body, make([]byte, 1<<15)); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	// Main job: stream and hash.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + mainID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	gotHash := sha256.New()
	gotBytes, err := io.Copy(gotHash, resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if gotBytes != wantBytes {
		t.Fatalf("streamed %d bytes, batch wrote %d", gotBytes, wantBytes)
	}
	if !bytes.Equal(gotHash.Sum(nil), wantHash.Sum(nil)) {
		t.Fatal("scale-20 stream is not bit-identical to GenerateToDir")
	}
	if err := <-sideDone; err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for state(doomedID) != "canceled" {
		if time.Now().After(deadline) {
			t.Fatalf("doomed job state %q, want canceled", state(doomedID))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := state(mainID); s != "done" {
		t.Fatalf("main job state %q", s)
	}

	// The cancellation is visible in the expvar counters.
	mresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var vars struct {
		JobsCanceled int64 `json:"jobs_canceled"`
		JobsDone     int64 `json:"jobs_done"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.JobsCanceled != 1 || vars.JobsDone != 2 {
		t.Fatalf("expvar jobs_canceled=%d jobs_done=%d", vars.JobsCanceled, vars.JobsDone)
	}
}
