// Command fake-s3 serves the in-process S3 fake from
// internal/store/s3 over a real listener, for local development and
// the CI s3-smoke job. It speaks enough of the S3 REST API for the
// TrillionG store's cold tier: path-style object PUT/GET/DELETE,
// ListObjectsV2, multipart uploads, SigV4 verification (header and
// presigned) and presigned-GET delivery. Objects live in memory; the
// process is the bucket.
//
// Usage:
//
//	fake-s3 -addr :9000 -access test -secret test
//	trilliong-serve -store-dir /tmp/hot \
//	    -remote-store 's3://any-bucket?endpoint=http://127.0.0.1:9000&access-key=test&secret-key=test'
//
// With -access/-secret empty the server accepts unsigned requests.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/store/s3"
)

func main() {
	var (
		addr   = flag.String("addr", ":9000", "listen address")
		access = flag.String("access", "", "required access key id (empty = accept unsigned requests)")
		secret = flag.String("secret", "", "secret key matching -access")
		region = flag.String("region", "us-east-1", "region clients must sign for")
	)
	flag.Parse()
	if (*access == "") != (*secret == "") {
		fatal(fmt.Errorf("-access and -secret must be set together"))
	}

	fake := s3.NewFakeServer()
	fake.Access = *access
	fake.Secret = *secret
	fake.Region = *region

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fake-s3: listening on %s\n", ln.Addr())
	fatal(http.Serve(ln, fake))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fake-s3:", err)
	os.Exit(1)
}
