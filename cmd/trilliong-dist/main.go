// Command trilliong-dist runs TrillionG across machines: one master
// plans the AVS partition and scatters vertex-range assignments; each
// worker generates its share to local disk. This is the paper's
// 10-PC deployment on plain TCP.
//
// On the master machine:
//
//	trilliong-dist -role master -listen :7070 -workers 10 -scale 30 -format adj6
//
// On each worker machine:
//
//	trilliong-dist -role worker -master master-host:7070 -threads 6 -out /data/graph
//
// The output is the union of every worker's part files, bit-identical
// to a single-machine run with the same flags.
//
// The runtime is fault-tolerant (see docs/DIST.md): leases held by a
// worker that disconnects or stalls past the heartbeat deadline are
// requeued onto surviving workers, workers reconnect with exponential
// backoff, and a restarted worker pointed at its old -out directory
// skips part files it already completed. -min-workers permits a
// degraded start; -parts pins the file layout so runs stay comparable
// across cluster incarnations; -faultpoints (or TRILLIONG_FAULTPOINTS)
// arms fault injection for drills.
//
// Alternatively, -masterless drops the master entirely: every process
// is a swarm worker that derives the plan and its claim schedule from
// the job flags alone and rendezvouses with its peers purely through
// the shared -out directory (and -store, when given) — zero messages,
// no leases, workers free to join or die at any time (docs/DIST.md has
// the failure model). Each worker of one job runs the identical job
// flags against the same shared directory:
//
//	trilliong-dist -masterless -scale 30 -parts 512 -format adj6 \
//	    -out /shared/graph -store /shared/store -threads 6
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"

	trilliong "repro"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/pressure"
	"repro/internal/skg"
	"repro/internal/store"
	"repro/internal/swarm"
	"repro/internal/telemetry"
)

func main() {
	var (
		role        = flag.String("role", "", "master or worker")
		listen      = flag.String("listen", ":7070", "master: listen address")
		workers     = flag.Int("workers", 1, "master: worker processes to wait for")
		minWorkers  = flag.Int("min-workers", 0, "master: start degraded with this many workers once -accept-timeout expires (0 = require -workers)")
		parts       = flag.Int("parts", 0, "master: pin the part-file count (0 = thread sum at start)")
		scale       = flag.Int("scale", 20, "master: log2 vertex count")
		edgeFactor  = flag.Int64("edgefactor", 16, "master: edges per vertex")
		seedSpec    = flag.String("seed", "0.57,0.19,0.19,0.05", "master: seed matrix a,b,c,d")
		noise       = flag.Float64("noise", 0, "master: NSKG noise parameter")
		masterSeed  = flag.Uint64("masterseed", 1, "master: random master seed")
		format      = flag.String("format", "adj6", "master: output format")
		acceptTO    = flag.Duration("accept-timeout", 0, "master: registration wait / idle watchdog (0 = 60s)")
		heartbeat   = flag.Duration("heartbeat", 0, "master: heartbeat interval workers must keep (0 = 2s)")
		resultTO    = flag.Duration("result-timeout", 0, "master: max silence on a leased connection (0 = 5 heartbeats)")
		maxRetries  = flag.Int("max-retries", 0, "master: requeues per range before aborting (0 = 2)")
		maxLease    = flag.Int("max-lease", 0, "master: ranges per lease regardless of worker threads (0 = no cap)")
		masterAddr  = flag.String("master", "", "worker: master host:port")
		threads     = flag.Int("threads", 1, "worker: generation goroutines")
		out         = flag.String("out", "", "worker: local output directory")
		maxDials    = flag.Int("max-dials", 0, "worker: consecutive failed connection attempts before giving up (0 = 10)")
		storeDir    = flag.String("store", "", "worker: artifact store directory (cached ranges are copied, not regenerated)")
		storeMax    = flag.Int64("store-max-bytes", 0, "worker: store size budget in bytes (0 = unbounded)")
		remoteSpec  = flag.String("remote-store", "", "worker: cold tier behind -store: s3://bucket[/prefix]?endpoint=URL or a directory path")
		withPres    = flag.Bool("pressure", false, "worker: sample host pressure and advertise it in heartbeats so the master routes fresh ranges to cooler machines")
		masterless  = flag.Bool("masterless", false, "run as a swarm worker: no master, schedule derived from the job flags, rendezvous through the shared -out dir/-store (ignores -role)")
		swarmID     = flag.Uint64("swarm-id", 0, "masterless: worker identity steering collision avoidance (0 = random)")
		scanEvery   = flag.Duration("scan-interval", 0, "masterless: settle wait before stealing straggler parts (0 = 250ms)")
		maxEpochs   = flag.Int("max-epochs", 0, "masterless: abort if parts are still missing after this many epochs (0 = unbounded)")
		commSpec    = flag.String("community", "", "community spec JSON file: generate a community composition (master and masterless; blocks are the work units)")
		faults      = flag.String("faultpoints", "", "arm fault injection, e.g. 'dist.worker.scope=crash*1' (also via "+faultpoint.EnvVar+")")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/vars (JSON) on this address")
		withPprof   = flag.Bool("pprof", false, "with -metrics-addr: also mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	tel := telemetry.NewRegistry()
	if *metricsAddr != "" {
		if err := serveMetrics(*metricsAddr, tel, *withPprof); err != nil {
			fatal(err)
		}
	}

	if err := faultpoint.ArmFromEnv(); err != nil {
		fatal(err)
	}
	if *faults != "" {
		if err := faultpoint.ArmSpecs(*faults); err != nil {
			fatal(err)
		}
	}

	if *masterless {
		f, err := gformat.ParseFormat(*format)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			fatal(fmt.Errorf("masterless needs -out (the shared rendezvous directory)"))
		}
		var src core.PartSource
		if *commSpec != "" {
			// The layout fixes the part count (one per block), so -parts
			// need not — and must not — be pinned.
			lay, err := loadCommunityLayout(*commSpec)
			if err != nil {
				fatal(err)
			}
			*parts = lay.NumBlocks()
			src = lay
		} else {
			seed, err := parseSeed(*seedSpec)
			if err != nil {
				fatal(err)
			}
			cfg := core.DefaultConfig(*scale)
			cfg.EdgeFactor = *edgeFactor
			cfg.Seed = seed
			cfg.NoiseParam = *noise
			cfg.MasterSeed = *masterSeed
			if *parts < 1 {
				fatal(fmt.Errorf("masterless needs -parts pinned (> 0): with no master, the file layout must not depend on who shows up"))
			}
			src = core.NewConfigSource(cfg)
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		st, err := openWorkerStore(*storeDir, *storeMax, *remoteSpec, tel)
		if err != nil {
			fatal(err)
		}
		var ctrl *pressure.Controller
		if *withPres {
			ctrl = pressure.New(pressure.Config{DiskPath: *out, Telemetry: tel})
			stopSampling := ctrl.Start()
			defer stopSampling()
		}
		sum, err := swarm.RunJob(src, *out, f, swarm.Options{
			Parts: *parts, WorkerID: *swarmID, Threads: *threads,
			ScanInterval: *scanEvery, MaxEpochs: *maxEpochs,
			Store: st, Pressure: ctrl, Telemetry: tel,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("swarm worker     %016x (%d parts job-wide, %d threads)\n", sum.WorkerID, sum.Parts, *threads)
		fmt.Printf("claimed          %d parts won, %d publish races lost, %d skipped, %d from store\n", sum.Claimed, sum.Lost, sum.Skipped, sum.FromCache)
		fmt.Printf("verified         %d present parts across scans\n", sum.Verified)
		fmt.Printf("epochs           %d claim passes\n", sum.Epochs)
		fmt.Printf("edges generated  %d (%d bytes, duplicates included)\n", sum.Edges, sum.BytesWritten)
		fmt.Printf("plan / elapsed   %v / %v\n", sum.PlanDuration, sum.Elapsed)
		return
	}

	switch *role {
	case "master":
		f, err := gformat.ParseFormat(*format)
		if err != nil {
			fatal(err)
		}
		mc := dist.MasterConfig{
			Addr: *listen, Workers: *workers, MinWorkers: *minWorkers,
			Parts: *parts, Format: f,
			AcceptTimeout: *acceptTO, HeartbeatInterval: *heartbeat,
			ResultTimeout: *resultTO, MaxRetries: *maxRetries,
			MaxLeaseRanges: *maxLease,
			Telemetry:      tel,
		}
		var targetEdges int64
		if *commSpec != "" {
			lay, err := loadCommunityLayout(*commSpec)
			if err != nil {
				fatal(err)
			}
			ccfg := lay.Config()
			mc.Community = &ccfg
			targetEdges = lay.TotalEdges()
		} else {
			seed, err := parseSeed(*seedSpec)
			if err != nil {
				fatal(err)
			}
			cfg := core.DefaultConfig(*scale)
			cfg.EdgeFactor = *edgeFactor
			cfg.Seed = seed
			cfg.NoiseParam = *noise
			cfg.MasterSeed = *masterSeed
			mc.Config = cfg
			targetEdges = cfg.NumEdges()
		}
		m, err := dist.NewMaster(mc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("master listening on %s, waiting for %d workers...\n", m.Addr(), *workers)
		sum, err := m.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workers          %d (%d threads, %d parts)\n", sum.Workers, sum.TotalThreads, sum.Parts)
		fmt.Printf("edges            %d (target %d)\n", sum.Edges, targetEdges)
		fmt.Printf("max out-degree   %d\n", sum.MaxDegree)
		fmt.Printf("bytes written    %d across workers\n", sum.BytesWritten)
		if sum.Requeues > 0 || sum.SkippedParts > 0 {
			fmt.Printf("fault recovery   %d requeues, %d parts resumed from disk\n", sum.Requeues, sum.SkippedParts)
		}
		fmt.Printf("plan / elapsed   %v / %v\n", sum.PlanDuration, sum.Elapsed)
		fmt.Printf("peak worker mem  %d bytes\n", sum.PeakBytes)
	case "worker":
		if *masterAddr == "" || *out == "" {
			fatal(fmt.Errorf("worker needs -master and -out"))
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		st, err := openWorkerStore(*storeDir, *storeMax, *remoteSpec, tel)
		if err != nil {
			fatal(err)
		}
		var ctrl *pressure.Controller
		if *withPres {
			// Watch the disk the part files land on; the os.* and
			// pressure.* gauges ride the -metrics-addr registry.
			ctrl = pressure.New(pressure.Config{DiskPath: *out, Telemetry: tel})
			stopSampling := ctrl.Start()
			defer stopSampling()
		}
		if err := dist.RunWorker(dist.WorkerConfig{
			MasterAddr: *masterAddr, Threads: *threads, OutDir: *out,
			MaxDials: *maxDials, Telemetry: tel, Store: st,
			Pressure: ctrl,
		}); err != nil {
			fatal(err)
		}
		fmt.Println("worker done")
	default:
		fatal(fmt.Errorf("-role must be master or worker"))
	}
}

// serveMetrics starts the observability sidecar listener: the process
// telemetry as Prometheus text on /metrics and expvar-style JSON on
// /debug/vars, plus (opt-in) the pprof endpoints. It runs for the life
// of the process; generation traffic stays on the main port.
// openWorkerStore opens the worker's artifact store with an optional
// cold tier behind it ("" dir = no store at all).
func openWorkerStore(dir string, maxBytes int64, remoteSpec string, tel *telemetry.Registry) (*store.Store, error) {
	if dir == "" {
		if remoteSpec != "" {
			return nil, fmt.Errorf("-remote-store requires -store (the local hot tier)")
		}
		return nil, nil
	}
	remote, err := trilliong.OpenStoreBackend(remoteSpec, tel)
	if err != nil {
		return nil, fmt.Errorf("-remote-store: %w", err)
	}
	return store.Open(dir, store.Options{MaxBytes: maxBytes, Telemetry: tel, Remote: remote})
}

func serveMetrics(addr string, tel *telemetry.Registry, withPprof bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", tel.PrometheusHandler())
	mux.Handle("GET /debug/vars", tel.JSONHandler())
	if withPprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	fmt.Fprintf(os.Stderr, "trilliong-dist: metrics on http://%s/metrics\n", ln.Addr())
	go http.Serve(ln, mux)
	return nil
}

// loadCommunityLayout reads and resolves a community spec file.
func loadCommunityLayout(path string) (*community.Layout, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := community.ParseSpec(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	lay, err := community.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return lay, nil
}

func parseSeed(spec string) (skg.Seed, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return skg.Seed{}, fmt.Errorf("seed must be four comma-separated numbers, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return skg.Seed{}, fmt.Errorf("seed entry %q: %w", p, err)
		}
		vals[i] = v
	}
	s := skg.Seed{A: vals[0], B: vals[1], C: vals[2], D: vals[3]}
	return s, s.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trilliong-dist:", err)
	os.Exit(1)
}
