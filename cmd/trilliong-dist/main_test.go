package main

import "testing"

func TestParseSeed(t *testing.T) {
	s, err := parseSeed("0.57,0.19,0.19,0.05")
	if err != nil {
		t.Fatal(err)
	}
	if s.A != 0.57 || s.D != 0.05 {
		t.Fatalf("seed %+v", s)
	}
	for _, bad := range []string{"", "1,2,3", "x,y,z,w", "0.5,0.5,0.5,0.5"} {
		if _, err := parseSeed(bad); err == nil {
			t.Fatalf("parseSeed(%q) accepted", bad)
		}
	}
}
