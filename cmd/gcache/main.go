// Command gcache operates on a TrillionG artifact store (see
// docs/STORE.md): list and verify cached parts, trim the store to a
// byte budget, and pin entries eviction must never touch.
//
// Usage:
//
//	gcache -dir /var/cache/trilliong ls
//	gcache -dir /var/cache/trilliong stats
//	gcache -dir /var/cache/trilliong verify
//	gcache -dir /var/cache/trilliong gc -target 10737418240
//	gcache -dir /var/cache/trilliong pin <key>
//	gcache -dir /var/cache/trilliong unpin <key>
//
// Keys are the 64-hex-digit digests `ls` prints. Every command takes
// the store's own lock-free on-disk layout at face value; it is safe
// to run gcache while generators are using the store.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gcache:", err)
		os.Exit(1)
	}
}

// run executes one gcache invocation; split from main for testing.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gcache", flag.ContinueOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	maxBytes := fs.Int64("max-bytes", 0, "store byte budget used by gc without -target (0 = unbounded)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: gcache -dir <store> <ls|stats|verify|gc|pin|unpin> [args]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("missing command: ls, stats, verify, gc, pin or unpin")
	}
	st, err := store.Open(*dir, store.Options{MaxBytes: *maxBytes})
	if err != nil {
		return err
	}

	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "ls":
		return runLs(st, stdout)
	case "stats":
		return runStats(st, stdout)
	case "verify":
		return runVerify(st, stdout)
	case "gc":
		return runGC(st, rest, stdout)
	case "pin", "unpin":
		return runPin(st, cmd, rest, stdout)
	default:
		return fmt.Errorf("unknown command %q (want ls, stats, verify, gc, pin or unpin)", cmd)
	}
}

// runLs prints one line per cached object: key, size, edges, pin mark.
func runLs(st *store.Store, w io.Writer) error {
	for _, info := range st.List() {
		pin := ""
		if info.Pinned {
			pin = "  pinned"
		}
		fmt.Fprintf(w, "%s  %12d bytes  %12d edges%s\n", info.Key, info.Size, info.Edges, pin)
	}
	return nil
}

func runStats(st *store.Store, w io.Writer) error {
	s := st.Stats()
	fmt.Fprintf(w, "objects   %d\n", s.Objects)
	fmt.Fprintf(w, "bytes     %d", s.Bytes)
	if s.MaxBytes > 0 {
		fmt.Fprintf(w, " / %d budget", s.MaxBytes)
	}
	fmt.Fprintln(w)
	return nil
}

// runVerify re-hashes every payload against its sidecar. Corrupt
// entries are reported and evicted (the store self-heals on read
// anyway; verify just finds the damage before a consumer does).
func runVerify(st *store.Store, w io.Writer) error {
	checked, corrupt, err := st.VerifyAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "verified %d objects, %d corrupt\n", checked, len(corrupt))
	if len(corrupt) == 0 {
		return nil
	}
	for _, k := range corrupt {
		fmt.Fprintf(w, "corrupt: %s (evicted)\n", k)
	}
	return fmt.Errorf("%d corrupt objects", len(corrupt))
}

func runGC(st *store.Store, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gcache gc", flag.ContinueOnError)
	target := fs.Int64("target", 0, "trim payload bytes to this total (0 = the -max-bytes budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	removed, freed := st.GC(*target)
	fmt.Fprintf(w, "evicted %d objects, freed %d bytes\n", removed, freed)
	return nil
}

func runPin(st *store.Store, cmd string, args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("%s needs exactly one key", cmd)
	}
	key, err := store.ParseKey(args[0])
	if err != nil {
		return err
	}
	if cmd == "pin" {
		err = st.Pin(key)
	} else {
		err = st.Unpin(key)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%sned %s\n", cmd, key)
	return nil
}
