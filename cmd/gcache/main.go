// Command gcache operates on a TrillionG artifact store (see
// docs/STORE.md): list and verify cached parts, trim the store to a
// byte budget, pin entries eviction must never touch, and move
// artifacts between the local hot tier and a remote cold tier.
//
// Usage:
//
//	gcache -dir /var/cache/trilliong ls [-json]
//	gcache -dir /var/cache/trilliong stats
//	gcache -dir /var/cache/trilliong verify
//	gcache -dir /var/cache/trilliong gc -target 10737418240
//	gcache -dir /var/cache/trilliong pin <key>
//	gcache -dir /var/cache/trilliong unpin <key>
//	gcache -dir ... -remote-store s3://bucket?endpoint=URL push <key>|-all
//	gcache -dir ... -remote-store s3://bucket?endpoint=URL pull <key>
//	gcache -dir ... -remote-store s3://bucket?endpoint=URL tiers
//
// Keys are the 64-hex-digit digests `ls` prints. -remote-store takes
// an s3:// spec or a directory path (see docs/STORE.md). Every command
// takes the store's own lock-free on-disk layout at face value; it is
// safe to run gcache while generators are using the store.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	trilliong "repro"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gcache:", err)
		os.Exit(1)
	}
}

// run executes one gcache invocation; split from main for testing.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gcache", flag.ContinueOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	maxBytes := fs.Int64("max-bytes", 0, "store byte budget used by gc without -target (0 = unbounded)")
	remoteSpec := fs.String("remote-store", "", "cold tier: s3://bucket[/prefix]?endpoint=URL or a directory path")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: gcache -dir <store> [-remote-store <spec>] <ls|stats|verify|gc|pin|unpin|push|pull|tiers> [args]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("missing command: ls, stats, verify, gc, pin, unpin, push, pull or tiers")
	}
	remote, err := trilliong.OpenStoreBackend(*remoteSpec, nil)
	if err != nil {
		return fmt.Errorf("-remote-store: %w", err)
	}
	st, err := store.Open(*dir, store.Options{MaxBytes: *maxBytes, Remote: remote})
	if err != nil {
		return err
	}

	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "ls":
		return runLs(st, rest, stdout)
	case "stats":
		return runStats(st, stdout)
	case "verify":
		return runVerify(st, stdout)
	case "gc":
		return runGC(st, rest, stdout)
	case "pin", "unpin":
		return runPin(st, cmd, rest, stdout)
	case "push":
		return runPush(st, rest, stdout)
	case "pull":
		return runPull(st, rest, stdout)
	case "tiers":
		return runTiers(st, stdout)
	default:
		return fmt.Errorf("unknown command %q (want ls, stats, verify, gc, pin, unpin, push, pull or tiers)", cmd)
	}
}

// lsEntry is one object in `ls -json` output. Field order is the
// emitted key order; keep it stable — scripts diff this.
type lsEntry struct {
	Key    string `json:"key"`
	Size   int64  `json:"size"`
	Edges  int64  `json:"edges"`
	Pinned bool   `json:"pinned,omitempty"`
}

// runLs prints one line per cached object: key, size, edges, pin mark.
// -json emits the same listing as a byte-stable JSON array (sorted by
// key, two-space indent, trailing newline — the gstat -json
// convention).
func runLs(st *store.Store, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gcache ls", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit a sorted JSON array instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	infos := st.List()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key.String() < infos[j].Key.String() })
	if *asJSON {
		entries := make([]lsEntry, len(infos))
		for i, info := range infos {
			entries[i] = lsEntry{Key: info.Key.String(), Size: info.Size, Edges: info.Edges, Pinned: info.Pinned}
		}
		b, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", b)
		return err
	}
	for _, info := range infos {
		pin := ""
		if info.Pinned {
			pin = "  pinned"
		}
		fmt.Fprintf(w, "%s  %12d bytes  %12d edges%s\n", info.Key, info.Size, info.Edges, pin)
	}
	return nil
}

func runStats(st *store.Store, w io.Writer) error {
	s := st.Stats()
	fmt.Fprintf(w, "objects   %d\n", s.Objects)
	fmt.Fprintf(w, "bytes     %d", s.Bytes)
	if s.MaxBytes > 0 {
		fmt.Fprintf(w, " / %d budget", s.MaxBytes)
	}
	fmt.Fprintln(w)
	return nil
}

// runVerify re-hashes every payload against its sidecar. Corrupt
// entries are reported and evicted (the store self-heals on read
// anyway; verify just finds the damage before a consumer does).
func runVerify(st *store.Store, w io.Writer) error {
	checked, corrupt, err := st.VerifyAll()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "verified %d objects, %d corrupt\n", checked, len(corrupt))
	if len(corrupt) == 0 {
		return nil
	}
	for _, k := range corrupt {
		fmt.Fprintf(w, "corrupt: %s (evicted)\n", k)
	}
	return fmt.Errorf("%d corrupt objects", len(corrupt))
}

func runGC(st *store.Store, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gcache gc", flag.ContinueOnError)
	target := fs.Int64("target", 0, "trim payload bytes to this total (0 = the -max-bytes budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	removed, freed := st.GC(*target)
	fmt.Fprintf(w, "evicted %d objects, freed %d bytes\n", removed, freed)
	return nil
}

func runPin(st *store.Store, cmd string, args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("%s needs exactly one key", cmd)
	}
	key, err := store.ParseKey(args[0])
	if err != nil {
		return err
	}
	if cmd == "pin" {
		err = st.Pin(key)
	} else {
		err = st.Unpin(key)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%sned %s\n", cmd, key)
	return nil
}

// runPush uploads one local object (or, with -all, every one) into the
// cold tier without evicting it — warm-up for a fresh bucket, or
// pre-demotion before shrinking the hot tier.
func runPush(st *store.Store, args []string, w io.Writer) error {
	if st.Remote() == nil {
		return fmt.Errorf("push needs -remote-store")
	}
	if len(args) == 1 && args[0] == "-all" {
		pushed, err := st.PushAll()
		fmt.Fprintf(w, "pushed %d objects\n", pushed)
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("push needs exactly one key (or -all)")
	}
	key, err := store.ParseKey(args[0])
	if err != nil {
		return err
	}
	if err := st.Push(key); err != nil {
		return err
	}
	fmt.Fprintf(w, "pushed %s\n", key)
	return nil
}

// runPull promotes one cold object into the hot tier (a no-op when it
// is already local).
func runPull(st *store.Store, args []string, w io.Writer) error {
	if st.Remote() == nil {
		return fmt.Errorf("pull needs -remote-store")
	}
	if len(args) != 1 {
		return fmt.Errorf("pull needs exactly one key")
	}
	key, err := store.ParseKey(args[0])
	if err != nil {
		return err
	}
	info, ok, err := st.Pull(key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("pull %s: not in either tier", key)
	}
	fmt.Fprintf(w, "pulled %s  %d bytes  %d edges\n", info.Key, info.Size, info.Edges)
	return nil
}

// runTiers prints the union of both tiers with each object's location:
// local, remote, or local+remote.
func runTiers(st *store.Store, w io.Writer) error {
	if st.Remote() == nil {
		return fmt.Errorf("tiers needs -remote-store")
	}
	type row struct {
		size          int64
		local, remote bool
	}
	rows := make(map[string]*row)
	for _, info := range st.List() {
		rows[info.Key.String()] = &row{size: info.Size, local: true}
	}
	remotes, err := st.RemoteList()
	if err != nil {
		return err
	}
	for _, e := range remotes {
		if r, ok := rows[e.Key.String()]; ok {
			r.remote = true
		} else {
			rows[e.Key.String()] = &row{size: e.Side.Size, remote: true}
		}
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var nLocal, nRemote int
	for _, k := range keys {
		r := rows[k]
		if r.local {
			nLocal++
		}
		if r.remote {
			nRemote++
		}
		loc := "local"
		switch {
		case r.local && r.remote:
			loc = "local+remote"
		case r.remote:
			loc = "remote"
		}
		fmt.Fprintf(w, "%s  %12d bytes  %s\n", k, r.size, loc)
	}
	fmt.Fprintf(w, "%d objects (%d local, %d remote)\n", len(rows), nLocal, nRemote)
	return nil
}
