package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// seedStore populates a fresh store with n small artifacts and returns
// its directory plus the keys in ingest order.
func seedStore(t *testing.T, n int) (string, []store.Key) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]store.Key, n)
	for i := range keys {
		keys[i] = store.DeriveKey(store.KeyInput{
			ConfigFingerprint: "gcache-test",
			MasterSeed:        1,
			Lo:                int64(i),
			Hi:                int64(i + 1),
			Format:            "tsv",
			Codec:             store.CodecVersion,
		})
		src := filepath.Join(t.TempDir(), "part")
		if err := os.WriteFile(src, bytes.Repeat([]byte{byte(i)}, 100), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := st.IngestFile(keys[i], src, int64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	return dir, keys
}

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("gcache %v: %v", args, err)
	}
	return out.String()
}

func TestGcacheLsAndStats(t *testing.T) {
	dir, keys := seedStore(t, 3)

	ls := runOK(t, "-dir", dir, "ls")
	if got := strings.Count(ls, "\n"); got != 3 {
		t.Fatalf("ls printed %d lines:\n%s", got, ls)
	}
	for _, k := range keys {
		if !strings.Contains(ls, k.String()) {
			t.Fatalf("ls output missing key %s:\n%s", k, ls)
		}
	}

	stats := runOK(t, "-dir", dir, "stats")
	if !strings.Contains(stats, "objects   3") || !strings.Contains(stats, "bytes     300") {
		t.Fatalf("stats output:\n%s", stats)
	}
}

func TestGcacheVerifyDetectsCorruption(t *testing.T) {
	dir, keys := seedStore(t, 2)
	if out := runOK(t, "-dir", dir, "verify"); !strings.Contains(out, "verified 2 objects, 0 corrupt") {
		t.Fatalf("clean verify output:\n%s", out)
	}

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CorruptForTest(keys[0]); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-dir", dir, "verify"}, &out)
	if err == nil {
		t.Fatalf("verify passed over corruption:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 corrupt") || !strings.Contains(out.String(), keys[0].String()) {
		t.Fatalf("verify output:\n%s", out.String())
	}
	// The corrupt entry was evicted: a re-verify is clean.
	if out := runOK(t, "-dir", dir, "verify"); !strings.Contains(out, "verified 1 objects, 0 corrupt") {
		t.Fatalf("post-eviction verify output:\n%s", out)
	}
}

func TestGcachePinAndGC(t *testing.T) {
	dir, keys := seedStore(t, 4)
	runOK(t, "-dir", dir, "pin", keys[0].String())
	if ls := runOK(t, "-dir", dir, "ls"); strings.Count(ls, "pinned") != 1 {
		t.Fatalf("ls after pin:\n%s", ls)
	}

	// Trim to 150 bytes: the pinned entry (100 bytes) survives plus at
	// most one more; eviction is LRU among the unpinned rest.
	out := runOK(t, "-dir", dir, "gc", "-target", "150")
	if !strings.Contains(out, "evicted 3 objects, freed 300 bytes") {
		t.Fatalf("gc output:\n%s", out)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Has(keys[0]) {
		t.Fatal("pinned entry was evicted")
	}
	if got := st.Stats().Objects; got != 1 {
		t.Fatalf("objects after gc = %d, want 1", got)
	}

	runOK(t, "-dir", dir, "unpin", keys[0].String())
	if ls := runOK(t, "-dir", dir, "ls"); strings.Contains(ls, "pinned") {
		t.Fatalf("ls after unpin:\n%s", ls)
	}
}

func TestGcacheUsageErrors(t *testing.T) {
	dir, _ := seedStore(t, 1)
	for _, args := range [][]string{
		{"ls"},                       // no -dir
		{"-dir", dir},                // no command
		{"-dir", dir, "frobnicate"},  // unknown command
		{"-dir", dir, "pin"},         // missing key
		{"-dir", dir, "pin", "nope"}, // malformed key
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Fatalf("gcache %v succeeded", args)
		}
	}
}
