package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGcacheLsJSONGolden pins the byte-stable `ls -json` output for a
// fixed three-object store. Keys, sizes and edge counts are pure
// functions of the seed inputs, so the bytes are identical on every
// run and platform. Refresh with: go test ./cmd/gcache -run Golden -update
func TestGcacheLsJSONGolden(t *testing.T) {
	dir, keys := seedStore(t, 3)
	runOK(t, "-dir", dir, "pin", keys[1].String())

	got := runOK(t, "-dir", dir, "ls", "-json")
	golden := filepath.Join("testdata", "ls_json.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("ls -json drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Byte-stable means run-to-run identical too.
	if again := runOK(t, "-dir", dir, "ls", "-json"); again != got {
		t.Fatal("ls -json output differs between runs")
	}
}

// TestGcachePushPullTiers drives the tier-moving subcommands against a
// directory cold tier.
func TestGcachePushPullTiers(t *testing.T) {
	dir, keys := seedStore(t, 2)
	cold := filepath.Join(t.TempDir(), "cold")

	// Tier commands without a remote are refused.
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "tiers"}, &out); err == nil {
		t.Fatal("tiers without -remote-store succeeded")
	}

	remoteArgs := []string{"-dir", dir, "-remote-store", cold}
	if got := runOK(t, append(remoteArgs, "push", keys[0].String())...); !strings.Contains(got, "pushed "+keys[0].String()) {
		t.Fatalf("push output:\n%s", got)
	}
	tiers := runOK(t, append(remoteArgs, "tiers")...)
	if !strings.Contains(tiers, keys[0].String()+"  ") || !strings.Contains(tiers, "local+remote") {
		t.Fatalf("tiers after push:\n%s", tiers)
	}
	if !strings.Contains(tiers, "2 objects (2 local, 1 remote)") {
		t.Fatalf("tiers summary:\n%s", tiers)
	}

	// Evict the pushed object locally; it shows as remote-only, and
	// pull brings it back.
	runOK(t, append(remoteArgs, "gc", "-target", "100")...)
	tiers = runOK(t, append(remoteArgs, "tiers")...)
	if !strings.Contains(tiers, "remote") || strings.Contains(tiers, "local+remote") {
		t.Fatalf("tiers after gc:\n%s", tiers)
	}
	if got := runOK(t, append(remoteArgs, "pull", keys[0].String())...); !strings.Contains(got, "pulled "+keys[0].String()) {
		t.Fatalf("pull output:\n%s", got)
	}
	tiers = runOK(t, append(remoteArgs, "tiers")...)
	if !strings.Contains(tiers, "local+remote") {
		t.Fatalf("tiers after pull:\n%s", tiers)
	}

	// push -all uploads the rest.
	if got := runOK(t, append(remoteArgs, "push", "-all")...); !strings.Contains(got, "pushed 2 objects") {
		t.Fatalf("push -all output:\n%s", got)
	}
	tiers = runOK(t, append(remoteArgs, "tiers")...)
	if !strings.Contains(tiers, "2 objects (2 local, 2 remote)") {
		t.Fatalf("tiers after push -all:\n%s", tiers)
	}
}
