package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gformat"
)

func writeTSV(t *testing.T, path string, edges []gformat.Edge) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := gformat.NewTSVWriter(f)
	for _, e := range edges {
		if err := w.WriteScope(e.Src, []int64{e.Dst}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCopyGraphTSVToADJ6GroupsScopes: consecutive same-source edges
// collapse into one adjacency record.
func TestCopyGraphTSVToADJ6(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.tsv")
	writeTSV(t, in, []gformat.Edge{
		{Src: 1, Dst: 5}, {Src: 1, Dst: 6}, {Src: 2, Dst: 7}, {Src: 1, Dst: 8},
	})
	f, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := filepath.Join(dir, "out.adj6")
	of, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	w := gformat.NewADJ6Writer(of)
	if err := copyGraph(f, gformat.TSV, w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	of.Close()

	rf, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	r := gformat.NewADJ6Reader(rf)
	type rec struct {
		src  int64
		dsts []int64
	}
	var recs []rec
	for {
		src, dsts, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{src, dsts})
	}
	if len(recs) != 3 { // scopes: 1→{5,6}, 2→{7}, 1→{8}
		t.Fatalf("records %d: %+v", len(recs), recs)
	}
	if recs[0].src != 1 || len(recs[0].dsts) != 2 {
		t.Fatalf("first scope %+v", recs[0])
	}
}

// TestCopyGraphADJ6ToCSR6: full chain through the seekable format.
func TestCopyGraphADJ6ToCSR6(t *testing.T) {
	dir := t.TempDir()
	adjPath := filepath.Join(dir, "g.adj6")
	af, err := os.Create(adjPath)
	if err != nil {
		t.Fatal(err)
	}
	aw := gformat.NewADJ6Writer(af)
	aw.WriteScope(0, []int64{3, 1})
	aw.WriteScope(2, []int64{0})
	aw.Close()
	af.Close()

	in, err := os.Open(adjPath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	csrPath := filepath.Join(dir, "g.csr6")
	cf, err := os.Create(csrPath)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := gformat.NewCSR6Writer(cf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := copyGraph(in, gformat.ADJ6, cw); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cf.Close()

	rf, err := os.Open(csrPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	g, err := gformat.ReadCSR6(rf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.Degree(0) != 2 || g.Degree(2) != 1 {
		t.Fatalf("converted graph wrong: %d edges", g.NumEdges())
	}
}
