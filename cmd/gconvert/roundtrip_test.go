package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/gformat"
)

// convertFile runs one gconvert conversion exactly as the binary does:
// copyGraph from in (format fi) into a fresh writer for fo at outPath.
// vertices is required for CSR6 output.
func convertFile(t *testing.T, inPath string, fi gformat.Format, outPath string, fo gformat.Format, vertices int64) {
	t.Helper()
	in, err := os.Open(inPath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var w gformat.Writer
	switch fo {
	case gformat.TSV:
		w = gformat.NewTSVWriter(out)
	case gformat.ADJ6:
		w = gformat.NewADJ6Writer(out)
	case gformat.CSR6:
		cw, err := gformat.NewCSR6Writer(out, vertices)
		if err != nil {
			t.Fatal(err)
		}
		w = cw
	}
	if err := copyGraph(in, fi, w); err != nil {
		t.Fatalf("%s -> %s: %v", fi, fo, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
}

// readEdges loads a TSV file as a sorted edge multiset.
func readEdges(t *testing.T, path string) []gformat.Edge {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := gformat.NewTSVReader(f)
	var edges []gformat.Edge
	for {
		e, err := r.Next()
		if err != nil {
			break
		}
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	return edges
}

// randomScopes draws a CSR-compatible graph: sources strictly
// increasing, each with a sorted set of distinct destinations.
func randomScopes(rng *rand.Rand, nv int64) ([]int64, [][]int64) {
	var srcs []int64
	var adjs [][]int64
	for v := int64(0); v < nv; v++ {
		if rng.Intn(3) == 0 { // empty vertex: appears in no scope
			continue
		}
		deg := 1 + rng.Intn(5)
		seen := map[int64]bool{}
		var dsts []int64
		for len(dsts) < deg {
			d := rng.Int63n(nv)
			if !seen[d] {
				seen[d] = true
				dsts = append(dsts, d)
			}
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		srcs, adjs = append(srcs, v), append(adjs, dsts)
	}
	return srcs, adjs
}

func writeScopesTSV(t *testing.T, path string, srcs []int64, adjs [][]int64) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := gformat.NewTSVWriter(f)
	for i, s := range srcs {
		if err := w.WriteScope(s, adjs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// roundTrip drives TSV -> ADJ6 -> CSR6 -> TSV and checks (a) the edge
// multiset survives unchanged and (b) CSR6 is a fixed point: converting
// the final TSV to CSR6 again reproduces the first CSR6 file
// bit-identically.
func roundTrip(t *testing.T, dir string, nv int64) {
	t.Helper()
	tsv1 := filepath.Join(dir, "1.tsv")
	adj := filepath.Join(dir, "2.adj6")
	csr1 := filepath.Join(dir, "3.csr6")
	tsv2 := filepath.Join(dir, "4.tsv")
	csr2 := filepath.Join(dir, "5.csr6")

	convertFile(t, tsv1, gformat.TSV, adj, gformat.ADJ6, 0)
	convertFile(t, adj, gformat.ADJ6, csr1, gformat.CSR6, nv)
	convertFile(t, csr1, gformat.CSR6, tsv2, gformat.TSV, 0)

	want, got := readEdges(t, tsv1), readEdges(t, tsv2)
	if len(want) != len(got) {
		t.Fatalf("round trip changed edge count: %d -> %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("edge %d changed: %v -> %v", i, want[i], got[i])
		}
	}

	convertFile(t, tsv2, gformat.TSV, csr2, gformat.CSR6, nv)
	b1, err := os.ReadFile(csr1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(csr2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("CSR6 is not a round-trip fixed point (%d vs %d bytes)", len(b1), len(b2))
	}
}

// TestRoundTripRandomGraphs: property check over seeded random graphs
// with empty vertices interleaved.
func TestRoundTripRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nv := int64(16 + rng.Intn(100))
			srcs, adjs := randomScopes(rng, nv)
			dir := t.TempDir()
			writeScopesTSV(t, filepath.Join(dir, "1.tsv"), srcs, adjs)
			roundTrip(t, dir, nv)
		})
	}
}

// TestRoundTripEmptyVertexRange: a graph with vertices but no edges
// survives the chain — the CSR6 file is all-zero offsets, the TSV ends
// empty.
func TestRoundTripEmptyVertexRange(t *testing.T) {
	dir := t.TempDir()
	writeScopesTSV(t, filepath.Join(dir, "1.tsv"), nil, nil)
	roundTrip(t, dir, 32)
	if edges := readEdges(t, filepath.Join(dir, "4.tsv")); len(edges) != 0 {
		t.Fatalf("empty graph grew %d edges", len(edges))
	}
}

// TestRoundTripSingleVertex: the 1-vertex graph (self-loop only).
func TestRoundTripSingleVertex(t *testing.T) {
	dir := t.TempDir()
	writeScopesTSV(t, filepath.Join(dir, "1.tsv"), []int64{0}, [][]int64{{0}})
	roundTrip(t, dir, 1)
	edges := readEdges(t, filepath.Join(dir, "4.tsv"))
	if len(edges) != 1 || edges[0] != (gformat.Edge{Src: 0, Dst: 0}) {
		t.Fatalf("single-vertex graph round-tripped to %v", edges)
	}
}
