// Command gconvert converts graph files between the three supported
// formats (TSV, ADJ6, CSR6).
//
// Usage:
//
//	gconvert -in tsv -out adj6 graph.tsv graph.adj6
//	gconvert -in adj6 -out csr6 -vertices 1048576 part.adj6 part.csr6
//
// CSR6 output requires -vertices and input scopes in increasing source
// order (which TrillionG part files provide). TSV→CSR6 additionally
// requires the edge list to be grouped by source.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gformat"
)

func main() {
	var (
		inFmt    = flag.String("in", "tsv", "input format")
		outFmt   = flag.String("out", "adj6", "output format")
		vertices = flag.Int64("vertices", 0, "vertex count (required for csr6 output)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fatal(fmt.Errorf("usage: gconvert [-flags] <input> <output>"))
	}
	fi, err := gformat.ParseFormat(*inFmt)
	if err != nil {
		fatal(err)
	}
	fo, err := gformat.ParseFormat(*outFmt)
	if err != nil {
		fatal(err)
	}
	if fo == gformat.CSR6 && *vertices <= 0 {
		fatal(fmt.Errorf("csr6 output requires -vertices"))
	}

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer in.Close()
	out, err := os.Create(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	var w gformat.Writer
	switch fo {
	case gformat.TSV:
		w = gformat.NewTSVWriter(out)
	case gformat.ADJ6:
		w = gformat.NewADJ6Writer(out)
	case gformat.CSR6:
		cw, err := gformat.NewCSR6Writer(out, *vertices)
		if err != nil {
			fatal(err)
		}
		w = cw
	}

	if err := copyGraph(in, fi, w); err != nil {
		fatal(err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	if err := out.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("converted %d edges, %d bytes written\n", w.EdgesWritten(), w.BytesWritten())
}

func copyGraph(in *os.File, fi gformat.Format, w gformat.Writer) error {
	switch fi {
	case gformat.TSV:
		r := gformat.NewTSVReader(in)
		// Group consecutive edges of one source into a scope.
		var cur int64 = -1
		var dsts []int64
		flush := func() error {
			if cur < 0 || len(dsts) == 0 {
				return nil
			}
			return w.WriteScope(cur, dsts)
		}
		for {
			e, err := r.Next()
			if err == io.EOF {
				return flush()
			}
			if err != nil {
				return err
			}
			if e.Src != cur {
				if err := flush(); err != nil {
					return err
				}
				cur, dsts = e.Src, dsts[:0]
			}
			dsts = append(dsts, e.Dst)
		}
	case gformat.ADJ6:
		r := gformat.NewADJ6Reader(in)
		for {
			src, dsts, err := r.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := w.WriteScope(src, dsts); err != nil {
				return err
			}
		}
	case gformat.CSR6:
		g, err := gformat.ReadCSR6(in)
		if err != nil {
			return err
		}
		for v := int64(0); v < g.NumVertices; v++ {
			if adj := g.Adj(v); len(adj) > 0 {
				if err := w.WriteScope(v, adj); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return fmt.Errorf("unsupported input format")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gconvert:", err)
	os.Exit(1)
}
