package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/skg"
	"repro/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// genFixture writes the scale-10 reference graph (Graph500 seed,
// master seed 1) as one ADJ6 part and returns its path. The graph is a
// pure function of the config, so the bytes — and therefore the stats
// — are identical on every run and platform.
func genFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := core.DefaultConfig(10)
	cfg.Workers = 1
	if _, err := core.Generate(cfg, core.FileSinks(dir, gformat.ADJ6, cfg.NumVertices())); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "part-00000.adj6")
}

// TestJSONReportGolden pins the -json output for the reference graph.
// Refresh with: go test ./cmd/gstat -run Golden -update
func TestJSONReportGolden(t *testing.T) {
	counter := stats.NewDegreeCounter()
	edges, err := ingest(genFixture(t), gformat.ADJ6, counter)
	if err != nil {
		t.Fatal(err)
	}
	r := buildReport(edges, counter.OutHist(), counter.InHist(), counter.OutDegrees())
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "report_scale10.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("-json report drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpectReportGolden pins the -expect-scale validation section for
// the reference graph — the same validate.Report trilliong-validate
// emits, embedded in gstat's JSON. Refresh with:
// go test ./cmd/gstat -run Golden -update
func TestExpectReportGolden(t *testing.T) {
	cfg := core.DefaultConfig(10)
	rep, err := buildExpectReport([]string{genFixture(t)}, gformat.ADJ6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "validate_scale10.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("-expect validation report drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpectReportShape: the embedded section matches the graph it
// measured and records the full parameter set.
func TestExpectReportShape(t *testing.T) {
	path := genFixture(t)
	cfg := core.DefaultConfig(10)
	rep, err := buildExpectReport([]string{path}, gformat.ADJ6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict == "fail" {
		t.Errorf("reference graph fails its own expectations:\n%s", rep.Summary())
	}
	if rep.Params.Scale != 10 || rep.Params.Model != "skg" || rep.Params.MasterSeed != 1 {
		t.Errorf("params not recorded: %+v", rep.Params)
	}
	counter := stats.NewDegreeCounter()
	edges, err := ingest(path, gformat.ADJ6, counter)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observed.Edges != edges {
		t.Errorf("validation saw %d edges, gstat counted %d", rep.Observed.Edges, edges)
	}
	// A wrong expectation must be flagged, not absorbed. (A wrong master
	// seed alone would rightly pass for plain SKG — same distribution,
	// different sample — so the mismatch here is the seed matrix.)
	wrong := cfg
	wrong.Seed = skg.Seed{A: 0.25, B: 0.25, C: 0.25, D: 0.25}
	rep, err = buildExpectReport([]string{path}, gformat.ADJ6, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Errorf("uniform-seed expectations on a skewed graph got verdict %s, want fail", rep.Verdict)
	}
}

// TestJSONReportShape: field-level sanity independent of the golden
// bytes, so a legitimate regeneration of the golden file still has to
// look like a scale-10 power-law graph.
func TestJSONReportShape(t *testing.T) {
	counter := stats.NewDegreeCounter()
	edges, err := ingest(genFixture(t), gformat.ADJ6, counter)
	if err != nil {
		t.Fatal(err)
	}
	r := buildReport(edges, counter.OutHist(), counter.InHist(), counter.OutDegrees())
	if r.Edges != edges || r.Edges == 0 {
		t.Fatalf("edges %d vs ingested %d", r.Edges, edges)
	}
	if r.OutVertices == 0 || r.InVertices == 0 || r.MaxOutDegree == 0 {
		t.Fatalf("degenerate report %+v", r)
	}
	if r.OutPowerLaw == nil || r.OutPowerLaw.Slope >= 0 {
		t.Fatalf("out power-law fit %+v; want a negative slope", r.OutPowerLaw)
	}
	var back jsonReport
	b, _ := json.Marshal(r)
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		// Pointer fields compare by address; compare the values.
		if back.Edges != r.Edges || *back.OutPowerLaw != *r.OutPowerLaw {
			t.Fatalf("round trip changed the report: %+v vs %+v", back, r)
		}
	}
}

// TestFitDropsNaN: an undefined fit is omitted, not emitted as NaN
// (which encoding/json cannot marshal).
func TestFitDropsNaN(t *testing.T) {
	// A single-degree histogram has no slope to fit.
	h := stats.Hist{1: 3}
	r := buildReport(3, h, h, []int64{1, 1, 1})
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("report with undefined fits failed to marshal: %v", err)
	}
}
