package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// genFixture writes the scale-10 reference graph (Graph500 seed,
// master seed 1) as one ADJ6 part and returns its path. The graph is a
// pure function of the config, so the bytes — and therefore the stats
// — are identical on every run and platform.
func genFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := core.DefaultConfig(10)
	cfg.Workers = 1
	if _, err := core.Generate(cfg, core.FileSinks(dir, gformat.ADJ6, cfg.NumVertices())); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "part-00000.adj6")
}

// TestJSONReportGolden pins the -json output for the reference graph.
// Refresh with: go test ./cmd/gstat -run Golden -update
func TestJSONReportGolden(t *testing.T) {
	counter := stats.NewDegreeCounter()
	edges, err := ingest(genFixture(t), gformat.ADJ6, counter)
	if err != nil {
		t.Fatal(err)
	}
	r := buildReport(edges, counter.OutHist(), counter.InHist(), counter.OutDegrees())
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "report_scale10.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("-json report drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestJSONReportShape: field-level sanity independent of the golden
// bytes, so a legitimate regeneration of the golden file still has to
// look like a scale-10 power-law graph.
func TestJSONReportShape(t *testing.T) {
	counter := stats.NewDegreeCounter()
	edges, err := ingest(genFixture(t), gformat.ADJ6, counter)
	if err != nil {
		t.Fatal(err)
	}
	r := buildReport(edges, counter.OutHist(), counter.InHist(), counter.OutDegrees())
	if r.Edges != edges || r.Edges == 0 {
		t.Fatalf("edges %d vs ingested %d", r.Edges, edges)
	}
	if r.OutVertices == 0 || r.InVertices == 0 || r.MaxOutDegree == 0 {
		t.Fatalf("degenerate report %+v", r)
	}
	if r.OutPowerLaw == nil || r.OutPowerLaw.Slope >= 0 {
		t.Fatalf("out power-law fit %+v; want a negative slope", r.OutPowerLaw)
	}
	var back jsonReport
	b, _ := json.Marshal(r)
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		// Pointer fields compare by address; compare the values.
		if back.Edges != r.Edges || *back.OutPowerLaw != *r.OutPowerLaw {
			t.Fatalf("round trip changed the report: %+v vs %+v", back, r)
		}
	}
}

// TestFitDropsNaN: an undefined fit is omitted, not emitted as NaN
// (which encoding/json cannot marshal).
func TestFitDropsNaN(t *testing.T) {
	// A single-degree histogram has no slope to fit.
	h := stats.Hist{1: 3}
	r := buildReport(3, h, h, []int64{1, 1, 1})
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("report with undefined fits failed to marshal: %v", err)
	}
}
