package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gformat"
	"repro/internal/stats"
)

func TestIngestADJ6(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.adj6")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := gformat.NewADJ6Writer(f)
	w.WriteScope(1, []int64{2, 3, 4})
	w.WriteScope(5, []int64{2})
	w.Close()
	f.Close()

	counter := stats.NewDegreeCounter()
	n, err := ingest(path, gformat.ADJ6, counter)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("edges %d", n)
	}
	out := counter.OutHist()
	if out[3] != 1 || out[1] != 1 {
		t.Fatalf("out hist %v", out)
	}
	in := counter.InHist()
	if in[2] != 1 || in[1] != 2 { // vertex 2 has in-degree 2; vertices 3,4 have 1
		t.Fatalf("in hist %v", in)
	}
}

func TestIngestTSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	if err := os.WriteFile(path, []byte("0\t1\n0\t2\n3\t0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	counter := stats.NewDegreeCounter()
	n, err := ingest(path, gformat.TSV, counter)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestIngestCSR6(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr6")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gformat.NewCSR6Writer(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteScope(0, []int64{1, 2})
	w.WriteScope(3, []int64{0})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	counter := stats.NewDegreeCounter()
	n, err := ingest(path, gformat.CSR6, counter)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestIngestMissingFile(t *testing.T) {
	if _, err := ingest("/nonexistent", gformat.TSV, stats.NewDegreeCounter()); err == nil {
		t.Fatal("expected error")
	}
}

func TestCompareFlagPath(t *testing.T) {
	// Exercise the KS helper the -compare flag uses via two ingests.
	dir := t.TempDir()
	write := func(name string, scopes map[int64][]int64) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := gformat.NewADJ6Writer(f)
		for src, dsts := range scopes {
			if err := w.WriteScope(src, dsts); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		f.Close()
		return path
	}
	a := write("a.adj6", map[int64][]int64{0: {1, 2}, 3: {4}})
	b := write("b.adj6", map[int64][]int64{7: {1, 2}, 9: {4}})
	ca, cb := stats.NewDegreeCounter(), stats.NewDegreeCounter()
	if _, err := ingest(a, gformat.ADJ6, ca); err != nil {
		t.Fatal(err)
	}
	if _, err := ingest(b, gformat.ADJ6, cb); err != nil {
		t.Fatal(err)
	}
	if ks := stats.KS(ca.OutHist(), cb.OutHist()); ks != 0 {
		t.Fatalf("identical degree profiles, KS %v", ks)
	}
}
