// Command gstat analyzes generated graph files: degree distributions,
// power-law and Zipf slopes, and the oscillation metric.
//
// Usage:
//
//	gstat -format adj6 out/part-*.adj6
//	gstat -format tsv -plot out.tsv       # also dump degree/count pairs
//	gstat -format adj6 -json out/part-*.adj6 | jq .out_power_law.slope
//	gstat -format adj6 -json -expect-scale 13 -expect-noise 0.1 out/part-*.adj6
//
// With -expect-scale the observed statistics are additionally compared
// against the closed-form expectations of the named generation
// parameters (internal/validate): text output appends the check table,
// -json output gains a "validate" field carrying the full
// trilliong-validate report. The comparison always uses file-axis
// orientation ("out" = the scope axis as written), so it is unaffected
// by -inadj.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/skg"
	"repro/internal/stats"
	"repro/internal/validate"
)

// slopeFit is a fitted (slope, r²) pair in the JSON report; it is
// omitted entirely when the fit is undefined (NaN).
type slopeFit struct {
	Slope float64 `json:"slope"`
	R2    float64 `json:"r2"`
}

// jsonReport is gstat's -json output. Floats are rounded to 4 decimals
// so the report is byte-stable across runs: the slope fits sum floats
// in map-iteration order, which perturbs the last bits from run to run.
type jsonReport struct {
	Edges          int64     `json:"edges"`
	OutVertices    int64     `json:"out_vertices"`
	InVertices     int64     `json:"in_vertices"`
	MaxOutDegree   int64     `json:"max_out_degree"`
	MaxInDegree    int64     `json:"max_in_degree"`
	OutPowerLaw    *slopeFit `json:"out_power_law,omitempty"`
	InPowerLaw     *slopeFit `json:"in_power_law,omitempty"`
	OutZipf        *slopeFit `json:"out_zipf,omitempty"`
	OutOscillation float64   `json:"out_oscillation"`
	InOscillation  float64   `json:"in_oscillation"`
	// Validate is the expected-vs-observed section (-expect-scale): the
	// same report trilliong-validate emits, sharing its schema.
	Validate *validate.Report `json:"validate,omitempty"`
}

// jsonCompare is the -json shape of a -compare run.
type jsonCompare struct {
	KSOut float64 `json:"ks_out_degree"`
	KSIn  float64 `json:"ks_in_degree"`
}

// round4 rounds to 4 decimals, the precision of the text output.
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// fit wraps a (slope, r²) pair, nil when the slope is NaN.
func fit(slope, r2 float64) *slopeFit {
	if math.IsNaN(slope) {
		return nil
	}
	return &slopeFit{Slope: round4(slope), R2: round4(r2)}
}

// buildReport assembles the -json document from the counted degrees.
func buildReport(edges int64, out, in stats.Hist, outDegrees []int64) jsonReport {
	r := jsonReport{
		Edges:          edges,
		OutVertices:    out.Vertices(),
		InVertices:     in.Vertices(),
		MaxOutDegree:   out.MaxDegree(),
		MaxInDegree:    in.MaxDegree(),
		OutOscillation: round4(stats.Oscillation(out)),
		InOscillation:  round4(stats.Oscillation(in)),
	}
	r.OutPowerLaw = fit(stats.PowerLawSlope(out))
	r.InPowerLaw = fit(stats.PowerLawSlope(in))
	r.OutZipf = fit(stats.ZipfSlope(outDegrees))
	return r
}

// buildExpectReport re-streams the input files into a validation
// accumulator and evaluates them against the closed-form expectations
// of cfg (internal/validate). The report's "out" axis is the scope
// axis as written in the files, matching the model's convention.
func buildExpectReport(files []string, f gformat.Format, cfg core.Config) (*validate.Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := validate.FromConfig(cfg)
	if err != nil {
		return nil, err
	}
	acc := validate.NewAccumulator()
	for _, name := range files {
		if err := acc.ConsumeFile(name, f); err != nil {
			return nil, err
		}
	}
	rep := validate.Evaluate(m, acc, validate.DefaultThresholds(), nil, "gstat")
	rep.Params = validate.ParamsFromConfig(cfg)
	return rep, nil
}

// emitJSON prints v as indented JSON on stdout.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func main() {
	var (
		format   = flag.String("format", "adj6", "input format: tsv, adj6 or csr6")
		plot     = flag.Bool("plot", false, "print out-degree plot points (degree<TAB>count)")
		inadj    = flag.Bool("inadj", false, "input stores in-adjacency lists (AVS-I output): swap in/out")
		compare  = flag.String("compare", "", "second graph (same format): print KS distances instead of stats")
		jsonFlag = flag.Bool("json", false, "emit the report as JSON instead of text")

		expectScale  = flag.Int("expect-scale", 0, "compare against closed-form expectations of this log2 vertex count (0 = off)")
		expectEF     = flag.Int64("expect-edgefactor", 16, "expected edges per vertex (with -expect-scale)")
		expectSeed   = flag.String("expect-seed", "0.57,0.19,0.19,0.05", "expected seed matrix a,b,c,d (with -expect-scale)")
		expectNoise  = flag.Float64("expect-noise", 0, "expected NSKG noise parameter (with -expect-scale)")
		expectMaster = flag.Uint64("expect-master", 1, "expected master random seed (with -expect-scale)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no input files"))
	}
	f, err := gformat.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	counter := stats.NewDegreeCounter()
	var edges int64
	for _, name := range flag.Args() {
		n, err := ingest(name, f, counter)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		edges += n
	}
	out, in := counter.OutHist(), counter.InHist()
	if *inadj {
		// AVS-I part files store (destination, in-neighbours): what the
		// reader counted as "out" is really "in" and vice versa.
		out, in = in, out
	}
	if *compare != "" {
		other := stats.NewDegreeCounter()
		if _, err := ingest(*compare, f, other); err != nil {
			fatal(fmt.Errorf("%s: %w", *compare, err))
		}
		oo, oi := other.OutHist(), other.InHist()
		if *inadj {
			oo, oi = oi, oo
		}
		if *jsonFlag {
			emitJSON(jsonCompare{KSOut: round4(stats.KS(out, oo)), KSIn: round4(stats.KS(in, oi))})
			return
		}
		fmt.Printf("KS out-degree          %.4f\n", stats.KS(out, oo))
		fmt.Printf("KS in-degree           %.4f\n", stats.KS(in, oi))
		fmt.Println("(0 = identical distributions; > ~0.1 = clearly different)")
		return
	}
	var expectRep *validate.Report
	if *expectScale > 0 {
		cfg := core.DefaultConfig(*expectScale)
		cfg.EdgeFactor = *expectEF
		cfg.NoiseParam = *expectNoise
		cfg.MasterSeed = *expectMaster
		seed, err := parseSeed(*expectSeed)
		if err != nil {
			fatal(err)
		}
		cfg.Seed = seed
		if expectRep, err = buildExpectReport(flag.Args(), f, cfg); err != nil {
			fatal(err)
		}
	}
	if *jsonFlag {
		r := buildReport(edges, out, in, counter.OutDegrees())
		r.Validate = expectRep
		emitJSON(r)
		return
	}
	fmt.Printf("edges                  %d\n", edges)
	fmt.Printf("vertices w/ out-edges  %d\n", out.Vertices())
	fmt.Printf("vertices w/ in-edges   %d\n", in.Vertices())
	fmt.Printf("max out / in degree    %d / %d\n", out.MaxDegree(), in.MaxDegree())
	if s, r2 := stats.PowerLawSlope(out); s == s { // NaN check
		fmt.Printf("out power-law slope    %.3f (r2 %.3f)\n", s, r2)
	}
	if s, r2 := stats.PowerLawSlope(in); s == s {
		fmt.Printf("in power-law slope     %.3f (r2 %.3f)\n", s, r2)
	}
	if s, r2 := stats.ZipfSlope(counter.OutDegrees()); s == s {
		fmt.Printf("out zipf (rank-freq)   %.3f (r2 %.3f)\n", s, r2)
	}
	fmt.Printf("out oscillation        %.4f\n", stats.Oscillation(out))
	fmt.Printf("in oscillation         %.4f\n", stats.Oscillation(in))
	if expectRep != nil {
		fmt.Print(expectRep.Summary())
	}
	if *plot {
		fmt.Println("# out-degree plot: degree<TAB>count")
		for _, p := range out.Points() {
			fmt.Printf("%d\t%d\n", p.Degree, p.Count)
		}
	}
}

func ingest(name string, f gformat.Format, counter *stats.DegreeCounter) (int64, error) {
	file, err := os.Open(name)
	if err != nil {
		return 0, err
	}
	defer file.Close()
	var edges int64
	switch f {
	case gformat.TSV:
		r := gformat.NewTSVReader(file)
		for {
			e, err := r.Next()
			if err == io.EOF {
				return edges, nil
			}
			if err != nil {
				return edges, err
			}
			counter.AddEdge(e.Src, e.Dst)
			edges++
		}
	case gformat.ADJ6:
		r := gformat.NewADJ6Reader(file)
		for {
			src, dsts, err := r.Next()
			if err == io.EOF {
				return edges, nil
			}
			if err != nil {
				return edges, err
			}
			counter.AddScope(src, dsts)
			edges += int64(len(dsts))
		}
	case gformat.CSR6:
		g, err := gformat.ReadCSR6(file)
		if err != nil {
			return 0, err
		}
		for v := int64(0); v < g.NumVertices; v++ {
			adj := g.Adj(v)
			if len(adj) > 0 {
				counter.AddScope(v, adj)
				edges += int64(len(adj))
			}
		}
		return edges, nil
	}
	return edges, fmt.Errorf("unsupported format %v", f)
}

func parseSeed(spec string) (skg.Seed, error) {
	fields := strings.Split(spec, ",")
	if len(fields) != 4 {
		return skg.Seed{}, fmt.Errorf("seed must be four comma-separated numbers, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, p := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return skg.Seed{}, fmt.Errorf("seed entry %q: %w", p, err)
		}
		vals[i] = v
	}
	s := skg.Seed{A: vals[0], B: vals[1], C: vals[2], D: vals[3]}
	return s, s.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gstat:", err)
	os.Exit(1)
}
