// Command gstat analyzes generated graph files: degree distributions,
// power-law and Zipf slopes, and the oscillation metric.
//
// Usage:
//
//	gstat -format adj6 out/part-*.adj6
//	gstat -format tsv -plot out.tsv       # also dump degree/count pairs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gformat"
	"repro/internal/stats"
)

func main() {
	var (
		format  = flag.String("format", "adj6", "input format: tsv, adj6 or csr6")
		plot    = flag.Bool("plot", false, "print out-degree plot points (degree<TAB>count)")
		inadj   = flag.Bool("inadj", false, "input stores in-adjacency lists (AVS-I output): swap in/out")
		compare = flag.String("compare", "", "second graph (same format): print KS distances instead of stats")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no input files"))
	}
	f, err := gformat.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	counter := stats.NewDegreeCounter()
	var edges int64
	for _, name := range flag.Args() {
		n, err := ingest(name, f, counter)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		edges += n
	}
	out, in := counter.OutHist(), counter.InHist()
	if *inadj {
		// AVS-I part files store (destination, in-neighbours): what the
		// reader counted as "out" is really "in" and vice versa.
		out, in = in, out
	}
	if *compare != "" {
		other := stats.NewDegreeCounter()
		if _, err := ingest(*compare, f, other); err != nil {
			fatal(fmt.Errorf("%s: %w", *compare, err))
		}
		oo, oi := other.OutHist(), other.InHist()
		if *inadj {
			oo, oi = oi, oo
		}
		fmt.Printf("KS out-degree          %.4f\n", stats.KS(out, oo))
		fmt.Printf("KS in-degree           %.4f\n", stats.KS(in, oi))
		fmt.Println("(0 = identical distributions; > ~0.1 = clearly different)")
		return
	}
	fmt.Printf("edges                  %d\n", edges)
	fmt.Printf("vertices w/ out-edges  %d\n", out.Vertices())
	fmt.Printf("vertices w/ in-edges   %d\n", in.Vertices())
	fmt.Printf("max out / in degree    %d / %d\n", out.MaxDegree(), in.MaxDegree())
	if s, r2 := stats.PowerLawSlope(out); s == s { // NaN check
		fmt.Printf("out power-law slope    %.3f (r2 %.3f)\n", s, r2)
	}
	if s, r2 := stats.PowerLawSlope(in); s == s {
		fmt.Printf("in power-law slope     %.3f (r2 %.3f)\n", s, r2)
	}
	if s, r2 := stats.ZipfSlope(counter.OutDegrees()); s == s {
		fmt.Printf("out zipf (rank-freq)   %.3f (r2 %.3f)\n", s, r2)
	}
	fmt.Printf("out oscillation        %.4f\n", stats.Oscillation(out))
	fmt.Printf("in oscillation         %.4f\n", stats.Oscillation(in))
	if *plot {
		fmt.Println("# out-degree plot: degree<TAB>count")
		for _, p := range out.Points() {
			fmt.Printf("%d\t%d\n", p.Degree, p.Count)
		}
	}
}

func ingest(name string, f gformat.Format, counter *stats.DegreeCounter) (int64, error) {
	file, err := os.Open(name)
	if err != nil {
		return 0, err
	}
	defer file.Close()
	var edges int64
	switch f {
	case gformat.TSV:
		r := gformat.NewTSVReader(file)
		for {
			e, err := r.Next()
			if err == io.EOF {
				return edges, nil
			}
			if err != nil {
				return edges, err
			}
			counter.AddEdge(e.Src, e.Dst)
			edges++
		}
	case gformat.ADJ6:
		r := gformat.NewADJ6Reader(file)
		for {
			src, dsts, err := r.Next()
			if err == io.EOF {
				return edges, nil
			}
			if err != nil {
				return edges, err
			}
			counter.AddScope(src, dsts)
			edges += int64(len(dsts))
		}
	case gformat.CSR6:
		g, err := gformat.ReadCSR6(file)
		if err != nil {
			return 0, err
		}
		for v := int64(0); v < g.NumVertices; v++ {
			adj := g.Adj(v)
			if len(adj) > 0 {
				counter.AddScope(v, adj)
				edges += int64(len(adj))
			}
		}
		return edges, nil
	}
	return edges, fmt.Errorf("unsupported format %v", f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gstat:", err)
	os.Exit(1)
}
