// Command experiments reproduces the paper's evaluation: every table
// and figure of Section 7 and Appendix D has a subcommand that prints
// the corresponding rows/series.
//
// Usage:
//
//	experiments table1|table2|table3
//	experiments fig8|fig9|fig10|fig11a|fig11b|fig12|fig13|fig14
//	experiments all
//	experiments fig12 -scales 16,17,18,19,20
//
// Default scales are laptop-sized; the claims under test are shapes
// (who wins, growth factors, crossovers), which are scale-invariant —
// see EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scalesFlag := fs.String("scales", "", "comma-separated scales (experiment-specific defaults)")
	scaleFlag := fs.Int("scale", 0, "single scale (experiments that take one)")
	efFlag := fs.Int64("edgefactor", 0, "edge factor where applicable")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}
	scales, err := parseScales(*scalesFlag)
	if err != nil {
		fatal(err)
	}

	run := func(name string) {
		if err := runOne(name, scales, *scaleFlag, *efFlag); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	if cmd == "all" {
		for _, name := range []string{
			"table1", "table2", "table3",
			"fig8", "fig9", "fig10", "fig11a", "fig11b", "fig12", "fig13", "fig14",
			"balance",
		} {
			run(name)
		}
		return
	}
	run(cmd)
}

func runOne(name string, scales []int, scale int, ef int64) error {
	switch name {
	case "table1":
		r, err := experiments.Table1(scales)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "table2":
		r, err := experiments.Table2(scales, 0)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "table3":
		r, err := experiments.Table3(scale)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "fig8":
		r, err := experiments.Fig8(scale, ef)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "fig9":
		r, err := experiments.Fig9(scale, nil)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "fig10":
		r, err := experiments.Fig10(0, 0)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "fig11a":
		dir, cleanup, err := spillDir()
		if err != nil {
			return err
		}
		defer cleanup()
		r, err := experiments.Fig11a(scales, 0, dir)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "fig11b":
		dir, cleanup, err := spillDir()
		if err != nil {
			return err
		}
		defer cleanup()
		r, err := experiments.Fig11b(scales, cluster.Config{}, 0, dir)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "fig12":
		r, err := experiments.Fig12(scales, 0)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "fig13":
		r, err := experiments.Fig13(scale)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "fig14":
		r, err := experiments.Fig14(scales, 0)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	case "balance":
		r, err := experiments.Balance(scale, 0)
		if err != nil {
			return err
		}
		r.Report().Print(os.Stdout)
	default:
		usage()
	}
	return nil
}

func spillDir() (string, func(), error) {
	dir, err := os.MkdirTemp("", "trilliong-exp-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

func parseScales(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments <table1|table2|table3|fig8|fig9|fig10|fig11a|fig11b|fig12|fig13|fig14|balance|all> [-scales 14,16,18] [-scale 16] [-edgefactor 16]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
