package main

import (
	"reflect"
	"testing"
)

func TestParseScales(t *testing.T) {
	got, err := parseScales("12, 14,16")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{12, 14, 16}) {
		t.Fatalf("got %v", got)
	}
	if got, err := parseScales(""); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	if _, err := parseScales("12,x"); err == nil {
		t.Fatal("expected error")
	}
}

// TestRunOneFastSubcommands drives the CLI dispatch for the cheap
// experiments end to end (output goes to stdout).
func TestRunOneFastSubcommands(t *testing.T) {
	if err := runOne("table3", nil, 11, 0); err != nil {
		t.Fatal(err)
	}
	if err := runOne("balance", nil, 12, 0); err != nil {
		t.Fatal(err)
	}
	if err := runOne("fig10", nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := runOne("fig9", []int{12}, 12, 0); err != nil {
		t.Fatal(err)
	}
}
