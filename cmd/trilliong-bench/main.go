// Command trilliong-bench sweeps the generator across (scale,
// edge-factor, format, workers) combinations and writes a
// machine-readable report. Every number in the report is pulled from
// the run's telemetry registry — the same counters and stage tracers
// /debug/vars and /metrics serve — so the bench doubles as an
// end-to-end check that the observability pipeline measures what the
// generator actually does.
//
// Usage:
//
//	trilliong-bench -scales 20,22 -formats tsv,adj6 -workers 1,4
//	trilliong-bench -short                  # CI smoke sweep (seconds)
//	trilliong-bench -short -tenants 3       # + mixed-workload scheduler bench
//	trilliong-bench -validate BENCH_report.json
//
// The report lands in -out (default BENCH_report.json); -validate
// checks an existing report against the schema and sanity bounds
// (non-empty sweep, positive edges/sec) and exits non-zero on
// violation, which is how CI gates on it. -baseline additionally
// compares throughput against a committed reference report
// (BENCH_baseline.json): a run matched on (scale, edge factor, format,
// workers) must reach at least a third of the baseline's edges/sec —
// loose enough for shared CI runners, tight enough to catch an
// order-of-magnitude regression.
//
// -tenants N appends a mixed-workload scheduler section: N tenants at
// weights 1..N and rotating priority classes saturate a two-slot
// fair-share scheduler (internal/sched) with real small generations,
// and the report records total grants, per-tenant shares, and queue
// wait-time quantiles from the scheduler's own histogram. Validation
// fails the report if any tenant starves.
//
// -fidelity (implied by -short) appends a statistical fidelity
// section: a seeded plain-SKG and NSKG pair generated at scale 13 and
// validated against the closed-form expectations of internal/validate.
// Validation fails the report on any fail verdict, on a plain-SKG run
// without the expected Figure-9 degree-distribution oscillation, or on
// an NSKG run where noise failed to damp it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/validate"
)

// benchSchema identifies the report layout; bump on breaking change.
// v2 added the statistical fidelity section (-fidelity).
const benchSchema = "trilliong-bench/v2"

// benchStage is the registry stage that times each full run; the
// report's edges/sec is the registry's edge counter over this stage's
// seconds, so the headline number is registry-derived end to end.
const benchStage = "bench.run"

// report is the BENCH_report.json document.
type report struct {
	Schema    string       `json:"schema"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	CPUs      int          `json:"cpus"`
	Started   time.Time    `json:"started"`
	Runs      []run        `json:"runs"`
	Sched     *schedReport `json:"sched,omitempty"`
	// Fidelity is the -fidelity statistical section: full
	// internal/validate reports for a seeded plain-SKG and NSKG pair,
	// gated by validateReport (a fail verdict, or an SKG run without the
	// Figure-9 oscillation, fails the bench).
	Fidelity []*validate.Report `json:"fidelity,omitempty"`
}

// run is one swept combination.
type run struct {
	Scale      int    `json:"scale"`
	EdgeFactor int64  `json:"edge_factor"`
	Format     string `json:"format"`
	Workers    int    `json:"workers"`

	// Registry-derived outcome.
	Scopes      int64   `json:"scopes"`
	Edges       int64   `json:"edges"`
	Attempts    int64   `json:"attempts"`
	Bytes       int64   `json:"bytes"`
	Seconds     float64 `json:"seconds"`
	EdgesPerSec float64 `json:"edges_per_sec"`

	Stages map[string]telemetry.StageSnapshot `json:"stages"`
}

// sweep enumerates the cross product and benches each combination.
func sweep(scales []int, edgeFactors []int64, formats []gformat.Format, workers []int, masterSeed uint64) ([]run, error) {
	var runs []run
	for _, s := range scales {
		for _, ef := range edgeFactors {
			for _, f := range formats {
				for _, w := range workers {
					r, err := benchOne(s, ef, f, w, masterSeed)
					if err != nil {
						return nil, fmt.Errorf("scale %d ef %d %s workers %d: %w", s, ef, formatName(f), w, err)
					}
					fmt.Fprintf(os.Stderr, "  scale %2d  ef %3d  %-4s  workers %2d  %12d edges  %10.0f edges/s\n",
						r.Scale, r.EdgeFactor, r.Format, r.Workers, r.Edges, r.EdgesPerSec)
					runs = append(runs, r)
				}
			}
		}
	}
	return runs, nil
}

// benchOne runs one combination into a fresh registry and reads the
// result back out of the registry alone.
func benchOne(scale int, edgeFactor int64, format gformat.Format, workers int, masterSeed uint64) (run, error) {
	cfg := core.DefaultConfig(scale)
	cfg.EdgeFactor = edgeFactor
	cfg.Workers = workers
	cfg.MasterSeed = masterSeed

	tel := telemetry.NewRegistry()
	span := tel.Stage(benchStage).Span()
	_, err := core.GenerateObserved(cfg, core.ObservedSinks(core.DiscardSinks(format), format, tel), tel)
	if err != nil {
		return run{}, err
	}
	edges := tel.CounterValue(core.MetricEdges)
	span.End(edges)

	bench := tel.StageSnapshot(benchStage)
	r := run{
		Scale:      scale,
		EdgeFactor: edgeFactor,
		Format:     formatName(format),
		Workers:    workers,
		Scopes:     tel.CounterValue(core.MetricScopes),
		Edges:      edges,
		Attempts:   tel.CounterValue(core.MetricAttempts),
		Bytes:      tel.CounterValue(core.MetricBytes),
		Seconds:    bench.Seconds,
		Stages:     tel.Stages(),
	}
	if r.Seconds > 0 {
		r.EdgesPerSec = float64(r.Edges) / r.Seconds
	}
	return r, nil
}

// schedReport is the -tenants mixed-workload section: N tenants at
// weights 1..N and rotating priority classes contend for a handful of
// scheduler slots, each grant performing a real small generation. The
// queue wait-time quantiles are read back from the scheduler's own
// sched.wait_seconds histogram, so the report doubles as a check that
// the admission telemetry measures real waits.
type schedReport struct {
	Tenants   int          `json:"tenants"`
	Slots     int          `json:"slots"`
	Seconds   float64      `json:"seconds"`
	Grants    int64        `json:"grants"`
	WaitP50   float64      `json:"wait_p50_seconds"`
	WaitP90   float64      `json:"wait_p90_seconds"`
	WaitP99   float64      `json:"wait_p99_seconds"`
	PerTenant []tenantSlab `json:"per_tenant"`
}

// tenantSlab is one tenant's share of the mixed-workload run.
type tenantSlab struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	Class  string `json:"class"`
	Grants int64  `json:"grants"`
	Edges  int64  `json:"edges_granted"`
}

// benchSched runs the mixed-workload scheduler bench: every tenant
// keeps two submitters looping acquire → generate → release for about
// a second, so the queue stays saturated and fair-share order (not
// arrival order) decides who runs.
func benchSched(n int, masterSeed uint64) (*schedReport, error) {
	const slots = 2
	const runFor = 1200 * time.Millisecond
	cfg := core.DefaultConfig(8)
	cfg.MasterSeed = masterSeed
	cfg.Workers = 1
	cost := cfg.NumEdges()

	classes := []sched.Class{sched.Interactive, sched.Batch, sched.Background}
	names := make([]string, n)
	limits := make(map[string]sched.Limits, n)
	for i := range names {
		names[i] = fmt.Sprintf("bench-%d", i+1)
		// QueueTTL -1: never shed — the bench saturates on purpose.
		limits[names[i]] = sched.Limits{Weight: i + 1, QueueTTL: -1}
	}
	s := sched.New(sched.Config{Slots: slots, Tenants: limits})

	ctx, cancel := context.WithCancel(context.Background())
	grants := make([]atomic.Int64, n)
	var failed atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for i := range names {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				workCfg := cfg
				workCfg.MasterSeed = masterSeed + uint64(16*i+w+1)
				for {
					g, err := s.Acquire(ctx, sched.Request{
						Tenant: names[i],
						Class:  classes[i%len(classes)],
						Cost:   cost,
					})
					if err != nil {
						return // ctx canceled: the run is over
					}
					_, genErr := core.Generate(workCfg, core.DiscardSinks(gformat.ADJ6))
					g.Release()
					if genErr != nil {
						failed.Store(genErr)
						return
					}
					grants[i].Add(1)
				}
			}(i, w)
		}
	}
	time.Sleep(runFor)
	cancel()
	wg.Wait()
	if err, ok := failed.Load().(error); ok {
		return nil, err
	}

	tel := s.Telemetry()
	wait := tel.Histogram(sched.MetricWaitSeconds)
	rep := &schedReport{
		Tenants: n,
		Slots:   slots,
		Seconds: time.Since(start).Seconds(),
		Grants:  tel.CounterValue(sched.MetricGranted),
		WaitP50: wait.Quantile(0.5),
		WaitP90: wait.Quantile(0.9),
		WaitP99: wait.Quantile(0.99),
	}
	for i, name := range names {
		rep.PerTenant = append(rep.PerTenant, tenantSlab{
			Name:   name,
			Weight: i + 1,
			Class:  classes[i%len(classes)].String(),
			Grants: grants[i].Load(),
			Edges:  grants[i].Load() * cost,
		})
	}
	return rep, nil
}

// fidelityScale sizes the -fidelity generations: the smallest scale at
// which the closed-form in-axis expectations are sharp across master
// seeds (the dedup correction's mean field needs the head scopes well
// below saturation; see docs/VALIDATE.md).
const fidelityScale = 13

// benchFidelity generates a seeded plain-SKG / NSKG pair at the
// fidelity scale and validates each against its closed-form
// expectations, the bench-embedded form of the trilliong-validate
// gate: noise off must show the Figure-9 degree-distribution
// oscillation, noise 0.1 must damp it, and every distributional check
// must hold.
func benchFidelity(masterSeed uint64) ([]*validate.Report, error) {
	var reports []*validate.Report
	for _, noise := range []float64{0, 0.1} {
		cfg := core.DefaultConfig(fidelityScale)
		cfg.MasterSeed = masterSeed
		cfg.NoiseParam = noise
		m, err := validate.FromConfig(cfg)
		if err != nil {
			return nil, err
		}
		acc := validate.NewAccumulator()
		if _, err := core.Generate(cfg, validate.CollectingSinks(core.DiscardSinks(gformat.ADJ6), acc)); err != nil {
			return nil, err
		}
		label := "fidelity-skg"
		if noise > 0 {
			label = "fidelity-nskg"
		}
		rep := validate.Evaluate(m, acc, validate.DefaultThresholds(), nil, label)
		rep.Params = validate.ParamsFromConfig(cfg)
		fmt.Fprintf(os.Stderr, "  fidelity %-5s verdict=%-4s oscillation detected=%-5v predicted=%v\n",
			rep.Params.Model, rep.Verdict, rep.OscillationDetected, rep.OscillationPredicted)
		reports = append(reports, rep)
	}
	return reports, nil
}

// validateReport enforces the schema and the sanity bounds CI gates on.
func validateReport(r report) error {
	if r.Schema != benchSchema {
		return fmt.Errorf("schema %q, want %q", r.Schema, benchSchema)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("report has no runs")
	}
	for i, run := range r.Runs {
		where := fmt.Sprintf("run %d (scale %d %s)", i, run.Scale, run.Format)
		if run.Scale < 1 || run.EdgeFactor < 1 || run.Workers < 1 {
			return fmt.Errorf("%s: non-positive sweep parameters", where)
		}
		if _, err := gformat.ParseFormat(run.Format); err != nil {
			return fmt.Errorf("%s: %v", where, err)
		}
		if run.Edges <= 0 || run.Scopes <= 0 || run.Bytes <= 0 {
			return fmt.Errorf("%s: empty outcome (%d edges, %d scopes, %d bytes)", where, run.Edges, run.Scopes, run.Bytes)
		}
		if run.Seconds <= 0 || run.EdgesPerSec <= 0 {
			return fmt.Errorf("%s: edges/sec is zero (%g over %gs)", where, run.EdgesPerSec, run.Seconds)
		}
		if len(run.Stages) == 0 {
			return fmt.Errorf("%s: no stage snapshots", where)
		}
	}
	if s := r.Sched; s != nil {
		if s.Tenants < 1 || s.Slots < 1 || len(s.PerTenant) != s.Tenants {
			return fmt.Errorf("sched: %d tenants with %d per-tenant rows, %d slots", s.Tenants, len(s.PerTenant), s.Slots)
		}
		if s.Grants <= 0 || s.Seconds <= 0 {
			return fmt.Errorf("sched: empty run (%d grants over %gs)", s.Grants, s.Seconds)
		}
		if s.WaitP50 < 0 || s.WaitP90 < 0 || s.WaitP99 < 0 {
			return fmt.Errorf("sched: negative wait quantiles (%g/%g/%g)", s.WaitP50, s.WaitP90, s.WaitP99)
		}
		for _, tr := range s.PerTenant {
			// Weighted fair share guarantees progress for every tenant —
			// a zero here means starvation, exactly what the gate is for.
			if tr.Grants <= 0 {
				return fmt.Errorf("sched: tenant %s (weight %d, %s) starved", tr.Name, tr.Weight, tr.Class)
			}
		}
	}
	for _, fr := range r.Fidelity {
		if fr.Schema != validate.ReportSchema {
			return fmt.Errorf("fidelity %s: schema %q, want %q", fr.Label, fr.Schema, validate.ReportSchema)
		}
		if fr.Failed() {
			return fmt.Errorf("fidelity %s (%s): generated graph diverges from closed-form expectations\n%s",
				fr.Label, fr.Params.Model, fr.Summary())
		}
		// The Figure-9 contract itself: plain SKG ripples, NSKG does not.
		switch fr.Params.Model {
		case "skg":
			if !fr.OscillationDetected {
				return fmt.Errorf("fidelity %s: plain SKG run lost the expected degree-distribution oscillation", fr.Label)
			}
		case "nskg":
			if fr.OscillationDetected {
				return fmt.Errorf("fidelity %s: NSKG noise failed to damp the degree-distribution oscillation", fr.Label)
			}
		}
	}
	return nil
}

// baselineTolerance is the allowed slowdown factor against the
// committed baseline before the gate trips. CI runners are noisy and
// heterogeneous, so the gate only catches collapses, not jitter.
const baselineTolerance = 3.0

// runKey matches runs across reports.
func runKey(r run) string {
	return fmt.Sprintf("scale=%d ef=%d format=%s workers=%d", r.Scale, r.EdgeFactor, r.Format, r.Workers)
}

// compareBaseline checks every current run that has a baseline
// counterpart. At least one pair must match — a baseline that matches
// nothing gates nothing, which would be a silently dead check.
func compareBaseline(cur, base report) error {
	baseRuns := make(map[string]run, len(base.Runs))
	for _, r := range base.Runs {
		baseRuns[runKey(r)] = r
	}
	matched := 0
	for _, r := range cur.Runs {
		b, ok := baseRuns[runKey(r)]
		if !ok {
			continue
		}
		matched++
		if floor := b.EdgesPerSec / baselineTolerance; r.EdgesPerSec < floor {
			return fmt.Errorf("%s: %.0f edges/s is under the regression floor %.0f (baseline %.0f / tolerance %g)",
				runKey(r), r.EdgesPerSec, floor, b.EdgesPerSec, baselineTolerance)
		}
		fmt.Fprintf(os.Stderr, "  baseline ok: %s  %.0f edges/s vs baseline %.0f\n", runKey(r), r.EdgesPerSec, b.EdgesPerSec)
	}
	if matched == 0 {
		return fmt.Errorf("no run matches the baseline sweep (%d current, %d baseline runs)", len(cur.Runs), len(base.Runs))
	}
	return nil
}

func formatName(f gformat.Format) string {
	switch f {
	case gformat.TSV:
		return "tsv"
	case gformat.ADJ6:
		return "adj6"
	case gformat.CSR6:
		return "csr6"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

func parseInts(spec string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("list entry %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(spec string) ([]int64, error) {
	vs, err := parseInts(spec)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out, nil
}

func parseFormats(spec string) ([]gformat.Format, error) {
	var out []gformat.Format
	for _, p := range strings.Split(spec, ",") {
		f, err := gformat.ParseFormat(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func main() {
	var (
		scales      = flag.String("scales", "16,18", "comma-separated log2 vertex counts")
		edgeFactors = flag.String("edgefactors", "16", "comma-separated edges-per-vertex values")
		formats     = flag.String("formats", "tsv,adj6,csr6", "comma-separated output formats")
		workers     = flag.String("workers", "1,0", "comma-separated worker counts (0 = GOMAXPROCS)")
		masterSeed  = flag.Uint64("masterseed", 1, "random master seed")
		out         = flag.String("out", "BENCH_report.json", "report path")
		short       = flag.Bool("short", false, "CI smoke sweep: scale 12, tsv+adj6, 2 workers, with fidelity")
		tenantsN    = flag.Int("tenants", 0, "mixed-workload scheduler bench: N tenants at weights 1..N contending for slots (0 = off)")
		fidelity    = flag.Bool("fidelity", false, "append statistical fidelity reports (seeded SKG + NSKG validated against closed forms)")
		checkPath   = flag.String("validate", "", "validate an existing report and exit")
		baseline    = flag.String("baseline", "", "with -validate: compare edges/sec against this reference report")
	)
	flag.Parse()

	if *checkPath != "" {
		r, err := loadReport(*checkPath)
		if err != nil {
			fatal(err)
		}
		if err := validateReport(r); err != nil {
			fatal(fmt.Errorf("%s: %w", *checkPath, err))
		}
		if *baseline != "" {
			base, err := loadReport(*baseline)
			if err != nil {
				fatal(err)
			}
			if err := compareBaseline(r, base); err != nil {
				fatal(fmt.Errorf("baseline %s: %w", *baseline, err))
			}
		}
		fmt.Printf("%s: valid (%d runs)\n", *checkPath, len(r.Runs))
		return
	}

	if *short {
		*scales, *edgeFactors, *formats, *workers = "12", "16", "tsv,adj6", "2"
		*fidelity = true
	}
	sc, err := parseInts(*scales)
	if err != nil {
		fatal(err)
	}
	efs, err := parseInt64s(*edgeFactors)
	if err != nil {
		fatal(err)
	}
	fs, err := parseFormats(*formats)
	if err != nil {
		fatal(err)
	}
	ws, err := parseInts(*workers)
	if err != nil {
		fatal(err)
	}
	for i, w := range ws {
		if w == 0 {
			ws[i] = runtime.GOMAXPROCS(0)
		}
	}

	r := report{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Started:   time.Now().UTC(),
	}
	fmt.Fprintf(os.Stderr, "trilliong-bench: %d combinations\n", len(sc)*len(efs)*len(fs)*len(ws))
	if r.Runs, err = sweep(sc, efs, fs, ws, *masterSeed); err != nil {
		fatal(err)
	}
	if *tenantsN > 0 {
		fmt.Fprintf(os.Stderr, "trilliong-bench: mixed workload, %d tenants\n", *tenantsN)
		if r.Sched, err = benchSched(*tenantsN, *masterSeed); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  sched: %d grants, wait p50/p90/p99 %.4f/%.4f/%.4f s\n",
			r.Sched.Grants, r.Sched.WaitP50, r.Sched.WaitP90, r.Sched.WaitP99)
	}
	if *fidelity {
		fmt.Fprintf(os.Stderr, "trilliong-bench: fidelity pair at scale %d\n", fidelityScale)
		if r.Fidelity, err = benchFidelity(*masterSeed); err != nil {
			fatal(err)
		}
	}
	if err := validateReport(r); err != nil {
		fatal(fmt.Errorf("self-check: %w", err))
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trilliong-bench: wrote %s (%d runs)\n", *out, len(r.Runs))
}

func loadReport(path string) (report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return report{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trilliong-bench:", err)
	os.Exit(1)
}
