package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gformat"
	"repro/internal/telemetry"
	"repro/internal/validate"
)

// TestSweepProducesValidReport: a small sweep yields a report that
// passes its own validation, with registry-derived numbers.
func TestSweepProducesValidReport(t *testing.T) {
	runs, err := sweep([]int{8}, []int64{8}, []gformat.Format{gformat.TSV, gformat.ADJ6}, []int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := report{Schema: benchSchema, Runs: runs}
	if err := validateReport(r); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("sweep produced %d runs, want 2", len(runs))
	}
	for _, run := range runs {
		if run.Scopes != 1<<8 {
			t.Fatalf("run %+v: scopes %d, want %d", run, run.Scopes, 1<<8)
		}
		if run.EdgesPerSec <= 0 {
			t.Fatalf("run %+v: zero edges/sec", run)
		}
		if _, ok := run.Stages[benchStage]; !ok {
			t.Fatalf("run %+v: missing bench stage", run)
		}
	}
	// Same seed, same config: both formats generate the same graph, so
	// edge counts agree while byte costs differ by format.
	if runs[0].Edges != runs[1].Edges {
		t.Fatalf("edge counts differ across formats: %d vs %d", runs[0].Edges, runs[1].Edges)
	}
	if runs[0].Bytes == runs[1].Bytes {
		t.Fatalf("tsv and adj6 charged identical bytes (%d); byte counters are not per-format", runs[0].Bytes)
	}
}

// TestValidateReportRejects: the CI gate must catch the failure shapes
// it exists for.
func TestValidateReportRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*report)
	}{
		{"wrong schema", func(r *report) { r.Schema = "bogus/v9" }},
		{"no runs", func(r *report) { r.Runs = nil }},
		{"zero edges per sec", func(r *report) { r.Runs[0].EdgesPerSec = 0 }},
		{"zero edges", func(r *report) { r.Runs[0].Edges = 0 }},
		{"unknown format", func(r *report) { r.Runs[0].Format = "parquet" }},
		{"no stages", func(r *report) { r.Runs[0].Stages = nil }},
	}
	for _, tc := range cases {
		runs, err := sweep([]int{6}, []int64{4}, []gformat.Format{gformat.TSV}, []int{1}, 1)
		if err != nil {
			t.Fatal(err)
		}
		r := report{Schema: benchSchema, Runs: runs}
		tc.mutate(&r)
		if err := validateReport(r); err == nil {
			t.Fatalf("%s: validation passed", tc.name)
		}
	}
}

// TestCompareBaseline: the regression gate trips only on a >3x
// slowdown of a matched run, and refuses a baseline that matches
// nothing (a dead gate).
func TestCompareBaseline(t *testing.T) {
	mk := func(scale int, format string, eps float64) run {
		return run{Scale: scale, EdgeFactor: 16, Format: format, Workers: 2, EdgesPerSec: eps}
	}
	base := report{Schema: benchSchema, Runs: []run{mk(12, "tsv", 3000), mk(12, "adj6", 6000)}}

	// Within tolerance (exactly 1/3 of baseline) and an extra unmatched
	// run: passes.
	cur := report{Schema: benchSchema, Runs: []run{mk(12, "tsv", 1000), mk(14, "tsv", 1)}}
	if err := compareBaseline(cur, base); err != nil {
		t.Fatalf("1/3 throughput tripped the gate: %v", err)
	}

	// Just under the floor: trips.
	cur = report{Schema: benchSchema, Runs: []run{mk(12, "adj6", 1999)}}
	if err := compareBaseline(cur, base); err == nil {
		t.Fatal("4x slowdown passed the gate")
	}

	// Disjoint sweeps: the gate must refuse to pass vacuously.
	cur = report{Schema: benchSchema, Runs: []run{mk(20, "csr6", 1e9)}}
	if err := compareBaseline(cur, base); err == nil {
		t.Fatal("baseline matching no runs passed")
	}
}

// TestBenchSched: the mixed-workload section reports real contention —
// every tenant makes progress, the grant total matches the per-tenant
// sum, and the section passes (and can fail) the report gate.
func TestBenchSched(t *testing.T) {
	s, err := benchSched(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := report{Schema: benchSchema, Runs: []run{{Scale: 8, EdgeFactor: 16, Format: "tsv", Workers: 1,
		Scopes: 1, Edges: 1, Bytes: 1, Seconds: 1, EdgesPerSec: 1,
		Stages: map[string]telemetry.StageSnapshot{benchStage: {Calls: 1}}}}, Sched: s}
	if err := validateReport(r); err != nil {
		t.Fatal(err)
	}
	if s.Tenants != 3 || len(s.PerTenant) != 3 {
		t.Fatalf("sched section %+v", s)
	}
	var sum int64
	for _, tr := range s.PerTenant {
		if tr.Grants <= 0 {
			t.Fatalf("tenant %s starved: %+v", tr.Name, tr)
		}
		sum += tr.Grants
	}
	// The scheduler's counter may run a few grants ahead: a grant that
	// races the shutdown cancel is counted, then auto-released without
	// reaching the submitter. It can never run behind.
	if sum > s.Grants {
		t.Fatalf("per-tenant grants sum %d exceeds scheduler total %d", sum, s.Grants)
	}
	// The gate exists to catch starvation: a zeroed tenant must fail it.
	s.PerTenant[0].Grants = 0
	if err := validateReport(r); err == nil {
		t.Fatal("starved tenant passed validation")
	}
}

// TestBenchFidelity: the fidelity section embeds real validate
// reports — the SKG one oscillating, the NSKG one clean — and the
// report gate trips on every divergence shape it exists for.
func TestBenchFidelity(t *testing.T) {
	fid, err := benchFidelity(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fid) != 2 {
		t.Fatalf("fidelity produced %d reports, want 2", len(fid))
	}
	if fid[0].Params.Model != "skg" || fid[1].Params.Model != "nskg" {
		t.Fatalf("fidelity pair models %s/%s, want skg/nskg", fid[0].Params.Model, fid[1].Params.Model)
	}
	if !fid[0].OscillationDetected {
		t.Error("plain SKG fidelity run did not oscillate")
	}
	if fid[1].OscillationDetected {
		t.Error("NSKG fidelity run oscillated")
	}
	base := report{Schema: benchSchema, Runs: []run{{Scale: 8, EdgeFactor: 16, Format: "tsv", Workers: 1,
		Scopes: 1, Edges: 1, Bytes: 1, Seconds: 1, EdgesPerSec: 1,
		Stages: map[string]telemetry.StageSnapshot{benchStage: {Calls: 1}}}}, Fidelity: fid}
	if err := validateReport(base); err != nil {
		t.Fatalf("clean fidelity section failed the gate: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func([]*validate.Report)
	}{
		{"fail verdict", func(f []*validate.Report) { f[1].Verdict = validate.StatusFail }},
		{"skg lost oscillation", func(f []*validate.Report) { f[0].OscillationDetected = false }},
		{"nskg gained oscillation", func(f []*validate.Report) { f[1].OscillationDetected = true }},
		{"wrong schema", func(f []*validate.Report) { f[0].Schema = "bogus/v9" }},
	}
	for _, tc := range mutations {
		cp := make([]*validate.Report, len(fid))
		for i, fr := range fid {
			c := *fr
			cp[i] = &c
		}
		tc.mutate(cp)
		r := base
		r.Fidelity = cp
		if err := validateReport(r); err == nil {
			t.Errorf("%s: fidelity gate passed", tc.name)
		}
	}
}

// TestReportRoundTrip: the written JSON parses back into an equivalent,
// still-valid report — what the CI validate step consumes.
func TestReportRoundTrip(t *testing.T) {
	runs, err := sweep([]int{6}, []int64{4}, []gformat.Format{gformat.ADJ6}, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := report{Schema: benchSchema, GoVersion: "go", GOOS: "linux", GOARCH: "amd64", CPUs: 1, Runs: runs}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_report.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := validateReport(back); err != nil {
		t.Fatal(err)
	}
	if back.Runs[0].Edges != r.Runs[0].Edges {
		t.Fatalf("edges changed in round trip: %d vs %d", back.Runs[0].Edges, r.Runs[0].Edges)
	}
}
