// Command trilliong-validate checks a generated graph against the
// closed-form expectations of its generating model — the statistical
// fidelity gate of internal/validate as a standalone tool.
//
// Usage:
//
//	trilliong-validate out/                          # params from the run manifest
//	trilliong-validate -scale 13 -noise 0.1 out/     # params from flags
//	trilliong-validate -json out/ > report.json
//	trilliong-validate -store /var/cache/trilliong -scale 13 -parts 4
//	trilliong-validate -community spec.json out/     # community block densities
//
// The directory form streams every part-* file (format inferred per
// file). Generation parameters come from the run manifest written by
// trilliong -resume / -store; explicit flags override manifest values,
// and are required when no manifest exists. The -store form validates
// cached artifact-store entries instead: the run's parts are
// materialized from the store (every part must be cached) and
// validated the same way.
//
// Community-composed output (trilliong -community and friends) is
// validated against its layout: per-block edge densities, intra/inter
// totals, and a stray-edge check that rejects output whose edges land
// outside the planned blocks — a wrong mixing matrix fails here. The
// spec comes from -community or, with no flag, from the run manifest
// the community generators write.
//
// Exit status: 0 when the verdict is pass or warn, 1 when it is fail,
// 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/skg"
	"repro/internal/store"
	"repro/internal/validate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trilliong-validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale      = fs.Int("scale", 0, "log2 of the vertex count (default: from the run manifest)")
		edgeFactor = fs.Int64("edgefactor", 16, "edges per vertex")
		seedSpec   = fs.String("seed", "0.57,0.19,0.19,0.05", "seed matrix a,b,c,d")
		noise      = fs.Float64("noise", 0, "NSKG noise parameter")
		master     = fs.Uint64("master", 1, "master random seed")
		format     = fs.String("format", "adj6", "part format for -store mode")
		storeDir   = fs.String("store", "", "validate artifact-store entries instead of a directory")
		parts      = fs.Int("parts", 0, "partition count of the cached run (-store mode)")
		label      = fs.String("label", "", "report label (default: the validated path)")
		jsonOut    = fs.Bool("json", false, "emit the full report as JSON")
		commPath   = fs.String("community", "", "community spec JSON file: validate block densities against the layout (default: auto-detect from the run manifest)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := fs.Arg(0)
	if (dir == "") == (*storeDir == "") {
		fmt.Fprintln(stderr, "trilliong-validate: need exactly one of an output directory argument or -store")
		return 2
	}

	var commRaw []byte
	if *commPath != "" {
		b, err := os.ReadFile(*commPath)
		if err != nil {
			fmt.Fprintln(stderr, "trilliong-validate:", err)
			return 2
		}
		commRaw = b
	} else if dir != "" {
		// Community runs record their resolved spec in the run manifest;
		// classic runs (or manifest-less directories) don't, and fall
		// through to the closed-form path below.
		if src, _, _, err := core.ReadSourceSpec(dir); err == nil {
			commRaw = src
		}
	}
	if commRaw != nil {
		if dir == "" {
			fmt.Fprintln(stderr, "trilliong-validate: -community needs an output directory argument (not -store)")
			return 2
		}
		return runCommunity(commRaw, dir, *label, *jsonOut, stdout, stderr)
	}

	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var cfg core.Config
	haveManifest := false
	if dir != "" {
		if man, err := core.ReadRunManifest(dir); err == nil {
			cfg = man.Config
			haveManifest = true
		} else if !set["scale"] {
			fmt.Fprintf(stderr, "trilliong-validate: %v; pass -scale (and friends) explicitly\n", err)
			return 2
		}
	}
	if !haveManifest {
		if *scale == 0 {
			fmt.Fprintln(stderr, "trilliong-validate: -scale is required without a run manifest")
			return 2
		}
		cfg = core.DefaultConfig(*scale)
	}
	// Explicit flags override manifest values.
	if set["scale"] {
		cfg.Scale = *scale
	}
	if set["edgefactor"] {
		cfg.EdgeFactor = *edgeFactor
	}
	if set["noise"] {
		cfg.NoiseParam = *noise
	}
	if set["master"] {
		cfg.MasterSeed = *master
	}
	if set["seed"] {
		s, err := parseSeed(*seedSpec)
		if err != nil {
			fmt.Fprintln(stderr, "trilliong-validate:", err)
			return 2
		}
		cfg.Seed = s
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "trilliong-validate:", err)
		return 2
	}

	acc := validate.NewAccumulator()
	target := dir
	if *storeDir != "" {
		target = "store:" + *storeDir
		if err := consumeStore(acc, cfg, *storeDir, *format, *parts); err != nil {
			fmt.Fprintln(stderr, "trilliong-validate:", err)
			return 2
		}
	} else if err := acc.ConsumeDir(dir); err != nil {
		fmt.Fprintln(stderr, "trilliong-validate:", err)
		return 2
	}

	m, err := validate.FromConfig(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "trilliong-validate:", err)
		return 2
	}
	if *label == "" {
		*label = target
	}
	rep := validate.Evaluate(m, acc, validate.DefaultThresholds(), nil, *label)
	rep.Params = validate.ParamsFromConfig(cfg)

	if *jsonOut {
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "trilliong-validate:", err)
			return 2
		}
		stdout.Write(b)
	} else {
		fmt.Fprint(stdout, rep.Summary())
	}
	if rep.Failed() {
		return 1
	}
	return 0
}

// runCommunity validates a directory of community-composed parts
// against the layout its spec resolves to: one consumption pass feeds
// the degree accumulator and the per-block tally at once.
func runCommunity(spec []byte, dir, label string, jsonOut bool, stdout, stderr io.Writer) int {
	cfg, err := community.ParseSpec(spec)
	if err != nil {
		fmt.Fprintln(stderr, "trilliong-validate:", err)
		return 2
	}
	lay, err := community.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "trilliong-validate:", err)
		return 2
	}
	acc := validate.NewAccumulator()
	tally := validate.NewCommunityTally(lay)
	acc.SetEdgeHook(tally.Observe)
	if err := acc.ConsumeDir(dir); err != nil {
		fmt.Fprintln(stderr, "trilliong-validate:", err)
		return 2
	}
	if label == "" {
		label = dir
	}
	rep := validate.EvaluateCommunity(lay, acc, tally, validate.DefaultThresholds(), nil, label)
	if jsonOut {
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "trilliong-validate:", err)
			return 2
		}
		stdout.Write(b)
	} else {
		fmt.Fprint(stdout, rep.Summary())
	}
	if rep.Failed() {
		return 1
	}
	return 0
}

// consumeStore materializes every part of the configured run from the
// artifact store into a scratch directory and streams it into the
// accumulator. Every part must be cached: a partial set would validate
// a subgraph against whole-graph expectations.
func consumeStore(acc *validate.Accumulator, cfg core.Config, dir, formatName string, parts int) error {
	if parts < 1 {
		return fmt.Errorf("-parts (the partition count of the cached run) is required with -store")
	}
	f, err := gformat.ParseFormat(formatName)
	if err != nil {
		return err
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	ranges, err := core.Plan(cfg, parts)
	if err != nil {
		return err
	}
	ids := make([]int, len(ranges))
	for i := range ids {
		ids[i] = i
	}
	scratch, err := os.MkdirTemp("", "trilliong-validate-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	missing, _, _, err := core.FetchFromStore(st, cfg, scratch, f, ranges, ids)
	if err != nil {
		return err
	}
	if len(missing) > 0 {
		return fmt.Errorf("store is missing %d of %d parts for this configuration", len(missing), len(ranges))
	}
	return acc.ConsumeDir(scratch)
}

func parseSeed(spec string) (skg.Seed, error) {
	fields := strings.Split(spec, ",")
	if len(fields) != 4 {
		return skg.Seed{}, fmt.Errorf("seed must be four comma-separated numbers, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, p := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return skg.Seed{}, fmt.Errorf("seed entry %q: %w", p, err)
		}
		vals[i] = v
	}
	s := skg.Seed{A: vals[0], B: vals[1], C: vals[2], D: vals[3]}
	return s, s.Validate()
}
