package main

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/store"
	"repro/internal/validate"
)

func generate(t *testing.T, cfg core.Config, dir string) {
	t.Helper()
	if _, err := core.ResumeToDir(cfg, dir, gformat.ADJ6); err != nil {
		t.Fatal(err)
	}
}

func nskgConfig(scale int) core.Config {
	cfg := core.DefaultConfig(scale)
	cfg.NoiseParam = 0.1
	cfg.MasterSeed = 42
	cfg.Workers = 2
	return cfg
}

// The manifest path: a resumed run records its parameters, so the CLI
// needs nothing but the directory.
func TestValidateDirFromManifest(t *testing.T) {
	dir := t.TempDir()
	generate(t, nskgConfig(13), dir)
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s\nstdout %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "verdict=pass") {
		t.Errorf("summary missing pass verdict:\n%s", out.String())
	}
}

// JSON mode emits a parseable validate.Report with the full parameter
// record and per-check results.
func TestValidateDirJSON(t *testing.T) {
	dir := t.TempDir()
	cfg := nskgConfig(13)
	generate(t, cfg, dir)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	var rep validate.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not a report: %v\n%s", err, out.String())
	}
	if rep.Schema != validate.ReportSchema {
		t.Errorf("schema %q, want %q", rep.Schema, validate.ReportSchema)
	}
	if rep.Params.Model != "nskg" || rep.Params.Scale != 13 || rep.Params.MasterSeed != 42 {
		t.Errorf("params not recorded from manifest: %+v", rep.Params)
	}
	if rep.Verdict != validate.StatusPass {
		t.Errorf("verdict %s, want pass", rep.Verdict)
	}
	if rep.OscillationDetected {
		t.Error("NSKG run flagged as oscillating")
	}
	if len(rep.Checks) == 0 {
		t.Error("report has no checks")
	}
}

// Flags override the manifest: validating the graph against a
// different master seed's expectations must fail and exit 1.
func TestValidateDirFlagOverrideFails(t *testing.T) {
	dir := t.TempDir()
	generate(t, nskgConfig(13), dir)
	var out, errb bytes.Buffer
	if code := run([]string{"-master", "7", dir}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (fail verdict)\nstderr %s\nstdout %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "verdict=fail") {
		t.Errorf("summary missing fail verdict:\n%s", out.String())
	}
}

// Without a manifest the parameters must come from flags.
func TestValidateDirWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	cfg := nskgConfig(13)
	if _, err := core.Generate(cfg, core.FileSinks(dir, gformat.ADJ6, cfg.NumVertices())); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 2 {
		t.Fatalf("manifest-less dir without flags: exit %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	args := []string{"-scale", "13", "-noise", "0.1", "-master", "42", dir}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
}

// Store mode validates cached parts without an output directory.
func TestValidateStoreEntries(t *testing.T) {
	cfg := nskgConfig(13)
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outDir := t.TempDir()
	if _, err := core.ResumeToDirStore(cfg, outDir, gformat.ADJ6, st); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	args := []string{
		"-store", st.Dir(), "-parts", strconv.Itoa(cfg.Workers),
		"-scale", "13", "-noise", "0.1", "-master", "42",
	}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s\nstdout %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "verdict=pass") {
		t.Errorf("summary missing pass verdict:\n%s", out.String())
	}
	// A configuration the store has never seen must be rejected, not
	// silently validated against nothing.
	if code := run([]string{"-store", st.Dir(), "-parts", "2", "-scale", "9"}, &out, &errb); code != 2 {
		t.Errorf("uncached config: exit %d, want 2", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no target: exit %d, want 2", code)
	}
	if code := run([]string{"-store", "x", "y"}, &out, &errb); code != 2 {
		t.Errorf("both targets: exit %d, want 2", code)
	}
}
