// Command trilliong generates synthetic scale-free graphs with the
// recursive vector model.
//
// Usage:
//
//	trilliong -scale 20 -out /data/graph -format adj6
//	trilliong -scale 24 -noise 0.1 -format csr6 -workers 8 -out out/
//	trilliong -scale 16 -seed 0.45,0.22,0.22,0.11 -format tsv -out out/
//	trilliong -scale 22 -out out/ -store /var/cache/trilliong   # reruns hit the cache
//	trilliong -community spec.json -format tsv -out out/        # community composition
//
// The output directory receives one part file per worker; the graph is
// a pure function of (flags, -master), independent of -workers. With
// -community the classic shape flags are ignored: the JSON spec is the
// whole configuration, and the output is one part file per community
// block, byte-identical across batch, distributed and masterless runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	trilliong "repro"
)

func main() {
	var (
		scale      = flag.Int("scale", 20, "log2 of the vertex count")
		edgeFactor = flag.Int64("edgefactor", 16, "edges per vertex (|E|/|V|)")
		seedSpec   = flag.String("seed", "0.57,0.19,0.19,0.05", "seed matrix a,b,c,d")
		noise      = flag.Float64("noise", 0, "NSKG noise parameter (0 disables, 0.1 standard)")
		master     = flag.Uint64("master", 1, "master random seed")
		workers    = flag.Int("workers", 0, "generation goroutines (0 = GOMAXPROCS)")
		format     = flag.String("format", "adj6", "output format: tsv, adj6 or csr6")
		out        = flag.String("out", "", "output directory (required; created if missing)")
		hiprec     = flag.Bool("highprecision", false, "use 128-bit float recursive vectors")
		dryRun     = flag.Bool("dryrun", false, "generate and count without writing files")
		estimate   = flag.Bool("estimate", false, "print analytic size estimate and exit (no generation)")
		resume     = flag.Bool("resume", false, "atomic part files; skip parts that already exist")
		storeDir   = flag.String("store", "", "artifact store directory: cache parts across runs (implies -resume)")
		storeMax   = flag.Int64("store-max-bytes", 0, "store size budget in bytes (0 = unbounded); excess evicted LRU")
		remoteSpec = flag.String("remote-store", "", "cold tier behind -store: s3://bucket[/prefix]?endpoint=URL or a directory path")
		commSpec   = flag.String("community", "", "community spec JSON file: generate a community composition instead of the classic shape")
	)
	flag.Parse()

	if *remoteSpec != "" && *storeDir == "" {
		fatal(fmt.Errorf("-remote-store requires -store (the local hot tier)"))
	}
	if *commSpec != "" {
		runCommunity(*commSpec, *format, *out, *storeDir, *storeMax, *remoteSpec)
		return
	}
	seed, err := parseSeed(*seedSpec)
	if err != nil {
		fatal(err)
	}
	f, err := trilliong.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	cfg := trilliong.New(*scale)
	cfg.EdgeFactor = *edgeFactor
	cfg.Seed = seed
	cfg.NoiseParam = *noise
	cfg.MasterSeed = *master
	cfg.Workers = *workers
	cfg.HighPrecision = *hiprec
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	if *estimate {
		for _, name := range []string{"tsv", "adj6", "csr6"} {
			ff, _ := trilliong.ParseFormat(name)
			est, err := cfg.EstimateSize(ff)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-5s %16d bytes (%.2f GB)  %d edges, %d active vertices\n",
				ff, est.Bytes, float64(est.Bytes)/(1<<30), est.Edges, est.NonZeroVertices)
		}
		return
	}

	var (
		st    trilliong.Stats
		cache *trilliong.Store
	)
	if *dryRun {
		st, err = cfg.Count(f)
	} else {
		if *out == "" {
			fatal(fmt.Errorf("-out is required (or use -dryrun)"))
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		if *storeDir != "" {
			remote, rerr := trilliong.OpenStoreBackend(*remoteSpec, nil)
			if rerr != nil {
				fatal(fmt.Errorf("-remote-store: %w", rerr))
			}
			cache, err = trilliong.OpenStore(*storeDir, trilliong.StoreOptions{MaxBytes: *storeMax, Remote: remote})
			if err != nil {
				fatal(err)
			}
			st, err = cfg.ResumeToDirCached(*out, f, cache)
		} else if *resume {
			st, err = cfg.ResumeToDir(*out, f)
		} else {
			st, err = cfg.GenerateToDir(*out, f)
		}
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scale            %d (|V| = %d)\n", *scale, cfg.NumVertices())
	fmt.Printf("edges            %d (target %d)\n", st.Edges, cfg.NumEdges())
	fmt.Printf("attempts         %d\n", st.Attempts)
	fmt.Printf("max out-degree   %d\n", st.MaxDegree)
	fmt.Printf("format           %s, %d bytes\n", f, st.BytesWritten)
	fmt.Printf("plan / generate  %v / %v\n", st.PlanDuration, st.GenDuration)
	fmt.Printf("elapsed          %v\n", st.Elapsed)
	fmt.Printf("peak worker mem  %d bytes (O(d_max))\n", st.PeakWorkerBytes)
	if cache != nil {
		cs := cache.Stats()
		fmt.Printf("parts from cache %d\n", st.PartsFromCache)
		fmt.Printf("store            %d objects, %d bytes (hits %d, misses %d, ingests %d)\n",
			cs.Objects, cs.Bytes, cs.Hits, cs.Misses, cs.Ingests)
	}
}

// runCommunity generates a community composition: one part file per
// block, resumable, optionally store-backed.
func runCommunity(specPath, format, out, storeDir string, storeMax int64, remoteSpec string) {
	raw, err := os.ReadFile(specPath)
	if err != nil {
		fatal(err)
	}
	cfg, err := trilliong.ParseCommunitySpec(raw)
	if err != nil {
		fatal(err)
	}
	lay, err := trilliong.NewCommunityLayout(cfg)
	if err != nil {
		fatal(err)
	}
	f, err := trilliong.ParseFormat(format)
	if err != nil {
		fatal(err)
	}
	if out == "" {
		fatal(fmt.Errorf("-out is required with -community"))
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	var cache *trilliong.Store
	if storeDir != "" {
		remote, rerr := trilliong.OpenStoreBackend(remoteSpec, nil)
		if rerr != nil {
			fatal(fmt.Errorf("-remote-store: %w", rerr))
		}
		cache, err = trilliong.OpenStore(storeDir, trilliong.StoreOptions{MaxBytes: storeMax, Remote: remote})
		if err != nil {
			fatal(err)
		}
	}
	st, err := trilliong.GenerateCommunityToDir(lay, out, f, cache)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("communities      %d (|V| = %d)\n", len(lay.Sizes()), lay.NumVertices())
	fmt.Printf("blocks           %d\n", lay.NumBlocks())
	fmt.Printf("edges            %d (target %d)\n", st.Edges, lay.TotalEdges())
	fmt.Printf("attempts         %d\n", st.Attempts)
	fmt.Printf("max out-degree   %d\n", st.MaxDegree)
	fmt.Printf("format           %s, %d bytes\n", f, st.BytesWritten)
	fmt.Printf("plan / generate  %v / %v\n", st.PlanDuration, st.GenDuration)
	fmt.Printf("elapsed          %v\n", st.Elapsed)
	if cache != nil {
		cs := cache.Stats()
		fmt.Printf("parts from cache %d\n", st.PartsFromCache)
		fmt.Printf("store            %d objects, %d bytes (hits %d, misses %d, ingests %d)\n",
			cs.Objects, cs.Bytes, cs.Hits, cs.Misses, cs.Ingests)
	}
}

func parseSeed(spec string) (trilliong.Seed, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return trilliong.Seed{}, fmt.Errorf("seed must be four comma-separated numbers, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return trilliong.Seed{}, fmt.Errorf("seed entry %q: %w", p, err)
		}
		vals[i] = v
	}
	s := trilliong.Seed{A: vals[0], B: vals[1], C: vals[2], D: vals[3]}
	return s, s.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trilliong:", err)
	os.Exit(1)
}
