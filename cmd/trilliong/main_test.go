package main

import "testing"

func TestParseSeed(t *testing.T) {
	s, err := parseSeed("0.57,0.19,0.19,0.05")
	if err != nil {
		t.Fatal(err)
	}
	if s.A != 0.57 || s.B != 0.19 || s.C != 0.19 || s.D != 0.05 {
		t.Fatalf("seed %+v", s)
	}
	if _, err := parseSeed(" 0.25 , 0.25 ,0.25, 0.25 "); err != nil {
		t.Fatalf("whitespace not tolerated: %v", err)
	}
	for _, bad := range []string{"", "1,2,3", "a,b,c,d", "0.5,0.5,0.5,0.5", "0.9,0.05,0.04,0.02,0"} {
		if _, err := parseSeed(bad); err == nil {
			t.Fatalf("parseSeed(%q) accepted", bad)
		}
	}
}
