package main

import (
	"path/filepath"
	"testing"
)

// TestLoadSchemaFromFile exercises the -schema path against the
// checked-in example configuration.
func TestLoadSchemaFromFile(t *testing.T) {
	schema, err := loadSchema(filepath.Join("..", "..", "schemas", "bibliography.json"), "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ranges := schema.Ranges()
	if len(ranges) != 4 {
		t.Fatalf("node-type ranges %v", ranges)
	}
	seen := make(map[string]bool)
	for _, r := range ranges {
		seen[r.Type] = true
		if r.Hi <= r.Lo {
			t.Fatalf("empty range %+v", r)
		}
	}
	for _, typ := range []string{"researcher", "paper", "journal", "conference"} {
		if !seen[typ] {
			t.Fatalf("node type %q missing from %v", typ, ranges)
		}
	}
}

// TestLoadSchemaBuiltins: both built-ins instantiate at the requested
// size and actually generate edges.
func TestLoadSchemaBuiltins(t *testing.T) {
	for _, builtin := range []string{"bibliography", "socialnetwork"} {
		schema, err := loadSchema("", builtin, 10_000, 80_000)
		if err != nil {
			t.Fatalf("%s: %v", builtin, err)
		}
		var edges int64
		counts, err := schema.Generate(7, func(pred string, src int64, dsts []int64) error {
			edges += int64(len(dsts))
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", builtin, err)
		}
		var total int64
		for _, n := range counts {
			total += n
		}
		if total != edges || edges == 0 {
			t.Fatalf("%s: counted %d edges, emitted %d", builtin, total, edges)
		}
	}
}

// TestLoadSchemaValidation covers the flag-combination errors.
func TestLoadSchemaValidation(t *testing.T) {
	if _, err := loadSchema("", "", 0, 0); err == nil {
		t.Fatal("no flags accepted")
	}
	if _, err := loadSchema("", "nope", 0, 0); err == nil {
		t.Fatal("unknown builtin accepted")
	}
	if _, err := loadSchema(filepath.Join(t.TempDir(), "missing.json"), "", 0, 0); err == nil {
		t.Fatal("missing schema file accepted")
	}
	// An explicit file wins over -builtin, matching main's precedence.
	if _, err := loadSchema(filepath.Join("..", "..", "schemas", "socialnetwork.json"), "bibliography", 0, 0); err != nil {
		t.Fatal(err)
	}
}
