// Command gmarkgen generates rich, schema-driven graphs (Section 6):
// multiple node types, edge predicates and independent degree
// distributions, described by a JSON graph configuration.
//
// Usage:
//
//	gmarkgen -schema bib.json -out graph.ntsv
//	gmarkgen -builtin bibliography -vertices 1000000 -edges 16000000 -out graph.ntsv
//	gmarkgen -builtin bibliography -print-schema       # dump the example JSON
//
// Output is predicate-labeled TSV: "src<TAB>predicate<TAB>dst" per
// line, plus a sidecar <out>.types file mapping node-type ID ranges.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	trilliong "repro"
)

func main() {
	var (
		schemaPath  = flag.String("schema", "", "JSON graph configuration file")
		builtin     = flag.String("builtin", "", "built-in schema name (bibliography or socialnetwork)")
		vertices    = flag.Int64("vertices", 1_000_000, "vertex count for built-in schemas")
		edges       = flag.Int64("edges", 16_000_000, "edge budget for built-in schemas")
		masterSeed  = flag.Uint64("master", 1, "master random seed")
		out         = flag.String("out", "", "output file (labeled TSV)")
		printSchema = flag.Bool("print-schema", false, "print the schema JSON and exit")
	)
	flag.Parse()

	schema, err := loadSchema(*schemaPath, *builtin, *vertices, *edges)
	if err != nil {
		fatal(err)
	}

	if *printSchema {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(schema); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	counts, err := schema.Generate(*masterSeed, func(pred string, src int64, dsts []int64) error {
		for _, d := range dsts {
			if _, err := fmt.Fprintf(w, "%d\t%s\t%d\n", src, pred, d); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	// Sidecar: node-type ranges.
	tf, err := os.Create(*out + ".types")
	if err != nil {
		fatal(err)
	}
	for _, r := range schema.Ranges() {
		fmt.Fprintf(tf, "%s\t%d\t%d\n", r.Type, r.Lo, r.Hi)
	}
	if err := tf.Close(); err != nil {
		fatal(err)
	}

	var total int64
	for pred, n := range counts {
		fmt.Printf("%-16s %d edges\n", pred, n)
		total += n
	}
	fmt.Printf("%-16s %d edges → %s\n", "total", total, *out)
}

// loadSchema resolves the -schema / -builtin flag pair: an explicit
// JSON file wins, otherwise a built-in schema is instantiated at the
// requested size.
func loadSchema(schemaPath, builtin string, vertices, edges int64) (*trilliong.Schema, error) {
	switch {
	case schemaPath != "":
		f, err := os.Open(schemaPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trilliong.ParseSchema(f)
	case builtin == "bibliography":
		return trilliong.BibliographySchema(vertices, edges), nil
	case builtin == "socialnetwork":
		return trilliong.SocialNetworkSchema(vertices, edges), nil
	case builtin != "":
		return nil, fmt.Errorf("unknown builtin %q (want bibliography or socialnetwork)", builtin)
	default:
		return nil, fmt.Errorf("need -schema FILE or -builtin bibliography|socialnetwork")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmarkgen:", err)
	os.Exit(1)
}
