package trilliong

import (
	"io"

	"repro/internal/gformat"
)

// Edge is one directed edge (src, dst).
type Edge = gformat.Edge

// MaxVertexID is the largest vertex ID representable in the 6-byte
// binary formats (2^48 − 1).
const MaxVertexID = gformat.MaxVertexID

// TSVReader streams edges from the text edge-list format.
type TSVReader = gformat.TSVReader

// NewTSVReader returns a reader over a TSV edge list.
func NewTSVReader(r io.Reader) *TSVReader { return gformat.NewTSVReader(r) }

// ADJ6Reader streams (source, adjacency) records from the 6-byte
// binary adjacency-list format.
type ADJ6Reader = gformat.ADJ6Reader

// NewADJ6Reader returns a reader over an ADJ6 file.
func NewADJ6Reader(r io.Reader) *ADJ6Reader { return gformat.NewADJ6Reader(r) }

// CSRGraph is a fully loaded CSR6 graph image with O(1) adjacency
// access.
type CSRGraph = gformat.CSRGraph

// ReadCSR6 loads a CSR6 part file.
func ReadCSR6(r io.Reader) (*CSRGraph, error) { return gformat.ReadCSR6(r) }
