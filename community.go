package trilliong

import (
	"repro/internal/community"
)

// CommunityConfig describes a community-composed graph: a partition of
// the vertex space into communities (explicit sizes or a seeded
// power-law sampler) and a mixing matrix apportioning the edge budget
// over the k×k community blocks. See internal/community and
// docs/COMMUNITY.md.
type CommunityConfig = community.Config

// CommunityLayout is a resolved community plan: concrete community
// ranges, one block per positive mixing entry with its deterministic
// seed and edge budget. The layout is a pure function of the config,
// so batch, distributed and masterless runs of the same spec produce
// bit-identical output.
type CommunityLayout = community.Layout

// CommunityRunOptions tunes community generation (artifact store,
// telemetry).
type CommunityRunOptions = community.RunOptions

// ParseCommunitySpec decodes a JSON community spec (strict: unknown
// fields are rejected).
func ParseCommunitySpec(b []byte) (CommunityConfig, error) {
	return community.ParseSpec(b)
}

// NewCommunityLayout resolves and validates a community config into a
// layout.
func NewCommunityLayout(cfg CommunityConfig) (*CommunityLayout, error) {
	return community.New(cfg)
}

// BipartiteConfig is the two-community degenerate case: rows source
// vertices, cols destination vertices, every edge in the single
// off-diagonal block.
func BipartiteConfig(rows, cols, edges int64, masterSeed uint64) CommunityConfig {
	return community.Bipartite(rows, cols, edges, masterSeed)
}

// GenerateCommunityToDir generates the layout into dir with resume and
// store semantics (one part file per block); see
// community.Layout.GenerateToDir.
func GenerateCommunityToDir(lay *CommunityLayout, dir string, format Format, st *Store) (Stats, error) {
	return lay.GenerateToDir(dir, format, CommunityRunOptions{Store: st})
}
