package partition

// Bin-granularity ablation (DESIGN.md §5): finer combine bins cost more
// gather traffic but tighten the load balance. The test pins the
// qualitative trade-off; the benchmarks quantify planning cost.

import (
	"testing"
	"testing/quick"

	"repro/internal/avs"
	"repro/internal/recvec"
	"repro/internal/skg"
)

func imbalance(rs []Range) float64 {
	var total, max int64
	n := 0
	for _, r := range rs {
		if r.Hi > r.Lo {
			total += r.Edges
			if r.Edges > max {
				max = r.Edges
			}
			n++
		}
	}
	if total == 0 || n == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(n))
}

// TestFinerBinsBalanceBetter: binsPerPart 16 yields load balance at
// least as tight as binsPerPart 1 (Figure 6 uses 1 bin per part; the
// paper notes the gather cost is tiny, so finer is nearly free).
func TestFinerBinsBalanceBetter(t *testing.T) {
	g := gen(t, 14)
	coarse, err := Plan(g, 5, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Plan(g, 5, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ci, fi := imbalance(coarse), imbalance(fine)
	if fi > ci*1.05 {
		t.Fatalf("finer bins worse balance: %v vs %v", fi, ci)
	}
}

// TestPlanCoverageProperty: for random (seed, parts) the plan always
// covers [0, |V|) exactly once — the partitioner's safety invariant.
func TestPlanCoverageProperty(t *testing.T) {
	g, err := avs.New(avs.Config{
		Seed: skg.Graph500Seed, Levels: 10, NumEdges: 1 << 14,
		Opts: recvec.Production(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint16, partsRaw uint8) bool {
		parts := int(partsRaw)%32 + 1
		ranges, err := Plan(g, uint64(seed), parts, 0)
		if err != nil {
			return false
		}
		if len(ranges) != parts {
			return false
		}
		next := int64(0)
		for _, r := range ranges {
			if r.Lo != next || r.Hi < r.Lo {
				return false
			}
			next = r.Hi
		}
		return next == 1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPlanBins1(b *testing.B)  { benchPlan(b, 1) }
func BenchmarkPlanBins8(b *testing.B)  { benchPlan(b, 8) }
func BenchmarkPlanBins64(b *testing.B) { benchPlan(b, 64) }

func benchPlan(b *testing.B, bins int) {
	g, err := avs.New(avs.Config{
		Seed: skg.Graph500Seed, Levels: 18, NumEdges: 16 << 18,
		Opts: recvec.Production(),
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(g, uint64(i), 60, bins); err != nil {
			b.Fatal(err)
		}
	}
}
