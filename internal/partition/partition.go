// Package partition implements TrillionG's AVS-level workload
// partitioning (Section 5, Figure 6): vertex scopes are combined into
// bins of roughly |E|/p expected edges, bin summaries are gathered at a
// master, repartitioned into p contiguous groups of nearly equal load,
// and scattered back — so every worker generates about the same number
// of edges with no shuffling at all.
//
// Scope sizes are drawn from each scope's private random stream (the
// first draws of that stream). Because generation later re-derives the
// same stream from (master seed, vertex), the planned sizes are exactly
// the generated sizes — the plan ships only O(bins) numbers, mirroring
// the paper's observation that the gather step is tiny.
package partition

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/avs"
	"repro/internal/rng"
)

// Range is a contiguous vertex range [Lo, Hi) with its planned load.
type Range struct {
	Lo, Hi int64
	// Edges is the summed planned scope size of the range.
	Edges int64
}

// Plan partitions the generator's vertex space into exactly `parts`
// contiguous ranges of near-equal planned load. binsPerPart controls
// combine granularity (Figure 6 uses 1; larger values trade a bigger
// gather for finer balance; ≤ 0 selects the default of 8).
func Plan(g *avs.Generator, masterSeed uint64, parts, binsPerPart int) ([]Range, error) {
	if parts < 1 {
		return nil, fmt.Errorf("partition: parts %d < 1", parts)
	}
	if binsPerPart <= 0 {
		binsPerPart = 8
	}
	cfg := g.Config()
	nv := cfg.NumVertices()
	if int64(parts) > nv {
		return nil, fmt.Errorf("partition: %d parts exceed %d vertices", parts, nv)
	}

	// Combine: walk all scopes in vertex order, drawing each scope's
	// size from its private stream, and close a bin whenever it reaches
	// the target. The size draws are sliced across GOMAXPROCS goroutines
	// exactly as the paper slices the combine step across threads; the
	// result is identical to a sequential walk because sizes are
	// scope-seeded and bin boundaries depend only on the size sequence.
	binTarget := cfg.NumEdges / int64(parts*binsPerPart)
	if binTarget < 1 {
		binTarget = 1
	}
	sizes := drawSizesParallel(g, masterSeed, nv)
	type bin struct {
		lo, hi int64 // [lo, hi)
		edges  int64
	}
	var bins []bin
	cur := bin{lo: 0}
	var total int64
	for u := int64(0); u < nv; u++ {
		size := sizes[u]
		cur.edges += size
		total += size
		if cur.edges >= binTarget {
			cur.hi = u + 1
			bins = append(bins, cur)
			cur = bin{lo: u + 1}
		}
	}
	if cur.lo < nv {
		cur.hi = nv
		bins = append(bins, cur)
	}

	// Gather + repartition: cut the ordered bin list into `parts`
	// contiguous groups, closing group i once the running total reaches
	// the proportional target total·(i+1)/parts. The final group always
	// extends to |V|; trailing empty ranges pad out to exactly `parts`.
	ranges := make([]Range, 0, parts)
	var acc, curEdges int64
	lo := int64(0)
	for _, b := range bins {
		acc += b.edges
		curEdges += b.edges
		if parts-len(ranges) == 1 {
			break // the last range absorbs everything that remains
		}
		target := total * int64(len(ranges)+1) / int64(parts)
		if acc >= target {
			ranges = append(ranges, Range{Lo: lo, Hi: b.hi, Edges: curEdges})
			lo = b.hi
			curEdges = 0
		}
	}
	lastEdges := total
	for _, r := range ranges {
		lastEdges -= r.Edges
	}
	ranges = append(ranges, Range{Lo: lo, Hi: nv, Edges: lastEdges})
	for len(ranges) < parts {
		ranges = append(ranges, Range{Lo: nv, Hi: nv})
	}
	return ranges, nil
}

// drawSizesParallel samples every scope size, slicing the vertex space
// across GOMAXPROCS goroutines. Each scope has its own seeded stream,
// so the slicing cannot change any value.
func drawSizesParallel(g *avs.Generator, masterSeed uint64, nv int64) []int64 {
	sizes := make([]int64, nv)
	workers := int64(runtime.GOMAXPROCS(0))
	if workers > nv {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (nv + workers - 1) / workers
	for w := int64(0); w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > nv {
			hi = nv
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				sizes[u] = g.ScopeSize(u, rng.NewScoped(masterSeed, uint64(u)))
			}
		}(lo, hi)
	}
	wg.Wait()
	return sizes
}
