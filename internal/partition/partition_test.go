package partition

import (
	"testing"

	"repro/internal/avs"
	"repro/internal/recvec"
	"repro/internal/rng"
	"repro/internal/skg"
)

func gen(t *testing.T, levels int) *avs.Generator {
	t.Helper()
	g, err := avs.New(avs.Config{
		Seed:     skg.Graph500Seed,
		Levels:   levels,
		NumEdges: 16 << uint(levels),
		Opts:     recvec.Production(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlanValidation(t *testing.T) {
	g := gen(t, 8)
	if _, err := Plan(g, 1, 0, 0); err == nil {
		t.Fatal("expected error for 0 parts")
	}
	if _, err := Plan(g, 1, 1000, 0); err == nil {
		t.Fatal("expected error for parts > |V|")
	}
}

// TestPlanCoversVertexSpace: ranges are contiguous, disjoint and cover
// [0, |V|) in order, with exactly `parts` entries.
func TestPlanCoversVertexSpace(t *testing.T) {
	g := gen(t, 12)
	for _, parts := range []int{1, 2, 7, 60} {
		ranges, err := Plan(g, 99, parts, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranges) != parts {
			t.Fatalf("parts=%d: got %d ranges", parts, len(ranges))
		}
		next := int64(0)
		for i, r := range ranges {
			if r.Lo != next {
				t.Fatalf("parts=%d range %d starts at %d, want %d", parts, i, r.Lo, next)
			}
			if r.Hi < r.Lo {
				t.Fatalf("parts=%d range %d inverted: %+v", parts, i, r)
			}
			next = r.Hi
		}
		if next != g.Config().NumVertices() {
			t.Fatalf("parts=%d: coverage ends at %d", parts, next)
		}
	}
}

// TestPlanBalances: every non-trivial range's load is within a factor
// of the ideal |E|/parts (bin granularity allows some slack; the
// hottest vertex bounds what any partitioner can do).
func TestPlanBalances(t *testing.T) {
	g := gen(t, 14)
	const parts = 8
	ranges, err := Plan(g, 7, parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range ranges {
		total += r.Edges
	}
	ideal := float64(total) / parts
	for i, r := range ranges {
		if float64(r.Edges) > 1.6*ideal || float64(r.Edges) < 0.4*ideal {
			t.Fatalf("range %d load %d far from ideal %v (ranges %+v)", i, r.Edges, ideal, ranges)
		}
	}
}

// TestPlanLoadsMatchGeneration: the planned per-range loads equal the
// sums of sizes the generator will actually draw — the property that
// lets TrillionG partition before generating.
func TestPlanLoadsMatchGeneration(t *testing.T) {
	g := gen(t, 11)
	const master = 1234
	ranges, err := Plan(g, master, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		var sum int64
		for u := r.Lo; u < r.Hi; u++ {
			sum += g.ScopeSize(u, rng.NewScoped(master, uint64(u)))
		}
		if sum != r.Edges {
			t.Fatalf("range %d planned %d, generation draws %d", i, r.Edges, sum)
		}
	}
}

// TestPlanDeterministic: same inputs, same plan.
func TestPlanDeterministic(t *testing.T) {
	g := gen(t, 10)
	a, err := Plan(g, 5, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(g, 5, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans differ at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestPlanSinglePart: one part owns everything.
func TestPlanSinglePart(t *testing.T) {
	g := gen(t, 9)
	ranges, err := Plan(g, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 1 || ranges[0].Lo != 0 || ranges[0].Hi != 512 {
		t.Fatalf("ranges %+v", ranges)
	}
}

// TestPlanPartsEqualVertices: extreme split still covers the space.
func TestPlanPartsEqualVertices(t *testing.T) {
	g := gen(t, 4)
	ranges, err := Plan(g, 3, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 16 {
		t.Fatalf("got %d ranges", len(ranges))
	}
	if ranges[len(ranges)-1].Hi != 16 {
		t.Fatal("last range must end at |V|")
	}
}
