// Package dist is TrillionG's distributed runtime: a master process
// plans the AVS-level partition (Figure 6) and leases contiguous
// vertex-range bundles to worker processes over TCP; each worker
// generates its leases with the recursive vector model and writes part
// files to its *local* disk — the deployment of the paper's 10-PC
// cluster, with plain TCP plus encoding/gob standing in for Spark.
//
// Unlike the paper's setup, the runtime is fault-tolerant: because the
// graph is a pure function of (configuration, master seed), any range
// can be regenerated anywhere, so the master keeps undone ranges in a
// work queue and simply requeues a lease when its worker disconnects,
// stalls past the heartbeat deadline, or reports failure. Workers dial
// with exponential backoff, reconnect after a dropped connection, and
// skip ranges whose part files already exist on their disk, so a
// restarted worker resumes instead of regenerating.
//
// The protocol (see docs/DIST.md for the full state machine):
//
//	worker → master  Hello{Threads}
//	master → worker  Job{Config, Format, Ranges, PartIDs, Heartbeat}
//	worker → master  Heartbeat{ScopesDone}   (periodic, while generating)
//	worker → master  Done{Stats, Skipped} | Fail{Error}
//	master → worker  Job{...} (next lease) | Bye{}
//
// Every message after Hello travels gob-encoded as an interface value,
// so either side dispatches on the concrete type it receives.
package dist

import (
	"encoding/gob"
	"net"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/pressure"
)

// Hello registers a worker and announces its thread count. A worker
// re-sends it after reconnecting; the master treats every connection
// as a fresh worker.
type Hello struct {
	Threads int
	// Level is the worker's host-pressure level at registration (see
	// internal/pressure); workers without a controller report OK (0),
	// which is also what masters predating the field decode. Every
	// subsequent Heartbeat/Done/Fail refreshes it.
	Level pressure.Level
}

// Job leases a bundle of ranges to a worker.
type Job struct {
	Config core.Config
	// Community, when non-nil, replaces Config: the lease's parts are
	// community blocks of the layout this spec describes, identified by
	// PartIDs (block ids), and Ranges carry each block's source-vertex
	// span. Workers rebuild the layout locally — the spec is tiny and
	// the layout a pure function of it — so the wire format stays flat.
	Community *community.Config
	Format    gformat.Format
	// Ranges are the vertex ranges of this lease, at most one per
	// worker thread.
	Ranges []partition.Range
	// PartIDs are the global part indices of Ranges, index-aligned;
	// part files are named part-<id>.<ext> so the union across machines
	// is a complete, collision-free file set. After a requeue the ids
	// need not be contiguous.
	PartIDs []int
	// Heartbeat is the interval at which the worker must send
	// Heartbeat messages while it holds this lease.
	Heartbeat time.Duration
}

// Heartbeat is the worker's liveness-and-progress beacon: it resets
// the master's per-lease silence deadline.
type Heartbeat struct {
	// ScopesDone counts scopes generated under the current lease.
	ScopesDone int64
	// Level is the worker's current host-pressure level, so the master
	// learns about a worker heating up (or cooling down) mid-lease.
	Level pressure.Level
}

// Done reports a completed lease with its aggregated statistics.
type Done struct {
	Edges           int64
	Attempts        int64
	MaxDegree       int64
	PeakWorkerBytes int64
	BytesWritten    int64
	GenDuration     time.Duration
	// Skipped counts leased parts the worker did not regenerate
	// because their files already existed (resume after restart).
	Skipped int
	// FromCache counts leased parts satisfied from the worker's
	// artifact store (checksum-verified) instead of generated.
	FromCache int
	// Level is the worker's host-pressure level after finishing the
	// lease — the freshest signal the master has when deciding whether
	// this worker should receive another fresh range.
	Level pressure.Level
}

// Fail reports a worker-side error for the current lease; the master
// requeues the lease and keeps the connection.
type Fail struct {
	Error string
	// Level is the worker's host-pressure level at failure time; a
	// lease that failed *because* the host is starved should not bounce
	// straight back to the same starved host.
	Level pressure.Level
}

// Bye releases the worker: every part is accounted for.
type Bye struct{}

func init() {
	gob.Register(Hello{})
	gob.Register(Job{})
	gob.Register(Heartbeat{})
	gob.Register(Done{})
	gob.Register(Fail{})
	gob.Register(Bye{})
}

// decodeWithin decodes one gob message under a read deadline (0 = no
// deadline), clearing the deadline afterwards so later exchanges on
// the same connection start fresh. The encoder/decoder pair must be
// reused across messages — gob streams type descriptors once — which
// is why the deadline wraps the existing decoder instead of a new one.
func decodeWithin(conn net.Conn, dec *gob.Decoder, d time.Duration, v interface{}) error {
	if d > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		defer conn.SetReadDeadline(time.Time{})
	}
	return dec.Decode(v)
}

// encodeWithin is decodeWithin's write-side twin.
func encodeWithin(conn net.Conn, enc *gob.Encoder, d time.Duration, v interface{}) error {
	if d > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	return enc.Encode(v)
}
