package dist

// Cache chaos tests: a cluster backed by an artifact store must turn
// reruns into pure lookups, and must survive a corrupted store entry by
// detecting, evicting and regenerating it. They live in the chaos suite
// (and its race-enabled CI step) because the store is exactly the kind
// of shared mutable state races love.

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// runStoreCluster runs a 3-worker cluster whose workers share one
// artifact store (the shared-cache-volume deployment).
func runStoreCluster(t *testing.T, cfg core.Config, st *store.Store) (Summary, []string) {
	t.Helper()
	m, err := NewMaster(MasterConfig{
		Addr:          "127.0.0.1:0",
		Workers:       3,
		Parts:         6,
		Config:        cfg,
		Format:        gformat.ADJ6,
		AcceptTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(WorkerConfig{
				MasterAddr: m.Addr(),
				Threads:    2,
				OutDir:     dirs[i],
				Backoff:    fastBackoff,
				Store:      st,
			})
		}(i)
	}
	sum, err := m.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	return sum, dirs
}

// TestChaosWarmStoreRerunIsAllCacheHits: a second cluster run against
// the store the first run populated regenerates zero ranges — every
// part is a verified store hit — and produces a bit-identical file set.
func TestChaosWarmStoreRerunIsAllCacheHits(t *testing.T) {
	cfg := testConfig(11)
	root := filepath.Join(t.TempDir(), "store")
	st, err := store.Open(root, store.Options{})
	if err != nil {
		t.Fatal(err)
	}

	coldSum, coldDirs := runStoreCluster(t, cfg, st)
	if coldSum.Edges == 0 || coldSum.PartsFromCache != 0 {
		t.Fatalf("cold summary = %+v", coldSum)
	}
	if got := st.Stats().Ingests; got != 6 {
		t.Fatalf("cold run ingested %d parts, want 6", got)
	}

	// Reopen the store with a fresh registry so the warm run's
	// hit/miss counters measure only itself, as a new cluster
	// incarnation sharing the cache volume would.
	tel := telemetry.NewRegistry()
	st2, err := store.Open(root, store.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	warmSum, warmDirs := runStoreCluster(t, cfg, st2)
	if warmSum.PartsFromCache != 6 {
		t.Fatalf("warm run PartsFromCache = %d, want 6", warmSum.PartsFromCache)
	}
	if warmSum.Edges != 0 {
		t.Fatalf("warm run generated %d edges, want 0", warmSum.Edges)
	}
	if hits, misses := tel.CounterValue(store.MetricHits), tel.CounterValue(store.MetricMisses); hits != 6 || misses != 0 {
		t.Fatalf("warm run store hits=%d misses=%d, want 6/0", hits, misses)
	}

	cold, warm := readParts(t, coldDirs, "adj6"), readParts(t, warmDirs, "adj6")
	if len(cold) != 6 || len(warm) != 6 {
		t.Fatalf("part counts: cold %d, warm %d", len(cold), len(warm))
	}
	for name, b := range cold {
		if string(warm[name]) != string(b) {
			t.Fatalf("part %s from cache differs from generated", name)
		}
	}
}

// TestChaosCorruptStoreEntryDetectedAndRegenerated: flip bits in one
// cached part; the next run's checksum verification must catch it,
// evict the entry, regenerate the range, and still produce the exact
// cold-run file set.
func TestChaosCorruptStoreEntryDetectedAndRegenerated(t *testing.T) {
	cfg := testConfig(11)
	root := filepath.Join(t.TempDir(), "store")
	st, err := store.Open(root, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, coldDirs := runStoreCluster(t, cfg, st)

	ranges, err := core.Plan(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	victim := core.PartKey(cfg, gformat.ADJ6, ranges[2])
	if err := st.CorruptForTest(victim); err != nil {
		t.Fatal(err)
	}

	tel := telemetry.NewRegistry()
	st2, err := store.Open(root, store.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	sum, dirs := runStoreCluster(t, cfg, st2)
	if sum.PartsFromCache != 5 {
		t.Fatalf("PartsFromCache = %d, want 5 (one entry corrupt)", sum.PartsFromCache)
	}
	if sum.Edges == 0 {
		t.Fatal("corrupt range was not regenerated")
	}
	if got := tel.CounterValue(store.MetricVerifyFailures); got != 1 {
		t.Fatalf("verify_failures = %d, want 1", got)
	}
	// The regenerated part went back into the store under the same key.
	if !st2.Has(victim) {
		t.Fatal("regenerated part was not re-ingested")
	}

	cold, recovered := readParts(t, coldDirs, "adj6"), readParts(t, dirs, "adj6")
	for name, b := range cold {
		if string(recovered[name]) != string(b) {
			t.Fatalf("part %s differs after corruption recovery", name)
		}
	}
}
