package dist

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/telemetry"
)

func testConfig(scale int) core.Config {
	cfg := core.DefaultConfig(scale)
	cfg.MasterSeed = 321
	return cfg
}

// fastBackoff keeps worker redial loops snappy in tests.
var fastBackoff = backoff.Policy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond}

// runCluster starts a master and `workers` in-process workers (each its
// own goroutine, as separate OS processes would be) and returns the
// summary plus each worker's output directory.
func runCluster(t *testing.T, mc MasterConfig, workers, threads int) (Summary, []string) {
	t.Helper()
	if mc.Addr == "" {
		mc.Addr = "127.0.0.1:0"
	}
	if mc.AcceptTimeout == 0 {
		mc.AcceptTimeout = 10 * time.Second
	}
	m, err := NewMaster(mc)
	if err != nil {
		t.Fatal(err)
	}
	addr := m.Addr()

	dirs := make([]string, workers)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(WorkerConfig{
				MasterAddr: addr,
				Threads:    threads,
				OutDir:     dirs[i],
				Backoff:    fastBackoff,
			})
		}(i)
	}
	sum, err := m.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	return sum, dirs
}

// readParts builds part-name → content for every part file in dirs. A
// part produced in two directories (possible after a requeue that the
// original worker survived) must be bit-identical in both.
func readParts(t *testing.T, dirs []string, ext string) map[string][]byte {
	t.Helper()
	parts := make(map[string][]byte)
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "part-*."+ext))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range files {
			b, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			base := filepath.Base(name)
			if prev, dup := parts[base]; dup {
				if string(prev) != string(b) {
					t.Fatalf("part %s differs between two workers", base)
				}
				continue
			}
			parts[base] = b
		}
	}
	return parts
}

// TestDistributedMatchesLocal: the union of the part files produced by
// a 3-machine × 2-thread cluster is the identical graph a single
// process generates.
func TestDistributedMatchesLocal(t *testing.T) {
	cfg := testConfig(10)

	sum, dirs := runCluster(t, MasterConfig{Workers: 3, Config: cfg, Format: gformat.ADJ6}, 3, 2)
	if sum.Workers != 3 || sum.TotalThreads != 6 || sum.Parts != 6 {
		t.Fatalf("summary %+v", sum)
	}

	distEdges := make(map[int64][]int64)
	partCount := 0
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "part-*.adj6"))
		if err != nil {
			t.Fatal(err)
		}
		partCount += len(files)
		for _, name := range files {
			f, err := os.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			r := gformat.NewADJ6Reader(f)
			for {
				src, dsts, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if _, dup := distEdges[src]; dup {
					t.Fatalf("scope %d produced by two workers", src)
				}
				distEdges[src] = dsts
			}
			f.Close()
		}
	}
	if partCount != 6 {
		t.Fatalf("part files %d, want 6", partCount)
	}

	localCfg := cfg
	localCfg.Workers = 1
	localEdges := make(map[int64][]int64)
	localStats, err := core.Generate(localCfg, core.CallbackSinks(func(src int64, dsts []int64) error {
		if len(dsts) > 0 {
			localEdges[src] = append([]int64(nil), dsts...)
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Edges != localStats.Edges {
		t.Fatalf("distributed %d edges, local %d", sum.Edges, localStats.Edges)
	}
	if len(distEdges) != len(localEdges) {
		t.Fatalf("distributed %d scopes, local %d", len(distEdges), len(localEdges))
	}
	for src, dsts := range localEdges {
		if !reflect.DeepEqual(distEdges[src], dsts) {
			t.Fatalf("scope %d differs between distributed and local", src)
		}
	}
}

// TestHeterogeneousWorkers: workers with different thread counts lease
// proportionally sized bundles and the run still completes.
func TestHeterogeneousWorkers(t *testing.T) {
	cfg := testConfig(9)
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 2, Config: cfg, Format: gformat.TSV,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	var wg sync.WaitGroup
	var err1, err2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		err1 = RunWorker(WorkerConfig{MasterAddr: m.Addr(), Threads: 1, OutDir: dir1, Backoff: fastBackoff})
	}()
	go func() {
		defer wg.Done()
		err2 = RunWorker(WorkerConfig{MasterAddr: m.Addr(), Threads: 3, OutDir: dir2, Backoff: fastBackoff})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v %v", err, err1, err2)
	}
	if sum.TotalThreads != 4 || sum.Parts != 4 {
		t.Fatalf("summary %+v", sum)
	}
	g1, _ := filepath.Glob(filepath.Join(dir1, "part-*.tsv"))
	g2, _ := filepath.Glob(filepath.Join(dir2, "part-*.tsv"))
	if len(g1)+len(g2) != 4 {
		t.Fatalf("part files %d + %d, want 4", len(g1), len(g2))
	}
}

// TestMasterValidation.
func TestMasterValidation(t *testing.T) {
	if _, err := NewMaster(MasterConfig{Addr: "127.0.0.1:0", Workers: 0, Config: testConfig(8)}); err == nil {
		t.Fatal("expected worker-count error")
	}
	bad := testConfig(8)
	bad.Scale = 0
	if _, err := NewMaster(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Config: bad}); err == nil {
		t.Fatal("expected config error")
	}
	if _, err := NewMaster(MasterConfig{Addr: "127.0.0.1:0", Workers: 2, MinWorkers: 3, Config: testConfig(8)}); err == nil {
		t.Fatal("expected min-workers error")
	}
	if _, err := NewMaster(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Parts: -1, Config: testConfig(8)}); err == nil {
		t.Fatal("expected parts error")
	}
}

// TestWorkerValidation.
func TestWorkerValidation(t *testing.T) {
	if err := RunWorker(WorkerConfig{MasterAddr: "127.0.0.1:1", Threads: 0, OutDir: t.TempDir()}); err == nil {
		t.Fatal("expected thread-count error")
	}
	err := RunWorker(WorkerConfig{MasterAddr: "127.0.0.1:1", Threads: 1, OutDir: "/nonexistent"})
	if err == nil || strings.Contains(err.Error(), "<nil>") {
		t.Fatalf("missing outdir: err = %v, want a real message", err)
	}
	// A path that exists but is a file must name the actual problem,
	// not format a nil error.
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = RunWorker(WorkerConfig{MasterAddr: "127.0.0.1:1", Threads: 1, OutDir: file})
	if err == nil || !strings.Contains(err.Error(), "not a directory") {
		t.Fatalf("file outdir: err = %v, want 'not a directory'", err)
	}
	// Nothing listening: the dial retries with backoff, then fails.
	start := time.Now()
	err = RunWorker(WorkerConfig{
		MasterAddr: "127.0.0.1:1", Threads: 1, OutDir: t.TempDir(),
		DialTimeout: 200 * time.Millisecond, MaxDials: 2, Backoff: fastBackoff,
	})
	if err == nil {
		t.Fatal("expected dial error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("dial retries not bounded")
	}
}

// TestMasterAcceptTimeout: a master whose fleet never reaches
// MinWorkers returns instead of hanging.
func TestMasterAcceptTimeout(t *testing.T) {
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Config: testConfig(8),
		Format: gformat.ADJ6, AcceptTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := m.Run(); err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not honoured")
	}
}

// TestMasterHandshakeTimeout: a client that connects but never sends
// Hello (a half-open or hung worker) neither blocks the master nor
// counts as a registration.
func TestMasterHandshakeTimeout(t *testing.T) {
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Config: testConfig(8),
		Format: gformat.ADJ6, HandshakeTimeout: 100 * time.Millisecond,
		AcceptTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() // connected, but silent: no Hello ever arrives
	start := time.Now()
	if _, err := m.Run(); err == nil {
		t.Fatal("expected gate timeout: a silent connection is not a worker")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("master blocked past its deadlines")
	}
}

// TestDistributedCSR6: the binary CSR format works across the wire too.
func TestDistributedCSR6(t *testing.T) {
	cfg := testConfig(9)
	sum, dirs := runCluster(t, MasterConfig{Workers: 2, Config: cfg, Format: gformat.CSR6}, 2, 2)
	var edges int64
	for _, dir := range dirs {
		files, _ := filepath.Glob(filepath.Join(dir, "part-*.csr6"))
		for _, name := range files {
			f, err := os.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			g, err := gformat.ReadCSR6(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			edges += g.NumEdges()
		}
	}
	if edges != sum.Edges {
		t.Fatalf("CSR parts hold %d edges, summary says %d", edges, sum.Edges)
	}
}

// fakeWorker is a hand-rolled protocol speaker for failure-mode tests.
// serve is called per lease; it returns the reply to send, or nil to
// vanish (close the connection).
func fakeWorker(t *testing.T, addr string, threads int, serve func(job Job, n int) interface{}) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		var hello interface{} = Hello{Threads: threads}
		if err := enc.Encode(&hello); err != nil {
			done <- err
			return
		}
		for n := 0; ; n++ {
			var msg interface{}
			if err := dec.Decode(&msg); err != nil {
				done <- nil // master hung up on us: expected in these tests
				return
			}
			switch job := msg.(type) {
			case Bye:
				done <- nil
				return
			case Job:
				reply := serve(job, n)
				if reply == nil {
					done <- nil
					return
				}
				if err := enc.Encode(&reply); err != nil {
					done <- nil
					return
				}
			default:
				done <- nil
				return
			}
		}
	}()
	return done
}

// TestPersistentFailureAbortsRun: a worker that fails every lease
// exhausts the per-range attempt cap and the master reports the
// underlying error instead of retrying forever.
func TestPersistentFailureAbortsRun(t *testing.T) {
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Parts: 1, MaxRetries: 1,
		Config: testConfig(8), Format: gformat.ADJ6,
		AcceptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := fakeWorker(t, m.Addr(), 1, func(Job, int) interface{} {
		return Fail{Error: "disk on fire"}
	})
	_, err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("master err = %v, want exhausted attempts carrying the worker error", err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("fake worker: %v", werr)
	}
}

// TestTransientFailureIsRetried: a worker whose first sink write fails
// reports Fail, gets the lease requeued, and completes it on retry.
func TestTransientFailureIsRetried(t *testing.T) {
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("core.sink.write", "fail:transient disk wobble*1"); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(9)
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Parts: 2, Config: cfg, Format: gformat.ADJ6,
		AcceptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var wg sync.WaitGroup
	var werr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		werr = RunWorker(WorkerConfig{MasterAddr: m.Addr(), Threads: 1, OutDir: dir, Backoff: fastBackoff})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || werr != nil {
		t.Fatalf("errs: %v / %v", err, werr)
	}
	if sum.Requeues == 0 {
		t.Fatalf("expected the failed lease to be requeued, summary %+v", sum)
	}
	if len(readParts(t, []string{dir}, "adj6")) != 2 {
		t.Fatal("retried run is missing parts")
	}
}

// TestStalledWorkerLeaseRequeued: a worker that takes a lease and goes
// silent past the heartbeat deadline loses the lease; a healthy worker
// finishes the run.
func TestStalledWorkerLeaseRequeued(t *testing.T) {
	cfg := testConfig(9)
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 2, Parts: 4, Config: cfg, Format: gformat.ADJ6,
		AcceptTimeout:     5 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		ResultTimeout:     300 * time.Millisecond,
		MaxRetries:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stalled := fakeWorker(t, m.Addr(), 2, func(Job, int) interface{} {
		time.Sleep(2 * time.Second) // hold the lease well past the deadline, never beat
		return Fail{Error: "unreachable"}
	})
	dir := t.TempDir()
	var wg sync.WaitGroup
	var werr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		werr = RunWorker(WorkerConfig{MasterAddr: m.Addr(), Threads: 2, OutDir: dir, Backoff: fastBackoff})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || werr != nil {
		t.Fatalf("errs: %v / %v", err, werr)
	}
	if sum.Requeues == 0 {
		t.Fatalf("expected at least one requeue, summary %+v", sum)
	}
	parts := readParts(t, []string{dir}, "adj6")
	if len(parts) != 4 {
		t.Fatalf("healthy worker holds %d parts, want all 4", len(parts))
	}
	select {
	case <-stalled:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled fake worker never released")
	}
}

// TestVanishedWorkerLeaseRequeued: a worker that disconnects after
// taking a lease loses it to a healthy worker.
func TestVanishedWorkerLeaseRequeued(t *testing.T) {
	cfg := testConfig(9)
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 2, Parts: 4, Config: cfg, Format: gformat.ADJ6,
		AcceptTimeout: 5 * time.Second, MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	vanished := fakeWorker(t, m.Addr(), 2, func(Job, int) interface{} {
		return nil // close the connection while holding the lease
	})
	dir := t.TempDir()
	var wg sync.WaitGroup
	var werr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		werr = RunWorker(WorkerConfig{MasterAddr: m.Addr(), Threads: 2, OutDir: dir, Backoff: fastBackoff})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || werr != nil {
		t.Fatalf("errs: %v / %v", err, werr)
	}
	if sum.Requeues == 0 {
		t.Fatalf("expected a requeue, summary %+v", sum)
	}
	if len(readParts(t, []string{dir}, "adj6")) != 4 {
		t.Fatal("healthy worker did not pick up the vanished worker's parts")
	}
	<-vanished
}

// TestMinWorkersDegradedStart: a run asking for 3 workers with
// MinWorkers 2 completes when only 2 ever register.
func TestMinWorkersDegradedStart(t *testing.T) {
	cfg := testConfig(9)
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 3, MinWorkers: 2, Config: cfg, Format: gformat.ADJ6,
		AcceptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{t.TempDir(), t.TempDir()}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(WorkerConfig{MasterAddr: m.Addr(), Threads: 2, OutDir: dirs[i], Backoff: fastBackoff})
		}(i)
	}
	sum, err := m.Run()
	wg.Wait()
	if err != nil || errs[0] != nil || errs[1] != nil {
		t.Fatalf("errs: %v %v %v", err, errs[0], errs[1])
	}
	if sum.Workers != 2 || sum.Parts != 4 {
		t.Fatalf("summary %+v", sum)
	}
	if len(readParts(t, dirs, "adj6")) != 4 {
		t.Fatal("degraded run did not produce every part")
	}
}

// TestWorkerConnectsViaBackoff: a worker started before its master
// retries the dial and registers once the master appears.
func TestWorkerConnectsViaBackoff(t *testing.T) {
	// Reserve an address, release it, and bring the master up there
	// only after the worker has started dialing.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	dir := t.TempDir()
	var wg sync.WaitGroup
	var werr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		werr = RunWorker(WorkerConfig{
			MasterAddr: addr, Threads: 2, OutDir: dir,
			DialTimeout: time.Second, MaxDials: 20, Backoff: fastBackoff,
		})
	}()
	time.Sleep(300 * time.Millisecond)
	m, err := NewMaster(MasterConfig{
		Addr: addr, Workers: 1, Config: testConfig(9), Format: gformat.ADJ6,
		AcceptTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := m.Run()
	wg.Wait()
	if err != nil || werr != nil {
		t.Fatalf("errs: %v / %v", err, werr)
	}
	if sum.Workers != 1 || sum.Parts != 2 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestWorkerResumesExistingParts: a worker pointed at a directory that
// already holds every part skips regeneration entirely — the cluster
// path reuses the resume-skip logic.
func TestWorkerResumesExistingParts(t *testing.T) {
	cfg := testConfig(9)
	mc := MasterConfig{Workers: 1, Parts: 4, Config: cfg, Format: gformat.ADJ6}
	_, dirs := runCluster(t, mc, 1, 2)

	before := readParts(t, dirs, "adj6")
	if len(before) != 4 {
		t.Fatalf("first run produced %d parts", len(before))
	}

	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Parts: 4, Config: cfg, Format: gformat.ADJ6,
		AcceptTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var werr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		werr = RunWorker(WorkerConfig{MasterAddr: m.Addr(), Threads: 2, OutDir: dirs[0], Backoff: fastBackoff})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || werr != nil {
		t.Fatalf("errs: %v / %v", err, werr)
	}
	if sum.SkippedParts != 4 || sum.Edges != 0 {
		t.Fatalf("resumed run regenerated work: %+v", sum)
	}
	after := readParts(t, dirs, "adj6")
	for name, b := range before {
		if string(after[name]) != string(b) {
			t.Fatalf("part %s changed across resume", name)
		}
	}
}

// TestDecodeWithinTimesOut: a peer that never sends blocks the gob
// decode only until the deadline, and the deadline is cleared
// afterwards so later exchanges on the connection still work.
func TestDecodeWithinTimesOut(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	dec := gob.NewDecoder(a)
	var hi Hello
	start := time.Now()
	err := decodeWithin(a, dec, 50*time.Millisecond, &hi)
	if err == nil {
		t.Fatal("decode of a silent peer succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not honoured")
	}
	// The deadline must not linger: a message sent now decodes fine.
	go gob.NewEncoder(b).Encode(Hello{Threads: 3})
	if err := decodeWithin(a, dec, time.Second, &hi); err != nil || hi.Threads != 3 {
		t.Fatalf("post-timeout decode: %v %+v", err, hi)
	}
}

// TestEncodeWithinTimesOut: net.Pipe is unbuffered, so an encode to a
// peer that never reads models a zero-window (hung) TCP connection;
// the write deadline must break the stall.
func TestEncodeWithinTimesOut(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	enc := gob.NewEncoder(a)
	err := encodeWithin(a, enc, 50*time.Millisecond, Job{PartIDs: []int{1}})
	if err == nil {
		t.Fatal("encode to a stalled peer succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
}

// TestMaxLeaseRanges: with the per-lease cap at 1, a 4-thread worker
// takes one range per round trip, so lease grants equal parts and the
// fair queue drains to zero (visible via the queue-depth gauge).
func TestMaxLeaseRanges(t *testing.T) {
	tel := telemetry.NewRegistry()
	cfg := testConfig(10)
	sum, dirs := runCluster(t, MasterConfig{
		Workers: 1, Parts: 6, Config: cfg, Format: gformat.TSV,
		MaxLeaseRanges: 1, Telemetry: tel,
	}, 1, 4)
	if sum.Parts != 6 || sum.Edges == 0 {
		t.Fatalf("summary %+v", sum)
	}
	if got := tel.CounterValue(MetricLeaseGrants); got != 6 {
		t.Fatalf("lease grants %d, want 6 (one range per lease)", got)
	}
	if parts := readParts(t, dirs, "tsv"); len(parts) != 6 {
		t.Fatalf("got %d part files, want 6", len(parts))
	}
	var buf strings.Builder
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trilliong_dist_master_queue_depth 0") {
		t.Fatalf("queue-depth gauge missing or non-zero:\n%s", buf.String())
	}
	if NewMasterErr := func() error {
		_, err := NewMaster(MasterConfig{Workers: 1, Config: cfg, MaxLeaseRanges: -1, Addr: "127.0.0.1:0"})
		return err
	}(); NewMasterErr == nil {
		t.Fatal("negative MaxLeaseRanges accepted")
	}
}

// TestDistributedCommunityMatchesBatch: a community job's blocks flow
// through leases like classic ranges, and the union of the workers'
// parts is byte-identical to the batch run of the same spec.
func TestDistributedCommunityMatchesBatch(t *testing.T) {
	spec := community.Config{
		Sizes:      []int64{8, 5, 8},
		Mixing:     [][]float64{{4, 1, 0}, {1, 2, 1}, {0, 1, 3}},
		Edges:      120,
		Noise:      0.1,
		MasterSeed: 11,
	}
	lay, err := community.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	if _, err := lay.GenerateToDir(refDir, gformat.ADJ6, community.RunOptions{}); err != nil {
		t.Fatal(err)
	}

	sum, dirs := runCluster(t, MasterConfig{
		Workers:   2,
		Community: &spec,
		Format:    gformat.ADJ6,
	}, 2, 2)
	if sum.Parts != lay.NumBlocks() {
		t.Fatalf("master planned %d parts, layout has %d blocks", sum.Parts, lay.NumBlocks())
	}

	got := readParts(t, dirs, "adj6")
	want := readParts(t, []string{refDir}, "adj6")
	if len(got) != len(want) {
		t.Fatalf("cluster produced %d parts, batch %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("part %s missing from the cluster output", name)
		}
		if string(g) != string(w) {
			t.Fatalf("part %s differs from the batch output", name)
		}
	}
}

// TestMasterCommunityValidation: a broken community spec fails at
// NewMaster, before any worker connects.
func TestMasterCommunityValidation(t *testing.T) {
	bad := community.Config{
		Sizes:  []int64{8, 5},
		Mixing: [][]float64{{0, 0}, {0, 0}},
	}
	if _, err := NewMaster(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Community: &bad, Format: gformat.ADJ6}); err == nil {
		t.Fatal("NewMaster accepted an all-zero mixing matrix")
	}
}
