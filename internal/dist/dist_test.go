package dist

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gformat"
)

func testConfig(scale int) core.Config {
	cfg := core.DefaultConfig(scale)
	cfg.MasterSeed = 321
	return cfg
}

// runCluster starts a master and `workers` in-process workers (each its
// own goroutine, as separate OS processes would be) and returns the
// summary plus each worker's output directory.
func runCluster(t *testing.T, cfg core.Config, format gformat.Format, workers, threads int) (Summary, []string) {
	t.Helper()
	m, err := NewMaster(MasterConfig{
		Addr:          "127.0.0.1:0",
		Workers:       workers,
		Config:        cfg,
		Format:        format,
		AcceptTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := m.Addr()

	dirs := make([]string, workers)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(WorkerConfig{
				MasterAddr: addr,
				Threads:    threads,
				OutDir:     dirs[i],
			})
		}(i)
	}
	sum, err := m.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	return sum, dirs
}

// TestDistributedMatchesLocal: the union of the part files produced by
// a 3-machine × 2-thread cluster is the identical graph a single
// process generates.
func TestDistributedMatchesLocal(t *testing.T) {
	cfg := testConfig(10)

	sum, dirs := runCluster(t, cfg, gformat.ADJ6, 3, 2)
	if sum.Workers != 3 || sum.TotalThreads != 6 {
		t.Fatalf("summary %+v", sum)
	}

	distEdges := make(map[int64][]int64)
	partCount := 0
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "part-*.adj6"))
		if err != nil {
			t.Fatal(err)
		}
		partCount += len(files)
		for _, name := range files {
			f, err := os.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			r := gformat.NewADJ6Reader(f)
			for {
				src, dsts, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if _, dup := distEdges[src]; dup {
					t.Fatalf("scope %d produced by two workers", src)
				}
				distEdges[src] = dsts
			}
			f.Close()
		}
	}
	if partCount != 6 {
		t.Fatalf("part files %d, want 6", partCount)
	}

	localCfg := cfg
	localCfg.Workers = 1
	localEdges := make(map[int64][]int64)
	localStats, err := core.Generate(localCfg, core.CallbackSinks(func(src int64, dsts []int64) error {
		if len(dsts) > 0 {
			localEdges[src] = append([]int64(nil), dsts...)
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Edges != localStats.Edges {
		t.Fatalf("distributed %d edges, local %d", sum.Edges, localStats.Edges)
	}
	if len(distEdges) != len(localEdges) {
		t.Fatalf("distributed %d scopes, local %d", len(distEdges), len(localEdges))
	}
	for src, dsts := range localEdges {
		if !reflect.DeepEqual(distEdges[src], dsts) {
			t.Fatalf("scope %d differs between distributed and local", src)
		}
	}
}

// TestHeterogeneousWorkers: workers with different thread counts get
// proportionally sized assignments and the run still completes.
func TestHeterogeneousWorkers(t *testing.T) {
	cfg := testConfig(9)
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 2, Config: cfg, Format: gformat.TSV,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	var wg sync.WaitGroup
	var err1, err2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		err1 = RunWorker(WorkerConfig{MasterAddr: m.Addr(), Threads: 1, OutDir: dir1})
	}()
	go func() {
		defer wg.Done()
		err2 = RunWorker(WorkerConfig{MasterAddr: m.Addr(), Threads: 3, OutDir: dir2})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v %v", err, err1, err2)
	}
	if sum.TotalThreads != 4 {
		t.Fatalf("total threads %d", sum.TotalThreads)
	}
	// Both workers produced at least one part file (registration order
	// decides which global indices land where).
	g1, _ := filepath.Glob(filepath.Join(dir1, "part-*.tsv"))
	g2, _ := filepath.Glob(filepath.Join(dir2, "part-*.tsv"))
	if len(g1)+len(g2) != 4 {
		t.Fatalf("part files %d + %d, want 4", len(g1), len(g2))
	}
}

// TestMasterValidation.
func TestMasterValidation(t *testing.T) {
	if _, err := NewMaster(MasterConfig{Addr: "127.0.0.1:0", Workers: 0, Config: testConfig(8)}); err == nil {
		t.Fatal("expected worker-count error")
	}
	bad := testConfig(8)
	bad.Scale = 0
	if _, err := NewMaster(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Config: bad}); err == nil {
		t.Fatal("expected config error")
	}
}

// TestWorkerValidation.
func TestWorkerValidation(t *testing.T) {
	if err := RunWorker(WorkerConfig{MasterAddr: "127.0.0.1:1", Threads: 0, OutDir: t.TempDir()}); err == nil {
		t.Fatal("expected thread-count error")
	}
	if err := RunWorker(WorkerConfig{MasterAddr: "127.0.0.1:1", Threads: 1, OutDir: "/nonexistent"}); err == nil {
		t.Fatal("expected outdir error")
	}
	// Nothing listening: dial must fail quickly.
	err := RunWorker(WorkerConfig{
		MasterAddr: "127.0.0.1:1", Threads: 1, OutDir: t.TempDir(),
		DialTimeout: 200 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("expected dial error")
	}
}

// TestMasterAcceptTimeout: a master waiting for workers that never come
// returns instead of hanging.
func TestMasterAcceptTimeout(t *testing.T) {
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Config: testConfig(8),
		Format: gformat.ADJ6, AcceptTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := m.Run(); err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not honoured")
	}
}

// TestDistributedCSR6: the binary CSR format works across the wire too.
func TestDistributedCSR6(t *testing.T) {
	cfg := testConfig(9)
	sum, dirs := runCluster(t, cfg, gformat.CSR6, 2, 2)
	var edges int64
	for _, dir := range dirs {
		files, _ := filepath.Glob(filepath.Join(dir, "part-*.csr6"))
		for _, name := range files {
			f, err := os.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			g, err := gformat.ReadCSR6(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			edges += g.NumEdges()
		}
	}
	if edges != sum.Edges {
		t.Fatalf("CSR parts hold %d edges, summary says %d", edges, sum.Edges)
	}
}

// TestWorkerFailurePropagatesToMaster: a worker that reports Fail makes
// the master's Run return an error carrying the message.
func TestWorkerFailurePropagatesToMaster(t *testing.T) {
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Config: testConfig(8), Format: gformat.ADJ6,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// A hand-rolled worker speaking the protocol but failing the job.
		conn, err := net.Dial("tcp", m.Addr())
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		if err := enc.Encode(Hello{Threads: 1}); err != nil {
			done <- err
			return
		}
		var job Job
		if err := dec.Decode(&job); err != nil {
			done <- err
			return
		}
		var reply interface{} = Fail{Error: "disk on fire"}
		if err := enc.Encode(&reply); err != nil {
			done <- err
			return
		}
		var bye Bye
		done <- dec.Decode(&bye)
	}()
	_, err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("master err = %v, want worker failure", err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("fake worker: %v", werr)
	}
}

// TestDecodeWithinTimesOut: a peer that never sends blocks the gob
// decode only until the deadline, and the deadline is cleared
// afterwards so later exchanges on the connection still work.
func TestDecodeWithinTimesOut(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	dec := gob.NewDecoder(a)
	var hi Hello
	start := time.Now()
	err := decodeWithin(a, dec, 50*time.Millisecond, &hi)
	if err == nil {
		t.Fatal("decode of a silent peer succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not honoured")
	}
	// The deadline must not linger: a message sent now decodes fine.
	go gob.NewEncoder(b).Encode(Hello{Threads: 3})
	if err := decodeWithin(a, dec, time.Second, &hi); err != nil || hi.Threads != 3 {
		t.Fatalf("post-timeout decode: %v %+v", err, hi)
	}
}

// TestEncodeWithinTimesOut: net.Pipe is unbuffered, so an encode to a
// peer that never reads models a zero-window (hung) TCP connection;
// the write deadline must break the stall.
func TestEncodeWithinTimesOut(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	enc := gob.NewEncoder(a)
	err := encodeWithin(a, enc, 50*time.Millisecond, Job{FirstPart: 1})
	if err == nil {
		t.Fatal("encode to a stalled peer succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
}

// TestMasterHandshakeTimeout: a client that connects but never sends
// Hello (a half-open or hung worker) cannot block the master forever.
func TestMasterHandshakeTimeout(t *testing.T) {
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Config: testConfig(8),
		Format: gformat.ADJ6, HandshakeTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() // connected, but silent: no Hello ever arrives
	start := time.Now()
	if _, err := m.Run(); err == nil {
		t.Fatal("expected handshake timeout error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("master blocked past the handshake deadline")
	}
}

// TestMasterResultTimeout: a worker that registers and accepts its job
// but then hangs mid-generation is bounded by ResultTimeout.
func TestMasterResultTimeout(t *testing.T) {
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Config: testConfig(8),
		Format: gformat.ADJ6, ResultTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	go func() {
		conn, err := net.Dial("tcp", m.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		enc.Encode(Hello{Threads: 1})
		var job Job
		dec.Decode(&job)
		<-release // hang instead of generating
	}()
	defer close(release)
	start := time.Now()
	if _, err := m.Run(); err == nil {
		t.Fatal("expected result timeout error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("master blocked past the result deadline")
	}
}

// TestWorkerDisconnectMidJob: a worker that vanishes after registering
// surfaces as a read error, not a hang.
func TestWorkerDisconnectMidJob(t *testing.T) {
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 1, Config: testConfig(8), Format: gformat.ADJ6,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := net.Dial("tcp", m.Addr())
		if err != nil {
			return
		}
		enc := gob.NewEncoder(conn)
		enc.Encode(Hello{Threads: 1})
		conn.Close() // vanish before sending a result
	}()
	if _, err := m.Run(); err == nil {
		t.Fatal("expected error for vanished worker")
	}
}
