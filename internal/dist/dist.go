// Package dist is TrillionG's distributed runtime: a master process
// plans the AVS-level partition (Figure 6) and scatters contiguous
// vertex-range assignments to worker processes over TCP; each worker
// generates its ranges with the recursive vector model and writes part
// files to its *local* disk — exactly the deployment of the paper's
// 10-PC cluster, with plain TCP plus encoding/gob standing in for
// Spark.
//
// Because the graph is a pure function of (configuration, master seed)
// and a plan ships only O(ranges) numbers, the protocol is tiny:
//
//	worker → master  Hello{Threads}
//	master → worker  Job{Config, Format, Ranges, FirstPart}
//	worker → master  Done{Stats} | Fail{Error}
//	master → worker  Bye{}
//
// The master blocks until the expected number of workers registers,
// plans across the total thread count, assigns each worker as many
// consecutive ranges as it has threads, and aggregates the results.
package dist

import (
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/partition"
)

// Hello registers a worker and announces its thread count.
type Hello struct {
	Threads int
}

// Job carries a worker's assignment.
type Job struct {
	Config core.Config
	Format gformat.Format
	// Ranges are the vertex ranges this worker generates, one per
	// thread.
	Ranges []partition.Range
	// FirstPart is the global part index of Ranges[0]; part files are
	// named part-<global index>.<ext> so the union across machines is a
	// complete, collision-free file set.
	FirstPart int
}

// Done reports a worker's aggregated statistics.
type Done struct {
	Edges           int64
	Attempts        int64
	MaxDegree       int64
	PeakWorkerBytes int64
	BytesWritten    int64
	GenDuration     time.Duration
}

// Fail reports a worker-side error.
type Fail struct {
	Error string
}

// Bye releases the worker.
type Bye struct{}

func init() {
	gob.Register(Hello{})
	gob.Register(Job{})
	gob.Register(Done{})
	gob.Register(Fail{})
	gob.Register(Bye{})
}

// MasterConfig configures RunMaster.
type MasterConfig struct {
	// Addr is the listen address ("host:port"; port 0 picks one).
	Addr string
	// Workers is the number of worker processes to wait for.
	Workers int
	// Config is the graph to generate.
	Config core.Config
	// Format is the output format for every worker.
	Format gformat.Format
	// AcceptTimeout bounds the wait for registrations (0 = 60s).
	AcceptTimeout time.Duration
	// HandshakeTimeout bounds each small gob exchange (Hello read, Job
	// and Bye writes), so a hung or half-open worker connection cannot
	// block the master forever (0 = 30s).
	HandshakeTimeout time.Duration
	// ResultTimeout bounds the wait for a worker's Done/Fail message,
	// which spans the worker's whole generation run (0 = unbounded;
	// set it when an upper bound on generation time is known).
	ResultTimeout time.Duration
}

// Summary aggregates a distributed run.
type Summary struct {
	Workers      int
	TotalThreads int
	Edges        int64
	Attempts     int64
	MaxDegree    int64
	PeakBytes    int64
	BytesWritten int64
	// PlanDuration is the master-side planning time; Elapsed the wall
	// time from first assignment to last completion.
	PlanDuration, Elapsed time.Duration
}

// Master coordinates one distributed generation.
type Master struct {
	cfg MasterConfig
	ln  net.Listener
}

// NewMaster validates the configuration and starts listening, so the
// bound address (Addr) is known before workers are launched.
func NewMaster(cfg MasterConfig) (*Master, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dist: master needs ≥ 1 worker")
	}
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	if cfg.AcceptTimeout == 0 {
		cfg.AcceptTimeout = 60 * time.Second
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	return &Master{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound listen address.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Close releases the listener (Run closes it itself on completion).
func (m *Master) Close() error { return m.ln.Close() }

type peer struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	hi   Hello
}

// decodeWithin decodes one gob message under a read deadline (0 = no
// deadline), clearing the deadline afterwards so later exchanges on
// the same connection start fresh. The encoder/decoder pair must be
// reused across messages — gob streams type descriptors once — which
// is why the deadline wraps the existing decoder instead of a new one.
func decodeWithin(conn net.Conn, dec *gob.Decoder, d time.Duration, v interface{}) error {
	if d > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		defer conn.SetReadDeadline(time.Time{})
	}
	return dec.Decode(v)
}

// encodeWithin is decodeWithin's write-side twin.
func encodeWithin(conn net.Conn, enc *gob.Encoder, d time.Duration, v interface{}) error {
	if d > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	return enc.Encode(v)
}

// Run accepts registrations, scatters assignments, and aggregates
// results.
func (m *Master) Run() (Summary, error) {
	defer m.ln.Close()
	deadline := time.Now().Add(m.cfg.AcceptTimeout)

	peers := make([]*peer, 0, m.cfg.Workers)
	defer func() {
		for _, p := range peers {
			p.conn.Close()
		}
	}()
	total := 0
	for len(peers) < m.cfg.Workers {
		if tl, ok := m.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := m.ln.Accept()
		if err != nil {
			return Summary{}, fmt.Errorf("dist: accepting worker %d/%d: %w", len(peers), m.cfg.Workers, err)
		}
		p := &peer{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
		if err := decodeWithin(conn, p.dec, m.cfg.HandshakeTimeout, &p.hi); err != nil {
			conn.Close()
			return Summary{}, fmt.Errorf("dist: reading hello: %w", err)
		}
		if p.hi.Threads < 1 {
			conn.Close()
			return Summary{}, fmt.Errorf("dist: worker announced %d threads", p.hi.Threads)
		}
		peers = append(peers, p)
		total += p.hi.Threads
	}

	planStart := time.Now()
	ranges, err := core.Plan(m.cfg.Config, total)
	if err != nil {
		return Summary{}, err
	}
	sum := Summary{
		Workers:      len(peers),
		TotalThreads: total,
		PlanDuration: time.Since(planStart),
	}

	start := time.Now()
	next := 0
	for _, p := range peers {
		job := Job{
			Config:    m.cfg.Config,
			Format:    m.cfg.Format,
			Ranges:    ranges[next : next+p.hi.Threads],
			FirstPart: next,
		}
		next += p.hi.Threads
		if err := encodeWithin(p.conn, p.enc, m.cfg.HandshakeTimeout, job); err != nil {
			return sum, fmt.Errorf("dist: sending job: %w", err)
		}
	}

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			var msg interface{}
			err := decodeWithin(p.conn, p.dec, m.cfg.ResultTimeout, &msg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("dist: reading result: %w", err)
				}
				return
			}
			switch r := msg.(type) {
			case Done:
				sum.Edges += r.Edges
				sum.Attempts += r.Attempts
				sum.BytesWritten += r.BytesWritten
				if r.MaxDegree > sum.MaxDegree {
					sum.MaxDegree = r.MaxDegree
				}
				if r.PeakWorkerBytes > sum.PeakBytes {
					sum.PeakBytes = r.PeakWorkerBytes
				}
			case Fail:
				if firstErr == nil {
					firstErr = fmt.Errorf("dist: worker failed: %s", r.Error)
				}
			default:
				if firstErr == nil {
					firstErr = fmt.Errorf("dist: unexpected message %T", msg)
				}
			}
			encodeWithin(p.conn, p.enc, m.cfg.HandshakeTimeout, Bye{})
		}(p)
	}
	wg.Wait()
	sum.Elapsed = time.Since(start)
	return sum, firstErr
}

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// MasterAddr is the master's "host:port".
	MasterAddr string
	// Threads is the number of generation goroutines (and ranges) this
	// worker requests.
	Threads int
	// OutDir receives this worker's part files (local disk).
	OutDir string
	// DialTimeout bounds the connection attempt (0 = 10s).
	DialTimeout time.Duration
	// HandshakeTimeout, when set, bounds each gob exchange with the
	// master (Hello/result writes, Bye read). The Job read is exempt:
	// it legitimately lasts until every other worker has registered.
	// 0 leaves the exchanges unbounded.
	HandshakeTimeout time.Duration
}

// RunWorker connects to the master, generates its assignment, and
// returns after the master acknowledges.
func RunWorker(cfg WorkerConfig) error {
	if cfg.Threads < 1 {
		return fmt.Errorf("dist: worker needs ≥ 1 thread")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if info, err := os.Stat(cfg.OutDir); err != nil || !info.IsDir() {
		return fmt.Errorf("dist: output directory %q not usable: %v", cfg.OutDir, err)
	}
	conn, err := net.DialTimeout("tcp", cfg.MasterAddr, cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("dist: dialing master: %w", err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := encodeWithin(conn, enc, cfg.HandshakeTimeout, Hello{Threads: cfg.Threads}); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	var job Job
	if err := dec.Decode(&job); err != nil {
		return fmt.Errorf("dist: receiving job: %w", err)
	}

	// Atomic sinks: a crashed worker leaves only .tmp litter, never a
	// truncated part file, so the operator can simply rerun the worker.
	sinks := core.AtomicFileSinks(cfg.OutDir, job.Format, job.Config.NumVertices(), job.FirstPart)
	st, err := core.GenerateRanges(job.Config, job.Ranges, sinks)
	var reply interface{}
	if err != nil {
		reply = Fail{Error: err.Error()}
	} else {
		reply = Done{
			Edges:           st.Edges,
			Attempts:        st.Attempts,
			MaxDegree:       st.MaxDegree,
			PeakWorkerBytes: st.PeakWorkerBytes,
			BytesWritten:    st.BytesWritten,
			GenDuration:     st.GenDuration,
		}
	}
	if err := encodeWithin(conn, enc, cfg.HandshakeTimeout, &reply); err != nil {
		return fmt.Errorf("dist: sending result: %w", err)
	}
	var bye Bye
	if err := decodeWithin(conn, dec, cfg.HandshakeTimeout, &bye); err != nil {
		return fmt.Errorf("dist: waiting for bye: %w", err)
	}
	if f, ok := reply.(Fail); ok {
		return fmt.Errorf("dist: generation failed: %s", f.Error)
	}
	return nil
}
