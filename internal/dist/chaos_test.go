package dist

// Chaos tests: runs disturbed by injected faults must converge to the
// exact file set of an undisturbed run. CI executes them as their own
// race-enabled step (go test -race -run Chaos ./internal/dist/...) so
// a flake here is attributable to the fault-tolerance machinery.

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/gformat"
)

// chaosMasterConfig pins Parts so the file layout is comparable across
// runs regardless of which workers survive.
func chaosMasterConfig(cfg core.Config) MasterConfig {
	return MasterConfig{
		Addr:              "127.0.0.1:0",
		Workers:           3,
		Parts:             6,
		Config:            cfg,
		Format:            gformat.ADJ6,
		AcceptTimeout:     10 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
		ResultTimeout:     700 * time.Millisecond,
		MaxRetries:        8,
	}
}

// runChaosCluster runs a 3-worker cluster under whatever faultpoints
// are armed. Worker errors are tolerated: a worker whose lease was
// requeued can outlive the run and fail its final reconnect, exactly
// like a real machine that comes back after the job finished.
func runChaosCluster(t *testing.T, cfg core.Config) (Summary, []string) {
	t.Helper()
	m, err := NewMaster(chaosMasterConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Errors deliberately dropped: see above.
			RunWorker(WorkerConfig{
				MasterAddr: m.Addr(),
				Threads:    2,
				OutDir:     dirs[i],
				MaxDials:   30,
				Backoff:    backoff.Policy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
			})
		}(i)
	}
	sum, err := m.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	return sum, dirs
}

// TestChaosKillAndStallBitIdentical is the acceptance scenario: one
// worker is killed mid-generation (connection dropped from inside the
// scope-write path; the worker then reconnects, as a restarted process
// would) and another worker's heartbeat stalls past the deadline. The
// run must complete on the surviving/restarted workers and the union
// of part files must be bit-identical to an undisturbed run.
func TestChaosKillAndStallBitIdentical(t *testing.T) {
	cfg := testConfig(10)

	// Undisturbed reference run.
	faultpoint.Reset()
	_, calmDirs := runChaosCluster(t, cfg)
	want := readParts(t, calmDirs, "adj6")
	if len(want) != 6 {
		t.Fatalf("reference run produced %d parts, want 6", len(want))
	}

	// Disturbed run: kill one worker mid-generation, stall another's
	// heartbeat for far longer than the master tolerates.
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.ArmSpecs("dist.worker.scope=drop*1,dist.worker.heartbeat=stall:3s*1"); err != nil {
		t.Fatal(err)
	}
	sum, chaosDirs := runChaosCluster(t, cfg)
	got := readParts(t, chaosDirs, "adj6")

	if faultpoint.Hits("dist.worker.scope") == 0 {
		t.Fatal("kill faultpoint never fired")
	}
	if sum.Requeues == 0 {
		t.Fatalf("faults injected but nothing was requeued: %+v", sum)
	}
	if len(got) != len(want) {
		t.Fatalf("disturbed run has %d parts, reference %d", len(got), len(want))
	}
	for name, b := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("disturbed run is missing %s", name)
		}
		if string(g) != string(b) {
			t.Fatalf("part %s is not bit-identical to the undisturbed run", name)
		}
	}
}

// TestChaosSinkFailureRetriedElsewhere: an injected write failure makes
// one lease Fail; the requeued ranges complete on a retry and the file
// set is still exactly the reference set.
func TestChaosSinkFailureRetriedElsewhere(t *testing.T) {
	cfg := testConfig(10)

	faultpoint.Reset()
	_, calmDirs := runChaosCluster(t, cfg)
	want := readParts(t, calmDirs, "adj6")

	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("core.sink.write", "fail:injected disk failure*2"); err != nil {
		t.Fatal(err)
	}
	sum, chaosDirs := runChaosCluster(t, cfg)
	got := readParts(t, chaosDirs, "adj6")

	if sum.Requeues == 0 {
		t.Fatalf("write failures injected but nothing was requeued: %+v", sum)
	}
	if len(got) != len(want) {
		t.Fatalf("disturbed run has %d parts, reference %d", len(got), len(want))
	}
	for name, b := range want {
		if string(got[name]) != string(b) {
			t.Fatalf("part %s differs from the undisturbed run", name)
		}
	}
}

// helperEnv carries "masterAddr|outDir|threads" to the re-exec'd
// worker subprocess below.
const helperEnv = "DIST_TEST_WORKER"

// TestHelperWorkerProcess is not a test: it is the body of the worker
// subprocess spawned by TestChaosProcessCrashAndRestart, selected via
// -test.run. An armed crash point genuinely kills this process.
func TestHelperWorkerProcess(t *testing.T) {
	spec := os.Getenv(helperEnv)
	if spec == "" {
		t.Skip("helper process body; not a test")
	}
	fields := strings.Split(spec, "|")
	if len(fields) != 3 {
		fmt.Fprintf(os.Stderr, "bad %s=%q\n", helperEnv, spec)
		os.Exit(2)
	}
	if err := faultpoint.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	threads, err := strconv.Atoi(fields[2])
	if err != nil {
		os.Exit(2)
	}
	if err := RunWorker(WorkerConfig{
		MasterAddr: fields[0], Threads: threads, OutDir: fields[1],
		MaxDials: 30, Backoff: backoff.Policy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestChaosProcessCrashAndRestart kills a real worker process with an
// armed crash point mid-generation, restarts it against the same
// output directory, and requires the union of part files to be
// bit-identical to an undisturbed run — the resume path regenerates
// nothing it can trust and everything it cannot.
func TestChaosProcessCrashAndRestart(t *testing.T) {
	cfg := testConfig(10)

	// Undisturbed reference.
	faultpoint.Reset()
	mc := MasterConfig{Workers: 2, Parts: 4, Config: cfg, Format: gformat.ADJ6}
	_, calmDirs := runCluster(t, mc, 2, 2)
	want := readParts(t, calmDirs, "adj6")
	if len(want) != 4 {
		t.Fatalf("reference run produced %d parts, want 4", len(want))
	}

	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 2, Parts: 4, Config: cfg, Format: gformat.ADJ6,
		AcceptTimeout:     10 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
		ResultTimeout:     700 * time.Millisecond,
		MaxRetries:        8,
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		sum Summary
		err error
	}
	masterCh := make(chan outcome, 1)
	go func() {
		s, e := m.Run()
		masterCh <- outcome{s, e}
	}()

	// Healthy in-process worker.
	healthyDir := t.TempDir()
	var wg sync.WaitGroup
	var healthyErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		healthyErr = RunWorker(WorkerConfig{
			MasterAddr: m.Addr(), Threads: 2, OutDir: healthyDir,
			MaxDials: 30, Backoff: backoff.Policy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
		})
	}()

	// Doomed subprocess worker: crashes on its first scope write.
	crashDir := t.TempDir()
	spawn := func(armed bool) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperWorkerProcess$")
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%s|%s|2", helperEnv, m.Addr(), crashDir))
		if armed {
			cmd.Env = append(cmd.Env, faultpoint.EnvVar+"=dist.worker.scope=crash:7*1")
		} else {
			cmd.Env = append(cmd.Env, faultpoint.EnvVar+"=")
		}
		cmd.Stderr = os.Stderr
		return cmd
	}
	doomed := spawn(true)
	if err := doomed.Start(); err != nil {
		t.Fatalf("spawning worker process: %v", err)
	}
	err = doomed.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 7 {
		t.Fatalf("doomed worker exited with %v, want crash code 7", err)
	}

	// Restart it, pointed at the same directory: it resumes. Its exit
	// status is irrelevant — the run may already be finished by the
	// healthy worker, leaving the restart nothing to connect to.
	restarted := spawn(false)
	if err := restarted.Start(); err != nil {
		t.Fatalf("restarting worker process: %v", err)
	}
	defer restarted.Wait()

	res := <-masterCh
	wg.Wait()
	if res.err != nil || healthyErr != nil {
		t.Fatalf("errs: %v / %v", res.err, healthyErr)
	}
	if res.sum.Requeues == 0 {
		t.Fatalf("crashed worker's lease was never requeued: %+v", res.sum)
	}

	got := readParts(t, []string{healthyDir, crashDir}, "adj6")
	if len(got) != len(want) {
		t.Fatalf("disturbed run has %d parts, reference %d", len(got), len(want))
	}
	for name, b := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("disturbed run is missing %s", name)
		}
		if string(g) != string(b) {
			t.Fatalf("part %s is not bit-identical to the undisturbed run", name)
		}
	}
}
