package dist

// Chaos tests: runs disturbed by injected faults must converge to the
// exact file set of an undisturbed run. CI executes them as their own
// race-enabled step (go test -race -run Chaos ./internal/dist/...) so
// a flake here is attributable to the fault-tolerance machinery.

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/telemetry"
)

// chaosMasterConfig pins Parts so the file layout is comparable across
// runs regardless of which workers survive.
func chaosMasterConfig(cfg core.Config) MasterConfig {
	return MasterConfig{
		Addr:              "127.0.0.1:0",
		Workers:           3,
		Parts:             6,
		Config:            cfg,
		Format:            gformat.ADJ6,
		AcceptTimeout:     10 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
		ResultTimeout:     700 * time.Millisecond,
		MaxRetries:        8,
	}
}

// runChaosCluster runs a 3-worker cluster under whatever faultpoints
// are armed. Worker errors are tolerated: a worker whose lease was
// requeued can outlive the run and fail its final reconnect, exactly
// like a real machine that comes back after the job finished.
func runChaosCluster(t *testing.T, cfg core.Config) (Summary, []string, *telemetry.Registry) {
	t.Helper()
	m, err := NewMaster(chaosMasterConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Errors deliberately dropped: see above.
			RunWorker(WorkerConfig{
				MasterAddr: m.Addr(),
				Threads:    2,
				OutDir:     dirs[i],
				MaxDials:   30,
				Backoff:    backoff.Policy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
			})
		}(i)
	}
	sum, err := m.Run()
	wg.Wait()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	return sum, dirs, m.Telemetry()
}

// assertTelemetryMatchesSummary: the registry is fed by the same code
// paths that build the Summary, so the two must agree exactly — any
// drift means a lease event was recorded in one ledger but not the
// other.
func assertTelemetryMatchesSummary(t *testing.T, tel *telemetry.Registry, sum Summary) {
	t.Helper()
	if got := tel.CounterValue(MetricRequeues); got != int64(sum.Requeues) {
		t.Fatalf("telemetry requeues %d, summary %d", got, sum.Requeues)
	}
	if got := tel.CounterValue(MetricMasterEdges); got != sum.Edges {
		t.Fatalf("telemetry edges %d, summary %d", got, sum.Edges)
	}
	if got := tel.CounterValue(MetricPartsSkipped); got != int64(sum.SkippedParts) {
		t.Fatalf("telemetry skipped parts %d, summary %d", got, sum.SkippedParts)
	}
	if got := tel.CounterValue(MetricPartsCompleted); got != int64(sum.Parts) {
		t.Fatalf("telemetry completed parts %d, summary %d", got, sum.Parts)
	}
}

// TestChaosKillAndStallBitIdentical is the acceptance scenario: one
// worker is killed mid-generation (connection dropped from inside the
// scope-write path; the worker then reconnects, as a restarted process
// would) and another worker's heartbeat stalls past the deadline. The
// run must complete on the surviving/restarted workers and the union
// of part files must be bit-identical to an undisturbed run.
func TestChaosKillAndStallBitIdentical(t *testing.T) {
	cfg := testConfig(10)

	// Undisturbed reference run.
	faultpoint.Reset()
	_, calmDirs, calmTel := runChaosCluster(t, cfg)
	want := readParts(t, calmDirs, "adj6")
	if len(want) != 6 {
		t.Fatalf("reference run produced %d parts, want 6", len(want))
	}
	if got := calmTel.CounterValue(MetricRequeues); got != 0 {
		t.Fatalf("undisturbed run recorded %d requeues", got)
	}

	// Disturbed run: kill one worker mid-generation, stall another's
	// heartbeat for far longer than the master tolerates.
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.ArmSpecs("dist.worker.scope=drop*1,dist.worker.heartbeat=stall:3s*1"); err != nil {
		t.Fatal(err)
	}
	sum, chaosDirs, tel := runChaosCluster(t, cfg)
	got := readParts(t, chaosDirs, "adj6")

	if faultpoint.Hits("dist.worker.scope") == 0 {
		t.Fatal("kill faultpoint never fired")
	}
	if sum.Requeues == 0 {
		t.Fatalf("faults injected but nothing was requeued: %+v", sum)
	}
	assertTelemetryMatchesSummary(t, tel, sum)
	// The dropped connection costs at least one requeue. The stall's
	// effect is timing-dependent (a stall that fires as the lease
	// finishes still delivers Done in time), so only the drop gives a
	// deterministic lower bound; the exact fault→counter mapping is
	// pinned by TestChaosTelemetryCountsInjectedFaults.
	if hits := int64(faultpoint.Hits("dist.worker.scope")); tel.CounterValue(MetricRequeues) < hits {
		t.Fatalf("requeues %d < injected connection drops %d", tel.CounterValue(MetricRequeues), hits)
	}
	if len(got) != len(want) {
		t.Fatalf("disturbed run has %d parts, reference %d", len(got), len(want))
	}
	for name, b := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("disturbed run is missing %s", name)
		}
		if string(g) != string(b) {
			t.Fatalf("part %s is not bit-identical to the undisturbed run", name)
		}
	}
}

// TestChaosSinkFailureRetriedElsewhere: an injected write failure makes
// one lease Fail; the requeued ranges complete on a retry and the file
// set is still exactly the reference set.
func TestChaosSinkFailureRetriedElsewhere(t *testing.T) {
	cfg := testConfig(10)

	faultpoint.Reset()
	_, calmDirs, _ := runChaosCluster(t, cfg)
	want := readParts(t, calmDirs, "adj6")

	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("core.sink.write", "fail:injected disk failure*2"); err != nil {
		t.Fatal(err)
	}
	sum, chaosDirs, tel := runChaosCluster(t, cfg)
	got := readParts(t, chaosDirs, "adj6")

	if sum.Requeues == 0 {
		t.Fatalf("write failures injected but nothing was requeued: %+v", sum)
	}
	assertTelemetryMatchesSummary(t, tel, sum)
	if hits := int64(faultpoint.Hits("core.sink.write")); tel.CounterValue(MetricRequeues) < hits {
		t.Fatalf("requeues %d < injected write failures %d", tel.CounterValue(MetricRequeues), hits)
	}
	if len(got) != len(want) {
		t.Fatalf("disturbed run has %d parts, reference %d", len(got), len(want))
	}
	for name, b := range want {
		if string(got[name]) != string(b) {
			t.Fatalf("part %s differs from the undisturbed run", name)
		}
	}
}

// TestChaosTelemetryCountsInjectedFaults pins the fault→counter
// mapping exactly: a single worker with one thread, a heartbeat cadence
// far inside the result deadline (so no expiry can sneak in), and one
// injected write failure must produce exactly one requeue, one requeued
// range, and one worker-side failure — no more, no fewer.
func TestChaosTelemetryCountsInjectedFaults(t *testing.T) {
	cfg := testConfig(10)

	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("core.sink.write", "fail:injected disk failure*1"); err != nil {
		t.Fatal(err)
	}

	m, err := NewMaster(MasterConfig{
		Addr:              "127.0.0.1:0",
		Workers:           1,
		Parts:             2,
		Config:            cfg,
		Format:            gformat.ADJ6,
		AcceptTimeout:     10 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
		ResultTimeout:     10 * time.Second,
		MaxRetries:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	wtel := telemetry.NewRegistry()
	outDir := t.TempDir()
	var wg sync.WaitGroup
	var workerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		workerErr = RunWorker(WorkerConfig{
			MasterAddr: m.Addr(),
			Threads:    1,
			OutDir:     outDir,
			MaxDials:   30,
			Backoff:    fastBackoff,
			Telemetry:  wtel,
		})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || workerErr != nil {
		t.Fatalf("errs: %v / %v", err, workerErr)
	}

	if hits := faultpoint.Hits("core.sink.write"); hits != 1 {
		t.Fatalf("faultpoint fired %d times, want 1", hits)
	}
	tel := m.Telemetry()
	if got := tel.CounterValue(MetricRequeues); got != 1 {
		t.Fatalf("requeues counter %d, want exactly the 1 injected fault", got)
	}
	if got := tel.CounterValue(MetricRequeuedRanges); got != 1 {
		t.Fatalf("requeued ranges counter %d, want 1", got)
	}
	if got := tel.CounterValue(MetricLeaseExpiries); got != 0 {
		t.Fatalf("lease expiries counter %d, want 0 (no timing faults injected)", got)
	}
	if got := wtel.CounterValue(MetricWorkerFailures); got != 1 {
		t.Fatalf("worker failures counter %d, want 1", got)
	}
	assertTelemetryMatchesSummary(t, tel, sum)
	if sum.Requeues != 1 {
		t.Fatalf("summary requeues %d, want 1", sum.Requeues)
	}
	if got := readParts(t, []string{outDir}, "adj6"); len(got) != 2 {
		t.Fatalf("run produced %d parts, want 2", len(got))
	}
}

// helperEnv carries "masterAddr|outDir|threads" to the re-exec'd
// worker subprocess below.
const helperEnv = "DIST_TEST_WORKER"

// TestHelperWorkerProcess is not a test: it is the body of the worker
// subprocess spawned by TestChaosProcessCrashAndRestart, selected via
// -test.run. An armed crash point genuinely kills this process.
func TestHelperWorkerProcess(t *testing.T) {
	spec := os.Getenv(helperEnv)
	if spec == "" {
		t.Skip("helper process body; not a test")
	}
	fields := strings.Split(spec, "|")
	if len(fields) != 3 {
		fmt.Fprintf(os.Stderr, "bad %s=%q\n", helperEnv, spec)
		os.Exit(2)
	}
	if err := faultpoint.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	threads, err := strconv.Atoi(fields[2])
	if err != nil {
		os.Exit(2)
	}
	if err := RunWorker(WorkerConfig{
		MasterAddr: fields[0], Threads: threads, OutDir: fields[1],
		MaxDials: 30, Backoff: backoff.Policy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestChaosProcessCrashAndRestart kills a real worker process with an
// armed crash point mid-generation, restarts it against the same
// output directory, and requires the union of part files to be
// bit-identical to an undisturbed run — the resume path regenerates
// nothing it can trust and everything it cannot.
func TestChaosProcessCrashAndRestart(t *testing.T) {
	cfg := testConfig(10)

	// Undisturbed reference.
	faultpoint.Reset()
	mc := MasterConfig{Workers: 2, Parts: 4, Config: cfg, Format: gformat.ADJ6}
	_, calmDirs := runCluster(t, mc, 2, 2)
	want := readParts(t, calmDirs, "adj6")
	if len(want) != 4 {
		t.Fatalf("reference run produced %d parts, want 4", len(want))
	}

	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Workers: 2, Parts: 4, Config: cfg, Format: gformat.ADJ6,
		AcceptTimeout:     10 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
		ResultTimeout:     700 * time.Millisecond,
		MaxRetries:        8,
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		sum Summary
		err error
	}
	masterCh := make(chan outcome, 1)
	go func() {
		s, e := m.Run()
		masterCh <- outcome{s, e}
	}()

	// Healthy in-process worker.
	healthyDir := t.TempDir()
	var wg sync.WaitGroup
	var healthyErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		healthyErr = RunWorker(WorkerConfig{
			MasterAddr: m.Addr(), Threads: 2, OutDir: healthyDir,
			MaxDials: 30, Backoff: backoff.Policy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
		})
	}()

	// Doomed subprocess worker: crashes on its first scope write.
	crashDir := t.TempDir()
	spawn := func(armed bool) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperWorkerProcess$")
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%s|%s|2", helperEnv, m.Addr(), crashDir))
		if armed {
			cmd.Env = append(cmd.Env, faultpoint.EnvVar+"=dist.worker.scope=crash:7*1")
		} else {
			cmd.Env = append(cmd.Env, faultpoint.EnvVar+"=")
		}
		cmd.Stderr = os.Stderr
		return cmd
	}
	doomed := spawn(true)
	if err := doomed.Start(); err != nil {
		t.Fatalf("spawning worker process: %v", err)
	}
	err = doomed.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 7 {
		t.Fatalf("doomed worker exited with %v, want crash code 7", err)
	}

	// Restart it, pointed at the same directory: it resumes. Its exit
	// status is irrelevant — the run may already be finished by the
	// healthy worker, leaving the restart nothing to connect to.
	restarted := spawn(false)
	if err := restarted.Start(); err != nil {
		t.Fatalf("restarting worker process: %v", err)
	}
	defer restarted.Wait()

	res := <-masterCh
	wg.Wait()
	if res.err != nil || healthyErr != nil {
		t.Fatalf("errs: %v / %v", res.err, healthyErr)
	}
	if res.sum.Requeues == 0 {
		t.Fatalf("crashed worker's lease was never requeued: %+v", res.sum)
	}

	got := readParts(t, []string{healthyDir, crashDir}, "adj6")
	if len(got) != len(want) {
		t.Fatalf("disturbed run has %d parts, reference %d", len(got), len(want))
	}
	for name, b := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("disturbed run is missing %s", name)
		}
		if string(g) != string(b) {
			t.Fatalf("part %s is not bit-identical to the undisturbed run", name)
		}
	}
}
