package dist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/pressure"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// MasterAddr is the master's "host:port".
	MasterAddr string
	// Threads is the number of generation goroutines this worker
	// offers; the master leases it at most Threads ranges at a time.
	Threads int
	// OutDir receives this worker's part files (local disk). Parts
	// already present are skipped, so pointing a restarted worker at
	// its old directory resumes its work.
	OutDir string
	// DialTimeout bounds each connection attempt (0 = 10s).
	DialTimeout time.Duration
	// MaxDials caps consecutive unfruitful connection attempts —
	// failed dials, or sessions that died before receiving a lease —
	// before the worker gives up. A session that received a lease
	// resets the count (0 = 10).
	MaxDials int
	// Backoff schedules the wait between connection attempts; the
	// zero value uses the package defaults (100ms base, 5s cap,
	// doubling, no jitter) with full jitter enabled.
	Backoff backoff.Policy
	// HandshakeTimeout, when set, bounds each gob exchange with the
	// master (Hello/result/heartbeat writes). Reads are exempt:
	// waiting for a lease legitimately lasts until other workers free
	// up work. 0 leaves the writes unbounded.
	HandshakeTimeout time.Duration
	// Pressure, when set, stamps this worker's current host-pressure
	// level onto every protocol message (Hello, Heartbeat, Done, Fail),
	// letting the master route fresh ranges away from a straining host
	// while cooler workers are available. The caller owns the
	// controller's sampling loop. nil always advertises OK.
	Pressure *pressure.Controller
	// Store, when set, is consulted before generating each leased
	// range (a checksum-verified hit materializes the part without
	// regeneration) and receives every part this worker generates, so
	// requeue-after-crash and repeat runs become lookups. nil disables
	// caching.
	Store *store.Store
	// Telemetry receives the worker's lease/heartbeat metrics plus the
	// core generation stages of every lease it executes (serve it via
	// trilliong-dist's -metrics-addr). nil uses a private registry.
	Telemetry *telemetry.Registry
}

func (c WorkerConfig) maxDials() int {
	if c.MaxDials > 0 {
		return c.MaxDials
	}
	return 10
}

func (c WorkerConfig) level() pressure.Level {
	if c.Pressure == nil {
		return pressure.OK
	}
	return c.Pressure.Level()
}

func (c WorkerConfig) backoff() backoff.Policy {
	p := c.Backoff
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	return p
}

// RunWorker connects to the master (retrying with exponential backoff
// and jitter, so workers may start before the master), then serves
// leases until the master says Bye. A connection lost mid-run —
// network fault, master-side requeue, injected chaos — is retried the
// same way: the worker re-registers and resumes, skipping any part
// files it already completed.
func RunWorker(cfg WorkerConfig) error {
	if cfg.Threads < 1 {
		return fmt.Errorf("dist: worker needs ≥ 1 thread")
	}
	if info, err := os.Stat(cfg.OutDir); err != nil {
		return fmt.Errorf("dist: output directory %q not usable: %v", cfg.OutDir, err)
	} else if !info.IsDir() {
		return fmt.Errorf("dist: output path %q is not a directory", cfg.OutDir)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}

	pol := cfg.backoff()
	failures := 0
	dials := 0
	var lastErr error
	for {
		if failures > 0 {
			if failures >= cfg.maxDials() {
				return fmt.Errorf("dist: giving up after %d connection attempts: %w", failures, lastErr)
			}
			pol.Sleep(failures-1, nil)
		}
		cfg.Telemetry.Counter(MetricWorkerDials).Inc()
		if dials++; dials > 1 {
			cfg.Telemetry.Counter(MetricWorkerReconnects).Inc()
		}
		conn, err := net.DialTimeout("tcp", cfg.MasterAddr, cfg.DialTimeout)
		if err != nil {
			failures++
			lastErr = fmt.Errorf("dialing master: %w", err)
			continue
		}
		done, leased, err := runSession(conn, cfg)
		conn.Close()
		if done {
			return nil
		}
		if leased {
			// The master was alive and working with us; treat the drop
			// as fresh and reconnect promptly.
			failures = 0
		}
		failures++
		lastErr = err
	}
}

// runSession speaks one connection's worth of protocol. It reports
// whether the master released us (done), whether at least one lease
// arrived (leased), and the error that ended the session otherwise.
func runSession(conn net.Conn, cfg WorkerConfig) (done, leased bool, err error) {
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	// The heartbeat goroutine and the lease loop share the encoder.
	var sendMu sync.Mutex
	send := func(v interface{}) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return encodeWithin(conn, enc, cfg.HandshakeTimeout, &v)
	}

	if err := faultpoint.Fire("dist.worker.hello"); err != nil {
		return false, false, sessionFault(conn, err)
	}
	if err := send(Hello{Threads: cfg.Threads, Level: cfg.level()}); err != nil {
		return false, false, fmt.Errorf("dist: hello: %w", err)
	}
	for {
		var msg interface{}
		if err := dec.Decode(&msg); err != nil {
			return false, leased, fmt.Errorf("dist: reading lease: %w", err)
		}
		switch job := msg.(type) {
		case Bye:
			return true, leased, nil
		case Job:
			leased = true
			cfg.Telemetry.Counter(MetricWorkerLeases).Inc()
			if err := faultpoint.Fire("dist.worker.job"); err != nil {
				return false, leased, sessionFault(conn, err)
			}
			reply, err := executeLease(job, cfg, conn, send)
			if err != nil {
				if errors.Is(err, faultpoint.ErrDrop) {
					return false, leased, sessionFault(conn, err)
				}
				cfg.Telemetry.Counter(MetricWorkerFailures).Inc()
				if serr := send(Fail{Error: err.Error(), Level: cfg.level()}); serr != nil {
					return false, leased, fmt.Errorf("dist: sending failure: %w", serr)
				}
				continue // the master requeues; await the next lease
			}
			if err := faultpoint.Fire("dist.worker.result"); err != nil {
				return false, leased, sessionFault(conn, err)
			}
			if serr := send(reply); serr != nil {
				return false, leased, fmt.Errorf("dist: sending result: %w", serr)
			}
		default:
			return false, leased, fmt.Errorf("dist: unexpected message %T", msg)
		}
	}
}

// sessionFault closes the connection (simulating a vanished worker for
// ErrDrop faults) and surfaces the fault as the session error.
func sessionFault(conn net.Conn, err error) error {
	conn.Close()
	return err
}

// executeLease generates the leased ranges — skipping parts whose
// files already exist — while a sibling goroutine heartbeats progress
// to the master.
func executeLease(job Job, cfg WorkerConfig, conn net.Conn, send func(interface{}) error) (Done, error) {
	// Rebuild the part source the lease describes. For community jobs
	// the layout is recomputed from the wire spec — deterministic, so
	// every worker (and the master) agrees on block ids, ranges and
	// store keys without shipping the layout itself.
	var src core.PartSource
	if job.Community != nil {
		lay, err := community.New(*job.Community)
		if err != nil {
			return Done{}, err
		}
		src = lay
	} else {
		src = core.NewConfigSource(job.Config)
	}

	missing, missingIDs := core.MissingParts(cfg.OutDir, job.Format, job.Ranges, job.PartIDs)
	skipped := len(job.Ranges) - len(missing)
	cfg.Telemetry.Counter(MetricWorkerSkips).Add(int64(skipped))

	// Consult the artifact store before generating: any range generated
	// before — by this worker, a previous incarnation, or anyone sharing
	// the store — is a verified copy instead of a regeneration.
	missing, missingIDs, fromCache, err := core.FetchPartsFromStore(cfg.Store, src, cfg.OutDir, job.Format, missing, missingIDs)
	if err != nil {
		return Done{}, err
	}
	cfg.Telemetry.Counter(MetricWorkerCacheHits).Add(int64(fromCache))

	var scopes atomic.Int64
	stop := make(chan struct{})
	var hb sync.WaitGroup
	if job.Heartbeat > 0 {
		hb.Add(1)
		go func() {
			defer hb.Done()
			sendLat := cfg.Telemetry.Histogram(MetricHeartbeatSend)
			tick := time.NewTicker(job.Heartbeat)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if err := faultpoint.Fire("dist.worker.heartbeat"); err != nil {
						if errors.Is(err, faultpoint.ErrDrop) {
							conn.Close()
							return
						}
						continue // a failed beat is just a missed beat
					}
					beatStart := time.Now()
					if send(Heartbeat{ScopesDone: scopes.Load(), Level: cfg.level()}) != nil {
						return // the lease loop will notice the dead conn
					}
					// Round trip through the shared encoder onto the
					// wire: the worker-side half of the latency the
					// master's gap histogram sees.
					sendLat.ObserveDuration(time.Since(beatStart))
				}
			}
		}()
	}

	var st core.Stats
	if len(missing) > 0 {
		// Atomic sinks: a crashed worker leaves only .tmp litter, never
		// a truncated part file, so a restart can trust what it finds.
		// IngestingSinks publishes each finished part into the store
		// (after the atomic rename, before telemetry). ObservedSinks
		// feeds the per-format byte/edge counters and
		// GenerateRangesObserved the stage spans, so a worker's
		// -metrics-addr shows live core-pipeline throughput.
		sinks := core.ObservedSinks(
			core.IngestingSinksFor(
				core.AtomicPartSinks(cfg.OutDir, job.Format, src.NumVertices(), missingIDs),
				cfg.Store, src, cfg.OutDir, job.Format, missingIDs),
			job.Format, cfg.Telemetry)
		st, err = core.GenerateParts(src, missing, missingIDs, progressSinks(sinks, &scopes), cfg.Telemetry)
	}
	close(stop)
	hb.Wait()
	if err != nil {
		return Done{}, err
	}
	return Done{
		Edges:           st.Edges,
		Attempts:        st.Attempts,
		MaxDegree:       st.MaxDegree,
		PeakWorkerBytes: st.PeakWorkerBytes,
		BytesWritten:    st.BytesWritten,
		GenDuration:     st.GenDuration,
		Skipped:         skipped,
		FromCache:       fromCache,
		Level:           cfg.level(),
	}, nil
}

// progressSinks wraps a sink factory so every written scope bumps the
// shared progress counter (read by the heartbeat goroutine) and passes
// the per-scope chaos point.
func progressSinks(inner core.SinkFactory, scopes *atomic.Int64) core.SinkFactory {
	return func(worker int, r partition.Range) (gformat.Writer, error) {
		w, err := inner(worker, r)
		if err != nil {
			return nil, err
		}
		return &progressWriter{Writer: w, scopes: scopes}, nil
	}
}

type progressWriter struct {
	gformat.Writer
	scopes *atomic.Int64
}

func (p *progressWriter) WriteScope(src int64, dsts []int64) error {
	if err := faultpoint.Fire("dist.worker.scope"); err != nil {
		return err
	}
	if err := p.Writer.WriteScope(src, dsts); err != nil {
		return err
	}
	p.scopes.Add(1)
	return nil
}
