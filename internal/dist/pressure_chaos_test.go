package dist

// Pressure chaos tests: workers advertising critical host pressure
// must be routed around — never starved into deadlock — and, as with
// every fault in this package, the part-file union must stay
// bit-identical to an undisturbed run. CI runs these with the other
// chaos tests (go test -race -run Chaos ./internal/dist/...).

import (
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/pressure"
	"repro/internal/telemetry"
)

// hotController builds a controller pinned at the given level. The
// thresholds are pushed far out and the loop is never started, so real
// host signals cannot move it off the forced level.
func hotController(lvl pressure.Level) *pressure.Controller {
	c := pressure.New(pressure.Config{
		MemBudgetBytes: -1,
		Thresholds: pressure.Thresholds{
			LoadElevated: 1e9, LoadCritical: 2e9,
			GoroutineElevated: 1 << 40, GoroutineCritical: 1 << 41,
			FDElevated: 1 << 40, FDCritical: 1 << 41,
		},
	})
	c.Force(lvl)
	return c
}

// pressureMasterConfig: parts pinned for comparable layouts, a
// generous result timeout so no expiry can sneak into the counters.
func pressureMasterConfig(cfg MasterConfig) MasterConfig {
	cfg.Addr = "127.0.0.1:0"
	cfg.Format = gformat.ADJ6
	cfg.AcceptTimeout = 10 * time.Second
	cfg.HeartbeatInterval = 100 * time.Millisecond
	cfg.ResultTimeout = 10 * time.Second
	cfg.MaxRetries = 8
	return cfg
}

// TestChaosPressureWithholdsFreshLeases: with one critical and one
// cool worker, every fresh range goes to the cool worker — the hot one
// leases nothing (there are no requeues to drain) yet is released
// cleanly, and the output is bit-identical to an undisturbed run.
func TestChaosPressureWithholdsFreshLeases(t *testing.T) {
	cfg := testConfig(10)

	faultpoint.Reset()
	mc := MasterConfig{Workers: 2, Parts: 4, Config: cfg}
	_, calmDirs := runCluster(t, pressureMasterConfig(mc), 2, 2)
	want := readParts(t, calmDirs, "adj6")
	if len(want) != 4 {
		t.Fatalf("reference run produced %d parts, want 4", len(want))
	}

	m, err := NewMaster(pressureMasterConfig(mc))
	if err != nil {
		t.Fatal(err)
	}
	hotDir, coldDir := t.TempDir(), t.TempDir()
	hotTel := telemetry.NewRegistry()
	var wg sync.WaitGroup
	var hotErr, coldErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		hotErr = RunWorker(WorkerConfig{
			MasterAddr: m.Addr(), Threads: 2, OutDir: hotDir,
			MaxDials: 30, Backoff: fastBackoff,
			Pressure: hotController(pressure.Critical), Telemetry: hotTel,
		})
	}()
	go func() {
		defer wg.Done()
		coldErr = RunWorker(WorkerConfig{
			MasterAddr: m.Addr(), Threads: 2, OutDir: coldDir,
			MaxDials: 30, Backoff: fastBackoff,
		})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || hotErr != nil || coldErr != nil {
		t.Fatalf("errs: %v / %v / %v", err, hotErr, coldErr)
	}

	tel := m.Telemetry()
	if got := tel.CounterValue(MetricLeasesWithheld); got == 0 {
		t.Fatal("hot worker was never withheld a fresh lease")
	}
	if got := hotTel.CounterValue(MetricWorkerLeases); got != 0 {
		t.Fatalf("hot worker received %d leases; all work should route to the cool worker", got)
	}
	if sum.Requeues != 0 {
		t.Fatalf("withholding caused %d requeues; it must be invisible to the fault ledger", sum.Requeues)
	}
	got := readParts(t, []string{hotDir, coldDir}, "adj6")
	if len(got) != len(want) {
		t.Fatalf("pressured run has %d parts, reference %d", len(got), len(want))
	}
	for name, b := range want {
		if string(got[name]) != string(b) {
			t.Fatalf("part %s differs from the undisturbed run", name)
		}
	}
}

// TestChaosPressureAllHotStillCompletes: when the whole fleet is
// critical there is nothing to route around — withholding disengages
// and the run completes normally rather than deadlocking.
func TestChaosPressureAllHotStillCompletes(t *testing.T) {
	cfg := testConfig(10)

	faultpoint.Reset()
	mc := MasterConfig{Workers: 1, Parts: 2, Config: cfg}
	_, calmDirs := runCluster(t, pressureMasterConfig(mc), 1, 2)
	want := readParts(t, calmDirs, "adj6")

	m, err := NewMaster(pressureMasterConfig(mc))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var wg sync.WaitGroup
	var workerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		workerErr = RunWorker(WorkerConfig{
			MasterAddr: m.Addr(), Threads: 2, OutDir: dir,
			MaxDials: 30, Backoff: fastBackoff,
			Pressure: hotController(pressure.Critical),
		})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || workerErr != nil {
		t.Fatalf("errs: %v / %v", err, workerErr)
	}

	if got := m.Telemetry().CounterValue(MetricLeasesWithheld); got != 0 {
		t.Fatalf("all-hot fleet recorded %d withheld leases; want 0", got)
	}
	if sum.Parts != 2 {
		t.Fatalf("parts = %d, want 2", sum.Parts)
	}
	got := readParts(t, []string{dir}, "adj6")
	if len(got) != len(want) {
		t.Fatalf("all-hot run has %d parts, reference %d", len(got), len(want))
	}
	for name, b := range want {
		if string(got[name]) != string(b) {
			t.Fatalf("part %s differs from the undisturbed run", name)
		}
	}
}

// TestChaosPressureRequeueDrainsThroughHotWorker: the cool worker's
// connection drops mid-generation and (MaxDials 1) it never comes
// back, leaving requeued ranges and a fleet that is all-hot. The hot
// worker — withheld at the start — must pick up everything, and the
// union of part files still matches the undisturbed run exactly.
func TestChaosPressureRequeueDrainsThroughHotWorker(t *testing.T) {
	cfg := testConfig(10)

	faultpoint.Reset()
	mc := MasterConfig{Workers: 2, Parts: 4, Config: cfg}
	_, calmDirs := runCluster(t, pressureMasterConfig(mc), 2, 2)
	want := readParts(t, calmDirs, "adj6")

	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("dist.worker.scope", "drop*1"); err != nil {
		t.Fatal(err)
	}

	m, err := NewMaster(pressureMasterConfig(mc))
	if err != nil {
		t.Fatal(err)
	}
	hotDir, coldDir := t.TempDir(), t.TempDir()
	hotTel := telemetry.NewRegistry()
	var wg sync.WaitGroup
	var hotErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		hotErr = RunWorker(WorkerConfig{
			MasterAddr: m.Addr(), Threads: 2, OutDir: hotDir,
			MaxDials: 30, Backoff: fastBackoff,
			Pressure: hotController(pressure.Critical), Telemetry: hotTel,
		})
	}()
	go func() {
		defer wg.Done()
		// The cool worker takes the first fresh lease (the hot one is
		// withheld), hits the armed drop, and gives up for good.
		RunWorker(WorkerConfig{
			MasterAddr: m.Addr(), Threads: 2, OutDir: coldDir,
			MaxDials: 1, Backoff: fastBackoff,
		})
	}()
	sum, err := m.Run()
	wg.Wait()
	if err != nil || hotErr != nil {
		t.Fatalf("errs: %v / %v", err, hotErr)
	}

	if faultpoint.Hits("dist.worker.scope") == 0 {
		t.Fatal("drop faultpoint never fired")
	}
	if sum.Requeues == 0 {
		t.Fatalf("dropped connection was never requeued: %+v", sum)
	}
	if got := hotTel.CounterValue(MetricWorkerLeases); got == 0 {
		t.Fatal("hot worker never leased; requeued and orphaned work must drain through it")
	}
	got := readParts(t, []string{hotDir, coldDir}, "adj6")
	if len(got) != len(want) {
		t.Fatalf("disturbed run has %d parts, reference %d", len(got), len(want))
	}
	for name, b := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("disturbed run is missing %s", name)
		}
		if string(g) != string(b) {
			t.Fatalf("part %s is not bit-identical to the undisturbed run", name)
		}
	}
}
