package dist

// Metric names the distributed runtime publishes into the telemetry
// registries handed to NewMaster and RunWorker (docs/OBSERVABILITY.md
// is the catalog). Both sides default to a private registry when the
// caller supplies none, so call sites never branch on instrumentation.
const (
	// Master-side lease lifecycle.
	MetricLeaseGrants    = "dist.master.lease_grants"
	MetricRequeues       = "dist.master.requeues"
	MetricRequeuedRanges = "dist.master.requeued_ranges"
	MetricLeaseExpiries  = "dist.master.lease_expiries"
	MetricRangeAttempts  = "dist.master.range_attempts"
	MetricPartsCompleted = "dist.master.parts_completed"
	MetricQueueDepth     = "dist.master.queue_depth"
	MetricPartsSkipped   = "dist.master.parts_skipped"
	MetricPartsFromCache = "dist.master.parts_from_cache"
	MetricMasterEdges    = "dist.master.edges_total"
	// Fleet gauges/counters. workers_hot counts connected workers whose
	// last message advertised critical host pressure; leases_withheld
	// counts lease rounds in which a hot worker was denied fresh ranges
	// while cooler workers were available.
	MetricWorkersActive     = "dist.master.workers_active"
	MetricWorkersRegistered = "dist.master.workers_registered"
	MetricWorkersHot        = "dist.master.workers_hot"
	MetricLeasesWithheld    = "dist.master.leases_withheld_total"
	// Master-side latency/throughput distributions.
	MetricHeartbeatGap      = "dist.master.heartbeat_gap_seconds"
	MetricWorkerEdgesPerSec = "dist.master.worker_edges_per_sec"

	// Worker-side counters and latencies.
	MetricWorkerDials      = "dist.worker.dials_total"
	MetricWorkerReconnects = "dist.worker.reconnects_total"
	MetricWorkerLeases     = "dist.worker.leases_total"
	MetricWorkerSkips      = "dist.worker.parts_skipped_total"
	MetricWorkerCacheHits  = "dist.worker.store_hits_total"
	MetricWorkerFailures   = "dist.worker.failures_total"
	MetricHeartbeatSend    = "dist.worker.heartbeat_send_seconds"
)
