package dist

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/pressure"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// MasterConfig configures RunMaster.
type MasterConfig struct {
	// Addr is the listen address ("host:port"; port 0 picks one).
	Addr string
	// Workers is the number of worker processes to wait for before
	// planning. More may join later; fewer may suffice (MinWorkers).
	Workers int
	// MinWorkers lets a run start degraded: when AcceptTimeout expires
	// with at least MinWorkers (but fewer than Workers) registered, the
	// master plans and proceeds anyway (0 = Workers, i.e. no degraded
	// start).
	MinWorkers int
	// Parts fixes the total number of ranges/part files. 0 derives it
	// from the thread sum of the workers registered when the gate
	// opens — convenient, but then the file layout depends on who
	// showed up; pin Parts for runs that must be comparable or
	// resumable across cluster incarnations.
	Parts int
	// Config is the graph to generate.
	Config core.Config
	// Community, when non-nil, generates a community-composed graph
	// instead of Config: the work units are the layout's blocks (Parts
	// is ignored — the block count decides), and every lease carries the
	// spec so workers rebuild the layout deterministically.
	Community *community.Config
	// Format is the output format for every worker.
	Format gformat.Format
	// AcceptTimeout bounds the wait for registrations before the run
	// starts, and doubles as the idle watchdog: a started run with
	// outstanding parts but zero connected workers for this long is
	// aborted (0 = 60s).
	AcceptTimeout time.Duration
	// HandshakeTimeout bounds each small gob exchange (Hello read, Job
	// and Bye writes), so a hung or half-open worker connection cannot
	// block the master forever (0 = 30s).
	HandshakeTimeout time.Duration
	// HeartbeatInterval is the heartbeat period workers are told to
	// use (0 = 2s).
	HeartbeatInterval time.Duration
	// ResultTimeout bounds the silence on a connection holding a
	// lease; each Heartbeat, Done or Fail resets it. 0 derives it from
	// the heartbeat interval (5 missed beats). Heartbeats are what
	// make this finite bound safe for arbitrarily long generations.
	ResultTimeout time.Duration
	// MaxRetries caps how many times a single range may be requeued
	// after a fault before the run is aborted (0 = 2; every range gets
	// at most MaxRetries+1 attempts).
	MaxRetries int
	// MaxLeaseRanges caps the ranges handed out per lease regardless of
	// the worker's thread count (0 = no cap beyond threads). Smaller
	// leases shrink the requeue blast radius when a worker dies at the
	// price of more round trips.
	MaxLeaseRanges int
	// Telemetry receives the master's lease/requeue/heartbeat metrics
	// (see internal/dist metric constants). nil uses a private
	// registry, so instrumentation is always on and never global.
	Telemetry *telemetry.Registry
}

func (c MasterConfig) minWorkers() int {
	if c.MinWorkers > 0 {
		return c.MinWorkers
	}
	return c.Workers
}

func (c MasterConfig) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 2
}

func (c MasterConfig) heartbeat() time.Duration {
	if c.HeartbeatInterval > 0 {
		return c.HeartbeatInterval
	}
	return 2 * time.Second
}

func (c MasterConfig) resultTimeout() time.Duration {
	if c.ResultTimeout > 0 {
		return c.ResultTimeout
	}
	return 5 * c.heartbeat()
}

// Summary aggregates a distributed run.
type Summary struct {
	// Workers and TotalThreads describe the fleet registered when the
	// start gate opened (reconnects and late joiners are not counted).
	Workers      int
	TotalThreads int
	// Parts is the number of ranges/part files planned.
	Parts        int
	Edges        int64
	Attempts     int64
	MaxDegree    int64
	PeakBytes    int64
	BytesWritten int64
	// SkippedParts counts leased parts workers skipped because their
	// files already existed (resumed work). PartsFromCache counts parts
	// workers satisfied from their artifact store instead of
	// generating. Requeues counts leases returned to the queue after a
	// disconnect, stall or failure.
	SkippedParts   int
	PartsFromCache int
	Requeues       int
	// PlanDuration is the master-side planning time; Elapsed the wall
	// time from gate open to last completion.
	PlanDuration, Elapsed time.Duration
}

// Master coordinates one distributed generation.
type Master struct {
	cfg MasterConfig
	src core.PartSource
	ln  net.Listener
	tel *telemetry.Registry

	mu   sync.Mutex
	cond *sync.Cond
	// Start gate.
	registered  int  // connections that completed Hello
	gateThreads int  // thread sum while the gate is open for counting
	gateClosed  bool // Run has taken its fleet snapshot
	// Work queue (valid once planned). Dispatch order comes from the
	// cost-aware fair queue, not FIFO: fresh ranges enter as Batch and
	// requeued ones as Background, so a burst of retries cannot jump
	// ahead of first-attempt work — it trickles back in at background
	// weight, apportioned by expected edges.
	planned   bool
	ranges    []partition.Range
	queue     *sched.FairQueue // payloads are range ids
	attempts  []int            // requeue count per range id
	completed []bool
	remaining int
	active    int // currently connected workers
	// hotActive counts connected workers whose last protocol message
	// advertised critical host pressure. While at least one cooler
	// worker is connected (active > hotActive), hot workers are offered
	// only requeued (Background) ranges — fresh work routes to hosts
	// with headroom. When every worker is hot, leasing proceeds as
	// normal: a uniformly-starved fleet must still finish the run.
	hotActive int
	fatal     error
	finished  bool
	sum       Summary

	handlers sync.WaitGroup
}

// NewMaster validates the configuration and starts listening, so the
// bound address (Addr) is known before workers are launched.
func NewMaster(cfg MasterConfig) (*Master, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dist: master needs ≥ 1 worker")
	}
	if cfg.MinWorkers < 0 || cfg.MinWorkers > cfg.Workers {
		return nil, fmt.Errorf("dist: min workers %d outside [0, %d]", cfg.MinWorkers, cfg.Workers)
	}
	if cfg.Parts < 0 {
		return nil, fmt.Errorf("dist: negative parts")
	}
	if cfg.MaxLeaseRanges < 0 {
		return nil, fmt.Errorf("dist: negative max lease ranges")
	}
	var src core.PartSource
	if cfg.Community != nil {
		lay, err := community.New(*cfg.Community)
		if err != nil {
			return nil, err
		}
		src = lay
	} else {
		if err := cfg.Config.Validate(); err != nil {
			return nil, err
		}
		src = core.NewConfigSource(cfg.Config)
	}
	if cfg.AcceptTimeout == 0 {
		cfg.AcceptTimeout = 60 * time.Second
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	m := &Master{cfg: cfg, src: src, ln: ln, tel: cfg.Telemetry, queue: sched.NewFairQueue()}
	if m.tel == nil {
		m.tel = telemetry.NewRegistry()
	}
	m.cond = sync.NewCond(&m.mu)
	m.tel.GaugeFunc(MetricQueueDepth, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.queue.Len())
	})
	m.tel.GaugeFunc(MetricWorkersHot, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.hotActive)
	})
	return m, nil
}

// Addr returns the bound listen address.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Telemetry returns the registry the master records into — the one
// from MasterConfig, or the private default.
func (m *Master) Telemetry() *telemetry.Registry { return m.tel }

// Close releases the listener (Run closes it itself on completion).
func (m *Master) Close() error { return m.ln.Close() }

// Run accepts registrations, leases ranges until every part is
// accounted for, and aggregates the results.
func (m *Master) Run() (Summary, error) {
	defer m.ln.Close()
	m.handlers.Add(1)
	go m.acceptLoop()

	// Start gate: wait for the full fleet, or for AcceptTimeout with
	// at least MinWorkers.
	gateTimer := time.AfterFunc(m.cfg.AcceptTimeout, func() {
		m.mu.Lock()
		m.gateClosed = true
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	m.mu.Lock()
	for m.registered < m.cfg.Workers && !m.gateClosed {
		m.cond.Wait()
	}
	m.gateClosed = true
	gateTimer.Stop()
	if m.registered < m.cfg.minWorkers() {
		m.fatal = fmt.Errorf("dist: only %d of %d workers (minimum %d) registered within %v",
			m.registered, m.cfg.Workers, m.cfg.minWorkers(), m.cfg.AcceptTimeout)
		return m.finish()
	}
	m.sum.Workers = m.registered
	m.sum.TotalThreads = m.gateThreads
	parts := m.cfg.Parts
	if parts == 0 {
		parts = m.gateThreads
	}
	if m.cfg.Community != nil {
		// Community runs are block-granular: the layout fixes the part
		// count, so neither Parts nor the fleet's thread sum applies.
		parts = 0
	}
	m.mu.Unlock()

	planStart := time.Now()
	// Both sources return part ids 0..n-1, index-aligned with ranges, so
	// the queue payload (the range index) doubles as the part id.
	ranges, _, err := m.src.Plan(parts)
	parts = len(ranges)

	m.mu.Lock()
	m.sum.Parts = parts
	m.sum.PlanDuration = time.Since(planStart)
	if err != nil {
		m.fatal = err
		return m.finish()
	}
	m.ranges = ranges
	m.attempts = make([]int, parts)
	m.completed = make([]bool, parts)
	for i, r := range ranges {
		m.queue.Push(sched.Item{
			Tenant:  sched.DefaultTenant,
			Class:   sched.Batch,
			Cost:    r.Edges,
			Payload: i,
		})
	}
	m.remaining = parts
	m.planned = true
	m.cond.Broadcast()
	start := time.Now()
	m.mu.Unlock()

	go m.watchdog()

	m.mu.Lock()
	for m.remaining > 0 && m.fatal == nil {
		m.cond.Wait()
	}
	m.sum.Elapsed = time.Since(start)
	return m.finish()
}

// finish (called with mu held) marks the run over, releases every
// handler, and returns the outcome.
func (m *Master) finish() (Summary, error) {
	m.finished = true
	m.cond.Broadcast()
	sum, err := m.sum, m.fatal
	m.mu.Unlock()
	m.ln.Close() // stops acceptLoop and unblocks its handlers.Done
	m.handlers.Wait()
	return sum, err
}

// watchdog aborts a planned run that has outstanding parts but no
// connected workers for AcceptTimeout — otherwise a fully deserted
// queue would wait forever for a worker that never comes.
func (m *Master) watchdog() {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	var idleSince time.Time
	for range tick.C {
		m.mu.Lock()
		if m.finished || m.fatal != nil {
			m.mu.Unlock()
			return
		}
		if m.remaining > 0 && m.active == 0 {
			if idleSince.IsZero() {
				idleSince = time.Now()
			} else if time.Since(idleSince) >= m.cfg.AcceptTimeout {
				m.fatal = fmt.Errorf("dist: no connected workers for %v with %d of %d parts outstanding",
					m.cfg.AcceptTimeout, m.remaining, len(m.ranges))
				m.cond.Broadcast()
				m.mu.Unlock()
				return
			}
		} else {
			idleSince = time.Time{}
		}
		m.mu.Unlock()
	}
}

func (m *Master) acceptLoop() {
	defer m.handlers.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed: the run is over
		}
		// Add is safe here: the loop's own count keeps the group > 0
		// until the listener closes.
		m.handlers.Add(1)
		go m.handleWorker(conn)
	}
}

// handleWorker serves one worker connection: register, then lease work
// until the queue drains or the connection faults. All network I/O
// happens outside the state mutex so one slow worker never serializes
// the others.
func (m *Master) handleWorker(conn net.Conn) {
	defer m.handlers.Done()
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)

	var first interface{}
	if err := decodeWithin(conn, dec, m.cfg.HandshakeTimeout, &first); err != nil {
		return // a silent or garbage connection must not hurt the run
	}
	hi, ok := first.(Hello)
	if !ok || hi.Threads < 1 {
		return
	}

	// lvl is this connection's last-advertised pressure level. Only this
	// handler goroutine touches it; m.hotActive is its mu-guarded
	// aggregate. An idle worker waiting for a lease sends nothing, so
	// its level is as fresh as its last Hello/Heartbeat/Done/Fail —
	// good enough, since a worker heats up by working, not by waiting.
	lvl := hi.Level
	observe := func(newLvl pressure.Level) {
		if newLvl == lvl {
			return
		}
		m.mu.Lock()
		if lvl >= pressure.Critical {
			m.hotActive--
		}
		if newLvl >= pressure.Critical {
			m.hotActive++
		}
		lvl = newLvl
		m.cond.Broadcast()
		m.mu.Unlock()
	}

	m.mu.Lock()
	m.registered++
	m.active++
	if lvl >= pressure.Critical {
		m.hotActive++
	}
	if !m.gateClosed {
		m.gateThreads += hi.Threads
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.tel.Counter(MetricWorkersRegistered).Inc()
	m.tel.Gauge(MetricWorkersActive).Add(1)
	defer func() {
		m.tel.Gauge(MetricWorkersActive).Add(-1)
		m.mu.Lock()
		m.active--
		if lvl >= pressure.Critical {
			m.hotActive--
		}
		m.cond.Broadcast()
		m.mu.Unlock()
	}()

	sendBye := func() {
		var bye interface{} = Bye{}
		encodeWithin(conn, enc, m.cfg.HandshakeTimeout, &bye)
	}

	for {
		// Take the next lease (or learn the run is over). A critically
		// pressured worker is withheld fresh (Batch) ranges while any
		// cooler worker is connected — it waits for requeued
		// (Background) work, which it may still drain.
		withhold := false
		withheldNoted := false
		m.mu.Lock()
		for {
			if m.fatal != nil {
				m.mu.Unlock()
				return
			}
			// Check for completion before the finished flag: a clean
			// finish must release idle workers with Bye, not a closed
			// connection.
			if m.planned && m.remaining == 0 {
				m.mu.Unlock()
				sendBye()
				return
			}
			if m.finished {
				m.mu.Unlock()
				return
			}
			withhold = lvl >= pressure.Critical && m.active > m.hotActive
			if m.planned {
				avail := m.queue.Len()
				if withhold {
					avail = m.queue.LenClass(sched.Background)
					if avail == 0 && m.queue.Len() > 0 && !withheldNoted {
						m.tel.Counter(MetricLeasesWithheld).Inc()
						withheldNoted = true
					}
				}
				if avail > 0 {
					break
				}
			}
			m.cond.Wait()
		}
		var hotVeto func(sched.Item) sched.Decision
		if withhold {
			hotVeto = func(it sched.Item) sched.Decision {
				if it.Class != sched.Background {
					return sched.SkipClass
				}
				return sched.Take
			}
		}
		n := hi.Threads
		if m.cfg.MaxLeaseRanges > 0 && n > m.cfg.MaxLeaseRanges {
			n = m.cfg.MaxLeaseRanges
		}
		ids := make([]int, 0, min(n, m.queue.Len()))
		for len(ids) < n {
			it, ok := m.queue.Pop(hotVeto)
			if !ok {
				break
			}
			ids = append(ids, it.Payload.(int))
		}
		job := Job{
			Config:    m.cfg.Config,
			Community: m.cfg.Community,
			Format:    m.cfg.Format,
			Ranges:    make([]partition.Range, len(ids)),
			PartIDs:   ids,
			Heartbeat: m.cfg.heartbeat(),
		}
		for i, id := range ids {
			job.Ranges[i] = m.ranges[id]
		}
		m.mu.Unlock()

		if err := faultpoint.Fire("dist.master.lease"); err != nil {
			m.requeue(ids, err.Error())
			return
		}
		var out interface{} = job
		if err := encodeWithin(conn, enc, m.cfg.HandshakeTimeout, &out); err != nil {
			m.requeue(ids, fmt.Sprintf("sending lease: %v", err))
			return
		}
		m.tel.Counter(MetricLeaseGrants).Inc()

		// Await the lease result; heartbeats reset the silence clock.
		// lastMsg feeds the heartbeat-gap histogram: a rising p99 gap is
		// the early-warning signal for workers drifting toward the
		// ResultTimeout expiry cliff.
		lastMsg := time.Now()
	result:
		for {
			var in interface{}
			if err := decodeWithin(conn, dec, m.cfg.resultTimeout(), &in); err != nil {
				var nerr net.Error
				if errors.As(err, &nerr) && nerr.Timeout() {
					m.tel.Counter(MetricLeaseExpiries).Inc()
				}
				m.requeue(ids, fmt.Sprintf("worker lost mid-lease: %v", err))
				return
			}
			m.tel.Histogram(MetricHeartbeatGap).ObserveDuration(time.Since(lastMsg))
			lastMsg = time.Now()
			faultpoint.Fire("dist.master.result")
			switch r := in.(type) {
			case Heartbeat:
				observe(r.Level)
				// A beating worker can outlive the run (its lease was
				// requeued and finished elsewhere, or the run went
				// fatal); don't let it hold the master open.
				m.mu.Lock()
				over := m.finished || m.fatal != nil
				m.mu.Unlock()
				if over {
					return
				}
				continue
			case Done:
				observe(r.Level)
				m.tel.Counter(MetricMasterEdges).Add(r.Edges)
				m.tel.Counter(MetricPartsSkipped).Add(int64(r.Skipped))
				m.tel.Counter(MetricPartsFromCache).Add(int64(r.FromCache))
				if r.GenDuration > 0 && r.Edges > 0 {
					m.tel.Histogram(MetricWorkerEdgesPerSec).Observe(float64(r.Edges) / r.GenDuration.Seconds())
				}
				m.mu.Lock()
				for _, id := range ids {
					if !m.completed[id] {
						m.completed[id] = true
						m.remaining--
						m.tel.Counter(MetricPartsCompleted).Inc()
					}
				}
				m.sum.Edges += r.Edges
				m.sum.Attempts += r.Attempts
				m.sum.BytesWritten += r.BytesWritten
				m.sum.SkippedParts += r.Skipped
				m.sum.PartsFromCache += r.FromCache
				if r.MaxDegree > m.sum.MaxDegree {
					m.sum.MaxDegree = r.MaxDegree
				}
				if r.PeakWorkerBytes > m.sum.PeakBytes {
					m.sum.PeakBytes = r.PeakWorkerBytes
				}
				m.cond.Broadcast()
				m.mu.Unlock()
				break result
			case Fail:
				observe(r.Level)
				// The worker survives its own failure: requeue the
				// lease (another worker, or this one, retries) and
				// keep serving the connection.
				m.requeue(ids, "worker failed: "+r.Error)
				break result
			default:
				m.requeue(ids, fmt.Sprintf("unexpected message %T", in))
				return
			}
		}
	}
}

// requeue returns a faulted lease's uncompleted ranges to the queue,
// aborting the run for any range past its attempt cap.
func (m *Master) requeue(ids []int, cause string) {
	m.tel.Counter(MetricRequeues).Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.cond.Broadcast()
	m.sum.Requeues++
	for _, id := range ids {
		if m.completed[id] {
			continue // a duplicate Done beat us to it
		}
		m.attempts[id]++
		m.tel.Counter(MetricRequeuedRanges).Inc()
		m.tel.Counter(MetricRangeAttempts).Inc()
		if m.attempts[id] > m.cfg.maxRetries() {
			if m.fatal == nil {
				m.fatal = fmt.Errorf("dist: range %d exhausted %d attempts (last fault: %s)",
					id, m.attempts[id]+1, cause)
			}
			continue
		}
		m.queue.Push(sched.Item{
			Tenant:  sched.DefaultTenant,
			Class:   sched.Background,
			Cost:    m.ranges[id].Edges,
			Payload: id,
		})
	}
}
