package kronecker

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gformat"
	"repro/internal/memacct"
	"repro/internal/rng"
	"repro/internal/skg"
	"repro/internal/stats"
)

func TestSeedNValidate(t *testing.T) {
	if err := FromSeed2(skg.Graph500Seed).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := SeedN{N: 2, P: []float64{0.5, 0.5, 0.5, 0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for sum 2")
	}
	bad = SeedN{N: 2, P: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for wrong size")
	}
	bad = SeedN{N: 1, P: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for order 1")
	}
	three := SeedN{N: 3, P: []float64{0.3, 0.1, 0.05, 0.1, 0.15, 0.05, 0.05, 0.05, 0.15}}
	if err := three.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCellProbMatchesSKG: with a 2×2 seed, CellProb coincides with
// Proposition 1.
func TestCellProbMatchesSKG(t *testing.T) {
	k := skg.Graph500Seed
	s := FromSeed2(k)
	const depth = 6
	n := int64(1) << depth
	for u := int64(0); u < n; u += 3 {
		for v := int64(0); v < n; v += 5 {
			a := s.CellProb(u, v, depth)
			b := skg.EdgeProb(k, u, v, depth)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("(%d,%d): CellProb %v, EdgeProb %v", u, v, a, b)
			}
		}
	}
}

// TestCellProbTotalMass: 3×3 seed's Kronecker power sums to 1.
func TestCellProbTotalMass3x3(t *testing.T) {
	s := SeedN{N: 3, P: []float64{0.3, 0.1, 0.05, 0.1, 0.15, 0.05, 0.05, 0.05, 0.15}}
	const depth = 4
	nv := int64(81)
	var sum float64
	for u := int64(0); u < nv; u++ {
		for v := int64(0); v < nv; v++ {
			sum += s.CellProb(u, v, depth)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("total mass %v", sum)
	}
}

func TestAESExpectedEdges(t *testing.T) {
	cfg := Config{Seed: FromSeed2(skg.Graph500Seed), Depth: 9, NumEdges: 4096}
	res, err := AES(cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 512*512 {
		t.Fatalf("attempts %d, want |V|^2", res.Attempts)
	}
	// Some cells clamp at probability 1, so the yield sits slightly
	// below NumEdges; accept 15%.
	if math.Abs(float64(res.Edges)-4096) > 0.15*4096 {
		t.Fatalf("edges %d, want ≈ 4096", res.Edges)
	}
}

func TestAESRefusesHugeMatrices(t *testing.T) {
	cfg := Config{Seed: FromSeed2(skg.Graph500Seed), Depth: 25, NumEdges: 1}
	if _, err := AES(cfg, 1, nil); err == nil {
		t.Fatal("expected refusal for |V|^2 blowup")
	}
}

// TestFastEdgeDistribution: the n×n recursive selection follows the
// Kronecker cell probabilities.
func TestFastEdgeDistribution(t *testing.T) {
	s := SeedN{N: 3, P: []float64{0.3, 0.1, 0.05, 0.1, 0.15, 0.05, 0.05, 0.05, 0.15}}
	const depth = 2
	nv := int64(9)
	src := rng.New(5)
	const draws = 300000
	obs := make([]float64, nv*nv)
	for i := 0; i < draws; i++ {
		e := GenerateEdge(s, depth, src)
		obs[e.Src*nv+e.Dst]++
	}
	expect := make([]float64, nv*nv)
	for u := int64(0); u < nv; u++ {
		for v := int64(0); v < nv; v++ {
			expect[u*nv+v] = draws * s.CellProb(u, v, depth)
		}
	}
	if stat := stats.ChiSquare(obs, expect, 5); stat > 160 {
		t.Fatalf("chi-square %v too large for 80 dof", stat)
	}
}

func TestFastProducesExactDistinctCount(t *testing.T) {
	cfg := Config{Seed: FromSeed2(skg.Graph500Seed), Depth: 11, NumEdges: 6000}
	seen := make(map[gformat.Edge]struct{})
	res, err := Fast(cfg, 3, nil, func(e gformat.Edge) error {
		if _, dup := seen[e]; dup {
			t.Fatalf("duplicate %v", e)
		}
		seen[e] = struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != 6000 {
		t.Fatalf("edges %d", res.Edges)
	}
}

func TestFastOutOfMemory(t *testing.T) {
	cfg := Config{
		Seed: FromSeed2(skg.Graph500Seed), Depth: 13, NumEdges: 1 << 13,
		MemLimitBytes: 100 * memacct.EdgeBytes,
	}
	if _, err := Fast(cfg, 1, nil, nil); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestFastAccountsEdgeSet(t *testing.T) {
	var acct memacct.Acct
	cfg := Config{Seed: FromSeed2(skg.Graph500Seed), Depth: 12, NumEdges: 3000}
	if _, err := Fast(cfg, 2, &acct, nil); err != nil {
		t.Fatal(err)
	}
	if acct.Peak() != 3000*memacct.EdgeBytes {
		t.Fatalf("peak %d", acct.Peak())
	}
	if acct.Current() != 0 {
		t.Fatalf("leak %d", acct.Current())
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Seed: FromSeed2(skg.Graph500Seed), Depth: 50}).Validate(); err == nil {
		t.Fatal("expected error for vertex overflow")
	}
	if err := (Config{Seed: FromSeed2(skg.Graph500Seed), Depth: 0}).Validate(); err == nil {
		t.Fatal("expected error for depth 0")
	}
	if got := (Config{Seed: SeedN{N: 3, P: make([]float64, 9)}, Depth: 4}).NumVertices(); got != 81 {
		t.Fatalf("NumVertices = %d", got)
	}
}

func BenchmarkFastGenerateEdge(b *testing.B) {
	s := FromSeed2(skg.Graph500Seed)
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		GenerateEdge(s, 30, src)
	}
}
