// Package kronecker implements the two Kronecker-model baselines of
// Sections 2.2 and 3 (and Figure 11a):
//
//   - AES: the original Stochastic Kronecker Graph generator, which
//     visits every cell of the |V|×|V| probability matrix and flips one
//     coin per cell — O(|V|²) time, O(1) space. The quadratic blowup is
//     exactly why the paper reports it "cannot be measured due to
//     timeout" beyond toy scales.
//   - FastKronecker: the SNAP-style generator that produces each edge
//     by log_n|V| recursive region selections over an n×n seed matrix
//     and deduplicates the whole edge set in memory — O(|E|·log|V|)
//     time, O(|E|) space. With n = 2 it coincides with RMAT.
package kronecker

import (
	"fmt"
	"math"

	"repro/internal/gformat"
	"repro/internal/memacct"
	"repro/internal/rng"
	"repro/internal/skg"
)

// SeedN is an n×n probability seed matrix (row-major), the general SKG
// seed. Entries must be non-negative and sum to 1.
type SeedN struct {
	N int
	P []float64
}

// FromSeed2 converts the repository's 2×2 seed to a SeedN.
func FromSeed2(k skg.Seed) SeedN {
	return SeedN{N: 2, P: []float64{k.A, k.B, k.C, k.D}}
}

// Validate checks shape and stochasticity.
func (s SeedN) Validate() error {
	if s.N < 2 {
		return fmt.Errorf("kronecker: seed order %d < 2", s.N)
	}
	if len(s.P) != s.N*s.N {
		return fmt.Errorf("kronecker: seed has %d entries, want %d", len(s.P), s.N*s.N)
	}
	var sum float64
	for _, p := range s.P {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("kronecker: seed entry %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("kronecker: seed entries sum to %v, want 1", sum)
	}
	return nil
}

// At returns entry (i, j).
func (s SeedN) At(i, j int) float64 { return s.P[i*s.N+j] }

// CellProb returns the probability of edge (u, v) in the depth-level
// Kronecker power: the product over digit positions (base n) of the
// seed entries addressed by the digits of u and v.
func (s SeedN) CellProb(u, v int64, depth int) float64 {
	p := 1.0
	n := int64(s.N)
	for i := 0; i < depth; i++ {
		p *= s.At(int(u%n), int(v%n))
		u /= n
		v /= n
	}
	return p
}

// Config parameterizes a Kronecker run.
type Config struct {
	Seed SeedN
	// Depth is the number of Kronecker factors; |V| = N^Depth.
	Depth int
	// NumEdges is the distinct-edge target of FastKronecker. AES ignores
	// it (its edge count is emergent from the probabilities).
	NumEdges int64
	// MemLimitBytes caps FastKronecker's in-memory edge set, yielding
	// ErrOutOfMemory, as in Figure 11a.
	MemLimitBytes int64
}

// ErrOutOfMemory mirrors rmat.ErrOutOfMemory for the FastKronecker
// baseline.
var ErrOutOfMemory = fmt.Errorf("kronecker: edge set exceeds memory limit")

// NumVertices returns N^Depth.
func (c Config) NumVertices() int64 {
	n := int64(1)
	for i := 0; i < c.Depth; i++ {
		n *= int64(c.Seed.N)
	}
	return n
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Seed.Validate(); err != nil {
		return err
	}
	if c.Depth < 1 {
		return fmt.Errorf("kronecker: depth %d < 1", c.Depth)
	}
	if c.NumVertices() > 1<<47 {
		return fmt.Errorf("kronecker: %d vertices exceed supported range", c.NumVertices())
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	Edges    int64
	Attempts int64 // cells visited (AES) or recursive generations (Fast)
}

// AES runs the original An-Edge-Scope Kronecker generator: every cell
// of the adjacency matrix is one Bernoulli trial with the cell's
// Kronecker probability, scaled so the expected total is NumEdges
// (the standard "expected edge count" parameterization: cell probability
// × |E| clamped at 1).
func AES(cfg Config, masterSeed uint64, emit func(gformat.Edge) error) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	nv := cfg.NumVertices()
	if nv > 1<<17 {
		return Result{}, fmt.Errorf("kronecker: AES over %d vertices would take O(|V|^2) = %v trials; refusing (that is the point of Figure 11a)", nv, float64(nv)*float64(nv))
	}
	src := rng.New(masterSeed)
	var res Result
	scale := float64(cfg.NumEdges)
	if scale <= 0 {
		scale = 1
	}
	for u := int64(0); u < nv; u++ {
		for v := int64(0); v < nv; v++ {
			res.Attempts++
			p := cfg.Seed.CellProb(u, v, cfg.Depth) * scale
			if p > 1 {
				p = 1
			}
			if src.Float64() < p {
				res.Edges++
				if emit != nil {
					if err := emit(gformat.Edge{Src: u, Dst: v}); err != nil {
						return res, err
					}
				}
			}
		}
	}
	return res, nil
}

// GenerateEdge produces one edge by recursive region selection on the
// n×n seed: at each of Depth steps one cell of the seed is chosen with
// probability proportional to its entry, consuming one random value per
// step, and the chosen (row, col) digits accumulate into (u, v).
func GenerateEdge(s SeedN, depth int, src *rng.Source) gformat.Edge {
	n := int64(s.N)
	var u, v int64
	for i := 0; i < depth; i++ {
		x := src.Float64()
		idx := len(s.P) - 1
		for j, p := range s.P {
			x -= p
			if x < 0 {
				idx = j
				break
			}
		}
		u = u*n + int64(idx/s.N)
		v = v*n + int64(idx%s.N)
	}
	return gformat.Edge{Src: u, Dst: v}
}

// Fast runs FastKronecker: NumEdges distinct edges by recursive region
// selection with an in-memory duplicate filter (O(|E|) space, charged
// to acct).
func Fast(cfg Config, masterSeed uint64, acct *memacct.Acct, emit func(gformat.Edge) error) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.NumEdges < 1 {
		return Result{}, fmt.Errorf("kronecker: Fast needs NumEdges ≥ 1")
	}
	src := rng.New(masterSeed)
	set := make(map[gformat.Edge]struct{}, cfg.NumEdges)
	var res Result
	var tracked int64
	defer func() {
		if acct != nil {
			acct.Add(-tracked)
		}
	}()
	for int64(len(set)) < cfg.NumEdges {
		e := GenerateEdge(cfg.Seed, cfg.Depth, src)
		res.Attempts++
		if _, dup := set[e]; dup {
			continue
		}
		set[e] = struct{}{}
		tracked += memacct.EdgeBytes
		if acct != nil {
			acct.Add(memacct.EdgeBytes)
		}
		if cfg.MemLimitBytes > 0 && tracked > cfg.MemLimitBytes {
			return res, ErrOutOfMemory
		}
	}
	for e := range set {
		res.Edges++
		if emit != nil {
			if err := emit(e); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}
