package avs

import (
	"math"
	"testing"

	"repro/internal/memacct"
	"repro/internal/recvec"
	"repro/internal/rng"
	"repro/internal/skg"
	"repro/internal/stats"
)

func baseConfig(levels int) Config {
	return Config{
		Seed:     skg.Graph500Seed,
		Levels:   levels,
		NumEdges: 16 << uint(levels),
		Opts:     recvec.Production(),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := baseConfig(10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := baseConfig(10)
	bad.Levels = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for levels 0")
	}
	bad = baseConfig(10)
	bad.Levels = 60
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for levels 60")
	}
	bad = baseConfig(10)
	bad.NumEdges = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero edges")
	}
	bad = baseConfig(10)
	bad.Seed = skg.Seed{A: 1, B: 1, C: 1, D: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for invalid seed")
	}
	src := rng.New(1)
	ns, _ := skg.NewNoise(skg.Graph500Seed, 4, 0.1, src)
	bad = baseConfig(10)
	bad.Noise = ns
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for short noise")
	}
}

func TestNumVertices(t *testing.T) {
	if got := baseConfig(10).NumVertices(); got != 1024 {
		t.Fatalf("NumVertices = %d", got)
	}
}

// TestScopeSizesSumToNumEdges: Theorem 1 — summing all scope sizes
// approximates |E| (the binomial total is exactly |E| in expectation).
func TestScopeSizesSumToNumEdges(t *testing.T) {
	cfg := baseConfig(12)
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	var total int64
	for u := int64(0); u < cfg.NumVertices(); u++ {
		total += g.ScopeSize(u, src)
	}
	want := float64(cfg.NumEdges)
	if math.Abs(float64(total)-want) > 0.02*want {
		t.Fatalf("total scope size %d, want ≈ %d", total, cfg.NumEdges)
	}
}

// TestExpectedDegreeMatchesScopeSizeMean: the analytic expectation used
// by the partitioner agrees with the sampler.
func TestExpectedDegreeMatchesScopeSizeMean(t *testing.T) {
	cfg := baseConfig(10)
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	u := int64(5)
	const trials = 3000
	var sum int64
	for i := 0; i < trials; i++ {
		sum += g.ScopeSize(u, src)
	}
	mean := float64(sum) / trials
	want := g.ExpectedDegree(u)
	if math.Abs(mean-want) > 0.05*want+0.5 {
		t.Fatalf("sampled mean %v, analytic %v", mean, want)
	}
}

// TestScopeDestinationsDistinct: Algorithm 4's dedup produces a set.
func TestScopeDestinationsDistinct(t *testing.T) {
	cfg := baseConfig(12)
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(13)
	var buf []int64
	for u := int64(0); u < 512; u++ {
		res := g.Scope(u, src, buf)
		buf = res.Dsts
		seen := make(map[int64]struct{}, len(res.Dsts))
		for _, d := range res.Dsts {
			if _, dup := seen[d]; dup {
				t.Fatalf("u=%d: duplicate destination %d", u, d)
			}
			if d < 0 || d >= cfg.NumVertices() {
				t.Fatalf("u=%d: destination %d out of range", u, d)
			}
			seen[d] = struct{}{}
		}
		if res.Attempts < int64(len(res.Dsts)) {
			t.Fatalf("u=%d: attempts %d < edges %d", u, res.Attempts, len(res.Dsts))
		}
	}
}

// TestScopeWithSizeExact: requesting a size yields exactly that many
// distinct destinations (when |V| allows).
func TestScopeWithSizeExact(t *testing.T) {
	cfg := baseConfig(14)
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(17)
	res := g.ScopeWithSize(123, 200, src, nil)
	if len(res.Dsts) != 200 {
		t.Fatalf("got %d destinations, want 200", len(res.Dsts))
	}
}

// TestScopeWithSizeClampsToNumVertices: asking for more than |V|
// distinct destinations is clamped instead of looping forever.
func TestScopeWithSizeClampsToNumVertices(t *testing.T) {
	cfg := Config{Seed: skg.UniformSeed, Levels: 4, NumEdges: 100, Opts: recvec.Production()}
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(19)
	res := g.ScopeWithSize(3, 1000, src, nil)
	if len(res.Dsts) != 16 {
		t.Fatalf("got %d destinations, want all 16", len(res.Dsts))
	}
}

// TestScopeDeterministic: identical source streams replay identical
// scopes.
func TestScopeDeterministic(t *testing.T) {
	cfg := baseConfig(12)
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := g.Scope(42, rng.NewScoped(1, 42), nil)
	b := g.Scope(42, rng.NewScoped(1, 42), nil)
	if len(a.Dsts) != len(b.Dsts) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Dsts), len(b.Dsts))
	}
	for i := range a.Dsts {
		if a.Dsts[i] != b.Dsts[i] {
			t.Fatalf("destination %d differs", i)
		}
	}
}

// TestGraphDegreeDistribution: generating every scope of a Scale-13
// graph yields ≈ |E| edges, and the mean degree of vertices with k one
// bits falls on Lemma 6's line: log2(deg_k) linear in k with slope
// log2(γ+δ) − log2(α+β) ≈ −1.663 (the content of the paper's Zipf-slope
// claim; the true rank-frequency curve is convex, see EXPERIMENTS.md).
func TestGraphDegreeDistribution(t *testing.T) {
	cfg := baseConfig(13)
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	var buf []int64
	classSum := make([]float64, cfg.Levels+1)
	classN := make([]float64, cfg.Levels+1)
	for u := int64(0); u < cfg.NumVertices(); u++ {
		res := g.Scope(u, rng.NewScoped(33, uint64(u)), buf)
		buf = res.Dsts
		total += int64(len(res.Dsts))
		ones := 0
		for x := u; x != 0; x &= x - 1 {
			ones++
		}
		classSum[ones] += float64(len(res.Dsts))
		classN[ones]++
	}
	if math.Abs(float64(total)-float64(cfg.NumEdges)) > 0.05*float64(cfg.NumEdges) {
		t.Fatalf("total edges %d, want ≈ %d", total, cfg.NumEdges)
	}
	var xs, ys []float64
	for k := 0; k <= cfg.Levels; k++ {
		if classN[k] == 0 {
			continue
		}
		mean := classSum[k] / classN[k]
		if mean < 2 { // tail classes dominated by dedup clamping/noise
			continue
		}
		xs = append(xs, float64(k))
		ys = append(ys, math.Log2(mean))
	}
	slope, _, r2 := stats.LinearFit(xs, ys)
	want := cfg.Seed.OutZipfSlope() // ≈ −1.663
	if math.Abs(slope-want) > 0.1 {
		t.Fatalf("popcount-class slope %v (r2 %v), want ≈ %v", slope, r2, want)
	}
	if r2 < 0.99 {
		t.Fatalf("popcount-class fit r2 %v, want near-perfect linearity", r2)
	}
}

// TestNoisyScopeGeneration: the NSKG path produces a valid graph of
// roughly |E| edges too.
func TestNoisyScopeGeneration(t *testing.T) {
	const levels = 11
	nsrc := rng.New(3)
	ns, err := skg.NewNoise(skg.Graph500Seed, levels, 0.1, nsrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(levels)
	cfg.Noise = ns
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	var buf []int64
	for u := int64(0); u < cfg.NumVertices(); u++ {
		res := g.Scope(u, rng.NewScoped(5, uint64(u)), buf)
		buf = res.Dsts
		total += int64(len(res.Dsts))
	}
	if math.Abs(float64(total)-float64(cfg.NumEdges)) > 0.1*float64(cfg.NumEdges) {
		t.Fatalf("noisy total edges %d, want ≈ %d", total, cfg.NumEdges)
	}
}

// TestAblationVariantsProduceSameTotals: all option combos generate
// statistically equivalent graphs (same expected |E| and max degree
// order); exact per-scope sizes agree because scope sizing is
// option-independent.
func TestAblationVariantsProduceSameTotals(t *testing.T) {
	combos := []recvec.Options{
		{},
		{ReuseVector: true},
		{ReuseVector: true, SparseRecursion: true},
		{ReuseVector: true, SparseRecursion: true, SingleRandom: true},
	}
	var sizes [][]int64
	for _, o := range combos {
		cfg := baseConfig(10)
		cfg.Opts = o
		g, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var ss []int64
		for u := int64(0); u < cfg.NumVertices(); u++ {
			ss = append(ss, g.ScopeSize(u, rng.NewScoped(77, uint64(u))))
		}
		sizes = append(sizes, ss)
	}
	for i := 1; i < len(sizes); i++ {
		for u := range sizes[0] {
			if sizes[i][u] != sizes[0][u] {
				t.Fatalf("combo %d scope %d size %d != %d", i, u, sizes[i][u], sizes[0][u])
			}
		}
	}
}

// TestHighPrecisionMatchesFloat64Sizes: big.Float mode generates the
// same scope sizes and valid destinations.
func TestHighPrecisionMatchesFloat64(t *testing.T) {
	cfg := baseConfig(10)
	cfg.HighPrecision = true
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := g.Scope(100, rng.NewScoped(9, 100), nil)
	for _, d := range res.Dsts {
		if d < 0 || d >= cfg.NumVertices() {
			t.Fatalf("destination %d out of range", d)
		}
	}
	if len(res.Dsts) == 0 {
		t.Fatal("expected some edges from vertex 100")
	}
}

// TestMemoryAccountingIsScopeLocal: peak tracked memory stays O(d_max),
// far below edge-set size.
func TestMemoryAccountingIsScopeLocal(t *testing.T) {
	var acct memacct.Acct
	cfg := baseConfig(13)
	g, err := New(cfg, &acct)
	if err != nil {
		t.Fatal(err)
	}
	var maxDeg int64
	var buf []int64
	for u := int64(0); u < cfg.NumVertices(); u++ {
		res := g.Scope(u, rng.NewScoped(21, uint64(u)), buf)
		buf = res.Dsts
		if int64(len(res.Dsts)) > maxDeg {
			maxDeg = int64(len(res.Dsts))
		}
	}
	if acct.Current() != 0 {
		t.Fatalf("leaked %d tracked bytes", acct.Current())
	}
	peak := acct.Peak()
	// Peak must cover d_max vertex IDs but stay well under |E| edges.
	if peak < maxDeg*memacct.VertexBytes {
		t.Fatalf("peak %d below d_max requirement %d", peak, maxDeg*memacct.VertexBytes)
	}
	if peak > 64*maxDeg*memacct.VertexBytes+4096 {
		t.Fatalf("peak %d not O(d_max) (d_max=%d)", peak, maxDeg)
	}
}

// TestDedupSetSmallToBigTransition exercises the graduation path.
func TestDedupSetTransition(t *testing.T) {
	var acct memacct.Acct
	s := dedupSet{acct: &acct}
	for i := int64(0); i < 2*dedupSmallMax; i++ {
		if !s.insert(i * 3) {
			t.Fatalf("fresh value %d reported duplicate", i*3)
		}
	}
	for i := int64(0); i < 2*dedupSmallMax; i++ {
		if s.insert(i * 3) {
			t.Fatalf("duplicate %d reported fresh", i*3)
		}
	}
	if acct.Current() != 2*dedupSmallMax*memacct.VertexBytes {
		t.Fatalf("accounting %d", acct.Current())
	}
	s.reset()
	if acct.Current() >= 2*dedupSmallMax*memacct.VertexBytes {
		t.Fatalf("reset did not release: %d", acct.Current())
	}
}

func BenchmarkScope(b *testing.B) {
	cfg := baseConfig(24)
	g, err := New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	var buf []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := g.Scope(int64(i)&(cfg.NumVertices()-1), src, buf)
		buf = res.Dsts
	}
}

// TestAllowDuplicatesMode: the raw-trial mode emits exactly the sampled
// scope size, including repeats (the Graph500-edge-list behaviour the
// paper criticizes) — and repeats actually occur in hot scopes.
func TestAllowDuplicatesMode(t *testing.T) {
	cfg := baseConfig(12)
	cfg.AllowDuplicates = true
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	foundDup := false
	var total int64
	var buf []int64
	for u := int64(0); u < 256; u++ {
		res := g.Scope(u, rng.NewScoped(3, uint64(u)), buf)
		buf = res.Dsts
		if res.Attempts != int64(len(res.Dsts)) {
			t.Fatalf("u=%d: attempts %d != emitted %d in raw mode", u, res.Attempts, len(res.Dsts))
		}
		total += int64(len(res.Dsts))
		seen := make(map[int64]bool)
		for _, d := range res.Dsts {
			if seen[d] {
				foundDup = true
			}
			seen[d] = true
		}
	}
	if !foundDup {
		t.Fatal("no duplicates in raw mode at a dense scale — unexpected")
	}
	if total == 0 {
		t.Fatal("nothing generated")
	}
}
