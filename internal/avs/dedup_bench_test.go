package avs

// Ablation benchmarks for the in-scope dedup structure (DESIGN.md §5):
// the sorted small slice vs a Go map across degrees around the
// crossover. Run with `go test -bench=Dedup ./internal/avs/`.

import (
	"testing"

	"repro/internal/rng"
)

func benchDedupSlice(b *testing.B, degree int) {
	src := rng.New(1)
	vals := make([]int64, degree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := dedupSet{}
		for j := range vals {
			vals[j] = src.Int63n(1 << 30)
		}
		for _, v := range vals {
			s.insert(v)
		}
	}
}

func benchDedupMap(b *testing.B, degree int) {
	src := rng.New(1)
	vals := make([]int64, degree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := make(map[int64]struct{}, 8)
		for j := range vals {
			vals[j] = src.Int63n(1 << 30)
		}
		for _, v := range vals {
			m[v] = struct{}{}
		}
	}
}

func BenchmarkDedupHybridDegree8(b *testing.B)   { benchDedupSlice(b, 8) }
func BenchmarkDedupMapDegree8(b *testing.B)      { benchDedupMap(b, 8) }
func BenchmarkDedupHybridDegree32(b *testing.B)  { benchDedupSlice(b, 32) }
func BenchmarkDedupMapDegree32(b *testing.B)     { benchDedupMap(b, 32) }
func BenchmarkDedupHybridDegree512(b *testing.B) { benchDedupSlice(b, 512) }
func BenchmarkDedupMapDegree512(b *testing.B)    { benchDedupMap(b, 512) }
