// Package avs implements the A-Vertex-Scope engine of Sections 3.3–5:
// for each source vertex u (one scope), it draws the scope size from
// Theorem 1's normal approximation of the binomial and generates that
// many *distinct* destinations with the recursive vector model
// (Algorithm 4), deduplicating inside the scope only.
//
// The engine is deliberately independent of threading and I/O: callers
// (the TrillionG core, the partitioner, the experiment harness) decide
// which scopes to run where and what to do with the adjacency lists.
package avs

import (
	"fmt"
	"math"

	"repro/internal/memacct"
	"repro/internal/recvec"
	"repro/internal/rng"
	"repro/internal/skg"
)

// Config parameterizes scope generation for one graph.
type Config struct {
	// Seed is the 2x2 probability matrix.
	Seed skg.Seed
	// Levels is log2|V|.
	Levels int
	// NumEdges is the target |E| of Theorem 1 (the binomial trial count).
	NumEdges int64
	// Noise, when non-nil, switches the engine to the NSKG model
	// (Appendix C); it must have at least Levels levels.
	Noise *skg.Noise
	// Opts selects the ablation variant of edge determination;
	// recvec.Production() is the real system.
	Opts recvec.Options
	// HighPrecision switches RecVec arithmetic to math/big.Float
	// (the paper's BigDecimal mode, Section 5).
	HighPrecision bool
	// MaxScopeFactor caps a sampled scope size at MaxScopeFactor times
	// the scope's expectation (0 means no cap beyond |V|). TrillionG
	// does not need it; it exists for fault-injection tests.
	MaxScopeFactor float64
	// AllowDuplicates skips in-scope duplicate elimination, emitting raw
	// stochastic trials like the Graph500 edge-list generator. The
	// paper's criticism of such lists ("a huge number of repeated
	// edges") is measurable by diffing this mode against the default.
	AllowDuplicates bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Seed.Validate(); err != nil {
		return err
	}
	if c.Levels < 1 || c.Levels > 47 {
		return fmt.Errorf("avs: levels %d outside [1, 47]", c.Levels)
	}
	if c.NumEdges < 1 {
		return fmt.Errorf("avs: NumEdges %d < 1", c.NumEdges)
	}
	if c.Noise != nil && c.Noise.Levels() < c.Levels {
		return fmt.Errorf("avs: noise has %d levels, need %d", c.Noise.Levels(), c.Levels)
	}
	return nil
}

// NumVertices returns |V| = 2^Levels.
func (c Config) NumVertices() int64 { return int64(1) << uint(c.Levels) }

// Generator generates scopes for one graph configuration. Scope and
// ScopeWithSize are not safe for concurrent use (they share a scratch
// dedup buffer) — give each worker its own instance, as core.Generate
// does. ScopeSize and the probability accessors are read-only and safe
// to call concurrently (the partitioner's parallel combine relies on
// this).
type Generator struct {
	cfg Config
	// acct, when non-nil, is charged for the per-scope dedup structure
	// and the recursive vector, making O(d_max) visible to experiments.
	acct *memacct.Acct
	// scratch is the reusable in-scope duplicate filter.
	scratch dedupSet
}

// New returns a scope generator. acct may be nil.
func New(cfg Config, acct *memacct.Acct) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, acct: acct}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// RowProb returns P_{u→} under the configured model.
func (g *Generator) RowProb(u int64) float64 {
	if g.cfg.Noise != nil {
		return g.cfg.Noise.RowProb(u, g.cfg.Levels)
	}
	return skg.RowProb(g.cfg.Seed, u, g.cfg.Levels)
}

// ExpectedDegree returns E[|S(u,V)|] = |E|·P_{u→}, the partitioner's
// load estimate for scope u.
func (g *Generator) ExpectedDegree(u int64) float64 {
	return float64(g.cfg.NumEdges) * g.RowProb(u)
}

// ScopeSize draws |S(u,V)| per Theorem 1: Binomial(|E|, P_{u→}),
// approximated by N(np, np(1−p)) for large n. The draw is clamped to
// [0, |V|] because a scope has only |V| distinct cells.
func (g *Generator) ScopeSize(u int64, src *rng.Source) int64 {
	p := g.RowProb(u)
	d := src.Binomial(g.cfg.NumEdges, p)
	if nv := g.cfg.NumVertices(); d > nv {
		d = nv
	}
	if g.cfg.MaxScopeFactor > 0 {
		if lim := int64(math.Ceil(g.cfg.MaxScopeFactor * float64(g.cfg.NumEdges) * p)); d > lim {
			d = lim
		}
	}
	return d
}

// dedupSet is the in-scope duplicate filter. Small scopes use a sorted
// slice (cache-friendly, zero allocations after warm-up); large ones a
// map. The 48-entry crossover favours the common case of edge factors
// ~16 where most scopes are small.
type dedupSet struct {
	small []int64
	big   map[int64]struct{}
	// pool keeps a cleared map for reuse across scopes, avoiding a map
	// allocation per high-degree scope.
	pool    map[int64]struct{}
	acct    *memacct.Acct
	charged int64
}

const dedupSmallMax = 48

func (s *dedupSet) reset() {
	s.small = s.small[:0]
	if s.big != nil {
		// Recycle moderate maps; drop oversized ones so one hot scope
		// does not pin memory for the rest of the run.
		if len(s.big) <= 4096 {
			clear(s.big)
			s.pool = s.big
		}
		s.big = nil
	}
	if s.acct != nil && s.charged != 0 {
		s.acct.Add(-s.charged)
		s.charged = 0
	}
}

func (s *dedupSet) charge() {
	if s.acct != nil {
		s.acct.Add(memacct.VertexBytes)
		s.charged += memacct.VertexBytes
	}
}

// insert returns false if v was already present.
func (s *dedupSet) insert(v int64) bool {
	if s.big != nil {
		if _, dup := s.big[v]; dup {
			return false
		}
		s.big[v] = struct{}{}
		s.charge()
		return true
	}
	// Binary search in the sorted small slice.
	lo, hi := 0, len(s.small)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.small[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.small) && s.small[lo] == v {
		return false
	}
	if len(s.small) < dedupSmallMax {
		s.small = append(s.small, 0)
		copy(s.small[lo+1:], s.small[lo:])
		s.small[lo] = v
		s.charge()
		return true
	}
	// Graduate to map (reusing the pooled one when available).
	if s.pool != nil {
		s.big, s.pool = s.pool, nil
	} else {
		s.big = make(map[int64]struct{}, 2*dedupSmallMax)
	}
	for _, x := range s.small {
		s.big[x] = struct{}{}
	}
	s.big[v] = struct{}{}
	s.charge()
	return true
}

// ScopeResult carries one generated scope.
type ScopeResult struct {
	Src int64
	// Dsts are the distinct destinations, in generation order. The slice
	// aliases the buffer passed to GenerateScope.
	Dsts []int64
	// Attempts counts stochastic edge trials including duplicates.
	Attempts int64
}

// Scope generates the full scope of source vertex u: it draws the scope
// size, builds u's recursive vector once (Idea#1, unless ablated), and
// determines destinations until the size is reached, discarding
// duplicates. buf, if non-nil, is reused for the destination slice.
//
// The returned destinations are unique. Generation is deterministic
// given src's state.
func (g *Generator) Scope(u int64, src *rng.Source, buf []int64) ScopeResult {
	size := g.ScopeSize(u, src)
	return g.ScopeWithSize(u, size, src, buf)
}

// ScopeWithSize generates exactly `size` distinct destinations for u
// (clamped to |V|). It is split from Scope so the partitioner can draw
// scope sizes ahead of time (Figure 6) and later generate the edges.
func (g *Generator) ScopeWithSize(u int64, size int64, src *rng.Source, buf []int64) ScopeResult {
	if nv := g.cfg.NumVertices(); size > nv {
		size = nv
	}
	res := ScopeResult{Src: u, Dsts: buf[:0]}
	if size <= 0 {
		return res
	}

	cfg := g.cfg
	var (
		vec *recvec.Vector
		big *recvec.BigVector
	)
	build := func() {
		if cfg.HighPrecision {
			big = recvec.NewBig(cfg.Seed, u, cfg.Levels, 0)
			return
		}
		if cfg.Noise != nil {
			vec = recvec.NewNoisy(cfg.Noise, u, cfg.Levels)
		} else {
			vec = recvec.New(cfg.Seed, u, cfg.Levels)
		}
	}
	build()
	vecBytes := int64((cfg.Levels + 1) * 16) // f + sigma, float64 each
	if g.acct != nil {
		g.acct.Add(vecBytes)
		defer g.acct.Add(-vecBytes)
	}

	var total float64
	if big != nil {
		total = big.RowProb()
	} else {
		total = vec.RowProb()
	}
	if total <= 0 {
		return res
	}

	if cfg.AllowDuplicates {
		for res.Attempts < size {
			if !cfg.Opts.ReuseVector && !cfg.HighPrecision {
				build()
			}
			x := src.UniformTo(total)
			var dst int64
			if big != nil {
				dst = big.Determine(x)
			} else {
				dst = vec.DetermineOpt(x, src, cfg.Opts)
			}
			res.Attempts++
			res.Dsts = append(res.Dsts, dst)
		}
		return res
	}

	set := &g.scratch
	set.acct = g.acct
	set.reset()
	defer set.reset()
	// A scope close to |V| distinct cells would make rejection sampling
	// quadratic; bail into direct enumeration when duplicates dominate
	// pathologically (uniform seeds with tiny graphs in tests).
	maxAttempts := 64*size + 1024

	for int64(len(res.Dsts)) < size && res.Attempts < maxAttempts {
		if !cfg.Opts.ReuseVector && !cfg.HighPrecision {
			build() // Idea#1 ablation: rebuild the vector for every edge
		}
		x := src.UniformTo(total)
		var dst int64
		if big != nil {
			dst = big.Determine(x)
		} else {
			dst = vec.DetermineOpt(x, src, cfg.Opts)
		}
		res.Attempts++
		if set.insert(dst) {
			res.Dsts = append(res.Dsts, dst)
		}
	}
	return res
}
