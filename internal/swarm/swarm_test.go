package swarm

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func testConfig(scale int) core.Config {
	cfg := core.DefaultConfig(scale)
	cfg.MasterSeed = 321
	return cfg
}

// batchRef generates the single-process reference file set: the bytes
// every swarm run, however disturbed, must converge to.
func batchRef(t *testing.T, cfg core.Config, parts int, format gformat.Format) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	ranges, err := core.Plan(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, parts)
	for i := range ids {
		ids[i] = i
	}
	if _, err := core.GenerateRanges(cfg, ranges, core.AtomicPartSinks(dir, format, cfg.NumVertices(), ids)); err != nil {
		t.Fatal(err)
	}
	return readDir(t, dir, parts, format)
}

// readDir reads the full expected part set from dir, failing on any
// absent part, and asserts no temp litter remains (clean runs must not
// leave any; only killed workers may).
func readDir(t *testing.T, dir string, parts int, format gformat.Format) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, parts)
	for id := 0; id < parts; id++ {
		path := core.PartPath(dir, format, id)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("part %d: %v", id, err)
		}
		out[filepath.Base(path)] = b
	}
	return out
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	tmps, err := filepath.Glob(filepath.Join(dir, "part-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("clean run left temp litter: %v", tmps)
	}
}

func assertSameParts(t *testing.T, got, want map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d parts, want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("part %s missing", name)
		}
		if string(g) != string(w) {
			t.Fatalf("part %s differs from batch output", name)
		}
	}
}

func TestEpochOrderIsSharedPermutationWithPrivateRotation(t *testing.T) {
	const seed, parts = 0xfeed, 16
	a := epochOrder(seed, 1, 0, parts)
	b := epochOrder(seed, 2, 0, parts)
	seen := make([]bool, parts)
	for _, id := range a {
		if id < 0 || id >= parts || seen[id] {
			t.Fatalf("not a permutation: %v", a)
		}
		seen[id] = true
	}
	// Same cycle, different starting offset: b must be a rotation of a.
	start := -1
	for i, id := range a {
		if id == b[0] {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("b[0]=%d not found in a=%v", b[0], a)
	}
	for i := range b {
		if b[i] != a[(start+i)%parts] {
			t.Fatalf("worker schedules are not rotations of one shared cycle:\na=%v\nb=%v", a, b)
		}
	}
	// Deterministic: the same identity derives the same schedule.
	again := epochOrder(seed, 1, 0, parts)
	for i := range a {
		if a[i] != again[i] {
			t.Fatal("epochOrder is not deterministic")
		}
	}
	// A fresh epoch reshuffles the cycle itself.
	next := epochOrder(seed, 1, 1, parts)
	same := true
	for i := range a {
		if a[i] != next[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epoch 1 schedule identical to epoch 0")
	}
}

func TestJobSeedSeparatesJobs(t *testing.T) {
	cfg := testConfig(8)
	base := jobSeed(core.CacheFingerprint(cfg), gformat.ADJ6, 4)
	if jobSeed(core.CacheFingerprint(cfg), gformat.ADJ6, 8) == base {
		t.Fatal("part count not mixed into job seed")
	}
	if jobSeed(core.CacheFingerprint(cfg), gformat.TSV, 4) == base {
		t.Fatal("format not mixed into job seed")
	}
	other := cfg
	other.MasterSeed = 99
	if jobSeed(core.CacheFingerprint(other), gformat.ADJ6, 4) == base {
		t.Fatal("config fingerprint not mixed into job seed")
	}
}

func TestRunRequiresPinnedParts(t *testing.T) {
	if _, err := Run(testConfig(8), t.TempDir(), gformat.ADJ6, Options{}); err == nil {
		t.Fatal("Run accepted Parts=0")
	}
	if _, err := Run(testConfig(8), filepath.Join(t.TempDir(), "absent"), gformat.ADJ6, Options{Parts: 2}); err == nil {
		t.Fatal("Run accepted a nonexistent shared directory")
	}
}

func TestRunRejectsMismatchedJobInSharedDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(testConfig(8), dir, gformat.ADJ6, Options{Parts: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(testConfig(9), dir, gformat.ADJ6, Options{Parts: 2}); err == nil {
		t.Fatal("mismatched config accepted against a claimed shared directory")
	}
	if _, err := Run(testConfig(8), dir, gformat.ADJ6, Options{Parts: 4}); err == nil {
		t.Fatal("mismatched part count accepted against a claimed shared directory")
	}
}

func TestRunSingleWorkerMatchesBatch(t *testing.T) {
	cfg := testConfig(9)
	const parts = 4
	want := batchRef(t, cfg, parts, gformat.ADJ6)

	dir := t.TempDir()
	tel := telemetry.NewRegistry()
	sum, err := Run(cfg, dir, gformat.ADJ6, Options{Parts: parts, Threads: 2, ScanInterval: 20 * time.Millisecond, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	assertSameParts(t, readDir(t, dir, parts, gformat.ADJ6), want)
	assertNoTempLitter(t, dir)
	if sum.Claimed != parts || sum.Lost != 0 || sum.Skipped != 0 || sum.FromCache != 0 {
		t.Fatalf("lone worker accounting off: %+v", sum)
	}
	if sum.Epochs != 1 {
		t.Fatalf("lone worker took %d claim epochs, want 1", sum.Epochs)
	}
	if sum.Edges == 0 || sum.BytesWritten == 0 {
		t.Fatalf("no generation recorded: %+v", sum)
	}
	if got := tel.CounterValue(MetricPartsClaimed); got != int64(parts) {
		t.Fatalf("telemetry claimed %d, summary %d", got, parts)
	}
	if got := tel.CounterValue(MetricEdges); got != sum.Edges {
		t.Fatalf("telemetry edges %d, summary %d", got, sum.Edges)
	}
}

func TestRunJoiningFinishedJobOnlyVerifies(t *testing.T) {
	cfg := testConfig(8)
	const parts = 3
	dir := t.TempDir()
	if _, err := Run(cfg, dir, gformat.ADJ6, Options{Parts: parts}); err != nil {
		t.Fatal(err)
	}
	sum, err := Run(cfg, dir, gformat.ADJ6, Options{Parts: parts})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Claimed != 0 || sum.Epochs != 0 {
		t.Fatalf("joiner to a finished job did work: %+v", sum)
	}
	if sum.Verified != parts {
		t.Fatalf("joiner verified %d parts, want %d", sum.Verified, parts)
	}
}

func TestRunStoreIsSecondRendezvousSurface(t *testing.T) {
	cfg := testConfig(9)
	const parts = 4
	want := batchRef(t, cfg, parts, gformat.ADJ6)

	st, err := store.Open(filepath.Join(t.TempDir(), "store"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, t.TempDir(), gformat.ADJ6, Options{Parts: parts, Store: st}); err != nil {
		t.Fatal(err)
	}
	// A worker in a *fresh* directory sharing the store regenerates
	// nothing: every part materializes from the store.
	dir2 := t.TempDir()
	tel := telemetry.NewRegistry()
	sum, err := Run(cfg, dir2, gformat.ADJ6, Options{Parts: parts, Store: st, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if sum.FromCache != parts || sum.Claimed != 0 {
		t.Fatalf("warm store run regenerated: %+v", sum)
	}
	if got := tel.CounterValue(MetricStoreHits); got != int64(parts) {
		t.Fatalf("telemetry store hits %d, want %d", got, parts)
	}
	assertSameParts(t, readDir(t, dir2, parts, gformat.ADJ6), want)
}

// TestRunThreeWorkersBitIdentical: the undisturbed swarm case — three
// workers sharing one directory converge on exactly the batch file set
// with every part published by exactly one winner.
func TestRunThreeWorkersBitIdentical(t *testing.T) {
	cfg := testConfig(10)
	const parts = 6
	want := batchRef(t, cfg, parts, gformat.ADJ6)

	dir := t.TempDir()
	sums := make([]Summary, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = Run(cfg, dir, gformat.ADJ6, Options{
				Parts:        parts,
				WorkerID:     uint64(i + 1),
				ScanInterval: 20 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	assertSameParts(t, readDir(t, dir, parts, gformat.ADJ6), want)
	assertNoTempLitter(t, dir)
	claimed := 0
	for _, s := range sums {
		claimed += s.Claimed
	}
	// Every present part had a winning publish; a rare same-instant
	// publish race can double-count a win, never under-count one.
	if claimed < parts {
		t.Fatalf("winners claim %d parts in total, want >= %d (sums %+v)", claimed, parts, sums)
	}
}

// TestRunJobCommunityBlocksBitIdentical: a community layout's blocks
// are the swarm's claimable parts, and two cooperating workers
// converge on the byte-exact file set of a single-process batch run.
func TestRunJobCommunityBlocksBitIdentical(t *testing.T) {
	lay, err := community.New(community.Config{
		Sizes:      []int64{8, 5, 8},
		Mixing:     [][]float64{{4, 1, 0}, {1, 2, 1}, {0, 1, 3}},
		Edges:      120,
		Noise:      0.1,
		MasterSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts := lay.NumBlocks()

	refDir := t.TempDir()
	if _, err := lay.GenerateToDir(refDir, gformat.ADJ6, community.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	want := readDir(t, refDir, parts, gformat.ADJ6)

	dir := t.TempDir()
	sums := make([]Summary, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = RunJob(lay, dir, gformat.ADJ6, Options{
				Parts:        parts,
				WorkerID:     uint64(i + 1),
				ScanInterval: 20 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	assertSameParts(t, readDir(t, dir, parts, gformat.ADJ6), want)
	assertNoTempLitter(t, dir)
}

// TestRunJobCommunitySharesStoreWithBatch: parts a batch run ingested
// into the artifact store are claimed from the cache by a later swarm
// run of the identical spec — the store key fingerprints the layout,
// not the execution mode.
func TestRunJobCommunitySharesStoreWithBatch(t *testing.T) {
	spec := community.Config{
		Sizes:      []int64{8, 5},
		Mixing:     [][]float64{{4, 1}, {1, 2}},
		Edges:      80,
		MasterSeed: 7,
	}
	lay, err := community.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	batchDir := t.TempDir()
	if _, err := lay.GenerateToDir(batchDir, gformat.ADJ6, community.RunOptions{Store: st}); err != nil {
		t.Fatal(err)
	}

	// An independent resolution of the same spec must hit the cache.
	lay2, err := community.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	swarmDir := t.TempDir()
	sum, err := RunJob(lay2, swarmDir, gformat.ADJ6, Options{
		Parts:        lay2.NumBlocks(),
		ScanInterval: 20 * time.Millisecond,
		Store:        st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.FromCache != lay2.NumBlocks() {
		t.Fatalf("swarm run took %d of %d parts from the store", sum.FromCache, lay2.NumBlocks())
	}
	assertSameParts(t,
		readDir(t, swarmDir, lay2.NumBlocks(), gformat.ADJ6),
		readDir(t, batchDir, lay.NumBlocks(), gformat.ADJ6))
}
