package swarm

// Chaos tests: swarm runs disturbed by injected faults — workers
// killed mid-part, duplicate-claim races, late joiners, pressure
// throttling — must converge to the exact file set of a single-process
// batch run. CI executes them as their own race-enabled step
// (go test -race -run Chaos ./internal/swarm/...).

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/pressure"
	"repro/internal/telemetry"
)

// TestChaosKillMidPartBitIdentical is the acceptance scenario: three
// workers share one directory, one of them dies mid-part (its first
// part write fails, aborting its Run exactly where a kill -9 would,
// with the part unpublished and only temp litter behind). The
// survivors must complete the job with zero messages and the file set
// must be bit-identical to batch.
func TestChaosKillMidPartBitIdentical(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	cfg := testConfig(10)
	const parts = 6
	want := batchRef(t, cfg, parts, gformat.ADJ6)

	// One write fails process-wide: exactly one of the three workers —
	// whichever generates first — dies mid-part.
	if err := faultpoint.Arm("core.sink.write", "fail*1"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sums := make([]Summary, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = Run(cfg, dir, gformat.ADJ6, Options{
				Parts:        parts,
				WorkerID:     uint64(i + 1),
				ScanInterval: 20 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	dead := 0
	claimed := 0
	for i, err := range errs {
		if err != nil {
			dead++
			t.Logf("worker %d died: %v", i, err)
			continue
		}
		claimed += sums[i].Claimed
	}
	if dead != 1 {
		t.Fatalf("%d workers died, armed for exactly 1", dead)
	}
	assertSameParts(t, readDir(t, dir, parts, gformat.ADJ6), want)
	if claimed < parts-1 {
		// The victim may have published parts before dying; survivors
		// must have won everything else.
		t.Fatalf("survivors claimed %d parts, want >= %d", claimed, parts-1)
	}
}

// TestChaosEpochAdvancementDeterministic forces the message-free work
// stealing deterministically: a lone worker's first claim stalls on the
// armed faultpoint while the test (standing in for a peer that then
// dies) publishes exactly the part at the head of the worker's epoch-0
// schedule. The worker wakes, finds its claim already covered, ends the
// pass as peer territory — and must then advance to epoch 1 to steal
// the genuinely dead peer's remaining parts.
func TestChaosEpochAdvancementDeterministic(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	cfg := testConfig(9)
	const parts = 4
	format := gformat.ADJ6
	want := batchRef(t, cfg, parts, format)

	dir := t.TempDir()
	const workerID = 42
	head := epochOrder(jobSeed(core.CacheFingerprint(cfg), format, parts), workerID, 0, parts)[0]

	if err := faultpoint.Arm(PointClaim, "stall:500ms*1"); err != nil {
		t.Fatal(err)
	}
	var (
		sum Summary
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sum, err = Run(cfg, dir, format, Options{
			Parts:        parts,
			WorkerID:     workerID,
			ScanInterval: 30 * time.Millisecond,
		})
	}()
	// The worker scans (all missing) and stalls at its first claim.
	// Publish that very part during the stall.
	time.Sleep(150 * time.Millisecond)
	ranges, perr := core.Plan(cfg, parts)
	if perr != nil {
		t.Fatal(perr)
	}
	ids := []int{head}
	if _, perr := core.GenerateRanges(cfg, ranges[head:head+1], core.AtomicPartSinks(dir, format, cfg.NumVertices(), ids)); perr != nil {
		t.Fatal(perr)
	}
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameParts(t, readDir(t, dir, parts, format), want)
	if sum.Skipped != 1 {
		t.Fatalf("worker skipped %d claims, want exactly the pre-published head part: %+v", sum.Skipped, sum)
	}
	if sum.Claimed != parts-1 {
		t.Fatalf("worker claimed %d parts, want %d: %+v", sum.Claimed, parts-1, sum)
	}
	if sum.Epochs < 2 {
		t.Fatalf("worker finished in %d claim epochs — the stolen straggler work must force epoch advancement: %+v", sum.Epochs, sum)
	}
}

// TestChaosDuplicateClaimRace pits two workers with the *same*
// identity (hence identical schedules) against a one-part job, with a
// stall widening the window between presence recheck and publish so
// both generate the part. Exactly two full generations happen; the
// store of record stays bit-identical to batch; and the winner/loser
// ledgers sum to the duplicated work.
func TestChaosDuplicateClaimRace(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	cfg := testConfig(9)
	const parts = 1
	want := batchRef(t, cfg, parts, gformat.ADJ6)

	if err := faultpoint.Arm(PointClaim, "stall:300ms*2"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tels := [2]*telemetry.Registry{telemetry.NewRegistry(), telemetry.NewRegistry()}
	sums := make([]Summary, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = Run(cfg, dir, gformat.ADJ6, Options{
				Parts:        parts,
				WorkerID:     7, // deliberately shared: maximal collision pressure
				ScanInterval: 20 * time.Millisecond,
				Telemetry:    tels[i],
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	assertSameParts(t, readDir(t, dir, parts, gformat.ADJ6), want)
	assertNoTempLitter(t, dir)
	claimed := sums[0].Claimed + sums[1].Claimed
	lost := sums[0].Lost + sums[1].Lost
	skipped := sums[0].Skipped + sums[1].Skipped
	// Both stalled past the recheck before either published, so each
	// worker either generated the part (winning or losing the publish)
	// or — if the scheduler let one finish inside the other's stall —
	// skipped at claim time. Every generation is accounted exactly once.
	if claimed < 1 || claimed+lost+skipped != 2 {
		t.Fatalf("duplicate-claim ledger off: claimed=%d lost=%d skipped=%d (sums %+v)", claimed, lost, skipped, sums)
	}
	for i := range tels {
		if got := tels[i].CounterValue(MetricClaimsLost); got != int64(sums[i].Lost) {
			t.Fatalf("worker %d telemetry lost %d, summary %d", i, got, sums[i].Lost)
		}
	}
}

// TestChaosLateJoiner starts one worker alone on a slowed job, then a
// second joins the shared directory mid-run; the pair must finish with
// batch-identical bytes and a consistent joint ledger.
func TestChaosLateJoiner(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	cfg := testConfig(10)
	const parts = 6
	want := batchRef(t, cfg, parts, gformat.ADJ6)

	// Slow the early claims so the first worker cannot finish the job
	// before the second even joins.
	if err := faultpoint.Arm(PointClaim, "stall:80ms*4"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sums := make([]Summary, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sums[0], errs[0] = Run(cfg, dir, gformat.ADJ6, Options{
			Parts: parts, WorkerID: 1, ScanInterval: 20 * time.Millisecond,
		})
	}()
	time.Sleep(120 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sums[1], errs[1] = Run(cfg, dir, gformat.ADJ6, Options{
			Parts: parts, WorkerID: 2, ScanInterval: 20 * time.Millisecond,
		})
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	assertSameParts(t, readDir(t, dir, parts, gformat.ADJ6), want)
	assertNoTempLitter(t, dir)
	if claimed := sums[0].Claimed + sums[1].Claimed; claimed < parts {
		t.Fatalf("winners claim %d parts in total, want >= %d (sums %+v)", claimed, parts, sums)
	}
	t.Logf("late-joiner split: early %+v, joiner %+v", sums[0], sums[1])
}

// TestChaosCriticalPressureThrottlesClaims runs a lone worker whose
// host is forced to critical pressure: every claim must pay a throttle
// wait, yet the worker — last one standing, with no cooler peer to
// yield to — still completes with bit-identical bytes. Pressure
// degrades rate, never bytes and never liveness.
func TestChaosCriticalPressureThrottlesClaims(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	cfg := testConfig(9)
	const parts = 6
	want := batchRef(t, cfg, parts, gformat.ADJ6)

	ctrl := pressure.New(pressure.Config{})
	ctrl.Force(pressure.Critical)
	tel := telemetry.NewRegistry()

	dir := t.TempDir()
	sum, err := Run(cfg, dir, gformat.ADJ6, Options{
		Parts: parts, WorkerID: 1, ScanInterval: 20 * time.Millisecond,
		Pressure: ctrl, ThrottleCritical: 30 * time.Millisecond, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameParts(t, readDir(t, dir, parts, gformat.ADJ6), want)
	if sum.Claimed != parts {
		t.Fatalf("critical lone worker claimed %d parts, want %d", sum.Claimed, parts)
	}
	if waits := tel.CounterValue(MetricThrottleWaits); waits != int64(parts) {
		t.Fatalf("critical worker recorded %d throttle waits, want one per claim (%d)", waits, parts)
	}
	// Recovery lifts the brake: a fresh directory at OK pressure
	// records zero waits.
	ctrl.Force(pressure.OK)
	tel2 := telemetry.NewRegistry()
	if _, err := Run(cfg, t.TempDir(), gformat.ADJ6, Options{
		Parts: parts, WorkerID: 1, Pressure: ctrl, Telemetry: tel2,
	}); err != nil {
		t.Fatal(err)
	}
	if waits := tel2.CounterValue(MetricThrottleWaits); waits != 0 {
		t.Fatalf("OK-pressure worker recorded %d throttle waits, want 0", waits)
	}
}

// TestChaosScanFaultAbortsCleanly: a failing completion scan aborts
// the worker with the injected error; a fresh worker then finishes the
// job in the same directory.
func TestChaosScanFaultAbortsCleanly(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	cfg := testConfig(8)
	const parts = 2
	dir := t.TempDir()
	if err := faultpoint.Arm(PointScan, "fail:scan disk gone*1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, dir, gformat.ADJ6, Options{Parts: parts}); err == nil {
		t.Fatal("worker survived a failing completion scan")
	}
	faultpoint.Reset()
	sum, err := Run(cfg, dir, gformat.ADJ6, Options{Parts: parts})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Claimed != parts {
		t.Fatalf("recovery worker claimed %d, want %d", sum.Claimed, parts)
	}
	want := batchRef(t, cfg, parts, gformat.ADJ6)
	assertSameParts(t, readDir(t, dir, parts, gformat.ADJ6), want)
}

// TestChaosMaxEpochsBackstop: a part that can never be published —
// its final path is squatted by a non-empty directory, so scans flag
// it missing (structurally invalid, undeletable) while every claim
// sees "present" and skips — must trip the MaxEpochs backstop instead
// of spinning forever.
func TestChaosMaxEpochsBackstop(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	cfg := testConfig(8)
	const parts = 2
	dir := t.TempDir()
	squat := core.PartPath(dir, gformat.ADJ6, 1)
	if err := os.MkdirAll(filepath.Join(squat, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err := Run(cfg, dir, gformat.ADJ6, Options{Parts: parts, MaxEpochs: 3, ScanInterval: time.Millisecond})
	if err == nil {
		t.Fatal("worker with an unpublishable part returned success")
	}
	t.Logf("backstop: %v", err)
}
