// Package swarm is the masterless, communication-free distributed
// runtime: elastic workers that generate one graph together without a
// master, leases, or any worker-to-worker messages. It trades the
// fair-queue lease broker of internal/dist — a coordination bottleneck
// and single point of failure at large worker counts — for the insight
// of Funke et al. ("Communication-free Massively Distributed Graph
// Generation"): when every piece of shared state is a pure function of
// the job description, workers have nothing to tell each other.
//
// Everything a worker needs it derives locally:
//
//   - The part plan. core.Plan(cfg, parts) is deterministic, so every
//     worker computes the identical partition from (Config, Parts).
//   - Its schedule. Each epoch has a pseudorandom permutation of the
//     part indices seeded from (job fingerprint, epoch) — identical on
//     every worker — rotated to a private starting offset derived from
//     the worker's identity. Distinct workers therefore walk disjoint
//     prefixes of the same cycle and rarely collide.
//   - Completion. A part is done exactly when its file exists under
//     its final name in the shared output directory (the atomic-rename
//     contract of core.AtomicPartSinks) or its key is in the shared
//     artifact store. core.MissingParts scans are the only
//     "coordination" that ever happens.
//
// Claims are idempotent because generation is deterministic: if two
// workers race on a part, both produce bit-identical bytes, the first
// atomic rename (or store ingest) wins, and the loser counts a
// swarm.claims_lost_total and moves on. A worker that dies mid-part
// leaves only temp-file litter (unique per worker incarnation, so
// racing writers never share a temp); the part stays missing, a
// survivor's next scan finds it, and the survivors advance to the next
// epoch, whose fresh permutation converges everyone onto the remaining
// parts — work stealing with no messages. Workers are therefore
// stateless and spot/serverless-friendly: thousands can join, die and
// rejoin with zero lease traffic, rendezvousing purely through the
// filesystem/store.
//
// Host pressure degrades claim *rate*, not routing: there is no master
// to route around a hot host, so a worker whose pressure controller
// reports elevated/critical inserts pauses between its own claims,
// yielding parts to cooler peers while still making progress if it is
// the last worker standing. Output bytes are identical at every
// pressure level.
package swarm

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/pressure"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Options configures one swarm worker. Only Parts is mandatory: it
// pins the part-file layout, and every worker of a job must agree on
// it (there is no master to gate registration, so the agreement is by
// convention — the run manifest in the shared directory catches
// mismatches).
type Options struct {
	// Parts is the number of part files the job is split into — the
	// same role as the dist master's Parts, but mandatory here: the
	// plan must be derivable with zero communication, so it cannot
	// depend on who shows up.
	Parts int
	// WorkerID is this worker's identity, the rotation offset of its
	// epoch schedules. Identities only steer collision avoidance —
	// correctness never depends on them — so 0 picks a random one.
	// Distinct workers should use distinct identities; two workers
	// sharing one simply duplicate each other's walk.
	WorkerID uint64
	// Threads is the number of parts this worker generates
	// concurrently (0 = 1).
	Threads int
	// ScanInterval paces the straggler machinery: a worker that finds
	// missing parts after its own pass waits this long for in-flight
	// peer renames to land before stealing (0 = 250ms).
	ScanInterval time.Duration
	// MaxEpochs aborts a worker that is still finding missing parts
	// after this many epochs — a backstop against an environment where
	// published parts keep vanishing (0 = unbounded).
	MaxEpochs int
	// ThrottleCritical is the pause inserted before each claim while
	// the local host advertises critical pressure; elevated pressure
	// pauses a quarter of it (0 = ScanInterval).
	ThrottleCritical time.Duration
	// Store, when set, is the second rendezvous surface: each claim
	// consults it before generating (a checksum-verified hit
	// materializes the part), and every generated part is ingested so
	// any worker or later run sharing the store skips it. nil keeps
	// the shared directory as the only rendezvous point.
	Store *store.Store
	// Pressure, when set, throttles this worker's claim rate at
	// elevated/critical levels. The caller owns the controller's
	// sampling loop. nil never throttles.
	Pressure *pressure.Controller
	// Telemetry receives the swarm.* series plus the core generation
	// metrics of every claim. nil uses a private registry.
	Telemetry *telemetry.Registry
}

// Summary reports one worker's share of a masterless run. Totals are
// per-worker: summed over all workers of a job, Claimed equals Parts
// (every part is published by exactly one winner) while Lost, Skipped
// and FromCache describe the collision and cache traffic.
type Summary struct {
	// Parts is the job-wide part count; WorkerID the identity used.
	Parts    int
	WorkerID uint64
	// Claimed counts parts this worker generated and published first;
	// Lost the generated duplicates that lost the publish race;
	// Skipped the claim-time skips (peer published while we walked);
	// FromCache the parts materialized from the artifact store;
	// Verified the present parts structurally verified across scans.
	Claimed, Lost, Skipped, FromCache, Verified int
	// Epochs counts the claim-pass epochs this worker executed: 0
	// means it joined a job that was already complete, 1 a clean
	// single-pass run, >1 that collisions or stragglers forced it into
	// later epochs (message-free work stealing).
	Epochs int
	// Edges and BytesWritten cover what this worker generated,
	// duplicates included.
	Edges        int64
	BytesWritten int64
	// PlanDuration is the local partition-planning time; Elapsed the
	// whole run including scans and settle waits.
	PlanDuration, Elapsed time.Duration
}

// nonceCounter disambiguates workers started in the same process and
// nanosecond (in-process tests, forked CLIs).
var nonceCounter atomic.Uint64

// runNonce returns a fresh per-incarnation identity component: unique
// temp-file suffixes must never collide even when two workers are
// deliberately given the same WorkerID.
func runNonce() uint64 {
	return rng.Mix64(uint64(os.Getpid())<<20^nonceCounter.Add(1), uint64(time.Now().UnixNano()))
}

// jobSeed condenses the job identity into the 64-bit seed of the epoch
// permutations. Every worker derives it from the same pure inputs, so
// the per-epoch schedules agree fleet-wide with zero messages.
func jobSeed(fingerprint string, format gformat.Format, parts int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, fingerprint)
	io.WriteString(h, "|")
	io.WriteString(h, format.String())
	fmt.Fprintf(h, "|%d", parts)
	return h.Sum64()
}

// epochOrder is epoch e's schedule for one worker: the fleet-shared
// pseudorandom permutation of [0, parts) seeded by (seed, epoch),
// rotated to the worker's private starting offset. Sharing the base
// permutation while privatizing only the offset is what makes prefixes
// disjoint: workers walk the same cycle starting at different points,
// so until the fleet wraps around, no two cover the same part.
func epochOrder(seed, workerID uint64, epoch, parts int) []int {
	r := rng.New(rng.Mix64(seed, uint64(epoch)))
	order := make([]int, parts)
	for i := range order {
		order[i] = i
	}
	for i := parts - 1; i > 0; i-- {
		j := int(r.Int63n(int64(i + 1)))
		order[i], order[j] = order[j], order[i]
	}
	off := int(rng.Mix64(rng.Mix64(seed, workerID), uint64(epoch)) % uint64(parts))
	rot := make([]int, 0, parts)
	rot = append(rot, order[off:]...)
	rot = append(rot, order[:off]...)
	return rot
}

// Run executes one masterless swarm worker for a classic Config job.
// It is RunJob over the Config's PartSource adapter — plan, bytes and
// store keys are identical to every pre-existing path.
func Run(job core.Config, dir string, format gformat.Format, opts Options) (Summary, error) {
	return RunJob(core.NewConfigSource(job), dir, format, opts)
}

// RunJob executes one masterless swarm worker for any core.PartSource
// — the classic Config partition or a community layout, whose blocks
// become the claimable parts: it derives the plan and its schedules
// locally, claims parts until a completion scan finds none missing,
// and returns its share of the run. Any number of invocations — in one
// process or many, started together or hours apart — pointed at the
// same shared dir (and optionally the same store) cooperate on one job
// and converge on the identical file set a single-process batch run
// produces.
func RunJob(src core.PartSource, dir string, format gformat.Format, opts Options) (Summary, error) {
	if opts.Parts < 1 {
		return Summary{}, fmt.Errorf("swarm: Parts must be pinned (> 0): with no master to gate registration, the plan must not depend on who shows up")
	}
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if opts.ScanInterval <= 0 {
		opts.ScanInterval = 250 * time.Millisecond
	}
	if opts.ThrottleCritical <= 0 {
		opts.ThrottleCritical = opts.ScanInterval
	}
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.NewRegistry()
	}
	if info, err := os.Stat(dir); err != nil {
		return Summary{}, fmt.Errorf("swarm: shared directory %q not usable: %v", dir, err)
	} else if !info.IsDir() {
		return Summary{}, fmt.Errorf("swarm: shared path %q is not a directory", dir)
	}
	nonce := runNonce()
	if opts.WorkerID == 0 {
		opts.WorkerID = nonce
	}

	start := time.Now()
	planStart := start
	ranges, ids, err := src.Plan(opts.Parts)
	if err != nil {
		return Summary{}, err
	}
	opts.Parts = len(ranges)
	planDur := time.Since(planStart)

	// The manifest is the only shared-state handshake: mismatched
	// configurations against one directory fail here, loudly.
	if err := src.EnsureManifest(dir, format, opts.Parts); err != nil {
		return Summary{}, err
	}

	w := &worker{
		src:    src,
		dir:    dir,
		format: format,
		opts:   opts,
		ranges: ranges,
		ids:    ids,
		seed:   jobSeed(src.Fingerprint(), format, opts.Parts),
		// Unique temp suffix per incarnation: racing claimants of one
		// part must never interleave writes into a shared temp file.
		tmpSuffix: fmt.Sprintf("%016x", nonce),
		tel:       opts.Telemetry,
	}
	sum, err := w.run()
	sum.PlanDuration = planDur
	sum.Elapsed = time.Since(start)
	return sum, err
}

// worker is one Run invocation's state. Counters are atomics because
// Threads claim loops feed them concurrently.
type worker struct {
	src       core.PartSource
	dir       string
	format    gformat.Format
	opts      Options
	ranges    []partition.Range
	ids       []int
	seed      uint64
	tmpSuffix string
	tel       *telemetry.Registry

	claimed, lost, skipped, fromCache atomic.Int64
	verified                          atomic.Int64
	edges, bytes                      atomic.Int64
	passes                            int // claim-pass epochs executed (run loop only)
}

func (w *worker) run() (Summary, error) {
	ids := w.ids
	epochGauge := w.tel.Gauge(MetricEpoch)
	for epoch := 0; ; epoch++ {
		if w.opts.MaxEpochs > 0 && epoch >= w.opts.MaxEpochs {
			return w.summary(), fmt.Errorf("swarm: parts still missing after %d epochs — published parts are vanishing or MaxEpochs is too low", epoch)
		}
		epochGauge.Set(float64(epoch))
		missing, missingIDs, err := w.scan(ids)
		if err != nil {
			return w.summary(), err
		}
		if w.passes > 0 && len(missingIDs) > 0 {
			// Straggler territory. The missing parts may be in flight
			// on live peers; give their renames one scan interval to
			// land before stealing, so a healthy-but-slow fleet is not
			// drowned in duplicates.
			time.Sleep(w.opts.ScanInterval)
			missing, missingIDs, err = w.scan(ids)
			if err != nil {
				return w.summary(), err
			}
		}
		if len(missingIDs) == 0 {
			return w.summary(), nil
		}
		w.passes++
		if err := w.claimPass(epoch, missing, missingIDs); err != nil {
			return w.summary(), err
		}
	}
}

// scan is the completion check: which parts are not yet published,
// complete and structurally valid, in the shared directory. It is the
// only rendezvous read the swarm performs.
func (w *worker) scan(ids []int) ([]partition.Range, []int, error) {
	if err := faultpoint.Fire(PointScan); err != nil {
		return nil, nil, err
	}
	scanStart := time.Now()
	missing, missingIDs := core.MissingParts(w.dir, w.format, w.ranges, ids)
	w.tel.Histogram(MetricScanSeconds).ObserveDuration(time.Since(scanStart))
	present := int64(len(ids) - len(missingIDs))
	w.verified.Add(present)
	w.tel.Counter(MetricPartsVerified).Add(present)
	return missing, missingIDs, nil
}

// claimPass walks this epoch's schedule over the scan's missing parts,
// claiming each until the walk runs into territory a peer covered: the
// first part that turned up complete *since the scan* stops the pass,
// because from there on the walk would mostly duplicate a live peer's
// work. The next scan decides what, if anything, is genuinely left.
// A pass with zero claims still terminates the run eventually: a
// claim-time skip proves another worker made progress in the window.
func (w *worker) claimPass(epoch int, missing []partition.Range, missingIDs []int) error {
	byID := make(map[int]partition.Range, len(missingIDs))
	for i, id := range missingIDs {
		byID[id] = missing[i]
	}
	sched := make([]int, 0, len(missingIDs))
	for _, pos := range epochOrder(w.seed, w.opts.WorkerID, epoch, w.opts.Parts) {
		id := w.ids[pos]
		if _, ok := byID[id]; ok {
			sched = append(sched, id)
		}
	}

	threads := min(w.opts.Threads, len(sched))
	var cursor atomic.Int64
	var stop atomic.Bool
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for !stop.Load() {
				k := int(cursor.Add(1)) - 1
				if k >= len(sched) {
					return
				}
				id := sched[k]
				collided, err := w.claim(id, byID[id])
				if err != nil {
					errs[t] = err
					stop.Store(true)
					return
				}
				if collided {
					stop.Store(true)
					return
				}
			}
		}(t)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// claim makes part id exist: skip if a peer published it meanwhile,
// materialize from the store on a hit, otherwise generate it and
// publish via atomic rename — first writer wins. collided reports a
// claim-time skip, the signal that the walk has caught up with a peer.
func (w *worker) claim(id int, r partition.Range) (collided bool, err error) {
	w.throttle()
	if err := faultpoint.Fire(PointClaim); err != nil {
		return false, err
	}
	final := core.PartPath(w.dir, w.format, id)
	// Presence recheck: presence under the final name is proof of
	// completeness (atomic-rename contract), so no structural check
	// here — scans re-verify everything anyway.
	if _, err := os.Stat(final); err == nil {
		w.skipped.Add(1)
		w.tel.Counter(MetricPartsSkipped).Inc()
		return true, nil
	}
	if w.opts.Store != nil {
		if _, ok, err := w.opts.Store.Retrieve(w.src.PartKey(w.format, id, r), final); err != nil {
			return false, err
		} else if ok {
			w.fromCache.Add(1)
			w.tel.Counter(MetricStoreHits).Inc()
			return false, nil
		}
	}

	ids := []int{id}
	var lostRace atomic.Bool
	sinks := core.AtomicPartSinksOpts(w.dir, w.format, w.src.NumVertices(), ids, core.PartSinkOptions{
		TmpSuffix:   w.tmpSuffix,
		OnDuplicate: func(int) { lostRace.Store(true) },
	})
	// Ingest outside the atomic sink (the final file must exist before
	// the store reads it); a lost claim ingests the winner's identical
	// bytes, and Store.IngestFile is idempotent, so the order of
	// winners and losers cannot corrupt the store.
	sinks = core.IngestingSinksFor(sinks, w.opts.Store, w.src, w.dir, w.format, ids)
	sinks = core.ObservedSinks(sinks, w.format, w.tel)
	st, err := w.src.GeneratePart(id, r, sinks, w.tel)
	if err != nil {
		return false, err
	}
	w.edges.Add(st.Edges)
	w.bytes.Add(st.BytesWritten)
	w.tel.Counter(MetricEdges).Add(st.Edges)
	if lostRace.Load() {
		w.lost.Add(1)
		w.tel.Counter(MetricClaimsLost).Inc()
	} else {
		w.claimed.Add(1)
		w.tel.Counter(MetricPartsClaimed).Inc()
	}
	return false, nil
}

// throttle inserts the pressure pause before a claim. With no master
// to route work away from a hot host, the host slows itself down:
// critical pressure pauses a full ThrottleCritical per claim, elevated
// a quarter — enough for cooler peers to win most races, while a
// last-worker-standing still finishes the job.
func (w *worker) throttle() {
	if w.opts.Pressure == nil {
		return
	}
	var d time.Duration
	switch w.opts.Pressure.Level() {
	case pressure.Critical:
		d = w.opts.ThrottleCritical
	case pressure.Elevated:
		d = w.opts.ThrottleCritical / 4
	default:
		return
	}
	if d <= 0 {
		return
	}
	w.tel.Counter(MetricThrottleWaits).Inc()
	time.Sleep(d)
}

func (w *worker) summary() Summary {
	return Summary{
		Parts:        w.opts.Parts,
		WorkerID:     w.opts.WorkerID,
		Claimed:      int(w.claimed.Load()),
		Lost:         int(w.lost.Load()),
		Skipped:      int(w.skipped.Load()),
		FromCache:    int(w.fromCache.Load()),
		Verified:     int(w.verified.Load()),
		Epochs:       w.passes,
		Edges:        w.edges.Load(),
		BytesWritten: w.bytes.Load(),
	}
}

// Store is re-exported so embedders of Run need not import
// internal/store for the option type.
type Store = store.Store
