package swarm

// Metric names the masterless swarm runtime publishes into the
// telemetry registry handed to Run (docs/OBSERVABILITY.md is the
// catalog). A nil registry gets a private one, so call sites never
// branch on instrumentation.
const (
	// MetricPartsClaimed counts parts this worker generated and
	// published first — its atomic rename won the claim.
	MetricPartsClaimed = "swarm.parts_claimed_total"
	// MetricClaimsLost counts parts this worker fully generated whose
	// publish lost the race to a peer: the final file already existed
	// at rename time, so the duplicate (bit-identical by construction)
	// was discarded. Lost claims are pure duplicated work, the price of
	// zero coordination messages.
	MetricClaimsLost = "swarm.claims_lost_total"
	// MetricPartsSkipped counts claim-time skips: parts that turned up
	// complete between the epoch scan and this worker reaching them in
	// its schedule — the footprint of peers working nearby.
	MetricPartsSkipped = "swarm.parts_skipped_total"
	// MetricPartsVerified counts present parts structurally verified by
	// completion scans (each scan re-verifies everything present).
	MetricPartsVerified = "swarm.parts_verified_total"
	// MetricStoreHits counts parts materialized from the artifact store
	// instead of generated.
	MetricStoreHits = "swarm.store_hits_total"
	// MetricEpoch is this worker's current epoch (gauge).
	MetricEpoch = "swarm.epoch"
	// MetricScanSeconds distributes completion-scan latency (histogram).
	MetricScanSeconds = "swarm.scan_seconds"
	// MetricThrottleWaits counts claim-rate throttle pauses taken
	// because the local host advertised elevated/critical pressure.
	MetricThrottleWaits = "swarm.throttle_waits_total"
	// MetricEdges counts edges this worker generated, duplicates from
	// lost claims included.
	MetricEdges = "swarm.edges_total"
)

// Faultpoint names (internal/faultpoint) on the swarm path, for chaos
// tests and operator fire drills. Generation itself additionally passes
// the core.sink.* points of the atomic writers.
const (
	// PointClaim fires at the start of every part claim, before the
	// presence recheck — a "fail" spec here aborts the worker like a
	// mid-epoch death; a "stall" widens the duplicate-claim window.
	PointClaim = "swarm.worker.claim"
	// PointScan fires before every completion scan.
	PointScan = "swarm.worker.scan"
)
