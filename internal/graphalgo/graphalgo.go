// Package graphalgo implements the reference graph kernels used to
// exercise generated graphs — the consumption side of the paper's first
// motivation ("evaluating the performance of graph processing
// methods"): Graph500-style BFS, weakly connected components, and
// PageRank, all over the CSR image the generator emits.
package graphalgo

import (
	"fmt"
	"math"

	"repro/internal/gformat"
)

// BFSResult reports one breadth-first search.
type BFSResult struct {
	Root int64
	// Depth[v] is the BFS level of v, or -1 if unreached.
	Depth []int32
	// Visited is the number of reached vertices (including the root).
	Visited int64
	// LevelSizes[l] is the number of vertices first reached at level l.
	LevelSizes []int64
	// TraversedEdges counts edge inspections (the TEPS numerator).
	TraversedEdges int64
}

// BFS runs a level-synchronous breadth-first search from root over the
// out-edges of g.
func BFS(g *gformat.CSRGraph, root int64) (*BFSResult, error) {
	if root < 0 || root >= g.NumVertices {
		return nil, fmt.Errorf("graphalgo: root %d outside [0, %d)", root, g.NumVertices)
	}
	res := &BFSResult{Root: root, Depth: make([]int32, g.NumVertices)}
	for i := range res.Depth {
		res.Depth[i] = -1
	}
	res.Depth[root] = 0
	frontier := []int64{root}
	res.LevelSizes = append(res.LevelSizes, 1)
	level := int32(0)
	for len(frontier) > 0 {
		res.Visited += int64(len(frontier))
		var next []int64
		for _, v := range frontier {
			for _, w := range g.Adj(v) {
				res.TraversedEdges++
				if res.Depth[w] < 0 {
					res.Depth[w] = level + 1
					next = append(next, w)
				}
			}
		}
		if len(next) > 0 {
			res.LevelSizes = append(res.LevelSizes, int64(len(next)))
		}
		frontier = next
		level++
	}
	return res, nil
}

// MaxDegreeVertex returns the vertex with the largest out-degree (the
// canonical BFS root for scale-free graphs).
func MaxDegreeVertex(g *gformat.CSRGraph) int64 {
	var best, arg int64 = -1, 0
	for v := int64(0); v < g.NumVertices; v++ {
		if d := g.Degree(v); d > best {
			best, arg = d, v
		}
	}
	return arg
}

// ConnectedComponents labels weakly connected components (edges treated
// as undirected) with a union-find over the CSR image. Returns the
// component label per vertex and the number of components.
func ConnectedComponents(g *gformat.CSRGraph) ([]int64, int64) {
	parent := make([]int64, g.NumVertices)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for v := int64(0); v < g.NumVertices; v++ {
		for _, w := range g.Adj(v) {
			union(v, w)
		}
	}
	labels := make([]int64, g.NumVertices)
	roots := make(map[int64]int64)
	for v := int64(0); v < g.NumVertices; v++ {
		r := find(v)
		id, ok := roots[r]
		if !ok {
			id = int64(len(roots))
			roots[r] = id
		}
		labels[v] = id
	}
	return labels, int64(len(roots))
}

// LargestComponentFraction returns the share of vertices in the biggest
// weakly connected component — near 1 for scale-free graphs with any
// reasonable edge factor (the "giant component").
func LargestComponentFraction(g *gformat.CSRGraph) float64 {
	labels, n := ConnectedComponents(g)
	if n == 0 || g.NumVertices == 0 {
		return 0
	}
	counts := make([]int64, n)
	for _, l := range labels {
		counts[l]++
	}
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(g.NumVertices)
}

// PageRank runs power iteration with damping d until the L1 delta
// drops below eps or maxIter is hit. Returns the rank vector (sums
// to 1) and the iteration count.
func PageRank(g *gformat.CSRGraph, damping float64, eps float64, maxIter int) ([]float64, int) {
	n := g.NumVertices
	if n == 0 {
		return nil, 0
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if eps <= 0 {
		eps = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for v := int64(0); v < n; v++ {
			adj := g.Adj(v)
			if len(adj) == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(len(adj))
			for _, w := range adj {
				next[w] += share
			}
		}
		base := (1-damping)*inv + damping*dangling*inv
		var delta float64
		for i := range next {
			nv := base + damping*next[i]
			delta += math.Abs(nv - rank[i])
			rank[i] = nv
		}
		if delta < eps {
			iter++
			break
		}
	}
	return rank, iter
}

// Reverse returns the transposed CSR image: an edge (u, v) of g becomes
// (v, u). Useful for in-adjacency queries and undirected traversal.
func Reverse(g *gformat.CSRGraph) *gformat.CSRGraph {
	n := g.NumVertices
	degrees := make([]uint64, n+1)
	for v := int64(0); v < n; v++ {
		for _, w := range g.Adj(v) {
			degrees[w+1]++
		}
	}
	offsets := make([]uint64, n+1)
	for i := int64(1); i <= n; i++ {
		offsets[i] = offsets[i-1] + degrees[i]
	}
	neighbours := make([]int64, g.NumEdges())
	cursor := make([]uint64, n)
	copy(cursor, offsets[:n])
	for v := int64(0); v < n; v++ {
		for _, w := range g.Adj(v) {
			neighbours[cursor[w]] = v
			cursor[w]++
		}
	}
	// Adjacency lists come out sorted by source automatically (we sweep
	// sources in order), matching the CSR6 convention.
	return &gformat.CSRGraph{NumVertices: n, Offsets: offsets, Neighbours: neighbours}
}

// BFSUndirected runs BFS treating edges as undirected, as the Graph500
// benchmark specifies: it explores g's out-edges and the out-edges of
// the precomputed reverse image. Pass rev = Reverse(g) (reusable across
// roots).
func BFSUndirected(g, rev *gformat.CSRGraph, root int64) (*BFSResult, error) {
	if root < 0 || root >= g.NumVertices {
		return nil, fmt.Errorf("graphalgo: root %d outside [0, %d)", root, g.NumVertices)
	}
	if rev.NumVertices != g.NumVertices {
		return nil, fmt.Errorf("graphalgo: reverse image has %d vertices, want %d", rev.NumVertices, g.NumVertices)
	}
	res := &BFSResult{Root: root, Depth: make([]int32, g.NumVertices)}
	for i := range res.Depth {
		res.Depth[i] = -1
	}
	res.Depth[root] = 0
	frontier := []int64{root}
	res.LevelSizes = append(res.LevelSizes, 1)
	level := int32(0)
	for len(frontier) > 0 {
		res.Visited += int64(len(frontier))
		var next []int64
		visit := func(w int64) {
			res.TraversedEdges++
			if res.Depth[w] < 0 {
				res.Depth[w] = level + 1
				next = append(next, w)
			}
		}
		for _, v := range frontier {
			for _, w := range g.Adj(v) {
				visit(w)
			}
			for _, w := range rev.Adj(v) {
				visit(w)
			}
		}
		if len(next) > 0 {
			res.LevelSizes = append(res.LevelSizes, int64(len(next)))
		}
		frontier = next
		level++
	}
	return res, nil
}
