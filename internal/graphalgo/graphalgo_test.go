package graphalgo

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gformat"
)

// buildCSR constructs a CSR image from explicit scopes.
func buildCSR(t *testing.T, numVertices int64, scopes map[int64][]int64) *gformat.CSRGraph {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "g.csr6"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := gformat.NewCSR6Writer(f, numVertices)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < numVertices; v++ {
		if dsts, ok := scopes[v]; ok {
			if err := w.WriteScope(v, dsts); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	g, err := gformat.ReadCSR6(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSChain(t *testing.T) {
	// 0 → 1 → 2 → 3, plus isolated 4.
	g := buildCSR(t, 5, map[int64][]int64{0: {1}, 1: {2}, 2: {3}})
	res, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 4 {
		t.Fatalf("visited %d", res.Visited)
	}
	for v, want := range []int32{0, 1, 2, 3, -1} {
		if res.Depth[v] != want {
			t.Fatalf("depth[%d] = %d, want %d", v, res.Depth[v], want)
		}
	}
	if len(res.LevelSizes) != 4 {
		t.Fatalf("levels %v", res.LevelSizes)
	}
	if res.TraversedEdges != 3 {
		t.Fatalf("traversed %d", res.TraversedEdges)
	}
}

func TestBFSBadRoot(t *testing.T) {
	g := buildCSR(t, 2, map[int64][]int64{0: {1}})
	if _, err := BFS(g, 5); err == nil {
		t.Fatal("expected root error")
	}
	if _, err := BFS(g, -1); err == nil {
		t.Fatal("expected root error")
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := buildCSR(t, 4, map[int64][]int64{1: {0, 2, 3}, 2: {0}})
	if v := MaxDegreeVertex(g); v != 1 {
		t.Fatalf("max-degree vertex %d", v)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} via edges, {3} isolated... plus {4,5}.
	g := buildCSR(t, 6, map[int64][]int64{0: {1}, 2: {1}, 4: {5}})
	labels, n := ConnectedComponents(g)
	if n != 3 {
		t.Fatalf("components %d, want 3", n)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if labels[4] != labels[5] {
		t.Fatal("4,5 should share a component")
	}
	if labels[3] == labels[0] || labels[3] == labels[4] {
		t.Fatal("3 should be isolated")
	}
}

func TestPageRankUniformCycle(t *testing.T) {
	// A 4-cycle: PageRank is uniform.
	g := buildCSR(t, 4, map[int64][]int64{0: {1}, 1: {2}, 2: {3}, 3: {0}})
	rank, iters := PageRank(g, 0.85, 1e-12, 200)
	if iters == 0 {
		t.Fatal("no iterations")
	}
	var sum float64
	for _, r := range rank {
		sum += r
		if math.Abs(r-0.25) > 1e-9 {
			t.Fatalf("rank %v, want uniform 0.25", rank)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v", sum)
	}
}

func TestPageRankSink(t *testing.T) {
	// 0 and 1 both point at 2 (a dangling sink): 2 must outrank them
	// and mass must be conserved.
	g := buildCSR(t, 3, map[int64][]int64{0: {2}, 1: {2}})
	rank, _ := PageRank(g, 0.85, 1e-12, 500)
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("mass not conserved: %v", sum)
	}
	if rank[2] <= rank[0] || rank[2] <= rank[1] {
		t.Fatalf("sink not ranked highest: %v", rank)
	}
}

// TestKernelsOnGeneratedGraph: the full loop — generate with TrillionG,
// load CSR, run all three kernels — behaves like a scale-free graph:
// giant component, tiny BFS diameter, heavy-tailed PageRank.
func TestKernelsOnGeneratedGraph(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig(13)
	cfg.Workers = 1
	if _, err := core.Generate(cfg, core.FileSinks(dir, gformat.CSR6, cfg.NumVertices())); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "part-00000.csr6"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := gformat.ReadCSR6(f)
	if err != nil {
		t.Fatal(err)
	}

	if frac := LargestComponentFraction(g); frac < 0.7 {
		t.Fatalf("giant component fraction %v; scale-free graph expected > 0.7", frac)
	}
	root := MaxDegreeVertex(g)
	bfs, err := BFS(g, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(bfs.LevelSizes) > 12 {
		t.Fatalf("BFS depth %d; small world expected", len(bfs.LevelSizes))
	}
	if bfs.Visited < g.NumVertices/2 {
		t.Fatalf("BFS reached only %d of %d", bfs.Visited, g.NumVertices)
	}
	rank, iters := PageRank(g, 0.85, 1e-9, 200)
	if iters >= 200 {
		t.Fatal("PageRank did not converge")
	}
	// Heavy tail: the top vertex holds far more than the mean rank.
	var max float64
	for _, r := range rank {
		if r > max {
			max = r
		}
	}
	mean := 1 / float64(g.NumVertices)
	if max < 20*mean {
		t.Fatalf("max rank %v not ≫ mean %v; expected hub dominance", max, mean)
	}
}

func TestReverse(t *testing.T) {
	g := buildCSR(t, 4, map[int64][]int64{0: {1, 2}, 2: {1}, 3: {0}})
	rev := Reverse(g)
	if rev.NumEdges() != g.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", rev.NumEdges(), g.NumEdges())
	}
	want := map[int64][]int64{0: {3}, 1: {0, 2}, 2: {0}}
	for v := int64(0); v < 4; v++ {
		adj := rev.Adj(v)
		w := want[v]
		if len(adj) != len(w) {
			t.Fatalf("rev adj of %d = %v, want %v", v, adj, w)
		}
		for i := range w {
			if adj[i] != w[i] {
				t.Fatalf("rev adj of %d = %v, want %v", v, adj, w)
			}
		}
	}
}

// TestReverseRoundTrip: reversing twice restores the original.
func TestReverseRoundTrip(t *testing.T) {
	g := buildCSR(t, 6, map[int64][]int64{0: {5, 2}, 3: {3}, 5: {0, 1, 2}})
	back := Reverse(Reverse(g))
	for v := int64(0); v < 6; v++ {
		a, b := g.Adj(v), back.Adj(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: %v vs %v", v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: %v vs %v", v, a, b)
			}
		}
	}
}

// TestBFSUndirected: a directed chain is fully reachable from its tail
// only when edges are treated as undirected.
func TestBFSUndirected(t *testing.T) {
	g := buildCSR(t, 4, map[int64][]int64{0: {1}, 1: {2}, 2: {3}})
	rev := Reverse(g)
	directed, err := BFS(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if directed.Visited != 1 {
		t.Fatalf("directed BFS from sink visited %d", directed.Visited)
	}
	und, err := BFSUndirected(g, rev, 3)
	if err != nil {
		t.Fatal(err)
	}
	if und.Visited != 4 {
		t.Fatalf("undirected BFS visited %d, want 4", und.Visited)
	}
	if und.Depth[0] != 3 {
		t.Fatalf("depth of far end %d, want 3", und.Depth[0])
	}
}

func TestBFSUndirectedValidation(t *testing.T) {
	g := buildCSR(t, 2, map[int64][]int64{0: {1}})
	rev := Reverse(g)
	if _, err := BFSUndirected(g, rev, 9); err == nil {
		t.Fatal("expected root error")
	}
	small := buildCSR(t, 1, nil)
	if _, err := BFSUndirected(g, small, 0); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func benchGraph(b *testing.B) *gformat.CSRGraph {
	b.Helper()
	dir := b.TempDir()
	cfg := core.DefaultConfig(15)
	cfg.Workers = 1
	if _, err := core.Generate(cfg, core.FileSinks(dir, gformat.CSR6, cfg.NumVertices())); err != nil {
		b.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "part-00000.csr6"))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	g, err := gformat.ReadCSR6(f)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b)
	root := MaxDegreeVertex(g)
	b.ResetTimer()
	var traversed int64
	for i := 0; i < b.N; i++ {
		res, err := BFS(g, root)
		if err != nil {
			b.Fatal(err)
		}
		traversed += res.TraversedEdges
	}
	b.ReportMetric(float64(traversed)/b.Elapsed().Seconds()/1e6, "MTEPS")
}

func BenchmarkPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, 0.85, 1e-8, 50)
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g)
	}
}
