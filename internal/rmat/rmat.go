// Package rmat implements the classic RMAT generator of Chakrabarti et
// al. (the paper's Section 2.1 and the Figure 11 baselines): an edge is
// produced by log|V| recursive quadrant selections over the adjacency
// matrix, one fresh random value per recursion, and the whole edge set
// (Whole-Edges Scope) is deduplicated at once.
//
// Two duplicate-elimination strategies are provided, matching the
// paper's RMAT-mem and RMAT-disk baselines:
//
//   - Mem: an in-memory set over all |E| edges — O(|E|) space, the
//     reason RMAT-mem goes out of memory first in Figure 11a;
//   - Disk: bounded-memory external sort (extsort) — survives larger
//     scales but pays the full sort.
package rmat

import (
	"fmt"

	"repro/internal/extsort"
	"repro/internal/gformat"
	"repro/internal/memacct"
	"repro/internal/rng"
	"repro/internal/skg"
)

// Config parameterizes a run.
type Config struct {
	Seed     skg.Seed
	Levels   int   // log2|V|
	NumEdges int64 // distinct edges to produce
	// MemLimitBytes, when > 0, aborts the in-memory run with
	// ErrOutOfMemory once the tracked edge set exceeds the limit. It
	// models the 32 GB per-machine cap that produces the O.O.M. points
	// of Figure 11.
	MemLimitBytes int64
	// RunEdges bounds the in-memory run of the disk variant (default
	// 1<<20 edges).
	RunEdges int
}

// ErrOutOfMemory reports that the configured memory cap was exceeded —
// the "O.O.M." outcome in the paper's Figure 11.
var ErrOutOfMemory = fmt.Errorf("rmat: edge set exceeds memory limit")

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Seed.Validate(); err != nil {
		return err
	}
	if c.Levels < 1 || c.Levels > 47 {
		return fmt.Errorf("rmat: levels %d outside [1, 47]", c.Levels)
	}
	if c.NumEdges < 1 {
		return fmt.Errorf("rmat: NumEdges %d < 1", c.NumEdges)
	}
	return nil
}

// GenerateEdge performs one WES edge generation: log|V| recursive
// quadrant selections, each consuming one uniform random value
// (RMAT draws fresh randomness at every recursion — the cost Idea#3 of
// the recursive vector model removes).
func GenerateEdge(k skg.Seed, levels int, src *rng.Source) gformat.Edge {
	var u, v int64
	for i := 0; i < levels; i++ {
		x := src.Float64()
		var sb, db int64
		switch {
		case x < k.A:
			// upper-left: both bits 0
		case x < k.A+k.B:
			db = 1
		case x < k.A+k.B+k.C:
			sb = 1
		default:
			sb, db = 1, 1
		}
		u = u<<1 | sb
		v = v<<1 | db
	}
	return gformat.Edge{Src: u, Dst: v}
}

// Result summarizes a run.
type Result struct {
	Edges    int64 // distinct edges emitted
	Attempts int64 // stochastic trials including duplicates
}

// Mem runs RMAT with in-memory duplicate elimination (Algorithm 2 with
// a single scope): it keeps generating until NumEdges distinct edges
// exist, then emits them. The edge set is charged to acct; if
// MemLimitBytes is exceeded, ErrOutOfMemory is returned.
func Mem(cfg Config, masterSeed uint64, acct *memacct.Acct, emit func(gformat.Edge) error) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	src := rng.New(masterSeed)
	set := make(map[gformat.Edge]struct{}, cfg.NumEdges)
	var res Result
	var tracked int64
	defer func() {
		if acct != nil {
			acct.Add(-tracked)
		}
	}()
	for int64(len(set)) < cfg.NumEdges {
		e := GenerateEdge(cfg.Seed, cfg.Levels, src)
		res.Attempts++
		if _, dup := set[e]; dup {
			continue
		}
		set[e] = struct{}{}
		tracked += memacct.EdgeBytes
		if acct != nil {
			acct.Add(memacct.EdgeBytes)
		}
		if cfg.MemLimitBytes > 0 && tracked > cfg.MemLimitBytes {
			return res, ErrOutOfMemory
		}
	}
	for e := range set {
		res.Edges++
		if emit != nil {
			if err := emit(e); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// Disk runs RMAT with external-sort duplicate elimination (the paper's
// RMAT-disk): attempts are spilled to sorted runs; after each merge the
// deficit (duplicate shortfall) is regenerated with a 1% overshoot and
// merged again, converging in a round or two as Section 3.2's ε
// analysis predicts. Memory stays bounded by the run size.
func Disk(cfg Config, masterSeed uint64, dir string, acct *memacct.Acct, emit func(gformat.Edge) error) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	runEdges := cfg.RunEdges
	if runEdges <= 0 {
		runEdges = 1 << 20
	}
	sorter, err := extsort.NewSorter(dir, runEdges, acct)
	if err != nil {
		return Result{}, err
	}
	src := rng.New(masterSeed)
	var res Result
	target := cfg.NumEdges
	pending := target // distinct edges still needed
	const maxRounds = 12
	for round := 0; round < maxRounds && pending > 0; round++ {
		// 1% overshoot absorbs expected duplicates (ε of Section 3.2).
		n := pending + pending/100 + 1
		for i := int64(0); i < n; i++ {
			if err := sorter.Add(GenerateEdge(cfg.Seed, cfg.Levels, src)); err != nil {
				return res, err
			}
			res.Attempts++
		}
		// Count distinct without emitting: re-merge keeps runs? Merge
		// consumes runs, so write the merged stream back as one run via
		// a fresh sorter when another round may be needed.
		next, err := extsort.NewSorter(dir, runEdges, acct)
		if err != nil {
			return res, err
		}
		var distinct int64
		if _, err := sorter.Merge(func(e gformat.Edge) error {
			if distinct >= target { // excess beyond target is dropped
				return nil
			}
			distinct++
			return next.Add(e)
		}); err != nil {
			return res, err
		}
		sorter = next
		pending = target - distinct
	}
	if pending > 0 {
		return res, fmt.Errorf("rmat: disk dedup did not converge (missing %d edges)", pending)
	}
	n, err := sorter.Merge(emit)
	res.Edges = n
	return res, err
}
