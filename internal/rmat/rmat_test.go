package rmat

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gformat"
	"repro/internal/memacct"
	"repro/internal/rng"
	"repro/internal/skg"
	"repro/internal/stats"
)

func cfg(levels int, edges int64) Config {
	return Config{Seed: skg.Graph500Seed, Levels: levels, NumEdges: edges}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg(10, 100).Validate(); err != nil {
		t.Fatal(err)
	}
	c := cfg(0, 100)
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for levels 0")
	}
	c = cfg(10, 0)
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for 0 edges")
	}
	c = Config{Seed: skg.Seed{A: 2}, Levels: 10, NumEdges: 1}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for bad seed")
	}
}

// TestGenerateEdgeDistribution: the quadrant-selection edge generator
// follows Proposition 1's cell probabilities.
func TestGenerateEdgeDistribution(t *testing.T) {
	k := skg.Graph500Seed
	const levels = 3
	n := int64(1) << levels
	src := rng.New(1)
	const draws = 400000
	obs := make([]float64, n*n)
	for i := 0; i < draws; i++ {
		e := GenerateEdge(k, levels, src)
		obs[e.Src*n+e.Dst]++
	}
	expect := make([]float64, n*n)
	for u := int64(0); u < n; u++ {
		for v := int64(0); v < n; v++ {
			expect[u*n+v] = float64(draws) * skg.EdgeProb(k, u, v, levels)
		}
	}
	stat := stats.ChiSquare(obs, expect, 5)
	// 63 dof; 99.9th percentile ≈ 106.
	if stat > 130 {
		t.Fatalf("chi-square %v too large", stat)
	}
}

func TestMemProducesExactCount(t *testing.T) {
	c := cfg(10, 5000)
	seen := make(map[gformat.Edge]struct{})
	res, err := Mem(c, 7, nil, func(e gformat.Edge) error {
		if e.Src < 0 || e.Src >= 1024 || e.Dst < 0 || e.Dst >= 1024 {
			t.Fatalf("edge %v out of range", e)
		}
		if _, dup := seen[e]; dup {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != 5000 || len(seen) != 5000 {
		t.Fatalf("edges %d / %d, want 5000", res.Edges, len(seen))
	}
	if res.Attempts < res.Edges {
		t.Fatalf("attempts %d < edges %d", res.Attempts, res.Edges)
	}
}

func TestMemOutOfMemory(t *testing.T) {
	c := cfg(14, 1<<14)
	c.MemLimitBytes = 1024 * memacct.EdgeBytes // far below the edge set
	_, err := Mem(c, 3, nil, nil)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestMemAccountsEdgeSet(t *testing.T) {
	var acct memacct.Acct
	c := cfg(12, 4000)
	if _, err := Mem(c, 5, &acct, nil); err != nil {
		t.Fatal(err)
	}
	if acct.Current() != 0 {
		t.Fatalf("leaked %d bytes", acct.Current())
	}
	if acct.Peak() != 4000*memacct.EdgeBytes {
		t.Fatalf("peak %d, want %d (O(|E|))", acct.Peak(), 4000*memacct.EdgeBytes)
	}
}

func TestDiskMatchesMemCount(t *testing.T) {
	c := cfg(11, 8000)
	c.RunEdges = 1024 // force many runs
	seen := make(map[gformat.Edge]struct{})
	res, err := Disk(c, 9, t.TempDir(), nil, func(e gformat.Edge) error {
		if _, dup := seen[e]; dup {
			t.Fatalf("duplicate %v from disk path", e)
		}
		seen[e] = struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != 8000 {
		t.Fatalf("disk produced %d edges, want 8000", res.Edges)
	}
}

func TestDiskBoundedMemory(t *testing.T) {
	var acct memacct.Acct
	c := cfg(12, 20000)
	c.RunEdges = 2000
	if _, err := Disk(c, 11, t.TempDir(), &acct, nil); err != nil {
		t.Fatal(err)
	}
	if acct.Peak() > int64(c.RunEdges)*memacct.EdgeBytes*2 {
		t.Fatalf("disk peak %d not bounded by run size", acct.Peak())
	}
}

// TestMemDegreeDistributionMatchesAVS: RMAT and the recursive vector
// model must produce statistically identical out-degree distributions
// (the premise of Figure 8). Here we check RMAT's out-degrees against
// the theoretical binomial means per popcount class.
func TestMemDegreeClassMeans(t *testing.T) {
	// Keep density low (edge factor 4 at scale 14): duplicate removal
	// inflates low-probability cells when the graph is dense, which is a
	// genuine property of "distinct |E| edges" generation, not a bug.
	c := cfg(14, 1<<16)
	counter := stats.NewDegreeCounter()
	if _, err := Mem(c, 13, nil, func(e gformat.Edge) error {
		counter.AddEdge(e.Src, e.Dst)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Mean degree of popcount class k ≈ |E|(α+β)^{L−k}(γ+δ)^k; compare
	// the dominant classes (k = 3..7 of 12 have plenty of vertices).
	sums := make([]float64, c.Levels+1)
	ns := make([]float64, c.Levels+1)
	for u, d := range counter.OutByVertex() {
		k := popcount(u)
		sums[k] += float64(d)
		ns[k]++
	}
	for k := 3; k <= 7; k++ {
		nv := choose(c.Levels, k)
		ns[k] = float64(nv) // include degree-0 vertices of the class
		mean := sums[k] / ns[k]
		want := float64(c.NumEdges) * math.Pow(0.76, float64(c.Levels-k)) * math.Pow(0.24, float64(k))
		if math.Abs(mean-want) > 0.15*want+0.5 {
			t.Fatalf("class %d mean %v, want ≈ %v", k, mean, want)
		}
	}
}

func popcount(v int64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func choose(n, k int) int64 {
	r := int64(1)
	for i := 0; i < k; i++ {
		r = r * int64(n-i) / int64(i+1)
	}
	return r
}

func BenchmarkGenerateEdge(b *testing.B) {
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		GenerateEdge(skg.Graph500Seed, 30, src)
	}
}
