package skg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const eps = 1e-12

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestValidate(t *testing.T) {
	if err := Graph500Seed.Validate(); err != nil {
		t.Fatalf("Graph500 seed invalid: %v", err)
	}
	if err := UniformSeed.Validate(); err != nil {
		t.Fatalf("uniform seed invalid: %v", err)
	}
	bad := Seed{A: 0.6, B: 0.6, C: 0.1, D: 0.1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation failure for sum > 1")
	}
	neg := Seed{A: -0.1, B: 0.6, C: 0.3, D: 0.2}
	if err := neg.Validate(); err == nil {
		t.Fatal("expected validation failure for negative entry")
	}
}

func TestAtAndSums(t *testing.T) {
	k := Graph500Seed
	if k.At(0, 0) != k.A || k.At(0, 1) != k.B || k.At(1, 0) != k.C || k.At(1, 1) != k.D {
		t.Fatal("At addresses wrong entries")
	}
	if !approxEq(k.RowSum(0), k.A+k.B, eps) || !approxEq(k.RowSum(1), k.C+k.D, eps) {
		t.Fatal("RowSum wrong")
	}
	if !approxEq(k.ColSum(0), k.A+k.C, eps) || !approxEq(k.ColSum(1), k.B+k.D, eps) {
		t.Fatal("ColSum wrong")
	}
}

func TestTranspose(t *testing.T) {
	k := Seed{A: 0.5, B: 0.2, C: 0.25, D: 0.05}
	tr := k.Transpose()
	if tr.A != k.A || tr.D != k.D || tr.B != k.C || tr.C != k.B {
		t.Fatalf("transpose wrong: %+v", tr)
	}
	// An edge (u,v) under k has the probability of (v,u) under transpose.
	for u := int64(0); u < 8; u++ {
		for v := int64(0); v < 8; v++ {
			if !approxEq(EdgeProb(k, u, v, 3), EdgeProb(tr, v, u, 3), eps) {
				t.Fatalf("transpose probability mismatch at (%d,%d)", u, v)
			}
		}
	}
}

// TestEdgeProbPaperExample reproduces Figure 3 of the paper: with seed
// [0.5, 0.2; 0.2, 0.1] and 3 levels, row 2 is
// [0.05, 0.02, 0.025, 0.01, 0.02, 0.008, 0.01, 0.004].
func TestEdgeProbPaperExample(t *testing.T) {
	k := Seed{A: 0.5, B: 0.2, C: 0.2, D: 0.1}
	want := []float64{0.05, 0.02, 0.025, 0.01, 0.02, 0.008, 0.01, 0.004}
	for v, w := range want {
		got := EdgeProb(k, 2, int64(v), 3)
		if !approxEq(got, w, 1e-9) {
			t.Fatalf("K_{2,%d} = %v, want %v", v, got, w)
		}
	}
}

func TestRowProbPaperExample(t *testing.T) {
	// Paper: P_{2→} = 0.147 for the Figure 3 seed.
	k := Seed{A: 0.5, B: 0.2, C: 0.2, D: 0.1}
	if got := RowProb(k, 2, 3); !approxEq(got, 0.147, 1e-9) {
		t.Fatalf("P_2→ = %v, want 0.147", got)
	}
}

// TestRowProbIsRowSum checks Lemma 1 against Proposition 1 exhaustively:
// the row probability equals the sum of the row's edge probabilities.
func TestRowProbIsRowSum(t *testing.T) {
	for _, k := range []Seed{Graph500Seed, UniformSeed, {A: 0.4, B: 0.3, C: 0.2, D: 0.1}} {
		const levels = 6
		n := int64(1) << levels
		for u := int64(0); u < n; u++ {
			var sum float64
			for v := int64(0); v < n; v++ {
				sum += EdgeProb(k, u, v, levels)
			}
			if !approxEq(sum, RowProb(k, u, levels), 1e-10) {
				t.Fatalf("seed %+v: row %d sum %v != Lemma1 %v", k, u, sum, RowProb(k, u, levels))
			}
		}
	}
}

func TestColProbIsColSum(t *testing.T) {
	k := Graph500Seed
	const levels = 6
	n := int64(1) << levels
	for v := int64(0); v < n; v++ {
		var sum float64
		for u := int64(0); u < n; u++ {
			sum += EdgeProb(k, u, v, levels)
		}
		if !approxEq(sum, ColProb(k, v, levels), 1e-10) {
			t.Fatalf("col %d sum %v != ColProb %v", v, sum, ColProb(k, v, levels))
		}
	}
}

// TestTotalMassIsOne: the expanded Kronecker matrix is a probability
// distribution over all cells.
func TestTotalMassIsOne(t *testing.T) {
	m := Expand(Graph500Seed, 5)
	var sum float64
	for _, p := range m {
		sum += p
	}
	if !approxEq(sum, 1, 1e-9) {
		t.Fatalf("total mass %v, want 1", sum)
	}
}

func TestExpandMatchesEdgeProb(t *testing.T) {
	k := Seed{A: 0.45, B: 0.25, C: 0.2, D: 0.1}
	const levels = 4
	n := int64(1) << levels
	m := Expand(k, levels)
	for u := int64(0); u < n; u++ {
		for v := int64(0); v < n; v++ {
			if !approxEq(m[u*n+v], EdgeProb(k, u, v, levels), eps) {
				t.Fatalf("Expand mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestExpandPanicsOnHugeLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Expand(Graph500Seed, 20)
}

// TestKroneckerRecurrence: K^{⊗(l+1)} is the Kronecker product of the
// seed with K^{⊗l} — checked elementwise through EdgeProb.
func TestKroneckerRecurrence(t *testing.T) {
	k := Graph500Seed
	const levels = 5
	n := int64(1) << levels
	for u := int64(0); u < 2*n; u++ {
		for v := int64(0); v < 2*n; v++ {
			top := k.At(uint64(u)>>levels, uint64(v)>>levels)
			inner := EdgeProb(k, u%n, v%n, levels)
			if !approxEq(EdgeProb(k, u, v, levels+1), top*inner, eps) {
				t.Fatalf("recurrence fails at (%d,%d)", u, v)
			}
		}
	}
}

func TestZipfSlopeGraph500(t *testing.T) {
	// Paper Section 6.1: the Graph500 seed matches a Zipfian slope of
	// −1.662 (out-degree). log2(0.24) − log2(0.76) ≈ −1.6630…; the paper
	// rounds to -1.662, accept 1e-2.
	got := Graph500Seed.OutZipfSlope()
	if math.Abs(got-(-1.662)) > 1e-2 {
		t.Fatalf("out slope %v, want ≈ −1.662", got)
	}
	if !approxEq(Graph500Seed.InZipfSlope(), got, eps) {
		t.Fatal("symmetric seed must have equal in and out slopes")
	}
}

func TestExpectedOnesFractionGraph500(t *testing.T) {
	// The exact marginal probability of a 1 bit in a destination ID is
	// β+δ = 0.24, i.e. recursions shrink by 1/0.24 ≈ 4.17x (the paper's
	// prose says 4.917 but that follows from neither its own formula nor
	// the exact marginal; see EXPERIMENTS.md).
	got := ExpectedOnesFraction(Graph500Seed)
	if !approxEq(got, 0.24, eps) {
		t.Fatalf("ones fraction = %v, want 0.24", got)
	}
	// Cross-check the marginal by brute force over the expanded matrix:
	// E[popcount(v)] over edge-probability-weighted cells.
	const levels = 6
	m := Expand(Graph500Seed, levels)
	n := int64(1) << levels
	var e float64
	for u := int64(0); u < n; u++ {
		for v := int64(0); v < n; v++ {
			e += m[u*n+v] * float64(popcount(v))
		}
	}
	if math.Abs(e/levels-got) > 1e-9 {
		t.Fatalf("empirical ones fraction %v, want %v", e/levels, got)
	}
}

func popcount(v int64) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}

func TestExpectedOnesFractionUniform(t *testing.T) {
	// With the uniform seed, half the bits should be ones.
	got := ExpectedOnesFraction(UniformSeed)
	if !approxEq(got, 0.5, eps) {
		t.Fatalf("uniform ones fraction %v, want 0.5", got)
	}
}

func TestMaxNoise(t *testing.T) {
	if got, want := MaxNoise(Graph500Seed), 0.19; !approxEq(got, want, eps) {
		t.Fatalf("MaxNoise = %v, want %v", got, want)
	}
}

func TestNewNoiseValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := NewNoise(Graph500Seed, 10, -0.1, src); err == nil {
		t.Fatal("expected error for negative noise")
	}
	if _, err := NewNoise(Graph500Seed, 10, 0.5, src); err == nil {
		t.Fatal("expected error for noise above bound")
	}
	if _, err := NewNoise(Graph500Seed, 10, 0.1, src); err != nil {
		t.Fatalf("valid noise rejected: %v", err)
	}
}

func TestZeroNoiseIsSKG(t *testing.T) {
	src := rng.New(2)
	ns, err := NewNoise(Graph500Seed, 8, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ns.Levels(); i++ {
		if ns.Level(i) != Graph500Seed {
			t.Fatalf("level %d differs from base under zero noise", i)
		}
	}
	for u := int64(0); u < 16; u++ {
		if !approxEq(ns.RowProb(u, 8), RowProb(Graph500Seed, u, 8), eps) {
			t.Fatalf("zero-noise RowProb differs at u=%d", u)
		}
	}
}

// TestNoisyLevelsAreStochastic: every noisy level matrix still sums to 1
// and has non-negative entries (within the admissible noise bound).
func TestNoisyLevelsAreStochastic(t *testing.T) {
	src := rng.New(3)
	ns, err := NewNoise(Graph500Seed, 32, 0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ns.Levels(); i++ {
		if err := ns.Level(i).Validate(); err != nil {
			t.Fatalf("noisy level %d invalid: %v (mu=%v)", i, err, ns.Mu(i))
		}
	}
}

// TestLemma7AgainstDirectSum validates the closed form of the noisy row
// probability against brute-force summation over all destinations using
// the actual noisy level matrices.
func TestLemma7AgainstDirectSum(t *testing.T) {
	src := rng.New(4)
	const levels = 7
	ns, err := NewNoise(Graph500Seed, levels, 0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1) << levels
	for u := int64(0); u < n; u += 5 {
		var sum float64
		for v := int64(0); v < n; v++ {
			sum += ns.EdgeProbNoisy(u, v, levels)
		}
		if got := ns.RowProb(u, levels); !approxEq(got, sum, 1e-10) {
			t.Fatalf("Lemma 7 mismatch at u=%d: closed %v, direct %v", u, got, sum)
		}
	}
}

// TestNoisyTotalMass: the noisy Kronecker matrix remains a probability
// distribution (each level is stochastic, so the product is too).
func TestNoisyTotalMass(t *testing.T) {
	src := rng.New(5)
	const levels = 6
	ns, err := NewNoise(Graph500Seed, levels, 0.15, src)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1) << levels
	var sum float64
	for u := int64(0); u < n; u++ {
		sum += ns.RowProb(u, levels)
	}
	if !approxEq(sum, 1, 1e-9) {
		t.Fatalf("noisy total mass %v, want 1", sum)
	}
}

// Property: EdgeProb of any valid seed is within [0,1] and multiplying
// u's bits never increases row mass for seeds with α+β > γ+δ.
func TestEdgeProbProperty(t *testing.T) {
	k := Graph500Seed
	f := func(u, v uint16) bool {
		p := EdgeProb(k, int64(u), int64(v), 16)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowProbMonotoneInOnes(t *testing.T) {
	// For the Graph500 seed (α+β=0.76 > γ+δ=0.24), vertices with more 1
	// bits have strictly smaller row probability.
	k := Graph500Seed
	f := func(u uint16) bool {
		const levels = 16
		u64 := int64(u)
		p := RowProb(k, u64, levels)
		// Setting any additional zero-bit to one must shrink the mass.
		for b := 0; b < levels; b++ {
			if u64&(1<<b) == 0 {
				if RowProb(k, u64|1<<b, levels) >= p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEdgeProb(b *testing.B) {
	k := Graph500Seed
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += EdgeProb(k, int64(i), int64(i*7), 30)
	}
	_ = sink
}

func BenchmarkRowProb(b *testing.B) {
	k := Graph500Seed
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += RowProb(k, int64(i), 30)
	}
	_ = sink
}

// TestNoiseTranspose: level matrices transpose entrywise and stay
// stochastic; double transpose is the identity.
func TestNoiseTranspose(t *testing.T) {
	src := rng.New(61)
	ns, err := NewNoise(Graph500Seed, 12, 0.12, src)
	if err != nil {
		t.Fatal(err)
	}
	tr := ns.Transpose()
	if tr.Base() != Graph500Seed.Transpose() {
		t.Fatalf("transposed base %+v", tr.Base())
	}
	for i := 0; i < ns.Levels(); i++ {
		a, b := ns.Level(i), tr.Level(i)
		if b != a.Transpose() {
			t.Fatalf("level %d: %+v vs %+v", i, a, b)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("transposed level %d invalid: %v", i, err)
		}
		if tr.Mu(i) != ns.Mu(i) {
			t.Fatalf("mu %d changed", i)
		}
	}
	back := tr.Transpose()
	for i := 0; i < ns.Levels(); i++ {
		if back.Level(i) != ns.Level(i) {
			t.Fatalf("double transpose not identity at level %d", i)
		}
	}
}

// TestNoiseParamAccessor.
func TestNoiseParamAccessor(t *testing.T) {
	src := rng.New(67)
	ns, err := NewNoise(Graph500Seed, 4, 0.07, src)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Param() != 0.07 {
		t.Fatalf("Param = %v", ns.Param())
	}
	if ns.Base() != Graph500Seed {
		t.Fatal("Base changed")
	}
}

// TestFitSeed: fitted seeds reproduce both requested slopes exactly and
// assortativity moves diagonal mass without touching the marginals.
func TestFitSeed(t *testing.T) {
	for _, c := range []struct{ out, in, assort float64 }{
		{-1.662, -1.662, 0},
		{-1.0, -2.5, 0},
		{-1.3, -1.3, 0.7},
		{-2.0, -1.1, -0.5},
	} {
		k, err := FitSeed(c.out, c.in, c.assort)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if math.Abs(k.OutZipfSlope()-c.out) > 1e-12 {
			t.Fatalf("%+v: out slope %v", c, k.OutZipfSlope())
		}
		if math.Abs(k.InZipfSlope()-c.in) > 1e-12 {
			t.Fatalf("%+v: in slope %v", c, k.InZipfSlope())
		}
	}
	base, _ := FitSeed(-1.5, -1.5, 0)
	pos, _ := FitSeed(-1.5, -1.5, 0.8)
	if pos.A <= base.A || pos.D <= base.D {
		t.Fatal("positive assortativity should grow diagonal mass")
	}
	if _, err := FitSeed(1, -1, 0); err == nil {
		t.Fatal("expected slope error")
	}
	if _, err := FitSeed(-1, -1, 1.5); err == nil {
		t.Fatal("expected assortativity error")
	}
}
