package recvec

import (
	"math/big"

	"repro/internal/skg"
)

// BigVector is the high-precision recursive vector backend, standing in
// for the paper's Scala BigDecimal RecVec (Section 5). At trillion scale
// (levels ≥ 36) the smallest CDF entries of a skewed seed underflow the
// relative precision of float64 enough to misplace destinations near
// quadrant boundaries; BigVector keeps every entry at a configurable
// mantissa precision (default 128 bits, matching the paper's reference
// to IEEE binary128).
type BigVector struct {
	levels int
	u      int64
	prec   uint
	f      []*big.Float
	sigma  []*big.Float
}

// DefaultBigPrec is the default mantissa precision in bits.
const DefaultBigPrec = 128

// NewBig builds the high-precision recursive vector of source vertex u,
// following the same Lemma 2 recurrence as New. prec == 0 selects
// DefaultBigPrec.
func NewBig(k skg.Seed, u int64, levels int, prec uint) *BigVector {
	if prec == 0 {
		prec = DefaultBigPrec
	}
	v := &BigVector{
		levels: levels,
		u:      u,
		prec:   prec,
		f:      make([]*big.Float, levels+1),
		sigma:  make([]*big.Float, levels),
	}
	nf := func(x float64) *big.Float { return big.NewFloat(x).SetPrec(prec) }
	p := nf(1)
	for x := 0; x < levels; x++ {
		p.Mul(p, nf(k.RowSum((uint64(u)>>uint(x))&1)))
	}
	v.f[levels] = p
	for x := levels - 1; x >= 0; x-- {
		srcBit := (uint64(u) >> uint(x)) & 1
		row := k.RowSum(srcBit)
		frac := nf(0)
		if row > 0 {
			frac.Quo(nf(k.At(srcBit, 0)), nf(row))
		}
		v.f[x] = new(big.Float).SetPrec(prec).Mul(v.f[x+1], frac)
	}
	for i := 0; i < levels; i++ {
		s := new(big.Float).SetPrec(prec).Sub(v.f[i+1], v.f[i])
		if v.f[i].Sign() > 0 {
			s.Quo(s, v.f[i])
		}
		v.sigma[i] = s
	}
	return v
}

// Levels returns log2|V|.
func (v *BigVector) Levels() int { return v.levels }

// RowProb returns P_{u→} as a float64 (for drawing the uniform value;
// the draw itself does not need extended precision, only the vector
// arithmetic does).
func (v *BigVector) RowProb() float64 {
	out, _ := v.f[v.levels].Float64()
	return out
}

// At returns F_u(2^x) rounded to float64.
func (v *BigVector) At(x int) float64 {
	out, _ := v.f[x].Float64()
	return out
}

// Determine maps a uniform value x ∈ [0, RowProb()) to a destination
// vertex with all CDF arithmetic done at the vector's precision.
func (v *BigVector) Determine(x float64) int64 {
	bx := big.NewFloat(x).SetPrec(v.prec)
	var dst int64
	prev := v.levels
	for bx.Sign() > 0 && bx.Cmp(v.f[0]) >= 0 {
		k := v.search(bx)
		if k >= prev {
			k = prev - 1
			if k < 0 {
				break
			}
		}
		prev = k
		dst |= 1 << uint(k)
		bx.Sub(bx, v.f[k])
		if v.sigma[k].Sign() > 0 {
			bx.Quo(bx, v.sigma[k])
		} else {
			bx.SetInt64(0)
		}
	}
	return dst
}

func (v *BigVector) search(x *big.Float) int {
	lo, hi := 0, v.levels
	for lo < hi {
		mid := (lo + hi) / 2
		if v.f[mid].Cmp(x) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}
