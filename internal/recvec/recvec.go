// Package recvec implements the paper's primary contribution: the
// recursive vector model (Section 4).
//
// For a source vertex u of a 2^levels-vertex SKG/RMAT graph, the
// recursive vector RecVec[x] = F_u(2^x), x ∈ [0, levels], stores the
// cumulative probability mass of destinations 0..2^x−1 (Definition 2).
// The vector is built in O(levels) time via Lemma 2 (or its NSKG
// extension, Lemma 8) and a destination vertex is recovered from a single
// uniform random value by the recursive translation of Theorem 2 using
// scale symmetry (Lemma 3) and translational symmetry (Lemma 4).
//
// The package also contains:
//
//   - the naive CDF vector of Section 4.2 (O(|V|) space) with linear and
//     binary search, used as the exactness reference and for Table 2;
//   - ablation variants of the three key performance ideas of
//     Section 4.3, driving the Figure 13 reproduction;
//   - a math/big.Float backend standing in for the paper's BigDecimal
//     RecVec (Section 5).
package recvec

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/skg"
)

// Vector is the recursive vector of one source vertex: levels+1 CDF
// values at power-of-two positions, plus the precomputed scale-symmetry
// ratios σ_k (Lemma 3). Values are float64; see BigVector for the
// high-precision backend.
type Vector struct {
	levels int
	u      int64
	// f[x] = F_u(2^x); non-decreasing, f[levels] = P_{u→}.
	f []float64
	// sigma[k] = (f[k+1]-f[k])/f[k], the Lemma 3 ratio of bit k.
	sigma []float64
}

// New builds the recursive vector of source vertex u via Lemma 2 in
// O(levels) time. Bit k of u (LSB = bit 0) selects the seed row used at
// destination-bit position k.
func New(k skg.Seed, u int64, levels int) *Vector {
	v := &Vector{levels: levels, u: u, f: make([]float64, levels+1), sigma: make([]float64, levels)}
	// f[levels] = P_{u→} (Lemma 1); walk down multiplying the
	// conditional "destination bit x is 0" factor of each position.
	p := 1.0
	for x := 0; x < levels; x++ {
		p *= k.RowSum((uint64(u) >> uint(x)) & 1)
	}
	v.f[levels] = p
	for x := levels - 1; x >= 0; x-- {
		srcBit := (uint64(u) >> uint(x)) & 1
		row := k.RowSum(srcBit)
		var frac float64
		if row > 0 {
			frac = k.At(srcBit, 0) / row
		}
		v.f[x] = v.f[x+1] * frac
	}
	v.fillSigma()
	return v
}

// NewNoisy builds the NSKG recursive vector RecVec′ (Lemma 8) for source
// vertex u. Kronecker level i (0 = MSB) of the noise applies to vertex
// bit position levels−1−i.
func NewNoisy(ns *skg.Noise, u int64, levels int) *Vector {
	if ns.Levels() < levels {
		panic(fmt.Sprintf("recvec: noise has %d levels, need %d", ns.Levels(), levels))
	}
	v := &Vector{levels: levels, u: u, f: make([]float64, levels+1), sigma: make([]float64, levels)}
	p := 1.0
	for x := 0; x < levels; x++ {
		lev := ns.Level(levels - 1 - x)
		p *= lev.RowSum((uint64(u) >> uint(x)) & 1)
	}
	v.f[levels] = p
	for x := levels - 1; x >= 0; x-- {
		srcBit := (uint64(u) >> uint(x)) & 1
		lev := ns.Level(levels - 1 - x)
		row := lev.RowSum(srcBit)
		var frac float64
		if row > 0 {
			frac = lev.At(srcBit, 0) / row
		}
		v.f[x] = v.f[x+1] * frac
	}
	v.fillSigma()
	return v
}

// NewRef builds the vector by direct Definition 2 summation of
// Proposition 1 probabilities in O(2^levels · levels) time. It exists so
// tests can validate the Lemma 2 closed form; levels is capped.
func NewRef(k skg.Seed, u int64, levels int) *Vector {
	if levels > 20 {
		panic("recvec: NewRef is exponential; levels capped at 20")
	}
	v := &Vector{levels: levels, u: u, f: make([]float64, levels+1), sigma: make([]float64, levels)}
	var sum float64
	next := int64(1) // 2^x boundary to record
	x := 0
	for dst := int64(0); dst < 1<<uint(levels); dst++ {
		sum += skg.EdgeProb(k, u, dst, levels)
		if dst == next-1 {
			v.f[x] = sum
			x++
			next <<= 1
		}
	}
	v.fillSigma()
	return v
}

func (v *Vector) fillSigma() {
	for k := 0; k < v.levels; k++ {
		if v.f[k] > 0 {
			v.sigma[k] = (v.f[k+1] - v.f[k]) / v.f[k]
		} else {
			v.sigma[k] = math.Inf(1)
		}
	}
}

// Levels returns log2|V|.
func (v *Vector) Levels() int { return v.levels }

// Source returns the source vertex the vector was built for.
func (v *Vector) Source() int64 { return v.u }

// At returns F_u(2^x).
func (v *Vector) At(x int) float64 { return v.f[x] }

// RowProb returns P_{u→} = F_u(|V|), the total probability mass of the
// scope. This is the upper bound of the uniform draw in Algorithm 4.
func (v *Vector) RowProb() float64 { return v.f[v.levels] }

// Sigma returns the Lemma 3 ratio σ_{u[k]} of bit position k.
func (v *Vector) Sigma(k int) float64 { return v.sigma[k] }

// searchBinary returns the largest k with f[k] <= x, i.e. the index
// selected in step (2) of Theorem 2, via binary search on the
// non-decreasing vector: O(log levels) per call.
func (v *Vector) searchBinary(x float64) int {
	lo, hi := 0, v.levels // invariant: f[lo] <= x, f[hi] > x is not guaranteed at entry
	// Find first index i in (0, levels] with f[i] > x; answer is i-1.
	// Caller guarantees f[0] <= x < f[levels].
	for lo < hi {
		mid := (lo + hi) / 2
		if v.f[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// searchLinear is the linear-scan variant of searchBinary, provided
// because for vectors of length ≤ ~40 a branch-predictable linear scan
// can beat binary search (Table 2 ablation).
func (v *Vector) searchLinear(x float64) int {
	k := 0
	for k < v.levels && v.f[k+1] <= x {
		k++
	}
	return k
}

// Determine implements Theorem 2 / Algorithm 5: it maps a uniform random
// value x ∈ [0, RowProb()) to a destination vertex. This is the
// production path: sparse recursion (Idea#2), a single random value
// translated in place (Idea#3), binary search within the vector.
func (v *Vector) Determine(x float64) int64 {
	var dst int64
	prev := v.levels // selected bit indices are strictly decreasing
	for x >= v.f[0] && x > 0 {
		k := v.searchBinary(x)
		// Strict decrease guarantees termination; float rounding in the
		// translation below can otherwise pin x at a boundary.
		if k >= prev {
			k = prev - 1
			if k < 0 {
				break
			}
		}
		prev = k
		dst |= 1 << uint(k)
		x = (x - v.f[k]) / v.sigma[k]
	}
	return dst
}

// Options selects an ablation variant of edge determination. The zero
// value disables every idea (the RMAT-like worst case given the same
// stochastic model); Production() enables all three.
type Options struct {
	// ReuseVector (Idea#1): when false, the generator rebuilds the vector
	// before every edge instead of reusing the per-scope one.
	ReuseVector bool
	// SparseRecursion (Idea#2): when true, recursion count equals the
	// number of 1 bits in the destination ID (Theorem 2 search); when
	// false a full levels-step descent is performed.
	SparseRecursion bool
	// SingleRandom (Idea#3): when true, one uniform value is drawn per
	// edge and translated; when false a fresh uniform is drawn at every
	// recursion step.
	SingleRandom bool
	// LinearSearch switches the in-vector search from binary to linear
	// scan (Table 2 ablation; orthogonal to the paper's three ideas).
	LinearSearch bool
}

// Production returns the options of the real TrillionG path.
func Production() Options {
	return Options{ReuseVector: true, SparseRecursion: true, SingleRandom: true}
}

// DetermineOpt maps a uniform value to a destination under the given
// ablation options, drawing any extra randomness from src. The returned
// destination follows the same distribution for every option combination
// (property-tested); only the work performed differs.
func (v *Vector) DetermineOpt(x float64, src *rng.Source, o Options) int64 {
	if o.SparseRecursion {
		return v.determineSparse(x, src, o)
	}
	return v.determineFull(x, src, o)
}

func (v *Vector) determineSparse(x float64, src *rng.Source, o Options) int64 {
	var dst int64
	prev := v.levels
	for x >= v.f[0] && x > 0 {
		var k int
		if o.LinearSearch {
			k = v.searchLinear(x)
		} else {
			k = v.searchBinary(x)
		}
		if k >= prev {
			k = prev - 1
			if k < 0 {
				break
			}
		}
		prev = k
		dst |= 1 << uint(k)
		if o.SingleRandom {
			x = (x - v.f[k]) / v.sigma[k]
		} else {
			// The conditional distribution of the remainder is uniform on
			// [0, f[k]); redrawing is distributionally identical.
			x = src.UniformTo(v.f[k])
		}
	}
	return dst
}

// determineFull walks every bit position from MSB to LSB (levels steps),
// which is what the model costs without Idea#2. The invariant is
// x ∈ [0, f[k+1]) at the start of step k.
func (v *Vector) determineFull(x float64, src *rng.Source, o Options) int64 {
	var dst int64
	for k := v.levels - 1; k >= 0; k-- {
		if x >= v.f[k] {
			dst |= 1 << uint(k)
			if o.SingleRandom {
				x = (x - v.f[k]) / v.sigma[k]
			} else {
				x = src.UniformTo(v.f[k])
			}
		} else if !o.SingleRandom {
			// Redraw within the kept region to mirror RMAT's
			// one-random-value-per-recursion behaviour.
			x = src.UniformTo(v.f[k])
		}
	}
	return dst
}

// CDFVector is the naive Section 4.2 data structure: the full cumulative
// distribution F_u(r) for r ∈ [1, |V|], taking O(|V|) space. It is the
// exactness oracle for Determine and the subject of Table 2.
type CDFVector struct {
	levels int
	u      int64
	// cum[r] = F_u(r+1) = Σ_{v=0..r} P_{u→v}.
	cum []float64
}

// NewCDF builds the naive CDF vector by direct summation. levels is
// capped because the structure is exponential in it.
func NewCDF(k skg.Seed, u int64, levels int) *CDFVector {
	if levels > 24 {
		panic("recvec: NewCDF is O(2^levels) space; levels capped at 24")
	}
	n := int64(1) << uint(levels)
	c := &CDFVector{levels: levels, u: u, cum: make([]float64, n)}
	var sum float64
	for dst := int64(0); dst < n; dst++ {
		sum += skg.EdgeProb(k, u, dst, levels)
		c.cum[dst] = sum
	}
	return c
}

// Total returns F_u(|V|) = P_{u→}.
func (c *CDFVector) Total() float64 { return c.cum[len(c.cum)-1] }

// DetermineBinary finds F⁻¹_u(x) by binary search: O(log |V|).
func (c *CDFVector) DetermineBinary(x float64) int64 {
	lo, hi := 0, len(c.cum)-1
	// Find the smallest r with cum[r] > x.
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

// DetermineLinear finds F⁻¹_u(x) by linear scan: O(|V|).
func (c *CDFVector) DetermineLinear(x float64) int64 {
	for r, v := range c.cum {
		if v > x {
			return int64(r)
		}
	}
	return int64(len(c.cum) - 1)
}
