package recvec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/skg"
)

var paperSeed = skg.Seed{A: 0.5, B: 0.2, C: 0.2, D: 0.1} // Figure 3 seed

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestPaperExampleRecVec reproduces Section 4.2: for u=2, |V|=2^3 and the
// Figure 3 seed, RecVec = [0.05, 0.07, 0.105, 0.147].
func TestPaperExampleRecVec(t *testing.T) {
	v := New(paperSeed, 2, 3)
	want := []float64{0.05, 0.07, 0.105, 0.147}
	for x, w := range want {
		if !approxEq(v.At(x), w, 1e-12) {
			t.Fatalf("RecVec[%d] = %v, want %v", x, v.At(x), w)
		}
	}
	if !approxEq(v.RowProb(), 0.147, 1e-12) {
		t.Fatalf("RowProb = %v, want 0.147", v.RowProb())
	}
}

// TestPaperExampleDetermine reproduces the worked example of Figure 5:
// u=2, x=0.133 resolves to destination 6 via k=2 then k=1.
func TestPaperExampleDetermine(t *testing.T) {
	v := New(paperSeed, 2, 3)
	if got := v.Determine(0.133); got != 6 {
		t.Fatalf("Determine(0.133) = %d, want 6", got)
	}
}

// TestLemma2MatchesDefinition2 validates the O(levels) closed-form build
// against direct summation for a spread of seeds, vertices and sizes.
func TestLemma2MatchesDefinition2(t *testing.T) {
	seeds := []skg.Seed{paperSeed, skg.Graph500Seed, skg.UniformSeed, {A: 0.7, B: 0.1, C: 0.15, D: 0.05}}
	for _, k := range seeds {
		for _, levels := range []int{1, 2, 5, 9} {
			n := int64(1) << uint(levels)
			for u := int64(0); u < n; u += 1 + n/7 {
				fast := New(k, u, levels)
				ref := NewRef(k, u, levels)
				for x := 0; x <= levels; x++ {
					if !approxEq(fast.At(x), ref.At(x), 1e-12) {
						t.Fatalf("seed %+v levels %d u %d: Lemma2 f[%d]=%v, Def2 %v",
							k, levels, u, x, fast.At(x), ref.At(x))
					}
				}
			}
		}
	}
}

// TestLemma3Sigma: the precomputed ratios equal K_{u[k],1}/K_{u[k],0}.
func TestLemma3Sigma(t *testing.T) {
	k := paperSeed
	const levels = 8
	for _, u := range []int64{0, 1, 2, 37, 255} {
		v := New(k, u, levels)
		for b := 0; b < levels; b++ {
			srcBit := (uint64(u) >> uint(b)) & 1
			want := k.At(srcBit, 1) / k.At(srcBit, 0)
			if !approxEq(v.Sigma(b), want, 1e-12) {
				t.Fatalf("u=%d sigma[%d]=%v, want %v", u, b, v.Sigma(b), want)
			}
		}
	}
}

// TestLemma4TranslationalSymmetry checks F_u(R+r) = F_u(R) + σ·F_u(r)
// on the exact CDF vector for all admissible (k, r).
func TestLemma4TranslationalSymmetry(t *testing.T) {
	k := skg.Graph500Seed
	const levels = 7
	for _, u := range []int64{0, 3, 42, 100} {
		c := NewCDF(k, u, levels)
		F := func(r int64) float64 {
			if r == 0 {
				return 0
			}
			return c.cum[r-1]
		}
		for kk := 0; kk < levels; kk++ {
			R := int64(1) << uint(kk)
			srcBit := (uint64(u) >> uint(kk)) & 1
			sigma := k.At(srcBit, 1) / k.At(srcBit, 0)
			for r := int64(0); r < R; r++ {
				lhs := F(R + r)
				rhs := F(R) + sigma*F(r)
				if !approxEq(lhs, rhs, 1e-12) {
					t.Fatalf("u=%d k=%d r=%d: F(R+r)=%v, F(R)+σF(r)=%v", u, kk, r, lhs, rhs)
				}
			}
		}
	}
}

// TestDetermineMatchesCDFInverse: for any random draw, the recursive
// vector resolves exactly the destination the naive CDF inversion does.
func TestDetermineMatchesCDFInverse(t *testing.T) {
	for _, k := range []skg.Seed{paperSeed, skg.Graph500Seed} {
		const levels = 10
		for _, u := range []int64{0, 5, 513, 1023} {
			v := New(k, u, levels)
			c := NewCDF(k, u, levels)
			src := rng.New(uint64(u) + 99)
			for i := 0; i < 5000; i++ {
				x := src.UniformTo(v.RowProb())
				got := v.Determine(x)
				want := c.DetermineBinary(x)
				if got != want {
					// Destinations whose CDF values collide within float64
					// noise may differ at the exact boundary; require the
					// CDF positions to genuinely differ.
					lo, hi := got, want
					if lo > hi {
						lo, hi = hi, lo
					}
					if math.Abs(c.cum[lo]-c.cum[hi]) > 1e-12 {
						t.Fatalf("seed %+v u=%d x=%v: recvec %d, cdf %d", k, u, x, got, want)
					}
				}
			}
		}
	}
}

func TestCDFLinearEqualsBinary(t *testing.T) {
	c := NewCDF(skg.Graph500Seed, 77, 9)
	src := rng.New(4)
	for i := 0; i < 2000; i++ {
		x := src.UniformTo(c.Total())
		if a, b := c.DetermineLinear(x), c.DetermineBinary(x); a != b {
			t.Fatalf("linear %d != binary %d at x=%v", a, b, x)
		}
	}
}

// chiSquare computes Pearson's statistic of observed counts against
// expected probabilities (conditioned on the row).
func chiSquare(obs []int64, probs []float64, total float64, n int64) float64 {
	var stat float64
	for i, o := range obs {
		e := float64(n) * probs[i] / total
		if e < 1e-9 {
			continue
		}
		d := float64(o) - e
		stat += d * d / e
	}
	return stat
}

// TestDetermineDistribution: generated destinations follow K_{u,v}/P_{u→}.
func TestDetermineDistribution(t *testing.T) {
	k := skg.Graph500Seed
	const levels = 6
	n := int64(1) << levels
	u := int64(21)
	v := New(k, u, levels)
	probs := make([]float64, n)
	for dst := int64(0); dst < n; dst++ {
		probs[dst] = skg.EdgeProb(k, u, dst, levels)
	}
	src := rng.New(7)
	const draws = 400000
	obs := make([]int64, n)
	for i := 0; i < draws; i++ {
		obs[v.Determine(src.UniformTo(v.RowProb()))]++
	}
	stat := chiSquare(obs, probs, v.RowProb(), draws)
	// 63 degrees of freedom; 99.9th percentile ≈ 106.
	if stat > 120 {
		t.Fatalf("chi-square %v too large for 63 dof", stat)
	}
}

// TestAllOptionCombosSameDistribution: the 8 ablation combinations (and
// linear search) must be distributionally indistinguishable.
func TestAllOptionCombosSameDistribution(t *testing.T) {
	k := skg.Graph500Seed
	const levels = 5
	n := int64(1) << levels
	u := int64(9)
	v := New(k, u, levels)
	probs := make([]float64, n)
	for dst := int64(0); dst < n; dst++ {
		probs[dst] = skg.EdgeProb(k, u, dst, levels)
	}
	combos := []Options{
		{},
		{SingleRandom: true},
		{SparseRecursion: true},
		{SparseRecursion: true, SingleRandom: true},
		{SparseRecursion: true, LinearSearch: true},
		{SparseRecursion: true, SingleRandom: true, LinearSearch: true},
	}
	for ci, o := range combos {
		src := rng.New(uint64(100 + ci))
		const draws = 200000
		obs := make([]int64, n)
		for i := 0; i < draws; i++ {
			x := src.UniformTo(v.RowProb())
			obs[v.DetermineOpt(x, src, o)]++
		}
		stat := chiSquare(obs, probs, v.RowProb(), draws)
		// 31 dof; 99.9th percentile ≈ 61.1.
		if stat > 75 {
			t.Fatalf("combo %+v: chi-square %v too large for 31 dof", o, stat)
		}
	}
}

// TestSingleRandomDeterminesSameAsProduction: with SingleRandom the
// sparse path must agree value-for-value with the production Determine.
func TestSingleRandomDeterminesSameAsProduction(t *testing.T) {
	v := New(skg.Graph500Seed, 333, 12)
	src := rng.New(11)
	o := Options{SparseRecursion: true, SingleRandom: true}
	for i := 0; i < 10000; i++ {
		x := src.UniformTo(v.RowProb())
		if a, b := v.Determine(x), v.DetermineOpt(x, nil, o); a != b {
			t.Fatalf("x=%v: Determine %d, DetermineOpt %d", x, a, b)
		}
	}
}

// TestFullDescentSingleRandomMatches: full descent with a single random
// value is the same deterministic map as sparse search.
func TestFullDescentSingleRandomMatches(t *testing.T) {
	v := New(paperSeed, 6, 9)
	src := rng.New(13)
	for i := 0; i < 10000; i++ {
		x := src.UniformTo(v.RowProb())
		a := v.DetermineOpt(x, nil, Options{SparseRecursion: true, SingleRandom: true})
		b := v.DetermineOpt(x, nil, Options{SingleRandom: true})
		if a != b {
			t.Fatalf("x=%v: sparse %d, full %d", x, a, b)
		}
	}
}

// TestVectorMonotone: property — RecVec is non-decreasing and tops out
// at Lemma 1's row probability, for random vertices.
func TestVectorMonotone(t *testing.T) {
	k := skg.Graph500Seed
	f := func(u uint32) bool {
		const levels = 32
		v := New(k, int64(u), levels)
		for x := 0; x < levels; x++ {
			if v.At(x+1) < v.At(x) {
				return false
			}
		}
		return approxEq(v.RowProb(), skg.RowProb(k, int64(u), levels), 1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDetermineInRange: property — any draw maps into [0, |V|).
func TestDetermineInRange(t *testing.T) {
	v := New(skg.Graph500Seed, 123456789, 36)
	src := rng.New(17)
	for i := 0; i < 50000; i++ {
		d := v.Determine(src.UniformTo(v.RowProb()))
		if d < 0 || d >= 1<<36 {
			t.Fatalf("destination %d out of range", d)
		}
	}
}

// TestExpectedOnesEmpirical ties Determine to the Lemma 5 analysis: the
// mean popcount of destinations approaches (β+δ)·levels.
func TestExpectedOnesEmpirical(t *testing.T) {
	k := skg.Graph500Seed
	const levels = 24
	src := rng.New(23)
	var totalBits, draws int64
	// Edge sources are distributed by row mass P_{u→}, under which each
	// source bit is independently 1 with probability γ+δ; draw u that
	// way, then a destination from u's vector.
	for i := 0; i < 20000; i++ {
		var u int64
		for b := 0; b < levels; b++ {
			if src.Float64() < k.C+k.D {
				u |= 1 << uint(b)
			}
		}
		v := New(k, u, levels)
		d := v.Determine(src.UniformTo(v.RowProb()))
		totalBits += int64(popcount(d))
		draws++
	}
	mean := float64(totalBits) / float64(draws)
	want := skg.ExpectedOnesFraction(k) * levels // 0.24*24 = 5.76
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("mean destination popcount %v, want ≈ %v", mean, want)
	}
}

func popcount(v int64) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}

// TestNoisyVectorAgainstDirectSum validates Lemma 8's recurrence build
// against brute-force summation over the actual noisy matrices.
func TestNoisyVectorAgainstDirectSum(t *testing.T) {
	const levels = 7
	src := rng.New(31)
	ns, err := skg.NewNoise(skg.Graph500Seed, levels, 0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1) << levels
	for _, u := range []int64{0, 1, 64, 127} {
		v := NewNoisy(ns, u, levels)
		var sum float64
		next := int64(1)
		x := 0
		for dst := int64(0); dst < n; dst++ {
			sum += ns.EdgeProbNoisy(u, dst, levels)
			if dst == next-1 {
				if !approxEq(v.At(x), sum, 1e-12) {
					t.Fatalf("u=%d f[%d]=%v, direct %v", u, x, v.At(x), sum)
				}
				x++
				next <<= 1
			}
		}
		if !approxEq(v.RowProb(), ns.RowProb(u, levels), 1e-12) {
			t.Fatalf("u=%d RowProb %v, Lemma7 %v", u, v.RowProb(), ns.RowProb(u, levels))
		}
	}
}

// TestNoisyZeroEqualsPlain: NSKG with N=0 builds the identical vector.
func TestNoisyZeroEqualsPlain(t *testing.T) {
	const levels = 12
	src := rng.New(37)
	ns, err := skg.NewNoise(skg.Graph500Seed, levels, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int64{0, 77, 4095} {
		a := NewNoisy(ns, u, levels)
		b := New(skg.Graph500Seed, u, levels)
		for x := 0; x <= levels; x++ {
			if !approxEq(a.At(x), b.At(x), 1e-15) {
				t.Fatalf("u=%d f[%d]: noisy %v, plain %v", u, x, a.At(x), b.At(x))
			}
		}
	}
}

// TestNoisyDetermineDistribution: destinations under noise follow the
// noisy edge probabilities.
func TestNoisyDetermineDistribution(t *testing.T) {
	const levels = 6
	src := rng.New(41)
	ns, err := skg.NewNoise(skg.Graph500Seed, levels, 0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	u := int64(13)
	v := NewNoisy(ns, u, levels)
	n := int64(1) << levels
	probs := make([]float64, n)
	for dst := int64(0); dst < n; dst++ {
		probs[dst] = ns.EdgeProbNoisy(u, dst, levels)
	}
	const draws = 300000
	obs := make([]int64, n)
	for i := 0; i < draws; i++ {
		obs[v.Determine(src.UniformTo(v.RowProb()))]++
	}
	if stat := chiSquare(obs, probs, v.RowProb(), draws); stat > 120 {
		t.Fatalf("chi-square %v too large for 63 dof", stat)
	}
}

// TestBigVectorMatchesFloat64: at modest levels, both backends agree on
// vector entries and destination mapping.
func TestBigVectorMatchesFloat64(t *testing.T) {
	k := skg.Graph500Seed
	const levels = 16
	u := int64(54321)
	fv := New(k, u, levels)
	bv := NewBig(k, u, levels, 0)
	for x := 0; x <= levels; x++ {
		if !approxEq(fv.At(x), bv.At(x), 1e-12) {
			t.Fatalf("f[%d]: float %v, big %v", x, fv.At(x), bv.At(x))
		}
	}
	src := rng.New(43)
	for i := 0; i < 3000; i++ {
		x := src.UniformTo(fv.RowProb())
		if a, b := fv.Determine(x), bv.Determine(x); a != b {
			t.Fatalf("x=%v: float %d, big %d", x, a, b)
		}
	}
}

// TestBigVectorHighScale: the big backend stays self-consistent at
// trillion scale (levels 40) where float64 entries underflow relative
// precision: entries remain monotone and determinations in range.
func TestBigVectorHighScale(t *testing.T) {
	k := skg.Graph500Seed
	const levels = 40
	bv := NewBig(k, (1<<40)-12345, levels, 0)
	for x := 0; x < levels; x++ {
		if bv.At(x+1) < bv.At(x) {
			t.Fatalf("big vector not monotone at %d", x)
		}
	}
	src := rng.New(47)
	for i := 0; i < 200; i++ {
		d := bv.Determine(src.UniformTo(bv.RowProb()))
		if d < 0 || d >= 1<<levels {
			t.Fatalf("destination %d out of range", d)
		}
	}
}

func TestSearchLinearEqualsBinary(t *testing.T) {
	v := New(skg.Graph500Seed, 4242, 30)
	src := rng.New(53)
	for i := 0; i < 20000; i++ {
		x := src.UniformIn(v.At(0), v.RowProb())
		if a, b := v.searchLinear(x), v.searchBinary(x); a != b {
			t.Fatalf("x=%v: linear %d, binary %d", x, a, b)
		}
	}
}

func TestNewNoisyPanicsOnShortNoise(t *testing.T) {
	src := rng.New(59)
	ns, _ := skg.NewNoise(skg.Graph500Seed, 4, 0.1, src)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNoisy(ns, 0, 8)
}

func TestNewRefPanicsOnHugeLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRef(skg.Graph500Seed, 0, 30)
}

func BenchmarkBuildVector(b *testing.B) {
	k := skg.Graph500Seed
	for i := 0; i < b.N; i++ {
		New(k, int64(i), 36)
	}
}

func BenchmarkDetermine(b *testing.B) {
	v := New(skg.Graph500Seed, 987654321, 36)
	src := rng.New(1)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += v.Determine(src.UniformTo(v.RowProb()))
	}
	_ = sink
}

func BenchmarkDetermineBig(b *testing.B) {
	v := NewBig(skg.Graph500Seed, 987654321, 36, 0)
	src := rng.New(1)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += v.Determine(src.UniformTo(v.RowProb()))
	}
	_ = sink
}
