package recvec

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/skg"
)

// TestDetermineBoundaryValues: x = 0 and x just below RowProb resolve
// to the extreme destinations without panics or loops.
func TestDetermineBoundaryValues(t *testing.T) {
	v := New(skg.Graph500Seed, 777, 20)
	if got := v.Determine(0); got != 0 {
		t.Fatalf("Determine(0) = %d, want 0", got)
	}
	almost := math.Nextafter(v.RowProb(), 0)
	got := v.Determine(almost)
	if got < 0 || got >= 1<<20 {
		t.Fatalf("Determine(max) = %d out of range", got)
	}
	// The top draw must land at the very end of the CDF: the maximal
	// destination is all-ones.
	if got != 1<<20-1 {
		t.Fatalf("Determine(max) = %d, want %d", got, int64(1<<20-1))
	}
}

// TestDetermineAtExactBoundaries: drawing exactly F_u(2^k) selects bit
// k (the half-open interval convention of Theorem 2).
func TestDetermineAtExactBoundaries(t *testing.T) {
	v := New(skg.Graph500Seed, 42, 10)
	for k := 0; k < 10; k++ {
		dst := v.Determine(v.At(k))
		if dst&(1<<uint(k)) == 0 {
			t.Fatalf("Determine(F(2^%d)) = %b lacks bit %d", k, dst, k)
		}
	}
}

// TestExtremeSeedAllMassLeft: a seed with β≈0 concentrates destinations
// in the low half for 0-bit sources; no division blowups.
func TestExtremeSeedSkew(t *testing.T) {
	k := skg.Seed{A: 0.94, B: 0.01, C: 0.04, D: 0.01}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	v := New(k, 0, 16)
	src := rng.New(3)
	highBits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		d := v.Determine(src.UniformTo(v.RowProb()))
		if d >= 1<<15 {
			highBits++
		}
	}
	// P(top bit set | u=0) = β/(α+β) ≈ 0.0105.
	frac := float64(highBits) / draws
	if math.Abs(frac-0.01/0.95) > 0.005 {
		t.Fatalf("top-bit fraction %v, want ≈ %v", frac, 0.01/0.95)
	}
}

// TestNewBigCustomPrecision: explicit precision levels agree with the
// default on moderate scales.
func TestNewBigCustomPrecision(t *testing.T) {
	k := skg.Graph500Seed
	lo := NewBig(k, 555, 20, 64)
	hi := NewBig(k, 555, 20, 256)
	src := rng.New(7)
	for i := 0; i < 2000; i++ {
		x := src.UniformTo(lo.RowProb())
		if a, b := lo.Determine(x), hi.Determine(x); a != b {
			t.Fatalf("precision 64 vs 256 disagree at x=%v: %d vs %d", x, a, b)
		}
	}
}

// TestBigVsFloatDisagreementIsRare: at scale 34 the float64 path may
// differ from the 128-bit path on a tiny fraction of draws (ULP-level
// boundary cases); quantify that it stays below 0.5% — the reason the
// paper reserves BigDecimal for trillion-scale accuracy rather than
// using it everywhere.
func TestBigVsFloatDisagreementIsRare(t *testing.T) {
	k := skg.Graph500Seed
	const levels = 34
	u := int64(0x2AAAAAAAA) // alternating bits
	fv := New(k, u, levels)
	bv := NewBig(k, u, levels, 0)
	src := rng.New(13)
	const draws = 20000
	diff := 0
	for i := 0; i < draws; i++ {
		x := src.UniformTo(fv.RowProb())
		if fv.Determine(x) != bv.Determine(x) {
			diff++
		}
	}
	if frac := float64(diff) / draws; frac > 0.005 {
		t.Fatalf("float64 vs big disagreement fraction %v too high", frac)
	}
}

// TestUniformSeedDeterminesUniformly: with the Erdős–Rényi seed every
// destination is equally likely.
func TestUniformSeedDeterminesUniformly(t *testing.T) {
	v := New(skg.UniformSeed, 3, 6)
	src := rng.New(17)
	const draws = 128000
	counts := make([]int64, 64)
	for i := 0; i < draws; i++ {
		counts[v.Determine(src.UniformTo(v.RowProb()))]++
	}
	want := float64(draws) / 64
	for d, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("destination %d count %d far from %v", d, c, want)
		}
	}
}
