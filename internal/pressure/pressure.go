// Package pressure turns raw host signals into a graceful-degradation
// ladder. TrillionG is designed to run at the edge of hardware
// capacity — a trillion-edge run on commodity machines — where an
// unaware process tips from "fast" into OOM kill, disk-full ingest
// corruption, or collapse under load. This package samples the host
// (load average per CPU, RSS against a memory budget, store-disk
// fullness, goroutine and file-descriptor counts) into `os.*`
// telemetry gauges and classifies the result into three levels:
//
//	OK        full capacity
//	Elevated  the host is warm: shrink concurrency, lengthen retry hints
//	Critical  the host is about to fall over: shed load, pause
//	          best-effort work, flip readiness probes
//
// Transitions are hysteretic and debounced: escalation is immediate
// (by default) but de-escalation requires the signals to stay below
// the *exit* thresholds — a fraction of the entry thresholds — for
// several consecutive samples, so a load spike flapping around a
// threshold cannot oscillate the whole system between modes.
//
// Consumers read Controller.Level (one atomic load, safe on admission
// hot paths) or subscribe with OnChange. The admission surfaces wired
// to it — internal/sched, internal/server, internal/store,
// internal/dist — degrade how much work runs and when, never what is
// generated: output bytes are identical at every pressure level.
//
// Synthetic pressure for tests and fire drills is injected through
// internal/faultpoint's "pressure" kind (see PointSignals), so chaos
// tests can deterministically drive ok→critical→ok transitions on an
// idle host.
package pressure

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/memacct"
	"repro/internal/telemetry"
)

// Level is the controller's pressure classification. Levels are
// ordered: a higher level is strictly worse.
type Level int32

const (
	// OK: the host has headroom; run at full capacity.
	OK Level = iota
	// Elevated: the host is under sustained pressure; degrade
	// throughput-for-stability (shrink effective concurrency, lengthen
	// advertised retry hints).
	Elevated
	// Critical: the host is near a cliff (OOM, full disk, runaway
	// load); shed new work, pause the background class, and flip
	// readiness probes until the signals calm down.
	Critical
)

// String returns the level's wire name.
func (l Level) String() string {
	switch l {
	case OK:
		return "ok"
	case Elevated:
		return "elevated"
	case Critical:
		return "critical"
	}
	return "invalid"
}

// ParseLevel parses a wire name ("" = OK).
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "ok", "":
		return OK, true
	case "elevated":
		return Elevated, true
	case "critical":
		return Critical, true
	}
	return OK, false
}

// PointSignals is the faultpoint name the sampler consults every
// sample. Arm it with a "pressure" spec to replace the real host
// signals with synthetic ones:
//
//	TRILLIONG_FAULTPOINTS="pressure.signals=pressure:level=critical*20"
//
// The value is a semicolon-separated key=value list; when present, the
// sample starts from zeroed (benign) signals and applies only the
// listed keys, so injected transitions are deterministic even on a
// loaded CI host. Keys: level (ok|elevated|critical — synthesizes a
// per-CPU load decisively at that level), load (per-CPU load average),
// mem (used fraction of the memory budget), disk (used fraction of the
// store disk), goroutines, fds.
const PointSignals = "pressure.signals"

// Signals is one sample of host state. Zero fields mean "unknown or
// disabled": a zero value never escalates.
type Signals struct {
	// LoadPerCPU is the 1-minute load average divided by CPU count.
	LoadPerCPU float64
	// RSSBytes is the process resident set; MemBudgetBytes the budget
	// it is judged against (0 = memory check disabled).
	RSSBytes       int64
	MemBudgetBytes int64
	// TrackedBytes is the algorithmic working set charged to the
	// configured memacct.Acct (0 when none) — the structure-level view
	// that moves ahead of RSS, since Go's RSS lags frees.
	TrackedBytes int64
	// DiskUsedFrac is the used fraction of the watched disk (0 when no
	// path is configured); DiskFreeBytes the space still available.
	DiskUsedFrac  float64
	DiskFreeBytes int64
	// Goroutines and FDs are process-wide counts.
	Goroutines int
	FDs        int
}

// MemUsedFrac is the fraction of the memory budget in use: the larger
// of RSS and tracked bytes over the budget (0 when no budget).
func (s Signals) MemUsedFrac() float64 {
	if s.MemBudgetBytes <= 0 {
		return 0
	}
	used := s.RSSBytes
	if s.TrackedBytes > used {
		used = s.TrackedBytes
	}
	return float64(used) / float64(s.MemBudgetBytes)
}

// Thresholds are the per-signal entry bounds for Elevated and
// Critical. Zero fields take the documented defaults; a negative
// field disables that signal's contribution entirely.
type Thresholds struct {
	// LoadElevated/LoadCritical bound the per-CPU load average
	// (0 = 2 and 4: twice/four times as many runnable tasks as CPUs).
	LoadElevated, LoadCritical float64
	// MemElevated/MemCritical bound the used fraction of the memory
	// budget (0 = 0.85 and 0.95).
	MemElevated, MemCritical float64
	// DiskElevated/DiskCritical bound the watched disk's used fraction
	// (0 = 0.85 and 0.95).
	DiskElevated, DiskCritical float64
	// GoroutineElevated/GoroutineCritical bound the goroutine count
	// (0 = 50k and 200k — far above any healthy TrillionG process).
	GoroutineElevated, GoroutineCritical int
	// FDElevated/FDCritical bound open file descriptors (0 = 70% and
	// 90% of the soft RLIMIT_NOFILE, or 4096/8192 when unreadable).
	FDElevated, FDCritical int
	// ExitRatio scales entry thresholds into exit thresholds for
	// hysteresis: once a level is entered, it is held until the signal
	// drops below entry·ExitRatio (0 = 0.8; clamped to (0, 1]).
	ExitRatio float64
}

func (t Thresholds) withDefaults() Thresholds {
	defF := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	defI := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	defF(&t.LoadElevated, 2)
	defF(&t.LoadCritical, 4)
	defF(&t.MemElevated, 0.85)
	defF(&t.MemCritical, 0.95)
	defF(&t.DiskElevated, 0.85)
	defF(&t.DiskCritical, 0.95)
	defI(&t.GoroutineElevated, 50_000)
	defI(&t.GoroutineCritical, 200_000)
	if t.FDElevated == 0 || t.FDCritical == 0 {
		soft := fdSoftLimit()
		if soft <= 0 {
			defI(&t.FDElevated, 4096)
			defI(&t.FDCritical, 8192)
		} else {
			defI(&t.FDElevated, int(float64(soft)*0.7))
			defI(&t.FDCritical, int(float64(soft)*0.9))
		}
	}
	if t.ExitRatio <= 0 || t.ExitRatio > 1 {
		t.ExitRatio = 0.8
	}
	return t
}

// Config configures a Controller.
type Config struct {
	// Interval is the background sampling period for Start (0 = 1s).
	// Sample may always be called directly regardless.
	Interval time.Duration
	// MemBudgetBytes is the memory budget RSS is judged against
	// (0 = total host memory from /proc/meminfo; negative = disabled).
	MemBudgetBytes int64
	// DiskPath, when set, watches that filesystem's fullness —
	// typically the artifact store or output directory.
	DiskPath string
	// Acct, when set, contributes memacct's tracked working-set bytes
	// to the memory signal alongside RSS.
	Acct *memacct.Acct
	// Thresholds tune the classification bounds.
	Thresholds Thresholds
	// RaiseAfter is how many consecutive samples must classify at a
	// higher level before escalating (0 = 1: escalate immediately).
	RaiseAfter int
	// LowerAfter is how many consecutive samples must classify at a
	// lower level before de-escalating (0 = 3: calm down slowly).
	LowerAfter int
	// Telemetry receives the os.* and pressure.* metrics
	// (nil = private registry).
	Telemetry *telemetry.Registry
}

// Metric names the controller publishes (docs/OBSERVABILITY.md is the
// catalog).
const (
	MetricLoadPerCPU  = "os.load_per_cpu"
	MetricCPUs        = "os.cpus"
	MetricRSS         = "os.mem_rss_bytes"
	MetricMemBudget   = "os.mem_budget_bytes"
	MetricMemUsedFrac = "os.mem_used_frac"
	MetricTracked     = "os.mem_tracked_bytes"
	MetricDiskUsed    = "os.disk_used_frac"
	MetricDiskFree    = "os.disk_free_bytes"
	MetricGoroutines  = "os.goroutines"
	MetricFDs         = "os.fds"

	MetricLevel       = "pressure.level"
	MetricSamples     = "pressure.samples_total"
	MetricTransitions = "pressure.transitions_total"
	MetricInjected    = "pressure.injected_samples_total"
)

// Controller samples host signals and maintains the current pressure
// level. All methods are safe for concurrent use; Level is one atomic
// load.
type Controller struct {
	cfg Config
	th  Thresholds
	tel *telemetry.Registry

	level atomic.Int32

	mu        sync.Mutex
	pending   Level // level the recent samples have been voting for
	votes     int   // consecutive samples voting pending
	onChange  []func(Level)
	lastSig   Signals
	stopped   chan struct{} // non-nil while the background loop runs
	stopOnce  *sync.Once
	loopGroup sync.WaitGroup

	samples     *telemetry.Counter
	transitions *telemetry.Counter
	injected    *telemetry.Counter
	gLoad       *telemetry.Gauge
	gRSS        *telemetry.Gauge
	gBudget     *telemetry.Gauge
	gMemFrac    *telemetry.Gauge
	gTracked    *telemetry.Gauge
	gDiskUsed   *telemetry.Gauge
	gDiskFree   *telemetry.Gauge
	gGoroutines *telemetry.Gauge
	gFDs        *telemetry.Gauge
}

// New builds a Controller. No sampling happens until Start or Sample.
func New(cfg Config) *Controller {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.RaiseAfter < 1 {
		cfg.RaiseAfter = 1
	}
	if cfg.LowerAfter < 1 {
		cfg.LowerAfter = 3
	}
	if cfg.MemBudgetBytes == 0 {
		cfg.MemBudgetBytes = hostMemoryBytes()
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	c := &Controller{
		cfg:         cfg,
		th:          cfg.Thresholds.withDefaults(),
		tel:         tel,
		samples:     tel.Counter(MetricSamples),
		transitions: tel.Counter(MetricTransitions),
		injected:    tel.Counter(MetricInjected),
		gLoad:       tel.Gauge(MetricLoadPerCPU),
		gRSS:        tel.Gauge(MetricRSS),
		gBudget:     tel.Gauge(MetricMemBudget),
		gMemFrac:    tel.Gauge(MetricMemUsedFrac),
		gTracked:    tel.Gauge(MetricTracked),
		gDiskUsed:   tel.Gauge(MetricDiskUsed),
		gDiskFree:   tel.Gauge(MetricDiskFree),
		gGoroutines: tel.Gauge(MetricGoroutines),
		gFDs:        tel.Gauge(MetricFDs),
	}
	tel.Gauge(MetricCPUs).Set(float64(numCPU()))
	tel.GaugeFunc(MetricLevel, func() float64 { return float64(c.Level()) })
	return c
}

// Telemetry returns the registry the controller records into.
func (c *Controller) Telemetry() *telemetry.Registry { return c.tel }

// RecoveryHint is the soonest a pressure episode can de-escalate:
// LowerAfter consecutive calm samples at the sampling interval.
// Admission surfaces use it as an honest Retry-After floor while
// shedding load.
func (c *Controller) RecoveryHint() time.Duration {
	return time.Duration(c.cfg.LowerAfter) * c.cfg.Interval
}

// Level returns the current pressure level (one atomic load).
func (c *Controller) Level() Level { return Level(c.level.Load()) }

// LastSignals returns the most recent sample (zero before the first).
func (c *Controller) LastSignals() Signals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSig
}

// OnChange registers fn to run on every level transition, called with
// the new level from the sampling goroutine (or the Sample caller).
// Callbacks must be quick and must not call back into Sample.
func (c *Controller) OnChange(fn func(Level)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onChange = append(c.onChange, fn)
}

// Start launches the background sampling loop; the returned function
// stops it (idempotent). Starting an already-started controller
// returns a stop for the existing loop.
func (c *Controller) Start() (stop func()) {
	c.mu.Lock()
	if c.stopped != nil {
		stopCh, once := c.stopped, c.stopOnce
		c.mu.Unlock()
		return func() { once.Do(func() { close(stopCh) }) }
	}
	stopCh := make(chan struct{})
	once := new(sync.Once)
	c.stopped, c.stopOnce = stopCh, once
	c.loopGroup.Add(1)
	c.mu.Unlock()

	go func() {
		defer c.loopGroup.Done()
		tick := time.NewTicker(c.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-tick.C:
				c.Sample()
			}
		}
	}()
	return func() {
		once.Do(func() { close(stopCh) })
		c.loopGroup.Wait()
		c.mu.Lock()
		if c.stopped == stopCh {
			c.stopped, c.stopOnce = nil, nil
		}
		c.mu.Unlock()
	}
}

// Force sets the level directly — no sampling, no debounce — and
// notifies subscribers on a change. It exists for consumer tests and
// operator fire drills ("what does this system shed at critical?");
// production transitions come from Sample. The next Sample resumes
// normal classification from the forced level, hysteresis included.
func (c *Controller) Force(lvl Level) {
	var fire []func(Level)
	c.mu.Lock()
	c.pending, c.votes = lvl, 0
	if Level(c.level.Load()) != lvl {
		c.level.Store(int32(lvl))
		c.transitions.Inc()
		fire = append(fire, c.onChange...)
	}
	c.mu.Unlock()
	for _, fn := range fire {
		fn(lvl)
	}
}

// Sample takes one sample — real host signals, or synthetic ones when
// the PointSignals faultpoint is armed — publishes the os.* gauges,
// and advances the debounced level machine. It returns the signals and
// the (possibly new) level. Tests drive transitions deterministically
// by calling Sample directly.
func (c *Controller) Sample() (Signals, Level) {
	sig := readSignals(c.cfg)
	if v, ok := faultpoint.FireValue(PointSignals); ok {
		// Injected samples replace the real ones entirely, so a chaos
		// scenario is deterministic even on a loaded host.
		sig = c.syntheticSignals(v)
		c.injected.Inc()
	}
	c.samples.Inc()
	c.publish(sig)

	target := c.classify(sig, c.Level())
	lvl := c.step(target)
	return sig, lvl
}

// step advances the debounce machine toward target and returns the
// resulting level, notifying subscribers on a transition.
func (c *Controller) step(target Level) Level {
	cur := c.Level()
	var fire []func(Level)
	c.mu.Lock()
	if target == cur {
		c.pending, c.votes = cur, 0
		c.mu.Unlock()
		return cur
	}
	if target != c.pending {
		c.pending, c.votes = target, 0
	}
	c.votes++
	need := c.cfg.RaiseAfter
	if target < cur {
		need = c.cfg.LowerAfter
	}
	if c.votes < need {
		c.mu.Unlock()
		return cur
	}
	c.pending, c.votes = target, 0
	c.level.Store(int32(target))
	c.transitions.Inc()
	fire = append(fire, c.onChange...)
	c.mu.Unlock()
	for _, fn := range fire {
		fn(target)
	}
	return target
}

// classify maps one sample to its target level under hysteresis: a
// signal that entered a level holds it until it drops below
// entry·ExitRatio. The overall level is the worst per-signal level.
func (c *Controller) classify(sig Signals, cur Level) Level {
	worst := OK
	bump := func(l Level) {
		if l > worst {
			worst = l
		}
	}
	bump(levelForF(sig.LoadPerCPU, c.th.LoadElevated, c.th.LoadCritical, cur, c.th.ExitRatio))
	bump(levelForF(sig.MemUsedFrac(), c.th.MemElevated, c.th.MemCritical, cur, c.th.ExitRatio))
	bump(levelForF(sig.DiskUsedFrac, c.th.DiskElevated, c.th.DiskCritical, cur, c.th.ExitRatio))
	bump(levelForF(float64(sig.Goroutines), float64(c.th.GoroutineElevated), float64(c.th.GoroutineCritical), cur, c.th.ExitRatio))
	bump(levelForF(float64(sig.FDs), float64(c.th.FDElevated), float64(c.th.FDCritical), cur, c.th.ExitRatio))
	return worst
}

// levelForF classifies one signal value against its entry thresholds,
// holding the current level's grip until the value crosses the exit
// threshold. Non-positive thresholds disable the signal.
func levelForF(v, enterElev, enterCrit float64, cur Level, exitRatio float64) Level {
	if enterElev <= 0 || enterCrit <= 0 || v <= 0 {
		return OK
	}
	switch {
	case v >= enterCrit, cur >= Critical && v >= enterCrit*exitRatio:
		return Critical
	case v >= enterElev, cur >= Elevated && v >= enterElev*exitRatio:
		return Elevated
	}
	return OK
}

// publish writes one sample into the os.* gauges.
func (c *Controller) publish(sig Signals) {
	c.gLoad.Set(sig.LoadPerCPU)
	c.gRSS.Set(float64(sig.RSSBytes))
	c.gBudget.Set(float64(sig.MemBudgetBytes))
	c.gMemFrac.Set(sig.MemUsedFrac())
	c.gTracked.Set(float64(sig.TrackedBytes))
	c.gDiskUsed.Set(sig.DiskUsedFrac)
	c.gDiskFree.Set(float64(sig.DiskFreeBytes))
	c.gGoroutines.Set(float64(sig.Goroutines))
	c.gFDs.Set(float64(sig.FDs))
	c.mu.Lock()
	c.lastSig = sig
	c.mu.Unlock()
}

// syntheticSignals builds a sample from a faultpoint value string: a
// semicolon-separated key=value list applied onto zeroed signals.
// Unknown keys and malformed values are ignored — an injection must
// never crash the process it is drilling.
func (c *Controller) syntheticSignals(spec string) Signals {
	var sig Signals
	for _, kv := range strings.Split(spec, ";") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			continue
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "level":
			if l, ok := ParseLevel(val); ok {
				sig.LoadPerCPU = c.syntheticLoad(l)
			}
		case "load":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				sig.LoadPerCPU = f
			}
		case "mem":
			// Express a used fraction against a synthetic 1-GiB budget.
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				sig.MemBudgetBytes = 1 << 30
				sig.RSSBytes = int64(f * float64(sig.MemBudgetBytes))
			}
		case "disk":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				sig.DiskUsedFrac = f
			}
		case "goroutines":
			if n, err := strconv.Atoi(val); err == nil {
				sig.Goroutines = n
			}
		case "fds":
			if n, err := strconv.Atoi(val); err == nil {
				sig.FDs = n
			}
		}
	}
	return sig
}

// syntheticLoad returns a per-CPU load decisively at the given level:
// well past the entry threshold for Elevated/Critical, zero for OK.
func (c *Controller) syntheticLoad(l Level) float64 {
	switch l {
	case Critical:
		return c.th.LoadCritical * 2
	case Elevated:
		// Midway between the two entries: above Elevated's entry, below
		// Critical's exit.
		return (c.th.LoadElevated + c.th.LoadCritical*c.th.ExitRatio) / 2
	}
	return 0
}

// String renders a sample for logs and drills.
func (s Signals) String() string {
	return fmt.Sprintf("load/cpu=%.2f mem=%.0f%% (rss=%d tracked=%d budget=%d) disk=%.0f%% goroutines=%d fds=%d",
		s.LoadPerCPU, s.MemUsedFrac()*100, s.RSSBytes, s.TrackedBytes, s.MemBudgetBytes,
		s.DiskUsedFrac*100, s.Goroutines, s.FDs)
}
