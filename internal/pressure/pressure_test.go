package pressure

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/memacct"
	"repro/internal/telemetry"
)

// quiet returns a controller whose every real signal is disabled, so
// only injected samples can move it. RaiseAfter/LowerAfter default
// (1 / 3) unless overridden after New.
func quiet(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.MemBudgetBytes == 0 {
		cfg.MemBudgetBytes = -1 // no auto budget from /proc/meminfo
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	// Push real-signal thresholds far out of reach so host noise on the
	// test machine cannot flip levels under us.
	if cfg.Thresholds == (Thresholds{}) {
		cfg.Thresholds = Thresholds{
			LoadElevated: 1e6, LoadCritical: 2e6,
			GoroutineElevated: 1 << 30, GoroutineCritical: 1<<30 + 1,
			FDElevated: 1 << 30, FDCritical: 1<<30 + 1,
		}
	}
	return New(cfg)
}

// TestLevelString covers the wire names both ways.
func TestLevelString(t *testing.T) {
	for _, tc := range []struct {
		l Level
		s string
	}{{OK, "ok"}, {Elevated, "elevated"}, {Critical, "critical"}} {
		if tc.l.String() != tc.s {
			t.Fatalf("%d.String() = %q", tc.l, tc.l.String())
		}
		if got, ok := ParseLevel(tc.s); !ok || got != tc.l {
			t.Fatalf("ParseLevel(%q) = %v, %v", tc.s, got, ok)
		}
	}
	if got, ok := ParseLevel(""); !ok || got != OK {
		t.Fatalf("ParseLevel(\"\") = %v, %v", got, ok)
	}
	if _, ok := ParseLevel("meltdown"); ok {
		t.Fatal("ParseLevel accepted garbage")
	}
	if Level(99).String() != "invalid" {
		t.Fatal("out-of-range level has a name")
	}
}

// TestRealSample: sampling the actual host populates the gauges with
// plausible values and stays OK under the far-out test thresholds.
func TestRealSample(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := quiet(t, Config{Telemetry: reg})
	sig, lvl := c.Sample()
	if lvl != OK {
		t.Fatalf("level = %v on an idle sample", lvl)
	}
	if sig.Goroutines < 1 {
		t.Fatalf("goroutines = %d", sig.Goroutines)
	}
	if reg.Gauge(MetricGoroutines).Value() < 1 {
		t.Fatal("os.goroutines gauge not published")
	}
	if got := c.LastSignals(); got.Goroutines != sig.Goroutines {
		t.Fatalf("LastSignals = %+v, want %+v", got, sig)
	}
	if reg.CounterValue(MetricSamples) != 1 {
		t.Fatalf("samples_total = %d", reg.CounterValue(MetricSamples))
	}
}

// TestDefaultsAndBudget: zero-config thresholds fill in, and the
// automatic memory budget comes from the host when readable.
func TestDefaultsAndBudget(t *testing.T) {
	th := Thresholds{}.withDefaults()
	if th.LoadElevated != 2 || th.LoadCritical != 4 || th.MemElevated != 0.85 ||
		th.MemCritical != 0.95 || th.ExitRatio != 0.8 {
		t.Fatalf("defaults = %+v", th)
	}
	if th.FDElevated <= 0 || th.FDCritical <= th.FDElevated {
		t.Fatalf("fd defaults = %d/%d", th.FDElevated, th.FDCritical)
	}
	c := New(Config{Telemetry: telemetry.NewRegistry()})
	if host := hostMemoryBytes(); host > 0 && c.cfg.MemBudgetBytes != host {
		t.Fatalf("auto budget = %d, want host total %d", c.cfg.MemBudgetBytes, host)
	}
}

// TestClassifyLadder: each signal alone can lift the level, and the
// worst signal wins.
func TestClassifyLadder(t *testing.T) {
	c := New(Config{MemBudgetBytes: 1 << 30, Telemetry: telemetry.NewRegistry()})
	cases := []struct {
		name string
		sig  Signals
		want Level
	}{
		{"idle", Signals{LoadPerCPU: 0.5}, OK},
		{"load-elev", Signals{LoadPerCPU: 2.5}, Elevated},
		{"load-crit", Signals{LoadPerCPU: 9}, Critical},
		{"mem-elev", Signals{RSSBytes: 900 << 20, MemBudgetBytes: 1 << 30}, Elevated},
		{"mem-crit", Signals{RSSBytes: 1000 << 20, MemBudgetBytes: 1 << 30}, Critical},
		{"tracked-beats-rss", Signals{RSSBytes: 1, TrackedBytes: 1000 << 20, MemBudgetBytes: 1 << 30}, Critical},
		{"disk-elev", Signals{DiskUsedFrac: 0.9}, Elevated},
		{"disk-crit", Signals{DiskUsedFrac: 0.97}, Critical},
		{"goroutines", Signals{Goroutines: 60_000}, Elevated},
		{"worst-wins", Signals{LoadPerCPU: 2.5, DiskUsedFrac: 0.99}, Critical},
	}
	for _, tc := range cases {
		if got := c.classify(tc.sig, OK); got != tc.want {
			t.Errorf("%s: classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestHysteresis: once Critical, a value between exit and entry holds
// Critical; only dropping below entry·ExitRatio releases it.
func TestHysteresis(t *testing.T) {
	c := New(Config{MemBudgetBytes: -1, Telemetry: telemetry.NewRegistry()})
	// Entry 4.0, exit 3.2 for load Critical.
	if got := c.classify(Signals{LoadPerCPU: 3.5}, OK); got != Elevated {
		t.Fatalf("fresh 3.5 load = %v, want Elevated", got)
	}
	if got := c.classify(Signals{LoadPerCPU: 3.5}, Critical); got != Critical {
		t.Fatalf("3.5 load while Critical = %v, want held Critical", got)
	}
	if got := c.classify(Signals{LoadPerCPU: 3.0}, Critical); got != Elevated {
		t.Fatalf("3.0 load while Critical = %v, want Elevated", got)
	}
	// Entry 2.0, exit 1.6 for Elevated.
	if got := c.classify(Signals{LoadPerCPU: 1.8}, Elevated); got != Elevated {
		t.Fatalf("1.8 load while Elevated = %v, want held", got)
	}
	if got := c.classify(Signals{LoadPerCPU: 1.5}, Elevated); got != OK {
		t.Fatalf("1.5 load while Elevated = %v, want OK", got)
	}
}

// TestDebounce: escalation needs RaiseAfter consecutive votes,
// de-escalation LowerAfter, and a changed vote resets the streak.
func TestDebounce(t *testing.T) {
	c := quiet(t, Config{})
	c.cfg.RaiseAfter, c.cfg.LowerAfter = 2, 3

	if lvl := c.step(Critical); lvl != OK {
		t.Fatalf("one vote escalated: %v", lvl)
	}
	if lvl := c.step(Critical); lvl != Critical {
		t.Fatalf("two votes did not escalate: %v", lvl)
	}
	// Calm samples: two are not enough...
	c.step(OK)
	if lvl := c.step(OK); lvl != Critical {
		t.Fatalf("level dropped after 2/3 calm votes: %v", lvl)
	}
	// ...an interleaved re-escalation vote resets the calm streak...
	c.step(Critical)
	c.step(OK)
	if lvl := c.step(OK); lvl != Critical {
		t.Fatalf("calm streak survived an interruption: %v", lvl)
	}
	// ...and three in a row release it.
	if lvl := c.step(OK); lvl != OK {
		t.Fatalf("3/3 calm votes did not release: %v", lvl)
	}
}

// TestOnChangeAndTransitions: subscribers see each transition exactly
// once, in order, and the transition counter matches.
func TestOnChangeAndTransitions(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := quiet(t, Config{Telemetry: reg})
	c.cfg.LowerAfter = 1
	var mu sync.Mutex
	var seen []Level
	c.OnChange(func(l Level) {
		mu.Lock()
		seen = append(seen, l)
		mu.Unlock()
	})
	c.step(Critical)
	c.step(Elevated)
	c.step(Elevated) // no-op: already there
	c.step(OK)
	mu.Lock()
	defer mu.Unlock()
	want := []Level{Critical, Elevated, OK}
	if len(seen) != len(want) {
		t.Fatalf("transitions seen = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions seen = %v, want %v", seen, want)
		}
	}
	if n := reg.CounterValue(MetricTransitions); n != 3 {
		t.Fatalf("transitions_total = %d", n)
	}
}

// TestInjectedCycle: an armed pressure faultpoint drives ok→critical→ok
// deterministically; the budget runs out and real (benign) signals
// take back over.
func TestInjectedCycle(t *testing.T) {
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	reg := telemetry.NewRegistry()
	c := quiet(t, Config{Telemetry: reg})
	c.cfg.LowerAfter = 2

	if err := faultpoint.Arm(PointSignals, "pressure:level=critical*3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, lvl := c.Sample(); lvl != Critical {
			t.Fatalf("injected sample %d: level = %v", i, lvl)
		}
	}
	if n := reg.CounterValue(MetricInjected); n != 3 {
		t.Fatalf("injected_samples_total = %d", n)
	}
	// Budget exhausted: the next real samples are benign and the
	// debounce releases after LowerAfter of them.
	if _, lvl := c.Sample(); lvl != Critical {
		t.Fatal("released after a single calm sample")
	}
	if _, lvl := c.Sample(); lvl != OK {
		t.Fatal("did not recover once injection drained")
	}
}

// TestSyntheticGrammar: every injection key parses, junk is ignored.
func TestSyntheticGrammar(t *testing.T) {
	c := quiet(t, Config{})
	sig := c.syntheticSignals("load=7.5; mem=0.97 ;disk=0.5;goroutines=123;fds=45;junk;bad=x")
	if sig.LoadPerCPU != 7.5 || sig.DiskUsedFrac != 0.5 || sig.Goroutines != 123 || sig.FDs != 45 {
		t.Fatalf("parsed = %+v", sig)
	}
	if f := sig.MemUsedFrac(); f < 0.96 || f > 0.98 {
		t.Fatalf("mem frac = %v", f)
	}
	// level= synthesizes a decisive load for each level.
	th := c.th
	if l := c.syntheticSignals("level=critical").LoadPerCPU; l < th.LoadCritical {
		t.Fatalf("critical synthetic load %v below entry %v", l, th.LoadCritical)
	}
	el := c.syntheticSignals("level=elevated").LoadPerCPU
	if el < th.LoadElevated || el >= th.LoadCritical*th.ExitRatio {
		t.Fatalf("elevated synthetic load %v outside [%v, %v)", el, th.LoadElevated, th.LoadCritical*th.ExitRatio)
	}
	if l := c.syntheticSignals("level=ok").LoadPerCPU; l != 0 {
		t.Fatalf("ok synthetic load = %v", l)
	}
}

// TestStartStop: the background loop samples on its own and stop is
// idempotent and race-free with a second Start.
func TestStartStop(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := quiet(t, Config{Interval: time.Millisecond, Telemetry: reg})
	stop := c.Start()
	stop2 := c.Start() // same loop
	deadline := time.Now().Add(2 * time.Second)
	for reg.CounterValue(MetricSamples) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never sampled")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop()
	stop2()
	n := reg.CounterValue(MetricSamples)
	time.Sleep(5 * time.Millisecond)
	if reg.CounterValue(MetricSamples) != n {
		t.Fatal("loop kept sampling after stop")
	}
	// A fresh Start works after a stop.
	stop3 := c.Start()
	defer stop3()
	deadline = time.Now().Add(2 * time.Second)
	for reg.CounterValue(MetricSamples) == n {
		if time.Now().After(deadline) {
			t.Fatal("restarted loop never sampled")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentSampleAndReaders: Sample, Level, LastSignals and
// OnChange registration race cleanly (meaningful under -race).
func TestConcurrentSampleAndReaders(t *testing.T) {
	c := quiet(t, Config{Acct: new(memacct.Acct)})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Sample()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = c.Level()
			_ = c.LastSignals()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			c.OnChange(func(Level) {})
		}
	}()
	wg.Wait()
}

// TestDisabledSignals: negative thresholds and zero values never
// escalate, so a partially-blind host (no /proc) stays OK.
func TestDisabledSignals(t *testing.T) {
	c := New(Config{
		MemBudgetBytes: -1,
		Thresholds: Thresholds{
			LoadElevated: -1, LoadCritical: -1,
			MemElevated: -1, MemCritical: -1,
			DiskElevated: -1, DiskCritical: -1,
			GoroutineElevated: -1, GoroutineCritical: -1,
			FDElevated: -1, FDCritical: -1,
		},
		Telemetry: telemetry.NewRegistry(),
	})
	sig := Signals{LoadPerCPU: 100, RSSBytes: 1 << 40, DiskUsedFrac: 1, Goroutines: 1 << 20, FDs: 1 << 20}
	if got := c.classify(sig, OK); got != OK {
		t.Fatalf("disabled signals escalated to %v", got)
	}
	if (Signals{}).MemUsedFrac() != 0 {
		t.Fatal("zero budget produced a mem fraction")
	}
}

// TestSignalsString formats without panicking and mentions the level
// drivers.
func TestSignalsString(t *testing.T) {
	s := Signals{LoadPerCPU: 1.23, RSSBytes: 10, MemBudgetBytes: 100, DiskUsedFrac: 0.5, Goroutines: 7, FDs: 3}
	got := s.String()
	for _, want := range []string{"load/cpu=1.23", "disk=50%", "goroutines=7", "fds=3"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q missing %q", got, want)
		}
	}
}
