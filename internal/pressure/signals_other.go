//go:build !linux

package pressure

// diskUsage is unavailable off Linux; the disk signal stays disabled.
func diskUsage(path string) (usedFrac float64, freeBytes int64, ok bool) {
	return 0, 0, false
}

// fdSoftLimit is unavailable off Linux; thresholds fall back to the
// documented constants.
func fdSoftLimit() int64 { return 0 }
