//go:build linux

package pressure

import "syscall"

// diskUsage reports the used fraction and free bytes of the
// filesystem holding path via statfs. Fractions are computed over the
// space visible to unprivileged users (f_bavail), matching how df
// reports fullness and how an ingest actually fails.
func diskUsage(path string) (usedFrac float64, freeBytes int64, ok bool) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil || st.Blocks == 0 {
		return 0, 0, false
	}
	bsize := uint64(st.Bsize)
	total := st.Blocks * bsize
	avail := st.Bavail * bsize
	if total == 0 {
		return 0, 0, false
	}
	return 1 - float64(avail)/float64(total), int64(avail), true
}

// fdSoftLimit returns the soft RLIMIT_NOFILE (0 when unreadable).
func fdSoftLimit() int64 {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0
	}
	return int64(lim.Cur)
}
