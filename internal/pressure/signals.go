package pressure

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// readSignals gathers one sample of real host state. Every reader is
// best-effort: a signal that cannot be read stays zero, which the
// classifier treats as "unknown, never escalate".
func readSignals(cfg Config) Signals {
	sig := Signals{
		LoadPerCPU: loadPerCPU(),
		RSSBytes:   rssBytes(),
		Goroutines: runtime.NumGoroutine(),
		FDs:        openFDs(),
	}
	if cfg.MemBudgetBytes > 0 {
		sig.MemBudgetBytes = cfg.MemBudgetBytes
	}
	if cfg.Acct != nil {
		sig.TrackedBytes = cfg.Acct.Current()
	}
	if cfg.DiskPath != "" {
		if used, free, ok := diskUsage(cfg.DiskPath); ok {
			sig.DiskUsedFrac, sig.DiskFreeBytes = used, free
		}
	}
	return sig
}

func numCPU() int { return runtime.NumCPU() }

// loadPerCPU reads the 1-minute load average from /proc/loadavg and
// normalizes it by CPU count (0 when unreadable, e.g. non-Linux).
func loadPerCPU() float64 {
	data, err := os.ReadFile("/proc/loadavg")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0
	}
	load, err := strconv.ParseFloat(fields[0], 64)
	if err != nil || load < 0 {
		return 0
	}
	cpus := numCPU()
	if cpus < 1 {
		cpus = 1
	}
	return load / float64(cpus)
}

// rssBytes reads the process resident set from /proc/self/statm
// (field 2, in pages). 0 when unreadable.
func rssBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || pages < 0 {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

// hostMemoryBytes reads MemTotal from /proc/meminfo for the automatic
// memory budget. 0 (memory check disabled) when unreadable.
func hostMemoryBytes() int64 {
	f, err := os.Open("/proc/meminfo")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "MemTotal:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || kb < 0 {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// openFDs counts entries in /proc/self/fd. 0 when unreadable.
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0
	}
	// The ReadDir call itself holds one fd open on the directory;
	// don't charge the process for the act of measuring.
	n := len(ents) - 1
	if n < 0 {
		n = 0
	}
	return n
}
