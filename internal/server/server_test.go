package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gformat"
)

// newTestServer returns a running service and its base URL.
func newTestServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

// createJob POSTs a spec and returns the created job's ID.
func createJob(t *testing.T, base string, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs: %d %s", resp.StatusCode, body)
	}
	var out createResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func getStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServerStreamBitIdentical is the core acceptance property: a
// streamed scale-14 TSV job is byte-identical to the concatenated part
// files GenerateToDir writes for the same configuration.
func TestServerStreamBitIdentical(t *testing.T) {
	cfg := core.DefaultConfig(14)
	cfg.MasterSeed = 42
	cfg.Workers = 3
	want := generateToDir(t, cfg, gformat.TSV)

	_, base := newTestServer(t, Options{})
	id := createJob(t, base, `{"scale":14,"master_seed":42,"workers":3,"format":"tsv"}`)

	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/tab-separated-values") {
		t.Fatalf("content type %q", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed %d bytes differ from %d batch bytes", len(got), len(want))
	}

	st := getStatus(t, base, id)
	if st.State != StateDone || st.Progress != 1 {
		t.Fatalf("status %+v", st)
	}
	if st.BytesStreamed != int64(len(want)) {
		t.Fatalf("bytes_streamed %d, want %d", st.BytesStreamed, len(want))
	}
}

// TestServerConcurrentJobs streams two different jobs at once and
// checks both against their batch references.
func TestServerConcurrentJobs(t *testing.T) {
	cfgA := core.DefaultConfig(12)
	cfgB := core.DefaultConfig(12)
	cfgB.MasterSeed = 9
	wantA := generateToDir(t, cfgA, gformat.TSV)
	wantB := generateToDir(t, cfgB, gformat.ADJ6)

	_, base := newTestServer(t, Options{MaxActiveStreams: 2})
	idA := createJob(t, base, `{"scale":12,"format":"tsv"}`)
	idB := createJob(t, base, `{"scale":12,"master_seed":9,"format":"adj6"}`)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	stream := func(id string, want []byte) {
		defer wg.Done()
		resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
		if err != nil {
			errs <- err
			return
		}
		defer resp.Body.Close()
		got, err := io.ReadAll(resp.Body)
		if err != nil {
			errs <- err
			return
		}
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("job %s: status %d", id, resp.StatusCode)
			return
		}
		if !bytes.Equal(got, want) {
			errs <- fmt.Errorf("job %s: %d bytes differ from %d batch bytes", id, len(got), len(want))
		}
	}
	wg.Add(2)
	go stream(idA, wantA)
	go stream(idB, wantB)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerSlowReader drips the response body and checks the bytes
// still match the batch reference: backpressure must pace generation
// without corrupting or truncating the stream.
func TestServerSlowReader(t *testing.T) {
	cfg := core.DefaultConfig(12)
	want := generateToDir(t, cfg, gformat.TSV)

	_, base := newTestServer(t, Options{PipelineDepth: 2})
	id := createJob(t, base, `{"scale":12,"format":"tsv","workers":2}`)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	chunk := make([]byte, 8192)
	for {
		n, err := resp.Body.Read(chunk)
		got.Write(chunk[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("slow read got %d bytes, want %d identical bytes", got.Len(), len(want))
	}
}

// TestServerClientDisconnect kills the client mid-stream and expects
// the job to end up canceled, with the cancellation visible in the
// expvar counters.
func TestServerClientDisconnect(t *testing.T) {
	srv, base := newTestServer(t, Options{})
	// Large enough that the stream cannot fit in kernel socket buffers.
	id := createJob(t, base, `{"scale":20,"format":"tsv","workers":2}`)

	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(resp.Body, make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // hang up mid-stream

	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := getStatus(t, base, id); st.State == StateCanceled {
			if st.ScopesDone >= st.ScopesTotal {
				t.Fatalf("canceled job claims completion: %+v", st)
			}
			break
		} else if st.State == StateDone || st.State == StateFailed {
			t.Fatalf("state %v, want canceled", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never canceled: %+v", getStatus(t, base, id))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := srv.metrics.jobsCanceled.Value(); n != 1 {
		t.Fatalf("jobs_canceled %d", n)
	}
}

// TestServerCancelEndpoint aborts a running stream via DELETE.
func TestServerCancelEndpoint(t *testing.T) {
	_, base := newTestServer(t, Options{})
	id := createJob(t, base, `{"scale":20,"format":"tsv","workers":2}`)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadFull(resp.Body, make([]byte, 1<<12)); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}
	// The stream ends (possibly truncated) and the job records the
	// cancellation.
	io.Copy(io.Discard, resp.Body)
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, base, id).State != StateCanceled {
		if time.Now().After(deadline) {
			t.Fatalf("job never canceled: %+v", getStatus(t, base, id))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerDrain covers graceful shutdown: during a drain, new jobs
// and streams get 503 while an in-flight stream runs to completion.
func TestServerDrain(t *testing.T) {
	srv, base := newTestServer(t, Options{})
	idBefore := createJob(t, base, `{"scale":12,"format":"tsv"}`)
	idParked := createJob(t, base, `{"scale":12,"format":"tsv"}`)

	resp, err := http.Get(base + "/v1/jobs/" + idBefore + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadFull(resp.Body, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}

	srv.BeginDrain()

	// New job: 503.
	presp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"scale":10}`))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain: %d", presp.StatusCode)
	}
	// New stream of a pre-existing job: 503.
	sresp, err := http.Get(base + "/v1/jobs/" + idParked + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream during drain: %d", sresp.StatusCode)
	}
	// Health flips to draining.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d", hresp.StatusCode)
	}

	// The in-flight stream still completes; Shutdown then returns.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if st := getStatus(t, base, idBefore); st.State != StateDone {
		t.Fatalf("in-flight job finished as %v", st.State)
	}
}

// TestServerShutdownCancelsOnDeadline: a stream outliving the drain
// deadline is cancelled so Shutdown can return.
func TestServerShutdownCancelsOnDeadline(t *testing.T) {
	srv, base := newTestServer(t, Options{})
	id := createJob(t, base, `{"scale":20,"format":"tsv","workers":2}`)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadFull(resp.Body, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	// Stop reading: the stream is parked on backpressure, so only the
	// deadline path can end it.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown err %v", err)
	}
	if st := getStatus(t, base, id); st.State != StateCanceled {
		t.Fatalf("state %v after forced shutdown", st.State)
	}
}

func TestServerStreamIsOneShot(t *testing.T) {
	_, base := newTestServer(t, Options{})
	id := createJob(t, base, `{"scale":10,"format":"tsv"}`)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	again, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	again.Body.Close()
	if again.StatusCode != http.StatusConflict {
		t.Fatalf("second stream: %d, want 409", again.StatusCode)
	}
}

func TestServerStreamCapacity(t *testing.T) {
	_, base := newTestServer(t, Options{MaxActiveStreams: 1})
	idA := createJob(t, base, `{"scale":20,"format":"tsv","workers":2}`)
	idB := createJob(t, base, `{"scale":10,"format":"tsv"}`)

	resp, err := http.Get(base + "/v1/jobs/" + idA + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadFull(resp.Body, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	over, err := http.Get(base + "/v1/jobs/" + idB + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	over.Body.Close()
	if over.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity stream: %d, want 503", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on capacity rejection")
	}
	// The rejected job is untouched and streams fine later.
	if st := getStatus(t, base, idB); st.State != StatePending {
		t.Fatalf("rejected job state %v", st.State)
	}
}

func TestServerBadRequests(t *testing.T) {
	_, base := newTestServer(t, Options{MaxScale: 20})
	for _, body := range []string{
		``, `{`, `{"scale":0}`, `{"scale":25}`, `{"scale":10,"format":"csr6"}`,
		`{"scale":10,"bogus_field":1}`,
	} {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status %d", body, resp.StatusCode)
		}
	}
	for _, url := range []string{"/v1/jobs/nope", "/v1/jobs/nope/stream"} {
		resp, err := http.Get(base + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
	}
}

func TestServerListAndMetrics(t *testing.T) {
	_, base := newTestServer(t, Options{EnablePprof: true})
	id := createJob(t, base, `{"scale":10,"format":"tsv"}`)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	lresp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != id || list[0].State != StateDone {
		t.Fatalf("list %+v", list)
	}

	mresp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var vars struct {
		JobsCreated int64                      `json:"jobs_created"`
		JobsDone    int64                      `json:"jobs_done"`
		Edges       int64                      `json:"edges_streamed"`
		Bytes       int64                      `json:"bytes_streamed"`
		EdgesPerSec float64                    `json:"edges_per_sec"`
		Uptime      float64                    `json:"uptime_seconds"`
		Jobs        map[string]json.RawMessage `json:"jobs"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.JobsCreated != 1 || vars.JobsDone != 1 {
		t.Fatalf("vars %+v", vars)
	}
	if vars.Edges == 0 || vars.Bytes == 0 || vars.Uptime <= 0 {
		t.Fatalf("vars %+v", vars)
	}
	if _, ok := vars.Jobs[id]; !ok {
		t.Fatalf("per-job progress missing from %v", vars.Jobs)
	}

	presp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", presp.StatusCode)
	}
}

func TestMetricsEdgesPerSec(t *testing.T) {
	m := newMetrics(newRegistry(4))
	m.addEdges(1000)
	time.Sleep(5 * time.Millisecond)
	if r := m.edgesPerSec.Rate(); r <= 0 {
		t.Fatalf("rate %v", r)
	}
	// Reading is side-effect-free with respect to other readers: the
	// second read sees the same baseline (not a zeroed delta), so
	// back-to-back reads agree up to the clock ticks between them.
	r1 := m.edgesPerSec.Rate()
	r2 := m.edgesPerSec.Rate()
	if r2 <= 0.9*r1 || r2 >= 1.1*r1 {
		t.Fatalf("back-to-back reads diverge: %v vs %v", r1, r2)
	}
	if got := m.edgesPerSec.Total(); got != 1000 {
		t.Fatalf("rate gauge total %d, want 1000", got)
	}
}

// TestMetricsConcurrentScrapes is the regression test for the old
// delta-since-last-read edges_per_sec: two monitoring systems scraping
// /debug/vars concurrently would split the delta between them, so each
// saw a fraction of the true rate (and a fast scraper starved a slow
// one to ~0). With the fixed-window gauge every concurrent reader must
// observe a positive rate of the same magnitude.
func TestMetricsConcurrentScrapes(t *testing.T) {
	m := newMetrics(newRegistry(4))
	m.addEdges(100_000)
	time.Sleep(10 * time.Millisecond)

	const readers = 8
	rates := make([]float64, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rates[i] = m.edgesPerSec.Rate()
		}(i)
	}
	wg.Wait()
	for i, r := range rates {
		if r <= 0 {
			t.Fatalf("reader %d starved: rate %v (rates %v)", i, r, rates)
		}
	}
	// All readers ran within microseconds of each other over a ≥10ms
	// window; their rates must agree to well under 2x, where the old
	// implementation produced order-of-magnitude splits.
	min, max := rates[0], rates[0]
	for _, r := range rates[1:] {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max > 2*min {
		t.Fatalf("concurrent readers disagree: min %v max %v", min, max)
	}
}

// TestMetricsPrometheusEndpoint: /metrics serves the same registry in
// Prometheus text format, with /debug/vars keys visible as
// trilliong_-prefixed series.
func TestMetricsPrometheusEndpoint(t *testing.T) {
	_, base := newTestServer(t, Options{})
	id := createJob(t, base, `{"scale":8,"format":"tsv"}`)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	presp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", presp.StatusCode)
	}
	if ct := presp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE trilliong_jobs_created counter\ntrilliong_jobs_created 1\n",
		"# TYPE trilliong_jobs_done counter\ntrilliong_jobs_done 1\n",
		"# TYPE trilliong_edges_per_sec gauge\n",
		"trilliong_edges_streamed ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, "trilliong_jobs ") {
		t.Fatalf("per-job map leaked into Prometheus exposition:\n%s", text)
	}
}

// TestPprofOptIn: the profiling endpoints are absent unless
// Options.EnablePprof is set.
func TestPprofOptIn(t *testing.T) {
	_, base := newTestServer(t, Options{})
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof mounted by default: %d", resp.StatusCode)
	}
}
