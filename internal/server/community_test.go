package server

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gformat"
)

// batchCommunity generates the layout to a directory and returns the
// part files concatenated in part order — the bytes a streamed job of
// the same spec must reproduce exactly.
func batchCommunity(t *testing.T, lay *community.Layout, format gformat.Format) []byte {
	t.Helper()
	dir := t.TempDir()
	if _, err := lay.GenerateToDir(dir, format, community.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for id := 0; id < lay.NumBlocks(); id++ {
		b, err := os.ReadFile(core.PartPath(dir, format, id))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

func streamJobByID(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestServerBipartiteStreamEqualsBatch: the first-class bipartite
// shape streams the byte-exact graph the batch community path writes
// for the equivalent two-community spec.
func TestServerBipartiteStreamEqualsBatch(t *testing.T) {
	lay, err := community.New(community.Bipartite(64, 96, 4*64, 9))
	if err != nil {
		t.Fatal(err)
	}
	want := batchCommunity(t, lay, gformat.TSV)

	_, base := newTestServer(t, Options{})
	id := createJob(t, base,
		`{"shape":"bipartite","rows":64,"cols":96,"edge_factor":4,"master_seed":9,"format":"tsv"}`)
	got := streamJobByID(t, base, id)
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed %d bytes differ from %d batch bytes", len(got), len(want))
	}

	st := getStatus(t, base, id)
	if st.State != StateDone || st.Progress != 1 {
		t.Fatalf("status %+v", st)
	}
	if st.ScopesTotal != lay.ScopeTotal() {
		t.Fatalf("scopes_total %d, want %d", st.ScopesTotal, lay.ScopeTotal())
	}
}

// TestServerCommunityStreamEqualsBatch: a full community job (mixed
// AVS/ERV blocks, embedded spec) is stream-equivalent to batch.
func TestServerCommunityStreamEqualsBatch(t *testing.T) {
	spec := `{"sizes":[8,5,8],"mixing":[[4,1,0],[1,2,1],[0,1,3]],"edges":120,"noise":0.1,"master_seed":11}`
	cfg, err := community.ParseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	lay, err := community.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := batchCommunity(t, lay, gformat.ADJ6)

	_, base := newTestServer(t, Options{})
	id := createJob(t, base, `{"shape":"community","format":"adj6","community":`+spec+`}`)
	got := streamJobByID(t, base, id)
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed %d bytes differ from %d batch bytes", len(got), len(want))
	}
	if st := getStatus(t, base, id); st.State != StateDone {
		t.Fatalf("status %+v", st)
	}
}

// TestServerCommunityStreamCacheHit: a community job's whole-stream
// artifact lands in the store and a second identical job replays it
// bit-identically — and a job differing only in its mixing matrix does
// not collide with it.
func TestServerCommunityStreamCacheHit(t *testing.T) {
	_, base, _ := newCachedServer(t, Options{})
	spec := `{"shape":"community","format":"tsv","community":{"sizes":[8,5],"mixing":[[4,1],[1,2]],"edges":80,"master_seed":7}}`
	first, c1 := streamJob(t, base, spec)
	second, c2 := streamJob(t, base, spec)
	if c1 != "miss" || c2 != "hit" {
		t.Fatalf("cache headers %q then %q, want miss then hit", c1, c2)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cache replay differs from the generated stream")
	}
	remixed := `{"shape":"community","format":"tsv","community":{"sizes":[8,5],"mixing":[[1,4],[2,1]],"edges":80,"master_seed":7}}`
	third, c3 := streamJob(t, base, remixed)
	if c3 != "miss" {
		t.Fatalf("different mixing matrix got cache header %q, want miss", c3)
	}
	if bytes.Equal(first, third) {
		t.Fatal("different mixing matrices streamed identical bytes")
	}
}

// TestServerCommunitySpecRejections: malformed community/bipartite
// specs fail at POST with a diagnostic, never at stream time.
func TestServerCommunitySpecRejections(t *testing.T) {
	_, base := newTestServer(t, Options{MaxScale: 20})
	cases := map[string]string{
		"unknown shape":            `{"shape":"torus","scale":10}`,
		"bipartite without rows":   `{"shape":"bipartite","cols":8}`,
		"bipartite zero rows":      `{"shape":"bipartite","rows":0,"cols":8}`,
		"bipartite with scale":     `{"shape":"bipartite","rows":8,"cols":8,"scale":10}`,
		"bipartite with community": `{"shape":"bipartite","rows":8,"cols":8,"community":{"sizes":[2,2],"mixing":[[0,1],[0,0]]}}`,
		"bipartite csr6":           `{"shape":"bipartite","rows":8,"cols":8,"format":"csr6"}`,
		"community without spec":   `{"shape":"community"}`,
		"community with rows":      `{"shape":"community","rows":8,"community":{"sizes":[2,2],"mixing":[[0,1],[0,0]]}}`,
		"community outer seed":     `{"shape":"community","master_seed":5,"community":{"sizes":[2,2],"mixing":[[0,1],[0,0]]}}`,
		"community zero mixing":    `{"shape":"community","community":{"sizes":[4,4],"mixing":[[0,0],[0,0]]}}`,
		"community typoed key":     `{"shape":"community","community":{"sizes":[4,4],"mixxing":[[0,1],[0,0]]}}`,
		"community over max scale": `{"shape":"community","community":{"sizes":[1048576,1048576],"mixing":[[0,1],[0,0]],"edges":16}}`,
		"classic with rows":        `{"scale":10,"rows":8}`,
	}
	for name, spec := range cases {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", name, resp.StatusCode, body)
		}
	}
}
