package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// newCachedServer returns a running store-backed service, its base URL
// and the store (opened on the server's own registry, as
// trilliong-serve wires it).
func newCachedServer(t *testing.T, opts Options) (*Server, string, *store.Store) {
	t.Helper()
	s := New(opts)
	st, err := store.Open(filepath.Join(t.TempDir(), "store"), store.Options{Telemetry: s.Telemetry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetStore(st, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL, st
}

// streamJob creates and streams one job, returning the body and the
// X-Trilliong-Cache header.
func streamJob(t *testing.T, base, spec string) ([]byte, string) {
	t.Helper()
	id := createJob(t, base, spec)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header.Get("X-Trilliong-Cache")
}

// TestServerStreamCacheHit: the first stream of a spec is a miss that
// populates the store; a second identical job is served from it,
// bit-identically, with the hit header and matching job accounting.
func TestServerStreamCacheHit(t *testing.T) {
	s, base, st := newCachedServer(t, Options{})
	spec := `{"scale":12,"master_seed":7,"workers":2,"format":"adj6"}`

	cold, cacheHdr := streamJob(t, base, spec)
	if cacheHdr != "miss" {
		t.Fatalf("first stream X-Trilliong-Cache = %q, want miss", cacheHdr)
	}
	if st.Stats().Ingests != 1 {
		t.Fatalf("store after first stream: %+v", st.Stats())
	}

	id2 := createJob(t, base, spec)
	resp, err := http.Get(base + "/v1/jobs/" + id2 + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	warm, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Trilliong-Cache"); got != "hit" {
		t.Fatalf("second stream X-Trilliong-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cached stream (%d bytes) differs from generated (%d bytes)", len(warm), len(cold))
	}

	// Job accounting on the hit path matches a generated run: scopes =
	// full range, edges from the artifact metadata, state done.
	stat := getStatus(t, base, id2)
	if stat.State != StateDone || stat.Progress != 1 {
		t.Fatalf("cached job status %+v", stat)
	}
	if stat.BytesStreamed != int64(len(warm)) || stat.EdgesStreamed == 0 {
		t.Fatalf("cached job accounting %+v", stat)
	}
	if hits := s.Telemetry().CounterValue(store.MetricHits); hits != 1 {
		t.Fatalf("store hits = %d, want 1", hits)
	}
}

// TestServerStreamCorruptEntryRegenerates: a corrupted cached artifact
// must fail verification, fall back to generation, and serve the exact
// bytes anyway.
func TestServerStreamCorruptEntryRegenerates(t *testing.T) {
	s, base, st := newCachedServer(t, Options{})
	spec := `{"scale":12,"master_seed":9,"workers":2,"format":"tsv"}`
	cold, _ := streamJob(t, base, spec)

	c, err := JobSpec{Scale: 12, MasterSeed: 9, Workers: 2, Format: "tsv"}.compile(specLimits{})
	if err != nil {
		t.Fatal(err)
	}
	key := core.PartKey(c.cfg, c.format, partition.Range{Lo: c.lo, Hi: c.hi})
	if err := st.CorruptForTest(key); err != nil {
		t.Fatal(err)
	}

	warm, cacheHdr := streamJob(t, base, spec)
	if cacheHdr != "miss" {
		t.Fatalf("corrupt-entry stream X-Trilliong-Cache = %q, want miss", cacheHdr)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("regenerated stream differs from original")
	}
	if got := s.Telemetry().CounterValue(store.MetricVerifyFailures); got != 1 {
		t.Fatalf("verify_failures = %d, want 1", got)
	}
	// The regeneration re-ingested the artifact: next stream hits.
	_, cacheHdr = streamJob(t, base, spec)
	if cacheHdr != "hit" {
		t.Fatalf("post-recovery stream X-Trilliong-Cache = %q, want hit", cacheHdr)
	}
}

// TestServerDownload: /download serves the cached artifact whole (with
// Content-Length), 404s when the artifact is not cached, and is
// repeatable — unlike the one-shot /stream.
func TestServerDownload(t *testing.T) {
	_, base, _ := newCachedServer(t, Options{})
	spec := `{"scale":12,"master_seed":3,"workers":2,"format":"adj6"}`

	id := createJob(t, base, spec)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/download")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("X-Trilliong-Cache") != "miss" {
		t.Fatalf("pre-stream download: status %d, cache %q", resp.StatusCode, resp.Header.Get("X-Trilliong-Cache"))
	}

	streamed, _ := streamJob(t, base, spec)
	for i := 0; i < 2; i++ { // downloads are repeatable
		resp, err := http.Get(base + "/v1/jobs/" + id + "/download")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Trilliong-Cache") != "hit" {
			t.Fatalf("download %d: status %d, cache %q", i, resp.StatusCode, resp.Header.Get("X-Trilliong-Cache"))
		}
		if resp.ContentLength != int64(len(streamed)) || !bytes.Equal(body, streamed) {
			t.Fatalf("download %d: %d bytes (Content-Length %d), want %d", i, len(body), resp.ContentLength, len(streamed))
		}
	}
}

// TestServerDownloadWithoutStore: a storeless server 404s cleanly.
func TestServerDownloadWithoutStore(t *testing.T) {
	_, base := newTestServer(t, Options{})
	id := createJob(t, base, `{"scale":10}`)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/download")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("download without store: status %d, want 404", resp.StatusCode)
	}
}

// TestServerCacheSharedWithBatch: a server job's artifact key equals
// the batch part key for the same configuration and range, so a store
// populated by ResumeToDirStore serves server streams (and vice versa).
func TestServerCacheSharedWithBatch(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	st, err := store.Open(root, store.Options{Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(12)
	cfg.MasterSeed = 5
	cfg.Workers = 1 // one part covering the whole range = one stream artifact
	dir := t.TempDir()
	if _, err := core.ResumeToDirStore(cfg, dir, gformat.ADJ6, st); err != nil {
		t.Fatal(err)
	}

	s := New(Options{MaxWorkersPerJob: 1})
	if err := s.SetStore(st, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body, cacheHdr := streamJob(t, ts.URL, `{"scale":12,"master_seed":5,"workers":1,"format":"adj6"}`)
	if cacheHdr != "hit" {
		t.Fatalf("batch-populated store: stream X-Trilliong-Cache = %q, want hit", cacheHdr)
	}
	want, err := os.ReadFile(filepath.Join(dir, "part-00000.adj6"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("server stream from batch-populated store differs from the batch part file")
	}
}
