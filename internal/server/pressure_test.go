package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/pressure"
	"repro/internal/sched"
)

// pressureOpts enables the built-in controller. Tests own the level —
// no Start, no background sampling — so no real host signal can move
// it under us.
func pressureOpts() Options {
	return Options{
		MaxActiveStreams: 2,
		EnablePressure:   true,
		PressureConfig: pressure.Config{
			MemBudgetBytes: -1,
			LowerAfter:     2,
		},
	}
}

func getCode(t *testing.T, url string) (int, http.Header, map[string]string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, resp.Header, body
}

// TestReadyzAndDegradedCreate: /readyz flips to 503 at critical (with
// a Retry-After) and back; /healthz stays a liveness probe; POST
// /v1/jobs sheds with 503 under critical.
func TestReadyzAndDegradedCreate(t *testing.T) {
	s, base := newTestServer(t, pressureOpts())
	ctrl := s.Pressure()
	if ctrl == nil {
		t.Fatal("EnablePressure did not build a controller")
	}

	code, _, body := getCode(t, base+"/readyz")
	if code != http.StatusOK || body["pressure"] != "ok" {
		t.Fatalf("readyz at ok = %d %v", code, body)
	}

	ctrl.Force(pressure.Critical)
	code, hdr, body := getCode(t, base+"/readyz")
	if code != http.StatusServiceUnavailable || body["pressure"] != "critical" {
		t.Fatalf("readyz at critical = %d %v", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on pressure-shed readyz")
	}
	// Liveness is not readiness: the process is loaded, not dead.
	if code, _, body = getCode(t, base+"/healthz"); code != http.StatusOK || body["pressure"] != "critical" {
		t.Fatalf("healthz at critical = %d %v", code, body)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"scale":10,"format":"tsv"}`))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST under critical = %d %s", resp.StatusCode, msg)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on pressure-shed create")
	}

	ctrl.Force(pressure.OK)
	if code, _, _ = getCode(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d", code)
	}
	createJob(t, base, `{"scale":10,"format":"tsv"}`)
}

// TestPressureDegradationChaos is the acceptance scenario, driven
// end-to-end through faultpoint injection (the same mechanism the CI
// smoke job arms via TRILLIONG_FAULTPOINTS): synthetic pressure walks
// ok→critical→ok and the server sheds, pauses the background class,
// flips /readyz, recovers cleanly — and streams byte-identical output
// throughout. Run with -race.
func TestPressureDegradationChaos(t *testing.T) {
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)

	cfg := core.DefaultConfig(12)
	cfg.MasterSeed = 7
	cfg.Workers = 3
	want := generateToDir(t, cfg, gformat.TSV)
	spec := `{"scale":12,"master_seed":7,"workers":3,"format":"tsv","class":"%s"}`

	s, base := newTestServer(t, pressureOpts())
	ctrl := s.Pressure()

	// Unpressured baseline: a batch job streams the reference bytes.
	baseline := streamJobID(t, base, createJob(t, base, strings.Replace(spec, "%s", "batch", 1)))
	if !bytes.Equal(baseline, want) {
		t.Fatalf("baseline stream differs from batch reference (%d vs %d bytes)", len(baseline), len(want))
	}

	// Jobs created while still ok — creation is what critical sheds.
	bgJob := createJob(t, base, strings.Replace(spec, "%s", "background", 1))
	batchJob := createJob(t, base, strings.Replace(spec, "%s", "batch", 1))

	// ok → critical, via the injection faultpoint.
	if err := faultpoint.Arm(pressure.PointSignals, "pressure:level=critical"); err != nil {
		t.Fatal(err)
	}
	if _, lvl := ctrl.Sample(); lvl != pressure.Critical {
		t.Fatalf("injected sample left level %v", lvl)
	}
	if code, _, _ := getCode(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during critical = %d", code)
	}

	// The background stream parks: its class is paused at critical.
	bgDone := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(base + "/v1/jobs/" + bgJob + "/stream")
		if err != nil {
			bgDone <- nil
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			bgDone <- nil
			return
		}
		b, _ := io.ReadAll(resp.Body)
		bgDone <- b
	}()
	select {
	case b := <-bgDone:
		t.Fatalf("background stream ran under critical pressure (%d bytes, nil=%v)", len(b), b == nil)
	case <-time.After(150 * time.Millisecond):
	}

	// Batch work still flows through the shrunk pool — and its bytes
	// are identical: pressure decides when, never what.
	if got := streamJobID(t, base, batchJob); !bytes.Equal(got, want) {
		t.Fatalf("batch stream under pressure differs (%d vs %d bytes)", len(got), len(want))
	}
	if s.Telemetry().CounterValue(sched.MetricBackgroundDeferred) == 0 {
		t.Fatal("background_deferred_total never counted")
	}

	// critical → ok: re-arm the point with calm signals and sample
	// through the debounce (LowerAfter 2).
	if err := faultpoint.Arm(pressure.PointSignals, "pressure:level=ok"); err != nil {
		t.Fatal(err)
	}
	ctrl.Sample()
	if lvl := ctrl.Level(); lvl != pressure.Critical {
		t.Fatalf("recovered after one calm sample despite LowerAfter=2 (level %v)", lvl)
	}
	ctrl.Sample()
	if lvl := ctrl.Level(); lvl != pressure.OK {
		t.Fatalf("level after recovery = %v", lvl)
	}
	if code, _, _ := getCode(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d", code)
	}

	// The parked background stream resumes on the transition (OnChange
	// → Poke) and its bytes are identical too.
	select {
	case b := <-bgDone:
		if b == nil {
			t.Fatal("background stream failed after recovery")
		}
		if !bytes.Equal(b, want) {
			t.Fatalf("background stream differs after pressure cycle (%d vs %d bytes)", len(b), len(want))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("background stream never resumed after recovery")
	}
}

// streamJob GETs a job's stream and returns its bytes.
func streamJobID(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: %d %v", id, resp.StatusCode, err)
	}
	return b
}
