package server

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gformat"
)

// concatParts reads every part file in dir in part order and returns
// the concatenated bytes — the batch-path reference a stream must
// reproduce.
func concatParts(t *testing.T, dir string) []byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

func generateToDir(t *testing.T, cfg core.Config, format gformat.Format) []byte {
	t.Helper()
	dir := t.TempDir()
	if _, err := core.Generate(cfg, core.FileSinks(dir, format, cfg.NumVertices())); err != nil {
		t.Fatal(err)
	}
	return concatParts(t, dir)
}

func TestStreamRangeMatchesGenerateToDir(t *testing.T) {
	for _, format := range []gformat.Format{gformat.TSV, gformat.ADJ6} {
		cfg := core.DefaultConfig(12)
		cfg.Workers = 3
		cfg.NoiseParam = 0.1
		want := generateToDir(t, cfg, format)

		var buf bytes.Buffer
		st, err := StreamRange(context.Background(), cfg, format, 0, cfg.NumVertices(), &buf, StreamOptions{})
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("%v: streamed %d bytes differ from %d batch bytes", format, buf.Len(), len(want))
		}
		if st.BytesWritten != int64(buf.Len()) {
			t.Fatalf("%v: BytesWritten %d, wrote %d", format, st.BytesWritten, buf.Len())
		}
		if st.Scopes != cfg.NumVertices() {
			t.Fatalf("%v: scopes %d, want %d", format, st.Scopes, cfg.NumVertices())
		}
		if st.Edges == 0 || st.PeakWorkerBytes == 0 {
			t.Fatalf("%v: empty stats %+v", format, st)
		}
	}
}

func TestStreamRangeSubrangesConcatenate(t *testing.T) {
	cfg := core.DefaultConfig(10)
	nv := cfg.NumVertices()
	var full bytes.Buffer
	if _, err := StreamRange(context.Background(), cfg, gformat.TSV, 0, nv, &full, StreamOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	var pieces bytes.Buffer
	cuts := []int64{0, 17, nv / 3, nv / 2, nv}
	for i := 0; i+1 < len(cuts); i++ {
		// Different worker counts per piece must not change the bytes.
		opt := StreamOptions{Workers: i + 1, Depth: 2}
		if _, err := StreamRange(context.Background(), cfg, gformat.TSV, cuts[i], cuts[i+1], &pieces, opt); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(full.Bytes(), pieces.Bytes()) {
		t.Fatal("concatenated sub-range streams differ from the full stream")
	}
}

func TestStreamRangeValidation(t *testing.T) {
	cfg := core.DefaultConfig(8)
	ctx := context.Background()
	var buf bytes.Buffer
	if _, err := StreamRange(ctx, cfg, gformat.CSR6, 0, 1, &buf, StreamOptions{}); err == nil {
		t.Fatal("CSR6 stream accepted")
	}
	if _, err := StreamRange(ctx, cfg, gformat.TSV, -1, 1, &buf, StreamOptions{}); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := StreamRange(ctx, cfg, gformat.TSV, 0, cfg.NumVertices()+1, &buf, StreamOptions{}); err == nil {
		t.Fatal("hi beyond |V| accepted")
	}
	if _, err := StreamRange(ctx, cfg, gformat.TSV, 5, 2, &buf, StreamOptions{}); err == nil {
		t.Fatal("hi < lo accepted")
	}
	cfg.Scale = 0
	if _, err := StreamRange(ctx, cfg, gformat.TSV, 0, 1, &buf, StreamOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestStreamRangeEmptyRange(t *testing.T) {
	cfg := core.DefaultConfig(8)
	var buf bytes.Buffer
	st, err := StreamRange(context.Background(), cfg, gformat.TSV, 7, 7, &buf, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Scopes != 0 || buf.Len() != 0 {
		t.Fatalf("empty range produced %d scopes, %d bytes", st.Scopes, buf.Len())
	}
}

// TestPipelineRunaheadBounded is the backpressure property: with no
// consumer, producers stop after filling their bounded channels, so
// run-ahead never exceeds workers·(depth+1) scopes.
func TestPipelineRunaheadBounded(t *testing.T) {
	cfg := core.DefaultConfig(12)
	const workers, depth = 2, 4
	p, gens, err := newPipeline(cfg, 0, cfg.NumVertices(), workers, depth)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.start(ctx, cfg.MasterSeed, gens)

	// Let the producers run head-free; they must stall at the bound.
	deadline := time.Now().Add(time.Second)
	limit := int64(workers * (depth + 1))
	for time.Now().Before(deadline) {
		if p.generated.Load() > limit {
			t.Fatalf("run-ahead %d exceeds bound %d", p.generated.Load(), limit)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g := p.generated.Load(); g < int64(workers*depth) {
		t.Fatalf("producers generated only %d scopes; pipeline not running", g)
	}

	// Drain a prefix in order: scopes must arrive exactly in vertex
	// order even though two producers interleave.
	for u := int64(0); u < 64; u++ {
		msg, err := p.next(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if msg.src != u {
			t.Fatalf("scope %d arrived when %d was due", msg.src, u)
		}
		p.recycle(u, msg.dsts)
	}
	cancel()
	p.wg.Wait()
}

func TestStreamRangeCancel(t *testing.T) {
	cfg := core.DefaultConfig(16)
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	var buf bytes.Buffer
	opt := StreamOptions{Workers: 2, OnScope: func(int64, int) {
		if n++; n == 100 {
			cancel()
		}
	}}
	_, err := StreamRange(ctx, cfg, gformat.TSV, 0, cfg.NumVertices(), &buf, opt)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= cfg.NumVertices() {
		t.Fatal("stream ran to completion despite cancellation")
	}
}

// errWriter fails after accepting n bytes, like a client that vanished.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n -= len(p); e.n < 0 {
		return 0, os.ErrClosed
	}
	return len(p), nil
}

func TestStreamRangeWriterError(t *testing.T) {
	cfg := core.DefaultConfig(14)
	_, err := StreamRange(context.Background(), cfg, gformat.TSV, 0, cfg.NumVertices(),
		&errWriter{n: 1 << 16}, StreamOptions{Workers: 2})
	if err == nil {
		t.Fatal("write error not surfaced")
	}
}
