package server

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/pressure"
	"repro/internal/store"
)

// Metric names the server's cache plumbing publishes
// (docs/OBSERVABILITY.md is the catalog).
const (
	// MetricSpoolSwept counts stale spool temp files removed when a
	// store is attached — leftovers of streams cut mid-copy in an
	// earlier process life.
	MetricSpoolSwept = "server.spool_swept_total"
	// MetricPresignRedirects counts downloads answered with a 302 to a
	// presigned cold-tier URL instead of a local stream.
	MetricPresignRedirects = "server.presign_redirects_total"
)

// spoolPrefixes are the temp-file name prefixes the cache plumbing
// creates in the spool directory: store hits replayed into streams,
// whole-file downloads, and generation tees. Anything with one of
// these names that exists when a store is attached is an orphan of a
// previous process life.
var spoolPrefixes = []string{"hit-", "dl-", "gen-"}

// sweepSpool removes stale spool temps and reports how many. A crash
// or kill mid-stream leaks them (the deferred removes never ran), and
// they can hold artifact-sized payloads, so attach-time is the moment
// to reclaim the space: nothing is in flight yet, so every matching
// name is garbage.
func sweepSpool(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	swept := 0
	for _, de := range entries {
		name := de.Name()
		for _, prefix := range spoolPrefixes {
			if strings.HasPrefix(name, prefix) {
				if os.Remove(filepath.Join(dir, name)) == nil {
					swept++
				}
				break
			}
		}
	}
	return swept
}

// SetStore attaches a content-addressed artifact store to the server:
// streams are satisfied from it when the job's (config, range, format)
// key is present (X-Trilliong-Cache: hit), completed streams are
// ingested into it, and GET /v1/jobs/{id}/download serves cached
// artifacts whole. spoolDir stages in-flight copies; "" puts it inside
// the store. Call before serving requests — the field is not
// synchronized against in-flight handlers. Open the store with the
// server's Telemetry() registry to surface the store.* metrics on
// /metrics.
func (s *Server) SetStore(st *store.Store, spoolDir string) error {
	if spoolDir == "" {
		spoolDir = filepath.Join(st.Dir(), "spool")
	}
	if err := os.MkdirAll(spoolDir, 0o755); err != nil {
		return fmt.Errorf("server: spool dir: %w", err)
	}
	if n := sweepSpool(spoolDir); n > 0 {
		s.metrics.tel.Counter(MetricSpoolSwept).Add(int64(n))
	}
	s.store = st
	s.spoolDir = spoolDir
	if p := s.pressure; p != nil {
		// Cached artifacts are the cheapest thing to give back when the
		// host strains: track every level change and apply the current
		// one now.
		p.OnChange(func(lvl pressure.Level) { st.SetPressureLevel(lvl) })
		st.SetPressureLevel(p.Level())
	}
	return nil
}

// jobKey derives the artifact key of a job's exact output: the part
// bytes of its vertex range in its format. Classic jobs use
// core.PartKey, community jobs the layout's whole-stream key, so server
// jobs share cache entries with batch and distributed runs of the same
// configuration.
func jobKey(job *Job) store.Key {
	if job.layout != nil {
		return job.layout.ArtifactKey(job.format)
	}
	return core.PartKey(job.cfg, job.format, partition.Range{Lo: job.lo, Hi: job.hi})
}

// serveFromStore satisfies a started stream from the artifact store.
// It reports whether it did; false means a miss (or a corrupt entry,
// already evicted) and the caller generates. Hits stream through the
// normal byte/edge accounting so job status and metrics read the same
// as a generated run.
func (s *Server) serveFromStore(w http.ResponseWriter, out *flushWriter, job *Job) (bool, error) {
	spool, err := os.CreateTemp(s.spoolDir, "hit-*")
	if err != nil {
		return false, err
	}
	spoolPath := spool.Name()
	spool.Close()
	os.Remove(spoolPath) // Retrieve re-creates it atomically
	defer os.Remove(spoolPath)

	info, ok, err := s.store.Retrieve(jobKey(job), spoolPath)
	if err != nil || !ok {
		return false, err
	}
	f, err := os.Open(spoolPath)
	if err != nil {
		return false, err
	}
	defer f.Close()

	w.Header().Set("X-Trilliong-Cache", "hit")
	if _, err := io.Copy(out, f); err != nil {
		return true, err
	}
	// The artifact carries its edge count as sidecar metadata; scopes
	// are the stream's scope total (one per vertex for the flat path,
	// one per block row for community layouts).
	job.scopes.Store(job.scopesTotal())
	job.edges.Store(info.Edges)
	s.metrics.scopesTotal.Add(job.scopesTotal())
	s.metrics.addEdges(info.Edges)
	return true, nil
}

// spoolWriter tees a generating stream into a spool file so a clean
// finish can be ingested into the store. Spooling is best-effort: a
// spool-side write error (disk full, …) abandons the copy but never
// disturbs the client's stream.
type spoolWriter struct {
	io.Writer // the client
	f         *os.File
	broken    bool
}

func (sw *spoolWriter) Write(p []byte) (int, error) {
	n, err := sw.Writer.Write(p)
	if !sw.broken && n > 0 {
		if _, werr := sw.f.Write(p[:n]); werr != nil {
			sw.broken = true
		}
	}
	return n, err
}

// ingestSpooled finishes the miss path: if the stream completed cleanly
// and the spool copy is intact, the artifact enters the store.
func (s *Server) ingestSpooled(sw *spoolWriter, job *Job, streamErr error) {
	path := sw.f.Name()
	defer os.Remove(path)
	syncErr := sw.f.Sync()
	closeErr := sw.f.Close()
	if streamErr != nil || sw.broken || syncErr != nil || closeErr != nil {
		return
	}
	// Ingest failures are deliberately swallowed: the client got its
	// stream; the cache just stays cold. The store's own metrics make
	// persistent ingest trouble visible.
	s.store.IngestFile(jobKey(job), path, job.edges.Load())
}

// handleDownload serves a job's complete artifact from the store (the
// whole-file dual of /stream: re-downloadable, Content-Length, no
// generation). 404 with X-Trilliong-Cache: miss means the artifact is
// not cached — stream the job (or re-run it) to materialize it.
func (s *Server) handleDownload(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if s.store == nil {
		writeError(w, http.StatusNotFound, "no artifact store configured")
		return
	}
	key := jobKey(job)

	// Zero-copy delivery: when the artifact lives only in the cold tier
	// and the backend can mint presigned URLs, redirect the client to
	// the object store instead of pulling the payload through this
	// process. Any trouble on this path (backend unreachable, presign
	// unsupported) falls through to the local stream below, which
	// promotes the object and serves it — correctness never depends on
	// the redirect.
	if s.presignTTL > 0 {
		if local, _, _ := s.store.Location(key); !local {
			if u, ok, err := s.store.PresignGet(key, s.presignTTL); err == nil && ok {
				s.metrics.tel.Counter(MetricPresignRedirects).Inc()
				w.Header().Set("X-Trilliong-Cache", "remote")
				w.Header().Set("X-Trilliong-Job-Id", job.ID)
				http.Redirect(w, r, u, http.StatusFound)
				return
			}
		}
	}

	spool, err := os.CreateTemp(s.spoolDir, "dl-*")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "spool: %v", err)
		return
	}
	spoolPath := spool.Name()
	spool.Close()
	os.Remove(spoolPath)
	defer os.Remove(spoolPath)

	info, ok, err := s.store.Retrieve(key, spoolPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store: %v", err)
		return
	}
	if !ok {
		w.Header().Set("X-Trilliong-Cache", "miss")
		writeError(w, http.StatusNotFound, "artifact for job %s is not cached", job.ID)
		return
	}
	f, err := os.Open(spoolPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "spool: %v", err)
		return
	}
	defer f.Close()

	if job.format == gformat.TSV {
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.Header().Set("X-Trilliong-Cache", "hit")
	w.Header().Set("X-Trilliong-Job-Id", job.ID)
	w.Header().Set("Content-Length", fmt.Sprint(info.Size))
	w.WriteHeader(http.StatusOK)
	n, _ := io.Copy(w, f)
	s.metrics.bytesTotal.Add(n)
}
