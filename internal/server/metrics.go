package server

import (
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// metrics bridges the service's live counters onto an instance-local
// telemetry.Registry. The registry serves two expositions — /debug/vars
// (expvar-style JSON, bit-compatible with the pre-telemetry keys) and
// /metrics (Prometheus text) — from the same underlying values.
// Nothing is published globally, so multiple servers — e.g. in tests —
// never collide.
type metrics struct {
	start time.Time
	tel   *telemetry.Registry

	jobsCreated  *telemetry.Counter
	jobsDone     *telemetry.Counter
	jobsFailed   *telemetry.Counter
	jobsCanceled *telemetry.Counter
	jobsRejected *telemetry.Counter
	// retryAfterSecs is the Retry-After the last over-capacity
	// rejection advertised — rising values mean clients are hammering
	// a saturated server.
	retryAfterSecs *telemetry.Gauge

	streamsActive *telemetry.Gauge
	scopesTotal   *telemetry.Counter
	edgesTotal    *telemetry.Counter
	bytesTotal    *telemetry.Counter

	// edgesPerSec averages the edge throughput over a fixed sliding
	// window. Unlike the old delta-since-last-read gauge, the window is
	// independent of scrape cadence, so two concurrent /debug/vars
	// readers observe the same rate instead of corrupting each other's
	// delta.
	edgesPerSec *telemetry.RateGauge
}

// newMetrics wires the counters, the derived gauges and the per-job
// progress snapshot into one registry, under the historical
// /debug/vars key names.
func newMetrics(reg *registry) *metrics {
	tel := telemetry.NewRegistry()
	m := &metrics{
		start:          time.Now(),
		tel:            tel,
		jobsCreated:    tel.Counter("jobs_created"),
		jobsDone:       tel.Counter("jobs_done"),
		jobsFailed:     tel.Counter("jobs_failed"),
		jobsCanceled:   tel.Counter("jobs_canceled"),
		jobsRejected:   tel.Counter("jobs_rejected"),
		retryAfterSecs: tel.Gauge("retry_after_seconds"),
		streamsActive:  tel.Gauge("streams_active"),
		scopesTotal:    tel.Counter("scopes_streamed"),
		edgesTotal:     tel.Counter("edges_streamed"),
		bytesTotal:     tel.Counter("bytes_streamed"),
		edgesPerSec:    tel.RateGauge("edges_per_sec", 0),
	}
	tel.GaugeFunc("uptime_seconds", func() float64 {
		return time.Since(m.start).Seconds()
	})
	tel.Func("jobs", func() any {
		type progress struct {
			State    JobState `json:"state"`
			Progress float64  `json:"progress"`
			Edges    int64    `json:"edges"`
		}
		out := make(map[string]progress)
		for _, st := range reg.list() {
			out[st.ID] = progress{State: st.State, Progress: st.Progress, Edges: st.EdgesStreamed}
		}
		return out
	})
	return m
}

// addEdges feeds n streamed edges into both the lifetime total and the
// windowed rate.
func (m *metrics) addEdges(n int64) {
	m.edgesTotal.Add(n)
	m.edgesPerSec.Add(n)
}

// handler serves the counters as a flat JSON object, the same shape
// expvar's own /debug/vars handler produces.
func (m *metrics) handler(w http.ResponseWriter, r *http.Request) {
	m.tel.JSONHandler().ServeHTTP(w, r)
}

// promHandler serves the same registry in Prometheus text format.
func (m *metrics) promHandler(w http.ResponseWriter, r *http.Request) {
	m.tel.PrometheusHandler().ServeHTTP(w, r)
}
