package server

import (
	"expvar"
	"net/http"
	"sync"
	"time"
)

// metrics aggregates the service-wide live counters served at
// /debug/vars in expvar format. The variables are instance-local (not
// published to the global expvar registry) so multiple servers — e.g.
// in tests — never collide.
type metrics struct {
	start time.Time

	jobsCreated  expvar.Int
	jobsDone     expvar.Int
	jobsFailed   expvar.Int
	jobsCanceled expvar.Int
	jobsRejected expvar.Int
	// retryAfterSecs is the Retry-After the last over-capacity
	// rejection advertised — rising values mean clients are hammering
	// a saturated server.
	retryAfterSecs expvar.Int

	streamsActive expvar.Int
	scopesTotal   expvar.Int
	edgesTotal    expvar.Int
	bytesTotal    expvar.Int

	// rate state for the edges_per_sec gauge: the rate is the edge
	// delta between consecutive /debug/vars reads (first read: since
	// start).
	rateMu    sync.Mutex
	lastRead  time.Time
	lastEdges int64
	lastRate  float64

	vars *expvar.Map
}

// newMetrics wires the counters, the derived gauges and the per-job
// progress snapshot into one expvar map.
func newMetrics(reg *registry) *metrics {
	m := &metrics{start: time.Now(), vars: new(expvar.Map).Init()}
	m.vars.Set("jobs_created", &m.jobsCreated)
	m.vars.Set("jobs_done", &m.jobsDone)
	m.vars.Set("jobs_failed", &m.jobsFailed)
	m.vars.Set("jobs_canceled", &m.jobsCanceled)
	m.vars.Set("jobs_rejected", &m.jobsRejected)
	m.vars.Set("retry_after_seconds", &m.retryAfterSecs)
	m.vars.Set("streams_active", &m.streamsActive)
	m.vars.Set("scopes_streamed", &m.scopesTotal)
	m.vars.Set("edges_streamed", &m.edgesTotal)
	m.vars.Set("bytes_streamed", &m.bytesTotal)
	m.vars.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(m.start).Seconds()
	}))
	m.vars.Set("edges_per_sec", expvar.Func(func() any { return m.edgesPerSec() }))
	m.vars.Set("jobs", expvar.Func(func() any {
		type progress struct {
			State    JobState `json:"state"`
			Progress float64  `json:"progress"`
			Edges    int64    `json:"edges"`
		}
		out := make(map[string]progress)
		for _, st := range reg.list() {
			out[st.ID] = progress{State: st.State, Progress: st.Progress, Edges: st.EdgesStreamed}
		}
		return out
	}))
	return m
}

// edgesPerSec returns the streaming rate over the window since the
// previous read (or since start on the first read). Back-to-back reads
// inside one millisecond reuse the previous value instead of dividing
// by ~zero.
func (m *metrics) edgesPerSec() float64 {
	m.rateMu.Lock()
	defer m.rateMu.Unlock()
	now := time.Now()
	last := m.lastRead
	if last.IsZero() {
		last = m.start
	}
	dt := now.Sub(last)
	if dt < time.Millisecond {
		return m.lastRate
	}
	edges := m.edgesTotal.Value()
	m.lastRate = float64(edges-m.lastEdges) / dt.Seconds()
	m.lastRead = now
	m.lastEdges = edges
	return m.lastRate
}

// handler serves the counters as a flat JSON object, the same shape
// expvar's own /debug/vars handler produces.
func (m *metrics) handler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write([]byte(m.vars.String()))
	w.Write([]byte("\n"))
}
