package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/recvec"
	"repro/internal/sched"
	"repro/internal/skg"
)

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle: pending → queued → running → done | failed | canceled.
// A pending job may also go straight to canceled; a queued job whose
// admission is shed returns to pending (retryable).
const (
	StatePending  JobState = "pending"
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is the wire-format generation request accepted by
// POST /v1/jobs. Zero fields take the generator's defaults: edge
// factor 16, the Graph500 seed matrix, master seed 1, format "tsv",
// and the full vertex range [0, 2^scale).
type JobSpec struct {
	// Scale is log2 of the vertex count (required).
	Scale int `json:"scale"`
	// EdgeFactor is |E|/|V| (0 = 16).
	EdgeFactor int64 `json:"edge_factor,omitempty"`
	// Seed is the stochastic seed matrix [a, b, c, d] (nil = Graph500).
	Seed *[4]float64 `json:"seed,omitempty"`
	// Noise is the NSKG noise parameter (0 disables, 0.1 standard).
	Noise float64 `json:"noise,omitempty"`
	// MasterSeed selects the pseudo-random universe (0 = 1).
	MasterSeed uint64 `json:"master_seed,omitempty"`
	// Workers is the producer goroutine count (0 = server default,
	// capped by the server's per-job limit).
	Workers int `json:"workers,omitempty"`
	// Format is "tsv" or "adj6" ("" = "tsv"). CSR6 needs a seekable
	// sink and cannot stream.
	Format string `json:"format,omitempty"`
	// Lo/Hi select a vertex sub-range [Lo, Hi) (nil = full range).
	Lo *int64 `json:"lo,omitempty"`
	Hi *int64 `json:"hi,omitempty"`
	// AllowDuplicates skips in-scope dedup (Graph500-edge-list
	// semantics).
	AllowDuplicates bool `json:"allow_duplicates,omitempty"`
	// Class is the scheduling priority class: "interactive", "batch"
	// (the default) or "background".
	Class string `json:"class,omitempty"`

	// Shape selects the generation model: "" or "skg" is the classic
	// recursive-vector path above; "bipartite" generates a plain
	// bipartite graph (Rows source vertices, Cols destination vertices,
	// EdgeFactor·Rows edges — the two-community degenerate case);
	// "community" generates the full community composition described by
	// Community. The community shapes stream whole graphs: Scale, Seed,
	// Noise, Lo and Hi must be unset.
	Shape string `json:"shape,omitempty"`
	// Rows/Cols size the bipartite shape (both required for it).
	Rows *int64 `json:"rows,omitempty"`
	Cols *int64 `json:"cols,omitempty"`
	// Community is the community spec (internal/community's JSON wire
	// format), required by — and exclusive to — shape "community".
	Community json.RawMessage `json:"community,omitempty"`
}

// specLimits bounds what a spec may ask of the server.
type specLimits struct {
	maxScale         int
	maxWorkersPerJob int
}

// compiled is a spec resolved against the server limits: either a core
// configuration (classic shape) or a community layout, plus the
// streamable format and concrete vertex range.
type compiled struct {
	cfg    core.Config
	layout *community.Layout
	format gformat.Format
	lo, hi int64
}

// scopesTotal is the number of scopes the job's stream emits: one per
// vertex for the flat path, one per (block, source row) for community
// layouts (a vertex heads one scope per block it sources).
func (c compiled) scopesTotal() int64 {
	if c.layout != nil {
		return c.layout.ScopeTotal()
	}
	return c.hi - c.lo
}

// compileFormat resolves and bounds the spec's format: only the
// concatenation-safe encodings stream (and community layouts need them
// for the same reason — see community.GenerateToDir).
func (s JobSpec) compileFormat() (gformat.Format, error) {
	name := s.Format
	if name == "" {
		name = "tsv"
	}
	format, err := gformat.ParseFormat(name)
	if err != nil {
		return 0, err
	}
	if format != gformat.TSV && format != gformat.ADJ6 {
		return 0, fmt.Errorf("server: format %v is not streamable (use tsv or adj6)", format)
	}
	return format, nil
}

// compile validates the spec against the limits and resolves it to a
// compiled job.
func (s JobSpec) compile(lim specLimits) (compiled, error) {
	switch s.Shape {
	case "", "skg":
		return s.compileClassic(lim)
	case "bipartite", "community":
		return s.compileCommunity(lim)
	default:
		return compiled{}, fmt.Errorf("server: unknown shape %q (want skg, bipartite or community)", s.Shape)
	}
}

// compileCommunity resolves the bipartite and community shapes to a
// layout. The classic knobs that have no meaning here must be unset, so
// a typo'd spec fails loudly instead of silently ignoring half itself.
func (s JobSpec) compileCommunity(lim specLimits) (compiled, error) {
	if s.Scale != 0 || s.Seed != nil || s.Noise != 0 || s.Lo != nil || s.Hi != nil {
		return compiled{}, fmt.Errorf("server: shape %q streams a whole community graph; scale, seed, noise, lo and hi must be unset", s.Shape)
	}
	format, err := s.compileFormat()
	if err != nil {
		return compiled{}, err
	}
	var cfg community.Config
	switch s.Shape {
	case "bipartite":
		if len(s.Community) != 0 {
			return compiled{}, fmt.Errorf("server: shape bipartite takes rows/cols, not a community spec")
		}
		if s.Rows == nil || s.Cols == nil || *s.Rows < 1 || *s.Cols < 1 {
			return compiled{}, fmt.Errorf("server: shape bipartite needs rows ≥ 1 and cols ≥ 1")
		}
		ef := s.EdgeFactor
		if ef == 0 {
			ef = 16
		}
		if ef < 0 {
			return compiled{}, fmt.Errorf("server: negative edge factor")
		}
		cfg = community.Bipartite(*s.Rows, *s.Cols, ef**s.Rows, s.MasterSeed)
		cfg.AllowDuplicates = s.AllowDuplicates
	case "community":
		if s.Rows != nil || s.Cols != nil {
			return compiled{}, fmt.Errorf("server: rows/cols belong to shape bipartite")
		}
		if len(s.Community) == 0 {
			return compiled{}, fmt.Errorf("server: shape community needs a community spec")
		}
		if s.EdgeFactor != 0 || s.MasterSeed != 0 || s.AllowDuplicates {
			return compiled{}, fmt.Errorf("server: shape community takes edge_factor, master_seed and allow_duplicates inside the community spec")
		}
		cfg, err = community.ParseSpec(s.Community)
		if err != nil {
			return compiled{}, err
		}
	}
	lay, err := community.New(cfg)
	if err != nil {
		return compiled{}, err
	}
	if lim.maxScale > 0 && lay.NumVertices() > int64(1)<<lim.maxScale {
		return compiled{}, fmt.Errorf("server: %d vertices exceed the server's scale limit %d (2^%d)", lay.NumVertices(), lim.maxScale, lim.maxScale)
	}
	return compiled{layout: lay, format: format, lo: 0, hi: lay.NumVertices()}, nil
}

// compileClassic resolves the recursive-vector shape.
func (s JobSpec) compileClassic(lim specLimits) (compiled, error) {
	if s.Rows != nil || s.Cols != nil || len(s.Community) != 0 {
		return compiled{}, fmt.Errorf("server: rows, cols and community need shape bipartite or community")
	}
	if lim.maxScale > 0 && s.Scale > lim.maxScale {
		return compiled{}, fmt.Errorf("server: scale %d exceeds server limit %d", s.Scale, lim.maxScale)
	}
	cfg := core.Config{
		Scale:           s.Scale,
		EdgeFactor:      s.EdgeFactor,
		NoiseParam:      s.Noise,
		MasterSeed:      s.MasterSeed,
		Workers:         s.Workers,
		Opts:            recvec.Production(),
		AllowDuplicates: s.AllowDuplicates,
	}
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = 16
	}
	if cfg.MasterSeed == 0 {
		cfg.MasterSeed = 1
	}
	if s.Seed != nil {
		cfg.Seed = skg.Seed{A: s.Seed[0], B: s.Seed[1], C: s.Seed[2], D: s.Seed[3]}
	} else {
		cfg.Seed = skg.Graph500Seed
	}
	if cfg.Workers < 0 {
		return compiled{}, fmt.Errorf("server: negative workers")
	}
	if lim.maxWorkersPerJob > 0 && (cfg.Workers == 0 || cfg.Workers > lim.maxWorkersPerJob) {
		cfg.Workers = lim.maxWorkersPerJob
	}
	if err := cfg.Validate(); err != nil {
		return compiled{}, err
	}
	format, err := s.compileFormat()
	if err != nil {
		return compiled{}, err
	}
	lo, hi := int64(0), cfg.NumVertices()
	if s.Lo != nil {
		lo = *s.Lo
	}
	if s.Hi != nil {
		hi = *s.Hi
	}
	if lo < 0 || hi < lo || hi > cfg.NumVertices() {
		return compiled{}, fmt.Errorf("server: range [%d, %d) outside [0, %d)", lo, hi, cfg.NumVertices())
	}
	return compiled{cfg: cfg, format: format, lo: lo, hi: hi}, nil
}

// Job is one registered generation request. Counters are updated live
// by the streaming goroutine and may be read concurrently.
type Job struct {
	ID   string
	Spec JobSpec

	// Tenant, Class and Cost are the job's scheduling identity: the
	// accounting principal from the X-Trilliong-Tenant header, the
	// priority class from the spec, and the expected edge count from
	// Theorem 1 (core.EstimateRangeEdges) the scheduler charges.
	Tenant string
	Class  sched.Class
	Cost   int64

	cfg    core.Config
	layout *community.Layout // non-nil for the community shapes
	format gformat.Format
	lo, hi int64

	created time.Time

	scopes atomic.Int64
	edges  atomic.Int64
	bytes  atomic.Int64

	mu       sync.Mutex
	state    JobState
	errMsg   string
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
}

// JobStatus is the JSON snapshot served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID          string   `json:"id"`
	State       JobState `json:"state"`
	Tenant      string   `json:"tenant"`
	Class       string   `json:"class"`
	CostEdges   int64    `json:"cost_edges"`
	Scale       int      `json:"scale"`
	Format      string   `json:"format"`
	Lo          int64    `json:"lo"`
	Hi          int64    `json:"hi"`
	ScopesDone  int64    `json:"scopes_done"`
	ScopesTotal int64    `json:"scopes_total"`
	// Progress is ScopesDone/ScopesTotal in [0, 1].
	Progress      float64 `json:"progress"`
	EdgesStreamed int64   `json:"edges_streamed"`
	BytesStreamed int64   `json:"bytes_streamed"`
	Error         string  `json:"error,omitempty"`
	CreatedAt     string  `json:"created_at"`
	ElapsedMS     int64   `json:"elapsed_ms,omitempty"`
}

// scopesTotal is the stream's total scope count (see
// compiled.scopesTotal).
func (j *Job) scopesTotal() int64 {
	if j.layout != nil {
		return j.layout.ScopeTotal()
	}
	return j.hi - j.lo
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	state, errMsg := j.state, j.errMsg
	started, finished := j.started, j.finished
	j.mu.Unlock()
	st := JobStatus{
		ID:            j.ID,
		State:         state,
		Tenant:        j.Tenant,
		Class:         j.Class.String(),
		CostEdges:     j.Cost,
		Scale:         j.cfg.Scale,
		Format:        j.format.String(),
		Lo:            j.lo,
		Hi:            j.hi,
		ScopesDone:    j.scopes.Load(),
		ScopesTotal:   j.scopesTotal(),
		EdgesStreamed: j.edges.Load(),
		BytesStreamed: j.bytes.Load(),
		Error:         errMsg,
		CreatedAt:     j.created.UTC().Format(time.RFC3339Nano),
	}
	if st.ScopesTotal > 0 {
		st.Progress = float64(st.ScopesDone) / float64(st.ScopesTotal)
	} else if state == StateDone {
		st.Progress = 1
	}
	if !started.IsZero() {
		end := finished
		if end.IsZero() {
			end = time.Now()
		}
		st.ElapsedMS = end.Sub(started).Milliseconds()
	}
	return st
}

// tryQueue transitions pending → queued, recording the stream's cancel
// function so DELETE can abort the job while it waits for admission. It
// reports the previous state on failure, making the stream endpoint
// one-shot.
func (j *Job) tryQueue(cancel context.CancelFunc) (JobState, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StatePending {
		return j.state, false
	}
	j.state = StateQueued
	j.cancel = cancel
	return StateQueued, true
}

// tryRun transitions queued → running once the scheduler granted a
// slot.
func (j *Job) tryRun() (JobState, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return j.state, false
	}
	j.state = StateRunning
	j.started = time.Now()
	return StateRunning, true
}

// unqueue returns a queued job to pending — the admission was rejected
// or shed without the job ever running, so a later stream attempt may
// retry it.
func (j *Job) unqueue() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StatePending
		j.cancel = nil
	}
}

// finish records the stream outcome: done on success, canceled when
// the context was cut (client disconnect, DELETE, or server drain),
// failed otherwise.
func (j *Job) finish(err error, ctxErr error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
	case ctxErr != nil:
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
}

// Cancel aborts the job: a pending job is marked canceled directly; a
// queued or running one has its stream context cut (the queued waiter's
// admission aborts, the running stream stops; the streaming goroutine
// then records the terminal state). Cancelling a terminal job is a
// no-op.
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	if j.state == StatePending {
		j.state = StateCanceled
		j.errMsg = "canceled before streaming"
		j.finished = time.Now()
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// defaultPendingTTL is how long an untouched pending job may occupy a
// registry slot before eviction may reclaim it.
const defaultPendingTTL = 10 * time.Minute

// registry holds the server's jobs in creation order, bounded by
// maxJobs. When full, the oldest terminal job is evicted to admit a new
// one; failing that, the oldest stale pending job (created more than
// pendingTTL ago, never streamed) is marked canceled and evicted.
// Queued and running jobs are never evicted: a queued job has a live
// waiter inside the scheduler, and evicting it would let a
// dispatched-after-eviction stream run a job the registry no longer
// knows. If every slot holds a live job, admission fails.
type registry struct {
	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string
	nextID     uint64
	maxJobs    int
	pendingTTL time.Duration
	now        func() time.Time // tests substitute
}

func newRegistry(maxJobs int, pendingTTL time.Duration) *registry {
	if maxJobs < 1 {
		maxJobs = 1024
	}
	if pendingTTL <= 0 {
		pendingTTL = defaultPendingTTL
	}
	return &registry{
		jobs:       make(map[string]*Job),
		maxJobs:    maxJobs,
		pendingTTL: pendingTTL,
		now:        time.Now,
	}
}

// add registers a compiled job and assigns its ID.
func (r *registry) add(spec JobSpec, tenant string, class sched.Class, cost int64, c compiled) (*Job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) >= r.maxJobs && !r.evictLocked() {
		return nil, fmt.Errorf("server: job registry full (%d live jobs)", len(r.order))
	}
	r.nextID++
	j := &Job{
		ID:      fmt.Sprintf("j%08d", r.nextID),
		Spec:    spec,
		Tenant:  tenant,
		Class:   class,
		Cost:    cost,
		cfg:     c.cfg,
		layout:  c.layout,
		format:  c.format,
		lo:      c.lo,
		hi:      c.hi,
		created: r.now(),
		state:   StatePending,
	}
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	return j, nil
}

// evictLocked reclaims one registry slot, reporting success: the oldest
// terminal job if any, else the oldest stale pending job — which is
// marked canceled first, so a stream request already holding the *Job
// fails its pending→queued transition and the evicted job can never be
// dispatched.
func (r *registry) evictLocked() bool {
	for i, id := range r.order {
		if r.jobs[id].State().terminal() {
			delete(r.jobs, id)
			r.order = append(r.order[:i], r.order[i+1:]...)
			return true
		}
	}
	cutoff := r.now().Add(-r.pendingTTL)
	for i, id := range r.order {
		if j := r.jobs[id]; j.created.Before(cutoff) && j.markEvicted() {
			delete(r.jobs, id)
			r.order = append(r.order[:i], r.order[i+1:]...)
			return true
		}
	}
	return false
}

// markEvicted moves a pending job to canceled for eviction, reporting
// whether it was pending. Queued, running and terminal jobs refuse.
func (j *Job) markEvicted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StatePending {
		return false
	}
	j.state = StateCanceled
	j.errMsg = "evicted: pending past registry TTL"
	j.finished = time.Now()
	return true
}

// get looks a job up by ID.
func (r *registry) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// list snapshots every registered job in creation order.
func (r *registry) list() []JobStatus {
	r.mu.Lock()
	jobs := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		jobs = append(jobs, r.jobs[id])
	}
	r.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}
