package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/recvec"
	"repro/internal/skg"
)

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle: pending → running → done | failed | canceled.
// A pending job may also go straight to canceled.
const (
	StatePending  JobState = "pending"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is the wire-format generation request accepted by
// POST /v1/jobs. Zero fields take the generator's defaults: edge
// factor 16, the Graph500 seed matrix, master seed 1, format "tsv",
// and the full vertex range [0, 2^scale).
type JobSpec struct {
	// Scale is log2 of the vertex count (required).
	Scale int `json:"scale"`
	// EdgeFactor is |E|/|V| (0 = 16).
	EdgeFactor int64 `json:"edge_factor,omitempty"`
	// Seed is the stochastic seed matrix [a, b, c, d] (nil = Graph500).
	Seed *[4]float64 `json:"seed,omitempty"`
	// Noise is the NSKG noise parameter (0 disables, 0.1 standard).
	Noise float64 `json:"noise,omitempty"`
	// MasterSeed selects the pseudo-random universe (0 = 1).
	MasterSeed uint64 `json:"master_seed,omitempty"`
	// Workers is the producer goroutine count (0 = server default,
	// capped by the server's per-job limit).
	Workers int `json:"workers,omitempty"`
	// Format is "tsv" or "adj6" ("" = "tsv"). CSR6 needs a seekable
	// sink and cannot stream.
	Format string `json:"format,omitempty"`
	// Lo/Hi select a vertex sub-range [Lo, Hi) (nil = full range).
	Lo *int64 `json:"lo,omitempty"`
	Hi *int64 `json:"hi,omitempty"`
	// AllowDuplicates skips in-scope dedup (Graph500-edge-list
	// semantics).
	AllowDuplicates bool `json:"allow_duplicates,omitempty"`
}

// specLimits bounds what a spec may ask of the server.
type specLimits struct {
	maxScale         int
	maxWorkersPerJob int
}

// compile validates the spec against the limits and resolves it to a
// core configuration, streamable format and concrete vertex range.
func (s JobSpec) compile(lim specLimits) (core.Config, gformat.Format, int64, int64, error) {
	if lim.maxScale > 0 && s.Scale > lim.maxScale {
		return core.Config{}, 0, 0, 0, fmt.Errorf("server: scale %d exceeds server limit %d", s.Scale, lim.maxScale)
	}
	cfg := core.Config{
		Scale:           s.Scale,
		EdgeFactor:      s.EdgeFactor,
		NoiseParam:      s.Noise,
		MasterSeed:      s.MasterSeed,
		Workers:         s.Workers,
		Opts:            recvec.Production(),
		AllowDuplicates: s.AllowDuplicates,
	}
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = 16
	}
	if cfg.MasterSeed == 0 {
		cfg.MasterSeed = 1
	}
	if s.Seed != nil {
		cfg.Seed = skg.Seed{A: s.Seed[0], B: s.Seed[1], C: s.Seed[2], D: s.Seed[3]}
	} else {
		cfg.Seed = skg.Graph500Seed
	}
	if cfg.Workers < 0 {
		return core.Config{}, 0, 0, 0, fmt.Errorf("server: negative workers")
	}
	if lim.maxWorkersPerJob > 0 && (cfg.Workers == 0 || cfg.Workers > lim.maxWorkersPerJob) {
		cfg.Workers = lim.maxWorkersPerJob
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, 0, 0, 0, err
	}
	name := s.Format
	if name == "" {
		name = "tsv"
	}
	format, err := gformat.ParseFormat(name)
	if err != nil {
		return core.Config{}, 0, 0, 0, err
	}
	if format != gformat.TSV && format != gformat.ADJ6 {
		return core.Config{}, 0, 0, 0, fmt.Errorf("server: format %v is not streamable (use tsv or adj6)", format)
	}
	lo, hi := int64(0), cfg.NumVertices()
	if s.Lo != nil {
		lo = *s.Lo
	}
	if s.Hi != nil {
		hi = *s.Hi
	}
	if lo < 0 || hi < lo || hi > cfg.NumVertices() {
		return core.Config{}, 0, 0, 0, fmt.Errorf("server: range [%d, %d) outside [0, %d)", lo, hi, cfg.NumVertices())
	}
	return cfg, format, lo, hi, nil
}

// Job is one registered generation request. Counters are updated live
// by the streaming goroutine and may be read concurrently.
type Job struct {
	ID   string
	Spec JobSpec

	cfg    core.Config
	format gformat.Format
	lo, hi int64

	created time.Time

	scopes atomic.Int64
	edges  atomic.Int64
	bytes  atomic.Int64

	mu       sync.Mutex
	state    JobState
	errMsg   string
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
}

// JobStatus is the JSON snapshot served by GET /v1/jobs/{id}.
type JobStatus struct {
	ID          string   `json:"id"`
	State       JobState `json:"state"`
	Scale       int      `json:"scale"`
	Format      string   `json:"format"`
	Lo          int64    `json:"lo"`
	Hi          int64    `json:"hi"`
	ScopesDone  int64    `json:"scopes_done"`
	ScopesTotal int64    `json:"scopes_total"`
	// Progress is ScopesDone/ScopesTotal in [0, 1].
	Progress      float64 `json:"progress"`
	EdgesStreamed int64   `json:"edges_streamed"`
	BytesStreamed int64   `json:"bytes_streamed"`
	Error         string  `json:"error,omitempty"`
	CreatedAt     string  `json:"created_at"`
	ElapsedMS     int64   `json:"elapsed_ms,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	state, errMsg := j.state, j.errMsg
	started, finished := j.started, j.finished
	j.mu.Unlock()
	st := JobStatus{
		ID:            j.ID,
		State:         state,
		Scale:         j.cfg.Scale,
		Format:        j.format.String(),
		Lo:            j.lo,
		Hi:            j.hi,
		ScopesDone:    j.scopes.Load(),
		ScopesTotal:   j.hi - j.lo,
		EdgesStreamed: j.edges.Load(),
		BytesStreamed: j.bytes.Load(),
		Error:         errMsg,
		CreatedAt:     j.created.UTC().Format(time.RFC3339Nano),
	}
	if st.ScopesTotal > 0 {
		st.Progress = float64(st.ScopesDone) / float64(st.ScopesTotal)
	} else if state == StateDone {
		st.Progress = 1
	}
	if !started.IsZero() {
		end := finished
		if end.IsZero() {
			end = time.Now()
		}
		st.ElapsedMS = end.Sub(started).Milliseconds()
	}
	return st
}

// tryStart transitions pending → running, recording the stream's
// cancel function so DELETE can abort it. It reports the previous
// state on failure, making the stream endpoint one-shot.
func (j *Job) tryStart(cancel context.CancelFunc) (JobState, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StatePending {
		return j.state, false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return StateRunning, true
}

// finish records the stream outcome: done on success, canceled when
// the context was cut (client disconnect, DELETE, or server drain),
// failed otherwise.
func (j *Job) finish(err error, ctxErr error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
	case ctxErr != nil:
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
}

// Cancel aborts the job: a pending job is marked canceled directly, a
// running one has its stream context cut (the streaming goroutine then
// records the terminal state). Cancelling a terminal job is a no-op.
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	if j.state == StatePending {
		j.state = StateCanceled
		j.errMsg = "canceled before streaming"
		j.finished = time.Now()
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// registry holds the server's jobs in creation order, bounded by
// maxJobs. When full, the oldest terminal job is evicted to admit a
// new one; if every slot holds a live job, admission fails.
type registry struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	nextID  uint64
	maxJobs int
}

func newRegistry(maxJobs int) *registry {
	if maxJobs < 1 {
		maxJobs = 1024
	}
	return &registry{jobs: make(map[string]*Job), maxJobs: maxJobs}
}

// add registers a compiled job and assigns its ID.
func (r *registry) add(spec JobSpec, cfg core.Config, format gformat.Format, lo, hi int64) (*Job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) >= r.maxJobs && !r.evictLocked() {
		return nil, fmt.Errorf("server: job registry full (%d live jobs)", len(r.order))
	}
	r.nextID++
	j := &Job{
		ID:      fmt.Sprintf("j%08d", r.nextID),
		Spec:    spec,
		cfg:     cfg,
		format:  format,
		lo:      lo,
		hi:      hi,
		created: time.Now(),
		state:   StatePending,
	}
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	return j, nil
}

// evictLocked drops the oldest terminal job, reporting success.
func (r *registry) evictLocked() bool {
	for i, id := range r.order {
		if r.jobs[id].State().terminal() {
			delete(r.jobs, id)
			r.order = append(r.order[:i], r.order[i+1:]...)
			return true
		}
	}
	return false
}

// get looks a job up by ID.
func (r *registry) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// list snapshots every registered job in creation order.
func (r *registry) list() []JobStatus {
	r.mu.Lock()
	jobs := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		jobs = append(jobs, r.jobs[id])
	}
	r.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}
