package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

// waitForState polls a job's status until it reaches want.
func waitForState(t *testing.T, base, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %v, want %v", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerQueuedStateAndDelete: with one slot busy, a second stream
// parks in the queued state (visible via status), and DELETE aborts it
// while it waits — without ever running it.
func TestServerQueuedStateAndDelete(t *testing.T) {
	_, base := newTestServer(t, Options{MaxActiveStreams: 1})
	idA := createJob(t, base, `{"scale":20,"format":"tsv","workers":2}`)
	idB := createJob(t, base, `{"scale":10,"format":"tsv"}`)

	respA, err := http.Get(base + "/v1/jobs/" + idA + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer respA.Body.Close()
	if _, err := io.ReadFull(respA.Body, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}

	// B's stream parks behind A.
	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/jobs/" + idB + "/stream")
		if err != nil {
			done <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, nil}
	}()
	if st := waitForState(t, base, idB, StateQueued); st.ScopesDone != 0 {
		t.Fatalf("queued job already has progress: %+v", st)
	}

	// DELETE the queued job: its admission wait aborts, it never runs.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+idB, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.code != http.StatusConflict {
		t.Fatalf("canceled queued stream: %d, want 409", res.code)
	}
	if st := waitForState(t, base, idB, StateCanceled); st.ScopesDone != 0 {
		t.Fatalf("canceled queued job ran: %+v", st)
	}
}

// TestServerQueuedStreamRunsWhenSlotFrees: a queued stream is dispatched
// once the running stream finishes, and completes normally.
func TestServerQueuedStreamRunsWhenSlotFrees(t *testing.T) {
	_, base := newTestServer(t, Options{MaxActiveStreams: 1})
	// A must be large enough (~50 MB of TSV) that the unread stream
	// cannot be swallowed whole by loopback socket buffers — otherwise
	// A completes server-side, the slot frees early, and B never shows
	// as queued.
	idA := createJob(t, base, `{"scale":18,"format":"tsv","workers":2}`)
	idB := createJobAs(t, base, "team-q", `{"scale":10,"format":"tsv"}`)

	respA, err := http.Get(base + "/v1/jobs/" + idA + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer respA.Body.Close()
	if _, err := io.ReadFull(respA.Body, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/v1/jobs/" + idB + "/stream")
		if err != nil {
			done <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	waitForState(t, base, idB, StateQueued)

	// Drain A; its slot frees and B dispatches.
	if _, err := io.Copy(io.Discard, respA.Body); err != nil {
		t.Fatal(err)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued stream finished with %d", code)
	}
	st := waitForState(t, base, idB, StateDone)
	if st.Tenant != "team-q" || st.Progress != 1 {
		t.Fatalf("status %+v", st)
	}
}

// TestServerTenantRateLimit: a rate-limited tenant in token debt gets
// 429 with Retry-After while other tenants are unaffected.
func TestServerTenantRateLimit(t *testing.T) {
	_, base := newTestServer(t, Options{
		Tenants: map[string]sched.Limits{
			// ~16k expected edges at scale 10 vs a 100-edge bucket at 1
			// edge/s: the first job plunges the bucket into debt.
			"metered": {Rate: 1, Burst: 100},
		},
	})
	idA := createJobAs(t, base, "metered", `{"scale":10,"format":"tsv"}`)
	respA, err := http.Get(base + "/v1/jobs/" + idA + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, respA.Body)
	respA.Body.Close()
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("first metered stream: %d", respA.StatusCode)
	}

	idB := createJobAs(t, base, "metered", `{"scale":10,"format":"tsv"}`)
	respB, err := http.Get(base + "/v1/jobs/" + idB + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, respB.Body)
	respB.Body.Close()
	if respB.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("in-debt metered stream: %d, want 429", respB.StatusCode)
	}
	if respB.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on rate-limit rejection")
	}
	if st := getStatus(t, base, idB); st.State != StatePending {
		t.Fatalf("rate-limited job state %v, want pending (retryable)", st.State)
	}

	// Another tenant is untouched by metered's debt.
	idC := createJobAs(t, base, "other", `{"scale":10,"format":"tsv"}`)
	respC, err := http.Get(base + "/v1/jobs/" + idC + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, respC.Body)
	respC.Body.Close()
	if respC.StatusCode != http.StatusOK {
		t.Fatalf("other tenant's stream: %d", respC.StatusCode)
	}
}

// TestServerTenantValidation: malformed tenant headers and unknown
// classes are rejected at creation.
func TestServerTenantValidation(t *testing.T) {
	_, base := newTestServer(t, Options{})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(`{"scale":10}`))
	req.Header.Set(TenantHeader, "bad tenant!")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid tenant: %d, want 400", resp.StatusCode)
	}

	presp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"scale":10,"class":"turbo"}`))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid class: %d, want 400", presp.StatusCode)
	}
}

// TestServerSchedMetricsExposed: the scheduler's telemetry lands in the
// server's /metrics exposition.
func TestServerSchedMetricsExposed(t *testing.T) {
	_, base := newTestServer(t, Options{})
	id := createJobAs(t, base, "team-m", `{"scale":8,"format":"tsv"}`)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"trilliong_sched_granted_total 1",
		"trilliong_sched_queue_depth_tenant_team_m 0",
		"trilliong_sched_slots_free ",
		"trilliong_sched_wait_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}
