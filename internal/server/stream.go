// Package server implements the TrillionG generation service: an HTTP
// API that streams synthetic graphs on demand instead of batching them
// to disk. Because the graph is a pure function of (Config, MasterSeed)
// and every scope needs only O(d_max) memory (Sections 3-4), any vertex
// range of any configuration can be produced statelessly, with
// deterministic bytes — the service is a thin ordered pipeline over the
// same generator the batch path uses, so a streamed range is
// bit-identical to the same range of core.Generate's part files.
//
// The package has four parts: the ordered bounded-channel streaming
// engine (stream.go), the job registry (jobs.go), the HTTP layer
// (server.go) and the expvar-style live counters (metrics.go).
package server

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/avs"
	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/memacct"
	"repro/internal/rng"
)

// defaultDepth is the per-producer channel capacity: how many finished
// scopes one producer may run ahead of the encoder.
const defaultDepth = 32

// StreamOptions tunes StreamRange.
type StreamOptions struct {
	// Workers is the number of producer goroutines (0 = the config's
	// Workers, else GOMAXPROCS).
	Workers int
	// Depth is each producer's channel capacity (0 = 32). Total
	// run-ahead — and therefore stream memory — is bounded by
	// Workers·(Depth+1) scopes.
	Depth int
	// OnScope, if non-nil, is called from the encoding goroutine after
	// each scope has been written out.
	OnScope func(src int64, edges int)
}

// StreamStats reports one completed stream.
type StreamStats struct {
	// Scopes is the number of source vertices streamed (including
	// empty ones).
	Scopes int64
	// Edges is the number of edges streamed.
	Edges int64
	// Attempts counts stochastic trials including in-scope duplicates.
	Attempts int64
	// MaxDegree is the largest streamed out-degree.
	MaxDegree int64
	// BytesWritten is the encoded output volume.
	BytesWritten int64
	// PeakWorkerBytes is the largest tracked working set of any
	// producer — the O(d_max) bound of Table 1.
	PeakWorkerBytes int64
}

// scopeMsg is one generated scope in flight from a producer to the
// encoder.
type scopeMsg struct {
	src      int64
	dsts     []int64
	attempts int64
}

// pipeline generates the scopes of [lo, hi) with a fixed producer pool
// while preserving vertex order: vertex u is produced by worker
// (u-lo) mod W into that worker's bounded channel, and the consumer
// reads the channels round-robin, so scopes are consumed in exactly
// the order a sequential generator would emit them.
//
// Backpressure is structural: when the consumer stalls (a slow HTTP
// client), each producer blocks after Depth buffered scopes plus the
// one in its hands, so run-ahead never exceeds W·(Depth+1) scopes and
// stream memory stays O(workers · d_max).
type pipeline struct {
	lo, hi  int64
	workers int
	out     []chan scopeMsg
	free    []chan []int64
	accts   []memacct.Acct
	// generated counts scopes completed by producers; generated minus
	// the consumer's count is the live run-ahead gauge.
	generated atomic.Int64
	wg        sync.WaitGroup
}

// newPipeline validates the configuration and builds one generator per
// producer. Producers do not run until start is called.
func newPipeline(cfg core.Config, lo, hi int64, workers, depth int) (*pipeline, []*avs.Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if lo < 0 || hi < lo || hi > cfg.NumVertices() {
		return nil, nil, fmt.Errorf("server: range [%d, %d) outside [0, %d)", lo, hi, cfg.NumVertices())
	}
	if workers < 1 {
		workers = cfg.Workers
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := hi - lo; n > 0 && int64(workers) > n {
		workers = int(n)
	}
	if depth < 1 {
		depth = defaultDepth
	}
	p := &pipeline{
		lo:      lo,
		hi:      hi,
		workers: workers,
		out:     make([]chan scopeMsg, workers),
		free:    make([]chan []int64, workers),
		accts:   make([]memacct.Acct, workers),
	}
	gens := make([]*avs.Generator, workers)
	for i := range gens {
		g, err := core.NewScopeGenerator(cfg, &p.accts[i])
		if err != nil {
			return nil, nil, err
		}
		gens[i] = g
		p.out[i] = make(chan scopeMsg, depth)
		p.free[i] = make(chan []int64, depth+1)
		for j := 0; j < depth+1; j++ {
			p.free[i] <- nil
		}
	}
	return p, gens, nil
}

// start launches the producers. They exit when their share of the
// range is generated or ctx is cancelled, closing their channel either
// way.
func (p *pipeline) start(ctx context.Context, masterSeed uint64, gens []*avs.Generator) {
	for w := 0; w < p.workers; w++ {
		p.wg.Add(1)
		go func(w int, g *avs.Generator) {
			defer p.wg.Done()
			defer close(p.out[w])
			for u := p.lo + int64(w); u < p.hi; u += int64(p.workers) {
				var buf []int64
				select {
				case buf = <-p.free[w]:
				case <-ctx.Done():
					return
				}
				res := g.Scope(u, rng.NewScoped(masterSeed, uint64(u)), buf[:0])
				p.generated.Add(1)
				select {
				case p.out[w] <- scopeMsg{src: u, dsts: res.Dsts, attempts: res.Attempts}:
				case <-ctx.Done():
					return
				}
			}
		}(w, gens[w])
	}
}

// next returns the scope of vertex u, blocking on its producer or ctx.
func (p *pipeline) next(ctx context.Context, u int64) (scopeMsg, error) {
	w := int((u - p.lo) % int64(p.workers))
	select {
	case msg, ok := <-p.out[w]:
		if !ok {
			// The producer only quits early on cancellation.
			if err := ctx.Err(); err != nil {
				return scopeMsg{}, err
			}
			return scopeMsg{}, context.Canceled
		}
		return msg, nil
	case <-ctx.Done():
		return scopeMsg{}, ctx.Err()
	}
}

// recycle returns a consumed scope's buffer to its producer. The free
// channels are sized so this never blocks.
func (p *pipeline) recycle(u int64, buf []int64) {
	p.free[int((u-p.lo)%int64(p.workers))] <- buf
}

// peakBytes reports the largest producer working set. Call only after
// the producers have exited.
func (p *pipeline) peakBytes() int64 {
	var peak int64
	for i := range p.accts {
		if b := p.accts[i].Peak(); b > peak {
			peak = b
		}
	}
	return peak
}

// newStreamWriter wraps w in the format's encoder. CSR6 needs a
// seekable sink (its offset table is backfilled), so only the
// concatenation-safe formats stream.
func newStreamWriter(format gformat.Format, w io.Writer) (gformat.Writer, error) {
	switch format {
	case gformat.TSV:
		return gformat.NewTSVWriter(w), nil
	case gformat.ADJ6:
		return gformat.NewADJ6Writer(w), nil
	default:
		return nil, fmt.Errorf("server: format %v is not streamable (use tsv or adj6)", format)
	}
}

// StreamRange streams the scopes of the vertex range [lo, hi) into w
// in the given format. The bytes are identical to the corresponding
// slice of the part files core.Generate would write for the same
// (Config, MasterSeed): scopes appear in vertex order and every scope
// is encoded exactly as the batch writers encode it.
//
// Generation runs through a bounded channel pipeline (see pipeline),
// so a slow w throttles the producers and memory stays
// O(Workers · d_max) regardless of range size. Cancelling ctx aborts
// the stream and returns the context's error.
func StreamRange(ctx context.Context, cfg core.Config, format gformat.Format, lo, hi int64, w io.Writer, opt StreamOptions) (StreamStats, error) {
	enc, err := newStreamWriter(format, w)
	if err != nil {
		return StreamStats{}, err
	}
	p, gens, err := newPipeline(cfg, lo, hi, opt.Workers, opt.Depth)
	if err != nil {
		return StreamStats{}, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer p.wg.Wait()
	defer cancel()
	p.start(ctx, cfg.MasterSeed, gens)

	var st StreamStats
	for u := lo; u < hi; u++ {
		msg, err := p.next(ctx, u)
		if err != nil {
			return st, err
		}
		if err := enc.WriteScope(msg.src, msg.dsts); err != nil {
			st.BytesWritten = enc.BytesWritten()
			return st, err
		}
		st.Scopes++
		st.Edges += int64(len(msg.dsts))
		st.Attempts += msg.attempts
		if d := int64(len(msg.dsts)); d > st.MaxDegree {
			st.MaxDegree = d
		}
		if opt.OnScope != nil {
			opt.OnScope(msg.src, len(msg.dsts))
		}
		p.recycle(u, msg.dsts)
	}
	if err := enc.Close(); err != nil {
		st.BytesWritten = enc.BytesWritten()
		return st, err
	}
	st.BytesWritten = enc.BytesWritten()
	cancel()
	p.wg.Wait()
	st.PeakWorkerBytes = p.peakBytes()
	return st, nil
}
