package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/pressure"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// TenantHeader names the HTTP request header carrying the tenant
// identifier. Requests without it are accounted to sched.DefaultTenant.
const TenantHeader = "X-Trilliong-Tenant"

// Options configures a Server. Zero fields take the documented
// defaults.
type Options struct {
	// MaxActiveStreams bounds concurrently streaming jobs — the
	// scheduler's slot count. Streams past it queue under weighted fair
	// sharing; tenants past their own bounds get 429 with Retry-After
	// (0 = 4).
	MaxActiveStreams int
	// MaxJobs bounds the registry; when full, the oldest finished job
	// is evicted (then the oldest stale pending one), and POST fails
	// with 503 if every slot is live (0 = 1024).
	MaxJobs int
	// MaxWorkersPerJob caps a job's producer goroutines (0 =
	// GOMAXPROCS). Jobs that ask for 0 workers get this cap.
	MaxWorkersPerJob int
	// MaxScale rejects specs above this scale (0 = 34).
	MaxScale int
	// PipelineDepth is each producer's channel capacity (0 = 32).
	PipelineDepth int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints are opt-in (trilliong-serve's -pprof
	// flag) because they expose process internals.
	EnablePprof bool

	// Tenants holds per-tenant scheduling limits (weight, rate,
	// concurrency, queue bounds), keyed by tenant name. Tenants not
	// listed get TenantDefaults.
	Tenants map[string]sched.Limits
	// TenantDefaults applies to tenants absent from Tenants. The zero
	// value means scheduler defaults: weight 1, no rate limit, a
	// 64-deep queue shed after 30s.
	TenantDefaults sched.Limits
	// EvictPendingAfter is how long an untouched pending job may occupy
	// a full registry before eviction reclaims its slot (0 = 10m).
	EvictPendingAfter time.Duration

	// EnablePressure builds a host-pressure controller into the server:
	// the scheduler degrades with the host (shrunk slot pool, paused
	// background class, stretched Retry-After), /readyz flips to 503 at
	// critical, POST /v1/jobs sheds with 503 + Retry-After at critical,
	// and an attached store tightens its byte budget. The controller's
	// os.* / pressure.* gauges join the server's /debug/vars registry.
	// Callers that want background sampling start it with
	// Pressure().Start(); tests drive Sample (or inject via
	// faultpoint) themselves.
	EnablePressure bool
	// PressureConfig tunes the controller when EnablePressure is set.
	// Its Telemetry field is ignored — the server's registry is used —
	// and DiskPath is usually the artifact-store directory.
	PressureConfig pressure.Config
}

func (o Options) withDefaults() Options {
	if o.MaxActiveStreams < 1 {
		o.MaxActiveStreams = 4
	}
	if o.MaxJobs < 1 {
		o.MaxJobs = 1024
	}
	if o.MaxWorkersPerJob < 1 {
		o.MaxWorkersPerJob = runtime.GOMAXPROCS(0)
	}
	if o.MaxScale < 1 {
		o.MaxScale = 34
	}
	if o.PipelineDepth < 1 {
		o.PipelineDepth = defaultDepth
	}
	return o
}

// Server is the TrillionG generation service: a job registry plus the
// HTTP API over it. Create one with New, mount Handler on an
// http.Server, and call Shutdown (after stopping the listener) to
// drain.
type Server struct {
	opts     Options
	reg      *registry
	metrics  *metrics
	mux      *http.ServeMux
	sched    *sched.Scheduler
	draining atomic.Bool
	streams  sync.WaitGroup

	// rejectStreak counts consecutive over-capacity stream rejections;
	// retryPolicy turns the streak into the advertised Retry-After.
	rejectStreak atomic.Int64
	retryPolicy  backoff.Policy

	// store, when set via SetStore, caches completed job artifacts and
	// satisfies repeat jobs without regeneration; spoolDir stages
	// in-flight copies. presignTTL, when positive, lets /download
	// answer with a 302 to a presigned cold-tier URL valid that long.
	store      *store.Store
	spoolDir   string
	presignTTL time.Duration

	// pressure is the host-pressure controller (nil unless
	// Options.EnablePressure).
	pressure *pressure.Controller
}

// New builds a Server with the given options.
func New(opts Options) *Server {
	s := &Server{
		opts:        opts.withDefaults(),
		retryPolicy: backoff.Policy{Base: time.Second, Max: 30 * time.Second},
	}
	s.reg = newRegistry(s.opts.MaxJobs, s.opts.EvictPendingAfter)
	s.metrics = newMetrics(s.reg)
	if s.opts.EnablePressure {
		pc := s.opts.PressureConfig
		pc.Telemetry = s.metrics.tel
		s.pressure = pressure.New(pc)
	}
	s.sched = sched.New(sched.Config{
		Slots:     s.opts.MaxActiveStreams,
		Tenants:   s.opts.Tenants,
		Defaults:  s.opts.TenantDefaults,
		Telemetry: s.metrics.tel,
		Pressure:  s.pressure,
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/download", s.handleDownload)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /debug/vars", s.metrics.handler)
	s.mux.HandleFunc("GET /metrics", s.metrics.promHandler)
	if s.opts.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Telemetry returns the server's metrics registry — the backing store
// of /debug/vars and /metrics.
func (s *Server) Telemetry() *telemetry.Registry { return s.metrics.tel }

// SetPresignTTL enables presigned cold-tier downloads: when positive
// and the attached store's backend can mint presigned URLs, GET
// /v1/jobs/{id}/download answers with a 302 to a URL valid for ttl
// whenever the artifact is remote-only, instead of pulling it through
// this process. Zero (the default) always streams locally. Call before
// serving requests, alongside SetStore.
func (s *Server) SetPresignTTL(ttl time.Duration) { s.presignTTL = ttl }

// Pressure returns the server's host-pressure controller (nil unless
// Options.EnablePressure). Callers own background sampling: start it
// with Pressure().Start() and stop it before or after Shutdown.
func (s *Server) Pressure() *pressure.Controller { return s.pressure }

// pressureLevel is the current host-pressure level (OK when pressure
// awareness is off).
func (s *Server) pressureLevel() pressure.Level {
	if s.pressure == nil {
		return pressure.OK
	}
	return s.pressure.Level()
}

// setRetryAfterForPressure advertises when a pressure-shed request is
// worth retrying: the controller's debounced recovery time.
func (s *Server) setRetryAfterForPressure(w http.ResponseWriter) {
	secs := int64(s.pressure.RecoveryHint() / time.Second)
	if secs < 1 {
		secs = 1
	}
	s.metrics.retryAfterSecs.Set(float64(secs))
	w.Header().Set("Retry-After", fmt.Sprint(secs))
}

// BeginDrain puts the server into draining mode: new jobs and new
// streams are rejected with 503 while in-flight streams keep running.
// Status, list and metrics endpoints stay available.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server gracefully: it rejects new work and waits
// for in-flight streams to finish, or until ctx expires — then every
// remaining job is cancelled and Shutdown returns ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.streams.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, st := range s.reg.list() {
			if j, ok := s.reg.get(st.ID); ok {
				j.Cancel()
			}
		}
		<-done
		return ctx.Err()
	}
}

// writeJSON emits v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// createResponse answers POST /v1/jobs.
type createResponse struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Tenant      string `json:"tenant"`
	Class       string `json:"class"`
	CostEdges   int64  `json:"cost_edges"`
	ScopesTotal int64  `json:"scopes_total"`
	StatusURL   string `json:"status_url"`
	StreamURL   string `json:"stream_url"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.pressureLevel() >= pressure.Critical {
		// Degraded mode: shed new work at the front door so the host
		// can climb back down. Already-created jobs keep their slots —
		// the scheduler is applying its own ladder to those.
		s.metrics.jobsRejected.Add(1)
		s.setRetryAfterForPressure(w)
		writeError(w, http.StatusServiceUnavailable, "server is under critical host pressure; retry later")
		return
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = sched.DefaultTenant
	}
	if !sched.ValidTenant(tenant) {
		writeError(w, http.StatusBadRequest, "invalid %s %q (want 1-64 chars of [a-zA-Z0-9._-])", TenantHeader, tenant)
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	class, ok := sched.ParseClass(spec.Class)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown class %q (want interactive, batch or background)", spec.Class)
		return
	}
	c, err := spec.compile(specLimits{
		maxScale:         s.opts.MaxScale,
		maxWorkersPerJob: s.opts.MaxWorkersPerJob,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The admission cost is the job's expected edge count (Theorem 1 for
	// the flat path, the layout's planned edge budget for community
	// shapes), so fairness and rate limits are apportioned over expected
	// work — one scale-30 job weighs as much as thousands of small ones.
	var cost int64
	if c.layout != nil {
		cost = c.layout.TotalEdges()
	} else {
		cost, err = core.EstimateRangeEdges(c.cfg, c.lo, c.hi)
		if err != nil {
			writeError(w, http.StatusBadRequest, "estimating job cost: %v", err)
			return
		}
	}
	job, err := s.reg.add(spec, tenant, class, cost, c)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.metrics.jobsCreated.Add(1)
	writeJSON(w, http.StatusCreated, createResponse{
		ID:          job.ID,
		State:       string(StatePending),
		Tenant:      tenant,
		Class:       class.String(),
		CostEdges:   cost,
		ScopesTotal: c.scopesTotal(),
		StatusURL:   "/v1/jobs/" + job.ID,
		StreamURL:   "/v1/jobs/" + job.ID + "/stream",
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	job.Cancel()
	w.WriteHeader(http.StatusNoContent)
}

// handleHealth is the liveness probe: 200 whenever the process can
// still answer (host pressure is reported but does not flip it — a
// loaded process is alive), 503 only once draining for shutdown.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":   "ok",
		"pressure": s.pressureLevel().String(),
	})
}

// handleReady is the readiness probe: 503 while draining or under
// critical host pressure, so load balancers route new work elsewhere
// until the host recovers. In-flight streams are unaffected.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	lvl := s.pressureLevel()
	if lvl >= pressure.Critical {
		s.setRetryAfterForPressure(w)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status":   "not ready",
			"pressure": lvl.String(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":   "ready",
		"pressure": lvl.String(),
	})
}

// flushWriter forwards stream bytes to the client, flushing each chunk
// onto the wire (the encoders buffer 64 KiB internally, so flushes are
// amortized) and feeding the live byte counters.
type flushWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	job     *Job
	metrics *metrics
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if n > 0 {
		f.job.bytes.Add(int64(n))
		f.metrics.bytesTotal.Add(int64(n))
	}
	if f.flusher != nil {
		f.flusher.Flush()
	}
	return n, err
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	if prev, ok := job.tryQueue(cancel); !ok {
		writeError(w, http.StatusConflict, "job %s is %s; streams are one-shot", job.ID, prev)
		return
	}
	grant, err := s.sched.Acquire(ctx, sched.Request{
		Tenant: job.Tenant,
		Class:  job.Class,
		Cost:   job.Cost,
	})
	if err != nil {
		var adm *sched.AdmissionError
		if errors.As(err, &adm) {
			// Rejected or shed without running: back to pending so a
			// later attempt can retry, and tell the client when. The
			// advertised wait is the larger of the scheduler's honest
			// estimate and the streak backoff schedule, so hot-looping
			// clients are shed even when the queue estimate is short.
			job.unqueue()
			s.metrics.jobsRejected.Add(1)
			streak := s.rejectStreak.Add(1)
			delay := adm.RetryAfter
			if d := s.retryPolicy.NextDelay(int(streak - 1)); d > delay {
				delay = d
			}
			secs := int64(delay / time.Second)
			if secs < 1 {
				secs = 1
			}
			s.metrics.retryAfterSecs.Set(float64(secs))
			w.Header().Set("Retry-After", fmt.Sprint(secs))
			writeError(w, http.StatusTooManyRequests, "%v", adm)
			return
		}
		// The context was cut while queued: client disconnect or DELETE.
		job.finish(err, ctx.Err())
		s.finishMetrics(job)
		writeError(w, http.StatusConflict, "job %s canceled while queued", job.ID)
		return
	}
	defer grant.Release()
	s.rejectStreak.Store(0)
	if prev, ok := job.tryRun(); !ok {
		// DELETE raced the grant: the job left queued before we could
		// start it.
		writeError(w, http.StatusConflict, "job %s is %s; streams are one-shot", job.ID, prev)
		return
	}
	s.streams.Add(1)
	defer s.streams.Done()
	s.metrics.streamsActive.Add(1)
	defer s.metrics.streamsActive.Add(-1)

	if job.format == gformat.TSV {
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.Header().Set("X-Trilliong-Job-Id", job.ID)
	w.Header().Set("X-Trilliong-Scopes-Total", fmt.Sprint(job.scopesTotal()))

	// A cancelled stream may be wedged in a Write to a stalled client,
	// where it would never observe ctx; expiring the write deadline
	// unblocks it with an error.
	rc := http.NewResponseController(w)
	stopPoke := context.AfterFunc(ctx, func() { rc.SetWriteDeadline(time.Now()) })
	defer stopPoke()

	flusher, _ := w.(http.Flusher)
	out := &flushWriter{w: w, flusher: flusher, job: job, metrics: s.metrics}

	// With a store attached, a cached artifact satisfies the stream
	// without generation; a generated stream is spooled and ingested so
	// the next identical job hits.
	err = nil
	if s.store != nil {
		served, serveErr := s.serveFromStore(w, out, job)
		if served {
			job.finish(serveErr, ctx.Err())
			s.finishMetrics(job)
			return
		}
		err = serveErr
	}
	if err == nil {
		streamOut := io.Writer(out)
		var sw *spoolWriter
		if s.store != nil {
			w.Header().Set("X-Trilliong-Cache", "miss")
			if spool, terr := os.CreateTemp(s.spoolDir, "gen-*"); terr == nil {
				sw = &spoolWriter{Writer: out, f: spool}
				streamOut = sw
			}
			// A spool-temp failure just means this stream isn't cached.
		}
		if job.layout != nil {
			// Community jobs stream block by block through one encoder —
			// byte-identical to the batch part files concatenated, so the
			// spooled artifact is shared with the part-file world via the
			// layout's whole-stream key.
			var enc gformat.Writer
			if enc, err = newStreamWriter(job.format, streamOut); err == nil {
				var st core.Stats
				st, err = job.layout.GenerateStream(enc, s.metrics.tel, func() {
					job.scopes.Add(1)
					s.metrics.scopesTotal.Add(1)
				})
				job.edges.Store(st.Edges)
				s.metrics.addEdges(st.Edges)
				if err == nil {
					err = enc.Close()
				}
			}
		} else {
			_, err = StreamRange(ctx, job.cfg, job.format, job.lo, job.hi, streamOut, StreamOptions{
				Workers: job.cfg.Workers,
				Depth:   s.opts.PipelineDepth,
				OnScope: func(_ int64, edges int) {
					job.scopes.Add(1)
					job.edges.Add(int64(edges))
					s.metrics.scopesTotal.Add(1)
					s.metrics.addEdges(int64(edges))
				},
			})
		}
		if sw != nil {
			s.ingestSpooled(sw, job, err)
		}
	}
	job.finish(err, ctx.Err())
	s.finishMetrics(job)
}

// finishMetrics records a finished stream's terminal state.
func (s *Server) finishMetrics(job *Job) {
	switch job.State() {
	case StateDone:
		s.metrics.jobsDone.Add(1)
	case StateCanceled:
		s.metrics.jobsCanceled.Add(1)
	case StateFailed:
		s.metrics.jobsFailed.Add(1)
	}
	// Headers are already on the wire; an error here can only cut the
	// stream short, which the client sees as a truncated chunked body.
}
