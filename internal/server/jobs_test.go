package server

import (
	"context"
	"testing"
	"time"

	"repro/internal/gformat"
	"repro/internal/sched"
)

func TestJobSpecDefaults(t *testing.T) {
	c, err := JobSpec{Scale: 10}.compile(specLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.EdgeFactor != 16 || c.cfg.MasterSeed != 1 {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
	if c.cfg.Seed.A != 0.57 {
		t.Fatalf("seed default %+v", c.cfg.Seed)
	}
	if c.format != gformat.TSV || c.lo != 0 || c.hi != 1024 {
		t.Fatalf("format %v range [%d, %d)", c.format, c.lo, c.hi)
	}
}

func TestJobSpecExplicit(t *testing.T) {
	lo, hi := int64(16), int64(48)
	spec := JobSpec{
		Scale:      8,
		EdgeFactor: 4,
		Seed:       &[4]float64{0.25, 0.25, 0.25, 0.25},
		Noise:      0.1,
		MasterSeed: 7,
		Workers:    2,
		Format:     "adj6",
		Lo:         &lo,
		Hi:         &hi,
	}
	c, err := spec.compile(specLimits{maxScale: 20, maxWorkersPerJob: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.format != gformat.ADJ6 || c.lo != 16 || c.hi != 48 {
		t.Fatalf("format %v range [%d, %d)", c.format, c.lo, c.hi)
	}
	if c.cfg.Workers != 2 || c.cfg.NoiseParam != 0.1 || c.cfg.MasterSeed != 7 {
		t.Fatalf("cfg %+v", c.cfg)
	}
}

func TestJobSpecRejections(t *testing.T) {
	neg, big := int64(-1), int64(1<<40)
	bad := []JobSpec{
		{Scale: 0},                                 // invalid scale
		{Scale: 48},                                // above core limit
		{Scale: 25},                                // above server limit (20 below)
		{Scale: 10, Format: "csr6"},                // not streamable
		{Scale: 10, Format: "nope"},                // unknown format
		{Scale: 10, Lo: &neg},                      // negative lo
		{Scale: 10, Hi: &big},                      // beyond |V|
		{Scale: 10, Workers: -1},                   // negative workers
		{Scale: 10, Seed: &[4]float64{1, 1, 1, 1}}, // seed doesn't sum to 1
		{Scale: 10, Noise: 0.9},                    // inadmissible noise
		{Scale: 10, Lo: &big, Hi: &big},            // lo beyond |V|
	}
	for i, spec := range bad {
		if _, err := spec.compile(specLimits{maxScale: 20, maxWorkersPerJob: 4}); err == nil {
			t.Fatalf("spec %d (%+v) accepted", i, spec)
		}
	}
}

func TestJobSpecWorkerCap(t *testing.T) {
	c, err := JobSpec{Scale: 10, Workers: 64}.compile(specLimits{maxWorkersPerJob: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Workers != 4 {
		t.Fatalf("workers %d, want cap 4", c.cfg.Workers)
	}
	c, err = JobSpec{Scale: 10}.compile(specLimits{maxWorkersPerJob: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Workers != 4 {
		t.Fatalf("unset workers %d, want server default 4", c.cfg.Workers)
	}
}

func addJob(t *testing.T, r *registry, spec JobSpec) *Job {
	t.Helper()
	c, err := spec.compile(specLimits{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := r.add(spec, sched.DefaultTenant, sched.Batch, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestRegistryLifecycle(t *testing.T) {
	r := newRegistry(8, 0)
	j := addJob(t, r, JobSpec{Scale: 8})
	if j.ID != "j00000001" {
		t.Fatalf("id %q", j.ID)
	}
	got, ok := r.get(j.ID)
	if !ok || got != j {
		t.Fatal("lookup failed")
	}
	if _, ok := r.get("j99999999"); ok {
		t.Fatal("phantom job")
	}
	st := j.Status()
	if st.State != StatePending || st.ScopesTotal != 256 || st.Progress != 0 {
		t.Fatalf("status %+v", st)
	}

	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, ok := j.tryQueue(cancel); !ok {
		t.Fatal("tryQueue failed on pending job")
	}
	if st := j.State(); st != StateQueued {
		t.Fatalf("state %v after tryQueue", st)
	}
	if _, ok := j.tryRun(); !ok {
		t.Fatal("tryRun failed on queued job")
	}
	if prev, ok := j.tryQueue(cancel); ok || prev != StateRunning {
		t.Fatalf("second tryQueue: ok=%v prev=%v", ok, prev)
	}
	j.finish(nil, nil)
	if j.State() != StateDone {
		t.Fatalf("state %v", j.State())
	}
	// finish is sticky: a late cancel must not overwrite the outcome.
	j.Cancel()
	if j.State() != StateDone {
		t.Fatalf("cancel overwrote terminal state: %v", j.State())
	}
	if len(r.list()) != 1 {
		t.Fatalf("list %v", r.list())
	}
}

func TestRegistryCancelPending(t *testing.T) {
	r := newRegistry(8, 0)
	j := addJob(t, r, JobSpec{Scale: 8})
	j.Cancel()
	if j.State() != StateCanceled {
		t.Fatalf("state %v", j.State())
	}
	if _, ok := j.tryQueue(func() {}); ok {
		t.Fatal("canceled job queued")
	}
}

// TestJobUnqueueRetryable: a queued job whose admission is rejected or
// shed returns to pending and can be queued again.
func TestJobUnqueueRetryable(t *testing.T) {
	r := newRegistry(8, 0)
	j := addJob(t, r, JobSpec{Scale: 8})
	if _, ok := j.tryQueue(func() {}); !ok {
		t.Fatal("tryQueue failed")
	}
	j.unqueue()
	if st := j.State(); st != StatePending {
		t.Fatalf("state %v after unqueue, want pending", st)
	}
	if _, ok := j.tryQueue(func() {}); !ok {
		t.Fatal("retry after unqueue refused")
	}
}

func TestRegistryEviction(t *testing.T) {
	r := newRegistry(2, 0)
	a := addJob(t, r, JobSpec{Scale: 8})
	addJob(t, r, JobSpec{Scale: 8})

	// Both slots hold fresh pending jobs: admission must fail.
	full, _ := JobSpec{Scale: 8}.compile(specLimits{})
	if _, err := r.add(JobSpec{Scale: 8}, sched.DefaultTenant, sched.Batch, 1, full); err == nil {
		t.Fatal("overfull registry accepted a job")
	}

	// A terminal job frees its slot for the next admission.
	a.Cancel()
	c := addJob(t, r, JobSpec{Scale: 8})
	if _, ok := r.get(a.ID); ok {
		t.Fatal("evicted job still listed")
	}
	if _, ok := r.get(c.ID); !ok {
		t.Fatal("new job missing")
	}
}

// TestRegistryEvictsStalePending: with every slot pending, eviction
// reclaims the oldest job past the pending TTL — and that job is marked
// canceled first, so a racing stream request holding the stale *Job can
// never queue (and therefore never be dispatched).
func TestRegistryEvictsStalePending(t *testing.T) {
	r := newRegistry(2, time.Minute)
	base := time.Unix(1000, 0)
	r.now = func() time.Time { return base }
	stale := addJob(t, r, JobSpec{Scale: 8})

	// Second job created within the TTL window: not evictable.
	r.now = func() time.Time { return base.Add(30 * time.Second) }
	fresh := addJob(t, r, JobSpec{Scale: 8})

	// Past the first job's TTL, admission evicts it — not the fresh one.
	r.now = func() time.Time { return base.Add(90 * time.Second) }
	c := addJob(t, r, JobSpec{Scale: 8})
	if _, ok := r.get(stale.ID); ok {
		t.Fatal("stale pending job still listed")
	}
	if _, ok := r.get(fresh.ID); !ok {
		t.Fatal("fresh pending job evicted")
	}
	if _, ok := r.get(c.ID); !ok {
		t.Fatal("new job missing")
	}

	// The evicted job is terminal and refuses to queue: it can never be
	// handed to the scheduler, so an evicted job is never dispatched.
	if st := stale.State(); st != StateCanceled {
		t.Fatalf("evicted job state %v, want canceled", st)
	}
	if _, ok := stale.tryQueue(func() {}); ok {
		t.Fatal("evicted job accepted a queue transition")
	}

	// Queued jobs are never evicted even when stale: they own a live
	// scheduler waiter.
	if _, ok := fresh.tryQueue(func() {}); !ok {
		t.Fatal("tryQueue failed")
	}
	if _, ok := c.tryQueue(func() {}); !ok {
		t.Fatal("tryQueue failed")
	}
	r.now = func() time.Time { return base.Add(time.Hour) }
	c2, _ := JobSpec{Scale: 8}.compile(specLimits{})
	if _, err := r.add(JobSpec{Scale: 8}, sched.DefaultTenant, sched.Batch, 1, c2); err == nil {
		t.Fatal("registry evicted a queued job")
	}
}
