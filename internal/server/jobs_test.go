package server

import (
	"context"
	"testing"

	"repro/internal/gformat"
)

func TestJobSpecDefaults(t *testing.T) {
	cfg, format, lo, hi, err := JobSpec{Scale: 10}.compile(specLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.EdgeFactor != 16 || cfg.MasterSeed != 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Seed.A != 0.57 {
		t.Fatalf("seed default %+v", cfg.Seed)
	}
	if format != gformat.TSV || lo != 0 || hi != 1024 {
		t.Fatalf("format %v range [%d, %d)", format, lo, hi)
	}
}

func TestJobSpecExplicit(t *testing.T) {
	lo, hi := int64(16), int64(48)
	spec := JobSpec{
		Scale:      8,
		EdgeFactor: 4,
		Seed:       &[4]float64{0.25, 0.25, 0.25, 0.25},
		Noise:      0.1,
		MasterSeed: 7,
		Workers:    2,
		Format:     "adj6",
		Lo:         &lo,
		Hi:         &hi,
	}
	cfg, format, clo, chi, err := spec.compile(specLimits{maxScale: 20, maxWorkersPerJob: 8})
	if err != nil {
		t.Fatal(err)
	}
	if format != gformat.ADJ6 || clo != 16 || chi != 48 {
		t.Fatalf("format %v range [%d, %d)", format, clo, chi)
	}
	if cfg.Workers != 2 || cfg.NoiseParam != 0.1 || cfg.MasterSeed != 7 {
		t.Fatalf("cfg %+v", cfg)
	}
}

func TestJobSpecRejections(t *testing.T) {
	neg, big := int64(-1), int64(1<<40)
	bad := []JobSpec{
		{Scale: 0},                                 // invalid scale
		{Scale: 48},                                // above core limit
		{Scale: 25},                                // above server limit (20 below)
		{Scale: 10, Format: "csr6"},                // not streamable
		{Scale: 10, Format: "nope"},                // unknown format
		{Scale: 10, Lo: &neg},                      // negative lo
		{Scale: 10, Hi: &big},                      // beyond |V|
		{Scale: 10, Workers: -1},                   // negative workers
		{Scale: 10, Seed: &[4]float64{1, 1, 1, 1}}, // seed doesn't sum to 1
		{Scale: 10, Noise: 0.9},                    // inadmissible noise
		{Scale: 10, Lo: &big, Hi: &big},            // lo beyond |V|
	}
	for i, spec := range bad {
		if _, _, _, _, err := spec.compile(specLimits{maxScale: 20, maxWorkersPerJob: 4}); err == nil {
			t.Fatalf("spec %d (%+v) accepted", i, spec)
		}
	}
}

func TestJobSpecWorkerCap(t *testing.T) {
	cfg, _, _, _, err := JobSpec{Scale: 10, Workers: 64}.compile(specLimits{maxWorkersPerJob: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 4 {
		t.Fatalf("workers %d, want cap 4", cfg.Workers)
	}
	cfg, _, _, _, err = JobSpec{Scale: 10}.compile(specLimits{maxWorkersPerJob: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 4 {
		t.Fatalf("unset workers %d, want server default 4", cfg.Workers)
	}
}

func addJob(t *testing.T, r *registry, spec JobSpec) *Job {
	t.Helper()
	cfg, format, lo, hi, err := spec.compile(specLimits{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := r.add(spec, cfg, format, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestRegistryLifecycle(t *testing.T) {
	r := newRegistry(8)
	j := addJob(t, r, JobSpec{Scale: 8})
	if j.ID != "j00000001" {
		t.Fatalf("id %q", j.ID)
	}
	got, ok := r.get(j.ID)
	if !ok || got != j {
		t.Fatal("lookup failed")
	}
	if _, ok := r.get("j99999999"); ok {
		t.Fatal("phantom job")
	}
	st := j.Status()
	if st.State != StatePending || st.ScopesTotal != 256 || st.Progress != 0 {
		t.Fatalf("status %+v", st)
	}

	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, ok := j.tryStart(cancel); !ok {
		t.Fatal("tryStart failed on pending job")
	}
	if prev, ok := j.tryStart(cancel); ok || prev != StateRunning {
		t.Fatalf("second tryStart: ok=%v prev=%v", ok, prev)
	}
	j.finish(nil, nil)
	if j.State() != StateDone {
		t.Fatalf("state %v", j.State())
	}
	// finish is sticky: a late cancel must not overwrite the outcome.
	j.Cancel()
	if j.State() != StateDone {
		t.Fatalf("cancel overwrote terminal state: %v", j.State())
	}
	if len(r.list()) != 1 {
		t.Fatalf("list %v", r.list())
	}
}

func TestRegistryCancelPending(t *testing.T) {
	r := newRegistry(8)
	j := addJob(t, r, JobSpec{Scale: 8})
	j.Cancel()
	if j.State() != StateCanceled {
		t.Fatalf("state %v", j.State())
	}
	if _, ok := j.tryStart(func() {}); ok {
		t.Fatal("canceled job started")
	}
}

func TestRegistryEviction(t *testing.T) {
	r := newRegistry(2)
	a := addJob(t, r, JobSpec{Scale: 8})
	addJob(t, r, JobSpec{Scale: 8})

	// Both slots live: admission must fail.
	cfg, format, lo, hi, _ := JobSpec{Scale: 8}.compile(specLimits{})
	if _, err := r.add(JobSpec{Scale: 8}, cfg, format, lo, hi); err == nil {
		t.Fatal("overfull registry accepted a job")
	}

	// A terminal job frees its slot for the next admission.
	a.Cancel()
	c := addJob(t, r, JobSpec{Scale: 8})
	if _, ok := r.get(a.ID); ok {
		t.Fatal("evicted job still listed")
	}
	if _, ok := r.get(c.ID); !ok {
		t.Fatal("new job missing")
	}
}
