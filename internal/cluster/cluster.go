// Package cluster is the distributed-execution substrate that stands in
// for the paper's 10-PC Spark cluster (see DESIGN.md, substitutions).
//
// A Sim models a cluster of M machines × T threads. Work is expressed in
// phases: a phase runs one task per worker, each task is timed
// individually, and the phase contributes the *maximum* task time to the
// simulated clock — the makespan a real cluster would observe, including
// the workload skew the paper discusses for RMAT/p. Network traffic is
// charged through an explicit cost model (bytes / bandwidth + latency),
// which is how the 1 GbE vs 100 Gb InfiniBand comparison of Appendix D
// (Figure 14) is reproduced without the hardware.
//
// Tasks execute sequentially in submission order so per-task timing is
// not distorted by host-core contention; determinism is guaranteed by
// the repo-wide rule that all randomness is scope-seeded.
package cluster

import (
	"fmt"
	"time"
)

// Config describes the simulated cluster.
type Config struct {
	// Machines is the number of machines (the paper uses 10 slaves).
	Machines int
	// ThreadsPerMachine is the number of worker threads per machine
	// (the paper uses 6).
	ThreadsPerMachine int
	// BandwidthBytesPerSec is each machine's NIC bandwidth, full duplex.
	// 0 means infinite (network time is only latency).
	BandwidthBytesPerSec float64
	// LatencySec is the per-transfer-phase latency.
	LatencySec float64
}

// OneGbE is the paper's default network: 1 Gb/s ≈ 125 MB/s.
const OneGbE = 125e6

// InfiniBandEDR is the paper's Graph500 network: 100 Gb/s ≈ 12.5 GB/s.
const InfiniBandEDR = 12.5e9

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Machines < 1 {
		return fmt.Errorf("cluster: machines %d < 1", c.Machines)
	}
	if c.ThreadsPerMachine < 1 {
		return fmt.Errorf("cluster: threads/machine %d < 1", c.ThreadsPerMachine)
	}
	if c.BandwidthBytesPerSec < 0 || c.LatencySec < 0 {
		return fmt.Errorf("cluster: negative network parameters")
	}
	return nil
}

// Workers returns the total worker count P = machines × threads.
func (c Config) Workers() int { return c.Machines * c.ThreadsPerMachine }

// Worker identifies one simulated thread.
type Worker struct {
	Machine int // machine index in [0, Machines)
	Thread  int // thread index within the machine
	Index   int // global worker index in [0, Workers)
}

// PhaseStat records one phase's contribution to the simulated clock.
type PhaseStat struct {
	Name string
	// Makespan is the slowest worker's task time (compute phases) or
	// the modeled transfer time (network phases).
	Makespan time.Duration
	// TotalWork is the sum of all task times (compute phases only).
	TotalWork time.Duration
	// Bytes is the traffic volume (network phases only).
	Bytes int64
	// Network marks transfer phases.
	Network bool

	workersN int // worker count of the phase, for Skew
}

// Skew returns max/mean task time, the load-balance figure of merit
// (1.0 = perfect). Returns 0 for network phases.
func (p PhaseStat) Skew() float64 {
	if p.Network || p.TotalWork == 0 {
		return 0
	}
	return float64(p.Makespan) / (float64(p.TotalWork) / float64(workerCount(p)))
}

// workers stashes the per-phase worker count in the stat; kept private
// via this accessor pair to keep the struct comparable.
func workerCount(p PhaseStat) int {
	if p.workersN == 0 {
		return 1
	}
	return p.workersN
}

// Sim is one simulated cluster execution. It is not safe for concurrent
// use; a Sim represents a single serialized experiment run.
type Sim struct {
	cfg    Config
	phases []PhaseStat
}

// New returns a fresh simulation.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg}, nil
}

// Config returns the simulated cluster's configuration.
func (s *Sim) Config() Config { return s.cfg }

// RunPhase executes task once per worker, sequentially, timing each
// execution, and charges the makespan (max task time) to the simulated
// clock. Errors abort the phase.
func (s *Sim) RunPhase(name string, task func(w Worker) error) error {
	var max, total time.Duration
	idx := 0
	for m := 0; m < s.cfg.Machines; m++ {
		for t := 0; t < s.cfg.ThreadsPerMachine; t++ {
			w := Worker{Machine: m, Thread: t, Index: idx}
			idx++
			start := time.Now()
			err := task(w)
			d := time.Since(start)
			total += d
			if d > max {
				max = d
			}
			if err != nil {
				return fmt.Errorf("cluster: phase %s worker %d: %w", name, w.Index, err)
			}
		}
	}
	s.phases = append(s.phases, PhaseStat{
		Name: name, Makespan: max, TotalWork: total, workersN: s.cfg.Workers(),
	})
	return nil
}

// AddTransfer charges a shuffle described by a traffic matrix:
// bytes[from][to] crossing machine boundaries. Intra-machine traffic is
// free. The modeled time is latency + the bottleneck NIC's serialized
// bytes (the larger of its send and receive volume) over the bandwidth.
func (s *Sim) AddTransfer(name string, bytes [][]int64) error {
	m := s.cfg.Machines
	if len(bytes) != m {
		return fmt.Errorf("cluster: traffic matrix has %d rows, want %d", len(bytes), m)
	}
	out := make([]int64, m)
	in := make([]int64, m)
	var volume int64
	for from := range bytes {
		if len(bytes[from]) != m {
			return fmt.Errorf("cluster: traffic matrix row %d has %d cols, want %d", from, len(bytes[from]), m)
		}
		for to, b := range bytes[from] {
			if b < 0 {
				return fmt.Errorf("cluster: negative transfer %d", b)
			}
			if from == to {
				continue
			}
			out[from] += b
			in[to] += b
			volume += b
		}
	}
	var bottleneck int64
	for i := 0; i < m; i++ {
		if out[i] > bottleneck {
			bottleneck = out[i]
		}
		if in[i] > bottleneck {
			bottleneck = in[i]
		}
	}
	d := time.Duration(s.cfg.LatencySec * float64(time.Second))
	if s.cfg.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(bottleneck) / s.cfg.BandwidthBytesPerSec * float64(time.Second))
	}
	s.phases = append(s.phases, PhaseStat{Name: name, Makespan: d, Bytes: volume, Network: true})
	return nil
}

// AddModeledTime charges an explicitly computed duration (e.g. a cost
// model for work the host cannot afford to execute for real).
func (s *Sim) AddModeledTime(name string, d time.Duration) {
	s.phases = append(s.phases, PhaseStat{Name: name, Makespan: d})
}

// Elapsed returns the simulated wall-clock: the sum of phase makespans
// (phases are barriers, as in the paper's Spark stages).
func (s *Sim) Elapsed() time.Duration {
	var total time.Duration
	for _, p := range s.phases {
		total += p.Makespan
	}
	return total
}

// NetworkTime returns the simulated time spent in transfer phases.
func (s *Sim) NetworkTime() time.Duration {
	var total time.Duration
	for _, p := range s.phases {
		if p.Network {
			total += p.Makespan
		}
	}
	return total
}

// BytesShuffled returns the total cross-machine traffic volume.
func (s *Sim) BytesShuffled() int64 {
	var total int64
	for _, p := range s.phases {
		total += p.Bytes
	}
	return total
}

// Phases returns the recorded phase statistics in execution order.
func (s *Sim) Phases() []PhaseStat {
	out := make([]PhaseStat, len(s.phases))
	copy(out, s.phases)
	return out
}

// PhaseTime returns the summed makespan of phases with the given name.
func (s *Sim) PhaseTime(name string) time.Duration {
	var total time.Duration
	for _, p := range s.phases {
		if p.Name == name {
			total += p.Makespan
		}
	}
	return total
}
