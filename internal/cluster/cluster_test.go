package cluster

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	ok := Config{Machines: 10, ThreadsPerMachine: 6}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Workers() != 60 {
		t.Fatalf("Workers = %d", ok.Workers())
	}
	for _, bad := range []Config{
		{Machines: 0, ThreadsPerMachine: 1},
		{Machines: 1, ThreadsPerMachine: 0},
		{Machines: 1, ThreadsPerMachine: 1, BandwidthBytesPerSec: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("expected error for %+v", bad)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New should reject invalid config")
	}
}

func TestRunPhaseVisitsAllWorkers(t *testing.T) {
	s, err := New(Config{Machines: 3, ThreadsPerMachine: 2})
	if err != nil {
		t.Fatal(err)
	}
	var visited []Worker
	if err := s.RunPhase("gen", func(w Worker) error {
		visited = append(visited, w)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(visited) != 6 {
		t.Fatalf("visited %d workers", len(visited))
	}
	for i, w := range visited {
		if w.Index != i {
			t.Fatalf("worker %d has index %d", i, w.Index)
		}
		if w.Machine != i/2 || w.Thread != i%2 {
			t.Fatalf("worker %d = %+v", i, w)
		}
	}
}

func TestRunPhaseMakespanIsMax(t *testing.T) {
	s, err := New(Config{Machines: 1, ThreadsPerMachine: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunPhase("p", func(w Worker) error {
		if w.Index == 1 {
			time.Sleep(20 * time.Millisecond)
		} else {
			time.Sleep(time.Millisecond)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ph := s.Phases()
	if len(ph) != 1 {
		t.Fatalf("phases %d", len(ph))
	}
	if ph[0].Makespan < 18*time.Millisecond {
		t.Fatalf("makespan %v too small", ph[0].Makespan)
	}
	if ph[0].TotalWork < ph[0].Makespan {
		t.Fatal("total work below makespan")
	}
	if sk := ph[0].Skew(); sk < 1.5 {
		t.Fatalf("skew %v should reflect the slow worker", sk)
	}
}

func TestRunPhasePropagatesError(t *testing.T) {
	s, _ := New(Config{Machines: 2, ThreadsPerMachine: 1})
	boom := errors.New("boom")
	err := s.RunPhase("p", func(w Worker) error {
		if w.Index == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddTransferBottleneckModel(t *testing.T) {
	s, err := New(Config{
		Machines: 2, ThreadsPerMachine: 1,
		BandwidthBytesPerSec: 1000, LatencySec: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Machine 0 sends 2000 B to machine 1; intra-machine is free.
	traffic := [][]int64{
		{5000, 2000},
		{0, 9999},
	}
	if err := s.AddTransfer("shuffle", traffic); err != nil {
		t.Fatal(err)
	}
	want := 500*time.Millisecond + 2*time.Second
	got := s.Elapsed()
	if math.Abs(float64(got-want)) > float64(time.Millisecond) {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
	if s.BytesShuffled() != 2000 {
		t.Fatalf("bytes %d", s.BytesShuffled())
	}
	if s.NetworkTime() != got {
		t.Fatal("all time should be network time")
	}
}

func TestAddTransferValidation(t *testing.T) {
	s, _ := New(Config{Machines: 2, ThreadsPerMachine: 1})
	if err := s.AddTransfer("x", [][]int64{{0, 0}}); err == nil {
		t.Fatal("expected row-count error")
	}
	if err := s.AddTransfer("x", [][]int64{{0}, {0}}); err == nil {
		t.Fatal("expected col-count error")
	}
	if err := s.AddTransfer("x", [][]int64{{0, -5}, {0, 0}}); err == nil {
		t.Fatal("expected negative error")
	}
}

func TestInfiniteBandwidthChargesOnlyLatency(t *testing.T) {
	s, _ := New(Config{Machines: 2, ThreadsPerMachine: 1, LatencySec: 0.1})
	if err := s.AddTransfer("s", [][]int64{{0, 1 << 40}, {0, 0}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Elapsed(); got != 100*time.Millisecond {
		t.Fatalf("elapsed %v, want 100ms", got)
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// The same traffic takes ~100x longer on 1 GbE than on InfiniBand —
	// the Figure 14 lever.
	mk := func(bw float64) time.Duration {
		s, _ := New(Config{Machines: 2, ThreadsPerMachine: 1, BandwidthBytesPerSec: bw})
		if err := s.AddTransfer("s", [][]int64{{0, 1 << 30}, {0, 0}}); err != nil {
			t.Fatal(err)
		}
		return s.Elapsed()
	}
	slow, fast := mk(OneGbE), mk(InfiniBandEDR)
	ratio := float64(slow) / float64(fast)
	if math.Abs(ratio-100) > 1 {
		t.Fatalf("1G/IB ratio %v, want 100", ratio)
	}
}

func TestAddModeledTimeAndPhaseTime(t *testing.T) {
	s, _ := New(Config{Machines: 1, ThreadsPerMachine: 1})
	s.AddModeledTime("merge", time.Second)
	s.AddModeledTime("merge", 2*time.Second)
	s.AddModeledTime("other", time.Second)
	if got := s.PhaseTime("merge"); got != 3*time.Second {
		t.Fatalf("PhaseTime(merge) = %v", got)
	}
	if got := s.Elapsed(); got != 4*time.Second {
		t.Fatalf("Elapsed = %v", got)
	}
}
