// Package stats computes the graph statistics the paper's evaluation
// plots are made of: in-/out-degree histograms, log-log degree plots and
// their power-law slopes, rank-frequency (Zipf) slopes, an oscillation
// metric for the SKG degree plot (Figure 9), Kolmogorov–Smirnov and
// chi-square distances, and normal-distribution fits (Figure 10).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Hist is a degree histogram: Hist[d] = number of vertices of degree d.
// Degree-0 vertices may be recorded explicitly under key 0 — the
// log-log accessors (Points, PowerLawSlope, Oscillation) exclude them,
// matching the paper's plots, but Vertices and KS account for them, so
// isolated-vertex counts survive the histogram instead of being
// silently dropped.
type Hist map[int64]int64

// Add records one vertex of degree d.
func (h Hist) Add(d int64) { h[d]++ }

// Vertices returns the number of vertices recorded, including explicit
// degree-0 entries.
func (h Hist) Vertices() int64 {
	var n int64
	for _, c := range h {
		n += c
	}
	return n
}

// Active returns the number of vertices with degree ≥ 1.
func (h Hist) Active() int64 { return h.Vertices() - h[0] }

// Zeros returns the number of explicitly recorded degree-0 vertices.
func (h Hist) Zeros() int64 { return h[0] }

// Edges returns the total degree mass Σ d·count(d).
func (h Hist) Edges() int64 {
	var n int64
	for d, c := range h {
		n += d * c
	}
	return n
}

// MaxDegree returns the largest degree present (0 for an empty histogram).
func (h Hist) MaxDegree() int64 {
	var m int64
	for d := range h {
		if d > m {
			m = d
		}
	}
	return m
}

// Point is one (degree, count) pair of a degree plot.
type Point struct {
	Degree int64
	Count  int64
}

// Points returns the histogram as points sorted by degree, excluding
// degree 0.
func (h Hist) Points() []Point {
	pts := make([]Point, 0, len(h))
	for d, c := range h {
		if d > 0 {
			pts = append(pts, Point{d, c})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Degree < pts[j].Degree })
	return pts
}

// FromDegrees builds a histogram from a degree sequence, skipping zeros.
func FromDegrees(degrees []int64) Hist {
	h := make(Hist)
	for _, d := range degrees {
		if d > 0 {
			h.Add(d)
		}
	}
	return h
}

// DegreeCounter accumulates in- and out-degrees edge by edge without
// materializing the edge set.
type DegreeCounter struct {
	out map[int64]int64
	in  map[int64]int64
}

// NewDegreeCounter returns an empty counter.
func NewDegreeCounter() *DegreeCounter {
	return &DegreeCounter{out: make(map[int64]int64), in: make(map[int64]int64)}
}

// AddEdge records one directed edge.
func (c *DegreeCounter) AddEdge(src, dst int64) {
	c.out[src]++
	c.in[dst]++
}

// AddScope records one adjacency list.
func (c *DegreeCounter) AddScope(src int64, dsts []int64) {
	c.out[src] += int64(len(dsts))
	for _, d := range dsts {
		c.in[d]++
	}
}

// OutHist returns the out-degree histogram. Degree-0 entries (vertices
// recorded via an empty scope) are omitted, the historical convention
// most plot-oriented callers rely on; OutHistFull keeps them.
func (c *DegreeCounter) OutHist() Hist {
	h := make(Hist, len(c.out))
	for _, d := range c.out {
		if d > 0 {
			h.Add(d)
		}
	}
	return h
}

// InHist returns the in-degree histogram, omitting degree-0 entries.
func (c *DegreeCounter) InHist() Hist {
	h := make(Hist, len(c.in))
	for _, d := range c.in {
		if d > 0 {
			h.Add(d)
		}
	}
	return h
}

// OutHistFull is OutHist with explicit degree-0 tracking: a vertex
// recorded via an empty scope contributes to Hist[0] instead of
// vanishing. Isolated-vertex validation needs these counts.
func (c *DegreeCounter) OutHistFull() Hist {
	h := make(Hist, len(c.out))
	for _, d := range c.out {
		h.Add(d)
	}
	return h
}

// InHistFull is InHist with explicit degree-0 tracking.
func (c *DegreeCounter) InHistFull() Hist {
	h := make(Hist, len(c.in))
	for _, d := range c.in {
		h.Add(d)
	}
	return h
}

// Touched returns the number of distinct vertices seen on either axis
// (as a source — even of an empty scope — or as a destination). With
// the total vertex count it yields the fully-isolated count:
// |V| − Touched() vertices have no edge in either direction.
func (c *DegreeCounter) Touched() int64 {
	n := int64(len(c.out))
	for v := range c.in {
		if _, dup := c.out[v]; !dup {
			n++
		}
	}
	return n
}

// OutDegrees returns the raw out-degree sequence (order unspecified).
func (c *DegreeCounter) OutDegrees() []int64 {
	ds := make([]int64, 0, len(c.out))
	for _, d := range c.out {
		ds = append(ds, d)
	}
	return ds
}

// OutByVertex returns a copy of the per-vertex out-degree map.
func (c *DegreeCounter) OutByVertex() map[int64]int64 {
	m := make(map[int64]int64, len(c.out))
	for v, d := range c.out {
		m[v] = d
	}
	return m
}

// InByVertex returns a copy of the per-vertex in-degree map.
func (c *DegreeCounter) InByVertex() map[int64]int64 {
	m := make(map[int64]int64, len(c.in))
	for v, d := range c.in {
		m[v] = d
	}
	return m
}

// InDegrees returns the raw in-degree sequence (order unspecified).
func (c *DegreeCounter) InDegrees() []int64 {
	ds := make([]int64, 0, len(c.in))
	for _, d := range c.in {
		ds = append(ds, d)
	}
	return ds
}

// LinearFit fits y = slope·x + intercept by least squares and returns
// the slope, intercept and coefficient of determination r². It panics if
// fewer than two points are supplied.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic(fmt.Sprintf("stats: LinearFit needs ≥2 paired points, got %d/%d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: LinearFit with degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return slope, intercept, 1
	}
	var ssRes float64
	for i := range xs {
		r := ys[i] - (slope*xs[i] + intercept)
		ssRes += r * r
	}
	return slope, intercept, 1 - ssRes/ssTot
}

// PowerLawSlope fits the log-log degree plot (log2 count vs log2 degree)
// with logarithmic binning, which is the standard way to de-noise the
// heavy tail before fitting. Returns the fitted slope and r².
func PowerLawSlope(h Hist) (slope, r2 float64) {
	pts := h.Points()
	if len(pts) < 3 {
		return math.NaN(), 0
	}
	// Logarithmic bins: [2^k, 2^{k+1}). Each bin contributes the point
	// (mass-weighted mean log-degree, log of mass per occupied integer
	// degree), which keeps small-degree bins (that cover only one or two
	// integers) on the underlying curve instead of biasing the fit.
	type bin struct {
		mass    float64 // total vertex count in bin
		degrees float64 // number of distinct integer degrees present
		logDSum float64 // Σ count·log2(degree)
	}
	bins := make(map[int]*bin)
	for _, p := range pts {
		k := int(math.Floor(math.Log2(float64(p.Degree))))
		b := bins[k]
		if b == nil {
			b = &bin{}
			bins[k] = b
		}
		b.mass += float64(p.Count)
		b.degrees++
		b.logDSum += float64(p.Count) * math.Log2(float64(p.Degree))
	}
	var xs, ys []float64
	for _, b := range bins {
		if b.mass <= 0 {
			continue
		}
		xs = append(xs, b.logDSum/b.mass)
		ys = append(ys, math.Log2(b.mass/b.degrees))
	}
	if len(xs) < 3 {
		return math.NaN(), 0
	}
	s, _, r := LinearFit(xs, ys)
	return s, r
}

// ZipfSlope fits the rank-frequency plot: vertices sorted by decreasing
// degree, slope of log2(degree) against log2(rank). This is the slope
// Lemma 6 predicts as log2(γ+δ)−log2(α+β) for out-degrees.
// Ranks are subsampled logarithmically so every decade weighs equally.
func ZipfSlope(degrees []int64) (slope, r2 float64) {
	ds := append([]int64(nil), degrees...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] > ds[j] })
	for len(ds) > 0 && ds[len(ds)-1] <= 0 {
		ds = ds[:len(ds)-1]
	}
	if len(ds) < 4 {
		return math.NaN(), 0
	}
	var xs, ys []float64
	rank := 1
	for rank <= len(ds) {
		xs = append(xs, math.Log2(float64(rank)))
		ys = append(ys, math.Log2(float64(ds[rank-1])))
		next := int(math.Ceil(float64(rank) * 1.3))
		if next == rank {
			next++
		}
		rank = next
	}
	if len(xs) < 3 {
		return math.NaN(), 0
	}
	s, _, r := LinearFit(xs, ys)
	return s, r
}

// Oscillation quantifies the wave pattern of noise-free SKG degree
// plots (Figure 9a) as the *upward mass* of the log-log plot: degrees
// are aggregated into geometric bins (4 per octave) and the sum of
// positive increments of log2(count density) across consecutive bins is
// returned. A clean power law is monotone decreasing (score ≈ 0, only
// sampling noise); the multi-octave humps of plain SKG contribute their
// full log-amplitude, and NSKG noise flattens them — so the score falls
// as the noise parameter N grows (Figure 9's visual claim, quantified).
func Oscillation(h Hist) float64 {
	pts := h.Points()
	if len(pts) < 8 {
		return 0
	}
	// Geometric bins with boundaries 2^(k/4).
	type bin struct {
		mass    float64
		degrees float64
	}
	bins := make(map[int]*bin)
	minK, maxK := 1<<30, -(1 << 30)
	for _, p := range pts {
		k := int(math.Floor(4 * math.Log2(float64(p.Degree))))
		b := bins[k]
		if b == nil {
			b = &bin{}
			bins[k] = b
		}
		b.mass += float64(p.Count)
		b.degrees++
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
	}
	// Walk bins in degree order; ignore sparse bins (< 16 vertices)
	// whose densities are sampling noise.
	var up float64
	prev := math.NaN()
	for k := minK; k <= maxK; k++ {
		b := bins[k]
		if b == nil || b.mass < 16 {
			continue
		}
		cur := math.Log2(b.mass / b.degrees)
		if !math.IsNaN(prev) && cur > prev {
			up += cur - prev
		}
		prev = cur
	}
	return up
}

// KS returns the two-sample Kolmogorov–Smirnov distance between the
// degree distributions of two histograms: the maximum absolute gap
// between their degree CDFs over vertices.
func KS(a, b Hist) float64 {
	na, nb := float64(a.Vertices()), float64(b.Vertices())
	if na == 0 || nb == 0 {
		return 1
	}
	degrees := make(map[int64]struct{}, len(a)+len(b))
	for d := range a {
		degrees[d] = struct{}{}
	}
	for d := range b {
		degrees[d] = struct{}{}
	}
	ds := make([]int64, 0, len(degrees))
	for d := range degrees {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var ca, cb, max float64
	for _, d := range ds {
		ca += float64(a[d]) / na
		cb += float64(b[d]) / nb
		if gap := math.Abs(ca - cb); gap > max {
			max = gap
		}
	}
	return max
}

// MeanStd returns the sample mean and standard deviation of xs.
func MeanStd(xs []int64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := float64(x) - mean
		ss += d * d
	}
	if len(xs) > 1 {
		std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return mean, std
}

// Skewness returns the sample skewness of xs; near zero for symmetric
// (e.g. Gaussian) data, large and positive for Zipfian degrees.
func Skewness(xs []int64) float64 {
	mean, std := MeanStd(xs)
	if std == 0 || len(xs) < 3 {
		return 0
	}
	var acc float64
	for _, x := range xs {
		z := (float64(x) - mean) / std
		acc += z * z * z
	}
	return acc / float64(len(xs))
}

// KSAgainstNormal returns the KS distance between the empirical
// distribution of xs and N(mean, std²) fitted to xs. Gaussian degree
// sequences (Figure 10b) score low; Zipfian sequences score high.
func KSAgainstNormal(xs []int64) float64 {
	if len(xs) == 0 {
		return 1
	}
	mean, std := MeanStd(xs)
	if std == 0 {
		return 1
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := float64(len(sorted))
	var max float64
	for i, x := range sorted {
		f := normalCDF((float64(x)-mean)/std) - 0.5/n // continuity-ish midpoint
		emp := (float64(i) + 0.5) / n
		if gap := math.Abs(f - emp); gap > max {
			max = gap
		}
	}
	return max
}

func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// ChiSquare computes Pearson's statistic of observed counts against
// expected counts, skipping cells with expectation below minExpect.
func ChiSquare(obs, expect []float64, minExpect float64) float64 {
	if len(obs) != len(expect) {
		panic("stats: ChiSquare length mismatch")
	}
	var stat float64
	for i := range obs {
		if expect[i] < minExpect {
			continue
		}
		d := obs[i] - expect[i]
		stat += d * d / expect[i]
	}
	return stat
}

// KSCritical returns the two-sample Kolmogorov–Smirnov critical value
// at significance alpha for sample sizes m and n (asymptotic Smirnov
// formula): distributions with KS below it are statistically
// indistinguishable at that level. Supported alphas: 0.10, 0.05, 0.01,
// 0.001 (others fall back to 0.05).
func KSCritical(m, n int64, alpha float64) float64 {
	if m <= 0 || n <= 0 {
		return 1
	}
	var c float64
	switch {
	case alpha >= 0.10:
		c = 1.22
	case alpha >= 0.05:
		c = 1.36
	case alpha >= 0.01:
		c = 1.63
	default:
		c = 1.95
	}
	return c * math.Sqrt(float64(m+n)/float64(m*n))
}

// KSIndistinguishable reports whether two degree histograms are
// statistically indistinguishable at significance alpha.
func KSIndistinguishable(a, b Hist, alpha float64) bool {
	return KS(a, b) <= KSCritical(a.Vertices(), b.Vertices(), alpha)
}
