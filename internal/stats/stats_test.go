package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHistBasics(t *testing.T) {
	h := make(Hist)
	h.Add(3)
	h.Add(3)
	h.Add(1)
	if h.Vertices() != 3 {
		t.Fatalf("Vertices = %d", h.Vertices())
	}
	if h.Edges() != 7 {
		t.Fatalf("Edges = %d", h.Edges())
	}
	if h.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", h.MaxDegree())
	}
	pts := h.Points()
	if len(pts) != 2 || pts[0] != (Point{1, 1}) || pts[1] != (Point{3, 2}) {
		t.Fatalf("Points = %v", pts)
	}
}

func TestFromDegreesSkipsZeros(t *testing.T) {
	h := FromDegrees([]int64{0, 0, 2, 5})
	if h.Vertices() != 2 {
		t.Fatalf("Vertices = %d, want 2 (zeros skipped)", h.Vertices())
	}
}

func TestDegreeCounter(t *testing.T) {
	c := NewDegreeCounter()
	c.AddEdge(1, 2)
	c.AddEdge(1, 3)
	c.AddScope(2, []int64{3, 3})
	out, in := c.OutHist(), c.InHist()
	if out[2] != 2 { // vertices 1 and 2 both have out-degree 2
		t.Fatalf("out hist %v", out)
	}
	if in[1] != 1 || in[3] != 1 { // vertex 2 in-deg 1, vertex 3 in-deg 3
		t.Fatalf("in hist %v", in)
	}
	if got := len(c.OutDegrees()); got != 2 {
		t.Fatalf("OutDegrees len %d", got)
	}
	if got := len(c.InDegrees()); got != 2 {
		t.Fatalf("InDegrees len %d", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	s, b, r2 := LinearFit(xs, ys)
	if math.Abs(s-2) > 1e-12 || math.Abs(b-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("fit = %v, %v, %v", s, b, r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1})
}

// TestPowerLawSlopeSynthetic: a synthetic pure power law count(d) ∝ d^s
// recovers s.
func TestPowerLawSlopeSynthetic(t *testing.T) {
	h := make(Hist)
	const s = -2.0
	for d := int64(1); d <= 4096; d++ {
		c := int64(math.Round(1e7 * math.Pow(float64(d), s)))
		if c > 0 {
			h[d] = c
		}
	}
	got, r2 := PowerLawSlope(h)
	if math.Abs(got-s) > 0.15 {
		t.Fatalf("slope %v, want %v", got, s)
	}
	if r2 < 0.98 {
		t.Fatalf("r2 %v too low for pure power law", r2)
	}
}

// TestZipfSlopeSynthetic: degrees d(rank) ∝ rank^s recover s.
func TestZipfSlopeSynthetic(t *testing.T) {
	const s = -0.8
	var ds []int64
	for rank := 1; rank <= 20000; rank++ {
		ds = append(ds, int64(math.Round(1e5*math.Pow(float64(rank), s))))
	}
	got, r2 := ZipfSlope(ds)
	if math.Abs(got-s) > 0.05 {
		t.Fatalf("slope %v, want %v", got, s)
	}
	if r2 < 0.99 {
		t.Fatalf("r2 %v too low", r2)
	}
}

func TestZipfSlopeDegenerate(t *testing.T) {
	if s, _ := ZipfSlope([]int64{1, 2}); !math.IsNaN(s) {
		t.Fatalf("expected NaN for tiny input, got %v", s)
	}
	if s, _ := ZipfSlope([]int64{0, 0, 0, 0, 0}); !math.IsNaN(s) {
		t.Fatalf("expected NaN for all-zero input, got %v", s)
	}
}

// TestOscillationOrdersSmoothVsWavy: a power law with octave-period
// humps (the SKG wave shape) scores much higher than the smooth curve.
func TestOscillationOrdersSmoothVsWavy(t *testing.T) {
	smooth, wavy := make(Hist), make(Hist)
	for d := int64(1); d <= 512; d++ {
		base := 1e6 * math.Pow(float64(d), -2)
		smooth[d] = int64(base) + 1
		// Hump: ×4 boost on odd octaves, the multi-bin wave NSKG removes.
		f := 1.0
		if int64(math.Floor(math.Log2(float64(d))))%2 == 1 {
			f = 4.0
		}
		wavy[d] = int64(base*f) + 1
	}
	so, wo := Oscillation(smooth), Oscillation(wavy)
	if wo < 4*so+1 {
		t.Fatalf("wavy oscillation %v not clearly above smooth %v", wo, so)
	}
}

// TestOscillationSmoothIsSmall: a clean power law scores near zero.
func TestOscillationSmoothIsSmall(t *testing.T) {
	smooth := make(Hist)
	for d := int64(1); d <= 2048; d++ {
		c := int64(1e7 * math.Pow(float64(d), -1.8))
		if c > 0 {
			smooth[d] = c
		}
	}
	if o := Oscillation(smooth); o > 0.2 {
		t.Fatalf("smooth power law oscillation %v, want ≈ 0", o)
	}
}

func TestOscillationTinyHist(t *testing.T) {
	h := Hist{1: 1, 2: 2}
	if Oscillation(h) != 0 {
		t.Fatal("tiny histogram should score 0")
	}
}

func TestKSIdentical(t *testing.T) {
	h := Hist{1: 10, 2: 5, 7: 1}
	if d := KS(h, h); d != 0 {
		t.Fatalf("KS(h,h) = %v", d)
	}
}

func TestKSDisjoint(t *testing.T) {
	a := Hist{1: 10}
	b := Hist{100: 10}
	if d := KS(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("KS(disjoint) = %v, want 1", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if d := KS(Hist{}, Hist{1: 1}); d != 1 {
		t.Fatalf("KS with empty = %v", d)
	}
}

func TestKSSymmetricProperty(t *testing.T) {
	src := rng.New(1)
	f := func(seed uint32) bool {
		a, b := make(Hist), make(Hist)
		for i := 0; i < 50; i++ {
			a[src.Int63n(20)+1]++
			b[src.Int63n(20)+1]++
		}
		d1, d2 := KS(a, b), KS(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]int64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 {
		t.Fatalf("mean %v", mean)
	}
	if math.Abs(std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std %v", std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd should be 0,0")
	}
}

func TestSkewnessSymmetricVsSkewed(t *testing.T) {
	src := rng.New(2)
	var sym, skewed []int64
	for i := 0; i < 20000; i++ {
		sym = append(sym, int64(math.Round(src.Normal(100, 10))))
		// Heavy-tailed: x = exp(normal)
		skewed = append(skewed, int64(math.Exp(src.Normal(2, 1))))
	}
	if s := Skewness(sym); math.Abs(s) > 0.1 {
		t.Fatalf("normal skewness %v, want ~0", s)
	}
	if s := Skewness(skewed); s < 1 {
		t.Fatalf("lognormal skewness %v, want large positive", s)
	}
}

func TestKSAgainstNormal(t *testing.T) {
	src := rng.New(3)
	var gauss, zipf []int64
	for i := 0; i < 20000; i++ {
		gauss = append(gauss, int64(math.Round(src.Normal(50, 5))))
	}
	for rank := 1; rank <= 20000; rank++ {
		zipf = append(zipf, int64(1+1e5/math.Pow(float64(rank), 1.2)))
	}
	g := KSAgainstNormal(gauss)
	z := KSAgainstNormal(zipf)
	if g > 0.05 {
		t.Fatalf("gaussian sample KS %v too high", g)
	}
	if z < 0.2 {
		t.Fatalf("zipfian sample KS %v too low", z)
	}
}

func TestChiSquare(t *testing.T) {
	obs := []float64{10, 20, 30}
	exp := []float64{10, 20, 30}
	if s := ChiSquare(obs, exp, 0.5); s != 0 {
		t.Fatalf("chi-square of identical = %v", s)
	}
	exp2 := []float64{15, 20, 0.1}
	s := ChiSquare(obs, exp2, 0.5) // third cell skipped
	want := 25.0 / 15
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("chi-square %v, want %v", s, want)
	}
}

func TestChiSquarePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ChiSquare([]float64{1}, []float64{1, 2}, 0)
}

func TestKSCritical(t *testing.T) {
	// Symmetric, shrinks with sample size, grows with strictness.
	if KSCritical(100, 400, 0.05) != KSCritical(400, 100, 0.05) {
		t.Fatal("not symmetric")
	}
	if KSCritical(10000, 10000, 0.05) >= KSCritical(100, 100, 0.05) {
		t.Fatal("does not shrink with n")
	}
	if KSCritical(100, 100, 0.001) <= KSCritical(100, 100, 0.10) {
		t.Fatal("does not grow with strictness")
	}
	if KSCritical(0, 5, 0.05) != 1 {
		t.Fatal("degenerate sizes should return 1")
	}
}

func TestKSIndistinguishable(t *testing.T) {
	src := rng.New(71)
	a, b, c := make(Hist), make(Hist), make(Hist)
	for i := 0; i < 5000; i++ {
		a[src.Int63n(50)+1]++
		b[src.Int63n(50)+1]++
		c[src.Int63n(50)+25]++ // shifted
	}
	if !KSIndistinguishable(a, b, 0.01) {
		t.Fatal("same-distribution samples flagged different")
	}
	if KSIndistinguishable(a, c, 0.01) {
		t.Fatal("shifted distribution not detected")
	}
}

// TestZeroDegreeTracking: degree-0 vertices survive the Full
// histograms (the isolated-vertex counts validation needs) without
// perturbing the log-log plot path — Points, PowerLawSlope and
// Oscillation must be blind to them.
func TestZeroDegreeTracking(t *testing.T) {
	c := NewDegreeCounter()
	c.AddScope(1, []int64{2, 3})
	c.AddScope(4, nil) // empty scope: vertex 4 exists with out-degree 0
	c.AddEdge(5, 6)

	full := c.OutHistFull()
	if full.Zeros() != 1 {
		t.Fatalf("zero-degree vertices %d, want 1", full.Zeros())
	}
	if full.Vertices() != 3 || full.Active() != 2 {
		t.Fatalf("vertices %d / active %d, want 3 / 2", full.Vertices(), full.Active())
	}
	if got := c.OutHist(); got.Vertices() != 2 || got[0] != 0 {
		t.Fatalf("OutHist must keep dropping zeros, got %v", got)
	}
	// The plot path ignores the explicit zeros entirely.
	if len(full.Points()) != len(c.OutHist().Points()) {
		t.Fatal("Points must exclude degree 0")
	}
	s1, _ := PowerLawSlope(full)
	s2, _ := PowerLawSlope(c.OutHist())
	if s1 != s2 && !(math.IsNaN(s1) && math.IsNaN(s2)) {
		t.Fatalf("PowerLawSlope changed by zero tracking: %v vs %v", s1, s2)
	}
	if Oscillation(full) != Oscillation(c.OutHist()) {
		t.Fatal("Oscillation changed by zero tracking")
	}
	// Touched: sources 1, 4, 5 plus destinations 2, 3, 6.
	if got := c.Touched(); got != 6 {
		t.Fatalf("Touched %d, want 6", got)
	}
	if got := c.InHistFull(); got.Zeros() != 0 || got.Vertices() != 3 {
		t.Fatalf("InHistFull %v, want three degree-1 destinations", got)
	}
}
