package community

// Metric names the community composition publishes
// (docs/OBSERVABILITY.md is the catalog).
const (
	// MetricCommunities gauges the resolved community count of the
	// layout currently generating.
	MetricCommunities = "community.communities"
	// MetricBlocksPlanned gauges the planned block count (the part
	// count of the layout).
	MetricBlocksPlanned = "community.blocks_planned"
	// MetricBlocksGenerated counts blocks generated to completion.
	MetricBlocksGenerated = "community.blocks_generated_total"
	// MetricIntraEdges counts edges generated inside diagonal
	// (intra-community) blocks.
	MetricIntraEdges = "community.intra_edges_total"
	// MetricInterEdges counts edges generated in off-diagonal
	// (inter-community) blocks.
	MetricInterEdges = "community.inter_edges_total"
)
