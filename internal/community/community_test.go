package community

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/erv"
	"repro/internal/gformat"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// testConfig mixes the engines: community 0 (size 8, power of two)
// runs AVS with noise, community 1 (size 5) and both off-diagonal
// rectangles run ERV.
func testConfig() Config {
	return Config{
		Sizes:      []int64{8, 5},
		Mixing:     [][]float64{{4, 1}, {1, 2}},
		Edges:      80,
		Noise:      0.1,
		MasterSeed: 7,
	}
}

func mustLayout(t *testing.T, cfg Config) *Layout {
	t.Helper()
	lay, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

// readParts returns each part's bytes indexed by block id.
func readParts(t *testing.T, lay *Layout, dir string, format gformat.Format) [][]byte {
	t.Helper()
	out := make([][]byte, lay.NumBlocks())
	for id := range out {
		b, err := os.ReadFile(core.PartPath(dir, format, id))
		if err != nil {
			t.Fatal(err)
		}
		out[id] = b
	}
	return out
}

func TestBudgetsSumToTotalExactly(t *testing.T) {
	lay := mustLayout(t, testConfig())
	var sum int64
	for _, b := range lay.Blocks() {
		if b.Edges <= 0 {
			t.Fatalf("block (%d,%d) has non-positive budget %d", b.SrcComm, b.DstComm, b.Edges)
		}
		sum += b.Edges
	}
	if sum != 80 || lay.TotalEdges() != 80 {
		t.Fatalf("budgets sum to %d (TotalEdges %d), want 80", sum, lay.TotalEdges())
	}
	if lay.NumBlocks() != 4 {
		t.Fatalf("4 positive mixing entries, got %d blocks", lay.NumBlocks())
	}
	if lay.NumVertices() != 13 {
		t.Fatalf("NumVertices = %d, want 13", lay.NumVertices())
	}
}

func TestSplitBudgetLargestRemainder(t *testing.T) {
	got := splitBudget([]float64{1, 1, 1}, 10)
	var sum int64
	for _, v := range got {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("split %v does not sum to 10", got)
	}
	// Ties go to the lower index.
	if got[0] < got[2] {
		t.Fatalf("remainder order not index-stable: %v", got)
	}
}

func TestGenerateToDirDeterministic(t *testing.T) {
	for _, format := range []gformat.Format{gformat.TSV, gformat.ADJ6} {
		lay := mustLayout(t, testConfig())
		dirA, dirB := t.TempDir(), t.TempDir()
		stA, err := lay.GenerateToDir(dirA, format, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lay.GenerateToDir(dirB, format, RunOptions{}); err != nil {
			t.Fatal(err)
		}
		// Per-scope degrees are stochastic draws (binomial for ERV,
		// dedup for AVS), so the realized count only tracks the budget.
		if stA.Edges < lay.TotalEdges()/2 || stA.Edges > 2*lay.TotalEdges() {
			t.Fatalf("%v: generated %d edges, budget %d", format, stA.Edges, lay.TotalEdges())
		}
		a, b := readParts(t, lay, dirA, format), readParts(t, lay, dirB, format)
		for id := range a {
			if !bytes.Equal(a[id], b[id]) {
				t.Fatalf("%v: part %d differs between two runs of the same config", format, id)
			}
		}
	}
}

func TestStreamEqualsConcatenatedParts(t *testing.T) {
	lay := mustLayout(t, testConfig())
	dir := t.TempDir()
	if _, err := lay.GenerateToDir(dir, gformat.TSV, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	var concat bytes.Buffer
	for _, p := range readParts(t, lay, dir, gformat.TSV) {
		concat.Write(p)
	}

	var streamed bytes.Buffer
	w := gformat.NewTSVWriter(&streamed)
	scopes := 0
	if _, err := lay.GenerateStream(w, nil, func() { scopes++ }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(concat.Bytes(), streamed.Bytes()) {
		t.Fatal("streamed bytes differ from the part files concatenated in part order")
	}
	if int64(scopes) != lay.ScopeTotal() {
		t.Fatalf("onScope fired %d times, ScopeTotal is %d", scopes, lay.ScopeTotal())
	}
}

func TestResumeSkipsCompleteParts(t *testing.T) {
	lay := mustLayout(t, testConfig())
	dir := t.TempDir()
	if _, err := lay.GenerateToDir(dir, gformat.ADJ6, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	st, err := lay.GenerateToDir(dir, gformat.ADJ6, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Edges != 0 {
		t.Fatalf("rerun into a complete directory regenerated %d edges", st.Edges)
	}
}

func TestStoreCacheHitsAcrossRuns(t *testing.T) {
	lay := mustLayout(t, testConfig())
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := lay.GenerateToDir(dirA, gformat.ADJ6, RunOptions{Store: st}); err != nil {
		t.Fatal(err)
	}
	sum, err := lay.GenerateToDir(dirB, gformat.ADJ6, RunOptions{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if sum.PartsFromCache != lay.NumBlocks() {
		t.Fatalf("second run hit %d of %d parts in the store", sum.PartsFromCache, lay.NumBlocks())
	}
	a, b := readParts(t, lay, dirA, gformat.ADJ6), readParts(t, lay, dirB, gformat.ADJ6)
	for id := range a {
		if !bytes.Equal(a[id], b[id]) {
			t.Fatalf("store-materialized part %d differs from the generated original", id)
		}
	}
}

func TestPartKeysFingerprintLayoutAndMixing(t *testing.T) {
	base := mustLayout(t, testConfig())
	ranges, ids, err := base.Plan(0)
	if err != nil {
		t.Fatal(err)
	}

	mixed := testConfig()
	mixed.Mixing = [][]float64{{1, 4}, {2, 1}}
	sized := testConfig()
	sized.Sizes = []int64{8, 6}
	for name, other := range map[string]Config{"mixing": mixed, "sizes": sized} {
		lay := mustLayout(t, other)
		if lay.Fingerprint() == base.Fingerprint() {
			t.Fatalf("config differing only in %s shares the fingerprint", name)
		}
		oRanges, oIDs, err := lay.Plan(0)
		if err != nil {
			t.Fatal(err)
		}
		if lay.PartKey(gformat.ADJ6, oIDs[0], oRanges[0]) == base.PartKey(gformat.ADJ6, ids[0], ranges[0]) {
			t.Fatalf("config differing only in %s shares block 0's store key", name)
		}
	}

	// The identical config re-resolved addresses the identical artifacts.
	again := mustLayout(t, testConfig())
	for i := range ids {
		if again.PartKey(gformat.ADJ6, ids[i], ranges[i]) != base.PartKey(gformat.ADJ6, ids[i], ranges[i]) {
			t.Fatalf("block %d key unstable across two resolutions of one config", i)
		}
	}
	if base.PartKey(gformat.TSV, ids[0], ranges[0]) == base.PartKey(gformat.ADJ6, ids[0], ranges[0]) {
		t.Fatal("store key ignores the format")
	}
}

func TestSamplerIsSeededAndBounded(t *testing.T) {
	a := sampleSizes(16, 64, 8192, 2, 99)
	b := sampleSizes(16, 64, 8192, 2, 99)
	c := sampleSizes(16, 64, 8192, 2, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampler not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 64 || a[i] > 8192 {
			t.Fatalf("size %d outside [64, 8192]", a[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different master seeds sampled identical sizes")
	}
}

func TestBipartiteIsSingleRectangularBlock(t *testing.T) {
	lay := mustLayout(t, Bipartite(8, 16, 64, 9))
	if lay.NumBlocks() != 1 {
		t.Fatalf("bipartite resolved to %d blocks, want 1", lay.NumBlocks())
	}
	b := lay.Blocks()[0]
	if b.Intra || b.SrcLo != 0 || b.SrcHi != 8 || b.DstLo != 8 || b.DstHi != 24 || b.Edges != 64 {
		t.Fatalf("bipartite block = %+v", b)
	}

	var buf bytes.Buffer
	w := gformat.NewTSVWriter(&buf)
	if _, err := lay.GenerateStream(w, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := gformat.NewTSVReader(&buf)
	edges := 0
	for {
		e, err := r.Next()
		if err != nil {
			break
		}
		edges++
		if e.Src < 0 || e.Src >= 8 || e.Dst < 8 || e.Dst >= 24 {
			t.Fatalf("edge (%d, %d) escapes the bipartite rectangle", e.Src, e.Dst)
		}
	}
	if edges == 0 {
		t.Fatal("bipartite graph generated no edges")
	}
}

func TestCommunityOf(t *testing.T) {
	lay := mustLayout(t, testConfig())
	cases := map[int64]int{-1: -1, 0: 0, 7: 0, 8: 1, 12: 1, 13: -1}
	for v, want := range cases {
		if got := lay.CommunityOf(v); got != want {
			t.Fatalf("CommunityOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestPlanRejectsForeignPartCounts(t *testing.T) {
	lay := mustLayout(t, testConfig())
	if _, _, err := lay.Plan(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lay.Plan(lay.NumBlocks()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lay.Plan(lay.NumBlocks() + 1); err == nil {
		t.Fatal("Plan accepted a part count the layout cannot honor")
	}
}

func TestCSR6Rejected(t *testing.T) {
	lay := mustLayout(t, testConfig())
	if _, err := lay.GenerateToDir(t.TempDir(), gformat.CSR6, RunOptions{}); err == nil {
		t.Fatal("CSR6 accepted: the blocked layout repeats source scopes")
	}
}

func TestNewRejectsBadSpecs(t *testing.T) {
	badSize := testConfig()
	badSize.Sizes = []int64{8, 0}
	var rerr *erv.RangeError
	if _, err := New(badSize); !errors.As(err, &rerr) {
		t.Fatalf("zero-size community: got %v, want *erv.RangeError", err)
	}

	for name, mutate := range map[string]func(*Config){
		"zero mixing":      func(c *Config) { c.Mixing = [][]float64{{0, 0}, {0, 0}} },
		"ragged mixing":    func(c *Config) { c.Mixing = [][]float64{{1}, {1, 1}} },
		"wrong dims":       func(c *Config) { c.Mixing = [][]float64{{1}} },
		"negative weight":  func(c *Config) { c.Mixing[0][0] = -1 },
		"budget>capacity":  func(c *Config) { c.Edges = 10_000 },
		"no sizes/sampler": func(c *Config) { c.Sizes = nil },
	} {
		cfg := testConfig()
		cfg.Mixing = [][]float64{{4, 1}, {1, 2}}
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s: New accepted the spec", name)
		}
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"sizes": [8, 5], "mixxing": []}`)); err == nil {
		t.Fatal("typoed key decoded silently")
	}
	cfg, err := ParseSpec([]byte(`{"sizes": [8, 5], "mixing": [[4, 1], [1, 2]], "edges": 80, "master_seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sizes[1] != 5 || cfg.Edges != 80 || cfg.MasterSeed != 7 {
		t.Fatalf("spec decoded to %+v", cfg)
	}
}

func TestConfigRoundTripsThroughManifest(t *testing.T) {
	lay := mustLayout(t, testConfig())
	dir := t.TempDir()
	if _, err := lay.GenerateToDir(dir, gformat.TSV, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	raw, _, _, err := core.ReadSourceSpec(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	again, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Fingerprint() != lay.Fingerprint() {
		t.Fatal("manifest spec resolves to a different layout")
	}
}

func TestTelemetryCounters(t *testing.T) {
	lay := mustLayout(t, testConfig())
	tel := telemetry.NewRegistry()
	st, err := lay.GenerateToDir(t.TempDir(), gformat.TSV, RunOptions{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.GaugeValue(MetricCommunities); got != 2 {
		t.Fatalf("%s = %v, want 2", MetricCommunities, got)
	}
	if got := tel.GaugeValue(MetricBlocksPlanned); got != float64(lay.NumBlocks()) {
		t.Fatalf("%s = %v, want %d", MetricBlocksPlanned, got, lay.NumBlocks())
	}
	if got := tel.CounterValue(MetricBlocksGenerated); got != int64(lay.NumBlocks()) {
		t.Fatalf("%s = %v, want %d", MetricBlocksGenerated, got, lay.NumBlocks())
	}
	intra, inter := tel.CounterValue(MetricIntraEdges), tel.CounterValue(MetricInterEdges)
	if intra <= 0 || inter <= 0 || intra+inter != st.Edges {
		t.Fatalf("intra %d + inter %d != generated %d", intra, inter, st.Edges)
	}
}
