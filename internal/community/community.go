// Package community composes TrillionG's scope generators into
// community-structured graphs: a partition of the vertex space into
// communities plus a mixing matrix, realized as dense intra-community
// blocks (SKG/NSKG via the recursive vector, or ERV for
// non-power-of-two community sizes) stitched together by sparse
// rectangular inter-community ERV blocks — the blocked layout of Yoo &
// Henderson's parallel scale-free generator, built from the paper's
// Figure-7b rectangles.
//
// Every block is generated deterministically from (master seed, block
// position): block b's scopes draw from rng.NewScoped(blockSeed(b), u),
// exactly the per-scope independence trick the flat generator uses. The
// graph is therefore a pure function of its Config — bit-identical
// across worker counts, machines, claim orders, and execution modes —
// and a block is the natural work unit: one part file, one store
// artifact, one dist lease, one swarm claim.
//
// Layout implements core.PartSource, which is what plugs the
// composition into the batch, distributed and masterless runtimes at
// once. docs/COMMUNITY.md is the user-facing contract.
package community

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"

	"repro/internal/avs"
	"repro/internal/core"
	"repro/internal/erv"
	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/skg"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Salts separating the package's derived RNG streams from each other
// and from the flat generator's.
const (
	// blockSeedSalt derives each block's seed from the master seed.
	blockSeedSalt = 0xB10C5
	// sizeSalt seeds the power-law community-size sampler.
	sizeSalt = 0x512E5
	// noiseSalt derives a block's NSKG noise stream from its block seed
	// (the same role core's 0xBE5 plays for the whole-graph noise).
	noiseSalt = 0xBE5
)

// maxCommunitySize caps one community at the generators' 2^47 range
// limit.
const maxCommunitySize = int64(1) << 47

// Config specifies a community-structured graph. It doubles as the
// JSON spec format of the -community CLI modes and the server job
// field (snake_case keys); ParseSpec decodes it strictly.
type Config struct {
	// Sizes lists explicit community sizes. When set, the sampler
	// fields below are ignored.
	Sizes []int64 `json:"sizes,omitempty"`

	// Communities, MinSize, MaxSize and SizeExponent parameterize the
	// seeded power-law size sampler used when Sizes is empty:
	// Communities sizes are drawn from a bounded power law with density
	// ∝ s^-SizeExponent on [MinSize, MaxSize], deterministically from
	// MasterSeed. Defaults: MinSize 64, MaxSize 8192, SizeExponent 2.
	Communities  int     `json:"communities,omitempty"`
	MinSize      int64   `json:"min_size,omitempty"`
	MaxSize      int64   `json:"max_size,omitempty"`
	SizeExponent float64 `json:"size_exponent,omitempty"`

	// Mixing is the k×k mixing matrix: Mixing[i][j] is the relative
	// weight of edges from community i to community j (unnormalized,
	// ≥ 0). The diagonal weights intra-community blocks.
	Mixing [][]float64 `json:"mixing"`

	// Edges is the total edge budget, split across blocks proportional
	// to Mixing. 0 means EdgeFactor × total vertices.
	Edges int64 `json:"edges,omitempty"`
	// EdgeFactor is the per-vertex budget when Edges is 0 (default 16).
	EdgeFactor int64 `json:"edge_factor,omitempty"`

	// Seed is the SKG seed matrix shaping degree distributions inside
	// every block (default Graph500). Intra blocks use it directly;
	// inter blocks use its Lemma-6 Zipf slopes for the ERV rectangle's
	// out- and in-distributions.
	Seed *skg.Seed `json:"seed,omitempty"`
	// Noise is the NSKG noise parameter applied to power-of-two intra
	// blocks (0 disables, as in the flat generator).
	Noise float64 `json:"noise,omitempty"`

	// MasterSeed is the graph's random identity (0 means 1).
	MasterSeed uint64 `json:"master_seed,omitempty"`
	// AllowDuplicates keeps repeated (src, dst) pairs within a scope.
	AllowDuplicates bool `json:"allow_duplicates,omitempty"`
}

// withDefaults fills unset fields with their documented defaults.
func (c Config) withDefaults() Config {
	if c.MasterSeed == 0 {
		c.MasterSeed = 1
	}
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 16
	}
	if c.Seed == nil {
		s := skg.Graph500Seed
		c.Seed = &s
	}
	if len(c.Sizes) == 0 {
		if c.MinSize == 0 {
			c.MinSize = 64
		}
		if c.MaxSize == 0 {
			c.MaxSize = 8192
		}
		if c.SizeExponent == 0 {
			c.SizeExponent = 2
		}
	}
	return c
}

// ParseSpec decodes a JSON community spec strictly (unknown fields are
// an error, so a typoed key fails loudly instead of silently changing
// the graph).
func ParseSpec(b []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("community: spec: %w", err)
	}
	return c, nil
}

// Bipartite returns the spec of a plain rows×cols bipartite graph —
// the two-community degenerate case: all edges flow through the single
// rectangular inter block, the two diagonal blocks are empty.
func Bipartite(rows, cols, edges int64, masterSeed uint64) Config {
	return Config{
		Sizes:      []int64{rows, cols},
		Mixing:     [][]float64{{0, 1}, {0, 0}},
		Edges:      edges,
		MasterSeed: masterSeed,
	}
}

// Block is one rectangle of the blocked adjacency matrix: edges from
// community SrcComm's vertex range into community DstComm's.
type Block struct {
	// ID is the block's part index (dense, row-major over positive-
	// budget mixing entries).
	ID int
	// SrcComm and DstComm are the community indices.
	SrcComm, DstComm int
	// SrcLo/SrcHi and DstLo/DstHi are the global vertex ranges
	// (half-open) of the source rows and destination columns.
	SrcLo, SrcHi, DstLo, DstHi int64
	// Edges is the block's share of the total edge budget.
	Edges int64
	// Intra marks a diagonal (intra-community) block.
	Intra bool
	// Seed is the block's derived random seed; scope u of the block
	// draws from rng.NewScoped(Seed, u).
	Seed uint64
}

// Layout is a resolved community configuration: concrete sizes,
// offsets, per-block edge budgets and seeds. It implements
// core.PartSource with one part per block.
type Layout struct {
	cfg     Config // resolved: Sizes filled, Seed/Edges/MasterSeed set
	offsets []int64
	blocks  []Block
	edges   int64
	scopes  int64
	fp      string
}

// New resolves cfg into a Layout: sizes are sampled if not explicit,
// the mixing matrix is normalized into per-block budgets (largest-
// remainder rounding, so budgets always sum to the total), and every
// block's generator configuration is validated up front. Unusable
// block rectangles surface as erv's typed *RangeError.
func New(cfg Config) (*Layout, error) {
	c := cfg.withDefaults()
	if err := c.Seed.Validate(); err != nil {
		return nil, fmt.Errorf("community: %w", err)
	}

	if len(c.Sizes) == 0 {
		if c.Communities < 1 {
			return nil, fmt.Errorf("community: need explicit sizes or communities > 0")
		}
		if c.MinSize < 1 || c.MaxSize < c.MinSize || c.MaxSize > maxCommunitySize {
			return nil, fmt.Errorf("community: size bounds [%d, %d] invalid", c.MinSize, c.MaxSize)
		}
		c.Sizes = sampleSizes(c.Communities, c.MinSize, c.MaxSize, c.SizeExponent, c.MasterSeed)
	}
	k := len(c.Sizes)
	offsets := make([]int64, k+1)
	for i, s := range c.Sizes {
		if s < 1 {
			// A non-positive community is an unusable block rectangle;
			// surface erv's typed error so spec layers recognize it.
			return nil, fmt.Errorf("community %d: %w", i, &erv.RangeError{Rows: s, Cols: s})
		}
		if s > maxCommunitySize {
			return nil, fmt.Errorf("community %d: size %d exceeds the generator's 2^47 range limit", i, s)
		}
		offsets[i+1] = offsets[i] + s
	}
	if total := offsets[k]; total > gformat.MaxVertexID {
		return nil, fmt.Errorf("community: %d total vertices exceed the 48-bit id space", total)
	}

	if len(c.Mixing) != k {
		return nil, fmt.Errorf("community: mixing matrix is %d×?, need %d×%d", len(c.Mixing), k, k)
	}
	weights := make([]float64, k*k)
	var mass float64
	for i, row := range c.Mixing {
		if len(row) != k {
			return nil, fmt.Errorf("community: mixing row %d has %d entries, need %d", i, len(row), k)
		}
		for j, w := range row {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("community: mixing[%d][%d] = %v invalid", i, j, w)
			}
			weights[i*k+j] = w
			mass += w
		}
	}
	if mass <= 0 {
		return nil, fmt.Errorf("community: mixing matrix is all zero")
	}

	if c.Edges == 0 {
		c.Edges = c.EdgeFactor * offsets[k]
	}
	if c.Edges < 1 {
		return nil, fmt.Errorf("community: edge budget %d < 1", c.Edges)
	}
	budgets := splitBudget(weights, c.Edges)

	l := &Layout{cfg: c, offsets: offsets}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			budget := budgets[i*k+j]
			if budget <= 0 {
				continue
			}
			b := Block{
				ID:      len(l.blocks),
				SrcComm: i, DstComm: j,
				SrcLo: offsets[i], SrcHi: offsets[i+1],
				DstLo: offsets[j], DstHi: offsets[j+1],
				Edges: budget,
				Intra: i == j,
				Seed:  rng.Mix64(rng.Mix64(c.MasterSeed, blockSeedSalt), uint64(i*k+j)),
			}
			rows, cols := b.SrcHi-b.SrcLo, b.DstHi-b.DstLo
			if !c.AllowDuplicates && float64(budget) > float64(rows)*float64(cols) {
				return nil, fmt.Errorf("community: block (%d,%d) budget %d exceeds its %d×%d capacity (raise sizes, lower the weight, or allow duplicates)",
					i, j, budget, rows, cols)
			}
			// Probe-build the block's generator so a bad configuration
			// (including empty/inverted rectangles, as *erv.RangeError)
			// fails at spec time, not mid-generation.
			if _, err := l.newScoper(b); err != nil {
				return nil, fmt.Errorf("community: block (%d,%d): %w", i, j, err)
			}
			l.blocks = append(l.blocks, b)
			l.edges += budget
			l.scopes += rows
		}
	}
	if len(l.blocks) == 0 {
		return nil, fmt.Errorf("community: no block received a positive edge budget")
	}
	l.fp = fingerprint(c, l.blocks)
	return l, nil
}

// sampleSizes draws k community sizes from the bounded power law with
// density ∝ s^-gamma on [lo, hi] by inverse-CDF, deterministically from
// the master seed.
func sampleSizes(k int, lo, hi int64, gamma float64, masterSeed uint64) []int64 {
	src := rng.New(rng.Mix64(masterSeed, sizeSalt))
	sizes := make([]int64, k)
	for i := range sizes {
		u := src.Float64()
		var s float64
		if math.Abs(gamma-1) < 1e-9 {
			s = float64(lo) * math.Exp(u*math.Log(float64(hi)/float64(lo)))
		} else {
			a := math.Pow(float64(lo), 1-gamma)
			b := math.Pow(float64(hi), 1-gamma)
			s = math.Pow(a+u*(b-a), 1/(1-gamma))
		}
		sizes[i] = min(max(int64(math.Round(s)), lo), hi)
	}
	return sizes
}

// splitBudget apportions total across the weights by largest-remainder
// rounding: floors first, then the remainder to the largest fractional
// parts (ties to the lower index), so the budgets sum to total exactly
// and the split is deterministic.
func splitBudget(weights []float64, total int64) []int64 {
	var mass float64
	for _, w := range weights {
		mass += w
	}
	out := make([]int64, len(weights))
	type frac struct {
		i int
		f float64
	}
	var fr []frac
	var used int64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(total) * w / mass
		fl := math.Floor(exact)
		out[i] = int64(fl)
		used += int64(fl)
		fr = append(fr, frac{i, exact - fl})
	}
	sort.SliceStable(fr, func(a, b int) bool {
		if fr[a].f != fr[b].f {
			return fr[a].f > fr[b].f
		}
		return fr[a].i < fr[b].i
	})
	for r := 0; used < total && len(fr) > 0; r++ {
		out[fr[r%len(fr)].i]++
		used++
	}
	return out
}

// fingerprint condenses everything that determines generated bytes:
// the resolved sizes, every block's rectangle, budget and seed, and
// the per-block generator parameters. Identical fingerprints mean
// bit-identical output, which is the property the store keys need.
func fingerprint(c Config, blocks []Block) string {
	var b strings.Builder
	fmt.Fprintf(&b, "community/v1 master=%d dup=%t seed=%v noise=%v sizes=%v",
		c.MasterSeed, c.AllowDuplicates, *c.Seed, c.Noise, c.Sizes)
	for _, blk := range blocks {
		fmt.Fprintf(&b, " b%d=(%d,%d)[%d,%d)x[%d,%d)e%d:%016x",
			blk.ID, blk.SrcComm, blk.DstComm, blk.SrcLo, blk.SrcHi, blk.DstLo, blk.DstHi, blk.Edges, blk.Seed)
	}
	return b.String()
}

// Config returns the resolved configuration (sizes concrete, defaults
// applied). Marshaled, it round-trips through ParseSpec and New to an
// identical layout.
func (l *Layout) Config() Config { return l.cfg }

// Sizes returns the resolved community sizes.
func (l *Layout) Sizes() []int64 { return l.cfg.Sizes }

// Blocks returns the block plan in part order.
func (l *Layout) Blocks() []Block { return l.blocks }

// NumBlocks returns the number of blocks — the layout's part count.
func (l *Layout) NumBlocks() int { return len(l.blocks) }

// TotalEdges returns the summed block budgets.
func (l *Layout) TotalEdges() int64 { return l.edges }

// ScopeTotal returns the number of scopes generation emits: the summed
// source rows over all blocks (one vertex can head a scope in several
// blocks).
func (l *Layout) ScopeTotal() int64 { return l.scopes }

// CommunityOf returns the community index owning global vertex v, or
// -1 when v is outside the vertex space.
func (l *Layout) CommunityOf(v int64) int {
	if v < 0 || v >= l.offsets[len(l.offsets)-1] {
		return -1
	}
	// offsets is sorted; find the last offset ≤ v.
	i := sort.Search(len(l.offsets), func(i int) bool { return l.offsets[i] > v })
	return i - 1
}

// Fingerprint implements core.PartSource.
func (l *Layout) Fingerprint() string { return l.fp }

// NumVertices implements core.PartSource.
func (l *Layout) NumVertices() int64 { return l.offsets[len(l.offsets)-1] }

// Plan implements core.PartSource. The layout's part count is
// intrinsic — one part per block — so parts must be 0 (no opinion) or
// exactly NumBlocks; anything else is a configuration clash, not a
// parallelism knob.
func (l *Layout) Plan(parts int) ([]partition.Range, []int, error) {
	if parts != 0 && parts != len(l.blocks) {
		return nil, nil, fmt.Errorf("community: layout has %d blocks (one part each), cannot plan %d parts", len(l.blocks), parts)
	}
	ranges := make([]partition.Range, len(l.blocks))
	ids := make([]int, len(l.blocks))
	for i, b := range l.blocks {
		ranges[i] = partition.Range{Lo: b.SrcLo, Hi: b.SrcHi, Edges: b.Edges}
		ids[i] = i
	}
	return ranges, ids, nil
}

// PartKey implements core.PartSource: the key fingerprints the whole
// resolved layout plus the block id, so two configs differing anywhere
// that matters — sizes, mixing-derived budgets, seeds, noise — address
// different artifacts, while identical configs cache-hit across batch,
// dist and swarm runs.
func (l *Layout) PartKey(format gformat.Format, id int, r partition.Range) store.Key {
	lo, hi := r.Lo, r.Hi
	if id >= 0 && id < len(l.blocks) {
		lo, hi = l.blocks[id].SrcLo, l.blocks[id].SrcHi
	}
	return store.DeriveKey(store.KeyInput{
		ConfigFingerprint: fmt.Sprintf("%s|block=%d", l.fp, id),
		MasterSeed:        l.cfg.MasterSeed,
		Lo:                lo,
		Hi:                hi,
		Format:            format.String(),
		Codec:             core.CacheCodecVersion,
	})
}

// ArtifactKey addresses the whole concatenated output (every block in
// part order) in the given format — the server's stream/download
// artifact, the byte-equal of the batch part files joined.
func (l *Layout) ArtifactKey(format gformat.Format) store.Key {
	return store.DeriveKey(store.KeyInput{
		ConfigFingerprint: l.fp + "|stream",
		MasterSeed:        l.cfg.MasterSeed,
		Lo:                0,
		Hi:                l.NumVertices(),
		Format:            format.String(),
		Codec:             core.CacheCodecVersion,
	})
}

// EnsureManifest implements core.PartSource, recording the resolved
// spec so tools (the statistical validator foremost) can recover what
// the directory claims to be.
func (l *Layout) EnsureManifest(dir string, format gformat.Format, parts int) error {
	spec, err := json.Marshal(l.cfg)
	if err != nil {
		return err
	}
	return core.EnsureSourceManifest(dir, l.fp, spec, format, parts)
}

// scoper is one block's destination-scope generator.
type scoper interface {
	// scope draws local source u's destinations (block-local ids) and
	// the stochastic attempt count.
	scope(u int64, src *rng.Source, buf []int64) ([]int64, int64)
}

type avsScoper struct{ g *avs.Generator }

func (s avsScoper) scope(u int64, src *rng.Source, buf []int64) ([]int64, int64) {
	res := s.g.Scope(u, src, buf)
	return res.Dsts, res.Attempts
}

type ervScoper struct{ g *erv.Generator }

func (s ervScoper) scope(u int64, src *rng.Source, buf []int64) ([]int64, int64) {
	dsts := s.g.Scope(u, src, buf)
	return dsts, int64(len(dsts))
}

// distForSlope maps a Lemma-6 Zipf slope onto an ERV distribution:
// properly negative slopes are Zipfian; a flat (uniform-seed) slope
// degenerates to Gaussian, matching erv's own seed mapping.
func distForSlope(slope float64) erv.Dist {
	if slope < -1e-12 {
		return erv.Dist{Kind: erv.Zipfian, Slope: slope}
	}
	return erv.Dist{Kind: erv.Gaussian}
}

// newScoper builds block b's generator. Power-of-two intra blocks run
// the real AVS engine (SKG, or NSKG when Noise is set, with the noise
// stream derived from the block seed); everything else — rectangles
// and odd-sized squares — runs ERV with the seed's Lemma-6 slopes.
// Generators are not concurrency-safe: one scoper per concurrent block.
func (l *Layout) newScoper(b Block) (scoper, error) {
	rows, cols := b.SrcHi-b.SrcLo, b.DstHi-b.DstLo
	seed := *l.cfg.Seed
	if b.Intra && rows >= 2 && rows == cols && rows&(rows-1) == 0 {
		levels := bits.Len64(uint64(rows)) - 1
		acfg := avs.Config{
			Seed:            seed,
			Levels:          levels,
			NumEdges:        b.Edges,
			AllowDuplicates: l.cfg.AllowDuplicates,
		}
		if l.cfg.Noise > 0 {
			n, err := skg.NewNoise(seed, levels, l.cfg.Noise, rng.New(rng.Mix64(b.Seed, noiseSalt)))
			if err != nil {
				return nil, err
			}
			acfg.Noise = n
		}
		g, err := avs.New(acfg, nil)
		if err != nil {
			return nil, err
		}
		return avsScoper{g: g}, nil
	}
	ecfg := erv.Config{
		NumSrc:          rows,
		NumDst:          cols,
		NumEdges:        b.Edges,
		OutDist:         distForSlope(seed.OutZipfSlope()),
		InDist:          distForSlope(seed.InZipfSlope()),
		AllowDuplicates: l.cfg.AllowDuplicates,
	}
	g, err := erv.New(ecfg)
	if err != nil {
		return nil, err
	}
	return ervScoper{g: g}, nil
}

// generateBlock writes block b through w: scope u of the block draws
// from rng.NewScoped(b.Seed, u) — fully independent of every other
// scope and block, which is the whole determinism story — and lands as
// global scope (SrcLo+u, dsts+DstLo). The writer is not closed.
func (l *Layout) generateBlock(b Block, w gformat.Writer, tel *telemetry.Registry, onScope func()) (edges, attempts, maxDeg int64, err error) {
	g, err := l.newScoper(b)
	if err != nil {
		return 0, 0, 0, err
	}
	rows := b.SrcHi - b.SrcLo
	var buf []int64
	for u := int64(0); u < rows; u++ {
		src := rng.NewScoped(b.Seed, uint64(u))
		dsts, att := g.scope(u, src, buf)
		buf = dsts
		for i := range dsts {
			dsts[i] += b.DstLo
		}
		attempts += att
		edges += int64(len(dsts))
		if int64(len(dsts)) > maxDeg {
			maxDeg = int64(len(dsts))
		}
		if err := w.WriteScope(b.SrcLo+u, dsts); err != nil {
			return edges, attempts, maxDeg, err
		}
		if onScope != nil {
			onScope()
		}
	}
	if tel != nil {
		tel.Counter(MetricBlocksGenerated).Inc()
		if b.Intra {
			tel.Counter(MetricIntraEdges).Add(edges)
		} else {
			tel.Counter(MetricInterEdges).Add(edges)
		}
	}
	return edges, attempts, maxDeg, nil
}

// GeneratePart implements core.PartSource: block id into a writer from
// sinks(0, r). On success the writer is closed (publishing the part,
// under atomic sinks); on error it is abandoned unclosed, exactly like
// the flat generator's workers, so a failed part is never renamed into
// place.
func (l *Layout) GeneratePart(id int, r partition.Range, sinks core.SinkFactory, tel *telemetry.Registry) (core.Stats, error) {
	if id < 0 || id >= len(l.blocks) {
		return core.Stats{}, fmt.Errorf("community: part %d outside the %d-block layout", id, len(l.blocks))
	}
	b := l.blocks[id]
	start := time.Now()
	w, err := sinks(0, r)
	if err != nil {
		return core.Stats{}, err
	}
	edges, attempts, maxDeg, err := l.generateBlock(b, w, tel, nil)
	if err != nil {
		return core.Stats{}, fmt.Errorf("community: block (%d,%d): %w", b.SrcComm, b.DstComm, err)
	}
	if err := w.Close(); err != nil {
		return core.Stats{}, err
	}
	st := core.Stats{
		Edges:        edges,
		Attempts:     attempts,
		MaxDegree:    maxDeg,
		BytesWritten: w.BytesWritten(),
		GenDuration:  time.Since(start),
		Ranges:       []partition.Range{r},
	}
	st.Elapsed = st.GenDuration
	return st, nil
}

// checkFormat rejects encodings that cannot express the blocked
// layout: CSR6 needs exactly one scope per vertex, but a vertex heads
// one scope per block it sources.
func checkFormat(format gformat.Format) error {
	if format != gformat.TSV && format != gformat.ADJ6 {
		return fmt.Errorf("community: format %v unsupported (blocked output repeats source scopes; use tsv or adj6)", format)
	}
	return nil
}

// RunOptions tunes GenerateToDir.
type RunOptions struct {
	// Store, when non-nil, is the artifact store: cached blocks are
	// materialized instead of generated, generated blocks are ingested.
	Store *store.Store
	// Telemetry receives community.* and core sink metrics (nil
	// disables).
	Telemetry *telemetry.Registry
}

// GenerateToDir generates the layout into dir, one part file per block
// (part-<blockID>.<ext>), with the full resume/store treatment of the
// flat generator: atomic part files, a manifest handshake, existing
// complete parts skipped, store hits materialized, generated parts
// ingested. Concatenating the part files in part order yields the
// byte-exact stream output.
func (l *Layout) GenerateToDir(dir string, format gformat.Format, opt RunOptions) (core.Stats, error) {
	if err := checkFormat(format); err != nil {
		return core.Stats{}, err
	}
	planStart := time.Now()
	ranges, ids, err := l.Plan(0)
	if err != nil {
		return core.Stats{}, err
	}
	if err := l.EnsureManifest(dir, format, len(ranges)); err != nil {
		return core.Stats{}, err
	}
	if err := core.SweepTemps(dir); err != nil {
		return core.Stats{}, err
	}
	if tel := opt.Telemetry; tel != nil {
		tel.Gauge(MetricCommunities).Set(float64(len(l.cfg.Sizes)))
		tel.Gauge(MetricBlocksPlanned).Set(float64(len(l.blocks)))
	}
	planDur := time.Since(planStart)

	missing, missingIDs := core.MissingParts(dir, format, ranges, ids)
	missing, missingIDs, hits, err := core.FetchPartsFromStore(opt.Store, l, dir, format, missing, missingIDs)
	if err != nil {
		return core.Stats{}, err
	}
	if len(missing) == 0 {
		return core.Stats{
			PlanDuration:   planDur,
			Elapsed:        planDur,
			Ranges:         ranges,
			PartsFromCache: hits,
		}, nil
	}
	sinks := core.IngestingSinksFor(
		core.AtomicPartSinks(dir, format, l.NumVertices(), missingIDs),
		opt.Store, l, dir, format, missingIDs)
	if opt.Telemetry != nil {
		sinks = core.ObservedSinks(sinks, format, opt.Telemetry)
	}
	st, err := core.GenerateParts(l, missing, missingIDs, sinks, opt.Telemetry)
	if err != nil {
		return st, err
	}
	st.PlanDuration = planDur
	st.Elapsed = planDur + st.GenDuration
	st.Ranges = ranges
	st.PartsFromCache = hits
	return st, nil
}

// GenerateStream writes every block in part order through one writer.
// The bytes are exactly the batch part files concatenated — TSV and
// ADJ6 encode scope by scope with no global state — which is what lets
// the HTTP server stream a community job and still share artifacts
// with the part-file world. onScope, if non-nil, is called per scope
// (progress accounting). The writer is not closed.
func (l *Layout) GenerateStream(w gformat.Writer, tel *telemetry.Registry, onScope func()) (core.Stats, error) {
	start := time.Now()
	var st core.Stats
	for _, b := range l.blocks {
		edges, attempts, maxDeg, err := l.generateBlock(b, w, tel, onScope)
		st.Edges += edges
		st.Attempts += attempts
		if maxDeg > st.MaxDegree {
			st.MaxDegree = maxDeg
		}
		if err != nil {
			return st, fmt.Errorf("community: block (%d,%d): %w", b.SrcComm, b.DstComm, err)
		}
	}
	st.BytesWritten = w.BytesWritten()
	st.GenDuration = time.Since(start)
	st.Elapsed = st.GenDuration
	return st, nil
}
