// Package validate compares generated graphs against closed-form
// expectations of the generating model — the statistical fidelity
// harness the paper argues for visually (Figure 9) and Seshadhri,
// Pinar & Kolda ("An In-Depth Analysis of Stochastic Kronecker
// Graphs") derive analytically.
//
// The package has three layers:
//
//   - expectation models (model.go, ccdf.go): exact per-vertex edge
//     probabilities of the SKG/NSKG/ERV parameterizations collapsed
//     into probability classes, from which expected degree CCDFs,
//     zero-degree and isolated-vertex counts, edge totals, and a
//     predicted Figure-9 oscillation score follow in closed form;
//   - streaming accumulators (accumulate.go): single-pass collectors
//     of observed degree distributions from TSV/ADJ6/CSR6 part files
//     or riding along a live generation via CollectingSinks, with
//     memory proportional to active vertices, never edges;
//   - verdicts (report.go, checks.go): a Report pairing observed and
//     expected values through the KS/chi-square machinery of
//     internal/stats, with per-check pass/warn/fail thresholds and
//     validate.* telemetry counters.
package validate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/erv"
)

// probClass is one group of vertices sharing (approximately) the same
// per-trial edge probability: count vertices whose single stochastic
// trial succeeds with probability 2^logP. For plain SKG the classes
// are exact — the L+1 popcount classes of Seshadhri et al. — and for
// NSKG they are per-level bit patterns coalesced on a fine log grid.
type probClass struct {
	logP  float64
	count float64
}

// jointClass pairs a vertex group's scope-axis and destination-axis
// probabilities, which the isolated-vertex expectation needs: a vertex
// is isolated only when both its out- and in-degree are zero, and both
// probabilities are functions of the same bit pattern.
type jointClass struct {
	logOut, logIn float64
	count         float64
}

// Model is the closed-form expectation side of a validation: enough of
// the generating process to predict degree distributions without
// generating. Out always refers to the scope axis as written in the
// part files (under AVS-I orientation that is the original graph's
// in-degree), In to the destination axis, so observed accumulators
// compare against it without orientation special cases.
type Model struct {
	// Label names the parameterization in reports ("skg", "nskg", "erv").
	Label string
	// ScopeVertices and DestVertices are the axis domain sizes.
	ScopeVertices, DestVertices int64
	// Trials is the binomial trial count (the target |E|).
	Trials int64
	// OutZipfSlope is the theoretical rank-frequency slope of the scope
	// axis (Lemma 6), NaN when the parameterization does not fix one.
	OutZipfSlope float64

	out, in []probClass
	joint   []jointClass // nil when the axes have different domains (ERV)
	// uniformOut, when non-nil, replaces the binomial out-axis with an
	// exact uniform degree box [Min, Max] (the ERV Uniform case).
	uniformOut *[2]int64
	// dedup marks that scopes draw distinct destinations, engaging the
	// in-axis saturation correction (see dedup.go).
	dedup   bool
	inDedup *dedupModel
	// outE and inE are the grid evaluations, computed once at build.
	outE, inE *axisEval
}

// maxClasses caps the coalesced class count; past it the log-grid
// quantum doubles. 2^16 classes keep the accumulated representative
// error well under the loosest check threshold while bounding the CCDF
// evaluation cost at CLI-interactive latency.
const maxClasses = 1 << 16

// FromConfig builds the expectation model of a core generation
// configuration — plain SKG when NoiseParam is zero, NSKG otherwise,
// with the noise matrices reconstructed deterministically from the
// master seed exactly as the generator does (so the prediction is for
// this graph, not the noise-averaged ensemble).
func FromConfig(cfg core.Config) (*Model, error) {
	g, err := core.NewScopeGenerator(cfg, nil)
	if err != nil {
		return nil, err
	}
	ac := g.Config() // seed already transposed for AVS-I; noise with it
	levels := cfg.Scale
	rows := make([][2]float64, levels)
	cols := make([][2]float64, levels)
	for i := range rows {
		s := ac.Seed
		if ac.Noise != nil {
			s = ac.Noise.Level(i)
		}
		rows[i] = [2]float64{s.RowSum(0), s.RowSum(1)}
		cols[i] = [2]float64{s.ColSum(0), s.ColSum(1)}
	}
	m := &Model{
		Label:         "skg",
		ScopeVertices: cfg.NumVertices(),
		DestVertices:  cfg.NumVertices(),
		Trials:        cfg.NumEdges(),
		OutZipfSlope:  ac.Seed.OutZipfSlope(),
	}
	if cfg.NoiseParam > 0 {
		m.Label = "nskg"
	}
	m.dedup = !cfg.AllowDuplicates
	m.joint = buildJoint(rows, cols)
	m.out, m.in = marginalize(m.joint)
	m.finish()
	return m, nil
}

// ervEnumLimit bounds direct enumeration of ERV vertex ranges (they
// need not be powers of two, so the popcount-class shortcut does not
// apply).
const ervEnumLimit = int64(1) << 22

// FromERV builds the expectation model of an ERV edge collection
// (Section 6.1). Zipfian and Gaussian axes map to per-vertex binomial
// probabilities exactly as erv.Generator draws them; Uniform out-
// degrees get their exact box CCDF. Empirical axes are not modeled.
func FromERV(cfg erv.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.OutDist.Kind == erv.Empirical || cfg.InDist.Kind == erv.Empirical {
		return nil, fmt.Errorf("validate: empirical ERV distributions have no closed form")
	}
	if cfg.NumSrc > ervEnumLimit || cfg.NumDst > ervEnumLimit {
		return nil, fmt.Errorf("validate: ERV ranges beyond %d vertices not supported", ervEnumLimit)
	}
	g, err := erv.New(cfg)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Label:         "erv",
		ScopeVertices: cfg.NumSrc,
		DestVertices:  cfg.NumDst,
		Trials:        cfg.NumEdges,
		OutZipfSlope:  math.NaN(),
	}
	if cfg.OutDist.Kind == erv.Zipfian {
		m.OutZipfSlope = cfg.OutDist.Slope
	}
	m.dedup = !cfg.AllowDuplicates
	if cfg.OutDist.Kind == erv.Uniform {
		m.uniformOut = &[2]int64{cfg.OutDist.Min, cfg.OutDist.Max}
	} else {
		m.out = enumerateClasses(cfg.NumSrc, g.ScopeSizeProb)
	}
	m.in = enumerateClasses(cfg.NumDst, g.DestProb)
	m.finish()
	return m, nil
}

// buildJoint runs the per-level product DP over (row mass, column
// mass) pairs, coalescing classes on a log2 grid whose quantum doubles
// adaptively whenever the class count would exceed maxClasses. Plain
// SKG (identical levels) coalesces exactly into popcount classes; the
// adaptive quantum only engages for NSKG at large scales, where the
// per-class representative error stays below levels·quantum/2 log2
// units. Iteration order is deterministic (sorted keys) so repeated
// runs produce bit-identical expectations.
func buildJoint(rows, cols [][2]float64) []jointClass {
	q := math.Ldexp(1, -20)
	cur := []jointClass{{0, 0, 1}}
	for lvl := range rows {
		lr := [2]float64{math.Log2(rows[lvl][0]), math.Log2(rows[lvl][1])}
		lc := [2]float64{math.Log2(cols[lvl][0]), math.Log2(cols[lvl][1])}
		next := make(map[[2]int64]jointClass, 2*len(cur))
		for {
			clear(next)
			for _, c := range cur {
				for b := 0; b < 2; b++ {
					addJoint(next, q, c.logOut+lr[b], c.logIn+lc[b], c.count)
				}
			}
			if len(next) <= maxClasses {
				break
			}
			q *= 2
		}
		cur = sortedJoint(next)
	}
	return cur
}

func addJoint(m map[[2]int64]jointClass, q, lo, li, cnt float64) {
	k := [2]int64{int64(math.Round(lo / q)), int64(math.Round(li / q))}
	c, ok := m[k]
	if !ok {
		m[k] = jointClass{lo, li, cnt}
		return
	}
	tot := c.count + cnt
	c.logOut = (c.logOut*c.count + lo*cnt) / tot
	c.logIn = (c.logIn*c.count + li*cnt) / tot
	c.count = tot
	m[k] = c
}

func sortedJoint(m map[[2]int64]jointClass) []jointClass {
	keys := make([][2]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]jointClass, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// marginalize projects the joint classes onto each axis, re-coalescing
// identical representatives.
func marginalize(joint []jointClass) (out, in []probClass) {
	o := make(map[float64]float64, len(joint))
	i := make(map[float64]float64, len(joint))
	for _, c := range joint {
		o[c.logOut] += c.count
		i[c.logIn] += c.count
	}
	return sortedClasses(o), sortedClasses(i)
}

func sortedClasses(m map[float64]float64) []probClass {
	out := make([]probClass, 0, len(m))
	for lp, cnt := range m {
		out = append(out, probClass{lp, cnt})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].logP < out[b].logP })
	return out
}

// enumerateClasses groups vertices of a (small) explicit range by
// per-trial probability.
func enumerateClasses(n int64, prob func(int64) float64) []probClass {
	m := make(map[float64]float64)
	for v := int64(0); v < n; v++ {
		m[math.Log2(prob(v))] += 1
	}
	return sortedClasses(m)
}
