package validate

import "math"

// The AVS engine draws each scope's destinations *distinct* (the
// Section 4.2 rejection loop), so the in-degree of a vertex is not the
// naive column binomial: rejected duplicates — overwhelmingly repeats
// of popular destinations — force extra raw draws until the distinct
// quota is met, and those extra draws land disproportionately on
// unpopular destinations. The naive model overstates zero-in-degree
// counts badly (~4x at scale 10).
//
// dedupModel corrects this with a per-scope-class mean-field: a scope
// whose drawn size averages s̄ₒ = |E|·pₒ makes κₒ·s raw draws, the
// per-class inflation κₒ ≥ 1 fixed by the defining invariant of the
// rejection loop — the expected number of distinct destinations must
// equal the drawn size:
//
//	Σ_v count_v · (1 − (1 − pₒ·γ_v)^|E|) = s̄ₒ,  γ_v = 1−(1−p_v)^κₒ
//
// (the inner expression is E_s[(1−p_v)^{κₒ·s}] over the scope-size
// draw s ~ Binomial(|E|, pₒ), so scope-size variance is retained).
// Small scopes reject almost nothing (κₒ→1); head scopes that cover a
// big fraction of the destination range inflate hard. Scopes draw
// independently, so a destination's in-degree is Poisson-binomial
// across scope classes — evaluated as a normal with the exact zero
// term carried separately.
type dedupModel struct {
	classes []dedupClass
	trials  float64
}

// dedupClass is one coarse scope-size class: count scopes whose drawn
// size is Binomial(trials, po), redrawing with inflation kappa.
type dedupClass struct {
	count, po, kappa float64
}

// dedupCoarse caps the class lists used inside the correction; the
// correction is itself mean-field, so ~2⁸ classes per side lose
// nothing while keeping the cost trivial.
const dedupCoarse = 256

func newDedupModel(out, in []probClass, trials float64) *dedupModel {
	coarseIn := coarsen(in, dedupCoarse)
	dm := &dedupModel{trials: trials}
	for _, o := range coarsen(out, dedupCoarse) {
		po := math.Exp2(o.logP)
		dm.classes = append(dm.classes, dedupClass{
			count: o.count,
			po:    po,
			kappa: solveClassKappa(po, trials, coarseIn),
		})
	}
	return dm
}

// classHit is q̄ₒ(v): the probability that one class-o scope contains
// destination v, at inflation kappa.
func classHit(po, trials, kappa, logPv float64) float64 {
	gamma := -math.Expm1(kappa * math.Log1p(-math.Exp2(logPv)))
	return -math.Expm1(trials * math.Log1p(-po*gamma))
}

// classDistinct is the expected number of distinct destinations in one
// class-o scope at inflation kappa.
func classDistinct(po, trials, kappa float64, in []probClass) float64 {
	var s float64
	for _, c := range in {
		s += c.count * classHit(po, trials, kappa, c.logP)
	}
	return s
}

// solveClassKappa bisects the distinct-count invariant. The inflation
// is capped at the generator's own attempt budget — the rejection loop
// makes at most 64·size+1024 raw draws (avs.go) — so head classes
// whose quota is unreachable saturate exactly where the generator
// gives up, instead of at a fictitious every-destination-hit limit.
func solveClassKappa(po, trials float64, in []probClass) float64 {
	target := trials * po
	kappaMax := 64 + 1024/math.Max(target, 1)
	if classDistinct(po, trials, 1, in) >= target {
		return 1
	}
	if classDistinct(po, trials, kappaMax, in) < target {
		return kappaMax
	}
	lo, hi := 1.0, kappaMax
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if classDistinct(po, trials, mid, in) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// moments returns the in-degree mean, standard deviation and exact
// zero probability of a destination with log2 per-draw probability
// logPv.
func (dm *dedupModel) moments(logPv float64) (mu, sigma, p0 float64) {
	var varsum, logP0 float64
	for _, o := range dm.classes {
		q := classHit(o.po, dm.trials, o.kappa, logPv)
		mu += o.count * q
		varsum += o.count * q * (1 - q)
		logP0 += o.count * math.Log1p(-q)
	}
	return mu, math.Sqrt(varsum), math.Exp(logP0)
}

// evals maps the in-axis probability classes through the correction.
func (dm *dedupModel) evals(in []probClass) []classEval {
	ces := make([]classEval, len(in))
	for i, c := range in {
		mu, sigma, p0 := dm.moments(c.logP)
		ces[i] = classEval{count: c.count, mu: mu, sigma: sigma, p0: p0}
	}
	return ces
}

// coarsen re-buckets probability classes onto a coarser log2 grid of
// at most n representatives, mass-weighting each representative.
func coarsen(classes []probClass, n int) []probClass {
	if len(classes) <= n {
		return classes
	}
	minL, maxL := classes[0].logP, classes[0].logP
	for _, c := range classes {
		minL = math.Min(minL, c.logP)
		maxL = math.Max(maxL, c.logP)
	}
	q := (maxL - minL) / float64(n-1)
	if q <= 0 {
		return classes
	}
	merged := make([]probClass, n)
	for _, c := range classes {
		k := int(math.Round((c.logP - minL) / q))
		merged[k].logP += c.logP * c.count // weighted sum; divided out below
		merged[k].count += c.count
	}
	out := make([]probClass, 0, n)
	for _, b := range merged {
		if b.count > 0 {
			out = append(out, probClass{logP: b.logP / b.count, count: b.count})
		}
	}
	return out
}
