package validate

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/erv"
)

// Plain SKG must coalesce exactly into the L+1 popcount classes of
// Seshadhri et al., with binomial-coefficient populations.
func TestSKGPopcountClasses(t *testing.T) {
	const scale = 8
	cfg := core.DefaultConfig(scale)
	cfg.MasterSeed = 7
	m, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Label != "skg" {
		t.Fatalf("label = %q, want skg", m.Label)
	}
	if len(m.out) != scale+1 {
		t.Fatalf("out classes = %d, want %d", len(m.out), scale+1)
	}
	var vertices, mass float64
	for k, c := range m.out {
		want := float64(binom(scale, k))
		if c.count != want {
			t.Errorf("class %d: count %v, want C(%d,%d) = %v", k, c.count, scale, k, want)
		}
		vertices += c.count
		mass += c.count * math.Exp2(c.logP)
	}
	if vertices != float64(int64(1)<<scale) {
		t.Errorf("class counts sum to %v, want %d", vertices, int64(1)<<scale)
	}
	// Row masses of a stochastic seed sum to 1, so the per-trial hit
	// probability over all vertices must too.
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("total per-trial mass = %v, want 1", mass)
	}
	if got := m.ExpectedEdges(); math.Abs(got-float64(m.Trials)) > 1e-6*float64(m.Trials) {
		t.Errorf("ExpectedEdges = %v, want ~%d", got, m.Trials)
	}
}

func binom(n, k int) int64 {
	r := int64(1)
	for i := 0; i < k; i++ {
		r = r * int64(n-i) / int64(i+1)
	}
	return r
}

// NSKG classes differ per bit pattern but must preserve the vertex
// count and unit per-trial mass through the adaptive coalescing.
func TestNSKGClassMassConserved(t *testing.T) {
	cfg := core.DefaultConfig(12)
	cfg.NoiseParam = 0.1
	cfg.MasterSeed = 7
	m, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Label != "nskg" {
		t.Fatalf("label = %q, want nskg", m.Label)
	}
	if len(m.out) <= cfg.Scale+1 {
		t.Fatalf("nskg coalesced to %d classes; expected more than the %d popcount classes", len(m.out), cfg.Scale+1)
	}
	var vertices, mass float64
	for _, c := range m.out {
		vertices += c.count
		mass += c.count * math.Exp2(c.logP)
	}
	if math.Abs(vertices-float64(cfg.NumVertices())) > 1e-6 {
		t.Errorf("class counts sum to %v, want %d", vertices, cfg.NumVertices())
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("total per-trial mass = %v, want 1", mass)
	}
}

func TestExpectedCCDFShape(t *testing.T) {
	cfg := core.DefaultConfig(10)
	m, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ExpectedOutCCDF(0); got != float64(cfg.NumVertices()) {
		t.Errorf("CCDF(0) = %v, want |V| = %d", got, cfg.NumVertices())
	}
	prev := math.Inf(1)
	for d := int64(1); d <= 512; d++ {
		cur := m.ExpectedOutCCDF(d)
		if cur > prev+1e-9 {
			t.Fatalf("CCDF not monotone at d=%d: %v > %v", d, cur, prev)
		}
		if cur < 0 {
			t.Fatalf("CCDF(%d) = %v < 0", d, cur)
		}
		prev = cur
	}
	// The expected histogram's carried rounding must preserve the
	// domain total to within the final half-count.
	h := m.ExpectedOutHist()
	if diff := h.Vertices() - cfg.NumVertices(); diff < -1 || diff > 1 {
		t.Errorf("ExpectedOutHist vertices = %d, want %d ± 1", h.Vertices(), cfg.NumVertices())
	}
}

// The dedup correction must collapse to the naive binomial when scopes
// are tiny (kappa → 1) and never inflate past the generator's attempt
// budget.
func TestDedupKappaBounds(t *testing.T) {
	in := []probClass{{logP: -10, count: 1024}}
	if k := solveClassKappa(math.Exp2(-20), 1<<20, in); math.Abs(k-1) > 0.05 {
		t.Errorf("tiny-scope kappa = %v, want ~1", k)
	}
	// A head scope asked for more distinct destinations than the range
	// plausibly yields must cap at the 64 + 1024/size attempt budget.
	trials := float64(1 << 20)
	po := 0.25 // target size ≈ 262144 from only 1024 destinations
	target := trials * po
	budget := 64 + 1024/target
	if k := solveClassKappa(po, trials, in); k > budget+1e-9 {
		t.Errorf("saturated kappa = %v, exceeds attempt-budget cap %v", k, budget)
	}
}

func TestCoarsenPreservesMass(t *testing.T) {
	var classes []probClass
	var total float64
	for i := 0; i < 10000; i++ {
		c := probClass{logP: -1 - float64(i)/300, count: float64(1 + i%17)}
		classes = append(classes, c)
		total += c.count
	}
	out := coarsen(classes, dedupCoarse)
	if len(out) > dedupCoarse {
		t.Fatalf("coarsen returned %d classes, cap %d", len(out), dedupCoarse)
	}
	var got float64
	for _, c := range out {
		got += c.count
	}
	if math.Abs(got-total) > 1e-6 {
		t.Errorf("coarsen mass %v, want %v", got, total)
	}
}

func TestFromERVUniformBox(t *testing.T) {
	cfg := erv.Config{
		NumSrc:   1000,
		NumDst:   500,
		NumEdges: 10000,
		OutDist:  erv.Dist{Kind: erv.Uniform, Min: 5, Max: 15},
		InDist:   erv.Dist{Kind: erv.Gaussian},
	}
	m, err := FromERV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1000 * 10.0; m.ExpectedEdges() != want {
		t.Errorf("uniform ExpectedEdges = %v, want %v", m.ExpectedEdges(), want)
	}
	if z := m.ExpectedZeroOut(); z != 0 {
		t.Errorf("uniform [5,15] ExpectedZeroOut = %v, want 0", z)
	}
	if got := m.ExpectedOutCCDF(5); got != 1000 {
		t.Errorf("CCDF(min) = %v, want all 1000 sources", got)
	}
	if got := m.ExpectedOutCCDF(16); got != 0 {
		t.Errorf("CCDF(max+1) = %v, want 0", got)
	}
	// Disjoint axis domains: no isolated-vertex closed form.
	if !math.IsNaN(m.ExpectedIsolated()) {
		t.Errorf("ERV ExpectedIsolated = %v, want NaN", m.ExpectedIsolated())
	}
}

func TestFromERVRejectsEmpirical(t *testing.T) {
	cfg := erv.Config{
		NumSrc:   100,
		NumDst:   100,
		NumEdges: 1000,
		OutDist:  erv.Dist{Kind: erv.Empirical, Weights: []float64{1, 2, 3}},
		InDist:   erv.Dist{Kind: erv.Gaussian},
	}
	if _, err := FromERV(cfg); err == nil {
		t.Fatal("FromERV accepted an empirical distribution")
	}
}
