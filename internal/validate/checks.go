package validate

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// chi2MinExpect is the minimum expected cell count for the chi-square
// statistic; sparser octave cells are sampling noise.
const chi2MinExpect = 8

// Evaluate compares an accumulator's observations against a model's
// closed forms and returns the full verdict. tel may be nil; when set,
// the validate.* counters are bumped. label names the run in the
// report ("out/" or "nskg-smoke" — anything helpful).
func Evaluate(m *Model, acc *Accumulator, th Thresholds, tel *telemetry.Registry, label string) *Report {
	outFull, inFull, outDegrees, touched, edges := acc.snapshot()

	// Fold the silent vertices of each axis domain into the histograms:
	// the accumulator only ever sees active vertices (by design — see
	// Accumulator), the model knows the domain.
	obsOut := withDomainZeros(outFull, m.ScopeVertices)
	obsIn := withDomainZeros(inFull, m.DestVertices)

	r := &Report{
		Schema: ReportSchema,
		Label:  label,
		Params: Params{
			Model:    m.Label,
			Vertices: m.ScopeVertices,
			Edges:    m.Trials,
		},
	}

	add := func(name string, observed, expected, distance float64, t Threshold, detail string) Status {
		s := t.status(distance)
		r.Checks = append(r.Checks, Check{
			Name:     name,
			Status:   s,
			Observed: round6(observed),
			Expected: round6(expected),
			Distance: round6(distance),
			WarnAt:   t.Warn,
			FailAt:   t.Fail,
			Detail:   detail,
		})
		r.Verdict = worse(r.Verdict, s)
		return s
	}
	r.Verdict = StatusPass

	// Edge total: row masses sum to 1, so this isolates sampler/sink
	// bugs (lost scopes, double writes) from distribution-shape drift.
	expEdges := m.ExpectedEdges()
	add("edges_total", float64(edges), expEdges,
		relDiff(float64(edges), expEdges), th.Edges, "")

	// Degree distribution shape, both axes, as KS distance over the
	// full per-vertex CDF (zeros included).
	expOutHist := m.ExpectedOutHist()
	add("out_degree_ks", float64(obsOut.MaxDegree()), float64(expOutHist.MaxDegree()),
		stats.KS(obsOut, expOutHist), th.OutKS,
		"distance is KS over vertices; observed/expected show max degree")
	expInHist := m.ExpectedInHist()
	add("in_degree_ks", float64(obsIn.MaxDegree()), float64(expInHist.MaxDegree()),
		stats.KS(obsIn, expInHist), th.InKS,
		"distance is KS over vertices; observed/expected show max degree")

	// Chi-square over octave cells of the out-degree histogram: a
	// localized complement to KS (which dilutes single-octave bulges).
	obsCells, expCells, cells := octaveCompare(obsOut, m.outE)
	if cells > 0 {
		chi2 := stats.ChiSquare(obsCells, expCells, chi2MinExpect) / float64(cells)
		add("out_degree_chi2", chi2, 1, chi2, th.OutChi2,
			fmt.Sprintf("reduced chi-square over %d octave cells", cells))
	}

	// Zero-degree and isolated-vertex counts (the headline Seshadhri et
	// al. closed forms).
	expZeroOut := m.ExpectedZeroOut()
	obsZeroOut := float64(obsOut[0])
	add("zero_out_vertices", obsZeroOut, expZeroOut,
		countDiff(obsZeroOut, expZeroOut), th.ZeroOut, "")
	expZeroIn := m.ExpectedZeroIn()
	obsZeroIn := float64(obsIn[0])
	add("zero_in_vertices", obsZeroIn, expZeroIn,
		countDiff(obsZeroIn, expZeroIn), th.ZeroIn, "")

	expIso := m.ExpectedIsolated()
	var obsIso int64
	if !math.IsNaN(expIso) {
		obsIso = m.ScopeVertices - touched
		if obsIso < 0 {
			obsIso = 0
		}
		add("isolated_vertices", float64(obsIso), expIso,
			countDiff(float64(obsIso), expIso), th.Isolated, "")
	}

	// Zipf rank-frequency slope: the observed fit against the same fit
	// run on the expected curve. The asymptotic Lemma 6 slope is noted
	// for reference; a whole-curve fit at finite scale does not reach
	// it, so comparing against it directly would misfire.
	obsZipf, _ := stats.ZipfSlope(outDegrees)
	expZipf := m.ExpectedZipfSlope()
	if !math.IsNaN(expZipf) && !math.IsNaN(obsZipf) {
		detail := ""
		if !math.IsNaN(m.OutZipfSlope) {
			detail = fmt.Sprintf("asymptotic Lemma 6 slope %.4f", m.OutZipfSlope)
		}
		add("out_zipf_slope", obsZipf, expZipf,
			math.Abs(obsZipf-expZipf), th.ZipfSlope, detail)
	}

	// Oscillation: the Figure-9 gate. The check is boolean agreement —
	// a model predicted to ripple must ripple, a model predicted clean
	// must come out clean.
	obsOsc := stats.Oscillation(obsOut)
	predOsc := m.PredictedOutOscillation()
	r.OscillationDetected = obsOsc >= th.OscillationDetect
	r.OscillationPredicted = predOsc >= th.OscillationDetect
	oscStatus := StatusPass
	if r.OscillationDetected != r.OscillationPredicted {
		oscStatus = StatusFail
	}
	r.Checks = append(r.Checks, Check{
		Name:     "oscillation",
		Status:   oscStatus,
		Observed: round6(obsOsc),
		Expected: round6(predOsc),
		Distance: round6(math.Abs(obsOsc - predOsc)),
		WarnAt:   th.OscillationDetect,
		FailAt:   th.OscillationDetect,
		Detail: fmt.Sprintf("detected=%v predicted=%v (score threshold %g)",
			r.OscillationDetected, r.OscillationPredicted, th.OscillationDetect),
	})
	r.Verdict = worse(r.Verdict, oscStatus)

	r.Observed = Observed{
		Edges:          edges,
		ActiveOut:      outFull.Active(),
		ActiveIn:       inFull.Active(),
		ZeroOut:        int64(obsZeroOut),
		ZeroIn:         int64(obsZeroIn),
		MaxOutDegree:   obsOut.MaxDegree(),
		MaxInDegree:    obsIn.MaxDegree(),
		OutOscillation: round6(obsOsc),
		OutZipfSlope:   optF(obsZipf),
	}
	if !math.IsNaN(expIso) {
		r.Observed.Isolated = &obsIso
	}
	r.Expected = Expected{
		Edges:          round6(expEdges),
		ZeroOut:        round6(expZeroOut),
		ZeroIn:         round6(expZeroIn),
		Isolated:       optF(expIso),
		OutOscillation: round6(predOsc),
		OutZipfSlope:   optF(expZipf),
	}

	record(tel, r)
	return r
}

// record bumps the validate.* counters for one evaluated report.
func record(tel *telemetry.Registry, r *Report) {
	if tel == nil {
		return
	}
	tel.Counter(MetricRuns).Inc()
	tel.Counter(MetricEdges).Add(r.Observed.Edges)
	tel.Counter(MetricChecks).Add(int64(len(r.Checks)))
	for _, c := range r.Checks {
		switch c.Status {
		case StatusFail:
			tel.Counter(MetricChecksFail).Inc()
		case StatusWarn:
			tel.Counter(MetricChecksWarn).Inc()
		default:
			tel.Counter(MetricChecksPass).Inc()
		}
	}
	if r.Failed() {
		tel.Counter(MetricReportsFailed).Inc()
	}
	if r.OscillationDetected {
		tel.Counter(MetricOscDetected).Inc()
	}
}

// withDomainZeros copies h and books the domain's silent vertices
// under degree 0.
func withDomainZeros(h stats.Hist, domain int64) stats.Hist {
	out := make(stats.Hist, len(h)+1)
	for d, c := range h {
		out[d] = c
	}
	if missing := domain - h.Vertices(); missing > 0 {
		out[0] += missing
	}
	return out
}

// relDiff is |a−b| / |b| (0 when both are 0).
func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// countDiff measures a count's deviation beyond sampling noise: the
// absolute deviation minus a 3·√exp allowance, relative to the
// expected population with a floored denominator. √exp bounds the
// standard deviation of a sum of independent zero-indicators
// (Σ p(1−p) ≤ Σ p), so a 2σ draw against a ~50-vertex expectation
// scores 0 — agreement, not divergence — while a wrong-parameter graph
// (counts off by 2×) still scores far past any fail threshold.
func countDiff(obs, exp float64) float64 {
	dev := math.Abs(obs-exp) - 3*math.Sqrt(math.Max(exp, 0))
	if dev <= 0 {
		return 0
	}
	return dev / math.Max(exp, 32)
}

// octaveCompare buckets the observed out-degree histogram into the
// model's octave cells and returns (observed, expected, comparable
// cell count). Observed degrees beyond the expected grid land in
// cells with ~zero expectation, which the chi-square's minExpect
// filter then skips — the KS check covers such tails.
func octaveCompare(obs stats.Hist, e *axisEval) (obsCells, expCells []float64, cells int) {
	expCells = e.octaveCells()
	kMax := len(expCells) - 1
	for _, p := range obs.Points() {
		if k := int(math.Floor(math.Log2(float64(p.Degree)))); k > kMax {
			kMax = k
		}
	}
	obsCells = make([]float64, kMax+1)
	for _, p := range obs.Points() {
		obsCells[int(math.Floor(math.Log2(float64(p.Degree))))] += float64(p.Count)
	}
	for len(expCells) < len(obsCells) {
		expCells = append(expCells, 0)
	}
	for _, exp := range expCells {
		if exp >= chi2MinExpect {
			cells++
		}
	}
	return obsCells, expCells, cells
}
