package validate

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/stats"
)

// Accumulator collects the observed side of a validation in one pass:
// degree histograms and the edge total, with memory proportional to
// the number of *active* vertices, never to edges. It is safe for
// concurrent use, so one accumulator can ride along a multi-worker
// generation via CollectingSinks.
//
// Empty scopes are deliberately not recorded: ADJ6 writers omit them,
// TSV has no scope notion at all, and CSR6 materializes every vertex —
// recording them per format would make the observed counts an artifact
// of the encoding. Zero-degree populations are instead derived from
// the model's vertex-range size at Evaluate time, which is what makes
// the three encodings of one graph validate byte-identically.
type Accumulator struct {
	mu      sync.Mutex
	counter *stats.DegreeCounter
	edges   int64
	files   int
	hook    func(src, dst int64)
}

// SetEdgeHook installs fn to observe every edge the accumulator
// records, scope-expanded to (src, dst) pairs. The hook runs under the
// accumulator's lock (so it may be a plain closure over plain state)
// and must be installed before consumption starts. Community
// validation uses it to tally edges per block in the same single pass.
func (a *Accumulator) SetEdgeHook(fn func(src, dst int64)) {
	a.mu.Lock()
	a.hook = fn
	a.mu.Unlock()
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{counter: stats.NewDegreeCounter()}
}

// AddScope records one scope (src with its destination list).
func (a *Accumulator) AddScope(src int64, dsts []int64) {
	if len(dsts) == 0 {
		return
	}
	a.mu.Lock()
	a.counter.AddScope(src, dsts)
	a.edges += int64(len(dsts))
	if a.hook != nil {
		for _, dst := range dsts {
			a.hook(src, dst)
		}
	}
	a.mu.Unlock()
}

// AddEdge records one edge.
func (a *Accumulator) AddEdge(src, dst int64) {
	a.mu.Lock()
	a.counter.AddEdge(src, dst)
	a.edges++
	if a.hook != nil {
		a.hook(src, dst)
	}
	a.mu.Unlock()
}

// Edges returns the number of edges recorded so far.
func (a *Accumulator) Edges() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.edges
}

// Files returns how many part files were consumed.
func (a *Accumulator) Files() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.files
}

// snapshot extracts everything Evaluate needs under one lock.
func (a *Accumulator) snapshot() (out, in stats.Hist, outDegrees []int64, touched, edges int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counter.OutHistFull(), a.counter.InHistFull(),
		a.counter.OutDegrees(), a.counter.Touched(), a.edges
}

// FormatForPath infers the part-file format from the file extension.
func FormatForPath(path string) (gformat.Format, error) {
	ext := strings.TrimPrefix(filepath.Ext(path), ".")
	f, err := gformat.ParseFormat(ext)
	if err != nil {
		return f, fmt.Errorf("validate: cannot infer format of %s: %w", path, err)
	}
	return f, nil
}

// ConsumeFile streams one part file into the accumulator.
func (a *Accumulator) ConsumeFile(path string, f gformat.Format) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	switch f {
	case gformat.TSV:
		r := gformat.NewTSVReader(file)
		for {
			e, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			a.AddEdge(e.Src, e.Dst)
		}
	case gformat.ADJ6:
		r := gformat.NewADJ6Reader(file)
		for {
			src, dsts, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			a.AddScope(src, dsts)
		}
	case gformat.CSR6:
		g, err := gformat.ReadCSR6(file)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for v := int64(0); v < g.NumVertices; v++ {
			a.AddScope(v, g.Adj(v))
		}
	default:
		return fmt.Errorf("validate: unsupported format %v", f)
	}
	a.mu.Lock()
	a.files++
	a.mu.Unlock()
	return nil
}

// ConsumeDir streams every part-* file in dir, inferring each file's
// format from its extension. It errors if the directory holds no part
// files.
func (a *Accumulator) ConsumeDir(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "part-*"))
	if err != nil {
		return err
	}
	sort.Strings(matches)
	n := 0
	for _, path := range matches {
		if strings.HasSuffix(path, ".tmp") {
			continue
		}
		f, err := FormatForPath(path)
		if err != nil {
			return err
		}
		if err := a.ConsumeFile(path, f); err != nil {
			return err
		}
		n++
	}
	if n == 0 {
		return fmt.Errorf("validate: no part files in %s", dir)
	}
	return nil
}

// CollectingSinks wraps a sink factory so every scope is recorded into
// the accumulator on its way to the inner sinks — validation riding
// along generation instead of re-reading the output. Compose freely
// with core.ObservedSinks and core.DiscardSinks.
func CollectingSinks(inner core.SinkFactory, a *Accumulator) core.SinkFactory {
	return func(worker int, r partition.Range) (gformat.Writer, error) {
		w, err := inner(worker, r)
		if err != nil {
			return nil, err
		}
		return &collectingWriter{Writer: w, acc: a}, nil
	}
}

type collectingWriter struct {
	gformat.Writer
	acc *Accumulator
}

func (c *collectingWriter) WriteScope(src int64, dsts []int64) error {
	c.acc.AddScope(src, dsts)
	return c.Writer.WriteScope(src, dsts)
}
