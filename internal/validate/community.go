package validate

import (
	"fmt"
	"sync"

	"repro/internal/community"
	"repro/internal/telemetry"
)

// maxBlockChecks bounds how many per-block checks a community report
// lists individually; layouts with more blocks are still fully covered
// by the aggregate intra/inter/stray checks, the report just doesn't
// enumerate hundreds of block lines.
const maxBlockChecks = 64

// CommunityTally accumulates the per-block edge counts of a community
// layout during a validation pass. Install Observe as the accumulator's
// edge hook (SetEdgeHook) so one consumption pass feeds both the degree
// machinery and the block densities.
type CommunityTally struct {
	layout *community.Layout
	index  map[[2]int]int // (srcComm, dstComm) → block index

	mu     sync.Mutex
	edges  []int64 // per block index
	stray  int64   // edges outside every planned block
	sample string  // first stray edge, for the report detail
}

// NewCommunityTally returns an empty tally for the layout.
func NewCommunityTally(lay *community.Layout) *CommunityTally {
	t := &CommunityTally{
		layout: lay,
		index:  make(map[[2]int]int, lay.NumBlocks()),
		edges:  make([]int64, lay.NumBlocks()),
	}
	for i, b := range lay.Blocks() {
		t.index[[2]int{b.SrcComm, b.DstComm}] = i
	}
	return t
}

// Observe records one edge. Edges landing outside the vertex space or
// in a community pair with no planned block count as stray — the
// generator never emits them, so any stray edge is corruption or a
// layout mismatch.
func (t *CommunityTally) Observe(src, dst int64) {
	i, j := t.layout.CommunityOf(src), t.layout.CommunityOf(dst)
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || j < 0 {
		t.strayLocked(src, dst)
		return
	}
	bi, ok := t.index[[2]int{i, j}]
	if !ok {
		t.strayLocked(src, dst)
		return
	}
	t.edges[bi]++
}

func (t *CommunityTally) strayLocked(src, dst int64) {
	if t.stray == 0 {
		t.sample = fmt.Sprintf("first stray edge (%d, %d)", src, dst)
	}
	t.stray++
}

// snapshot copies the tally under its lock.
func (t *CommunityTally) snapshot() (edges []int64, stray int64, sample string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	edges = make([]int64, len(t.edges))
	copy(edges, t.edges)
	return edges, t.stray, t.sample
}

// ParamsFromCommunity condenses a community layout into report params.
func ParamsFromCommunity(lay *community.Layout) Params {
	cfg := lay.Config()
	return Params{
		Model:      "community",
		Vertices:   lay.NumVertices(),
		Edges:      lay.TotalEdges(),
		Noise:      cfg.Noise,
		MasterSeed: cfg.MasterSeed,
	}
}

// EvaluateCommunity compares an accumulated graph against a community
// layout's plan: the whole-graph edge total, the intra- and
// inter-community totals, each block's observed edge count against its
// budget (individually up to maxBlockChecks blocks), and a stray-edge
// check that fails on any edge outside the planned blocks — which is
// what catches a wrong mixing matrix or a mislabeled partition. Block
// distances are countDiff (deviation beyond 3·√budget, relative to the
// budget), so sampling noise in small blocks doesn't trip the gate.
func EvaluateCommunity(lay *community.Layout, acc *Accumulator, tally *CommunityTally, th Thresholds, tel *telemetry.Registry, label string) *Report {
	blockEdges, stray, sample := tally.snapshot()
	r := &Report{
		Schema: ReportSchema,
		Label:  label,
		Params: ParamsFromCommunity(lay),
	}
	r.Observed.Edges = acc.Edges()
	r.Expected.Edges = float64(lay.TotalEdges())

	add := func(name string, observed, expected float64, t Threshold, dist float64, detail string) {
		r.Checks = append(r.Checks, Check{
			Name:     name,
			Status:   t.status(dist),
			Observed: round6(observed),
			Expected: round6(expected),
			Distance: round6(dist),
			WarnAt:   t.Warn,
			FailAt:   t.Fail,
			Detail:   detail,
		})
	}

	obs, exp := float64(r.Observed.Edges), r.Expected.Edges
	add("edges", obs, exp, th.Edges, relDiff(obs, exp), "")

	// Any stray edge fails: the budgeted checks below only see edges
	// that landed in planned blocks, so corruption that teleports edges
	// out of their rectangles must be caught here.
	strayTh := Threshold{Warn: 0.5, Fail: 0.5}
	add("community_stray", float64(stray), 0, strayTh, float64(stray), sample)

	var intraObs, intraExp, interObs, interExp float64
	for i, b := range lay.Blocks() {
		if b.Intra {
			intraObs += float64(blockEdges[i])
			intraExp += float64(b.Edges)
		} else {
			interObs += float64(blockEdges[i])
			interExp += float64(b.Edges)
		}
	}
	if intraExp > 0 || intraObs > 0 {
		add("intra_edges", intraObs, intraExp, th.CommunityBlock, countDiff(intraObs, intraExp), "")
	}
	if interExp > 0 || interObs > 0 {
		add("inter_edges", interObs, interExp, th.CommunityBlock, countDiff(interObs, interExp), "")
	}

	if lay.NumBlocks() <= maxBlockChecks {
		for i, b := range lay.Blocks() {
			bo, be := float64(blockEdges[i]), float64(b.Edges)
			detail := fmt.Sprintf("src [%d, %d) × dst [%d, %d)", b.SrcLo, b.SrcHi, b.DstLo, b.DstHi)
			add(fmt.Sprintf("block(%d,%d)", b.SrcComm, b.DstComm), bo, be, th.CommunityBlock, countDiff(bo, be), detail)
		}
	}

	r.Verdict = StatusPass
	for _, c := range r.Checks {
		r.Verdict = worse(r.Verdict, c.Status)
	}
	record(tel, r)
	return r
}
