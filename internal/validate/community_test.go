package validate

import (
	"strings"
	"testing"

	"repro/internal/community"
	"repro/internal/gformat"
)

func communityLayout(t *testing.T, cfg community.Config) *community.Layout {
	t.Helper()
	lay, err := community.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

// consumeCommunity generates the layout and streams the output through
// an accumulator with the block tally hooked in, the way the CLI does.
func consumeCommunity(t *testing.T, lay *community.Layout) (*Accumulator, *CommunityTally) {
	t.Helper()
	dir := t.TempDir()
	if _, err := lay.GenerateToDir(dir, gformat.TSV, community.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator()
	tally := NewCommunityTally(lay)
	acc.SetEdgeHook(tally.Observe)
	if err := acc.ConsumeDir(dir); err != nil {
		t.Fatal(err)
	}
	return acc, tally
}

// testCommunityConfig keeps blocks sparse enough that in-scope dedup
// losses stay far inside the edge thresholds.
func testCommunityConfig() community.Config {
	return community.Config{
		Sizes:      []int64{128, 129},
		Mixing:     [][]float64{{4, 1}, {1, 2}},
		Edges:      1600,
		MasterSeed: 5,
	}
}

func findCheck(r *Report, name string) *Check {
	for i := range r.Checks {
		if r.Checks[i].Name == name {
			return &r.Checks[i]
		}
	}
	return nil
}

func TestEvaluateCommunityPassesOnRealOutput(t *testing.T) {
	lay := communityLayout(t, testCommunityConfig())
	acc, tally := consumeCommunity(t, lay)
	rep := EvaluateCommunity(lay, acc, tally, DefaultThresholds(), nil, "community-pass")
	if rep.Failed() {
		t.Fatalf("real output failed its own layout:\n%s", rep.Summary())
	}
	for _, name := range []string{"edges", "community_stray", "intra_edges", "inter_edges", "block(0,0)", "block(1,1)"} {
		c := findCheck(rep, name)
		if c == nil {
			t.Fatalf("report lacks the %s check:\n%s", name, rep.Summary())
		}
		if c.Status == StatusFail {
			t.Fatalf("check %s failed:\n%s", name, rep.Summary())
		}
	}
	if rep.Params.Model != "community" || rep.Params.Edges != lay.TotalEdges() {
		t.Fatalf("params %+v", rep.Params)
	}
}

// TestEvaluateCommunityRejectsWrongMixing: output generated under one
// mixing matrix, validated against a layout whose weights are
// transposed, must fail on block densities — this is the gate that
// catches a mislabeled or tampered spec.
func TestEvaluateCommunityRejectsWrongMixing(t *testing.T) {
	truth := communityLayout(t, testCommunityConfig())
	dir := t.TempDir()
	if _, err := truth.GenerateToDir(dir, gformat.TSV, community.RunOptions{}); err != nil {
		t.Fatal(err)
	}

	wrongCfg := testCommunityConfig()
	wrongCfg.Mixing = [][]float64{{1, 4}, {2, 1}}
	wrong := communityLayout(t, wrongCfg)
	acc := NewAccumulator()
	tally := NewCommunityTally(wrong)
	acc.SetEdgeHook(tally.Observe)
	if err := acc.ConsumeDir(dir); err != nil {
		t.Fatal(err)
	}
	rep := EvaluateCommunity(wrong, acc, tally, DefaultThresholds(), nil, "wrong-mixing")
	if !rep.Failed() {
		t.Fatalf("wrong mixing matrix passed validation:\n%s", rep.Summary())
	}
	failedBlock := false
	for _, c := range rep.Checks {
		if strings.HasPrefix(c.Name, "block(") && c.Status == StatusFail {
			failedBlock = true
		}
	}
	if !failedBlock {
		t.Fatalf("no per-block check failed:\n%s", rep.Summary())
	}
}

// TestEvaluateCommunityFlagsStrayEdges: any edge outside the planned
// blocks fails the run outright, however good the totals look.
func TestEvaluateCommunityFlagsStrayEdges(t *testing.T) {
	cfg := testCommunityConfig()
	cfg.Mixing = [][]float64{{4, 1}, {0, 2}} // block (1,0) unplanned
	lay := communityLayout(t, cfg)
	acc := NewAccumulator()
	tally := NewCommunityTally(lay)
	acc.SetEdgeHook(tally.Observe)
	acc.AddEdge(0, 1)       // planned: (0,0)
	acc.AddEdge(200, 0)     // community 1 → community 0: unplanned
	acc.AddEdge(999_999, 1) // outside the vertex space entirely

	rep := EvaluateCommunity(lay, acc, tally, DefaultThresholds(), nil, "stray")
	c := findCheck(rep, "community_stray")
	if c == nil || c.Status != StatusFail {
		t.Fatalf("stray edges did not fail the stray check:\n%s", rep.Summary())
	}
	if c.Observed != 2 {
		t.Fatalf("stray count %v, want 2", c.Observed)
	}
	if !strings.Contains(c.Detail, "(200, 0)") {
		t.Fatalf("stray detail %q does not name the first offender", c.Detail)
	}
	if !rep.Failed() {
		t.Fatal("report with stray edges did not fail overall")
	}
}

// TestCommunityTallyMapsBlocks: the tally lands each edge in the block
// owning its (src community, dst community) pair.
func TestCommunityTallyMapsBlocks(t *testing.T) {
	lay := communityLayout(t, testCommunityConfig())
	tally := NewCommunityTally(lay)
	tally.Observe(0, 130)   // (0,1)
	tally.Observe(0, 130)   // (0,1) again
	tally.Observe(140, 141) // (1,1)
	edges, stray, _ := tally.snapshot()
	if stray != 0 {
		t.Fatalf("stray = %d, want 0", stray)
	}
	var got [2]int64
	for i, b := range lay.Blocks() {
		if b.SrcComm == 0 && b.DstComm == 1 {
			got[0] = edges[i]
		}
		if b.SrcComm == 1 && b.DstComm == 1 {
			got[1] = edges[i]
		}
	}
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("block tallies %v, want [2 1]", got)
	}
}
