package validate

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gformat"
)

// The satellite property: TSV, ADJ6 and CSR6 encodings of the same
// generated range must validate byte-identically. The encodings differ
// in exactly the ways that would break a naive accumulator — TSV has
// no scope structure, ADJ6 omits empty scopes, CSR6 materializes every
// vertex — so identical report JSON proves the observed counts are a
// property of the graph, not the serialization.
func TestFormatParity(t *testing.T) {
	cfg := core.DefaultConfig(10)
	cfg.MasterSeed = 11
	cfg.Workers = 3
	m, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reports [][]byte
	for _, f := range []gformat.Format{gformat.TSV, gformat.ADJ6, gformat.CSR6} {
		dir := t.TempDir()
		if _, err := core.Generate(cfg, core.FileSinks(dir, f, cfg.NumVertices())); err != nil {
			t.Fatalf("%v: generate: %v", f, err)
		}
		acc := NewAccumulator()
		if err := acc.ConsumeDir(dir); err != nil {
			t.Fatalf("%v: consume: %v", f, err)
		}
		if acc.Files() != cfg.Workers {
			t.Errorf("%v: consumed %d part files, want %d", f, acc.Files(), cfg.Workers)
		}
		r := Evaluate(m, acc, DefaultThresholds(), nil, "parity")
		j, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, j)
	}
	for i := 1; i < len(reports); i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Errorf("report %d differs from report 0:\n%s\n----\n%s", i, reports[i], reports[0])
		}
	}
}

// A live-collected run and a re-read of its files must agree too —
// CollectingSinks is just another encoding of the same scopes.
func TestCollectingSinksMatchesFileReplay(t *testing.T) {
	cfg := core.DefaultConfig(9)
	cfg.MasterSeed = 5
	cfg.Workers = 2
	m, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	live := NewAccumulator()
	if _, err := core.Generate(cfg, CollectingSinks(core.FileSinks(dir, gformat.ADJ6, cfg.NumVertices()), live)); err != nil {
		t.Fatal(err)
	}
	replay := NewAccumulator()
	if err := replay.ConsumeDir(dir); err != nil {
		t.Fatal(err)
	}
	jl, err := Evaluate(m, live, DefaultThresholds(), nil, "x").JSON()
	if err != nil {
		t.Fatal(err)
	}
	jr, err := Evaluate(m, replay, DefaultThresholds(), nil, "x").JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jl, jr) {
		t.Errorf("live and replayed reports differ:\n%s\n----\n%s", jl, jr)
	}
}

// Edge case: an accumulator that saw nothing. Every vertex is a domain
// zero, the edge total fails, and nothing panics or divides by zero.
func TestEvaluateEmptyGraph(t *testing.T) {
	cfg := core.DefaultConfig(6)
	m, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := Evaluate(m, NewAccumulator(), DefaultThresholds(), nil, "empty")
	if r.Observed.Edges != 0 {
		t.Errorf("observed edges = %d, want 0", r.Observed.Edges)
	}
	if r.Observed.ZeroOut != cfg.NumVertices() {
		t.Errorf("zero-out = %d, want the whole domain %d", r.Observed.ZeroOut, cfg.NumVertices())
	}
	if !r.Failed() {
		t.Errorf("empty graph verdict = %s, want fail", r.Verdict)
	}
	for _, c := range r.Checks {
		if math.IsNaN(c.Distance) {
			t.Errorf("check %s has NaN distance on the empty graph", c.Name)
		}
	}
}

// Edge case: a single vertex with a self-loop, the smallest non-empty
// graph every format can express.
func TestEvaluateSingleVertex(t *testing.T) {
	cfg := core.DefaultConfig(1)
	m, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator()
	acc.AddScope(0, []int64{0})
	r := Evaluate(m, acc, DefaultThresholds(), nil, "single")
	if r.Observed.Edges != 1 {
		t.Errorf("observed edges = %d, want 1", r.Observed.Edges)
	}
	if r.Observed.ZeroOut != 1 || r.Observed.ZeroIn != 1 {
		t.Errorf("zero-out/in = %d/%d, want 1/1 (vertex 1 silent in a 2-vertex domain)",
			r.Observed.ZeroOut, r.Observed.ZeroIn)
	}
	if r.Observed.MaxOutDegree != 1 || r.Observed.MaxInDegree != 1 {
		t.Errorf("max out/in degree = %d/%d, want 1/1", r.Observed.MaxOutDegree, r.Observed.MaxInDegree)
	}
}

// Empty scopes must not be recorded (the format-parity invariant), and
// directories without part files must error rather than validate an
// empty observation.
func TestAccumulatorInvariants(t *testing.T) {
	acc := NewAccumulator()
	acc.AddScope(3, nil)
	if acc.Edges() != 0 {
		t.Errorf("empty scope recorded %d edges", acc.Edges())
	}
	if err := acc.ConsumeDir(t.TempDir()); err == nil {
		t.Error("ConsumeDir accepted a directory with no part files")
	}
	if _, err := FormatForPath(filepath.Join("x", "part-00000.xyz")); err == nil {
		t.Error("FormatForPath accepted an unknown extension")
	}
}
