package validate

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/skg"
	"repro/internal/telemetry"
)

// smokeConfig is the deterministic acceptance configuration: scale 13,
// master seed 42. Calibration runs showed every check passing for NSKG
// noise 0.1 at this size, and the plain-SKG oscillation score (4.2
// observed, 4.7 predicted) comfortably past the detection threshold.
func smokeConfig(noise float64) core.Config {
	cfg := core.DefaultConfig(13)
	cfg.NoiseParam = noise
	cfg.MasterSeed = 42
	return cfg
}

func runEvaluate(t *testing.T, cfg core.Config, tel *telemetry.Registry, label string) *Report {
	t.Helper()
	m, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator()
	if _, err := core.Generate(cfg, CollectingSinks(core.DiscardSinks(0), acc)); err != nil {
		t.Fatal(err)
	}
	return Evaluate(m, acc, DefaultThresholds(), tel, label)
}

// The ISSUE acceptance criterion: a seeded NSKG run passes every check,
// and the identical run with noise disabled (plain SKG) triggers the
// Figure-9 oscillation detector — and is *predicted* to, so the
// oscillation agreement check passes on both.
func TestAcceptanceNSKGPassesSKGOscillates(t *testing.T) {
	tel := telemetry.NewRegistry()

	nskg := runEvaluate(t, smokeConfig(0.1), tel, "nskg-accept")
	if nskg.Verdict != StatusPass {
		t.Errorf("NSKG verdict = %s, want pass\n%s", nskg.Verdict, nskg.Summary())
	}
	for _, c := range nskg.Checks {
		if c.Status != StatusPass {
			t.Errorf("NSKG check %s = %s (distance %v)", c.Name, c.Status, c.Distance)
		}
	}
	if nskg.OscillationDetected {
		t.Error("NSKG run detected oscillation; noise should damp the ripple")
	}
	if nskg.OscillationPredicted {
		t.Error("NSKG model predicted oscillation; the damping is the point of the predictor")
	}

	skg := runEvaluate(t, smokeConfig(0), tel, "skg-accept")
	if !skg.OscillationDetected {
		t.Error("plain SKG run did not trip the oscillation detector")
	}
	if !skg.OscillationPredicted {
		t.Error("plain SKG model did not predict its own oscillation")
	}
	if skg.Failed() {
		t.Errorf("SKG verdict = %s; predicted oscillation must not fail the run\n%s", skg.Verdict, skg.Summary())
	}

	// Telemetry rode along: two runs, one oscillation detection, and
	// every check accounted for.
	if got := tel.Counter(MetricRuns).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricRuns, got)
	}
	if got := tel.Counter(MetricOscDetected).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricOscDetected, got)
	}
	wantChecks := int64(len(nskg.Checks) + len(skg.Checks))
	if got := tel.Counter(MetricChecks).Value(); got != wantChecks {
		t.Errorf("%s = %d, want %d", MetricChecks, got, wantChecks)
	}
	if got := tel.Counter(MetricReportsFailed).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", MetricReportsFailed, got)
	}
}

// Re-evaluating the same generation must marshal byte-identically —
// the golden-file and format-parity guarantees rest on this.
func TestReportJSONDeterministic(t *testing.T) {
	cfg := smokeConfig(0)
	cfg.Scale = 10
	a := runEvaluate(t, cfg, nil, "det")
	b := runEvaluate(t, cfg, nil, "det")
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("reports differ across identical runs:\n%s\n----\n%s", ja, jb)
	}
}

// A divergent graph must fail: validating one graph against a
// different seed's expectations crosses the fail thresholds.
func TestEvaluateFlagsWrongParameters(t *testing.T) {
	gen := smokeConfig(0)
	gen.Scale = 10
	acc := NewAccumulator()
	if _, err := core.Generate(gen, CollectingSinks(core.DiscardSinks(0), acc)); err != nil {
		t.Fatal(err)
	}
	wrong := gen
	wrong.Seed = skg.Seed{A: 0.25, B: 0.25, C: 0.25, D: 0.25} // uniform: no skew at all
	m, err := FromConfig(wrong)
	if err != nil {
		t.Fatal(err)
	}
	r := Evaluate(m, acc, DefaultThresholds(), nil, "mismatch")
	if !r.Failed() {
		t.Errorf("skewed graph validated against uniform expectations got %s, want fail\n%s",
			r.Verdict, r.Summary())
	}
}
