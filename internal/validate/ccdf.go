package validate

import (
	"math"
	"sort"

	"repro/internal/stats"
)

const (
	// gridExact is the degree up to which the evaluation grid carries
	// every integer; beyond it the grid thins to gridPerOctave
	// geometrically spaced points, which bounds evaluation cost on
	// billion-degree tails while keeping every power of two (the
	// chi-square octave boundaries) an exact grid point.
	gridExact     = 128
	gridPerOctave = 8

	// oscBinsPerOctave and oscMinMass mirror stats.Oscillation exactly,
	// so the predicted and observed scores are the same metric.
	oscBinsPerOctave = 4
	oscMinMass       = 16

	// OscillationDetectThreshold splits the oscillation score into
	// "Figure-9 ripple present" vs "clean power law". Calibrated on
	// seeded Graph500 runs at scales 12–16: plain SKG scores 2.6–9.3,
	// NSKG with noise 0.1 scores 0.00–0.75.
	OscillationDetectThreshold = 1.0
)

// classEval is one vertex class ready for CCDF evaluation: count
// vertices whose degree is approximately Normal(mu, sigma) rounded to
// integers, with an exact zero-degree probability p0 (the normal tail
// is a poor estimate of P(deg=0) exactly where the checks care most,
// so it is carried separately).
type classEval struct {
	count, mu, sigma, p0 float64
}

// axisEval is the expected degree CCDF of one axis evaluated on the
// standard grid: ccdf[i] = expected number of vertices with degree ≥
// grid[i]; total = number of vertices on the axis.
type axisEval struct {
	grid  []int64
	ccdf  []float64
	total float64
}

// binomCCDF is P(deg ≥ d) for one vertex whose degree is drawn as
// rng.Binomial(trials, p) draws it at large trial counts: a normal
// rounded to the nearest integer and clamped — hence the half-integer
// continuity correction. The model deliberately matches the
// generator's sampler, not the idealized binomial (they differ by
// o(1/σ), but matching the sampler is what makes the checks sharp).
func binomCCDF(d, np, sigma float64) float64 {
	if sigma == 0 {
		if np >= d-0.5 {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((d-0.5-np)/(sigma*math.Sqrt2))
}

// binomialEvals maps probability classes to evaluation classes under
// the plain Theorem-1 draw: deg ~ Binomial(trials, p).
func binomialEvals(classes []probClass, trials float64) []classEval {
	ces := make([]classEval, len(classes))
	for i, c := range classes {
		p := math.Exp2(c.logP)
		np := trials * p
		sigma := math.Sqrt(np * (1 - p))
		ces[i] = classEval{
			count: c.count,
			mu:    np,
			sigma: sigma,
			p0:    1 - binomCCDF(1, np, sigma),
		}
	}
	return ces
}

// degreeGrid builds the evaluation grid 1..min(gridExact, maxDeg) step
// 1, then geometric points until maxDeg is covered.
func degreeGrid(maxDeg int64) []int64 {
	if maxDeg < 1 {
		maxDeg = 1
	}
	var g []int64
	for d := int64(1); d <= maxDeg && d <= gridExact; d++ {
		g = append(g, d)
	}
	for i := 1; g[len(g)-1] < maxDeg; i++ {
		d := int64(math.Round(gridExact * math.Pow(2, float64(i)/gridPerOctave)))
		if d > g[len(g)-1] {
			g = append(g, d)
		}
	}
	return g
}

// evalGrid sums each class's CCDF over the grid. Grid point 1 uses the
// exact p0; beyond it, only grid points within ±8σ of the class mean
// need an erfc — everything below is a full contribution (handled by a
// difference array) and everything above is zero, which keeps the
// evaluation O(classes·transition width) instead of O(classes·grid).
func evalGrid(ces []classEval, domain int64) *axisEval {
	var total, maxUseful float64
	for _, c := range ces {
		total += c.count
		if u := c.mu + 10*c.sigma + 10; u > maxUseful {
			maxUseful = u
		}
	}
	grid := degreeGrid(int64(math.Min(maxUseful, float64(domain))))
	ccdf := make([]float64, len(grid))
	full := make([]float64, len(grid)+1)
	for _, c := range ces {
		ccdf[0] += c.count * (1 - c.p0)
		lo, hi := c.mu-8*c.sigma, c.mu+8*c.sigma
		iLo := sort.Search(len(grid), func(j int) bool { return float64(grid[j]) >= lo })
		iHi := sort.Search(len(grid), func(j int) bool { return float64(grid[j]) > hi })
		if iLo < 1 {
			iLo = 1
		}
		full[1] += c.count
		full[iLo] -= c.count
		for j := iLo; j < iHi; j++ {
			ccdf[j] += c.count * binomCCDF(float64(grid[j]), c.mu, c.sigma)
		}
	}
	run := 0.0
	for i := 1; i < len(ccdf); i++ {
		run += full[i]
		ccdf[i] += run
	}
	return &axisEval{grid: grid, ccdf: ccdf, total: total}
}

// evalUniformBox is the exact CCDF of count vertices with degrees
// uniform on [lo, hi] (the ERV Uniform out-distribution).
func evalUniformBox(lo, hi int64, count float64, domain int64) *axisEval {
	maxDeg := hi
	if maxDeg > domain {
		maxDeg = domain
	}
	grid := degreeGrid(maxDeg)
	ccdf := make([]float64, len(grid))
	span := float64(hi - lo + 1)
	for i, d := range grid {
		switch {
		case d <= lo:
			ccdf[i] = count
		case d > hi:
			ccdf[i] = 0
		default:
			ccdf[i] = count * float64(hi-d+1) / span
		}
	}
	return &axisEval{grid: grid, ccdf: ccdf, total: count}
}

// at returns the expected count of vertices with degree ≥ d: exact at
// grid points, log-interpolated between them, total below the grid and
// 0 beyond it.
func (e *axisEval) at(d int64) float64 {
	if d <= 0 {
		return e.total
	}
	i := sort.Search(len(e.grid), func(j int) bool { return e.grid[j] >= d })
	if i == len(e.grid) {
		return 0
	}
	if e.grid[i] == d || i == 0 {
		return e.ccdf[i]
	}
	// Between grid points: interpolate linearly in log-degree.
	d0, d1 := float64(e.grid[i-1]), float64(e.grid[i])
	t := (math.Log2(float64(d)) - math.Log2(d0)) / (math.Log2(d1) - math.Log2(d0))
	return e.ccdf[i-1] + t*(e.ccdf[i]-e.ccdf[i-1])
}

// zeros is the expected number of degree-0 vertices on the axis.
func (e *axisEval) zeros() float64 { return e.total - e.ccdf[0] }

// hist rounds the expected distribution into a stats.Hist (zeros under
// key 0, each grid cell's mass at its lower-edge degree). Rounding
// carries its residue forward so the total vertex count is preserved
// instead of the tail being rounded away cell by cell.
func (e *axisEval) hist() stats.Hist {
	h := make(stats.Hist)
	carry := 0.0
	put := func(deg int64, mass float64) {
		c := mass + carry
		n := math.Floor(c + 0.5)
		carry = c - n
		if n > 0 {
			h[deg] += int64(n)
		}
	}
	put(0, e.zeros())
	for i, d := range e.grid {
		mass := e.ccdf[i]
		if i+1 < len(e.grid) {
			mass -= e.ccdf[i+1]
		}
		put(d, mass)
	}
	return h
}

// octaveCells returns parallel expected counts per octave bin
// [2^k, 2^{k+1}) for k in [0, kMax]. Octave boundaries are exact grid
// points by construction.
func (e *axisEval) octaveCells() []float64 {
	maxDeg := e.grid[len(e.grid)-1]
	kMax := int(math.Floor(math.Log2(float64(maxDeg))))
	cells := make([]float64, kMax+1)
	for k := 0; k <= kMax; k++ {
		cells[k] = e.at(int64(1)<<uint(k)) - e.at(int64(1)<<uint(k+1))
	}
	return cells
}

// oscillation evaluates the stats.Oscillation metric — upward mass of
// the log-log degree plot over quarter-octave bins, with the same
// sparse-bin noise floor — on the expected distribution. This is the
// theory-side Figure 9: plain SKG's expected CCDF already carries the
// ripple, so the predictor proves the artifact is the model's, not the
// sampler's, and that NSKG noise damps it.
func (e *axisEval) oscillation() float64 {
	type bin struct {
		mass    float64
		degrees float64
	}
	bins := make(map[int]*bin)
	minK, maxK := 1<<30, -(1 << 30)
	for i, d := range e.grid {
		mass := e.ccdf[i]
		span := int64(1)
		if i+1 < len(e.grid) {
			mass -= e.ccdf[i+1]
			span = e.grid[i+1] - d
		}
		if mass <= 0 {
			continue
		}
		k := int(math.Floor(oscBinsPerOctave * math.Log2(float64(d))))
		b := bins[k]
		if b == nil {
			b = &bin{}
			bins[k] = b
		}
		b.mass += mass
		b.degrees += float64(span)
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
	}
	var up float64
	prev := math.NaN()
	for k := minK; k <= maxK; k++ {
		b := bins[k]
		if b == nil || b.mass < oscMinMass {
			continue
		}
		cur := math.Log2(b.mass / b.degrees)
		if !math.IsNaN(prev) && cur > prev {
			up += cur - prev
		}
		prev = cur
	}
	return up
}

// zipfSlope fits the expected rank-frequency curve with the same
// procedure stats.ZipfSlope applies to observed degree sequences
// (log-subsampled ranks, factor 1.3, linear fit of log2 degree vs
// log2 rank), so the check compares like with like — the asymptotic
// Lemma 6 slope is reported separately but is not what a whole-curve
// fit converges to at finite scale.
func (e *axisEval) zipfSlope() float64 {
	active := e.ccdf[0]
	if active < 4 {
		return math.NaN()
	}
	var xs, ys []float64
	for rank := 1.0; rank <= active; {
		i := sort.Search(len(e.ccdf), func(j int) bool { return e.ccdf[j] < rank })
		if i == 0 {
			break
		}
		xs = append(xs, math.Log2(rank))
		ys = append(ys, math.Log2(float64(e.grid[i-1])))
		next := math.Ceil(rank * 1.3)
		if next == rank {
			next++
		}
		rank = next
	}
	if len(xs) < 3 {
		return math.NaN()
	}
	s, _, _ := stats.LinearFit(xs, ys)
	return s
}

// ExpectedZipfSlope is the rank-frequency slope of the expected
// out-degree curve under the observed-side fit procedure.
func (m *Model) ExpectedZipfSlope() float64 { return m.outE.zipfSlope() }

// finish computes both axis evaluations; constructors call it once so
// Model methods are cheap and the Model is safe for concurrent reads.
func (m *Model) finish() {
	trials := float64(m.Trials)
	if m.uniformOut != nil {
		m.outE = evalUniformBox(m.uniformOut[0], m.uniformOut[1], float64(m.ScopeVertices), m.DestVertices)
	} else {
		m.outE = evalGrid(binomialEvals(m.out, trials), m.DestVertices)
	}
	if m.dedup && m.uniformOut == nil {
		m.inDedup = newDedupModel(m.out, m.in, trials)
		m.inE = evalGrid(m.inDedup.evals(m.in), m.ScopeVertices)
	} else {
		m.inE = evalGrid(binomialEvals(m.in, trials), m.ScopeVertices)
	}
}

// ExpectedEdges is the expected total edge count: the Theorem-1 row
// masses sum to 1, so for SKG/NSKG this is |E| up to class coalescing
// error — deviations in the observed total indicate sampler or sink
// bugs, not model spread.
func (m *Model) ExpectedEdges() float64 {
	if m.uniformOut != nil {
		return float64(m.ScopeVertices) * float64(m.uniformOut[0]+m.uniformOut[1]) / 2
	}
	var mass float64
	for _, c := range m.out {
		mass += c.count * math.Exp2(c.logP)
	}
	return float64(m.Trials) * mass
}

// ExpectedZeroOut is the expected number of vertices with no scope
// edges (Seshadhri et al.'s isolated-vertex analysis, out side).
func (m *Model) ExpectedZeroOut() float64 { return m.outE.zeros() }

// ExpectedZeroIn is the in-axis analogue.
func (m *Model) ExpectedZeroIn() float64 { return m.inE.zeros() }

// ExpectedIsolated is the expected number of vertices with neither out
// nor in edges, using the joint per-vertex classes and treating the
// two degree draws as independent given the class. NaN when the axes
// have different domains (ERV).
func (m *Model) ExpectedIsolated() float64 {
	if m.joint == nil {
		return math.NaN()
	}
	trials := float64(m.Trials)
	var s float64
	for _, c := range m.joint {
		po := math.Exp2(c.logOut)
		no := trials * po
		outP0 := 1 - binomCCDF(1, no, math.Sqrt(no*(1-po)))
		var inP0 float64
		if m.inDedup != nil {
			_, _, inP0 = m.inDedup.moments(c.logIn)
		} else {
			pi := math.Exp2(c.logIn)
			ni := trials * pi
			inP0 = 1 - binomCCDF(1, ni, math.Sqrt(ni*(1-pi)))
		}
		s += c.count * outP0 * inP0
	}
	return s
}

// ExpectedOutHist is the expected out-degree histogram (zeros under
// key 0), rounded for use with stats.KS.
func (m *Model) ExpectedOutHist() stats.Hist { return m.outE.hist() }

// ExpectedInHist is the in-axis analogue.
func (m *Model) ExpectedInHist() stats.Hist { return m.inE.hist() }

// ExpectedOutCCDF returns the expected number of vertices with
// out-degree ≥ d.
func (m *Model) ExpectedOutCCDF(d int64) float64 { return m.outE.at(d) }

// ExpectedInCCDF is the in-axis analogue.
func (m *Model) ExpectedInCCDF(d int64) float64 { return m.inE.at(d) }

// PredictedOutOscillation is the stats.Oscillation score of the
// expected out-degree distribution.
func (m *Model) PredictedOutOscillation() float64 { return m.outE.oscillation() }

// OscillationPredicted reports whether the model itself carries the
// Figure-9 ripple (score at or above OscillationDetectThreshold).
func (m *Model) OscillationPredicted() bool {
	return m.PredictedOutOscillation() >= OscillationDetectThreshold
}
