package validate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
)

// ReportSchema versions the Report JSON shape.
const ReportSchema = "trilliong-validate/v1"

// Status is a check or report verdict, ordered pass < warn < fail.
type Status string

const (
	// StatusPass means observed and expected agree within the warn
	// threshold (or the check does not apply to this parameterization).
	StatusPass Status = "pass"
	// StatusWarn means the divergence crossed the warn threshold but not
	// the fail one — worth a look, not a gate failure by itself.
	StatusWarn Status = "warn"
	// StatusFail means the divergence crossed the fail threshold (or a
	// boolean check like oscillation flipped against its prediction).
	StatusFail Status = "fail"
)

// worse returns the more severe of two statuses.
func worse(a, b Status) Status {
	rank := func(s Status) int {
		switch s {
		case StatusFail:
			return 2
		case StatusWarn:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// Threshold is one check's warn/fail distance pair: distance below
// Warn passes, in [Warn, Fail) warns, at or above Fail fails.
type Threshold struct {
	Warn float64 `json:"warn"`
	Fail float64 `json:"fail"`
}

func (t Threshold) status(distance float64) Status {
	switch {
	case distance >= t.Fail:
		return StatusFail
	case distance >= t.Warn:
		return StatusWarn
	default:
		return StatusPass
	}
}

// Thresholds bundles every check's threshold. Distances are relative
// errors for scalar checks, KS distance for distribution checks,
// reduced (per-cell) statistic for chi-square, and absolute slope
// difference for the Zipf check. Defaults are calibrated on seeded
// Graph500 runs at scales 10–16 (see checks_test.go); the in-axis and
// isolated checks run looser because their closed forms approximate
// the destination draws as independent binomials.
type Thresholds struct {
	Edges     Threshold `json:"edges"`
	OutKS     Threshold `json:"out_ks"`
	InKS      Threshold `json:"in_ks"`
	OutChi2   Threshold `json:"out_chi2"`
	ZeroOut   Threshold `json:"zero_out"`
	ZeroIn    Threshold `json:"zero_in"`
	Isolated  Threshold `json:"isolated"`
	ZipfSlope Threshold `json:"zipf_slope"`
	// CommunityBlock bounds each community block's (and the intra/inter
	// totals') edge-count deviation from its planned budget, measured by
	// countDiff — relative deviation beyond a 3·√budget sampling
	// allowance, so small blocks are not penalized for binomial noise.
	CommunityBlock Threshold `json:"community_block"`
	// OscillationDetect is the score at or above which the Figure-9
	// ripple counts as present, applied to both the observed and the
	// predicted score; the check fails when the two disagree.
	OscillationDetect float64 `json:"oscillation_detect"`
}

// DefaultThresholds returns the calibrated defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Edges:             Threshold{Warn: 0.02, Fail: 0.10},
		OutKS:             Threshold{Warn: 0.05, Fail: 0.15},
		InKS:              Threshold{Warn: 0.08, Fail: 0.20},
		OutChi2:           Threshold{Warn: 50, Fail: 500},
		ZeroOut:           Threshold{Warn: 0.05, Fail: 0.20},
		ZeroIn:            Threshold{Warn: 0.08, Fail: 0.25},
		Isolated:          Threshold{Warn: 0.10, Fail: 0.30},
		ZipfSlope:         Threshold{Warn: 0.15, Fail: 0.40},
		CommunityBlock:    Threshold{Warn: 0.10, Fail: 0.25},
		OscillationDetect: OscillationDetectThreshold,
	}
}

// Params records the generation parameters a report validated against.
// It deliberately excludes the output format and worker count: the
// same graph serialized three ways must produce byte-identical
// reports.
type Params struct {
	Model       string  `json:"model"`
	Scale       int     `json:"scale,omitempty"`
	EdgeFactor  int64   `json:"edge_factor,omitempty"`
	Vertices    int64   `json:"vertices"`
	Edges       int64   `json:"edges"`
	Noise       float64 `json:"noise,omitempty"`
	MasterSeed  uint64  `json:"master_seed,omitempty"`
	Orientation string  `json:"orientation,omitempty"`
}

// ParamsFromConfig condenses a core configuration into report params.
func ParamsFromConfig(cfg core.Config) Params {
	return Params{
		Model:       modelName(cfg),
		Scale:       cfg.Scale,
		EdgeFactor:  cfg.EdgeFactor,
		Vertices:    cfg.NumVertices(),
		Edges:       cfg.NumEdges(),
		Noise:       cfg.NoiseParam,
		MasterSeed:  cfg.MasterSeed,
		Orientation: cfg.Orientation.String(),
	}
}

func modelName(cfg core.Config) string {
	if cfg.NoiseParam > 0 {
		return "nskg"
	}
	return "skg"
}

// Observed summarizes the accumulated measurements. "Out" is the
// scope axis as stored in the part files (under AVS-I that is the
// original graph's in-degree).
type Observed struct {
	Edges          int64    `json:"edges"`
	ActiveOut      int64    `json:"active_out_vertices"`
	ActiveIn       int64    `json:"active_in_vertices"`
	ZeroOut        int64    `json:"zero_out_vertices"`
	ZeroIn         int64    `json:"zero_in_vertices"`
	Isolated       *int64   `json:"isolated_vertices,omitempty"`
	MaxOutDegree   int64    `json:"max_out_degree"`
	MaxInDegree    int64    `json:"max_in_degree"`
	OutOscillation float64  `json:"out_oscillation"`
	OutZipfSlope   *float64 `json:"out_zipf_slope,omitempty"`
}

// Expected summarizes the model's closed-form predictions.
type Expected struct {
	Edges          float64  `json:"edges"`
	ZeroOut        float64  `json:"zero_out_vertices"`
	ZeroIn         float64  `json:"zero_in_vertices"`
	Isolated       *float64 `json:"isolated_vertices,omitempty"`
	OutOscillation float64  `json:"out_oscillation"`
	OutZipfSlope   *float64 `json:"out_zipf_slope,omitempty"`
}

// Check is one observed-vs-expected comparison.
type Check struct {
	Name     string  `json:"name"`
	Status   Status  `json:"status"`
	Observed float64 `json:"observed"`
	Expected float64 `json:"expected"`
	Distance float64 `json:"distance"`
	WarnAt   float64 `json:"warn_at"`
	FailAt   float64 `json:"fail_at"`
	Detail   string  `json:"detail,omitempty"`
}

// Report is the complete verdict of one validation run.
type Report struct {
	Schema               string   `json:"schema"`
	Label                string   `json:"label"`
	Params               Params   `json:"params"`
	Observed             Observed `json:"observed"`
	Expected             Expected `json:"expected"`
	Checks               []Check  `json:"checks"`
	OscillationDetected  bool     `json:"oscillation_detected"`
	OscillationPredicted bool     `json:"oscillation_predicted"`
	Verdict              Status   `json:"verdict"`
}

// Failed reports whether the overall verdict is fail.
func (r *Report) Failed() bool { return r.Verdict == StatusFail }

// JSON renders the report as indented, byte-stable JSON (floats are
// pre-rounded by Evaluate, so identical inputs marshal identically).
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Summary renders a terse human-readable table of the checks.
func (r *Report) Summary() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s  model=%s  verdict=%s\n", r.Label, r.Params.Model, r.Verdict)
	for _, c := range r.Checks {
		fmt.Fprintf(&buf, "  %-18s %-4s observed=%-14.4f expected=%-14.4f distance=%.4f\n",
			c.Name, c.Status, c.Observed, c.Expected, c.Distance)
		if c.Detail != "" {
			fmt.Fprintf(&buf, "    %s\n", c.Detail)
		}
	}
	return buf.String()
}

// round6 rounds to 6 decimals so the marshaled report is byte-stable
// (the accumulators and fits sum floats in map-iteration order, which
// perturbs last bits run to run).
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// optF wraps a float for JSON, omitting NaN (not representable).
func optF(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	r := round6(v)
	return &r
}
