package validate

// Telemetry counter names bumped by Evaluate (see docs/OBSERVABILITY.md).
const (
	// MetricRuns counts evaluated reports.
	MetricRuns = "validate.runs_total"
	// MetricChecks counts individual checks evaluated.
	MetricChecks = "validate.checks_total"
	// MetricChecksPass/Warn/Fail split MetricChecks by outcome.
	MetricChecksPass = "validate.checks_pass_total"
	MetricChecksWarn = "validate.checks_warn_total"
	MetricChecksFail = "validate.checks_fail_total"
	// MetricReportsFailed counts reports whose overall verdict is fail.
	MetricReportsFailed = "validate.reports_failed_total"
	// MetricEdges counts observed edges across validated graphs.
	MetricEdges = "validate.edges_observed_total"
	// MetricOscDetected counts reports where the Figure-9 oscillation
	// was detected in the observed degree distribution.
	MetricOscDetected = "validate.oscillation_detected_total"
)
