// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 7 and Appendix D). Each experiment is a function
// returning a structured result plus a Report for printing; the
// cmd/experiments CLI and the repository's root benchmarks are thin
// wrappers around this package.
//
// Scales default to laptop-sized (the DESIGN.md substitution): the
// claims under test are *shapes* — who wins, by what growth factor,
// where the crossovers sit — which are scale-invariant for these
// algorithms.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Report is a printable experiment result.
type Report struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Print renders the report as an aligned text table.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtDur renders a duration compactly for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtBytes renders a byte count compactly.
func fmtBytes(b int64) string {
	switch {
	case b < 0:
		return "O.O.M."
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}

// fmtF renders a float with 3 decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }
