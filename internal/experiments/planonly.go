package experiments

import (
	"repro/internal/avs"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/skg"
)

// planOnly builds the AVS generator (with NSKG noise when configured)
// and the Figure 6 partition for a core configuration without
// generating anything — the simulated-cluster experiments drive the
// scopes themselves to time them per worker.
func planOnly(cfg core.Config) ([]*avs.Generator, []partition.Range, error) {
	var noise *skg.Noise
	if cfg.NoiseParam > 0 {
		var err error
		noise, err = skg.NewNoise(cfg.Seed, cfg.Scale, cfg.NoiseParam,
			rng.New(rng.Mix64(cfg.MasterSeed, 0xBE5)))
		if err != nil {
			return nil, nil, err
		}
	}
	g, err := avs.New(avs.Config{
		Seed:          cfg.Seed,
		Levels:        cfg.Scale,
		NumEdges:      cfg.NumEdges(),
		Noise:         noise,
		Opts:          cfg.Opts,
		HighPrecision: cfg.HighPrecision,
	}, nil)
	if err != nil {
		return nil, nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	ranges, err := partition.Plan(g, cfg.MasterSeed, workers, cfg.BinsPerWorker)
	if err != nil {
		return nil, nil, err
	}
	return []*avs.Generator{g}, ranges, nil
}
