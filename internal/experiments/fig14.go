package experiments

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/graph500"
	"repro/internal/memacct"
	"repro/internal/rng"
	"repro/internal/skg"
)

// Fig14Row is one (method, network, scale) measurement.
type Fig14Row struct {
	Method  string
	Network string
	Scale   int
	Elapsed time.Duration
	OOM     bool
	// NetworkTime is the modeled transfer time (deterministic: bytes
	// over bandwidth), the quantity that separates the networks.
	NetworkTime time.Duration
	// ConstructionRatio is shuffle+construct time over total (Fig 14b).
	ConstructionRatio float64
}

// Fig14Result compares TrillionG (NSKG, CSR6) against the Graph500
// benchmark generator on 1 GbE and InfiniBand-class networks
// (Appendix D, Figure 14).
type Fig14Result struct {
	Rows    []Fig14Row
	Cluster cluster.Config // base cluster (bandwidth varied per row)
}

// Fig14 runs the comparison.
func Fig14(scales []int, memCapBytes int64) (*Fig14Result, error) {
	if len(scales) == 0 {
		scales = []int{14, 15, 16}
	}
	if memCapBytes == 0 {
		memCapBytes = (int64(16) << uint(scales[len(scales)-1]-1)) * 2 * memacct.EdgeBytes / 10
	}
	base := cluster.Config{Machines: 10, ThreadsPerMachine: 6, LatencySec: 0.0001}
	res := &Fig14Result{Cluster: base}
	networks := []struct {
		name string
		bw   float64
	}{
		{"1G", cluster.OneGbE},
		{"IB", cluster.InfiniBandEDR},
	}
	for _, sc := range scales {
		for _, net := range networks {
			cc := base
			cc.BandwidthBytesPerSec = net.bw

			// Graph500: in-memory NSKG + scramble + shuffle + CSR build.
			g5 := graph500.Config{
				Seed: skg.Graph500Seed, Levels: sc, NumEdges: int64(16) << uint(sc),
				NoiseParam: 0.1, Cluster: cc, MemLimitBytes: memCapBytes,
			}
			g5res, err := graph500.Run(g5, 701, nil)
			row := Fig14Row{Method: "Graph500", Network: net.name, Scale: sc}
			if errors.Is(err, graph500.ErrOutOfMemory) {
				row.OOM = true
			} else if err != nil {
				return nil, fmt.Errorf("fig14 graph500 scale %d: %w", sc, err)
			} else {
				row.Elapsed = g5res.Sim.Elapsed()
				row.NetworkTime = g5res.Sim.NetworkTime()
				row.ConstructionRatio = g5res.ConstructionRatio()
			}
			res.Rows = append(res.Rows, row)

			// TrillionG: NSKG to CSR6, no shuffle; the only construction
			// work is sorting each scope into CSR order.
			trow, err := fig14TrillionG(sc, cc)
			if err != nil {
				return nil, fmt.Errorf("fig14 trilliong scale %d: %w", sc, err)
			}
			trow.Network = net.name
			res.Rows = append(res.Rows, trow)
		}
	}
	return res, nil
}

// fig14TrillionG runs TrillionG (NSKG, CSR6) on the simulated cluster,
// separating generation from CSR construction so the construction
// ratio is measurable.
func fig14TrillionG(scale int, cc cluster.Config) (Fig14Row, error) {
	sim, err := cluster.New(cc)
	if err != nil {
		return Fig14Row{}, err
	}
	cfg := core.DefaultConfig(scale)
	cfg.MasterSeed = 702
	cfg.NoiseParam = 0.1
	cfg.Workers = cc.Workers()
	gens, ranges, err := planOnly(cfg)
	if err != nil {
		return Fig14Row{}, err
	}
	scopes := make([][][]int64, len(ranges))
	srcs := make([][]int64, len(ranges))
	err = sim.RunPhase("generate", func(w cluster.Worker) error {
		g := gens[0]
		for u := ranges[w.Index].Lo; u < ranges[w.Index].Hi; u++ {
			src := rng.NewScoped(cfg.MasterSeed, uint64(u))
			sc := g.Scope(u, src, nil)
			if len(sc.Dsts) == 0 {
				continue
			}
			scopes[w.Index] = append(scopes[w.Index], sc.Dsts)
			srcs[w.Index] = append(srcs[w.Index], u)
		}
		return nil
	})
	if err != nil {
		return Fig14Row{}, err
	}
	// Construction: sort each adjacency list (CSR6's only extra work;
	// scopes are already ordered by source within a worker).
	err = sim.RunPhase("construct", func(w cluster.Worker) error {
		wr := gformat.NewDiscardWriter(gformat.CSR6)
		for i, adj := range scopes[w.Index] {
			sort.Slice(adj, func(a, b int) bool { return adj[a] < adj[b] })
			if err := wr.WriteScope(srcs[w.Index][i], adj); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Fig14Row{}, err
	}
	total := sim.Elapsed()
	ratio := 0.0
	if total > 0 {
		ratio = float64(sim.PhaseTime("construct")+sim.NetworkTime()) / float64(total)
	}
	return Fig14Row{
		Method: "TrillionG", Scale: scale, Elapsed: total,
		NetworkTime: sim.NetworkTime(), ConstructionRatio: ratio,
	}, nil
}

// Time returns a cell's elapsed time (0 if missing or OOM).
func (r *Fig14Result) Time(method, network string, scale int) time.Duration {
	for _, row := range r.Rows {
		if row.Method == method && row.Network == network && row.Scale == scale && !row.OOM {
			return row.Elapsed
		}
	}
	return 0
}

// Network returns a cell's modeled network time (0 if missing or OOM).
func (r *Fig14Result) Network(method, network string, scale int) time.Duration {
	for _, row := range r.Rows {
		if row.Method == method && row.Network == network && row.Scale == scale && !row.OOM {
			return row.NetworkTime
		}
	}
	return 0
}

// Ratio returns a cell's construction ratio (-1 if missing or OOM).
func (r *Fig14Result) Ratio(method, network string, scale int) float64 {
	for _, row := range r.Rows {
		if row.Method == method && row.Network == network && row.Scale == scale && !row.OOM {
			return row.ConstructionRatio
		}
	}
	return -1
}

// Report renders the comparison.
func (r *Fig14Result) Report() Report {
	rep := Report{
		Title:   "Figure 14 — TrillionG vs Graph500 (1 GbE vs InfiniBand)",
		Columns: []string{"method", "network", "scale", "sim time", "construction %"},
		Notes: []string{
			"TrillionG ships no edges, so its time is network-independent; Graph500 collapses without InfiniBand.",
			"Construction % = (shuffle + CSR build) / total — the Figure 14b ratio (paper: >90% for Graph500, 6-7% for TrillionG).",
		},
	}
	for _, row := range r.Rows {
		t := fmtDur(row.Elapsed)
		c := fmt.Sprintf("%.1f%%", 100*row.ConstructionRatio)
		if row.OOM {
			t, c = "O.O.M.", "-"
		}
		rep.Rows = append(rep.Rows, []string{
			row.Method, row.Network, fmt.Sprintf("%d", row.Scale), t, c,
		})
	}
	return rep
}
