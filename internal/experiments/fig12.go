package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gformat"
)

// Fig12Row is one scalability measurement.
type Fig12Row struct {
	Scale   int
	Elapsed time.Duration
	PeakMem int64
	Edges   int64
	MaxDeg  int64
	TimeX   float64 // time ratio to previous scale
	MemX    float64 // memory ratio to previous scale
}

// Fig12Result is TrillionG's scalability sweep (Figure 12): elapsed
// time should double per scale (|E| doubles) while peak memory grows
// sublinearly (O(d_max)).
type Fig12Result struct {
	Rows    []Fig12Row
	Workers int
}

// Fig12 runs the sweep with the given worker count (0 = GOMAXPROCS).
func Fig12(scales []int, workers int) (*Fig12Result, error) {
	if len(scales) == 0 {
		scales = []int{15, 16, 17, 18, 19}
	}
	res := &Fig12Result{Workers: workers}
	for i, sc := range scales {
		cfg := core.DefaultConfig(sc)
		cfg.MasterSeed = 501
		cfg.Workers = workers
		st, err := core.Generate(cfg, core.DiscardSinks(gformat.ADJ6))
		if err != nil {
			return nil, fmt.Errorf("fig12 scale %d: %w", sc, err)
		}
		row := Fig12Row{
			Scale: sc, Elapsed: st.Elapsed, PeakMem: st.PeakWorkerBytes,
			Edges: st.Edges, MaxDeg: st.MaxDegree,
		}
		if i > 0 {
			prev := res.Rows[i-1]
			if prev.Elapsed > 0 {
				row.TimeX = float64(st.Elapsed) / float64(prev.Elapsed)
			}
			if prev.PeakMem > 0 {
				row.MemX = float64(st.PeakWorkerBytes) / float64(prev.PeakMem)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Report renders the sweep.
func (r *Fig12Result) Report() Report {
	rep := Report{
		Title:   "Figure 12 — TrillionG scalability (time and peak memory vs scale)",
		Columns: []string{"scale", "time", "x prev", "peak mem", "x prev", "edges", "d_max"},
		Notes: []string{
			"Time grows ≈2x per scale (∝|E|); peak memory grows well below 2x per scale (O(d_max)).",
		},
	}
	for _, row := range r.Rows {
		tx, mx := "-", "-"
		if row.TimeX > 0 {
			tx = fmt.Sprintf("%.2f", row.TimeX)
		}
		if row.MemX > 0 {
			mx = fmt.Sprintf("%.2f", row.MemX)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", row.Scale), fmtDur(row.Elapsed), tx,
			fmtBytes(row.PeakMem), mx,
			fmt.Sprintf("%d", row.Edges), fmt.Sprintf("%d", row.MaxDeg),
		})
	}
	return rep
}
