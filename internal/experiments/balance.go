package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/rng"
)

// BalanceRow is one partitioning strategy's outcome.
type BalanceRow struct {
	Strategy string
	// Skew is max worker load over mean worker load (1.0 = perfect).
	Skew float64
	// Makespan is the simulated completion time: the slowest worker's
	// edge count as a proxy (edges are the unit of work).
	MaxEdges  int64
	MeanEdges float64
	PlanTime  time.Duration
}

// BalanceResult is the Figure 6 justification ablation: TrillionG's
// AVS-level load-balanced partitioning versus the naive equal-vertex
// split. With a skewed seed the naive split hands the worker owning the
// low-ID (hot) vertices a large multiple of the average load; the
// Figure 6 plan flattens it.
type BalanceResult struct {
	Scale   int
	Workers int
	Rows    []BalanceRow
}

// Balance measures both strategies at the given scale and worker count.
func Balance(scale, workers int) (*BalanceResult, error) {
	if scale == 0 {
		scale = 16
	}
	if workers == 0 {
		workers = 8
	}
	cfg := core.DefaultConfig(scale)
	cfg.MasterSeed = 901
	res := &BalanceResult{Scale: scale, Workers: workers}

	g, err := core.NewScopeGenerator(cfg, nil)
	if err != nil {
		return nil, err
	}
	nv := cfg.NumVertices()

	loadOf := func(ranges []partition.Range) (int64, float64) {
		var max, total int64
		for _, r := range ranges {
			var load int64
			for u := r.Lo; u < r.Hi; u++ {
				load += g.ScopeSize(u, rng.NewScoped(cfg.MasterSeed, uint64(u)))
			}
			total += load
			if load > max {
				max = load
			}
		}
		return max, float64(total) / float64(len(ranges))
	}

	// Naive: equal vertex counts per worker.
	naive := make([]partition.Range, workers)
	per := nv / int64(workers)
	for i := range naive {
		naive[i] = partition.Range{Lo: int64(i) * per, Hi: int64(i+1) * per}
	}
	naive[workers-1].Hi = nv
	max, mean := loadOf(naive)
	res.Rows = append(res.Rows, BalanceRow{
		Strategy: "equal vertex ranges", Skew: float64(max) / mean,
		MaxEdges: max, MeanEdges: mean, PlanTime: 0,
	})
	// Figure 6: AVS-level planned ranges.
	planStart := time.Now()
	planned, err := core.Plan(cfg, workers)
	if err != nil {
		return nil, err
	}
	planDur := time.Since(planStart)
	max, mean = loadOf(planned)
	res.Rows = append(res.Rows, BalanceRow{
		Strategy: "AVS plan (Figure 6)", Skew: float64(max) / mean,
		MaxEdges: max, MeanEdges: mean, PlanTime: planDur,
	})
	return res, nil
}

// Skew returns the named strategy's skew (0 if missing).
func (r *BalanceResult) Skew(strategy string) float64 {
	for _, row := range r.Rows {
		if row.Strategy == strategy {
			return row.Skew
		}
	}
	return 0
}

// Report renders the comparison.
func (r *BalanceResult) Report() Report {
	rep := Report{
		Title: fmt.Sprintf("Partitioning ablation — Figure 6 vs naive split (Scale %d, %d workers)",
			r.Scale, r.Workers),
		Columns: []string{"strategy", "skew (max/mean)", "max worker edges", "mean worker edges", "plan time"},
		Notes: []string{
			"Skew is the parallel-efficiency loss: a worker with 3x the mean load makes 2/3 of the cluster idle.",
		},
	}
	for _, row := range r.Rows {
		rep.Rows = append(rep.Rows, []string{
			row.Strategy, fmt.Sprintf("%.2f", row.Skew),
			fmt.Sprintf("%d", row.MaxEdges), fmt.Sprintf("%.0f", row.MeanEdges),
			fmtDur(row.PlanTime),
		})
	}
	return rep
}
