package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/kronecker"
	"repro/internal/rmat"
	"repro/internal/skg"
	"repro/internal/stats"
	"repro/internal/teg"
)

// Fig8Result holds the degree-distribution comparison of Figure 8:
// RMAT, FastKronecker and TrillionG must be statistically identical;
// TeG must not.
type Fig8Result struct {
	Scale int
	// OutHists maps generator name to its out-degree histogram.
	OutHists map[string]stats.Hist
	// KSToRMAT is each generator's KS distance to RMAT's out-degrees.
	KSToRMAT map[string]float64
	// Slopes is the fitted log-log power-law slope per generator.
	Slopes map[string]float64
}

// Fig8 generates one graph per method at the given scale (paper: 20,
// edge factor 16; defaults here: 16 and 16) and compares out-degree
// distributions. At small scales the edge factor must shrink with the
// scale to keep hot-row density at the paper's level — "|E| distinct
// edges" processes only coincide when rows are far from saturated.
func Fig8(scale int, edgeFactor int64) (*Fig8Result, error) {
	if scale == 0 {
		scale = 16
	}
	if edgeFactor == 0 {
		edgeFactor = 16
	}
	edges := edgeFactor << uint(scale)
	seed := skg.Graph500Seed
	res := &Fig8Result{
		Scale:    scale,
		OutHists: make(map[string]stats.Hist),
		KSToRMAT: make(map[string]float64),
		Slopes:   make(map[string]float64),
	}

	// RMAT.
	rc := stats.NewDegreeCounter()
	if _, err := rmat.Mem(rmat.Config{Seed: seed, Levels: scale, NumEdges: edges}, 101, nil,
		func(e gformat.Edge) error { rc.AddEdge(e.Src, e.Dst); return nil }); err != nil {
		return nil, fmt.Errorf("fig8 RMAT: %w", err)
	}
	res.OutHists["RMAT"] = rc.OutHist()

	// FastKronecker.
	fc := stats.NewDegreeCounter()
	if _, err := kronecker.Fast(kronecker.Config{
		Seed: kronecker.FromSeed2(seed), Depth: scale, NumEdges: edges,
	}, 102, nil, func(e gformat.Edge) error { fc.AddEdge(e.Src, e.Dst); return nil }); err != nil {
		return nil, fmt.Errorf("fig8 FastKronecker: %w", err)
	}
	res.OutHists["FastKronecker"] = fc.OutHist()

	// TrillionG.
	tc := stats.NewDegreeCounter()
	cfg := core.DefaultConfig(scale)
	cfg.EdgeFactor = edgeFactor
	cfg.MasterSeed = 103
	if _, err := core.Generate(cfg, core.CallbackSinks(func(src int64, dsts []int64) error {
		tc.AddScope(src, dsts)
		return nil
	})); err != nil {
		return nil, fmt.Errorf("fig8 TrillionG: %w", err)
	}
	res.OutHists["TrillionG"] = tc.OutHist()

	// TeG.
	gc := stats.NewDegreeCounter()
	if _, err := teg.Generate(teg.Config{Seed: seed, Levels: scale, NumEdges: edges}, 104,
		func(src int64, dsts []int64) error { gc.AddScope(src, dsts); return nil }); err != nil {
		return nil, fmt.Errorf("fig8 TeG: %w", err)
	}
	res.OutHists["TeG"] = gc.OutHist()

	for name, h := range res.OutHists {
		res.KSToRMAT[name] = stats.KS(h, res.OutHists["RMAT"])
		s, _ := stats.PowerLawSlope(h)
		res.Slopes[name] = s
	}
	return res, nil
}

// Indistinguishable reports whether a generator's out-degree
// distribution is statistically indistinguishable from RMAT's at
// significance alpha (two-sample KS test).
func (r *Fig8Result) Indistinguishable(name string, alpha float64) bool {
	return stats.KSIndistinguishable(r.OutHists[name], r.OutHists["RMAT"], alpha)
}

// Report renders the comparison.
func (r *Fig8Result) Report() Report {
	rep := Report{
		Title:   fmt.Sprintf("Figure 8 — out-degree distributions, Scale %d", r.Scale),
		Columns: []string{"generator", "KS vs RMAT", "power-law slope", "distinct degrees", "max degree"},
		Notes: []string{
			"The three stochastic generators coincide (small KS); TeG collapses onto degree spikes (large KS).",
		},
	}
	for _, name := range []string{"RMAT", "FastKronecker", "TrillionG", "TeG"} {
		h := r.OutHists[name]
		rep.Rows = append(rep.Rows, []string{
			name, fmtF(r.KSToRMAT[name]), fmtF(r.Slopes[name]),
			fmt.Sprintf("%d", len(h)), fmt.Sprintf("%d", h.MaxDegree()),
		})
	}
	return rep
}
