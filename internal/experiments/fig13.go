package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/recvec"
)

// Fig13Row is one ablation cell.
type Fig13Row struct {
	Idea1, Idea2, Idea3 bool
	Elapsed             time.Duration
}

// Fig13Result is the key-idea ablation of Figure 13: all 2³
// combinations of (Idea#1 reuse RecVec, Idea#2 sparse recursion,
// Idea#3 single random value) at one scale.
type Fig13Result struct {
	Scale int
	Rows  []Fig13Row
}

// Fig13 runs the ablation (paper: Scale 27; default here Scale 18),
// single-threaded so cell times are comparable.
func Fig13(scale int) (*Fig13Result, error) {
	if scale == 0 {
		scale = 18
	}
	res := &Fig13Result{Scale: scale}
	for _, i1 := range []bool{false, true} {
		for _, i2 := range []bool{false, true} {
			for _, i3 := range []bool{false, true} {
				cfg := core.DefaultConfig(scale)
				cfg.MasterSeed = 601
				cfg.Opts = recvec.Options{
					ReuseVector:     i1,
					SparseRecursion: i2,
					SingleRandom:    i3,
				}
				st, err := core.GenerateSeq(cfg, core.DiscardSinks(gformat.ADJ6))
				if err != nil {
					return nil, fmt.Errorf("fig13 %v%v%v: %w", i1, i2, i3, err)
				}
				res.Rows = append(res.Rows, Fig13Row{
					Idea1: i1, Idea2: i2, Idea3: i3, Elapsed: st.Elapsed,
				})
			}
		}
	}
	return res, nil
}

// Time returns the cell time of one combination.
func (r *Fig13Result) Time(i1, i2, i3 bool) time.Duration {
	for _, row := range r.Rows {
		if row.Idea1 == i1 && row.Idea2 == i2 && row.Idea3 == i3 {
			return row.Elapsed
		}
	}
	return 0
}

// Report renders the ablation in the paper's bar order (Idea#1 off
// block first, X/O flags per idea).
func (r *Fig13Result) Report() Report {
	rep := Report{
		Title:   fmt.Sprintf("Figure 13 — breakdown of the three key ideas (Scale %d, 1 thread)", r.Scale),
		Columns: []string{"Idea#1 reuse", "Idea#2 sparse", "Idea#3 1-rand", "time", "speedup vs none"},
		Notes: []string{
			"Idea#1 dominates; Ideas #2 and #3 compound once the vector is reused (paper: 3.38x then 2.47x).",
		},
	}
	base := r.Time(false, false, false)
	flag := func(b bool) string {
		if b {
			return "O"
		}
		return "X"
	}
	for _, i1 := range []bool{false, true} {
		for _, i2 := range []bool{false, true} {
			for _, i3 := range []bool{false, true} {
				t := r.Time(i1, i2, i3)
				sp := "-"
				if base > 0 && t > 0 {
					sp = fmt.Sprintf("%.2fx", float64(base)/float64(t))
				}
				rep.Rows = append(rep.Rows, []string{
					flag(i1), flag(i2), flag(i3), fmtDur(t), sp,
				})
			}
		}
	}
	return rep
}
