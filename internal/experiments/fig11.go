package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/kronecker"
	"repro/internal/memacct"
	"repro/internal/rmat"
	"repro/internal/rng"
	"repro/internal/skg"
	"repro/internal/wesp"
)

// Fig11aRow is one (method, scale) single-thread measurement.
type Fig11aRow struct {
	Method  string
	Scale   int
	Elapsed time.Duration
	OOM     bool
	Edges   int64
}

// Fig11aResult is the single-threaded comparison of Figure 11a:
// RMAT-mem, RMAT-disk, FastKronecker and TrillionG/seq, with a memory
// cap that reproduces the O.O.M. points.
type Fig11aResult struct {
	Rows []Fig11aRow
	// MemCapBytes is the per-process cap used to produce O.O.M.
	MemCapBytes int64
}

// Fig11a runs the sweep. memCapBytes scales the paper's 32 GB down to
// the test sizes (default: enough for the small scales, exceeded by the
// large ones, mirroring the paper's O.O.M. at Scale 26).
func Fig11a(scales []int, memCapBytes int64, dir string) (*Fig11aResult, error) {
	if len(scales) == 0 {
		scales = []int{14, 15, 16, 17}
	}
	if memCapBytes == 0 {
		// Cap sized so the in-memory methods fail at the top scale:
		// |E|·16B at second-to-last scale.
		memCapBytes = (int64(16) << uint(scales[len(scales)-1]-1)) * memacct.EdgeBytes
	}
	res := &Fig11aResult{MemCapBytes: memCapBytes}
	seed := skg.Graph500Seed

	for _, sc := range scales {
		edges := int64(16) << uint(sc)

		// RMAT-mem.
		start := time.Now()
		r, err := rmat.Mem(rmat.Config{
			Seed: seed, Levels: sc, NumEdges: edges, MemLimitBytes: memCapBytes,
		}, 301, nil, nil)
		row := Fig11aRow{Method: "RMAT-mem", Scale: sc, Elapsed: time.Since(start), Edges: r.Edges}
		if errors.Is(err, rmat.ErrOutOfMemory) {
			row.OOM, row.Elapsed = true, 0
		} else if err != nil {
			return nil, fmt.Errorf("fig11a RMAT-mem scale %d: %w", sc, err)
		}
		res.Rows = append(res.Rows, row)

		// RMAT-disk.
		start = time.Now()
		rd, err := rmat.Disk(rmat.Config{Seed: seed, Levels: sc, NumEdges: edges, RunEdges: 1 << 18},
			302, dir, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("fig11a RMAT-disk scale %d: %w", sc, err)
		}
		res.Rows = append(res.Rows, Fig11aRow{
			Method: "RMAT-disk", Scale: sc, Elapsed: time.Since(start), Edges: rd.Edges,
		})

		// FastKronecker.
		start = time.Now()
		kr, err := kronecker.Fast(kronecker.Config{
			Seed: kronecker.FromSeed2(seed), Depth: sc, NumEdges: edges, MemLimitBytes: memCapBytes,
		}, 303, nil, nil)
		row = Fig11aRow{Method: "FastKronecker", Scale: sc, Elapsed: time.Since(start), Edges: kr.Edges}
		if errors.Is(err, kronecker.ErrOutOfMemory) {
			row.OOM, row.Elapsed = true, 0
		} else if err != nil {
			return nil, fmt.Errorf("fig11a FastKronecker scale %d: %w", sc, err)
		}
		res.Rows = append(res.Rows, row)

		// TrillionG/seq (never OOMs: O(d_max) ≪ cap at any of these scales).
		cfg := core.DefaultConfig(sc)
		cfg.MasterSeed = 304
		st, err := core.GenerateSeq(cfg, core.DiscardSinks(gformat.ADJ6))
		if err != nil {
			return nil, fmt.Errorf("fig11a TrillionG/seq scale %d: %w", sc, err)
		}
		res.Rows = append(res.Rows, Fig11aRow{
			Method: "TrillionG/seq", Scale: sc, Elapsed: st.Elapsed, Edges: st.Edges,
		})
	}
	return res, nil
}

// Time returns a cell's elapsed time (0 if missing or OOM).
func (r *Fig11aResult) Time(method string, scale int) time.Duration {
	for _, row := range r.Rows {
		if row.Method == method && row.Scale == scale && !row.OOM {
			return row.Elapsed
		}
	}
	return 0
}

// OOM reports whether a cell ran out of memory.
func (r *Fig11aResult) OOM(method string, scale int) bool {
	for _, row := range r.Rows {
		if row.Method == method && row.Scale == scale {
			return row.OOM
		}
	}
	return false
}

// Report renders the figure.
func (r *Fig11aResult) Report() Report {
	rep := Report{
		Title:   "Figure 11a — single-threaded methods (memory cap " + fmtBytes(r.MemCapBytes) + ")",
		Columns: []string{"method", "scale", "time", "edges"},
		Notes: []string{
			"TrillionG/seq is fastest at every scale and never O.O.M.s; the in-memory baselines die first.",
		},
	}
	for _, row := range r.Rows {
		t := fmtDur(row.Elapsed)
		if row.OOM {
			t = "O.O.M."
		}
		rep.Rows = append(rep.Rows, []string{
			row.Method, fmt.Sprintf("%d", row.Scale), t, fmt.Sprintf("%d", row.Edges),
		})
	}
	return rep
}

// Fig11bRow is one (method, scale) distributed measurement.
type Fig11bRow struct {
	Method  string
	Scale   int
	Elapsed time.Duration // simulated cluster time
	OOM     bool
	Edges   int64
	Bytes   int64
}

// Fig11bResult is the distributed comparison of Figure 11b: RMAT/p-mem,
// RMAT/p-disk, TrillionG (TSV) and TrillionG (ADJ6) on a simulated
// 10×6 cluster with 1 GbE and an HDD storage model.
type Fig11bResult struct {
	Rows    []Fig11bRow
	Cluster cluster.Config
	// DiskBytesPerSec is the per-machine storage bandwidth model used
	// to charge the time of persisting the output.
	DiskBytesPerSec float64
}

// Fig11b runs the sweep.
func Fig11b(scales []int, cc cluster.Config, memCapBytes int64, dir string) (*Fig11bResult, error) {
	if len(scales) == 0 {
		scales = []int{14, 15, 16}
	}
	if cc.Machines == 0 {
		cc = cluster.Config{
			Machines: 10, ThreadsPerMachine: 6,
			BandwidthBytesPerSec: cluster.OneGbE, LatencySec: 0.001,
		}
	}
	if memCapBytes == 0 {
		memCapBytes = (int64(16) << uint(scales[len(scales)-1]-1)) * memacct.EdgeBytes / int64(cc.Machines)
	}
	res := &Fig11bResult{Cluster: cc, DiskBytesPerSec: 150e6}

	for _, sc := range scales {
		edges := int64(16) << uint(sc)

		// RMAT/p-mem.
		wcfg := wesp.Config{
			Seed: skg.Graph500Seed, Levels: sc, NumEdges: edges,
			Epsilon: 0.01, Cluster: cc, MemLimitBytes: memCapBytes,
		}
		wres, err := wesp.Run(wcfg, 401, nil)
		row := Fig11bRow{Method: "RMAT/p-mem", Scale: sc, Edges: wres.Edges}
		if errors.Is(err, wesp.ErrOutOfMemory) {
			row.OOM = true
		} else if err != nil {
			return nil, fmt.Errorf("fig11b RMAT/p-mem scale %d: %w", sc, err)
		} else {
			row.Elapsed = wres.Sim.Elapsed() + res.storeTime(wres.Edges*12)
		}
		res.Rows = append(res.Rows, row)

		// RMAT/p-disk.
		dcfg := wcfg
		dcfg.MemLimitBytes = 0
		dcfg.Disk = true
		dcfg.Dir = dir
		dcfg.RunEdges = 1 << 17
		dres, err := wesp.Run(dcfg, 401, nil)
		if err != nil {
			return nil, fmt.Errorf("fig11b RMAT/p-disk scale %d: %w", sc, err)
		}
		res.Rows = append(res.Rows, Fig11bRow{
			Method: "RMAT/p-disk", Scale: sc,
			Elapsed: dres.Sim.Elapsed() + res.storeTime(dres.Edges*12),
			Edges:   dres.Edges,
		})

		// TrillionG in TSV and ADJ6.
		for _, format := range []gformat.Format{gformat.TSV, gformat.ADJ6} {
			row, err := res.trillionG(sc, format)
			if err != nil {
				return nil, fmt.Errorf("fig11b TrillionG %v scale %d: %w", format, sc, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// storeTime charges persisting `bytes` across the cluster's disks.
func (r *Fig11bResult) storeTime(bytes int64) time.Duration {
	perMachine := float64(bytes) / float64(r.Cluster.Machines)
	return time.Duration(perMachine / r.DiskBytesPerSec * float64(time.Second))
}

// trillionG runs TrillionG on the simulated cluster: plan once, then a
// generation phase (per-worker compute, AVS partition), then a modeled
// store of the format's bytes. No shuffle phase exists.
func (r *Fig11bResult) trillionG(scale int, format gformat.Format) (Fig11bRow, error) {
	sim, err := cluster.New(r.Cluster)
	if err != nil {
		return Fig11bRow{}, err
	}
	cfg := core.DefaultConfig(scale)
	cfg.MasterSeed = 402
	cfg.Workers = r.Cluster.Workers()

	// The plan runs on the master; its time is part of the makespan.
	gens, ranges, err := planOnly(cfg)
	if err != nil {
		return Fig11bRow{}, err
	}
	// Real format writers over io.Discard: serialization CPU (decimal
	// formatting for TSV, binary packing for ADJ6) is charged to the
	// worker, exactly as on a real machine; only the disk itself is
	// modeled.
	writers := make([]gformat.Writer, len(ranges))
	err = sim.RunPhase("generate", func(w cluster.Worker) error {
		var wr gformat.Writer
		if format == gformat.TSV {
			wr = gformat.NewTSVWriter(io.Discard)
		} else {
			wr = gformat.NewADJ6Writer(io.Discard)
		}
		writers[w.Index] = wr
		g := gens[w.Index%len(gens)]
		var buf []int64
		for u := ranges[w.Index].Lo; u < ranges[w.Index].Hi; u++ {
			src := rng.NewScoped(cfg.MasterSeed, uint64(u))
			sc := g.Scope(u, src, buf)
			buf = sc.Dsts
			if err := wr.WriteScope(u, sc.Dsts); err != nil {
				return err
			}
		}
		return wr.Close()
	})
	if err != nil {
		return Fig11bRow{}, err
	}
	var edges, bytes int64
	for _, w := range writers {
		edges += w.EdgesWritten()
		bytes += w.BytesWritten()
	}
	sim.AddModeledTime("store", r.storeTime(bytes))
	name := "TrillionG (TSV)"
	if format == gformat.ADJ6 {
		name = "TrillionG (ADJ6)"
	}
	return Fig11bRow{
		Method: name, Scale: scale, Elapsed: sim.Elapsed(), Edges: edges, Bytes: bytes,
	}, nil
}

// Time returns a cell's elapsed time (0 if missing or OOM).
func (r *Fig11bResult) Time(method string, scale int) time.Duration {
	for _, row := range r.Rows {
		if row.Method == method && row.Scale == scale && !row.OOM {
			return row.Elapsed
		}
	}
	return 0
}

// Report renders the figure.
func (r *Fig11bResult) Report() Report {
	rep := Report{
		Title: fmt.Sprintf("Figure 11b — distributed methods (%d machines × %d threads, 1 GbE, %s/s disks)",
			r.Cluster.Machines, r.Cluster.ThreadsPerMachine, fmtBytes(int64(r.DiskBytesPerSec))),
		Columns: []string{"method", "scale", "sim time", "edges", "output bytes"},
		Notes: []string{
			"Times are simulated-cluster makespans: per-worker compute + modeled network + modeled store.",
			"TrillionG has no shuffle/merge; ADJ6 beats TSV via output volume.",
		},
	}
	for _, row := range r.Rows {
		t := fmtDur(row.Elapsed)
		if row.OOM {
			t = "O.O.M."
		}
		b := "-"
		if row.Bytes > 0 {
			b = fmtBytes(row.Bytes)
		}
		rep.Rows = append(rep.Rows, []string{
			row.Method, fmt.Sprintf("%d", row.Scale), t, fmt.Sprintf("%d", row.Edges), b,
		})
	}
	return rep
}
