package experiments

import (
	"fmt"
	"time"

	"repro/internal/recvec"
	"repro/internal/rng"
	"repro/internal/skg"
)

// Table2Row is one (structure, search) measurement.
type Table2Row struct {
	Structure string
	Search    string
	Scale     int
	NsPerEdge float64
	Bytes     int64 // data-structure footprint
}

// Table2Result compares destination determination on the naive CDF
// vector (linear and binary search, O(|V|) space) against the recursive
// vector (binary and linear search, O(log|V|) space) — the paper's
// Table 2 plus the space column that motivates it.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 measures ns/edge at the given scales (CDF rows capped at
// scale 20: the structure is O(|V|)).
func Table2(scales []int, drawsPerCell int) (*Table2Result, error) {
	if len(scales) == 0 {
		scales = []int{16, 20, 30}
	}
	if drawsPerCell <= 0 {
		drawsPerCell = 200000
	}
	res := &Table2Result{}
	seed := skg.Graph500Seed
	const u = 123457

	for _, sc := range scales {
		if sc <= 20 {
			cdf := recvec.NewCDF(seed, u%(1<<uint(sc)), sc)
			for _, search := range []string{"linear", "binary"} {
				src := rng.New(9)
				// Linear on big vectors is O(|V|): cut the draw count to
				// keep the harness usable, scaling the answer per draw.
				draws := drawsPerCell
				if search == "linear" {
					draws = drawsPerCell / 64
					if draws < 1000 {
						draws = 1000
					}
				}
				start := time.Now()
				var sink int64
				for i := 0; i < draws; i++ {
					x := src.UniformTo(cdf.Total())
					if search == "linear" {
						sink += cdf.DetermineLinear(x)
					} else {
						sink += cdf.DetermineBinary(x)
					}
				}
				el := time.Since(start)
				_ = sink
				res.Rows = append(res.Rows, Table2Row{
					Structure: "CDF vector", Search: search, Scale: sc,
					NsPerEdge: float64(el.Nanoseconds()) / float64(draws),
					Bytes:     int64(8) << uint(sc),
				})
			}
		} else {
			res.Rows = append(res.Rows,
				Table2Row{Structure: "CDF vector", Search: "linear", Scale: sc, Bytes: -1},
				Table2Row{Structure: "CDF vector", Search: "binary", Scale: sc, Bytes: -1},
			)
		}

		vec := recvec.New(seed, u, sc)
		for _, search := range []string{"binary", "linear"} {
			src := rng.New(9)
			opts := recvec.Options{SparseRecursion: true, SingleRandom: true, LinearSearch: search == "linear"}
			start := time.Now()
			var sink int64
			for i := 0; i < drawsPerCell; i++ {
				x := src.UniformTo(vec.RowProb())
				sink += vec.DetermineOpt(x, nil, opts)
			}
			el := time.Since(start)
			_ = sink
			res.Rows = append(res.Rows, Table2Row{
				Structure: "RecVec", Search: search, Scale: sc,
				NsPerEdge: float64(el.Nanoseconds()) / float64(drawsPerCell),
				Bytes:     int64(16 * (sc + 1)),
			})
		}
	}
	return res, nil
}

// Cell returns the ns/edge of a (structure, search, scale) cell, or -1.
func (r *Table2Result) Cell(structure, search string, scale int) float64 {
	for _, row := range r.Rows {
		if row.Structure == structure && row.Search == search && row.Scale == scale {
			return row.NsPerEdge
		}
	}
	return -1
}

// Report renders the table.
func (r *Table2Result) Report() Report {
	rep := Report{
		Title:   "Table 2 — CDF vector vs RecVec destination determination",
		Columns: []string{"structure", "search", "scale", "ns/edge", "structure size"},
		Notes: []string{
			"CDF vector is O(|V|) space — unusable past laptop scales (paper: 274 GB at |V|=2^36).",
			"RecVec is O(log|V|): 288 bytes even for a trillion-scale graph.",
		},
	}
	for _, row := range r.Rows {
		ns := "-"
		if row.NsPerEdge > 0 {
			ns = fmt.Sprintf("%.1f", row.NsPerEdge)
		}
		rep.Rows = append(rep.Rows, []string{
			row.Structure, row.Search, fmt.Sprintf("%d", row.Scale), ns, fmtBytes(row.Bytes),
		})
	}
	return rep
}
