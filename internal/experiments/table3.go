package experiments

import (
	"fmt"
	"math"

	"repro/internal/erv"
	"repro/internal/skg"
	"repro/internal/stats"
)

// Table3Row is one seed→distribution verification.
type Table3Row struct {
	Label string
	// TheorySlope is Lemma 6's prediction (NaN for the Gaussian row).
	TheorySlope float64
	// MeasuredSlope is the popcount-class fit (NaN for Gaussian).
	MeasuredSlope float64
	// For the Gaussian row: mean/std of degrees and KS vs normal.
	Mean, WantMean, KSNormal float64
}

// Table3Result verifies Table 3: seed parameters map to the predicted
// Zipfian slopes (out and in) and the uniform seed yields a Gaussian
// with mean |E|/|V|.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the verification at the given scale.
func Table3(scale int) (*Table3Result, error) {
	if scale == 0 {
		scale = 13
	}
	res := &Table3Result{}
	numSrc := int64(1) << uint(scale)
	numEdges := 16 * numSrc

	// Out-degree Zipfian rows for three slopes, including the Graph500
	// constant −1.662 the paper calls out.
	for _, slope := range []float64{-1.0, -1.662, -2.5} {
		g, err := erv.New(erv.Config{
			NumSrc: numSrc, NumDst: numSrc, NumEdges: numEdges,
			OutDist: erv.Dist{Kind: erv.Zipfian, Slope: slope},
			InDist:  erv.Dist{Kind: erv.Gaussian},
		})
		if err != nil {
			return nil, err
		}
		classSum := make([]float64, scale+1)
		classN := make([]float64, scale+1)
		if _, err := g.Generate(3, func(src int64, dsts []int64) error {
			ones := popcount(src)
			classSum[ones] += float64(len(dsts))
			classN[ones]++
			return nil
		}); err != nil {
			return nil, err
		}
		var xs, ys []float64
		for k := 0; k <= scale; k++ {
			if classN[k] < 8 {
				continue
			}
			mean := classSum[k] / classN[k]
			if mean < 2 {
				continue
			}
			xs = append(xs, float64(k))
			ys = append(ys, math.Log2(mean))
		}
		measured, _, _ := stats.LinearFit(xs, ys)
		res.Rows = append(res.Rows, Table3Row{
			Label:       fmt.Sprintf("Kout zipfian slope %.3f", slope),
			TheorySlope: slope, MeasuredSlope: measured,
			Mean: math.NaN(), WantMean: math.NaN(), KSNormal: math.NaN(),
		})
	}

	// In-degree Zipfian row: measure the popcount-class means of the
	// *destination* IDs.
	inSlope := -1.4
	gin, err := erv.New(erv.Config{
		NumSrc: numSrc, NumDst: numSrc, NumEdges: numEdges,
		OutDist: erv.Dist{Kind: erv.Gaussian},
		InDist:  erv.Dist{Kind: erv.Zipfian, Slope: inSlope},
	})
	if err != nil {
		return nil, err
	}
	counter := stats.NewDegreeCounter()
	if _, err := gin.Generate(5, func(src int64, dsts []int64) error {
		counter.AddScope(src, dsts)
		return nil
	}); err != nil {
		return nil, err
	}
	classSum := make([]float64, scale+1)
	classN := make([]float64, scale+1)
	for v, d := range counter.InByVertex() {
		ones := popcount(v)
		classSum[ones] += float64(d)
		classN[ones]++
	}
	// Include zero-in-degree vertices of each class in the mean.
	for k := 0; k <= scale; k++ {
		classN[k] = float64(choose(scale, k))
	}
	var xs, ys []float64
	for k := 0; k <= scale; k++ {
		if classN[k] < 8 {
			continue
		}
		mean := classSum[k] / classN[k]
		if mean < 2 {
			continue
		}
		xs = append(xs, float64(k))
		ys = append(ys, math.Log2(mean))
	}
	measuredIn, _, _ := stats.LinearFit(xs, ys)
	res.Rows = append(res.Rows, Table3Row{
		Label:       fmt.Sprintf("Kin zipfian slope %.3f", inSlope),
		TheorySlope: inSlope, MeasuredSlope: measuredIn,
		Mean: math.NaN(), WantMean: math.NaN(), KSNormal: math.NaN(),
	})

	// Gaussian row: uniform seed, mean |E|/|V|.
	gg, err := erv.New(erv.Config{
		NumSrc: numSrc, NumDst: numSrc, NumEdges: numEdges,
		OutDist: erv.Dist{Kind: erv.Gaussian},
		InDist:  erv.Dist{Kind: erv.Gaussian},
	})
	if err != nil {
		return nil, err
	}
	var degs []int64
	if _, err := gg.Generate(7, func(src int64, dsts []int64) error {
		degs = append(degs, int64(len(dsts)))
		return nil
	}); err != nil {
		return nil, err
	}
	mean, _ := stats.MeanStd(degs)
	res.Rows = append(res.Rows, Table3Row{
		Label:       "K uniform → Gaussian",
		TheorySlope: math.NaN(), MeasuredSlope: math.NaN(),
		Mean: mean, WantMean: float64(numEdges) / float64(numSrc),
		KSNormal: stats.KSAgainstNormal(degs),
	})
	return res, nil
}

func popcount(v int64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func choose(n, k int) int64 {
	r := int64(1)
	for i := 0; i < k; i++ {
		r = r * int64(n-i) / int64(i+1)
	}
	return r
}

// Report renders the table.
func (r *Table3Result) Report() Report {
	rep := Report{
		Title:   "Table 3 — seed parameters vs resulting degree distributions",
		Columns: []string{"configuration", "theory slope", "measured slope", "mean", "want mean", "KS vs normal"},
		Notes: []string{
			fmt.Sprintf("Graph500 seed constant: slope log2(γ+δ)−log2(α+β) = %.3f (paper: −1.662).", skg.Graph500Seed.OutZipfSlope()),
		},
	}
	nan := func(v float64, f string) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf(f, v)
	}
	for _, row := range r.Rows {
		rep.Rows = append(rep.Rows, []string{
			row.Label,
			nan(row.TheorySlope, "%.3f"), nan(row.MeasuredSlope, "%.3f"),
			nan(row.Mean, "%.2f"), nan(row.WantMean, "%.2f"), nan(row.KSNormal, "%.4f"),
		})
	}
	return rep
}
