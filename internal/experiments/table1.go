package experiments

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gformat"
	"repro/internal/kronecker"
	"repro/internal/memacct"
	"repro/internal/rmat"
	"repro/internal/skg"
	"repro/internal/wesp"
)

// Table1Row is one (method, scale) measurement.
type Table1Row struct {
	Method   string
	Scale    int
	Elapsed  time.Duration
	PeakMem  int64 // tracked bytes; -1 marks refusal/timeout (AES blowup)
	Edges    int64
	Attempts int64
}

// Table1Result verifies the complexity summary of Table 1 empirically:
// time growth per scale and peak-memory growth per scale for WES
// (RMAT-mem), AES (naive Kronecker), FastKronecker and AVS (TrillionG).
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the sweep. Scales apply to WES/Fast/AVS; AES runs only at
// the first scale plus one step (its O(|V|²) is the point).
func Table1(scales []int) (*Table1Result, error) {
	if len(scales) == 0 {
		scales = []int{14, 16, 18}
	}
	res := &Table1Result{}
	seed := skg.Graph500Seed

	for _, sc := range scales {
		edges := int64(16) << uint(sc)

		// WES: RMAT with in-memory dedup — O(|E|log|V|) time, O(|E|) space.
		var acct memacct.Acct
		start := time.Now()
		r, err := rmat.Mem(rmat.Config{Seed: seed, Levels: sc, NumEdges: edges}, 1, &acct, nil)
		if err != nil {
			return nil, fmt.Errorf("table1 WES scale %d: %w", sc, err)
		}
		res.Rows = append(res.Rows, Table1Row{
			Method: "WES (RMAT-mem)", Scale: sc, Elapsed: time.Since(start),
			PeakMem: acct.Peak(), Edges: r.Edges, Attempts: r.Attempts,
		})

		// FastKronecker: same complexities as WES.
		acct.Reset()
		start = time.Now()
		kr, err := kronecker.Fast(kronecker.Config{
			Seed: kronecker.FromSeed2(seed), Depth: sc, NumEdges: edges,
		}, 1, &acct, nil)
		if err != nil {
			return nil, fmt.Errorf("table1 FastKronecker scale %d: %w", sc, err)
		}
		res.Rows = append(res.Rows, Table1Row{
			Method: "FastKronecker", Scale: sc, Elapsed: time.Since(start),
			PeakMem: acct.Peak(), Edges: kr.Edges, Attempts: kr.Attempts,
		})

		// AES: O(|V|²) time, O(1) space. Run only where feasible.
		if sc <= 12 {
			start = time.Now()
			ar, err := kronecker.AES(kronecker.Config{
				Seed: kronecker.FromSeed2(seed), Depth: sc, NumEdges: edges,
			}, 1, nil)
			if err != nil {
				return nil, fmt.Errorf("table1 AES scale %d: %w", sc, err)
			}
			res.Rows = append(res.Rows, Table1Row{
				Method: "AES (Kronecker)", Scale: sc, Elapsed: time.Since(start),
				PeakMem: 0, Edges: ar.Edges, Attempts: ar.Attempts,
			})
		} else {
			res.Rows = append(res.Rows, Table1Row{
				Method: "AES (Kronecker)", Scale: sc, PeakMem: -1,
			})
		}

		// WES/p: merge-based parallel RMAT — O(|E|log|V|/P) + shuffle +
		// merge time, O(|E|/P) space per machine. Simulated 4x2 cluster.
		wdir, err := os.MkdirTemp("", "table1-wesp-*")
		if err != nil {
			return nil, err
		}
		wres, err := wesp.Run(wesp.Config{
			Seed: seed, Levels: sc, NumEdges: edges, Epsilon: 0.01,
			Cluster: cluster.Config{
				Machines: 4, ThreadsPerMachine: 2,
				BandwidthBytesPerSec: cluster.OneGbE, LatencySec: 0.001,
			},
		}, 1, nil)
		os.RemoveAll(wdir)
		if err != nil {
			return nil, fmt.Errorf("table1 WES/p scale %d: %w", sc, err)
		}
		res.Rows = append(res.Rows, Table1Row{
			Method: "WES/p (RMAT/p)", Scale: sc, Elapsed: wres.Sim.Elapsed(),
			PeakMem: wres.PeakMachineBytes, Edges: wres.Edges, Attempts: wres.Attempts,
		})

		// AVS: TrillionG — O(|E|log|V|/P) time, O(d_max) space.
		cfg := core.DefaultConfig(sc)
		cfg.Workers = 1
		st, err := core.Generate(cfg, core.DiscardSinks(gformat.ADJ6))
		if err != nil {
			return nil, fmt.Errorf("table1 AVS scale %d: %w", sc, err)
		}
		res.Rows = append(res.Rows, Table1Row{
			Method: "AVS (TrillionG)", Scale: sc, Elapsed: st.Elapsed,
			PeakMem: st.PeakWorkerBytes, Edges: st.Edges, Attempts: st.Attempts,
		})
	}
	return res, nil
}

// MemGrowth returns peak-memory growth factor per scale step for a
// method (last/first, geometric per step). Used by tests to confirm
// O(|E|) vs O(d_max) separation.
func (r *Table1Result) MemGrowth(method string) float64 {
	var first, last int64
	var firstScale, lastScale int
	for _, row := range r.Rows {
		if row.Method != method || row.PeakMem <= 0 {
			continue
		}
		if first == 0 {
			first, firstScale = row.PeakMem, row.Scale
		}
		last, lastScale = row.PeakMem, row.Scale
	}
	if first == 0 || lastScale == firstScale {
		return 0
	}
	return math.Pow(float64(last)/float64(first), 1/float64(lastScale-firstScale))
}

// Report renders the table.
func (r *Table1Result) Report() Report {
	rep := Report{
		Title:   "Table 1 — empirical time & space of the scope-based models",
		Columns: []string{"method", "scale", "time", "peak mem", "edges", "attempts"},
		Notes: []string{
			"WES & FastKronecker peak mem grows ~16x per 4 scales (O(|E|)); WES/p divides it by machines; AVS grows sublinearly (O(d_max)).",
			"AES rows marked O.O.M. are the O(|V|^2) blowup the paper reports as timeouts.",
			"WES/p times are simulated-cluster makespans (compute + shuffle + merge).",
		},
	}
	for _, row := range r.Rows {
		mem := fmtBytes(row.PeakMem)
		if row.PeakMem == 0 {
			mem = "O(1)"
		}
		rep.Rows = append(rep.Rows, []string{
			row.Method, fmt.Sprintf("%d", row.Scale), fmtDur(row.Elapsed),
			mem, fmt.Sprintf("%d", row.Edges), fmt.Sprintf("%d", row.Attempts),
		})
	}
	return rep
}
