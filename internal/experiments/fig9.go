package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig9Result holds the NSKG de-oscillation sweep of Figure 9.
type Fig9Result struct {
	Scale int
	// Noise holds the swept noise parameters in order.
	Noise []float64
	// Oscillation is the metric per noise level (same order).
	Oscillation []float64
	// Hists keeps the out-degree histograms for plotting.
	Hists []stats.Hist
}

// Fig9 generates one TrillionG graph per noise level (paper: Scale 27,
// N ∈ {0, 0.05, 0.1}; default here Scale 18) and measures degree-plot
// oscillation.
func Fig9(scale int, noises []float64) (*Fig9Result, error) {
	if scale == 0 {
		scale = 18
	}
	if len(noises) == 0 {
		noises = []float64{0, 0.05, 0.1}
	}
	res := &Fig9Result{Scale: scale, Noise: noises}
	for _, n := range noises {
		cfg := core.DefaultConfig(scale)
		cfg.NoiseParam = n
		cfg.MasterSeed = 7
		counter := stats.NewDegreeCounter()
		if _, err := core.Generate(cfg, core.CallbackSinks(func(src int64, dsts []int64) error {
			counter.AddScope(src, dsts)
			return nil
		})); err != nil {
			return nil, fmt.Errorf("fig9 noise %v: %w", n, err)
		}
		h := counter.OutHist()
		res.Hists = append(res.Hists, h)
		res.Oscillation = append(res.Oscillation, stats.Oscillation(h))
	}
	return res, nil
}

// Report renders the sweep.
func (r *Fig9Result) Report() Report {
	rep := Report{
		Title:   fmt.Sprintf("Figure 9 — NSKG noise vs degree-plot oscillation, Scale %d", r.Scale),
		Columns: []string{"noise N", "oscillation", "distinct degrees", "max degree"},
		Notes: []string{
			"Oscillation falls monotonically as N grows — the paper's visual claim, quantified.",
		},
	}
	for i, n := range r.Noise {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.2f", n), fmt.Sprintf("%.4f", r.Oscillation[i]),
			fmt.Sprintf("%d", len(r.Hists[i])), fmt.Sprintf("%d", r.Hists[i].MaxDegree()),
		})
	}
	return rep
}
