package experiments

import (
	"fmt"

	"repro/internal/gmark"
	"repro/internal/stats"
)

// Fig10Result holds the rich-graph degree plots of Figure 10: the
// bibliographical schema's author predicate with Zipfian out-degrees
// and Gaussian in-degrees.
type Fig10Result struct {
	NumVertices, NumEdges int64
	// OutHist and InHist are the author-predicate degree histograms.
	OutHist, InHist stats.Hist
	// OutSkewness should be large (heavy tail); InSkewness near zero.
	OutSkewness, InSkewness float64
	// InKSNormal is the in-degree KS distance to the fitted normal.
	InKSNormal float64
	// InMean and InWantMean compare the Gaussian mean to |E_pred|/|V_dst|.
	InMean, InWantMean float64
	// PredicateCounts records edges per predicate.
	PredicateCounts map[string]int64
}

// Fig10 generates the bibliographical graph (defaults: 2^16 vertices,
// 2^20 edges) and analyzes the author predicate.
func Fig10(numVertices, numEdges int64) (*Fig10Result, error) {
	if numVertices == 0 {
		numVertices = 1 << 16
	}
	if numEdges == 0 {
		numEdges = 1 << 20
	}
	schema := gmark.Bibliography(numVertices, numEdges)
	counter := stats.NewDegreeCounter()
	counts, err := schema.Generate(11, func(pred string, src int64, dsts []int64) error {
		if pred == "author" {
			counter.AddScope(src, dsts)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	res := &Fig10Result{
		NumVertices:     numVertices,
		NumEdges:        numEdges,
		OutHist:         counter.OutHist(),
		InHist:          counter.InHist(),
		OutSkewness:     stats.Skewness(counter.OutDegrees()),
		InSkewness:      stats.Skewness(counter.InDegrees()),
		InKSNormal:      stats.KSAgainstNormal(counter.InDegrees()),
		PredicateCounts: counts,
	}
	res.InMean, _ = stats.MeanStd(counter.InDegrees())
	var papers int64
	for _, r := range schema.Ranges() {
		if r.Type == "paper" {
			papers = r.Hi - r.Lo
		}
	}
	res.InWantMean = float64(counts["author"]) / float64(papers)
	return res, nil
}

// Report renders the analysis.
func (r *Fig10Result) Report() Report {
	outSlope, _ := stats.PowerLawSlope(r.OutHist)
	rep := Report{
		Title: fmt.Sprintf("Figure 10 — rich graph (bibliography, |V|=%d, |E|=%d), author predicate",
			r.NumVertices, r.NumEdges),
		Columns: []string{"side", "distribution", "skewness", "KS vs normal", "power-law slope", "mean"},
		Notes: []string{
			"Out-degrees: Zipfian (large skew, power-law plot). In-degrees: Gaussian (symmetric, normal fit).",
		},
	}
	rep.Rows = append(rep.Rows, []string{
		"out", "zipfian", fmtF(r.OutSkewness), "-", fmtF(outSlope), "-",
	})
	rep.Rows = append(rep.Rows, []string{
		"in", "gaussian", fmtF(r.InSkewness), fmtF(r.InKSNormal), "-",
		fmt.Sprintf("%.2f (want %.2f)", r.InMean, r.InWantMean),
	})
	for pred, n := range r.PredicateCounts {
		rep.Notes = append(rep.Notes, fmt.Sprintf("predicate %s: %d edges", pred, n))
	}
	return rep
}
