package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// The tests in this file assert the *shapes* each figure/table claims —
// who wins, what grows, where O.O.M. hits — at laptop scales. They are
// the machine-checked counterpart of EXPERIMENTS.md. Margins are
// generous (the paper's gaps are multiples, not percents) so timing
// noise on slow CI machines does not flake.

func TestReportPrint(t *testing.T) {
	r := Report{
		Title:   "t",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
		Notes:   []string{"n"},
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== t ==", "a", "bb", "xxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if fmtDur(0) != "-" {
		t.Fatal("fmtDur(0)")
	}
	if fmtBytes(-1) != "O.O.M." {
		t.Fatal("fmtBytes(-1)")
	}
	if fmtBytes(2048) != "2.0KB" {
		t.Fatalf("fmtBytes(2048) = %s", fmtBytes(2048))
	}
}

func TestTable1Shapes(t *testing.T) {
	res, err := Table1([]int{10, 12})
	if err != nil {
		t.Fatal(err)
	}
	// O(|E|) methods grow peak memory ~4x per 2 scales; AVS must grow
	// much slower.
	wes := res.MemGrowth("WES (RMAT-mem)")
	avs := res.MemGrowth("AVS (TrillionG)")
	if wes < 1.8 {
		t.Fatalf("WES memory growth/scale %v; expected ≈2", wes)
	}
	// d_max grows ≈1.52x per scale for the Graph500 seed (the paper's
	// own Figure 12b shows the same factor); WES grows 2x.
	if avs > 0.9*wes {
		t.Fatalf("AVS memory growth %v not clearly below WES %v", avs, wes)
	}
	// At equal scale, AVS peak is far below WES peak.
	var wesMem, avsMem int64
	for _, row := range res.Rows {
		if row.Scale != 12 {
			continue
		}
		switch row.Method {
		case "WES (RMAT-mem)":
			wesMem = row.PeakMem
		case "AVS (TrillionG)":
			avsMem = row.PeakMem
		}
	}
	if avsMem*10 > wesMem {
		t.Fatalf("AVS peak %d not ≪ WES peak %d", avsMem, wesMem)
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestTable2Shapes(t *testing.T) {
	res, err := Table2([]int{14}, 50000)
	if err != nil {
		t.Fatal(err)
	}
	cdfLinear := res.Cell("CDF vector", "linear", 14)
	cdfBinary := res.Cell("CDF vector", "binary", 14)
	recBinary := res.Cell("RecVec", "binary", 14)
	if cdfLinear <= 0 || cdfBinary <= 0 || recBinary <= 0 {
		t.Fatalf("missing cells: %v %v %v", cdfLinear, cdfBinary, recBinary)
	}
	// Linear scan over 2^14 CDF entries must lose to both binary paths
	// by a wide margin.
	if cdfLinear < 5*cdfBinary {
		t.Fatalf("CDF linear %v ns not ≫ binary %v ns", cdfLinear, cdfBinary)
	}
	if cdfLinear < 5*recBinary {
		t.Fatalf("CDF linear %v ns not ≫ RecVec %v ns", cdfLinear, recBinary)
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestTable3Shapes(t *testing.T) {
	res, err := Table3(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !math.IsNaN(row.TheorySlope) {
			if math.Abs(row.MeasuredSlope-row.TheorySlope) > 0.2 {
				t.Fatalf("%s: measured %v vs theory %v", row.Label, row.MeasuredSlope, row.TheorySlope)
			}
		} else {
			if math.Abs(row.Mean-row.WantMean) > 0.05*row.WantMean {
				t.Fatalf("gaussian mean %v, want %v", row.Mean, row.WantMean)
			}
			if row.KSNormal > 0.12 {
				t.Fatalf("gaussian KS %v", row.KSNormal)
			}
		}
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestFig8Shapes(t *testing.T) {
	// Scale 15 with edge factor 4 matches the hot-row density of the
	// paper's Scale-20/EF-16 setting (≈6%), where the stochastic trio
	// provably coincides.
	res, err := Fig8(15, 4)
	if err != nil {
		t.Fatal(err)
	}
	stochKS := res.KSToRMAT["TrillionG"]
	fastKS := res.KSToRMAT["FastKronecker"]
	tegKS := res.KSToRMAT["TeG"]
	if stochKS > 0.08 || fastKS > 0.08 {
		t.Fatalf("stochastic trio disagrees: TrillionG %v, FastKronecker %v", stochKS, fastKS)
	}
	if tegKS < 3*stochKS || tegKS < 0.15 {
		t.Fatalf("TeG KS %v not clearly above stochastic %v", tegKS, stochKS)
	}
	// The principled criterion: a two-sample KS test cannot tell
	// FastKronecker from RMAT even at the loose 10% level, while TeG
	// fails even the strict 0.1% level. (TrillionG's KS sits near the
	// 5% boundary at this scale because Theorem 1's normal
	// approximation is not the exact binomial; the gap shrinks with
	// scale — see EXPERIMENTS.md.)
	if !res.Indistinguishable("FastKronecker", 0.10) {
		t.Fatal("FastKronecker distinguishable from RMAT")
	}
	if res.Indistinguishable("TeG", 0.001) {
		t.Fatal("TeG indistinguishable from RMAT — the Figure 8 contrast is gone")
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestFig9Shapes(t *testing.T) {
	res, err := Fig9(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Oscillation) != 3 {
		t.Fatalf("oscillation points %d", len(res.Oscillation))
	}
	if !(res.Oscillation[0] > res.Oscillation[1] && res.Oscillation[1] > res.Oscillation[2]) {
		t.Fatalf("oscillation not monotone decreasing: %v", res.Oscillation)
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestFig10Shapes(t *testing.T) {
	res, err := Fig10(1<<13, 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutSkewness < 1 {
		t.Fatalf("out skewness %v; expected Zipfian tail", res.OutSkewness)
	}
	if math.Abs(res.InSkewness) > 0.4 {
		t.Fatalf("in skewness %v; expected Gaussian", res.InSkewness)
	}
	if math.Abs(res.InMean-res.InWantMean) > 0.05*res.InWantMean {
		t.Fatalf("in mean %v, want %v", res.InMean, res.InWantMean)
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestFig11aShapes(t *testing.T) {
	scales := []int{11, 12, 13}
	res, err := Fig11a(scales, 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	top := scales[len(scales)-1]
	// The in-memory baselines O.O.M. at the top scale under the cap;
	// TrillionG and RMAT-disk survive.
	if !res.OOM("RMAT-mem", top) || !res.OOM("FastKronecker", top) {
		t.Fatal("expected O.O.M. for in-memory baselines at the top scale")
	}
	if res.OOM("TrillionG/seq", top) || res.Time("TrillionG/seq", top) == 0 {
		t.Fatal("TrillionG/seq should survive the cap")
	}
	if res.Time("RMAT-disk", top) == 0 {
		t.Fatal("RMAT-disk should survive the cap")
	}
	// TrillionG/seq beats RMAT-disk (the 18.5x of the paper; require 2x).
	if res.Time("TrillionG/seq", top)*2 > res.Time("RMAT-disk", top) {
		t.Fatalf("TrillionG/seq %v not clearly faster than RMAT-disk %v",
			res.Time("TrillionG/seq", top), res.Time("RMAT-disk", top))
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestFig11bShapes(t *testing.T) {
	scales := []int{12, 13}
	res, err := Fig11b(scales, clusterForTest(), 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	top := scales[len(scales)-1]
	adj := res.Time("TrillionG (ADJ6)", top)
	tsv := res.Time("TrillionG (TSV)", top)
	disk := res.Time("RMAT/p-disk", top)
	if adj == 0 || tsv == 0 || disk == 0 {
		t.Fatalf("missing cells: %v %v %v", adj, tsv, disk)
	}
	// At test scales the store-time difference between formats is ~1ms
	// while compute noise is comparable, so compare bytes (deterministic)
	// and allow 20% timing slack; at paper scales storage dominates and
	// the ordering is strict.
	var adjBytes, tsvBytes int64
	for _, row := range res.Rows {
		if row.Scale != top {
			continue
		}
		switch row.Method {
		case "TrillionG (ADJ6)":
			adjBytes = row.Bytes
		case "TrillionG (TSV)":
			tsvBytes = row.Bytes
		}
	}
	if adjBytes >= tsvBytes {
		t.Fatalf("ADJ6 output %d bytes not below TSV %d", adjBytes, tsvBytes)
	}
	if float64(adj) > 1.2*float64(tsv) {
		t.Fatalf("ADJ6 %v much slower than TSV %v", adj, tsv)
	}
	if adj*2 > disk {
		t.Fatalf("TrillionG ADJ6 %v not clearly faster than RMAT/p-disk %v", adj, disk)
	}
	res.Report().Print(&bytes.Buffer{})
}

func clusterForTest() cluster.Config {
	return cluster.Config{
		Machines: 4, ThreadsPerMachine: 2,
		BandwidthBytesPerSec: cluster.OneGbE, LatencySec: 0.001,
	}
}

func TestFig12Shapes(t *testing.T) {
	res, err := Fig12([]int{12, 13, 14, 15}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Time roughly doubles per scale; peak memory grows much slower
	// than time over the sweep.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	timeGrowth := float64(last.Elapsed) / float64(first.Elapsed)
	memGrowth := float64(last.PeakMem) / float64(first.PeakMem)
	if timeGrowth < 3 {
		t.Fatalf("time growth %v over 3 scales; expected ≈8", timeGrowth)
	}
	// Peak memory is O(d_max), which grows ≈1.52x per scale for this
	// seed (paper Fig 12b) vs 2x for time: ≈3.5x vs 8x over 3 scales.
	if memGrowth > 0.85*timeGrowth {
		t.Fatalf("memory growth %v not clearly below time growth %v", memGrowth, timeGrowth)
	}
	perScale := math.Pow(memGrowth, 1.0/3)
	if perScale > 1.8 {
		t.Fatalf("memory growth per scale %v; expected ≈1.52 (sublinear in |E|)", perScale)
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestFig13Shapes(t *testing.T) {
	res, err := Fig13(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("cells %d", len(res.Rows))
	}
	allOff := res.Time(false, false, false)
	allOn := res.Time(true, true, true)
	if allOn == 0 || allOff == 0 {
		t.Fatal("missing cells")
	}
	// The paper reports ~8x end to end; require 1.5x to stay robust.
	if float64(allOff) < 1.5*float64(allOn) {
		t.Fatalf("all-on %v not clearly faster than all-off %v", allOn, allOff)
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestFig14Shapes(t *testing.T) {
	const sc = 13
	res, err := Fig14([]int{sc}, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	g1 := res.Time("Graph500", "1G", sc)
	gIB := res.Time("Graph500", "IB", sc)
	t1 := res.Time("TrillionG", "1G", sc)
	tIB := res.Time("TrillionG", "IB", sc)
	if g1 == 0 || gIB == 0 || t1 == 0 || tIB == 0 {
		t.Fatal("missing cells")
	}
	// The network dependence is the deterministic byte-over-bandwidth
	// model: Graph500 pays heavily on 1G, almost nothing on IB, and
	// TrillionG pays ~nothing either way. (Total times additionally
	// carry host compute noise of a few ms, so they are reported but
	// asserted only through the network component.)
	g1Net := res.Network("Graph500", "1G", sc)
	gIBNet := res.Network("Graph500", "IB", sc)
	t1Net := res.Network("TrillionG", "1G", sc)
	if g1Net < 5*gIBNet {
		t.Fatalf("Graph500 network 1G %v not ≫ IB %v", g1Net, gIBNet)
	}
	if t1Net*5 > g1Net {
		t.Fatalf("TrillionG 1G network %v not ≪ Graph500's %v", t1Net, g1Net)
	}
	// Construction ratio: Graph500 ≫ TrillionG on the slow network. A
	// single GC pause can spike one TrillionG leg's tiny construct
	// phase, so take the min over both network legs (the quantity is
	// network-independent for TrillionG).
	tgRatio := res.Ratio("TrillionG", "1G", sc)
	if r := res.Ratio("TrillionG", "IB", sc); r >= 0 && r < tgRatio {
		tgRatio = r
	}
	if res.Ratio("Graph500", "1G", sc) < 2*tgRatio {
		t.Fatalf("construction ratios not separated: g5 %v vs tg %v",
			res.Ratio("Graph500", "1G", sc), tgRatio)
	}
	res.Report().Print(&bytes.Buffer{})
}

func TestBalanceShapes(t *testing.T) {
	res, err := Balance(14, 8)
	if err != nil {
		t.Fatal(err)
	}
	naive := res.Skew("equal vertex ranges")
	planned := res.Skew("AVS plan (Figure 6)")
	if naive < 1.5 {
		t.Fatalf("naive skew %v; skewed seed should imbalance equal ranges", naive)
	}
	if planned > 1.2 {
		t.Fatalf("planned skew %v; Figure 6 should balance within 20%%", planned)
	}
	res.Report().Print(&bytes.Buffer{})
}
