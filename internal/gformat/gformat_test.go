package gformat

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatString(t *testing.T) {
	cases := map[Format]string{TSV: "TSV", ADJ6: "ADJ6", CSR6: "CSR6"}
	for f, want := range cases {
		if f.String() != want {
			t.Fatalf("String(%d) = %q, want %q", int(f), f.String(), want)
		}
	}
	if got := Format(99).String(); got != "Format(99)" {
		t.Fatalf("unknown format string = %q", got)
	}
}

func TestParseFormat(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Format
	}{{"tsv", TSV}, {"TSV", TSV}, {"adj6", ADJ6}, {"adj", ADJ6}, {"csr6", CSR6}, {"csr", CSR6}} {
		got, err := ParseFormat(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseFormat(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseFormat("edgelist"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestPut48Get48RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		id := int64(v & uint64(MaxVertexID))
		var b [6]byte
		put48(b[:], id)
		return get48(b[:]) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTSVWriter(&buf)
	scopes := map[int64][]int64{
		0:   {5, 2, 9},
		7:   {0},
		123: {456, 789},
	}
	var want []Edge
	for _, src := range []int64{0, 7, 123} {
		if err := w.WriteScope(src, scopes[src]); err != nil {
			t.Fatal(err)
		}
		for _, d := range scopes[src] {
			want = append(want, Edge{src, d})
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.EdgesWritten() != 6 {
		t.Fatalf("EdgesWritten = %d, want 6", w.EdgesWritten())
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, buffer has %d", w.BytesWritten(), buf.Len())
	}
	r := NewTSVReader(&buf)
	var got []Edge
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch: got %v, want %v", got, want)
	}
}

func TestTSVReaderMalformed(t *testing.T) {
	for _, in := range []string{"1 2\n", "a\t2\n", "1\tb\n"} {
		r := NewTSVReader(strings.NewReader(in))
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Fatalf("input %q: expected parse error, got %v", in, err)
		}
	}
}

func TestADJ6RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewADJ6Writer(&buf)
	type rec struct {
		src  int64
		dsts []int64
	}
	recs := []rec{
		{1, []int64{2, 3, MaxVertexID}},
		{42, []int64{0}},
		{MaxVertexID, []int64{7, 7, 8}},
	}
	for _, rc := range recs {
		if err := w.WriteScope(rc.src, rc.dsts); err != nil {
			t.Fatal(err)
		}
	}
	// Empty scope is skipped entirely.
	if err := w.WriteScope(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.EdgesWritten() != 7 {
		t.Fatalf("EdgesWritten = %d, want 7", w.EdgesWritten())
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, buffer %d", w.BytesWritten(), buf.Len())
	}
	r := NewADJ6Reader(&buf)
	for i := 0; ; i++ {
		src, dsts, err := r.Next()
		if err == io.EOF {
			if i != len(recs) {
				t.Fatalf("read %d records, want %d", i, len(recs))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if src != recs[i].src || !reflect.DeepEqual(dsts, recs[i].dsts) {
			t.Fatalf("record %d: got (%d, %v), want %+v", i, src, dsts, recs[i])
		}
	}
}

func TestADJ6RejectsOutOfRangeIDs(t *testing.T) {
	w := NewADJ6Writer(io.Discard)
	if err := w.WriteScope(MaxVertexID+1, []int64{1}); err == nil {
		t.Fatal("expected error for oversized source")
	}
	if err := w.WriteScope(1, []int64{-1}); err == nil {
		t.Fatal("expected error for negative destination")
	}
}

func TestADJ6TruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewADJ6Writer(&buf)
	if err := w.WriteScope(3, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	r := NewADJ6Reader(bytes.NewReader(trunc))
	if _, _, err := r.Next(); err == nil {
		t.Fatal("expected truncation error")
	}
}

func csrTempFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "g.csr6"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestCSR6RoundTrip(t *testing.T) {
	f := csrTempFile(t)
	const nv = 8
	w, err := NewCSR6Writer(f, nv)
	if err != nil {
		t.Fatal(err)
	}
	scopes := map[int64][]int64{
		0: {3, 1, 2}, // unsorted on purpose; CSR must sort
		2: {7},
		5: {6, 4},
		7: {0, 0, 5}, // duplicate destinations preserved as given
	}
	for _, src := range []int64{0, 2, 5, 7} {
		if err := w.WriteScope(src, scopes[src]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.EdgesWritten() != 9 {
		t.Fatalf("EdgesWritten = %d, want 9", w.EdgesWritten())
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSR6(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != nv || g.NumEdges() != 9 {
		t.Fatalf("loaded %d vertices %d edges", g.NumVertices, g.NumEdges())
	}
	for v := int64(0); v < nv; v++ {
		adj := g.Adj(v)
		wantAdj := append([]int64(nil), scopes[v]...)
		sort.Slice(wantAdj, func(i, j int) bool { return wantAdj[i] < wantAdj[j] })
		if len(wantAdj) == 0 {
			wantAdj = nil
		}
		var gotAdj []int64
		if len(adj) > 0 {
			gotAdj = append(gotAdj, adj...)
		}
		if !reflect.DeepEqual(gotAdj, wantAdj) {
			t.Fatalf("vertex %d: adj %v, want %v", v, gotAdj, wantAdj)
		}
		if g.Degree(v) != int64(len(wantAdj)) {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(v), len(wantAdj))
		}
	}
}

func TestCSR6RequiresIncreasingSources(t *testing.T) {
	f := csrTempFile(t)
	w, err := NewCSR6Writer(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteScope(4, []int64{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteScope(4, []int64{2}); err == nil {
		t.Fatal("expected error for repeated source")
	}
	if err := w.WriteScope(3, []int64{2}); err == nil {
		t.Fatal("expected error for decreasing source")
	}
	if err := w.WriteScope(10, []int64{2}); err == nil {
		t.Fatal("expected error for source beyond vertex count")
	}
}

func TestCSR6CloseIdempotent(t *testing.T) {
	f := csrTempFile(t)
	w, err := NewCSR6Writer(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteScope(1, []int64{0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSR6BadMagic(t *testing.T) {
	if _, err := ReadCSR6(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestDiscardWriterCounts(t *testing.T) {
	d := NewDiscardWriter(ADJ6)
	if err := d.WriteScope(1, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if d.EdgesWritten() != 3 {
		t.Fatalf("edges %d, want 3", d.EdgesWritten())
	}
	if d.BytesWritten() != 10+18 {
		t.Fatalf("bytes %d, want 28", d.BytesWritten())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiscardTSVMatchesReal: the discard writer's TSV byte accounting
// matches the real TSV writer exactly.
func TestDiscardTSVMatchesReal(t *testing.T) {
	var buf bytes.Buffer
	real := NewTSVWriter(&buf)
	disc := NewDiscardWriter(TSV)
	write := func(src int64, dsts []int64) {
		if err := real.WriteScope(src, dsts); err != nil {
			t.Fatal(err)
		}
		if err := disc.WriteScope(src, dsts); err != nil {
			t.Fatal(err)
		}
	}
	write(0, []int64{0, 10, 100, 12345})
	write(999999, []int64{MaxVertexID})
	if err := real.Close(); err != nil {
		t.Fatal(err)
	}
	if real.BytesWritten() != disc.BytesWritten() {
		t.Fatalf("real %d bytes, discard %d", real.BytesWritten(), disc.BytesWritten())
	}
}

// TestADJ6SmallerThanTSV mirrors the paper's claim that ADJ6 files are
// 3–4x smaller than TSV for large-ID graphs.
func TestADJ6SmallerThanTSV(t *testing.T) {
	tsv := NewDiscardWriter(TSV)
	adj := NewDiscardWriter(ADJ6)
	base := int64(1) << 37 // 12-digit IDs, the regime the claim targets
	for src := int64(0); src < 100; src++ {
		dsts := make([]int64, 16)
		for i := range dsts {
			dsts[i] = base + src*31 + int64(i)*977
		}
		if err := tsv.WriteScope(base+src, dsts); err != nil {
			t.Fatal(err)
		}
		if err := adj.WriteScope(base+src, dsts); err != nil {
			t.Fatal(err)
		}
	}
	ratio := float64(tsv.BytesWritten()) / float64(adj.BytesWritten())
	if ratio < 2 || ratio > 5 {
		t.Fatalf("TSV/ADJ6 size ratio %v, want within [2, 5]", ratio)
	}
}

func BenchmarkTSVWrite(b *testing.B) {
	w := NewTSVWriter(io.Discard)
	dsts := make([]int64, 16)
	for i := range dsts {
		dsts[i] = int64(i) * 1000003
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteScope(int64(i), dsts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkADJ6Write(b *testing.B) {
	w := NewADJ6Writer(io.Discard)
	dsts := make([]int64, 16)
	for i := range dsts {
		dsts[i] = int64(i) * 1000003
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteScope(int64(i), dsts); err != nil {
			b.Fatal(err)
		}
	}
}
