package gformat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// CheckCSR6 structurally validates a CSR6 file without loading it: the
// magic, the header's vertex/edge counts against the file size
// (header + offsets + neighbours must account for every byte), and the
// final offset against the declared edge count. It catches truncation
// and torn writes in O(1) I/O; it does not re-read the adjacency
// payload, so callers needing bit-level certainty should pair it with a
// checksum.
func CheckCSR6(rs io.ReadSeeker) error {
	size, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return err
	}
	head := make([]byte, csrHeaderSize)
	if _, err := io.ReadFull(rs, head); err != nil {
		return fmt.Errorf("gformat: reading CSR6 header: %w", err)
	}
	for i, m := range csrMagic {
		if head[i] != m {
			return errors.New("gformat: not a CSR6 file (bad magic)")
		}
	}
	nv := int64(binary.LittleEndian.Uint64(head[8:]))
	ne := int64(binary.LittleEndian.Uint64(head[16:]))
	if nv < 0 || nv > MaxVertexID+1 || ne < 0 {
		return fmt.Errorf("gformat: CSR6 header declares %d vertices / %d edges", nv, ne)
	}
	want := int64(csrHeaderSize) + 8*(nv+1) + 6*ne
	if size != want {
		return fmt.Errorf("gformat: CSR6 file is %d bytes, header implies %d", size, want)
	}
	// The last offset must close the neighbour section exactly.
	if _, err := rs.Seek(int64(csrHeaderSize)+8*nv, io.SeekStart); err != nil {
		return err
	}
	var ob [8]byte
	if _, err := io.ReadFull(rs, ob[:]); err != nil {
		return fmt.Errorf("gformat: reading CSR6 final offset: %w", err)
	}
	if last := binary.LittleEndian.Uint64(ob[:]); last != uint64(ne) {
		return fmt.Errorf("gformat: CSR6 offset table ends at %d, want %d edges", last, ne)
	}
	return nil
}
