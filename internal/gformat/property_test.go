package gformat

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestADJ6RoundTripProperty: random scopes survive a write/read cycle
// bit-exactly, for arbitrary sizes and 48-bit IDs.
func TestADJ6RoundTripProperty(t *testing.T) {
	src := rng.New(99)
	f := func(nScopes uint8, seed uint16) bool {
		var buf bytes.Buffer
		w := NewADJ6Writer(&buf)
		type rec struct {
			src  int64
			dsts []int64
		}
		var want []rec
		n := int(nScopes)%20 + 1
		for i := 0; i < n; i++ {
			r := rec{src: src.Int63n(MaxVertexID + 1)}
			deg := int(src.Int63n(40))
			for j := 0; j < deg; j++ {
				r.dsts = append(r.dsts, src.Int63n(MaxVertexID+1))
			}
			if err := w.WriteScope(r.src, r.dsts); err != nil {
				return false
			}
			if deg > 0 {
				want = append(want, r)
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		rd := NewADJ6Reader(&buf)
		for _, wrec := range want {
			gsrc, gdsts, err := rd.Next()
			if err != nil || gsrc != wrec.src || len(gdsts) != len(wrec.dsts) {
				return false
			}
			for i := range gdsts {
				if gdsts[i] != wrec.dsts[i] {
					return false
				}
			}
		}
		_, _, err := rd.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTSVRoundTripProperty: random edges survive text serialization.
func TestTSVRoundTripProperty(t *testing.T) {
	src := rng.New(101)
	f := func(n uint8) bool {
		var buf bytes.Buffer
		w := NewTSVWriter(&buf)
		var want []Edge
		for i := 0; i < int(n)%50+1; i++ {
			e := Edge{Src: src.Int63n(1 << 48), Dst: src.Int63n(1 << 48)}
			want = append(want, e)
			if err := w.WriteScope(e.Src, []int64{e.Dst}); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r := NewTSVReader(&buf)
		for _, e := range want {
			got, err := r.Next()
			if err != nil || got != e {
				return false
			}
		}
		_, err := r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// FuzzTSVReader: arbitrary bytes never panic the text parser.
func FuzzTSVReader(f *testing.F) {
	f.Add([]byte("1\t2\n3\t4\n"))
	f.Add([]byte("\t\n\t\t\n"))
	f.Add([]byte("9999999999999999999999\t1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewTSVReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}

// FuzzADJ6Reader: arbitrary bytes never panic the binary parser (it may
// error, and over-large counts must not OOM thanks to the cap below).
func FuzzADJ6Reader(f *testing.F) {
	var buf bytes.Buffer
	w := NewADJ6Writer(&buf)
	w.WriteScope(7, []int64{1, 2, 3})
	w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte{0, 1, 2, 3, 4, 5, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewADJ6Reader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			if _, _, err := r.Next(); err != nil {
				return
			}
		}
	})
}

// FuzzReadCSR6: corrupt CSR headers error cleanly without huge
// allocations or panics.
func FuzzReadCSR6(f *testing.F) {
	f.Add(make([]byte, 24))
	f.Add(append([]byte("CSR6\x00\x00\x00\x01"), make([]byte, 64)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		ReadCSR6(bytes.NewReader(data))
	})
}
