// Package gformat implements the three on-disk graph formats of the
// TrillionG system (Section 5):
//
//   - TSV:  one "src<TAB>dst\n" line per edge; verbose but universal.
//   - ADJ6: binary adjacency lists; per source vertex, a 6-byte vertex
//     ID, a 4-byte neighbour count and 6-byte neighbour IDs, in the
//     order scopes were generated.
//   - CSR6: like ADJ6 but globally sorted — vertices appear in ID order
//     with sorted adjacency lists, split into an offsets section and a
//     neighbours section (a compressed sparse row image).
//
// The 6-byte little-endian vertex representation supports |V| ≤ 2^48,
// which covers the paper's largest runs (Scale 38). Writers count the
// bytes and edges they emit so experiment harnesses can report format
// overheads; readers exist for every format so tests can round-trip.
package gformat

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Edge is one directed edge.
type Edge struct {
	Src, Dst int64
}

// MaxVertexID is the largest vertex ID representable in 6 bytes.
const MaxVertexID = int64(1)<<48 - 1

// Format identifies an output format.
type Format int

const (
	// TSV is the text edge-list format.
	TSV Format = iota
	// ADJ6 is the 6-byte binary adjacency-list format.
	ADJ6
	// CSR6 is the 6-byte compressed-sparse-row binary format.
	CSR6
)

// String returns the conventional name of the format.
func (f Format) String() string {
	switch f {
	case TSV:
		return "TSV"
	case ADJ6:
		return "ADJ6"
	case CSR6:
		return "CSR6"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat converts a name ("tsv", "adj6", "csr6", case-insensitive
// by convention of lower input) to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "tsv", "TSV":
		return TSV, nil
	case "adj6", "ADJ6", "adj":
		return ADJ6, nil
	case "csr6", "CSR6", "csr":
		return CSR6, nil
	default:
		return 0, fmt.Errorf("gformat: unknown format %q", s)
	}
}

// Writer is the sink interface generators write scopes into. WriteScope
// emits one source vertex's adjacency list; implementations may require
// the destination slice to remain valid only for the duration of the
// call.
type Writer interface {
	WriteScope(src int64, dsts []int64) error
	// Close flushes buffered data. Writers must be closed before their
	// counters are final.
	Close() error
	// BytesWritten returns the number of payload bytes emitted so far.
	BytesWritten() int64
	// EdgesWritten returns the number of edges emitted so far.
	EdgesWritten() int64
}

func put48(buf []byte, v int64) {
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
	buf[2] = byte(v >> 16)
	buf[3] = byte(v >> 24)
	buf[4] = byte(v >> 32)
	buf[5] = byte(v >> 40)
}

func get48(buf []byte) int64 {
	return int64(buf[0]) | int64(buf[1])<<8 | int64(buf[2])<<16 |
		int64(buf[3])<<24 | int64(buf[4])<<32 | int64(buf[5])<<40
}

func checkID(v int64) error {
	if v < 0 || v > MaxVertexID {
		return fmt.Errorf("gformat: vertex ID %d outside 6-byte range", v)
	}
	return nil
}

// countingWriter wraps an io.Writer and tracks payload bytes.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// TSVWriter writes the text edge-list format.
type TSVWriter struct {
	cw    *countingWriter
	bw    *bufio.Writer
	edges int64
	buf   []byte
}

// NewTSVWriter returns a TSV writer over w.
func NewTSVWriter(w io.Writer) *TSVWriter {
	cw := &countingWriter{w: w}
	return &TSVWriter{cw: cw, bw: bufio.NewWriterSize(cw, 1<<16), buf: make([]byte, 0, 48)}
}

// WriteScope implements Writer.
func (t *TSVWriter) WriteScope(src int64, dsts []int64) error {
	for _, d := range dsts {
		t.buf = t.buf[:0]
		t.buf = strconv.AppendInt(t.buf, src, 10)
		t.buf = append(t.buf, '\t')
		t.buf = strconv.AppendInt(t.buf, d, 10)
		t.buf = append(t.buf, '\n')
		if _, err := t.bw.Write(t.buf); err != nil {
			return err
		}
	}
	t.edges += int64(len(dsts))
	return nil
}

// Close implements Writer.
func (t *TSVWriter) Close() error { return t.bw.Flush() }

// BytesWritten implements Writer.
func (t *TSVWriter) BytesWritten() int64 { return t.cw.n + int64(t.bw.Buffered()) }

// EdgesWritten implements Writer.
func (t *TSVWriter) EdgesWritten() int64 { return t.edges }

// ADJ6Writer writes the 6-byte binary adjacency-list format. Scopes are
// emitted in arrival order; empty scopes are skipped (a vertex with no
// out-edges simply never appears, as in the paper's per-scope files).
type ADJ6Writer struct {
	cw    *countingWriter
	bw    *bufio.Writer
	edges int64
	buf   []byte
}

// NewADJ6Writer returns an ADJ6 writer over w.
func NewADJ6Writer(w io.Writer) *ADJ6Writer {
	cw := &countingWriter{w: w}
	return &ADJ6Writer{cw: cw, bw: bufio.NewWriterSize(cw, 1<<16)}
}

// WriteScope implements Writer.
func (a *ADJ6Writer) WriteScope(src int64, dsts []int64) error {
	if len(dsts) == 0 {
		return nil
	}
	if err := checkID(src); err != nil {
		return err
	}
	need := 10 + 6*len(dsts)
	if cap(a.buf) < need {
		a.buf = make([]byte, need)
	}
	b := a.buf[:need]
	put48(b, src)
	binary.LittleEndian.PutUint32(b[6:], uint32(len(dsts)))
	off := 10
	for _, d := range dsts {
		if err := checkID(d); err != nil {
			return err
		}
		put48(b[off:], d)
		off += 6
	}
	if _, err := a.bw.Write(b); err != nil {
		return err
	}
	a.edges += int64(len(dsts))
	return nil
}

// Close implements Writer.
func (a *ADJ6Writer) Close() error { return a.bw.Flush() }

// BytesWritten implements Writer.
func (a *ADJ6Writer) BytesWritten() int64 { return a.cw.n + int64(a.bw.Buffered()) }

// EdgesWritten implements Writer.
func (a *ADJ6Writer) EdgesWritten() int64 { return a.edges }

// CSR6Writer writes the compressed-sparse-row format. It requires scopes
// to arrive in strictly increasing source order (TrillionG's partitioner
// guarantees contiguous, ordered vertex ranges per worker) and sorts
// each adjacency list. Layout:
//
//	header: 8-byte magic "CSR6\x00\x00\x00\x01", 8-byte numVertices,
//	        8-byte numEdges
//	offsets: numVertices+1 little-endian uint64 edge offsets
//	neighbours: numEdges 6-byte destination IDs
//
// Because offsets precede neighbours, the writer buffers per-vertex
// degrees in memory (8 bytes/vertex) and streams neighbours to a
// temporary section via the caller-provided io.WriteSeeker.
type CSR6Writer struct {
	ws          io.WriteSeeker
	numVertices int64
	degrees     []uint32
	edges       int64
	lastSrc     int64
	neighboursW *bufio.Writer
	cw          *countingWriter
	closed      bool
	scratch     []int64
}

const csrHeaderSize = 24

// csrMagic identifies CSR6 files (version 1).
var csrMagic = [8]byte{'C', 'S', 'R', '6', 0, 0, 0, 1}

// NewCSR6Writer returns a CSR6 writer over ws for a graph of
// numVertices vertices. The neighbour section is written as scopes
// arrive; offsets are backfilled on Close.
func NewCSR6Writer(ws io.WriteSeeker, numVertices int64) (*CSR6Writer, error) {
	if numVertices < 0 || numVertices > MaxVertexID+1 {
		return nil, fmt.Errorf("gformat: vertex count %d out of range", numVertices)
	}
	c := &CSR6Writer{
		ws:          ws,
		numVertices: numVertices,
		degrees:     make([]uint32, numVertices),
		lastSrc:     -1,
	}
	// Reserve header + offsets; neighbours stream after them.
	start := int64(csrHeaderSize + 8*(numVertices+1))
	if _, err := ws.Seek(start, io.SeekStart); err != nil {
		return nil, err
	}
	c.cw = &countingWriter{w: ws, n: start}
	c.neighboursW = bufio.NewWriterSize(c.cw, 1<<16)
	return c, nil
}

// WriteScope implements Writer. Sources must be strictly increasing.
func (c *CSR6Writer) WriteScope(src int64, dsts []int64) error {
	if src <= c.lastSrc {
		return fmt.Errorf("gformat: CSR6 requires increasing sources, got %d after %d", src, c.lastSrc)
	}
	if src >= c.numVertices {
		return fmt.Errorf("gformat: source %d beyond vertex count %d", src, c.numVertices)
	}
	c.lastSrc = src
	if len(dsts) == 0 {
		return nil
	}
	c.scratch = append(c.scratch[:0], dsts...)
	sort.Slice(c.scratch, func(i, j int) bool { return c.scratch[i] < c.scratch[j] })
	var b [6]byte
	for _, d := range c.scratch {
		if err := checkID(d); err != nil {
			return err
		}
		put48(b[:], d)
		if _, err := c.neighboursW.Write(b[:]); err != nil {
			return err
		}
	}
	c.degrees[src] = uint32(len(dsts))
	c.edges += int64(len(dsts))
	return nil
}

// Close flushes neighbours and backfills the header and offset table.
func (c *CSR6Writer) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if err := c.neighboursW.Flush(); err != nil {
		return err
	}
	if _, err := c.ws.Seek(0, io.SeekStart); err != nil {
		return err
	}
	head := make([]byte, csrHeaderSize)
	copy(head, csrMagic[:])
	binary.LittleEndian.PutUint64(head[8:], uint64(c.numVertices))
	binary.LittleEndian.PutUint64(head[16:], uint64(c.edges))
	if _, err := c.ws.Write(head); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(c.ws, 1<<16)
	var off uint64
	var b [8]byte
	for v := int64(0); v <= c.numVertices; v++ {
		binary.LittleEndian.PutUint64(b[:], off)
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
		if v < c.numVertices {
			off += uint64(c.degrees[v])
		}
	}
	c.cw.n += csrHeaderSize + 8*(c.numVertices+1)
	return bw.Flush()
}

// BytesWritten implements Writer. Final only after Close (the offset
// table is backfilled then).
func (c *CSR6Writer) BytesWritten() int64 { return c.cw.n + int64(c.neighboursW.Buffered()) }

// EdgesWritten implements Writer.
func (c *CSR6Writer) EdgesWritten() int64 { return c.edges }

// DiscardWriter counts scopes without materializing bytes. It models the
// cost boundary "generation only, no I/O" used by some ablations, and
// charges the byte cost of a chosen format so network/disk models can
// reuse it.
type DiscardWriter struct {
	format Format
	bytes  int64
	edges  int64
}

// NewDiscardWriter returns a DiscardWriter charging format's byte costs.
func NewDiscardWriter(format Format) *DiscardWriter {
	return &DiscardWriter{format: format}
}

// WriteScope implements Writer.
func (d *DiscardWriter) WriteScope(src int64, dsts []int64) error {
	if len(dsts) == 0 {
		return nil
	}
	switch d.format {
	case TSV:
		for _, dst := range dsts {
			d.bytes += int64(decimalLen(src) + decimalLen(dst) + 2)
		}
	case ADJ6:
		d.bytes += 10 + 6*int64(len(dsts))
	case CSR6:
		d.bytes += 6 * int64(len(dsts)) // amortized; offsets charged per vertex below
		d.bytes += 8
	}
	d.edges += int64(len(dsts))
	return nil
}

func decimalLen(v int64) int {
	if v == 0 {
		return 1
	}
	n := 0
	if v < 0 {
		n++
		v = -v
	}
	for ; v > 0; v /= 10 {
		n++
	}
	return n
}

// Close implements Writer.
func (d *DiscardWriter) Close() error { return nil }

// BytesWritten implements Writer.
func (d *DiscardWriter) BytesWritten() int64 { return d.bytes }

// EdgesWritten implements Writer.
func (d *DiscardWriter) EdgesWritten() int64 { return d.edges }

// --- Readers ---

// TSVReader streams edges from the text format.
type TSVReader struct {
	sc  *bufio.Scanner
	err error
}

// NewTSVReader returns a reader over r.
func NewTSVReader(r io.Reader) *TSVReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &TSVReader{sc: sc}
}

// Next returns the next edge, or io.EOF.
func (t *TSVReader) Next() (Edge, error) {
	if t.err != nil {
		return Edge{}, t.err
	}
	if !t.sc.Scan() {
		if err := t.sc.Err(); err != nil {
			t.err = err
		} else {
			t.err = io.EOF
		}
		return Edge{}, t.err
	}
	line := t.sc.Text()
	tab := -1
	for i := 0; i < len(line); i++ {
		if line[i] == '\t' {
			tab = i
			break
		}
	}
	if tab < 0 {
		t.err = fmt.Errorf("gformat: malformed TSV line %q", line)
		return Edge{}, t.err
	}
	src, err := strconv.ParseInt(line[:tab], 10, 64)
	if err != nil {
		t.err = fmt.Errorf("gformat: bad source in %q: %w", line, err)
		return Edge{}, t.err
	}
	dst, err := strconv.ParseInt(line[tab+1:], 10, 64)
	if err != nil {
		t.err = fmt.Errorf("gformat: bad destination in %q: %w", line, err)
		return Edge{}, t.err
	}
	return Edge{Src: src, Dst: dst}, nil
}

// ADJ6Reader streams adjacency lists from the binary format.
type ADJ6Reader struct {
	br *bufio.Reader
}

// NewADJ6Reader returns a reader over r.
func NewADJ6Reader(r io.Reader) *ADJ6Reader {
	return &ADJ6Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next (source, destinations) record, or io.EOF.
func (a *ADJ6Reader) Next() (int64, []int64, error) {
	var head [10]byte
	if _, err := io.ReadFull(a.br, head[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("gformat: truncated ADJ6 record: %w", err)
		}
		return 0, nil, err
	}
	src := get48(head[:])
	n := binary.LittleEndian.Uint32(head[6:])
	// Grow the slice as bytes actually arrive instead of trusting the
	// declared count: a corrupt header must produce a clean error, not
	// a multi-gigabyte allocation.
	const chunk = 4096
	dsts := make([]int64, 0, min64(int64(n), chunk))
	var b [6]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(a.br, b[:]); err != nil {
			return 0, nil, fmt.Errorf("gformat: truncated ADJ6 adjacency (%d of %d): %w", i, n, err)
		}
		dsts = append(dsts, get48(b[:]))
	}
	return src, dsts, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// CSRGraph is a fully loaded CSR6 file.
type CSRGraph struct {
	NumVertices int64
	Offsets     []uint64
	Neighbours  []int64
}

// NumEdges returns the edge count.
func (g *CSRGraph) NumEdges() int64 { return int64(len(g.Neighbours)) }

// Degree returns the out-degree of v.
func (g *CSRGraph) Degree(v int64) int64 {
	return int64(g.Offsets[v+1] - g.Offsets[v])
}

// Adj returns the (sorted) adjacency list of v, aliasing internal
// storage.
func (g *CSRGraph) Adj(v int64) []int64 {
	return g.Neighbours[g.Offsets[v]:g.Offsets[v+1]]
}

// ReadCSR6 loads a CSR6 file produced by CSR6Writer.
func ReadCSR6(r io.Reader) (*CSRGraph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, csrHeaderSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("gformat: reading CSR6 header: %w", err)
	}
	for i, m := range csrMagic {
		if head[i] != m {
			return nil, errors.New("gformat: not a CSR6 file (bad magic)")
		}
	}
	nv := int64(binary.LittleEndian.Uint64(head[8:]))
	ne := int64(binary.LittleEndian.Uint64(head[16:]))
	if nv < 0 || nv > MaxVertexID+1 || ne < 0 {
		return nil, fmt.Errorf("gformat: CSR6 header declares %d vertices / %d edges", nv, ne)
	}
	g := &CSRGraph{NumVertices: nv}
	// Incremental reads: corrupt headers must error, not allocate the
	// declared (possibly enormous) sizes up front.
	g.Offsets = make([]uint64, 0, min64(nv+1, 1<<16))
	var ob [8]byte
	for i := int64(0); i <= nv; i++ {
		if _, err := io.ReadFull(br, ob[:]); err != nil {
			return nil, fmt.Errorf("gformat: reading CSR6 offsets (%d of %d): %w", i, nv+1, err)
		}
		g.Offsets = append(g.Offsets, binary.LittleEndian.Uint64(ob[:]))
	}
	if g.Offsets[nv] != uint64(ne) {
		return nil, fmt.Errorf("gformat: CSR6 offset table ends at %d, want %d edges", g.Offsets[nv], ne)
	}
	g.Neighbours = make([]int64, 0, min64(ne, 1<<16))
	var b [6]byte
	for i := int64(0); i < ne; i++ {
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, fmt.Errorf("gformat: reading CSR6 neighbours (%d of %d): %w", i, ne, err)
		}
		g.Neighbours = append(g.Neighbours, get48(b[:]))
	}
	return g, nil
}
