// Package wesp implements WES/p (Algorithm 3), the merge-based parallel
// RMAT the paper calls RMAT/p: every worker generates |E|/P·(1+ε) edges
// over the whole adjacency matrix, the edges are shuffled so all copies
// of an edge land on one owner, and each owner merges its inbox while
// eliminating duplicates.
//
// Both variants of Section 3.2 are provided: WES/p-mem (in-memory
// dedup, O(|E|/P) space per worker — the Figure 11b baseline that hits
// O.O.M. first) and WES/p-disk (external-sort dedup). Ownership is by
// source vertex, which reproduces the workload skew the paper blames
// for RMAT/p's poor scaling: the machine that owns the hottest vertices
// receives a disproportionate inbox.
package wesp

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/extsort"
	"repro/internal/gformat"
	"repro/internal/memacct"
	"repro/internal/rmat"
	"repro/internal/rng"
	"repro/internal/skg"
)

// Config parameterizes a WES/p run.
type Config struct {
	Seed     skg.Seed
	Levels   int
	NumEdges int64
	// Epsilon is the duplicate-slack overshoot of Algorithm 3 (default
	// 0.01, the value the paper cites from [28, 35]).
	Epsilon float64
	// Cluster describes the simulated cluster.
	Cluster cluster.Config
	// Disk selects external-sort dedup (WES/p-disk).
	Disk bool
	// Dir is the spill directory (disk mode).
	Dir string
	// RunEdges bounds in-memory runs in disk mode (default 1<<20).
	RunEdges int
	// MemLimitBytes caps any single machine's tracked memory in mem
	// mode; exceeding it returns ErrOutOfMemory.
	MemLimitBytes int64
}

// ErrOutOfMemory reports a machine exceeding its memory cap.
var ErrOutOfMemory = fmt.Errorf("wesp: machine memory limit exceeded")

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Seed.Validate(); err != nil {
		return err
	}
	if c.Levels < 1 || c.Levels > 47 {
		return fmt.Errorf("wesp: levels %d outside [1, 47]", c.Levels)
	}
	if c.NumEdges < 1 {
		return fmt.Errorf("wesp: NumEdges %d < 1", c.NumEdges)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("wesp: negative epsilon")
	}
	if c.Disk && c.Dir == "" {
		return fmt.Errorf("wesp: disk mode needs a spill directory")
	}
	return c.Cluster.Validate()
}

// Result summarizes a run.
type Result struct {
	// Edges is the number of distinct edges after the global merge.
	Edges int64
	// Attempts counts all stochastic generations.
	Attempts int64
	// Sim carries the simulated-cluster timing (generation makespan,
	// shuffle transfer, merge makespan).
	Sim *cluster.Sim
	// PeakMachineBytes is the largest tracked working set of any
	// machine.
	PeakMachineBytes int64
}

// owner maps an edge to its owning worker: by source vertex, so the
// worker can emit adjacency data, and so all duplicates collide.
func owner(src int64, workers int) int {
	return int(rng.Mix64(0x5157, uint64(src)) % uint64(workers))
}

// Run executes WES/p. emit, when non-nil, receives every distinct edge
// during the merge phase (order unspecified).
func Run(cfg Config, masterSeed uint64, emit func(gformat.Edge) error) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Disk {
		return runDisk(cfg, masterSeed, emit)
	}
	return runMem(cfg, masterSeed, emit)
}

func runMem(cfg Config, masterSeed uint64, emit func(gformat.Edge) error) (Result, error) {
	sim, err := cluster.New(cfg.Cluster)
	if err != nil {
		return Result{}, err
	}
	res := Result{Sim: sim}
	workers := cfg.Cluster.Workers()
	machines := cfg.Cluster.Machines
	eps := cfg.Epsilon
	perWorker := int64(float64(cfg.NumEdges) / float64(workers) * (1 + eps))

	machineBytes := make([]int64, machines)
	charge := func(m int, b int64) error {
		machineBytes[m] += b
		if machineBytes[m] > res.PeakMachineBytes {
			res.PeakMachineBytes = machineBytes[m]
		}
		if cfg.MemLimitBytes > 0 && machineBytes[m] > cfg.MemLimitBytes {
			return ErrOutOfMemory
		}
		return nil
	}

	// Generation phase: per-worker local dedup (Algorithm 3 lines 2–6).
	local := make([]map[gformat.Edge]struct{}, workers)
	err = sim.RunPhase("generate", func(w cluster.Worker) error {
		src := rng.NewScoped(masterSeed, uint64(w.Index))
		set := make(map[gformat.Edge]struct{}, perWorker)
		for int64(len(set)) < perWorker {
			e := rmat.GenerateEdge(cfg.Seed, cfg.Levels, src)
			res.Attempts++
			if _, dup := set[e]; dup {
				continue
			}
			set[e] = struct{}{}
			if err := charge(w.Machine, memacct.EdgeBytes); err != nil {
				return err
			}
		}
		local[w.Index] = set
		return nil
	})
	if err != nil {
		return res, err
	}

	// Shuffle phase: route edges to owners; count cross-machine bytes.
	traffic := make([][]int64, machines)
	for i := range traffic {
		traffic[i] = make([]int64, machines)
	}
	inbox := make([][]gformat.Edge, workers)
	for wi, set := range local {
		fromMachine := wi / cfg.Cluster.ThreadsPerMachine
		for e := range set {
			o := owner(e.Src, workers)
			toMachine := o / cfg.Cluster.ThreadsPerMachine
			traffic[fromMachine][toMachine] += 12
			inbox[o] = append(inbox[o], e)
			// The copy in the inbox is charged to the receiving machine;
			// the sender frees its copy as it streams out.
			if err := charge(toMachine, memacct.EdgeBytes); err != nil {
				return res, err
			}
		}
		machineBytes[fromMachine] -= int64(len(set)) * memacct.EdgeBytes
		local[wi] = nil
	}
	if err := sim.AddTransfer("shuffle", traffic); err != nil {
		return res, err
	}

	// Merge phase: per-owner dedup (Algorithm 3 lines 8–9). The skew the
	// paper discusses shows up here: inbox sizes differ wildly.
	err = sim.RunPhase("merge", func(w cluster.Worker) error {
		set := make(map[gformat.Edge]struct{}, len(inbox[w.Index]))
		for _, e := range inbox[w.Index] {
			set[e] = struct{}{}
		}
		res.Edges += int64(len(set))
		if emit != nil {
			for e := range set {
				if err := emit(e); err != nil {
					return err
				}
			}
		}
		machineBytes[w.Machine] -= int64(len(inbox[w.Index])) * memacct.EdgeBytes
		inbox[w.Index] = nil
		return nil
	})
	return res, err
}

func runDisk(cfg Config, masterSeed uint64, emit func(gformat.Edge) error) (Result, error) {
	sim, err := cluster.New(cfg.Cluster)
	if err != nil {
		return Result{}, err
	}
	res := Result{Sim: sim}
	workers := cfg.Cluster.Workers()
	machines := cfg.Cluster.Machines
	runEdges := cfg.RunEdges
	if runEdges <= 0 {
		runEdges = 1 << 20
	}
	perWorker := int64(float64(cfg.NumEdges) / float64(workers) * (1 + cfg.Epsilon))

	// Generation phase: spill attempts to per-worker sorted runs.
	// Memory is tracked per machine so the peak is comparable with the
	// mem variant's per-machine accounting.
	accts := make([]memacct.Acct, machines)
	gen := make([]*extsort.Sorter, workers)
	err = sim.RunPhase("generate", func(w cluster.Worker) error {
		s, err := extsort.NewSorter(cfg.Dir, runEdges, &accts[w.Machine])
		if err != nil {
			return err
		}
		gen[w.Index] = s
		src := rng.NewScoped(masterSeed, uint64(w.Index))
		for i := int64(0); i < perWorker; i++ {
			if err := s.Add(rmat.GenerateEdge(cfg.Seed, cfg.Levels, src)); err != nil {
				return err
			}
			res.Attempts++
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	// Shuffle phase: stream each worker's sorted output and route
	// records into per-owner sorters, counting cross-machine bytes.
	inbox := make([]*extsort.Sorter, workers)
	for i := range inbox {
		s, err := extsort.NewSorter(cfg.Dir, runEdges, &accts[i/cfg.Cluster.ThreadsPerMachine])
		if err != nil {
			return res, err
		}
		inbox[i] = s
	}
	traffic := make([][]int64, machines)
	for i := range traffic {
		traffic[i] = make([]int64, machines)
	}
	err = sim.RunPhase("route", func(w cluster.Worker) error {
		_, err := gen[w.Index].Merge(func(e gformat.Edge) error {
			o := owner(e.Src, workers)
			traffic[w.Machine][o/cfg.Cluster.ThreadsPerMachine] += 12
			return inbox[o].Add(e)
		})
		return err
	})
	if err != nil {
		return res, err
	}
	if err := sim.AddTransfer("shuffle", traffic); err != nil {
		return res, err
	}

	// Merge phase: external-sort dedup per owner.
	err = sim.RunPhase("merge", func(w cluster.Worker) error {
		n, err := inbox[w.Index].Merge(func(e gformat.Edge) error {
			if emit != nil {
				return emit(e)
			}
			return nil
		})
		res.Edges += n
		return err
	})
	for i := range accts {
		if p := accts[i].Peak(); p > res.PeakMachineBytes {
			res.PeakMachineBytes = p
		}
	}
	return res, err
}
