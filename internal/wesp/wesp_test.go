package wesp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gformat"
	"repro/internal/skg"
)

func baseConfig() Config {
	return Config{
		Seed:     skg.Graph500Seed,
		Levels:   12,
		NumEdges: 1 << 15,
		Epsilon:  0.01,
		Cluster:  cluster.Config{Machines: 4, ThreadsPerMachine: 2, BandwidthBytesPerSec: cluster.OneGbE},
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := baseConfig()
	c.Levels = 0
	if err := c.Validate(); err == nil {
		t.Fatal("expected levels error")
	}
	c = baseConfig()
	c.Epsilon = -1
	if err := c.Validate(); err == nil {
		t.Fatal("expected epsilon error")
	}
	c = baseConfig()
	c.Disk = true
	if err := c.Validate(); err == nil {
		t.Fatal("expected dir error for disk mode")
	}
	c = baseConfig()
	c.Cluster.Machines = 0
	if err := c.Validate(); err == nil {
		t.Fatal("expected cluster error")
	}
}

func TestMemProducesApproxEdgeCount(t *testing.T) {
	cfg := baseConfig()
	seen := make(map[gformat.Edge]struct{})
	res, err := Run(cfg, 1, func(e gformat.Edge) error {
		if _, dup := seen[e]; dup {
			t.Fatalf("duplicate %v survived the merge", e)
		}
		seen[e] = struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(seen)) != res.Edges {
		t.Fatalf("emitted %d, reported %d", len(seen), res.Edges)
	}
	// WES/p converges to ≈|E| only as scale grows; the ε=0.01 slack does
	// not cover cross-worker duplicates at test scales (Section 3.2 notes
	// exactly this: the proper ε is unknowable in advance). Accept 12%.
	want := float64(cfg.NumEdges)
	if math.Abs(float64(res.Edges)-want) > 0.12*want {
		t.Fatalf("edges %d, want ≈ %d", res.Edges, cfg.NumEdges)
	}
	if res.Attempts < res.Edges {
		t.Fatal("attempts below distinct count")
	}
}

func TestMemRecordsPhases(t *testing.T) {
	cfg := baseConfig()
	res, err := Run(cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	phases := res.Sim.Phases()
	if len(phases) != 3 {
		t.Fatalf("phases %d, want generate/shuffle/merge", len(phases))
	}
	names := []string{"generate", "shuffle", "merge"}
	for i, p := range phases {
		if p.Name != names[i] {
			t.Fatalf("phase %d = %s", i, p.Name)
		}
	}
	if res.Sim.BytesShuffled() == 0 {
		t.Fatal("no shuffle traffic recorded")
	}
	if res.Sim.NetworkTime() <= 0 {
		t.Fatal("no network time charged")
	}
	if res.PeakMachineBytes <= 0 {
		t.Fatal("no memory tracked")
	}
}

func TestMemOutOfMemory(t *testing.T) {
	cfg := baseConfig()
	cfg.MemLimitBytes = 1024 // absurdly small
	_, err := Run(cfg, 3, nil)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestDiskMatchesMemApproximately(t *testing.T) {
	mem := baseConfig()
	memRes, err := Run(mem, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	disk := baseConfig()
	disk.Disk = true
	disk.Dir = t.TempDir()
	disk.RunEdges = 4096
	seen := make(map[gformat.Edge]struct{})
	diskRes, err := Run(disk, 4, func(e gformat.Edge) error {
		if _, dup := seen[e]; dup {
			t.Fatalf("duplicate %v from disk merge", e)
		}
		seen[e] = struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mem loops until each worker holds perWorker *distinct* edges while
	// disk spills a fixed number of attempts, so the totals agree only
	// statistically.
	if math.Abs(float64(diskRes.Edges)-float64(memRes.Edges)) > 0.05*float64(memRes.Edges) {
		t.Fatalf("disk %d edges, mem %d", diskRes.Edges, memRes.Edges)
	}
	if diskRes.PeakMachineBytes >= memRes.PeakMachineBytes {
		t.Fatalf("disk peak %d should undercut mem peak %d",
			diskRes.PeakMachineBytes, memRes.PeakMachineBytes)
	}
}

// TestMergeSkewVisible: with ownership by source vertex, the merge phase
// must show load imbalance (skew > 1), the Section 3.2 observation.
func TestMergeSkewVisible(t *testing.T) {
	cfg := baseConfig()
	cfg.Levels = 14
	cfg.NumEdges = 1 << 16
	res, err := Run(cfg, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mergeSkew float64
	for _, p := range res.Sim.Phases() {
		if p.Name == "merge" {
			mergeSkew = p.Skew()
		}
	}
	if mergeSkew < 1.05 {
		t.Fatalf("merge skew %v; expected visible imbalance", mergeSkew)
	}
}

// TestDeterministic: same seed, same distinct edge count.
func TestDeterministic(t *testing.T) {
	cfg := baseConfig()
	a, err := Run(cfg, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Edges != b.Edges || a.Attempts != b.Attempts {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Edges, b.Edges)
	}
}
