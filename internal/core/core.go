// Package core is the TrillionG system of Section 5: it plans an
// AVS-level partition of the vertex space (Figure 6), runs one worker
// per partition generating scopes with the recursive vector model
// (Algorithm 4), and streams each worker's adjacency lists into its own
// format writer (TSV, ADJ6 or CSR6) — no shuffle, no global merge, and
// O(d_max) working memory per worker.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/avs"
	"repro/internal/gformat"
	"repro/internal/memacct"
	"repro/internal/partition"
	"repro/internal/recvec"
	"repro/internal/rng"
	"repro/internal/skg"
	"repro/internal/telemetry"
)

// Config parameterizes one TrillionG generation run.
type Config struct {
	// Scale is log2|V| (Graph500 terminology).
	Scale int
	// EdgeFactor is |E|/|V| (Graph500 uses 16).
	EdgeFactor int64
	// Seed is the 2x2 probability matrix.
	Seed skg.Seed
	// NoiseParam enables the NSKG model when > 0 (Appendix C).
	NoiseParam float64
	// MasterSeed makes the graph reproducible; the output is a pure
	// function of (Config, MasterSeed) regardless of Workers.
	MasterSeed uint64
	// Workers is the number of generation goroutines (0 = GOMAXPROCS).
	Workers int
	// BinsPerWorker tunes partition granularity (0 = default).
	BinsPerWorker int
	// Opts selects the edge-determination variant; zero value is the
	// all-ideas-off ablation, so most callers should use
	// DefaultConfig or set recvec.Production().
	Opts recvec.Options
	// HighPrecision switches RecVec arithmetic to math/big.Float.
	HighPrecision bool
	// Orientation selects out-edge scopes (AVS-O, the default) or
	// in-edge scopes (AVS-I, Section 3.3). Under AVS-I a scope is a
	// *column* of the adjacency matrix: WriteScope(v, srcs) carries the
	// in-neighbours of v, part files hold in-adjacency lists, and the
	// partitioner balances by in-degree.
	Orientation Orientation
	// AllowDuplicates emits raw stochastic trials without in-scope
	// dedup, the Graph500-edge-list semantics the paper contrasts with
	// ("a huge number of repeated edges"). Faster; unrealistic.
	AllowDuplicates bool
}

// Orientation selects the scope axis of Section 3.3.
type Orientation int

const (
	// AVSO scopes are rows: one source vertex and its out-edges.
	AVSO Orientation = iota
	// AVSI scopes are columns: one destination vertex and its in-edges.
	AVSI
)

// String names the orientation.
func (o Orientation) String() string {
	if o == AVSI {
		return "AVS-I"
	}
	return "AVS-O"
}

// DefaultConfig returns the standard Graph500-style configuration at
// the given scale: K = [0.57, 0.19; 0.19, 0.05], |E| = 16·|V|, all
// three performance ideas enabled.
func DefaultConfig(scale int) Config {
	return Config{
		Scale:      scale,
		EdgeFactor: 16,
		Seed:       skg.Graph500Seed,
		MasterSeed: 1,
		Opts:       recvec.Production(),
	}
}

// NumVertices returns |V|.
func (c Config) NumVertices() int64 { return int64(1) << uint(c.Scale) }

// NumEdges returns the target |E|.
func (c Config) NumEdges() int64 { return c.EdgeFactor * c.NumVertices() }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scale < 1 || c.Scale > 47 {
		return fmt.Errorf("core: scale %d outside [1, 47]", c.Scale)
	}
	if c.EdgeFactor < 1 {
		return fmt.Errorf("core: edge factor %d < 1", c.EdgeFactor)
	}
	if err := c.Seed.Validate(); err != nil {
		return err
	}
	if c.NoiseParam < 0 || c.NoiseParam > skg.MaxNoise(c.Seed) {
		return fmt.Errorf("core: noise %v outside [0, %v]", c.NoiseParam, skg.MaxNoise(c.Seed))
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative workers")
	}
	if c.Orientation != AVSO && c.Orientation != AVSI {
		return fmt.Errorf("core: unknown orientation %d", int(c.Orientation))
	}
	return nil
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats reports a completed run.
type Stats struct {
	// Edges is the number of edges generated (and written).
	Edges int64
	// Attempts counts stochastic trials including in-scope duplicates.
	Attempts int64
	// MaxDegree is the largest generated out-degree.
	MaxDegree int64
	// PeakWorkerBytes is the largest tracked working set of any worker
	// (dedup set + RecVec) — the O(d_max) of Table 1.
	PeakWorkerBytes int64
	// BytesWritten sums the writers' outputs.
	BytesWritten int64
	// PlanDuration is the Figure 6 partitioning time; GenDuration the
	// generation+write time; Elapsed their sum.
	PlanDuration, GenDuration, Elapsed time.Duration
	// PartsFromCache counts parts satisfied from an artifact store
	// instead of generated (ResumeToDirStore and the cache-aware
	// distributed workers).
	PartsFromCache int
	// Ranges is the executed partition.
	Ranges []partition.Range
}

// SinkFactory supplies one writer per worker. It is called before
// workers start, in worker order. The worker closes its writer.
type SinkFactory func(worker int, r partition.Range) (gformat.Writer, error)

// DiscardSinks returns a factory of counting no-op writers in the given
// format (for experiments that only need timing and counts).
func DiscardSinks(format gformat.Format) SinkFactory {
	return func(int, partition.Range) (gformat.Writer, error) {
		return gformat.NewDiscardWriter(format), nil
	}
}

// FileSinks writes one part file per worker into dir, named
// part-<worker>.<ext>. CSR6 part files carry the global vertex count so
// they can be read independently.
func FileSinks(dir string, format gformat.Format, numVertices int64) SinkFactory {
	return FileSinksOffset(dir, format, numVertices, 0)
}

// FileSinksOffset is FileSinks with part numbering starting at `first`,
// so workers on different machines produce a collision-free global file
// set (the distributed runtime's layout).
func FileSinksOffset(dir string, format gformat.Format, numVertices int64, first int) SinkFactory {
	return func(worker int, r partition.Range) (gformat.Writer, error) {
		name := filepath.Join(dir, fmt.Sprintf("part-%05d.%s", first+worker, extOf(format)))
		f, err := os.Create(name)
		if err != nil {
			return nil, err
		}
		switch format {
		case gformat.TSV:
			return &closerWriter{Writer: gformat.NewTSVWriter(f), f: f}, nil
		case gformat.ADJ6:
			return &closerWriter{Writer: gformat.NewADJ6Writer(f), f: f}, nil
		case gformat.CSR6:
			w, err := gformat.NewCSR6Writer(f, numVertices)
			if err != nil {
				f.Close()
				return nil, err
			}
			return &closerWriter{Writer: w, f: f}, nil
		default:
			f.Close()
			return nil, fmt.Errorf("core: unsupported format %v", format)
		}
	}
}

func extOf(f gformat.Format) string {
	switch f {
	case gformat.TSV:
		return "tsv"
	case gformat.ADJ6:
		return "adj6"
	default:
		return "csr6"
	}
}

type closerWriter struct {
	gformat.Writer
	f *os.File
}

func (c *closerWriter) Close() error {
	if err := c.Writer.Close(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}

// ScopeFunc receives generated scopes when using CallbackSinks.
type ScopeFunc func(src int64, dsts []int64) error

// CallbackSinks adapts a function into sinks. The function is called
// from multiple workers under a mutex, so it may keep plain state.
func CallbackSinks(fn ScopeFunc) SinkFactory {
	var mu sync.Mutex
	return func(int, partition.Range) (gformat.Writer, error) {
		return &callbackWriter{fn: fn, mu: &mu}, nil
	}
}

type callbackWriter struct {
	fn    ScopeFunc
	mu    *sync.Mutex
	edges int64
}

func (c *callbackWriter) WriteScope(src int64, dsts []int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.edges += int64(len(dsts))
	return c.fn(src, dsts)
}

func (c *callbackWriter) Close() error        { return nil }
func (c *callbackWriter) BytesWritten() int64 { return 0 }
func (c *callbackWriter) EdgesWritten() int64 { return c.edges }

// NewScopeGenerator builds the AVS generator for a configuration,
// reconstructing the NSKG noise deterministically from the master seed.
// acct may be nil. It is exported within the module for the distributed
// runtime and the experiment harness.
func NewScopeGenerator(cfg Config, acct *memacct.Acct) (*avs.Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var noise *skg.Noise
	if cfg.NoiseParam > 0 {
		var err error
		noise, err = skg.NewNoise(cfg.Seed, cfg.Scale, cfg.NoiseParam,
			rng.New(rng.Mix64(cfg.MasterSeed, 0xBE5)))
		if err != nil {
			return nil, err
		}
	}
	seed := cfg.Seed
	if cfg.Orientation == AVSI {
		// A column scope of K is a row scope of K^T; the noise (drawn
		// identically either way) transposes with it.
		seed = seed.Transpose()
		if noise != nil {
			noise = noise.Transpose()
		}
	}
	return avs.New(avs.Config{
		Seed:            seed,
		Levels:          cfg.Scale,
		NumEdges:        cfg.NumEdges(),
		Noise:           noise,
		Opts:            cfg.Opts,
		HighPrecision:   cfg.HighPrecision,
		AllowDuplicates: cfg.AllowDuplicates,
	}, acct)
}

// Plan computes the Figure 6 partition for the configuration: `parts`
// contiguous vertex ranges of near-equal planned load. The plan is a
// pure function of (cfg, parts), so a distributed master and its
// workers agree on it without shipping sizes.
func Plan(cfg Config, parts int) ([]partition.Range, error) {
	g, err := NewScopeGenerator(cfg, nil)
	if err != nil {
		return nil, err
	}
	return partition.Plan(g, cfg.MasterSeed, parts, cfg.BinsPerWorker)
}

// Generate runs the full TrillionG pipeline: plan, then parallel scope
// generation into the sinks.
func Generate(cfg Config, sinks SinkFactory) (Stats, error) {
	return GenerateObserved(cfg, sinks, nil)
}

// GenerateObserved is Generate feeding the given telemetry registry:
// the plan, RecVec-build, scope-draw and sink-write stages plus the
// run-wide scope/edge/attempt counters (see docs/OBSERVABILITY.md for
// the catalog). A nil registry disables instrumentation entirely.
func GenerateObserved(cfg Config, sinks SinkFactory, tel *telemetry.Registry) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	workers := cfg.workers()
	var st Stats
	planStart := time.Now()
	ranges, err := Plan(cfg, workers)
	if err != nil {
		return Stats{}, err
	}
	st.PlanDuration = time.Since(planStart)
	if tel != nil {
		tel.Stage(StagePlan).Observe(st.PlanDuration, int64(len(ranges)))
	}
	gst, err := GenerateRangesObserved(cfg, ranges, sinks, tel)
	if err != nil {
		return st, err
	}
	gst.PlanDuration = st.PlanDuration
	gst.Elapsed = gst.PlanDuration + gst.GenDuration
	return gst, nil
}

// GenerateRanges generates exactly the given vertex ranges, one worker
// goroutine per range, into the sinks. It is the execution half of
// Generate, split out so a distributed worker can run the ranges a
// master assigned it.
func GenerateRanges(cfg Config, ranges []partition.Range, sinks SinkFactory) (Stats, error) {
	return GenerateRangesObserved(cfg, ranges, sinks, nil)
}

// GenerateRangesObserved is GenerateRanges feeding the given telemetry
// registry (nil disables instrumentation). Worker wall time is split
// between the scope-draw and sink-write stages by timing the writer
// calls locally, so the hot loop never touches shared state.
func GenerateRangesObserved(cfg Config, ranges []partition.Range, sinks SinkFactory, tel *telemetry.Registry) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	workers := len(ranges)
	if workers == 0 {
		return Stats{}, fmt.Errorf("core: no ranges to generate")
	}
	accts := make([]memacct.Acct, workers)
	gens := make([]*avs.Generator, workers)
	buildStart := time.Now()
	for i := range gens {
		g, err := NewScopeGenerator(cfg, &accts[i])
		if err != nil {
			return Stats{}, err
		}
		gens[i] = g
	}
	var timed []*timedWriter
	if tel != nil {
		tel.Stage(StageRecvecBuild).Observe(time.Since(buildStart), int64(workers))
		timed = make([]*timedWriter, workers)
		sinks = observedSinkFactory(sinks, tel.RateGauge(MetricEdgesPerSec, 0), timed)
	}

	var st Stats
	st.Ranges = ranges

	writers := make([]gformat.Writer, workers)
	for i, r := range ranges {
		w, err := sinks(i, r)
		if err != nil {
			return st, err
		}
		writers[i] = w
	}

	genStart := time.Now()
	type workerOut struct {
		edges, attempts, maxDeg int64
		dur                     time.Duration
		err                     error
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &outs[i]
			g := gens[i]
			w := writers[i]
			workerStart := time.Now()
			defer func() { out.dur = time.Since(workerStart) }()
			var buf []int64
			for u := ranges[i].Lo; u < ranges[i].Hi; u++ {
				src := rng.NewScoped(cfg.MasterSeed, uint64(u))
				res := g.Scope(u, src, buf)
				buf = res.Dsts
				out.attempts += res.Attempts
				out.edges += int64(len(res.Dsts))
				if int64(len(res.Dsts)) > out.maxDeg {
					out.maxDeg = int64(len(res.Dsts))
				}
				if err := w.WriteScope(u, res.Dsts); err != nil {
					out.err = err
					return
				}
			}
			out.err = w.Close()
		}(i)
	}
	wg.Wait()
	st.GenDuration = time.Since(genStart)
	if tel != nil {
		draw, write := tel.Stage(StageScopeDraw), tel.Stage(StageSinkWrite)
		scopes, edges := tel.Counter(MetricScopes), tel.Counter(MetricEdges)
		attempts, bytes := tel.Counter(MetricAttempts), tel.Counter(MetricBytes)
		for i, out := range outs {
			tw := timed[i]
			write.Observe(tw.elapsed, out.edges)
			if d := out.dur - tw.elapsed; d > 0 {
				draw.Observe(d, tw.scopes)
			}
			scopes.Add(tw.scopes)
			edges.Add(out.edges)
			attempts.Add(out.attempts)
			bytes.Add(writers[i].BytesWritten())
		}
	}
	st.Elapsed = st.GenDuration
	for i, out := range outs {
		if out.err != nil {
			return st, fmt.Errorf("core: worker %d: %w", i, out.err)
		}
		st.Edges += out.edges
		st.Attempts += out.attempts
		if out.maxDeg > st.MaxDegree {
			st.MaxDegree = out.maxDeg
		}
		st.BytesWritten += writers[i].BytesWritten()
		if p := accts[i].Peak(); p > st.PeakWorkerBytes {
			st.PeakWorkerBytes = p
		}
	}
	return st, nil
}

// GenerateSeq is the single-threaded entry point (TrillionG/seq of
// Figure 11a): identical output, Workers forced to 1.
func GenerateSeq(cfg Config, sinks SinkFactory) (Stats, error) {
	cfg.Workers = 1
	return Generate(cfg, sinks)
}
