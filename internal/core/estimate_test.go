package core

import (
	"math"
	"testing"

	"repro/internal/gformat"
)

// TestEstimateMatchesActual: analytic predictions land within a few
// percent of real generated output for every format.
func TestEstimateMatchesActual(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.MasterSeed = 3
	for _, format := range []gformat.Format{gformat.TSV, gformat.ADJ6} {
		est, err := EstimateSize(cfg, format)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Generate(cfg, DiscardSinks(format))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(est.Edges)-float64(st.Edges)) > 0.05*float64(st.Edges) {
			t.Fatalf("%v: estimated %d edges, actual %d", format, est.Edges, st.Edges)
		}
		gap := math.Abs(float64(est.Bytes)-float64(st.BytesWritten)) / float64(st.BytesWritten)
		if gap > 0.08 {
			t.Fatalf("%v: estimated %d bytes, actual %d (gap %.1f%%)",
				format, est.Bytes, st.BytesWritten, 100*gap)
		}
	}
}

// TestEstimateNonZeroVertices: predicted vertex activity matches a real
// run.
func TestEstimateNonZeroVertices(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.MasterSeed = 5
	est, err := EstimateSize(cfg, gformat.ADJ6)
	if err != nil {
		t.Fatal(err)
	}
	var nz int64
	if _, err := Generate(cfg, CallbackSinks(func(src int64, dsts []int64) error {
		if len(dsts) > 0 {
			nz++
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(est.NonZeroVertices)-float64(nz)) > 0.03*float64(nz) {
		t.Fatalf("estimated %d active vertices, actual %d", est.NonZeroVertices, nz)
	}
}

// TestEstimatePaperScale38Ratio reproduces the Section 5 claim: at
// Scale 38 with edge factor 16, TSV ≈ 90 TB and ADJ6 ≈ 25 TB (a 3–4x
// ratio). Pure arithmetic — no generation.
func TestEstimatePaperScale38Ratio(t *testing.T) {
	cfg := DefaultConfig(38)
	tsv, err := EstimateSize(cfg, gformat.TSV)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := EstimateSize(cfg, gformat.ADJ6)
	if err != nil {
		t.Fatal(err)
	}
	const tb = 1 << 40
	tsvTB := float64(tsv.Bytes) / tb
	adjTB := float64(adj.Bytes) / tb
	// The paper says ≈90 TB and ≈25 TB. Accept ±20%.
	if math.Abs(tsvTB-90) > 18 {
		t.Fatalf("Scale-38 TSV estimate %.1f TB, paper says ≈90", tsvTB)
	}
	if math.Abs(adjTB-25) > 5 {
		t.Fatalf("Scale-38 ADJ6 estimate %.1f TB, paper says ≈25", adjTB)
	}
	ratio := tsvTB / adjTB
	if ratio < 3 || ratio > 4.5 {
		t.Fatalf("TSV/ADJ6 ratio %.2f, paper says 3–4x", ratio)
	}
}

// TestEstimateRangeEdges: the analytic range mass is additive, covers
// the full range exactly, and agrees with the per-vertex expectation
// the partitioner balances (summed ExpectedDegree).
func TestEstimateRangeEdges(t *testing.T) {
	for _, orient := range []Orientation{AVSO, AVSI} {
		cfg := DefaultConfig(10)
		cfg.Orientation = orient
		nv := cfg.NumVertices()

		full, err := EstimateRangeEdges(cfg, 0, nv)
		if err != nil {
			t.Fatal(err)
		}
		if full != cfg.NumEdges() {
			t.Fatalf("%v: full-range estimate %d, want |E| = %d", orient, full, cfg.NumEdges())
		}

		// Additivity across an arbitrary split (±1 for rounding).
		lo, mid, hi := int64(0), nv/3, nv
		left, err := EstimateRangeEdges(cfg, lo, mid)
		if err != nil {
			t.Fatal(err)
		}
		right, err := EstimateRangeEdges(cfg, mid, hi)
		if err != nil {
			t.Fatal(err)
		}
		if diff := left + right - full; diff < -1 || diff > 1 {
			t.Fatalf("%v: split masses %d + %d != %d", orient, left, right, full)
		}

		// Agreement with the summed per-vertex expectation.
		g, err := NewScopeGenerator(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for u := mid; u < mid+100; u++ {
			want += g.ExpectedDegree(u)
		}
		got, err := EstimateRangeEdges(cfg, mid, mid+100)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got)-want) > 1+0.001*want {
			t.Fatalf("%v: range estimate %d, ExpectedDegree sum %.2f", orient, got, want)
		}
	}

	// Degenerate ranges clamp to zero; out-of-range bounds clamp to |V|.
	cfg := DefaultConfig(10)
	if n, err := EstimateRangeEdges(cfg, 5, 5); err != nil || n != 0 {
		t.Fatalf("empty range: %d, %v", n, err)
	}
	if n, err := EstimateRangeEdges(cfg, -10, 1<<40); err != nil || n != cfg.NumEdges() {
		t.Fatalf("clamped range: %d, %v (want %d)", n, err, cfg.NumEdges())
	}
	if _, err := EstimateRangeEdges(DefaultConfig(0), 0, 1); err == nil {
		t.Fatal("expected config error")
	}
}

func TestEstimateValidation(t *testing.T) {
	bad := DefaultConfig(0)
	if _, err := EstimateSize(bad, gformat.ADJ6); err == nil {
		t.Fatal("expected config error")
	}
}
