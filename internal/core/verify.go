package core

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/gformat"
)

// CheckPart validates that the part file at path is a structurally
// complete artifact of its format. It exists because resume logic
// treats a part file's *presence* as proof of completeness — which the
// atomic sinks guarantee under ordered rename, but a kill -9 on a
// filesystem without that ordering (or any external corruption) can
// leave a truncated file under its final name. The checks are
// format-shaped:
//
//   - TSV: every line parses as "src<TAB>dst" (a torn write ends in a
//     partial line).
//   - ADJ6: every record's declared adjacency count is satisfied by the
//     bytes that follow (truncation surfaces as a short record).
//   - CSR6: header magic, size arithmetic and final offset agree
//     (O(1) — the structure itself is the footer).
//
// An empty TSV/ADJ6 file is valid (a range of only zero-degree
// vertices writes nothing).
func CheckPart(path string, format gformat.Format) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case gformat.TSV:
		r := gformat.NewTSVReader(f)
		for {
			if _, err := r.Next(); err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return fmt.Errorf("core: part %s: %w", path, err)
			}
		}
	case gformat.ADJ6:
		r := gformat.NewADJ6Reader(f)
		for {
			if _, _, err := r.Next(); err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return fmt.Errorf("core: part %s: %w", path, err)
			}
		}
	case gformat.CSR6:
		if err := gformat.CheckCSR6(f); err != nil {
			return fmt.Errorf("core: part %s: %w", path, err)
		}
		return nil
	default:
		return fmt.Errorf("core: unsupported format %v", format)
	}
}
