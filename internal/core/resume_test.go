package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gformat"
	"repro/internal/partition"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestResumeCompletesInterruptedRun: delete two of four parts, resume,
// and get a file set bit-identical to an uninterrupted run.
func TestResumeCompletesInterruptedRun(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Workers = 4
	cfg.MasterSeed = 77

	full := t.TempDir()
	if _, err := ResumeToDir(cfg, full, gformat.ADJ6); err != nil {
		t.Fatal(err)
	}
	parts, err := filepath.Glob(filepath.Join(full, "part-*.adj6"))
	if err != nil || len(parts) != 4 {
		t.Fatalf("parts %v err %v", parts, err)
	}

	// Simulate the interrupted run in a second directory: generate all,
	// then delete parts 1 and 3 and leave a stale temp file behind.
	broken := t.TempDir()
	if _, err := ResumeToDir(cfg, broken, gformat.ADJ6); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(broken, "part-00001.adj6"))
	os.Remove(filepath.Join(broken, "part-00003.adj6"))
	if err := os.WriteFile(filepath.Join(broken, "part-00003.adj6.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := ResumeToDir(cfg, broken, gformat.ADJ6)
	if err != nil {
		t.Fatal(err)
	}
	if st.Edges == 0 {
		t.Fatal("resume generated nothing")
	}
	if _, err := os.Stat(filepath.Join(broken, "part-00003.adj6.tmp")); err == nil {
		t.Fatal("stale temp file survived")
	}
	for i := 0; i < 4; i++ {
		name := filepath.Join("", filepath.Base(parts[i]))
		a := readFile(t, filepath.Join(full, name))
		b := readFile(t, filepath.Join(broken, name))
		if !bytes.Equal(a, b) {
			t.Fatalf("part %s differs after resume", name)
		}
	}
}

// TestResumeNoopWhenComplete: a second resume generates nothing.
func TestResumeNoopWhenComplete(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Workers = 2
	dir := t.TempDir()
	first, err := ResumeToDir(cfg, dir, gformat.ADJ6)
	if err != nil {
		t.Fatal(err)
	}
	if first.Edges == 0 {
		t.Fatal("first run generated nothing")
	}
	second, err := ResumeToDir(cfg, dir, gformat.ADJ6)
	if err != nil {
		t.Fatal(err)
	}
	if second.Edges != 0 {
		t.Fatalf("second run regenerated %d edges", second.Edges)
	}
}

// TestResumeCSR6: the resume path works for the offset-bearing CSR6
// format too — an interrupted run completed by resume is bit-identical
// to an uninterrupted one, header and offset table included.
func TestResumeCSR6(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Workers = 3
	cfg.MasterSeed = 41

	full := t.TempDir()
	if _, err := ResumeToDir(cfg, full, gformat.CSR6); err != nil {
		t.Fatal(err)
	}
	parts, err := filepath.Glob(filepath.Join(full, "part-*.csr6"))
	if err != nil || len(parts) != 3 {
		t.Fatalf("parts %v err %v", parts, err)
	}

	broken := t.TempDir()
	if _, err := ResumeToDir(cfg, broken, gformat.CSR6); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(broken, "part-00001.csr6"))

	st, err := ResumeToDir(cfg, broken, gformat.CSR6)
	if err != nil {
		t.Fatal(err)
	}
	if st.Edges == 0 {
		t.Fatal("resume regenerated nothing")
	}
	for _, p := range parts {
		name := filepath.Base(p)
		if !bytes.Equal(readFile(t, p), readFile(t, filepath.Join(broken, name))) {
			t.Fatalf("CSR6 part %s differs after resume", name)
		}
	}
}

// TestResumeWorkersMismatchDetected: resuming with a different Workers
// count re-plans the partition, so the same part index would cover a
// different vertex range. The manifest must reject the resume instead
// of silently welding two partitions into one directory.
func TestResumeWorkersMismatchDetected(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Workers = 4
	dir := t.TempDir()
	if _, err := ResumeToDir(cfg, dir, gformat.ADJ6); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "part-00002.adj6"))

	cfg.Workers = 3
	if _, err := ResumeToDir(cfg, dir, gformat.ADJ6); err == nil {
		t.Fatal("mismatched resume (Workers 4 → 3) was not detected")
	}

	// Changing the format over existing parts is a mismatch too.
	cfg.Workers = 4
	if _, err := ResumeToDir(cfg, dir, gformat.TSV); err == nil {
		t.Fatal("mismatched resume (adj6 → tsv) was not detected")
	}

	// The original configuration still resumes cleanly.
	if _, err := ResumeToDir(cfg, dir, gformat.ADJ6); err != nil {
		t.Fatalf("matching resume failed: %v", err)
	}
}

// TestAtomicSinkRenameSemantics: the final name appears only after a
// clean Close; before that only the .tmp exists.
func TestAtomicSinkRenameSemantics(t *testing.T) {
	dir := t.TempDir()
	factory := AtomicFileSinks(dir, gformat.ADJ6, 1<<8, 5)
	w, err := factory(0, partition.Range{Lo: 0, Hi: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteScope(1, []int64{2, 3}); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(dir, "part-00005.adj6")
	if _, err := os.Stat(final); err == nil {
		t.Fatal("final file visible before Close")
	}
	if _, err := os.Stat(final + ".tmp"); err != nil {
		t.Fatal("temp file missing during write")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(final); err != nil {
		t.Fatal("final file missing after Close")
	}
	if _, err := os.Stat(final + ".tmp"); err == nil {
		t.Fatal("temp file not renamed away")
	}
}

// TestRunManifestRecordsParameters: a resumed run records its full
// generation parameters, and ReadRunManifest recovers them — what lets
// trilliong-validate check a directory without re-typed flags.
func TestRunManifestRecordsParameters(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.NoiseParam = 0.1
	cfg.MasterSeed = 42
	cfg.Workers = 3
	dir := t.TempDir()
	if _, err := ResumeToDir(cfg, dir, gformat.ADJ6); err != nil {
		t.Fatal(err)
	}
	m, err := ReadRunManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg
	want.Workers = 0 // normalized out: parts, not Workers, fix the plan
	if m.Config != want {
		t.Fatalf("recorded config %+v, want %+v", m.Config, want)
	}
	if m.Format != gformat.ADJ6 || m.Parts != 3 {
		t.Fatalf("recorded format %v / parts %d, want ADJ6 / 3", m.Format, m.Parts)
	}
	// Resuming again with the same configuration still matches.
	if _, err := ResumeToDir(cfg, dir, gformat.ADJ6); err != nil {
		t.Fatalf("re-resume with matching config: %v", err)
	}
	// A directory without a manifest reports a usable error.
	if _, err := ReadRunManifest(t.TempDir()); err == nil {
		t.Fatal("missing manifest did not error")
	}
}
