package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func openStoreAt(t *testing.T, root string, tel *telemetry.Registry) *store.Store {
	t.Helper()
	st, err := store.Open(root, store.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func openStore(t *testing.T, tel *telemetry.Registry) *store.Store {
	t.Helper()
	return openStoreAt(t, filepath.Join(t.TempDir(), "store"), tel)
}

func globParts(t *testing.T, dir, ext string) []string {
	t.Helper()
	parts, err := filepath.Glob(filepath.Join(dir, "part-*."+ext))
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

// TestWarmStoreRegeneratesNothing is the headline acceptance test: a
// cold run populates the store; an identical run into a fresh directory
// regenerates zero ranges — every part is a store hit — and the output
// is bit-identical.
func TestWarmStoreRegeneratesNothing(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Workers = 4
	cfg.MasterSeed = 99
	root := filepath.Join(t.TempDir(), "store")
	st := openStoreAt(t, root, telemetry.NewRegistry())

	cold := t.TempDir()
	coldStats, err := ResumeToDirStore(cfg, cold, gformat.ADJ6, st)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Edges == 0 || coldStats.PartsFromCache != 0 {
		t.Fatalf("cold stats = %+v", coldStats)
	}
	if got := st.Stats().Ingests; got != 4 {
		t.Fatalf("cold run ingested %d parts, want 4", got)
	}

	// Reopen the store (fresh registry, index rebuilt from disk) so the
	// warm run's counters measure only itself — and so a different
	// process sharing the store directory is what's being modeled.
	tel := telemetry.NewRegistry()
	st = openStoreAt(t, root, tel)
	warm := t.TempDir()
	warmStats, err := ResumeToDirStore(cfg, warm, gformat.ADJ6, st)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.PartsFromCache != 4 {
		t.Fatalf("warm run: PartsFromCache = %d, want 4", warmStats.PartsFromCache)
	}
	if warmStats.Edges != 0 {
		t.Fatalf("warm run generated %d edges, want 0 (all cached)", warmStats.Edges)
	}
	if hits, misses := tel.CounterValue(store.MetricHits), tel.CounterValue(store.MetricMisses); hits != 4 || misses != 0 {
		t.Fatalf("store hits=%d misses=%d, want 4/0", hits, misses)
	}

	coldParts := globParts(t, cold, "adj6")
	if len(coldParts) != 4 {
		t.Fatalf("cold parts: %v", coldParts)
	}
	for _, p := range coldParts {
		name := filepath.Base(p)
		if !bytes.Equal(readFile(t, p), readFile(t, filepath.Join(warm, name))) {
			t.Fatalf("cached part %s differs from generated", name)
		}
	}
}

// TestCorruptStoreEntryRegenerated: a damaged cached part must be
// caught by the read-time checksum, evicted, and regenerated — with
// identical output.
func TestCorruptStoreEntryRegenerated(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Workers = 2
	tel := telemetry.NewRegistry()
	st := openStore(t, tel)

	cold := t.TempDir()
	if _, err := ResumeToDirStore(cfg, cold, gformat.TSV, st); err != nil {
		t.Fatal(err)
	}
	ranges, err := Plan(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CorruptForTest(PartKey(cfg, gformat.TSV, ranges[1])); err != nil {
		t.Fatal(err)
	}

	warm := t.TempDir()
	stats, err := ResumeToDirStore(cfg, warm, gformat.TSV, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PartsFromCache != 1 {
		t.Fatalf("PartsFromCache = %d, want 1 (one part corrupt)", stats.PartsFromCache)
	}
	if stats.Edges == 0 {
		t.Fatal("corrupt part was not regenerated")
	}
	if got := tel.CounterValue(store.MetricVerifyFailures); got != 1 {
		t.Fatalf("verify_failures = %d, want 1", got)
	}
	for _, p := range globParts(t, cold, "tsv") {
		name := filepath.Base(p)
		if !bytes.Equal(readFile(t, p), readFile(t, filepath.Join(warm, name))) {
			t.Fatalf("part %s differs after corrupt-entry regeneration", name)
		}
	}
	// The regenerated part was re-ingested: a third run is all hits.
	third := t.TempDir()
	stats3, err := ResumeToDirStore(cfg, third, gformat.TSV, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.PartsFromCache != 2 || stats3.Edges != 0 {
		t.Fatalf("third run stats = %+v, want all-cached", stats3)
	}
}

// TestPartKeyIndependentOfWorkers: two configs differing only in
// Workers share keys for the same range — parallelism does not shape
// part bytes.
func TestPartKeyIndependentOfWorkers(t *testing.T) {
	a := DefaultConfig(10)
	a.Workers = 2
	b := a
	b.Workers = 8
	r := partition.Range{Lo: 0, Hi: 100}
	if PartKey(a, gformat.ADJ6, r) != PartKey(b, gformat.ADJ6, r) {
		t.Fatal("Workers leaked into the part key")
	}
	c := a
	c.MasterSeed++
	if PartKey(a, gformat.ADJ6, r) == PartKey(c, gformat.ADJ6, r) {
		t.Fatal("MasterSeed did not change the part key")
	}
	if PartKey(a, gformat.ADJ6, r) == PartKey(a, gformat.TSV, r) {
		t.Fatal("format did not change the part key")
	}
}

// TestResumeRejectsCorruptedPart is the satellite regression test: a
// part file truncated under its final name (the torn-write scenario
// ResumeToDir used to trust blindly) must be detected and regenerated,
// for each format's verification strategy.
func TestResumeRejectsCorruptedPart(t *testing.T) {
	for _, format := range []gformat.Format{gformat.TSV, gformat.ADJ6, gformat.CSR6} {
		t.Run(format.String(), func(t *testing.T) {
			cfg := DefaultConfig(9)
			cfg.Workers = 2
			cfg.MasterSeed = 7

			full := t.TempDir()
			if _, err := ResumeToDir(cfg, full, format); err != nil {
				t.Fatal(err)
			}
			ext := map[gformat.Format]string{gformat.TSV: "tsv", gformat.ADJ6: "adj6", gformat.CSR6: "csr6"}[format]
			parts := globParts(t, full, ext)
			if len(parts) != 2 {
				t.Fatalf("parts: %v", parts)
			}

			broken := t.TempDir()
			if _, err := ResumeToDir(cfg, broken, format); err != nil {
				t.Fatal(err)
			}
			// Truncate part 1 mid-file: it still exists under its final
			// name, mimicking a torn write surviving a crash.
			victim := filepath.Join(broken, filepath.Base(parts[1]))
			b := readFile(t, victim)
			if err := os.WriteFile(victim, b[:len(b)-(len(b)/3)-1], 0o644); err != nil {
				t.Fatal(err)
			}

			stats, err := ResumeToDir(cfg, broken, format)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Edges == 0 {
				t.Fatal("resume accepted the corrupted part and regenerated nothing")
			}
			for _, p := range parts {
				name := filepath.Base(p)
				if !bytes.Equal(readFile(t, p), readFile(t, filepath.Join(broken, name))) {
					t.Fatalf("part %s differs after corruption recovery", name)
				}
			}
		})
	}
}

// TestCheckPartAcceptsComplete: CheckPart passes every intact part,
// including an empty TSV/ADJ6 file (all-zero-degree ranges write no
// bytes).
func TestCheckPartAcceptsComplete(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Workers = 2
	dir := t.TempDir()
	for _, format := range []gformat.Format{gformat.TSV, gformat.ADJ6, gformat.CSR6} {
		sub := filepath.Join(dir, format.String())
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := ResumeToDir(cfg, sub, format); err != nil {
			t.Fatal(err)
		}
		ext := map[gformat.Format]string{gformat.TSV: "tsv", gformat.ADJ6: "adj6", gformat.CSR6: "csr6"}[format]
		for _, p := range globParts(t, sub, ext) {
			if err := CheckPart(p, format); err != nil {
				t.Errorf("CheckPart(%s, %v) = %v on an intact part", p, format, err)
			}
		}
	}
	empty := filepath.Join(dir, "empty.tsv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckPart(empty, gformat.TSV); err != nil {
		t.Errorf("CheckPart on empty TSV = %v, want nil", err)
	}
	if err := CheckPart(filepath.Join(dir, "empty.adj6"), gformat.ADJ6); err == nil {
		t.Error("CheckPart on a missing file = nil, want error")
	}
}
