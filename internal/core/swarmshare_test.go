package core

// Tests for the resume helpers as shared by the masterless swarm:
// scans racing publishers in one directory, sweep error surfacing, and
// the shared-directory sink options.

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gformat"
	"repro/internal/partition"
)

// TestMissingPartsConcurrentWithAtomicSinks is the swarm rendezvous
// invariant under -race: two scanners loop MissingParts over a
// directory while a publisher finishes parts one by one through the
// atomic sinks. Once a part's rename has landed (Close returned), no
// later scan may report it missing again.
func TestMissingPartsConcurrentWithAtomicSinks(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.MasterSeed = 5
	const parts = 8
	dir := t.TempDir()
	ranges, err := Plan(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, parts)
	for i := range ids {
		ids[i] = i
	}

	var landed [parts]atomic.Bool
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < parts; i++ {
			sinks := AtomicPartSinksOpts(dir, gformat.ADJ6, cfg.NumVertices(), ids[i:i+1], PartSinkOptions{TmpSuffix: "pub"})
			if _, err := GenerateRanges(cfg, ranges[i:i+1], sinks); err != nil {
				t.Errorf("publish part %d: %v", i, err)
				return
			}
			landed[i].Store(true)
		}
	}()
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					// One final scan after the last rename landed.
					_, missingIDs := MissingParts(dir, gformat.ADJ6, ranges, ids)
					for _, id := range missingIDs {
						if landed[id].Load() {
							t.Errorf("part %d reported missing after its rename landed", id)
						}
					}
					return
				default:
				}
				// Snapshot BEFORE scanning: anything landed by now must
				// stay visible to a scan that starts after.
				var snap [parts]bool
				for i := range snap {
					snap[i] = landed[i].Load()
				}
				_, missingIDs := MissingParts(dir, gformat.ADJ6, ranges, ids)
				for _, id := range missingIDs {
					if snap[id] {
						t.Errorf("part %d reported missing after its rename landed", id)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestMissingPartsParallelKeepsOrder: the bounded-pool verification
// must preserve the deterministic input ordering of the result slices
// whatever mix of absent, valid and corrupt parts it sees.
func TestMissingPartsParallelKeepsOrder(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.MasterSeed = 6
	const parts = 9
	dir := t.TempDir()
	ranges, err := Plan(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, parts)
	for i := range ids {
		ids[i] = i
	}
	if _, err := GenerateRanges(cfg, ranges, AtomicPartSinks(dir, gformat.ADJ6, cfg.NumVertices(), ids)); err != nil {
		t.Fatal(err)
	}
	// Absent: 1, 4. Corrupt (truncated to an invalid length): 2, 7.
	for _, id := range []int{1, 4} {
		if err := os.Remove(PartPath(dir, gformat.ADJ6, id)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{2, 7} {
		if err := os.Truncate(PartPath(dir, gformat.ADJ6, id), 5); err != nil {
			t.Fatal(err)
		}
	}
	missing, missingIDs := MissingParts(dir, gformat.ADJ6, ranges, ids)
	wantIDs := []int{1, 2, 4, 7}
	if len(missingIDs) != len(wantIDs) {
		t.Fatalf("missing ids %v, want %v", missingIDs, wantIDs)
	}
	for i, want := range wantIDs {
		if missingIDs[i] != want {
			t.Fatalf("missing ids %v not in deterministic input order, want %v", missingIDs, wantIDs)
		}
		if missing[i] != ranges[want] {
			t.Fatalf("missing[%d] = %+v, want range of part %d %+v", i, missing[i], want, ranges[want])
		}
	}
	// The corrupt files must have been deleted for regeneration.
	for _, id := range []int{2, 7} {
		if _, err := os.Stat(PartPath(dir, gformat.ADJ6, id)); err == nil {
			t.Fatalf("corrupt part %d left in place", id)
		}
	}
}

// TestSweepTempsSurfacesErrors: an unremovable temp (here a non-empty
// directory matching the temp pattern) must surface in the returned
// error instead of being silently skipped — while removable temps in
// the same sweep are still removed.
func TestSweepTempsSurfacesErrors(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "part-00000.adj6.tmp")
	if err := os.WriteFile(plain, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	stuck := filepath.Join(dir, "part-00001.adj6.tmp")
	if err := os.MkdirAll(filepath.Join(stuck, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	err := SweepTemps(dir)
	if err == nil {
		t.Fatal("SweepTemps swallowed the unremovable temp")
	}
	if !strings.Contains(err.Error(), "part-00001") {
		t.Fatalf("error %q does not name the stuck temp", err)
	}
	if _, serr := os.Stat(plain); serr == nil {
		t.Fatal("removable temp survived the sweep")
	}
	// An empty directory and a clean sweep return nil.
	if err := os.RemoveAll(stuck); err != nil {
		t.Fatal(err)
	}
	if err := SweepTemps(dir); err != nil {
		t.Fatalf("clean sweep: %v", err)
	}
}

// TestAtomicPartSinksOptsDuplicateLosesGracefully: with OnDuplicate
// armed, a writer whose final path is already published discards its
// temp, reports the loss, and leaves the winner's bytes untouched.
func TestAtomicPartSinksOptsDuplicateLosesGracefully(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.MasterSeed = 7
	dir := t.TempDir()
	ranges, err := Plan(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := []partition.Range{ranges[0]}
	ids := []int{0}
	if _, err := GenerateRanges(cfg, r, AtomicPartSinks(dir, gformat.ADJ6, cfg.NumVertices(), ids)); err != nil {
		t.Fatal(err)
	}
	winner := readFile(t, PartPath(dir, gformat.ADJ6, 0))

	var lost []int
	sinks := AtomicPartSinksOpts(dir, gformat.ADJ6, cfg.NumVertices(), ids, PartSinkOptions{
		TmpSuffix:   "loser",
		OnDuplicate: func(id int) { lost = append(lost, id) },
	})
	if _, err := GenerateRanges(cfg, r, sinks); err != nil {
		t.Fatalf("losing a duplicate race must not be an error: %v", err)
	}
	if len(lost) != 1 || lost[0] != 0 {
		t.Fatalf("OnDuplicate calls %v, want [0]", lost)
	}
	if got := readFile(t, PartPath(dir, gformat.ADJ6, 0)); !equalBytes(got, winner) {
		t.Fatal("duplicate publish disturbed the winner's bytes")
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "part-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("losing writer left temp litter: %v", tmps)
	}
}

// TestAtomicPartSinksOptsSuffixSeparatesWriters: two writers with
// distinct suffixes publishing the same part never share a temp path,
// and both temps match the sweepable pattern.
func TestAtomicPartSinksOptsSuffixSeparatesWriters(t *testing.T) {
	final := PartPath(t.TempDir(), gformat.ADJ6, 3)
	a := final + ".aaaa.tmp"
	b := final + ".bbbb.tmp"
	if a == b {
		t.Fatal("suffixed temp paths collide")
	}
	for _, p := range []string{a, b} {
		ok, err := filepath.Match("part-*.tmp", filepath.Base(p))
		if err != nil || !ok {
			t.Fatalf("temp %q does not match the SweepTemps pattern", filepath.Base(p))
		}
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
