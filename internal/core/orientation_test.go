package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/skg"
	"repro/internal/stats"
)

// TestAVSIOrientation: under AVS-I, a scope carries in-neighbours, so
// the scope-size distribution is the graph's IN-degree distribution —
// which for seed K equals the out-degree distribution of K transposed.
func TestAVSIOrientation(t *testing.T) {
	asym := skg.Seed{A: 0.57, B: 0.29, C: 0.09, D: 0.05} // β ≠ γ: in/out differ

	degreesOf := func(orient Orientation, seed skg.Seed) []int64 {
		cfg := DefaultConfig(12)
		cfg.Seed = seed
		cfg.Orientation = orient
		cfg.MasterSeed = 9
		var out []int64
		if _, err := Generate(cfg, CallbackSinks(func(v int64, others []int64) error {
			if len(others) > 0 {
				out = append(out, int64(len(others)))
			}
			return nil
		})); err != nil {
			t.Fatal(err)
		}
		return out
	}

	inScopes := degreesOf(AVSI, asym)               // in-degrees of K
	outScopesT := degreesOf(AVSO, asym.Transpose()) // out-degrees of K^T
	outScopes := degreesOf(AVSO, asym)              // out-degrees of K

	hIn := stats.FromDegrees(inScopes)
	hOutT := stats.FromDegrees(outScopesT)
	hOut := stats.FromDegrees(outScopes)

	// AVS-I(K) ≡ AVS-O(K^T) — same stochastic process, same seeds, so
	// the histograms agree to sampling noise.
	if ks := stats.KS(hIn, hOutT); ks > 0.05 {
		t.Fatalf("KS(AVS-I(K), AVS-O(K^T)) = %v", ks)
	}
	// And with β ≠ γ they genuinely differ from the out-degrees.
	if ks := stats.KS(hIn, hOut); ks < 0.1 {
		t.Fatalf("asymmetric seed: in and out distributions too close (KS %v)", ks)
	}
}

// TestAVSISymmetricSeedMatchesAVSO: the Graph500 seed is symmetric
// (β = γ), so both orientations give the same degree distribution.
func TestAVSISymmetricSeedMatchesAVSO(t *testing.T) {
	run := func(orient Orientation) stats.Hist {
		cfg := DefaultConfig(12)
		cfg.Orientation = orient
		cfg.MasterSeed = 31
		h := make(stats.Hist)
		if _, err := Generate(cfg, CallbackSinks(func(v int64, others []int64) error {
			if len(others) > 0 {
				h.Add(int64(len(others)))
			}
			return nil
		})); err != nil {
			t.Fatal(err)
		}
		return h
	}
	if ks := stats.KS(run(AVSO), run(AVSI)); ks > 0.05 {
		t.Fatalf("symmetric seed orientations differ: KS %v", ks)
	}
}

// TestAVSIWithNoise: NSKG composes with AVS-I (transposed noise), and
// the edge totals stay on target.
func TestAVSIWithNoise(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.Orientation = AVSI
	cfg.NoiseParam = 0.1
	cfg.MasterSeed = 17
	st, err := Generate(cfg, CallbackSinks(func(int64, []int64) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.NumEdges())
	if math.Abs(float64(st.Edges)-want) > 0.05*want {
		t.Fatalf("AVS-I noisy edges %d, want ≈ %d", st.Edges, cfg.NumEdges())
	}
}

// TestNoiseTransposeConsistency: Lemma 7's closed form matches the
// transposed level matrices (column sums of the originals).
func TestNoiseTransposeConsistency(t *testing.T) {
	const levels = 8
	src := rng.New(3)
	ns, err := skg.NewNoise(skg.Graph500Seed, levels, 0.15, src)
	if err != nil {
		t.Fatal(err)
	}
	tr := ns.Transpose()
	n := int64(1) << levels
	for v := int64(0); v < n; v += 7 {
		var direct float64
		for u := int64(0); u < n; u++ {
			direct += ns.EdgeProbNoisy(u, v, levels)
		}
		if got := tr.RowProb(v, levels); math.Abs(got-direct) > 1e-10 {
			t.Fatalf("v=%d: transposed RowProb %v, direct column sum %v", v, got, direct)
		}
	}
}

// TestOrientationValidation.
func TestOrientationValidation(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Orientation = Orientation(9)
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected orientation error")
	}
	if AVSO.String() != "AVS-O" || AVSI.String() != "AVS-I" {
		t.Fatal("orientation names wrong")
	}
}
