package core

// Failure-injection tests: sink errors must abort cleanly and be
// attributed, and partially-failed runs must not hang or leak workers.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/gformat"
	"repro/internal/partition"
)

type failingWriter struct {
	after int64
	n     int64
}

var errSinkBoom = errors.New("sink boom")

func (f *failingWriter) WriteScope(src int64, dsts []int64) error {
	f.n += int64(len(dsts))
	if f.n > f.after {
		return errSinkBoom
	}
	return nil
}
func (f *failingWriter) Close() error        { return nil }
func (f *failingWriter) BytesWritten() int64 { return 0 }
func (f *failingWriter) EdgesWritten() int64 { return f.n }

// TestSinkErrorPropagates: a writer error surfaces with the worker
// attribution and does not panic or deadlock the other workers.
func TestSinkErrorPropagates(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.Workers = 4
	_, err := Generate(cfg, func(worker int, r partition.Range) (gformat.Writer, error) {
		if worker == 2 {
			return &failingWriter{after: 100}, nil
		}
		return gformat.NewDiscardWriter(gformat.ADJ6), nil
	})
	if !errors.Is(err, errSinkBoom) {
		t.Fatalf("err = %v, want sink boom", err)
	}
	if !strings.Contains(err.Error(), "worker 2") {
		t.Fatalf("error lacks worker attribution: %v", err)
	}
}

// TestSinkFactoryErrorAborts: a factory error aborts before any worker
// starts.
func TestSinkFactoryErrorAborts(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Workers = 2
	boom := errors.New("factory boom")
	_, err := Generate(cfg, func(worker int, r partition.Range) (gformat.Writer, error) {
		if worker == 1 {
			return nil, boom
		}
		return gformat.NewDiscardWriter(gformat.ADJ6), nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestFileSinksBadDir: unwritable directories error out instead of
// panicking mid-generation.
func TestFileSinksBadDir(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Workers = 1
	_, err := Generate(cfg, FileSinks("/nonexistent/trilliong", gformat.ADJ6, cfg.NumVertices()))
	if err == nil {
		t.Fatal("expected error for bad output dir")
	}
}

// TestGenerateRangesEmpty: zero ranges is an error, not a silent no-op.
func TestGenerateRangesEmpty(t *testing.T) {
	cfg := DefaultConfig(9)
	if _, err := GenerateRanges(cfg, nil, DiscardSinks(gformat.ADJ6)); err == nil {
		t.Fatal("expected error for empty ranges")
	}
}

// TestGenerateRangesSubset: generating a strict subset of the vertex
// space yields exactly that subset's scopes.
func TestGenerateRangesSubset(t *testing.T) {
	cfg := DefaultConfig(10)
	ranges := []partition.Range{{Lo: 100, Hi: 200}, {Lo: 300, Hi: 350}}
	seen := make(map[int64]bool)
	_, err := GenerateRanges(cfg, ranges, CallbackSinks(func(src int64, dsts []int64) error {
		seen[src] = true
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	for src := range seen {
		if !(src >= 100 && src < 200 || src >= 300 && src < 350) {
			t.Fatalf("scope %d outside requested ranges", src)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no scopes generated")
	}
}
