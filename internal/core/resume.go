package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultpoint"
	"repro/internal/gformat"
	"repro/internal/partition"
)

// PartPath returns the canonical name of global part `idx` in dir:
// part-<idx>.<ext>. Single-machine runs, ResumeToDir and the
// distributed workers all agree on this layout, which is what lets a
// restarted worker recognize work it already finished.
func PartPath(dir string, format gformat.Format, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("part-%05d.%s", idx, extOf(format)))
}

// MissingParts filters (ranges, ids) — parallel slices pairing each
// vertex range with its global part index — down to the pairs whose
// part file does not exist *complete* in dir. A part file under its
// final name is normally complete (the atomic sinks guarantee it under
// ordered rename), but a kill -9 on a filesystem without that ordering
// or external corruption can leave a damaged file there, so each
// present part is structurally verified with CheckPart; failures are
// deleted and re-listed as missing. This is the resume-skip logic
// shared by ResumeToDir, the distributed worker, and the masterless
// swarm's completion scans. The swarm scans repeatedly on a hot path,
// so verification of present parts runs on a bounded worker pool; the
// result slices stay in input order regardless.
func MissingParts(dir string, format gformat.Format, ranges []partition.Range, ids []int) (missing []partition.Range, missingIDs []int) {
	type candidate struct {
		i    int
		path string
	}
	isMissing := make([]bool, len(ranges))
	var present []candidate
	for i := range ranges {
		path := PartPath(dir, format, ids[i])
		if _, err := os.Stat(path); err == nil {
			present = append(present, candidate{i, path})
		} else {
			isMissing[i] = true
		}
	}

	check := func(c candidate) {
		if CheckPart(c.path, format) == nil {
			return
		}
		os.Remove(c.path)
		isMissing[c.i] = true
	}
	if workers := min(runtime.GOMAXPROCS(0), len(present)); workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(present) {
						return
					}
					check(present[k])
				}
			}()
		}
		wg.Wait()
	} else {
		for _, c := range present {
			check(c)
		}
	}

	for i := range ranges {
		if isMissing[i] {
			missing = append(missing, ranges[i])
			missingIDs = append(missingIDs, ids[i])
		}
	}
	return missing, missingIDs
}

// SweepTemps removes leftover part-*.tmp files from a crashed run. A
// tmp file that cannot be removed (read-only disk, permissions) is
// reported in the joined error rather than swallowed: an immovable tmp
// would otherwise be silently regenerated around forever.
func SweepTemps(dir string) error {
	tmps, err := filepath.Glob(filepath.Join(dir, "part-*.tmp"))
	if err != nil {
		return err
	}
	var errs []error
	for _, t := range tmps {
		if err := os.Remove(t); err != nil && !errors.Is(err, fs.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// AtomicFileSinks is FileSinks with crash safety: each part is written
// to part-<n>.<ext>.tmp and renamed into place only when its writer
// closes cleanly, so a part file either exists complete or not at all.
// This is what makes Resume sound.
func AtomicFileSinks(dir string, format gformat.Format, numVertices int64, first int) SinkFactory {
	return func(worker int, r partition.Range) (gformat.Writer, error) {
		return newAtomicWriter(dir, format, numVertices, first+worker, PartSinkOptions{})
	}
}

// AtomicPartSinks is AtomicFileSinks for an explicit, possibly
// non-contiguous set of global part indices: worker i writes part
// ids[i]. The distributed runtime uses it to regenerate exactly the
// parts a lease names.
func AtomicPartSinks(dir string, format gformat.Format, numVertices int64, ids []int) SinkFactory {
	return AtomicPartSinksOpts(dir, format, numVertices, ids, PartSinkOptions{})
}

// PartSinkOptions tunes AtomicPartSinksOpts for directories shared by
// independent writers — the masterless swarm runtime, where several
// processes may race to publish the same part. The zero value is plain
// AtomicPartSinks behavior.
type PartSinkOptions struct {
	// TmpSuffix, when non-empty, is inserted into each temp file name
	// (part-NNNNN.<ext>.<TmpSuffix>.tmp) so writers in different
	// processes racing on the same part never interleave bytes into one
	// temp file. The names still match the part-*.tmp pattern
	// SweepTemps removes, so crashed-writer litter remains sweepable.
	TmpSuffix string
	// OnDuplicate arms lose-detection at publish time: if the final
	// part path already exists when this writer is about to rename its
	// temp into place, the temp is discarded — the existing file is
	// bit-identical by the determinism contract, so the first publisher
	// wins — OnDuplicate is called with the part id, and Close reports
	// success. nil keeps the plain semantics (rename unconditionally;
	// an overwrite replaces identical bytes).
	OnDuplicate func(id int)
}

// AtomicPartSinksOpts is AtomicPartSinks with shared-directory options.
func AtomicPartSinksOpts(dir string, format gformat.Format, numVertices int64, ids []int, opt PartSinkOptions) SinkFactory {
	return func(worker int, r partition.Range) (gformat.Writer, error) {
		return newAtomicWriter(dir, format, numVertices, ids[worker], opt)
	}
}

func newAtomicWriter(dir string, format gformat.Format, numVertices int64, idx int, opt PartSinkOptions) (gformat.Writer, error) {
	final := PartPath(dir, format, idx)
	tmp := final + ".tmp"
	if opt.TmpSuffix != "" {
		tmp = final + "." + opt.TmpSuffix + ".tmp"
	}
	var onDup func()
	if opt.OnDuplicate != nil {
		fn := opt.OnDuplicate
		onDup = func() { fn(idx) }
	}
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	var w gformat.Writer
	switch format {
	case gformat.TSV:
		w = gformat.NewTSVWriter(f)
	case gformat.ADJ6:
		w = gformat.NewADJ6Writer(f)
	case gformat.CSR6:
		cw, err := gformat.NewCSR6Writer(f, numVertices)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, err
		}
		w = cw
	default:
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("core: unsupported format %v", format)
	}
	return &atomicWriter{Writer: w, f: f, tmp: tmp, final: final, onDup: onDup}, nil
}

type atomicWriter struct {
	gformat.Writer
	f          *os.File
	tmp, final string
	// onDup, when set, turns the publish into a first-writer-wins
	// claim: an already-present final file discards this temp instead
	// of renaming over it, and onDup records the lost race.
	onDup func()
}

func (a *atomicWriter) WriteScope(src int64, dsts []int64) error {
	if err := faultpoint.Fire("core.sink.write"); err != nil {
		return err
	}
	return a.Writer.WriteScope(src, dsts)
}

func (a *atomicWriter) Close() error {
	if err := faultpoint.Fire("core.sink.close"); err != nil {
		a.f.Close()
		os.Remove(a.tmp)
		return err
	}
	if err := a.Writer.Close(); err != nil {
		a.f.Close()
		os.Remove(a.tmp)
		return err
	}
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.tmp)
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.tmp)
		return err
	}
	if a.onDup != nil {
		if _, err := os.Stat(a.final); err == nil {
			// A peer published this part first. Its bytes are identical
			// by the determinism contract, so losing the race costs
			// nothing but the duplicated work; keep the winner's file
			// untouched. (If the winner lands between this stat and the
			// rename below, the rename replaces identical bytes —
			// equally harmless, just counted as a win by both.)
			os.Remove(a.tmp)
			a.onDup()
			return nil
		}
	}
	if err := os.Rename(a.tmp, a.final); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is on disk;
	// without this a host crash could make a "complete" part vanish and
	// silently defeat resume.
	return syncDir(filepath.Dir(a.final))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that cannot sync a directory handle (some network and
// FUSE mounts) make the fsync fail with EINVAL/ENOTSUP; that is
// reported, matching the crash-safety contract of the atomic sinks.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// manifestName is the resume manifest's file name; it deliberately does
// not match the part-* pattern.
const manifestName = ".trilliong-resume.json"

// resumeManifest records what a directory's part files are a partial
// output of, so a later resume with a different configuration is
// detected instead of silently producing a frankengraph: part files
// only carry a part index, and the same index covers a *different*
// vertex range whenever Workers (or anything else that shapes the
// plan) changes. Config carries the full generation parameters
// (Workers normalized out) so downstream tools — the statistical
// validator foremost — can recover what a directory claims to be
// without the user re-typing flags.
type resumeManifest struct {
	Fingerprint string  `json:"fingerprint"`
	Parts       int     `json:"parts"`
	Format      string  `json:"format"`
	Config      *Config `json:"config,omitempty"`
	// Source is the opaque spec of a non-Config PartSource (the
	// community composition records its resolved spec here). Core treats
	// it as a black box: downstream tools that know the spec's schema —
	// the statistical validator foremost — decode it themselves.
	Source json.RawMessage `json:"source,omitempty"`
}

// matches compares the identity fields only: Config is informational
// (old manifests predate it) and already condensed into Fingerprint.
func (m resumeManifest) matches(o resumeManifest) bool {
	return m.Fingerprint == o.Fingerprint && m.Parts == o.Parts && m.Format == o.Format
}

// RunManifest is the recorded identity of a generated directory: the
// configuration (Workers normalized to 0), output format and part
// count of the run that produced it.
type RunManifest struct {
	Config Config
	Format gformat.Format
	Parts  int
}

// ReadRunManifest loads the generation parameters recorded in dir by
// ResumeToDir / ResumeToDirStore. Directories written before parameter
// recording (or by the non-resume path) return an error naming the
// manifest, so callers can fall back to explicit flags.
func ReadRunManifest(dir string) (*RunManifest, error) {
	path := filepath.Join(dir, manifestName)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: no run manifest in %s (generate with -resume or -store to record parameters): %w", dir, err)
	}
	var m resumeManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("core: run manifest %s is corrupt: %w", path, err)
	}
	if m.Config == nil {
		return nil, fmt.Errorf("core: run manifest %s predates parameter recording", path)
	}
	f, err := gformat.ParseFormat(m.Format)
	if err != nil {
		return nil, fmt.Errorf("core: run manifest %s: %w", path, err)
	}
	return &RunManifest{Config: *m.Config, Format: f, Parts: m.Parts}, nil
}

// fingerprint condenses everything that determines the part file set:
// the full configuration (Workers normalized out — parts is recorded
// separately, and it, not Workers, is what fixes the plan) plus format
// and part count.
func fingerprint(cfg Config, format gformat.Format, parts int) string {
	cfg.Workers = 0
	return fmt.Sprintf("cfg=%+v format=%v parts=%d", cfg, format, parts)
}

// EnsureRunManifest validates dir against an existing resume manifest
// or writes one recording (cfg, format, parts). It is the
// shared-directory handshake of the masterless swarm workers: every
// worker performs it before generating, so two workers pointed at one
// directory with different configurations fail loudly instead of
// interleaving parts of two different graphs. Writing is idempotent
// and race-safe between workers of the *same* job — they serialize the
// identical bytes, so whichever rename lands last changes nothing.
func EnsureRunManifest(dir string, cfg Config, format gformat.Format, parts int) error {
	return checkOrWriteManifest(dir, cfg, format, parts)
}

// EnsureSourceManifest is EnsureRunManifest for a non-Config
// PartSource: the manifest's identity is the source's fingerprint
// (plus format and part count), and source — an opaque JSON spec of
// the job, recorded verbatim — lets downstream tools recover what the
// directory claims to be. ReadSourceSpec is the reader.
func EnsureSourceManifest(dir, srcFingerprint string, source json.RawMessage, format gformat.Format, parts int) error {
	want := resumeManifest{
		Fingerprint: fmt.Sprintf("src=%s format=%v parts=%d", srcFingerprint, format, parts),
		Parts:       parts,
		Format:      format.String(),
		Source:      source,
	}
	return ensureManifest(dir, want)
}

// ReadSourceSpec returns the opaque PartSource spec recorded in dir's
// run manifest by EnsureSourceManifest, plus the recorded format and
// part count. Directories generated by the classic Config path (or
// with no manifest at all) return an error: callers probe this first
// and fall back to ReadRunManifest.
func ReadSourceSpec(dir string) (source json.RawMessage, format gformat.Format, parts int, err error) {
	path := filepath.Join(dir, manifestName)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("core: no run manifest in %s: %w", dir, err)
	}
	var m resumeManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, 0, 0, fmt.Errorf("core: run manifest %s is corrupt: %w", path, err)
	}
	if len(m.Source) == 0 {
		return nil, 0, 0, fmt.Errorf("core: run manifest %s records no source spec", path)
	}
	f, err := gformat.ParseFormat(m.Format)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("core: run manifest %s: %w", path, err)
	}
	return m.Source, f, m.Parts, nil
}

// checkOrWriteManifest validates dir against an existing manifest or
// writes one. Directories from runs predating the manifest resume
// without validation, as before.
func checkOrWriteManifest(dir string, cfg Config, format gformat.Format, parts int) error {
	recorded := cfg
	recorded.Workers = 0
	want := resumeManifest{
		Fingerprint: fingerprint(cfg, format, parts),
		Parts:       parts,
		Format:      format.String(),
		Config:      &recorded,
	}
	return ensureManifest(dir, want)
}

// ensureManifest validates dir against an existing manifest or writes
// want atomically.
func ensureManifest(dir string, want resumeManifest) error {
	path := filepath.Join(dir, manifestName)
	if b, err := os.ReadFile(path); err == nil {
		var have resumeManifest
		if err := json.Unmarshal(b, &have); err != nil {
			return fmt.Errorf("core: resume manifest %s is corrupt: %w", path, err)
		}
		if !have.matches(want) {
			return fmt.Errorf("core: directory %s holds parts of a different run (manifest: %d %s parts; resume asks for %d %s parts with a different plan) — resume with the original configuration or use a fresh directory",
				dir, have.Parts, have.Format, want.Parts, want.Format)
		}
		return nil
	}
	b, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return err
	}
	// The temp name must be unique per writer: swarm workers of one job
	// race this write, and with a shared name one worker's rename can
	// steal another's file mid-flight. Unique temps make every rename
	// succeed — they carry identical bytes, so whichever lands last
	// changes nothing.
	tmp, err := os.CreateTemp(dir, manifestName+".*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op once renamed
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// ResumeToDir generates the graph into dir with atomic part files,
// skipping every part that already exists complete (each present part
// is structurally verified, not just stat'ed) — so an interrupted run
// continues where it stopped, and a finished run is a no-op. The
// configuration (including Workers, which fixes the partition) must
// match the original run; a manifest written alongside the parts
// detects a mismatched resume and fails it instead of mixing two
// partitions in one directory. The resulting file set is bit-identical
// to an uninterrupted one. ResumeToDirStore (cache.go) is this plus an
// artifact store.
func ResumeToDir(cfg Config, dir string, format gformat.Format) (Stats, error) {
	return ResumeToDirStore(cfg, dir, format, nil)
}
