package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gformat"
	"repro/internal/partition"
)

// AtomicFileSinks is FileSinks with crash safety: each part is written
// to part-<n>.<ext>.tmp and renamed into place only when its writer
// closes cleanly, so a part file either exists complete or not at all.
// This is what makes Resume sound.
func AtomicFileSinks(dir string, format gformat.Format, numVertices int64, first int) SinkFactory {
	return func(worker int, r partition.Range) (gformat.Writer, error) {
		final := filepath.Join(dir, fmt.Sprintf("part-%05d.%s", first+worker, extOf(format)))
		tmp := final + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return nil, err
		}
		var w gformat.Writer
		switch format {
		case gformat.TSV:
			w = gformat.NewTSVWriter(f)
		case gformat.ADJ6:
			w = gformat.NewADJ6Writer(f)
		case gformat.CSR6:
			cw, err := gformat.NewCSR6Writer(f, numVertices)
			if err != nil {
				f.Close()
				os.Remove(tmp)
				return nil, err
			}
			w = cw
		default:
			f.Close()
			os.Remove(tmp)
			return nil, fmt.Errorf("core: unsupported format %v", format)
		}
		return &atomicWriter{Writer: w, f: f, tmp: tmp, final: final}, nil
	}
}

type atomicWriter struct {
	gformat.Writer
	f          *os.File
	tmp, final string
}

func (a *atomicWriter) Close() error {
	if err := a.Writer.Close(); err != nil {
		a.f.Close()
		os.Remove(a.tmp)
		return err
	}
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.tmp)
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.tmp)
		return err
	}
	return os.Rename(a.tmp, a.final)
}

// ResumeToDir generates the graph into dir with atomic part files,
// skipping every part that already exists completely — so an
// interrupted run continues where it stopped, and a finished run is a
// no-op. The configuration (including Workers, which fixes the
// partition) must match the original run; the resulting file set is
// bit-identical to an uninterrupted one.
func ResumeToDir(cfg Config, dir string, format gformat.Format) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	workers := cfg.workers()
	planStart := time.Now()
	ranges, err := Plan(cfg, workers)
	if err != nil {
		return Stats{}, err
	}
	planDur := time.Since(planStart)

	// Sweep leftover temporaries from a crashed run.
	tmps, err := filepath.Glob(filepath.Join(dir, "part-*.tmp"))
	if err != nil {
		return Stats{}, err
	}
	for _, t := range tmps {
		os.Remove(t)
	}

	var missing []partition.Range
	var missingIdx []int
	for i, r := range ranges {
		name := filepath.Join(dir, fmt.Sprintf("part-%05d.%s", i, extOf(format)))
		if _, err := os.Stat(name); err == nil {
			continue
		}
		missing = append(missing, r)
		missingIdx = append(missingIdx, i)
	}
	if len(missing) == 0 {
		return Stats{PlanDuration: planDur, Elapsed: planDur, Ranges: ranges}, nil
	}
	sinks := func(worker int, r partition.Range) (gformat.Writer, error) {
		return AtomicFileSinks(dir, format, cfg.NumVertices(), missingIdx[worker])(0, r)
	}
	st, err := GenerateRanges(cfg, missing, sinks)
	if err != nil {
		return st, err
	}
	st.PlanDuration = planDur
	st.Elapsed = planDur + st.GenDuration
	st.Ranges = ranges
	return st, nil
}
