package core

import (
	"time"

	"repro/internal/gformat"
	"repro/internal/partition"
	"repro/internal/telemetry"
)

// Stage and metric names the core pipeline publishes when a run is
// observed. Consumers (trilliong-bench, the dist worker, dashboards)
// key off these; docs/OBSERVABILITY.md is the catalog.
const (
	// StagePlan is the Figure 6 partition planning stage.
	StagePlan = "core.plan"
	// StageRecvecBuild is the recursive-vector construction stage (one
	// call per worker; items = workers built).
	StageRecvecBuild = "core.recvec_build"
	// StageScopeDraw is the stochastic scope/degree draw stage: wall
	// time spent in Algorithm 4 proper, excluding encoding and I/O
	// (items = scopes drawn).
	StageScopeDraw = "core.scope_draw"
	// StageSinkWrite is the edge-encode + sink-write stage (items =
	// edges written).
	StageSinkWrite = "core.sink_write"

	// MetricScopes / MetricEdges / MetricAttempts / MetricBytes are the
	// run-wide totals; MetricEdgesPerSec is a fixed-window rate over
	// the edge total.
	MetricScopes      = "core.scopes_total"
	MetricEdges       = "core.edges_total"
	MetricAttempts    = "core.attempts_total"
	MetricBytes       = "core.bytes_total"
	MetricEdgesPerSec = "core.edges_per_sec"
)

// SinkMetric returns the per-format counter name ObservedSinks feeds:
// SinkMetric(ADJ6, "edges") = "core.sink.adj6.edges_total".
func SinkMetric(format gformat.Format, what string) string {
	return "core.sink." + extOf(format) + "." + what + "_total"
}

// ObservedSinks wraps a sink factory so every writer feeds the
// registry's per-format byte and edge counters as it goes. Wrap the
// innermost factory (file, atomic or discard sinks) — the counters see
// exactly what reaches the format encoder.
func ObservedSinks(inner SinkFactory, format gformat.Format, tel *telemetry.Registry) SinkFactory {
	if tel == nil {
		return inner
	}
	edges := tel.Counter(SinkMetric(format, "edges"))
	bytes := tel.Counter(SinkMetric(format, "bytes"))
	return func(worker int, r partition.Range) (gformat.Writer, error) {
		w, err := inner(worker, r)
		if err != nil {
			return nil, err
		}
		return &countingWriter{Writer: w, edges: edges, bytes: bytes}, nil
	}
}

// countingWriter forwards to the wrapped writer and settles the
// registry counters incrementally, so live scrapers (the dist worker's
// /metrics listener) see progress mid-part, not only at Close.
type countingWriter struct {
	gformat.Writer
	edges, bytes       *telemetry.Counter
	lastEdges, lastOut int64
}

func (c *countingWriter) WriteScope(src int64, dsts []int64) error {
	if err := c.Writer.WriteScope(src, dsts); err != nil {
		return err
	}
	c.settle()
	return nil
}

func (c *countingWriter) Close() error {
	err := c.Writer.Close()
	c.settle()
	return err
}

// settle publishes the writer's counter growth since the last call.
// The writer is single-goroutine (one worker owns it), so the local
// bookkeeping needs no locks; only the registry adds are atomic.
func (c *countingWriter) settle() {
	if e := c.Writer.EdgesWritten(); e != c.lastEdges {
		c.edges.Add(e - c.lastEdges)
		c.lastEdges = e
	}
	if b := c.Writer.BytesWritten(); b != c.lastOut {
		c.bytes.Add(b - c.lastOut)
		c.lastOut = b
	}
}

// timedWriter measures the wall time a worker spends inside the format
// encoder and sink (WriteScope and Close), accumulating locally so the
// per-scope cost is two clock reads, no shared state.
type timedWriter struct {
	gformat.Writer
	elapsed time.Duration
	scopes  int64
	rate    *telemetry.RateGauge
}

func (t *timedWriter) WriteScope(src int64, dsts []int64) error {
	start := time.Now()
	err := t.Writer.WriteScope(src, dsts)
	t.elapsed += time.Since(start)
	t.scopes++
	if t.rate != nil {
		t.rate.Add(int64(len(dsts)))
	}
	return err
}

func (t *timedWriter) Close() error {
	start := time.Now()
	err := t.Writer.Close()
	t.elapsed += time.Since(start)
	return err
}

// observedSinkFactory wraps each worker's writer in a timedWriter and
// remembers them so the run can attribute worker wall time to the
// draw and write stages after the fact.
func observedSinkFactory(inner SinkFactory, rate *telemetry.RateGauge, timed []*timedWriter) SinkFactory {
	return func(worker int, r partition.Range) (gformat.Writer, error) {
		w, err := inner(worker, r)
		if err != nil {
			return nil, err
		}
		tw := &timedWriter{Writer: w, rate: rate}
		timed[worker] = tw
		return tw, nil
	}
}
