package core

import (
	"fmt"
	"math"

	"repro/internal/gformat"
)

// SizeEstimate predicts output volume without generating — the capacity
// planning the paper does when it reports "for Scale 38 the TSV file is
// approximately 90 TB, while the ADJ6 file is 25 TB" (Section 5).
// Everything is computed analytically from the seed in O(log|V|²).
type SizeEstimate struct {
	// Edges is the expected edge count (|E| by construction).
	Edges int64
	// NonZeroVertices is the expected number of vertices with at least
	// one out-edge (ADJ6 writes a header per such vertex only).
	NonZeroVertices int64
	// Bytes is the expected file volume in the requested format.
	Bytes int64
}

// EstimateSize predicts the output volume of cfg in the given format.
func EstimateSize(cfg Config, format gformat.Format) (SizeEstimate, error) {
	if err := cfg.Validate(); err != nil {
		return SizeEstimate{}, err
	}
	L := cfg.Scale
	e := float64(cfg.NumEdges())
	a := cfg.Seed.A + cfg.Seed.B // row mass of a 0 bit
	b := cfg.Seed.C + cfg.Seed.D
	if cfg.Orientation == AVSI {
		a, b = cfg.Seed.A+cfg.Seed.C, cfg.Seed.B+cfg.Seed.D
	}

	// Expected vertices with ≥1 edge, by popcount class: class k has
	// C(L,k) vertices of row mass a^(L−k)·b^k. The generator draws
	// scope sizes from Theorem 1's rounded normal approximation, so the
	// matching activity probability is P(N(np, np(1−p)) ≥ 0.5) — which
	// (faithfully to the paper) slightly inflates tail-class activity
	// relative to the exact binomial.
	var nz float64
	choose := 1.0
	for k := 0; k <= L; k++ {
		p := math.Pow(a, float64(L-k)) * math.Pow(b, float64(k))
		np := e * p
		sigma := math.Sqrt(np * (1 - p))
		var active float64
		if sigma > 0 {
			active = 0.5 * math.Erfc((0.5-np)/(sigma*math.Sqrt2))
		} else if np >= 0.5 {
			active = 1
		}
		nz += choose * active
		choose = choose * float64(L-k) / float64(k+1)
	}

	est := SizeEstimate{
		Edges:           cfg.NumEdges(),
		NonZeroVertices: int64(math.Round(nz)),
	}
	switch format {
	case gformat.ADJ6:
		est.Bytes = 10*est.NonZeroVertices + 6*est.Edges
	case gformat.CSR6:
		// Per part file: header + offsets for all |V| vertices +
		// neighbours. Single-part layout assumed; each extra part adds
		// another header+offset section.
		est.Bytes = 24 + 8*(cfg.NumVertices()+1) + 6*est.Edges
	case gformat.TSV:
		// Expected decimal length of source and destination IDs under
		// their per-bit product measures, plus tab and newline.
		srcDigits := expectedDecimalDigits(a, b, L)
		dstA := cfg.Seed.A + cfg.Seed.C // column masses drive destinations
		dstB := cfg.Seed.B + cfg.Seed.D
		if cfg.Orientation == AVSI {
			dstA, dstB = cfg.Seed.A+cfg.Seed.B, cfg.Seed.C+cfg.Seed.D
		}
		dstDigits := expectedDecimalDigits(dstA, dstB, L)
		est.Bytes = int64(math.Round(e * (srcDigits + dstDigits + 2)))
	default:
		return est, fmt.Errorf("core: no size model for format %v", format)
	}
	return est, nil
}

// EstimateRangeEdges predicts the expected number of edges whose source
// vertex lies in [lo, hi): |E| · P(lo ≤ src < hi) under Theorem 1's
// per-bit product measure, in O(Scale) time. It is the cost model the
// admission scheduler charges a job before generating anything — the
// same expectation partition.Plan balances, without drawing any scope
// sizes. lo/hi are clamped to [0, |V|].
func EstimateRangeEdges(cfg Config, lo, hi int64) (int64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if lo < 0 {
		lo = 0
	}
	if nv := cfg.NumVertices(); hi > nv {
		hi = nv
	}
	if lo >= hi {
		return 0, nil
	}
	a := cfg.Seed.A + cfg.Seed.B // row mass of a 0 bit
	b := cfg.Seed.C + cfg.Seed.D
	if cfg.Orientation == AVSI {
		a, b = cfg.Seed.A+cfg.Seed.C, cfg.Seed.B+cfg.Seed.D
	}
	pa, pb := a/(a+b), b/(a+b)
	mass := prefixMass(pa, pb, cfg.Scale, hi) - prefixMass(pa, pb, cfg.Scale, lo)
	if mass < 0 {
		mass = 0
	}
	return int64(math.Round(float64(cfg.NumEdges()) * mass)), nil
}

// prefixMass returns P(v < n) where v's bits are independently 1 with
// probability pb (pa + pb = 1) at every position of an levels-bit word.
func prefixMass(pa, pb float64, levels int, n int64) float64 {
	if n <= 0 {
		return 0
	}
	if n >= int64(1)<<uint(levels) {
		return 1
	}
	var sum float64
	run := 1.0
	for i := levels - 1; i >= 0; i-- {
		if (n>>uint(i))&1 == 1 {
			sum += run * pa
			run *= pb
		} else {
			run *= pa
		}
	}
	return sum
}

// expectedDecimalDigits returns E[len(decimal(v))] where v's bits are
// independently 1 with probability b/(a+b) at every position — but
// weighted by *edge mass*, i.e. bit i of a participating vertex is 1
// with probability b (a+b = 1 after normalization per bit).
func expectedDecimalDigits(a, b float64, levels int) float64 {
	// P(v < n) for the per-bit product measure, normalized (a+b may not
	// be 1 overall across levels; per bit the mass splits a : b).
	pa := a / (a + b)
	pb := b / (a + b)
	prefix := func(n int64) float64 { return prefixMass(pa, pb, levels, n) }
	var exp float64
	bound := int64(1)
	for d := 1; ; d++ {
		next := bound * 10
		if next <= bound { // overflow guard
			next = math.MaxInt64
		}
		frac := prefix(next) - prefix(bound)
		if d == 1 {
			frac += prefix(1) // v = 0 has one digit too
		}
		exp += float64(d) * frac
		if next >= int64(1)<<uint(levels) {
			break
		}
		bound = next
	}
	return exp
}
