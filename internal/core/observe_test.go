package core

import (
	"sync"
	"testing"

	"repro/internal/gformat"
	"repro/internal/telemetry"
)

// TestGenerateObservedCountersMatchStats: the registry's totals must
// agree exactly with the Stats the run returns — the property that
// lets trilliong-bench report from the registry alone.
func TestGenerateObservedCountersMatchStats(t *testing.T) {
	tel := telemetry.NewRegistry()
	cfg := DefaultConfig(10)
	cfg.Workers = 3
	st, err := GenerateObserved(cfg, ObservedSinks(DiscardSinks(gformat.ADJ6), gformat.ADJ6, tel), tel)
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.CounterValue(MetricEdges); got != st.Edges {
		t.Fatalf("edges counter %d, stats %d", got, st.Edges)
	}
	if got := tel.CounterValue(MetricAttempts); got != st.Attempts {
		t.Fatalf("attempts counter %d, stats %d", got, st.Attempts)
	}
	if got := tel.CounterValue(MetricScopes); got != cfg.NumVertices() {
		t.Fatalf("scopes counter %d, want %d", got, cfg.NumVertices())
	}
	if got := tel.CounterValue(MetricBytes); got != st.BytesWritten {
		t.Fatalf("bytes counter %d, stats %d", got, st.BytesWritten)
	}
	if got := tel.CounterValue(SinkMetric(gformat.ADJ6, "edges")); got != st.Edges {
		t.Fatalf("per-format edge counter %d, stats %d", got, st.Edges)
	}
	if got := tel.CounterValue(SinkMetric(gformat.ADJ6, "bytes")); got != st.BytesWritten {
		t.Fatalf("per-format byte counter %d, stats %d", got, st.BytesWritten)
	}

	// Stage accounting: plan ran once, recvec build once, and the draw
	// and write stages saw one observation per worker with the full
	// scope/edge mass.
	if s := tel.StageSnapshot(StagePlan); s.Calls != 1 || s.Items != 3 {
		t.Fatalf("plan stage %+v", s)
	}
	if s := tel.StageSnapshot(StageRecvecBuild); s.Calls != 1 || s.Items != 3 {
		t.Fatalf("recvec stage %+v", s)
	}
	if s := tel.StageSnapshot(StageSinkWrite); s.Calls != 3 || s.Items != st.Edges {
		t.Fatalf("sink stage %+v edges %d", s, st.Edges)
	}
	if s := tel.StageSnapshot(StageScopeDraw); s.Items != cfg.NumVertices() {
		t.Fatalf("draw stage %+v", s)
	}
	if rg := tel.RateGauge(MetricEdgesPerSec, 0); rg.Total() != st.Edges {
		t.Fatalf("rate gauge total %d, stats %d", rg.Total(), st.Edges)
	}
}

// TestGenerateObservedBitIdentical: instrumentation must not perturb
// the generated graph.
func TestGenerateObservedBitIdentical(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Workers = 2
	collect := func(tel *telemetry.Registry) map[int64][]int64 {
		var mu sync.Mutex
		got := make(map[int64][]int64)
		sinks := CallbackSinks(func(src int64, dsts []int64) error {
			mu.Lock()
			got[src] = append([]int64(nil), dsts...)
			mu.Unlock()
			return nil
		})
		if _, err := GenerateObserved(cfg, sinks, tel); err != nil {
			t.Fatal(err)
		}
		return got
	}
	plain := collect(nil)
	observed := collect(telemetry.NewRegistry())
	if len(plain) != len(observed) {
		t.Fatalf("scope counts differ: %d vs %d", len(plain), len(observed))
	}
	for src, dsts := range plain {
		o := observed[src]
		if len(o) != len(dsts) {
			t.Fatalf("scope %d length differs", src)
		}
		for i := range dsts {
			if dsts[i] != o[i] {
				t.Fatalf("scope %d differs at %d", src, i)
			}
		}
	}
}

// TestObservedSinksSharedRegistry: two sequential runs into one
// registry accumulate, they do not reset — the contract live servers
// rely on.
func TestObservedSinksSharedRegistry(t *testing.T) {
	tel := telemetry.NewRegistry()
	cfg := DefaultConfig(8)
	cfg.Workers = 2
	st1, err := GenerateObserved(cfg, ObservedSinks(DiscardSinks(gformat.TSV), gformat.TSV, tel), tel)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := GenerateObserved(cfg, ObservedSinks(DiscardSinks(gformat.TSV), gformat.TSV, tel), tel)
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.CounterValue(MetricEdges); got != st1.Edges+st2.Edges {
		t.Fatalf("edge counter %d after two runs, want %d", got, st1.Edges+st2.Edges)
	}
	if got := tel.CounterValue(SinkMetric(gformat.TSV, "bytes")); got != st1.BytesWritten+st2.BytesWritten {
		t.Fatalf("byte counter %d, want %d", got, st1.BytesWritten+st2.BytesWritten)
	}
}
