package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WriteJSON writes the registry as a flat JSON object in the shape
// expvar's /debug/vars produces: keys sorted, scalar metrics as bare
// numbers, histograms and stages as small objects. internal/server
// keeps its pre-telemetry /debug/vars keys bit-compatible by
// registering metrics under the historical key names.
func (r *Registry) WriteJSON(w io.Writer) error {
	names := r.sortedNames()
	var b strings.Builder
	b.WriteString("{")
	first := true
	for _, name := range names {
		val, ok := r.jsonValue(name)
		if !ok {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%q: %s", name, val)
	}
	b.WriteString("}")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonValue renders one metric as a JSON fragment.
func (r *Registry) jsonValue(name string) (string, bool) {
	switch m := r.get(name).(type) {
	case *Counter:
		return strconv.FormatInt(m.Value(), 10), true
	case *Gauge:
		return formatFloat(m.Value()), true
	case funcGauge:
		return formatFloat(m()), true
	case *RateGauge:
		return formatFloat(m.Rate()), true
	case *Histogram:
		b, err := json.Marshal(m.Snapshot())
		if err != nil {
			return "", false
		}
		return string(b), true
	case *Stage:
		b, err := json.Marshal(m.Snapshot())
		if err != nil {
			return "", false
		}
		return string(b), true
	case funcAny:
		b, err := json.Marshal(m())
		if err != nil {
			return "", false
		}
		return string(b), true
	}
	return "", false
}

// formatFloat matches expvar's float formatting ('g', shortest), so
// the JSON exposition of a migrated metric is byte-identical to what
// an expvar.Float printed.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromPrefix is prepended to every Prometheus series name.
const PromPrefix = "trilliong_"

// promName rewrites a dotted metric name into a Prometheus series
// name: "dist.master.requeues" → "trilliong_dist_master_requeues".
func promName(name string) string {
	var b strings.Builder
	b.WriteString(PromPrefix)
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): counters and stages as counters, gauges and
// rates as gauges, histograms as summaries with p50/p90/p99 quantile
// series. Func metrics (arbitrary JSON) have no Prometheus shape and
// are skipped.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, name := range r.sortedNames() {
		pn := promName(name)
		switch m := r.get(name).(type) {
		case *Counter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, m.Value())
		case *Gauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(m.Value()))
		case funcGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(m()))
		case *RateGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(m.Rate()))
		case *Histogram:
			s := m.Snapshot()
			fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
			fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", pn, formatFloat(s.P50))
			fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %s\n", pn, formatFloat(s.P90))
			fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", pn, formatFloat(s.P99))
			fmt.Fprintf(&b, "%s_sum %s\n", pn, formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", pn, s.Count)
			fmt.Fprintf(&b, "# TYPE %s_max gauge\n%s_max %s\n", pn, pn, formatFloat(s.Max))
		case *Stage:
			s := m.Snapshot()
			fmt.Fprintf(&b, "# TYPE %s_calls_total counter\n%s_calls_total %d\n", pn, pn, s.Calls)
			fmt.Fprintf(&b, "# TYPE %s_items_total counter\n%s_items_total %d\n", pn, pn, s.Items)
			fmt.Fprintf(&b, "# TYPE %s_seconds_total counter\n%s_seconds_total %s\n", pn, pn, formatFloat(s.Seconds))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// JSONHandler serves the registry as expvar-style JSON (the
// /debug/vars shape).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
		io.WriteString(w, "\n")
	})
}

// PrometheusHandler serves the registry in Prometheus text format (the
// /metrics shape).
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
