package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWriteJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Add(42)
	r.Gauge("a_gauge").Set(1.5)
	r.GaugeFunc("c_func", func() float64 { return 2 })
	r.Func("d_map", func() any { return map[string]int{"k": 1} })
	r.Stage("e_stage").Observe(time.Second, 10)
	r.Histogram("f_hist").Observe(0.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Must be valid JSON with every metric present.
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("invalid JSON %q: %v", out, err)
	}
	for _, k := range []string{"a_gauge", "b_count", "c_func", "d_map", "e_stage", "f_hist"} {
		if _, ok := parsed[k]; !ok {
			t.Fatalf("missing key %s in %s", k, out)
		}
	}
	// Keys are emitted sorted, like expvar.Map.
	if strings.Index(out, `"a_gauge"`) > strings.Index(out, `"b_count"`) {
		t.Fatalf("keys not sorted: %s", out)
	}
	// Scalars are bare numbers, matching the expvar wire shape.
	if string(parsed["b_count"]) != "42" {
		t.Fatalf("counter rendered as %s", parsed["b_count"])
	}
	if string(parsed["a_gauge"]) != "1.5" {
		t.Fatalf("gauge rendered as %s", parsed["a_gauge"])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dist.master.requeues").Add(3)
	r.Gauge("depth").Set(2)
	r.Stage("core.sink_write").Observe(2*time.Second, 10)
	h := r.Histogram("dist.heartbeat.gap_seconds")
	h.Observe(0.1)
	h.Observe(0.1)
	r.Func("jobs", func() any { return map[string]string{} }) // skipped

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE trilliong_dist_master_requeues counter",
		"trilliong_dist_master_requeues 3",
		"trilliong_depth 2",
		"trilliong_core_sink_write_calls_total 1",
		"trilliong_core_sink_write_items_total 10",
		"trilliong_core_sink_write_seconds_total 2",
		"# TYPE trilliong_dist_heartbeat_gap_seconds summary",
		`trilliong_dist_heartbeat_gap_seconds{quantile="0.5"}`,
		"trilliong_dist_heartbeat_gap_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "jobs") {
		t.Fatalf("func metric leaked into prometheus output:\n%s", out)
	}
}

func TestHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()

	jr := httptest.NewRecorder()
	r.JSONHandler().ServeHTTP(jr, httptest.NewRequest("GET", "/debug/vars", nil))
	if ct := jr.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("json content type %q", ct)
	}
	var m map[string]int64
	if err := json.Unmarshal(jr.Body.Bytes(), &m); err != nil || m["c"] != 1 {
		t.Fatalf("json handler body %q err %v", jr.Body.String(), err)
	}

	pr := httptest.NewRecorder()
	r.PrometheusHandler().ServeHTTP(pr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := pr.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("prometheus content type %q", ct)
	}
	if !strings.Contains(pr.Body.String(), "trilliong_c 1") {
		t.Fatalf("prometheus handler body %q", pr.Body.String())
	}
}

func TestPromNameSanitization(t *testing.T) {
	if got := promName("dist.worker-3.edges/sec"); got != "trilliong_dist_worker_3_edges_sec" {
		t.Fatalf("promName %q", got)
	}
}
