package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x.total")
	b := r.Counter("x.total")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(2)
	b.Inc()
	if got := r.CounterValue("x.total"); got != 3 {
		t.Fatalf("value %d, want 3", got)
	}
	if got := r.CounterValue("absent"); got != 0 {
		t.Fatalf("absent counter value %d", got)
	}
}

func TestNameCollisionAcrossTypesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-type collision")
		}
	}()
	r.Gauge("dual")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(-0.5)
	if v := g.Value(); v != 1.0 {
		t.Fatalf("gauge %v", v)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast observations around 1ms, 10 slow around 1s: p50 must be
	// near 1ms, p99 near 1s (within the 2x log-bucket resolution).
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Sum < 10.08 || s.Sum > 10.1 {
		t.Fatalf("sum %v", s.Sum)
	}
	if s.Max != 1.0 {
		t.Fatalf("max %v", s.Max)
	}
	if s.P50 < 0.0005 || s.P50 > 0.002 {
		t.Fatalf("p50 %v, want ~1ms", s.P50)
	}
	if s.P99 < 0.5 || s.P99 > 2 {
		t.Fatalf("p99 %v, want ~1s", s.P99)
	}
	if q := h.Quantile(0); q > s.P50 {
		t.Fatalf("q0 %v above p50 %v", q, s.P50)
	}
}

func TestHistogramDegenerateObservations(t *testing.T) {
	h := NewRegistry().Histogram("h")
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.NaN())
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.P99 != 0 {
		t.Fatalf("p99 %v for all-zero observations", s.P99)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewRegistry().Histogram("h")
	h.Observe(1e-300) // below bucket range: clamps to bucket 0
	h.Observe(1e300)  // above bucket range: clamps to the top bucket
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(1); q <= 0 || math.IsInf(q, 0) {
		t.Fatalf("top quantile %v", q)
	}
}

// TestRateGaugeFixedWindow pins the clock and checks the rate reflects
// the trailing window, not the read cadence.
func TestRateGaugeFixedWindow(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	g := r.RateGauge("eps", 10*time.Second)

	g.Add(1000)
	now = now.Add(2 * time.Second)
	if rate := g.Rate(); math.Abs(rate-500) > 1 {
		t.Fatalf("rate %v, want ~500 (1000 units / 2s)", rate)
	}
	// A second immediate read must agree — the window is fixed, so
	// reading is idempotent (this is the regression the server's old
	// delta-since-last-read gauge failed).
	if r1, r2 := g.Rate(), g.Rate(); r1 != r2 {
		t.Fatalf("back-to-back reads diverge: %v vs %v", r1, r2)
	}

	// 10 more seconds at 100/s: the old burst ages out of the window.
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		g.Add(100)
		g.Rate() // lay down samples as a scraper would
	}
	rate := g.Rate()
	if math.Abs(rate-100) > 20 {
		t.Fatalf("steady-state rate %v, want ~100", rate)
	}
	if g.Total() != 2000 {
		t.Fatalf("total %d", g.Total())
	}
}

// TestRateGaugeConcurrentReaders is the regression test for the
// scrape-coupled rate bug: many concurrent readers while a writer adds
// must never observe a negative or wildly inflated rate, because no
// reader resets another's baseline.
func TestRateGaugeConcurrentReaders(t *testing.T) {
	r := NewRegistry()
	g := r.RateGauge("eps", 100*time.Millisecond)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				g.Add(10)
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	var readers sync.WaitGroup
	errs := make(chan float64, 64)
	for i := 0; i < 8; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for j := 0; j < 50; j++ {
				if rate := g.Rate(); rate < 0 {
					select {
					case errs <- rate:
					default:
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	select {
	case bad := <-errs:
		t.Fatalf("observed negative rate %v under concurrent scrapes", bad)
	default:
	}
}

func TestStageSpans(t *testing.T) {
	r := NewRegistry()
	st := r.Stage("core.scope_draw")
	st.Observe(2*time.Second, 100)
	st.Observe(1*time.Second, 50)
	sp := st.Span()
	sp.End(7)
	s := st.Snapshot()
	if s.Calls != 3 || s.Items != 157 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Seconds < 3 {
		t.Fatalf("seconds %v", s.Seconds)
	}
	if want := float64(s.Items) / s.Seconds; math.Abs(s.ItemsPerSec-want) > 1e-9 {
		t.Fatalf("items/sec %v, want %v", s.ItemsPerSec, want)
	}
	all := r.Stages()
	if _, ok := all["core.scope_draw"]; !ok || len(all) != 1 {
		t.Fatalf("stages map %v", all)
	}
	if r.StageSnapshot("missing").Calls != 0 {
		t.Fatal("missing stage should snapshot zero")
	}
}

// TestConcurrentMixedUse hammers every metric kind from many
// goroutines; run under -race this is the package's thread-safety
// proof.
func TestConcurrentMixedUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			g := r.Gauge("g")
			rg := r.RateGauge("rg", time.Second)
			st := r.Stage("s")
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-6)
				g.Add(1)
				rg.Add(1)
				st.Observe(time.Microsecond, 1)
				if j%100 == 0 {
					h.Snapshot()
					rg.Rate()
					var b strings.Builder
					r.WriteJSON(&b)
					r.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	if r.CounterValue("c") != 4000 {
		t.Fatalf("counter %d", r.CounterValue("c"))
	}
	if r.Histogram("h").Count() != 4000 {
		t.Fatalf("hist count %d", r.Histogram("h").Count())
	}
	if s := r.Stage("s").Snapshot(); s.Calls != 4000 || s.Items != 4000 {
		t.Fatalf("stage %+v", s)
	}
}
